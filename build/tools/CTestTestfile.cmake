# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_fig1 "/root/repo/build/tools/ilps" "--workers" "2" "/root/repo/scripts/fig1.swift")
set_tests_properties(cli_fig1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_interlang "/root/repo/build/tools/ilps" "/root/repo/scripts/interlang.swift")
set_tests_properties(cli_interlang PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_arrays "/root/repo/build/tools/ilps" "--workers" "3" "--stats" "/root/repo/scripts/arrays.swift")
set_tests_properties(cli_arrays PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_emit_tcl "/root/repo/build/tools/ilps" "--emit-tcl" "/root/repo/scripts/fig1.swift")
set_tests_properties(cli_emit_tcl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_reinit_policy "/root/repo/build/tools/ilps" "--policy" "reinit" "/root/repo/scripts/interlang.swift")
set_tests_properties(cli_reinit_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
