file(REMOVE_RECURSE
  "CMakeFiles/ilps.dir/ilps.cpp.o"
  "CMakeFiles/ilps.dir/ilps.cpp.o.d"
  "ilps"
  "ilps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
