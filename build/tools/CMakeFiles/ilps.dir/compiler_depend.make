# Empty compiler generated dependencies file for ilps.
# This may be replaced when dependencies are built.
