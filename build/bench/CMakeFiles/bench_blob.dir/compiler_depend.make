# Empty compiler generated dependencies file for bench_blob.
# This may be replaced when dependencies are built.
