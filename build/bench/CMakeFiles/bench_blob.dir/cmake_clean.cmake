file(REMOVE_RECURSE
  "CMakeFiles/bench_blob.dir/bench_blob.cc.o"
  "CMakeFiles/bench_blob.dir/bench_blob.cc.o.d"
  "bench_blob"
  "bench_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
