# Empty dependencies file for bench_bindgen.
# This may be replaced when dependencies are built.
