file(REMOVE_RECURSE
  "CMakeFiles/bench_bindgen.dir/bench_bindgen.cc.o"
  "CMakeFiles/bench_bindgen.dir/bench_bindgen.cc.o.d"
  "bench_bindgen"
  "bench_bindgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bindgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
