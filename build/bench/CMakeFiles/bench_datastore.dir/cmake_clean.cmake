file(REMOVE_RECURSE
  "CMakeFiles/bench_datastore.dir/bench_datastore.cc.o"
  "CMakeFiles/bench_datastore.dir/bench_datastore.cc.o.d"
  "bench_datastore"
  "bench_datastore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
