# Empty compiler generated dependencies file for bench_datastore.
# This may be replaced when dependencies are built.
