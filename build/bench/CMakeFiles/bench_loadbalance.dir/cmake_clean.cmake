file(REMOVE_RECURSE
  "CMakeFiles/bench_loadbalance.dir/bench_loadbalance.cc.o"
  "CMakeFiles/bench_loadbalance.dir/bench_loadbalance.cc.o.d"
  "bench_loadbalance"
  "bench_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
