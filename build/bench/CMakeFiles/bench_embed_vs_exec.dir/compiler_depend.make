# Empty compiler generated dependencies file for bench_embed_vs_exec.
# This may be replaced when dependencies are built.
