file(REMOVE_RECURSE
  "CMakeFiles/bench_embed_vs_exec.dir/bench_embed_vs_exec.cc.o"
  "CMakeFiles/bench_embed_vs_exec.dir/bench_embed_vs_exec.cc.o.d"
  "bench_embed_vs_exec"
  "bench_embed_vs_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embed_vs_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
