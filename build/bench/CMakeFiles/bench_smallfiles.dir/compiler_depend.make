# Empty compiler generated dependencies file for bench_smallfiles.
# This may be replaced when dependencies are built.
