# Empty compiler generated dependencies file for bench_retain_vs_reinit.
# This may be replaced when dependencies are built.
