file(REMOVE_RECURSE
  "CMakeFiles/bench_retain_vs_reinit.dir/bench_retain_vs_reinit.cc.o"
  "CMakeFiles/bench_retain_vs_reinit.dir/bench_retain_vs_reinit.cc.o.d"
  "bench_retain_vs_reinit"
  "bench_retain_vs_reinit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retain_vs_reinit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
