file(REMOVE_RECURSE
  "libilps_r.a"
)
