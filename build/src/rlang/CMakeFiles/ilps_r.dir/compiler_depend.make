# Empty compiler generated dependencies file for ilps_r.
# This may be replaced when dependencies are built.
