
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rlang/builtins.cc" "src/rlang/CMakeFiles/ilps_r.dir/builtins.cc.o" "gcc" "src/rlang/CMakeFiles/ilps_r.dir/builtins.cc.o.d"
  "/root/repo/src/rlang/interp.cc" "src/rlang/CMakeFiles/ilps_r.dir/interp.cc.o" "gcc" "src/rlang/CMakeFiles/ilps_r.dir/interp.cc.o.d"
  "/root/repo/src/rlang/parser.cc" "src/rlang/CMakeFiles/ilps_r.dir/parser.cc.o" "gcc" "src/rlang/CMakeFiles/ilps_r.dir/parser.cc.o.d"
  "/root/repo/src/rlang/value.cc" "src/rlang/CMakeFiles/ilps_r.dir/value.cc.o" "gcc" "src/rlang/CMakeFiles/ilps_r.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ilps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
