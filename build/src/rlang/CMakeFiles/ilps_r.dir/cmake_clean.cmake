file(REMOVE_RECURSE
  "CMakeFiles/ilps_r.dir/builtins.cc.o"
  "CMakeFiles/ilps_r.dir/builtins.cc.o.d"
  "CMakeFiles/ilps_r.dir/interp.cc.o"
  "CMakeFiles/ilps_r.dir/interp.cc.o.d"
  "CMakeFiles/ilps_r.dir/parser.cc.o"
  "CMakeFiles/ilps_r.dir/parser.cc.o.d"
  "CMakeFiles/ilps_r.dir/value.cc.o"
  "CMakeFiles/ilps_r.dir/value.cc.o.d"
  "libilps_r.a"
  "libilps_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
