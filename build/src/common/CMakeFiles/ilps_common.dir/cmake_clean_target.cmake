file(REMOVE_RECURSE
  "libilps_common.a"
)
