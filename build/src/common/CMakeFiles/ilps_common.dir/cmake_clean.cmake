file(REMOVE_RECURSE
  "CMakeFiles/ilps_common.dir/buffer.cc.o"
  "CMakeFiles/ilps_common.dir/buffer.cc.o.d"
  "CMakeFiles/ilps_common.dir/log.cc.o"
  "CMakeFiles/ilps_common.dir/log.cc.o.d"
  "CMakeFiles/ilps_common.dir/strings.cc.o"
  "CMakeFiles/ilps_common.dir/strings.cc.o.d"
  "libilps_common.a"
  "libilps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
