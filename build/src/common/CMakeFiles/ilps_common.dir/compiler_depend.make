# Empty compiler generated dependencies file for ilps_common.
# This may be replaced when dependencies are built.
