file(REMOVE_RECURSE
  "libilps_tcl.a"
)
