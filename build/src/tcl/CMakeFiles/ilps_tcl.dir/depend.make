# Empty dependencies file for ilps_tcl.
# This may be replaced when dependencies are built.
