file(REMOVE_RECURSE
  "CMakeFiles/ilps_tcl.dir/builtins_core.cc.o"
  "CMakeFiles/ilps_tcl.dir/builtins_core.cc.o.d"
  "CMakeFiles/ilps_tcl.dir/builtins_list.cc.o"
  "CMakeFiles/ilps_tcl.dir/builtins_list.cc.o.d"
  "CMakeFiles/ilps_tcl.dir/builtins_misc.cc.o"
  "CMakeFiles/ilps_tcl.dir/builtins_misc.cc.o.d"
  "CMakeFiles/ilps_tcl.dir/builtins_string.cc.o"
  "CMakeFiles/ilps_tcl.dir/builtins_string.cc.o.d"
  "CMakeFiles/ilps_tcl.dir/expr.cc.o"
  "CMakeFiles/ilps_tcl.dir/expr.cc.o.d"
  "CMakeFiles/ilps_tcl.dir/interp.cc.o"
  "CMakeFiles/ilps_tcl.dir/interp.cc.o.d"
  "CMakeFiles/ilps_tcl.dir/value.cc.o"
  "CMakeFiles/ilps_tcl.dir/value.cc.o.d"
  "libilps_tcl.a"
  "libilps_tcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_tcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
