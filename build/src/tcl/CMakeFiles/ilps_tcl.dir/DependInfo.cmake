
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcl/builtins_core.cc" "src/tcl/CMakeFiles/ilps_tcl.dir/builtins_core.cc.o" "gcc" "src/tcl/CMakeFiles/ilps_tcl.dir/builtins_core.cc.o.d"
  "/root/repo/src/tcl/builtins_list.cc" "src/tcl/CMakeFiles/ilps_tcl.dir/builtins_list.cc.o" "gcc" "src/tcl/CMakeFiles/ilps_tcl.dir/builtins_list.cc.o.d"
  "/root/repo/src/tcl/builtins_misc.cc" "src/tcl/CMakeFiles/ilps_tcl.dir/builtins_misc.cc.o" "gcc" "src/tcl/CMakeFiles/ilps_tcl.dir/builtins_misc.cc.o.d"
  "/root/repo/src/tcl/builtins_string.cc" "src/tcl/CMakeFiles/ilps_tcl.dir/builtins_string.cc.o" "gcc" "src/tcl/CMakeFiles/ilps_tcl.dir/builtins_string.cc.o.d"
  "/root/repo/src/tcl/expr.cc" "src/tcl/CMakeFiles/ilps_tcl.dir/expr.cc.o" "gcc" "src/tcl/CMakeFiles/ilps_tcl.dir/expr.cc.o.d"
  "/root/repo/src/tcl/interp.cc" "src/tcl/CMakeFiles/ilps_tcl.dir/interp.cc.o" "gcc" "src/tcl/CMakeFiles/ilps_tcl.dir/interp.cc.o.d"
  "/root/repo/src/tcl/value.cc" "src/tcl/CMakeFiles/ilps_tcl.dir/value.cc.o" "gcc" "src/tcl/CMakeFiles/ilps_tcl.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ilps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
