file(REMOVE_RECURSE
  "CMakeFiles/ilps_pkg.dir/pfs.cc.o"
  "CMakeFiles/ilps_pkg.dir/pfs.cc.o.d"
  "libilps_pkg.a"
  "libilps_pkg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_pkg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
