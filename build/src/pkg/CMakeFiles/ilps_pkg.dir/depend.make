# Empty dependencies file for ilps_pkg.
# This may be replaced when dependencies are built.
