file(REMOVE_RECURSE
  "libilps_pkg.a"
)
