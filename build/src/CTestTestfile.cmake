# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("mpi")
subdirs("tcl")
subdirs("blob")
subdirs("adlb")
subdirs("python")
subdirs("rlang")
subdirs("pkg")
subdirs("bind")
subdirs("turbine")
subdirs("swift")
subdirs("runtime")
