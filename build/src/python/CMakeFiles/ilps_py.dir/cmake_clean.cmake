file(REMOVE_RECURSE
  "CMakeFiles/ilps_py.dir/builtins.cc.o"
  "CMakeFiles/ilps_py.dir/builtins.cc.o.d"
  "CMakeFiles/ilps_py.dir/interp.cc.o"
  "CMakeFiles/ilps_py.dir/interp.cc.o.d"
  "CMakeFiles/ilps_py.dir/lexer.cc.o"
  "CMakeFiles/ilps_py.dir/lexer.cc.o.d"
  "CMakeFiles/ilps_py.dir/parser.cc.o"
  "CMakeFiles/ilps_py.dir/parser.cc.o.d"
  "CMakeFiles/ilps_py.dir/value.cc.o"
  "CMakeFiles/ilps_py.dir/value.cc.o.d"
  "libilps_py.a"
  "libilps_py.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_py.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
