file(REMOVE_RECURSE
  "libilps_py.a"
)
