# Empty compiler generated dependencies file for ilps_py.
# This may be replaced when dependencies are built.
