file(REMOVE_RECURSE
  "CMakeFiles/ilps_turbine.dir/app.cc.o"
  "CMakeFiles/ilps_turbine.dir/app.cc.o.d"
  "CMakeFiles/ilps_turbine.dir/context.cc.o"
  "CMakeFiles/ilps_turbine.dir/context.cc.o.d"
  "CMakeFiles/ilps_turbine.dir/engine.cc.o"
  "CMakeFiles/ilps_turbine.dir/engine.cc.o.d"
  "libilps_turbine.a"
  "libilps_turbine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_turbine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
