file(REMOVE_RECURSE
  "libilps_turbine.a"
)
