# Empty dependencies file for ilps_turbine.
# This may be replaced when dependencies are built.
