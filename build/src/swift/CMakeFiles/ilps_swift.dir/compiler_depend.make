# Empty compiler generated dependencies file for ilps_swift.
# This may be replaced when dependencies are built.
