file(REMOVE_RECURSE
  "libilps_swift.a"
)
