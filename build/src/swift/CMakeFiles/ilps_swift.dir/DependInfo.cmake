
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swift/compiler.cc" "src/swift/CMakeFiles/ilps_swift.dir/compiler.cc.o" "gcc" "src/swift/CMakeFiles/ilps_swift.dir/compiler.cc.o.d"
  "/root/repo/src/swift/parser.cc" "src/swift/CMakeFiles/ilps_swift.dir/parser.cc.o" "gcc" "src/swift/CMakeFiles/ilps_swift.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ilps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tcl/CMakeFiles/ilps_tcl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
