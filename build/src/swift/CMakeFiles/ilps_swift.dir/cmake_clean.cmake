file(REMOVE_RECURSE
  "CMakeFiles/ilps_swift.dir/compiler.cc.o"
  "CMakeFiles/ilps_swift.dir/compiler.cc.o.d"
  "CMakeFiles/ilps_swift.dir/parser.cc.o"
  "CMakeFiles/ilps_swift.dir/parser.cc.o.d"
  "libilps_swift.a"
  "libilps_swift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_swift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
