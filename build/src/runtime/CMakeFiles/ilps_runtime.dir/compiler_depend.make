# Empty compiler generated dependencies file for ilps_runtime.
# This may be replaced when dependencies are built.
