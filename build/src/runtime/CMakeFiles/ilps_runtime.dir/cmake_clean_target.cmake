file(REMOVE_RECURSE
  "libilps_runtime.a"
)
