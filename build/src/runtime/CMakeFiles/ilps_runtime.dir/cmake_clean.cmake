file(REMOVE_RECURSE
  "CMakeFiles/ilps_runtime.dir/runner.cc.o"
  "CMakeFiles/ilps_runtime.dir/runner.cc.o.d"
  "libilps_runtime.a"
  "libilps_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
