file(REMOVE_RECURSE
  "CMakeFiles/ilps_bind.dir/bindgen.cc.o"
  "CMakeFiles/ilps_bind.dir/bindgen.cc.o.d"
  "libilps_bind.a"
  "libilps_bind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_bind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
