# Empty dependencies file for ilps_bind.
# This may be replaced when dependencies are built.
