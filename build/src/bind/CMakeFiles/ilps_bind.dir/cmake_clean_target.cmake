file(REMOVE_RECURSE
  "libilps_bind.a"
)
