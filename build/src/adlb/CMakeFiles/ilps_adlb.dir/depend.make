# Empty dependencies file for ilps_adlb.
# This may be replaced when dependencies are built.
