file(REMOVE_RECURSE
  "CMakeFiles/ilps_adlb.dir/client.cc.o"
  "CMakeFiles/ilps_adlb.dir/client.cc.o.d"
  "CMakeFiles/ilps_adlb.dir/protocol.cc.o"
  "CMakeFiles/ilps_adlb.dir/protocol.cc.o.d"
  "CMakeFiles/ilps_adlb.dir/server.cc.o"
  "CMakeFiles/ilps_adlb.dir/server.cc.o.d"
  "libilps_adlb.a"
  "libilps_adlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_adlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
