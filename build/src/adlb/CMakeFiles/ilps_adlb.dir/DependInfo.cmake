
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adlb/client.cc" "src/adlb/CMakeFiles/ilps_adlb.dir/client.cc.o" "gcc" "src/adlb/CMakeFiles/ilps_adlb.dir/client.cc.o.d"
  "/root/repo/src/adlb/protocol.cc" "src/adlb/CMakeFiles/ilps_adlb.dir/protocol.cc.o" "gcc" "src/adlb/CMakeFiles/ilps_adlb.dir/protocol.cc.o.d"
  "/root/repo/src/adlb/server.cc" "src/adlb/CMakeFiles/ilps_adlb.dir/server.cc.o" "gcc" "src/adlb/CMakeFiles/ilps_adlb.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ilps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/ilps_mpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
