file(REMOVE_RECURSE
  "libilps_adlb.a"
)
