# CMake generated Testfile for 
# Source directory: /root/repo/src/adlb
# Build directory: /root/repo/build/src/adlb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
