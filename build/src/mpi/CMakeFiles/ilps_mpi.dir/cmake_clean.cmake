file(REMOVE_RECURSE
  "CMakeFiles/ilps_mpi.dir/world.cc.o"
  "CMakeFiles/ilps_mpi.dir/world.cc.o.d"
  "libilps_mpi.a"
  "libilps_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
