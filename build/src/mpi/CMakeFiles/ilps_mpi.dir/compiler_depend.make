# Empty compiler generated dependencies file for ilps_mpi.
# This may be replaced when dependencies are built.
