file(REMOVE_RECURSE
  "libilps_mpi.a"
)
