# Empty dependencies file for ilps_blob.
# This may be replaced when dependencies are built.
