
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blob/blob.cc" "src/blob/CMakeFiles/ilps_blob.dir/blob.cc.o" "gcc" "src/blob/CMakeFiles/ilps_blob.dir/blob.cc.o.d"
  "/root/repo/src/blob/blobutils_tcl.cc" "src/blob/CMakeFiles/ilps_blob.dir/blobutils_tcl.cc.o" "gcc" "src/blob/CMakeFiles/ilps_blob.dir/blobutils_tcl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ilps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tcl/CMakeFiles/ilps_tcl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
