file(REMOVE_RECURSE
  "CMakeFiles/ilps_blob.dir/blob.cc.o"
  "CMakeFiles/ilps_blob.dir/blob.cc.o.d"
  "CMakeFiles/ilps_blob.dir/blobutils_tcl.cc.o"
  "CMakeFiles/ilps_blob.dir/blobutils_tcl.cc.o.d"
  "libilps_blob.a"
  "libilps_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilps_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
