file(REMOVE_RECURSE
  "libilps_blob.a"
)
