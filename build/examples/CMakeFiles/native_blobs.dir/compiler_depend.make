# Empty compiler generated dependencies file for native_blobs.
# This may be replaced when dependencies are built.
