file(REMOVE_RECURSE
  "CMakeFiles/native_blobs.dir/native_blobs.cpp.o"
  "CMakeFiles/native_blobs.dir/native_blobs.cpp.o.d"
  "native_blobs"
  "native_blobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_blobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
