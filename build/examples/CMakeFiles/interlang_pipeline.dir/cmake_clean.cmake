file(REMOVE_RECURSE
  "CMakeFiles/interlang_pipeline.dir/interlang_pipeline.cpp.o"
  "CMakeFiles/interlang_pipeline.dir/interlang_pipeline.cpp.o.d"
  "interlang_pipeline"
  "interlang_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interlang_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
