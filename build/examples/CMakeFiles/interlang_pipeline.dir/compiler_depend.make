# Empty compiler generated dependencies file for interlang_pipeline.
# This may be replaced when dependencies are built.
