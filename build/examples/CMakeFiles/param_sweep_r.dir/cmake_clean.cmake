file(REMOVE_RECURSE
  "CMakeFiles/param_sweep_r.dir/param_sweep_r.cpp.o"
  "CMakeFiles/param_sweep_r.dir/param_sweep_r.cpp.o.d"
  "param_sweep_r"
  "param_sweep_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_sweep_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
