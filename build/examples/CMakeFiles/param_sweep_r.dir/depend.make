# Empty dependencies file for param_sweep_r.
# This may be replaced when dependencies are built.
