# Empty compiler generated dependencies file for montecarlo_pi.
# This may be replaced when dependencies are built.
