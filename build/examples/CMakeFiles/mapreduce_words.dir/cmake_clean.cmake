file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_words.dir/mapreduce_words.cpp.o"
  "CMakeFiles/mapreduce_words.dir/mapreduce_words.cpp.o.d"
  "mapreduce_words"
  "mapreduce_words.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
