# Empty dependencies file for mapreduce_words.
# This may be replaced when dependencies are built.
