# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/tcl_value_test[1]_include.cmake")
include("/root/repo/build/tests/tcl_interp_test[1]_include.cmake")
include("/root/repo/build/tests/tcl_expr_test[1]_include.cmake")
include("/root/repo/build/tests/tcl_builtins_test[1]_include.cmake")
include("/root/repo/build/tests/blob_test[1]_include.cmake")
include("/root/repo/build/tests/adlb_test[1]_include.cmake")
include("/root/repo/build/tests/python_test[1]_include.cmake")
include("/root/repo/build/tests/rlang_test[1]_include.cmake")
include("/root/repo/build/tests/pkg_test[1]_include.cmake")
include("/root/repo/build/tests/bind_test[1]_include.cmake")
include("/root/repo/build/tests/turbine_test[1]_include.cmake")
include("/root/repo/build/tests/swift_test[1]_include.cmake")
include("/root/repo/build/tests/swift_array_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/conversion_test[1]_include.cmake")
include("/root/repo/build/tests/bgq_scenario_test[1]_include.cmake")
include("/root/repo/build/tests/expr_fuzz_test[1]_include.cmake")
