file(REMOVE_RECURSE
  "CMakeFiles/bgq_scenario_test.dir/bgq_scenario_test.cc.o"
  "CMakeFiles/bgq_scenario_test.dir/bgq_scenario_test.cc.o.d"
  "bgq_scenario_test"
  "bgq_scenario_test.pdb"
  "bgq_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
