# Empty compiler generated dependencies file for bgq_scenario_test.
# This may be replaced when dependencies are built.
