# Empty dependencies file for rlang_test.
# This may be replaced when dependencies are built.
