file(REMOVE_RECURSE
  "CMakeFiles/rlang_test.dir/rlang_test.cc.o"
  "CMakeFiles/rlang_test.dir/rlang_test.cc.o.d"
  "rlang_test"
  "rlang_test.pdb"
  "rlang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
