file(REMOVE_RECURSE
  "CMakeFiles/tcl_value_test.dir/tcl_value_test.cc.o"
  "CMakeFiles/tcl_value_test.dir/tcl_value_test.cc.o.d"
  "tcl_value_test"
  "tcl_value_test.pdb"
  "tcl_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcl_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
