
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/swift_test.cc" "tests/CMakeFiles/swift_test.dir/swift_test.cc.o" "gcc" "tests/CMakeFiles/swift_test.dir/swift_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swift/CMakeFiles/ilps_swift.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ilps_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/turbine/CMakeFiles/ilps_turbine.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/ilps_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/tcl/CMakeFiles/ilps_tcl.dir/DependInfo.cmake"
  "/root/repo/build/src/python/CMakeFiles/ilps_py.dir/DependInfo.cmake"
  "/root/repo/build/src/rlang/CMakeFiles/ilps_r.dir/DependInfo.cmake"
  "/root/repo/build/src/adlb/CMakeFiles/ilps_adlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/ilps_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ilps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
