file(REMOVE_RECURSE
  "CMakeFiles/swift_test.dir/swift_test.cc.o"
  "CMakeFiles/swift_test.dir/swift_test.cc.o.d"
  "swift_test"
  "swift_test.pdb"
  "swift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
