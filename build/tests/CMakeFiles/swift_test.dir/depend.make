# Empty dependencies file for swift_test.
# This may be replaced when dependencies are built.
