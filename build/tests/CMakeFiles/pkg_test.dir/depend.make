# Empty dependencies file for pkg_test.
# This may be replaced when dependencies are built.
