file(REMOVE_RECURSE
  "CMakeFiles/turbine_test.dir/turbine_test.cc.o"
  "CMakeFiles/turbine_test.dir/turbine_test.cc.o.d"
  "turbine_test"
  "turbine_test.pdb"
  "turbine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
