# Empty compiler generated dependencies file for turbine_test.
# This may be replaced when dependencies are built.
