file(REMOVE_RECURSE
  "CMakeFiles/bind_test.dir/bind_test.cc.o"
  "CMakeFiles/bind_test.dir/bind_test.cc.o.d"
  "bind_test"
  "bind_test.pdb"
  "bind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
