# Empty compiler generated dependencies file for tcl_builtins_test.
# This may be replaced when dependencies are built.
