file(REMOVE_RECURSE
  "CMakeFiles/tcl_builtins_test.dir/tcl_builtins_test.cc.o"
  "CMakeFiles/tcl_builtins_test.dir/tcl_builtins_test.cc.o.d"
  "tcl_builtins_test"
  "tcl_builtins_test.pdb"
  "tcl_builtins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcl_builtins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
