# Empty compiler generated dependencies file for tcl_expr_test.
# This may be replaced when dependencies are built.
