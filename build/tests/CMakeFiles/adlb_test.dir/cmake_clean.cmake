file(REMOVE_RECURSE
  "CMakeFiles/adlb_test.dir/adlb_test.cc.o"
  "CMakeFiles/adlb_test.dir/adlb_test.cc.o.d"
  "adlb_test"
  "adlb_test.pdb"
  "adlb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
