# Empty dependencies file for adlb_test.
# This may be replaced when dependencies are built.
