file(REMOVE_RECURSE
  "CMakeFiles/swift_array_test.dir/swift_array_test.cc.o"
  "CMakeFiles/swift_array_test.dir/swift_array_test.cc.o.d"
  "swift_array_test"
  "swift_array_test.pdb"
  "swift_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
