# Empty compiler generated dependencies file for swift_array_test.
# This may be replaced when dependencies are built.
