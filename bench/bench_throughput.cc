// E2 (Fig. 2): task throughput of the engine/server/worker architecture.
//
// The paper's architecture claim is that ADLB-style task distribution has
// "no bottleneck": adding workers increases delivered task throughput. We
// run two workloads against worker counts 1..32:
//  - "1ms tasks": each leaf task sleeps ~1ms (a stand-in for real compute;
//    sleeping tasks overlap across worker threads, so speedup is visible
//    even on one core);
//  - "no-op tasks": pure runtime overhead, measuring the task-dispatch
//    ceiling (tasks/second through put/match/deliver).
#include <unistd.h>

#include <string>

#include "bench/bench_util.h"
#include "runtime/runner.h"

using namespace ilps;

namespace {

// Tcl command that sleeps for the given microseconds (registered on every
// rank; models a compute kernel).
void install_spin(tcl::Interp& in) {
  in.register_command("bench::sleep_us", [](tcl::Interp&, std::vector<std::string>& a) {
    usleep(static_cast<useconds_t>(std::stol(a.at(1))));
    return std::string();
  });
}

runtime::RunResult run_workload(int workers, int tasks, int task_us) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = workers;
  cfg.servers = 1;
  cfg.setup_interp = install_spin;
  std::string body = task_us > 0 ? "bench::sleep_us " + std::to_string(task_us) : "set _x 1";
  std::string program;
  program += "for {set i 0} {$i < " + std::to_string(tasks) + "} {incr i} {\n";
  program += "  turbine::put_work {" + body + "}\n";
  program += "}\n";
  return runtime::run_program(cfg, program);
}

void emit_json(const char* workload, int workers, int tasks, const runtime::RunResult& r) {
  bench::JsonLine("throughput")
      .add_str("workload", workload)
      .add("workers", workers)
      .add("tasks", tasks)
      .add("elapsed_s", r.elapsed_seconds)
      .add("tasks_per_s", tasks / r.elapsed_seconds)
      .add("adlb_matches", r.server_stats.matches)
      .add("mpi_messages", r.traffic.messages)
      .print();
}

}  // namespace

int main() {
  bench::banner("E2", "task throughput vs worker count (Fig. 2 architecture)",
                "servers distribute tasks to workers with no bottleneck; "
                "throughput scales with workers");

  {
    const int tasks = 256;
    const int task_us = 1000;
    bench::Table t({"workers", "tasks", "task_cost", "elapsed_s", "tasks/s", "speedup", "eff"});
    double base = 0;
    for (int workers : {1, 2, 4, 8, 16, 32}) {
      auto result = run_workload(workers, tasks, task_us);
      double elapsed = result.elapsed_seconds;
      emit_json("1ms", workers, tasks, result);
      if (workers == 1) base = elapsed;
      double speedup = base / elapsed;
      t.row({std::to_string(workers), std::to_string(tasks), "1ms",
             bench::fmt("%.3f", elapsed), bench::fmt("%.0f", tasks / elapsed),
             bench::fmt("%.2fx", speedup), bench::fmt("%.0f%%", 100.0 * speedup / workers)});
    }
    t.print();
  }

  {
    const int tasks = 4000;
    bench::Table t({"workers", "tasks", "task_cost", "elapsed_s", "tasks/s"});
    for (int workers : {1, 2, 4, 8, 16}) {
      auto result = run_workload(workers, tasks, 0);
      double elapsed = result.elapsed_seconds;
      emit_json("noop", workers, tasks, result);
      t.row({std::to_string(workers), std::to_string(tasks), "no-op",
             bench::fmt("%.3f", elapsed), bench::fmt("%.0f", tasks / elapsed)});
    }
    std::printf("\n");
    t.print();
    std::printf("\nno-op rows measure pure dispatch overhead; the ceiling is the\n"
                "single message loop of this thread-backed transport.\n");
  }
  return 0;
}
