// E9 (§II.B): ADLB server scalability — "ADLB servers, shown as an opaque
// subsystem, distribute tasks to workers" with "no bottleneck".
//
// Two server-side workloads as a function of server count:
//  - data ops: each client runs create/store/retrieve cycles against the
//    sharded store (ids hash across servers);
//  - task ops: each client puts and gets its own stream of tasks.
//  - hot read: one closed datum read repeatedly by every worker, with the
//    client datum cache on vs off — the data-locality case a fan-out
//    foreach over a shared input produces.
// The metric is aggregate operations per second; more servers should
// sustain equal or higher rates (shards split the load), not collapse.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <string>

#include "adlb/client.h"
#include "adlb/server.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "mpi/comm.h"

using namespace ilps;

namespace {

double run_data_ops(int clients, int servers, int ops_per_client) {
  adlb::Config cfg;
  cfg.nservers = servers;
  mpi::World world(clients + servers);
  Timer t;
  world.run([&](mpi::Comm& comm) {
    if (adlb::is_server(comm.rank(), comm.size(), cfg)) {
      adlb::Server server(comm, cfg);
      server.serve();
      return;
    }
    adlb::Client client(comm, cfg);
    for (int i = 0; i < ops_per_client; ++i) {
      int64_t id = client.unique();
      client.create(id, adlb::DataType::kInteger);
      client.store(id, std::to_string(i));
      (void)client.retrieve(id);
    }
    (void)client.get(adlb::kTypeWork);  // park for shutdown
  });
  return t.elapsed();
}

double run_task_ops(int clients, int servers, int tasks_per_client) {
  adlb::Config cfg;
  cfg.nservers = servers;
  mpi::World world(clients + servers);
  Timer t;
  world.run([&](mpi::Comm& comm) {
    if (adlb::is_server(comm.rank(), comm.size(), cfg)) {
      adlb::Server server(comm, cfg);
      server.serve();
      return;
    }
    adlb::Client client(comm, cfg);
    for (int i = 0; i < tasks_per_client; ++i) {
      client.put({adlb::kTypeWork, 0, adlb::kAnyRank, adlb::kAnyRank, "payload"});
    }
    int got = 0;
    while (client.get(adlb::kTypeWork)) ++got;
  });
  return t.elapsed();
}

struct HotReadResult {
  double read_seconds = 0;  // slowest reader's read loop
  adlb::DataCacheStats cache;
};

// Rank 0 stores one payload; `readers` ranks wait for the close and then
// each retrieve it `repeats` times. Only the read loops are timed.
HotReadResult run_hot_read(int readers, int servers, int repeats, int cache_mb,
                           size_t payload_bytes) {
  adlb::Config cfg;
  cfg.nservers = servers;
  cfg.data_cache_mb = cache_mb;
  const int64_t id = 424242;
  const std::string payload(payload_bytes, 'x');
  HotReadResult out;
  std::mutex mu;
  mpi::World world(1 + readers + servers);
  world.run([&](mpi::Comm& comm) {
    if (adlb::is_server(comm.rank(), comm.size(), cfg)) {
      adlb::Server server(comm, cfg);
      server.serve();
      return;
    }
    adlb::Client client(comm, cfg);
    if (comm.rank() == 0) {
      client.create(id, adlb::DataType::kString);
      client.store(id, payload);
      (void)client.get(adlb::kTypeWork);  // park for shutdown
      return;
    }
    // Readers block until the datum closes (subscribe delivers a targeted
    // notification unit), so no reader races the store.
    if (!client.subscribe(id, adlb::kTypeWork)) {
      (void)client.get(adlb::kTypeWork);
    }
    Timer t;
    for (int i = 0; i < repeats; ++i) {
      if (client.retrieve(id).size() != payload.size()) std::abort();
    }
    const double elapsed = t.elapsed();
    {
      std::lock_guard<std::mutex> lock(mu);
      out.read_seconds = std::max(out.read_seconds, elapsed);
      out.cache += client.cache_stats();
    }
    (void)client.get(adlb::kTypeWork);  // park for shutdown
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("E9", "ADLB server throughput vs server count",
                "the server tier distributes work and data without becoming a "
                "bottleneck; sharding over more servers sustains throughput");

  const int clients = 8;
  // Best-of-N elapsed per configuration: a min-time estimator strips
  // scheduler noise (this is a threads-as-ranks world, so an unlucky
  // preemption inflates a single run by tens of percent), which the CI
  // scaling assertion on these numbers depends on.
  const int reps = smoke ? 3 : 5;
  {
    const int ops = smoke ? 100 : 400;  // x3 data ops each (create/store/retrieve)
    bench::Table t({"servers", "clients", "data_ops", "elapsed_s", "ops/s"});
    for (int servers : {1, 2, 4}) {
      double elapsed = run_data_ops(clients, servers, ops);
      for (int rep = 1; rep < reps; ++rep) {
        elapsed = std::min(elapsed, run_data_ops(clients, servers, ops));
      }
      double total = 3.0 * ops * clients;
      bench::JsonLine("datastore_data_ops")
          .add("servers", servers)
          .add("clients", clients)
          .add("ops", total)
          .add("elapsed_s", elapsed)
          .add("ops_per_s", total / elapsed)
          .print();
      t.row({std::to_string(servers), std::to_string(clients), bench::fmt("%.0f", total),
             bench::fmt("%.3f", elapsed), bench::fmt("%.0f", total / elapsed)});
    }
    t.print();
  }
  {
    const int tasks = smoke ? 150 : 500;
    std::printf("\n");
    bench::Table t({"servers", "clients", "task_put+get", "elapsed_s", "tasks/s"});
    for (int servers : {1, 2, 4}) {
      double elapsed = run_task_ops(clients, servers, tasks);
      for (int rep = 1; rep < reps; ++rep) {
        elapsed = std::min(elapsed, run_task_ops(clients, servers, tasks));
      }
      double total = static_cast<double>(tasks) * clients;
      bench::JsonLine("datastore_task_ops")
          .add("servers", servers)
          .add("clients", clients)
          .add("tasks", total)
          .add("elapsed_s", elapsed)
          .add("tasks_per_s", total / elapsed)
          .print();
      t.row({std::to_string(servers), std::to_string(clients), bench::fmt("%.0f", total),
             bench::fmt("%.3f", elapsed), bench::fmt("%.0f", total / elapsed)});
    }
    t.print();
  }
  {
    // Hot-read: W readers x R repeats of one closed 4 KiB datum; the
    // cached case should beat cache_mb=0 by well over the 5x acceptance
    // bar, because every re-read is a local view instead of an RPC.
    const int readers = 8;
    const int repeats = smoke ? 200 : 2000;
    const size_t payload = 4096;
    std::printf("\n");
    bench::Table t({"servers", "readers", "repeats", "cache", "reads/s", "hits", "misses"});
    for (int servers : {1, 2}) {
      for (int cache_mb : {0, 64}) {
        HotReadResult r = run_hot_read(readers, servers, repeats, cache_mb, payload);
        const double total = static_cast<double>(readers) * repeats;
        const double rate = total / r.read_seconds;
        bench::JsonLine("datastore_hot_read")
            .add("servers", servers)
            .add("readers", readers)
            .add("repeats", repeats)
            .add("cache_mb", cache_mb)
            .add("payload_bytes", static_cast<double>(payload))
            .add("reads", total)
            .add("elapsed_s", r.read_seconds)
            .add("reads_per_s", rate)
            .add("cache_hits", static_cast<double>(r.cache.hits))
            .add("cache_misses", static_cast<double>(r.cache.misses))
            .print();
        t.row({std::to_string(servers), std::to_string(readers), std::to_string(repeats),
               cache_mb == 0 ? "off" : "on", bench::fmt("%.0f", rate),
               std::to_string(r.cache.hits), std::to_string(r.cache.misses)});
      }
    }
    t.print();
  }
  return 0;
}
