// E9 (§II.B): ADLB server scalability — "ADLB servers, shown as an opaque
// subsystem, distribute tasks to workers" with "no bottleneck".
//
// Two server-side workloads as a function of server count:
//  - data ops: each client runs create/store/retrieve cycles against the
//    sharded store (ids hash across servers);
//  - task ops: each client puts and gets its own stream of tasks.
// The metric is aggregate operations per second; more servers should
// sustain equal or higher rates (shards split the load), not collapse.
#include <atomic>

#include "adlb/client.h"
#include "adlb/server.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "mpi/comm.h"

using namespace ilps;

namespace {

double run_data_ops(int clients, int servers, int ops_per_client) {
  adlb::Config cfg;
  cfg.nservers = servers;
  mpi::World world(clients + servers);
  Timer t;
  world.run([&](mpi::Comm& comm) {
    if (adlb::is_server(comm.rank(), comm.size(), cfg)) {
      adlb::Server server(comm, cfg);
      server.serve();
      return;
    }
    adlb::Client client(comm, cfg);
    for (int i = 0; i < ops_per_client; ++i) {
      int64_t id = client.unique();
      client.create(id, adlb::DataType::kInteger);
      client.store(id, std::to_string(i));
      (void)client.retrieve(id);
    }
    (void)client.get(adlb::kTypeWork);  // park for shutdown
  });
  return t.elapsed();
}

double run_task_ops(int clients, int servers, int tasks_per_client) {
  adlb::Config cfg;
  cfg.nservers = servers;
  mpi::World world(clients + servers);
  Timer t;
  world.run([&](mpi::Comm& comm) {
    if (adlb::is_server(comm.rank(), comm.size(), cfg)) {
      adlb::Server server(comm, cfg);
      server.serve();
      return;
    }
    adlb::Client client(comm, cfg);
    for (int i = 0; i < tasks_per_client; ++i) {
      client.put({adlb::kTypeWork, 0, adlb::kAnyRank, adlb::kAnyRank, "payload"});
    }
    int got = 0;
    while (client.get(adlb::kTypeWork)) ++got;
  });
  return t.elapsed();
}

}  // namespace

int main() {
  bench::banner("E9", "ADLB server throughput vs server count",
                "the server tier distributes work and data without becoming a "
                "bottleneck; sharding over more servers sustains throughput");

  const int clients = 8;
  {
    const int ops = 400;  // x3 RPCs each (create/store/retrieve)
    bench::Table t({"servers", "clients", "data_ops", "elapsed_s", "ops/s"});
    for (int servers : {1, 2, 4}) {
      double elapsed = run_data_ops(clients, servers, ops);
      double total = 3.0 * ops * clients;
      bench::JsonLine("datastore_data_ops")
          .add("servers", servers)
          .add("clients", clients)
          .add("ops", total)
          .add("elapsed_s", elapsed)
          .add("ops_per_s", total / elapsed)
          .print();
      t.row({std::to_string(servers), std::to_string(clients), bench::fmt("%.0f", total),
             bench::fmt("%.3f", elapsed), bench::fmt("%.0f", total / elapsed)});
    }
    t.print();
  }
  {
    const int tasks = 500;
    std::printf("\n");
    bench::Table t({"servers", "clients", "task_put+get", "elapsed_s", "tasks/s"});
    for (int servers : {1, 2, 4}) {
      double elapsed = run_task_ops(clients, servers, tasks);
      double total = static_cast<double>(tasks) * clients;
      bench::JsonLine("datastore_task_ops")
          .add("servers", servers)
          .add("clients", clients)
          .add("tasks", total)
          .add("elapsed_s", elapsed)
          .add("tasks_per_s", total / elapsed)
          .print();
      t.row({std::to_string(servers), std::to_string(clients), bench::fmt("%.0f", total),
             bench::fmt("%.3f", elapsed), bench::fmt("%.0f", total / elapsed)});
    }
    t.print();
  }
  return 0;
}
