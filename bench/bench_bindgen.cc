// E8 (Fig. 3): the cost of reaching native code through generated
// bindings.
//
// The Fig. 3 pipeline makes functions in afunc.o callable from Swift/T
// through SWIG-generated Tcl wrappers. The layers here:
//   direct call            — plain C++ call (the floor)
//   adapter                — NativeLibrary's generated argument adapter
//   generated Tcl wrapper  — bind_to_tcl command invoked through MiniTcl
//   hand-written wrapper   — a manually coded MiniTcl command (what you'd
//                            write without SWIG; the generated one should
//                            match it)
// Plus a blob-array call, where per-call overhead amortizes over the
// array.
#include <benchmark/benchmark.h>

#include "bind/bindgen.h"
#include "tcl/interp.h"

namespace {

int add_ints(int a, int b) { return a + b; }
double vec_sum(const double* data, int n) {
  double s = 0;
  for (int i = 0; i < n; ++i) s += data[i];
  return s;
}

void BM_DirectCall(benchmark::State& state) {
  int x = 0;
  for (auto _ : state) {
    x = add_ints(x, 1);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DirectCall);

void BM_NativeAdapter(benchmark::State& state) {
  ilps::bind::NativeLibrary lib;
  lib.add("add_ints", &add_ints);
  const ilps::bind::NativeFn* fn = lib.find("add_ints");
  for (auto _ : state) {
    std::vector<ilps::bind::NativeValue> args = {ilps::bind::NativeValue(int64_t{20}),
                                                 ilps::bind::NativeValue(int64_t{22})};
    benchmark::DoNotOptimize((*fn)(args));
  }
}
BENCHMARK(BM_NativeAdapter);

void BM_GeneratedTclWrapper(benchmark::State& state) {
  ilps::tcl::Interp in;
  ilps::blob::Registry blobs;
  ilps::bind::NativeLibrary lib;
  lib.add("add_ints", &add_ints);
  auto protos = ilps::bind::parse_header("int add_ints(int a, int b);");
  ilps::bind::bind_to_tcl(in, "lib", protos, lib, blobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.eval("lib::add_ints 20 22"));
  }
}
BENCHMARK(BM_GeneratedTclWrapper);

void BM_HandWrittenTclWrapper(benchmark::State& state) {
  ilps::tcl::Interp in;
  in.register_command("hand_add", [](ilps::tcl::Interp&, std::vector<std::string>& a) {
    return std::to_string(add_ints(std::stoi(a[1]), std::stoi(a[2])));
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.eval("hand_add 20 22"));
  }
}
BENCHMARK(BM_HandWrittenTclWrapper);

void BM_GeneratedBlobCall(benchmark::State& state) {
  ilps::tcl::Interp in;
  ilps::blob::Registry blobs;
  ilps::blob::register_blobutils(in, blobs);
  ilps::bind::NativeLibrary lib;
  lib.add("vec_sum", &vec_sum);
  auto protos = ilps::bind::parse_header("double vec_sum(const double* data, int n);");
  ilps::bind::bind_to_tcl(in, "lib", protos, lib, blobs);
  int64_t n = state.range(0);
  in.eval("set h [blobutils::zeroes_float " + std::to_string(n) + "]");
  std::string call = "lib::vec_sum $h " + std::to_string(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.eval(call));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GeneratedBlobCall)->Range(1 << 8, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
