// Shared helpers for the ILPS benchmark harnesses: aligned table printing
// so each bench reproduces its experiment as readable rows, plus one
// machine-readable "BENCH_JSON {...}" line per measurement (JsonLine) so
// sweeps can be collected with a grep instead of a per-bench parser.
#pragma once

#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

namespace ilps::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < cells.size(); ++c) {
        std::printf("%-*s", static_cast<int>(width[c] + 2), cells[c].c_str());
      }
      std::printf("\n");
    };
    line(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) rule += std::string(width[c], '-') + "  ";
    std::printf("%s\n", rule.c_str());
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

// One structured result line: name, parameters, wall time, derived rate,
// and any counters worth keeping (obs metrics, task counts). Emitted to
// stdout as `BENCH_JSON {...}` — stable prefix, one object per line.
class JsonLine {
 public:
  explicit JsonLine(const std::string& name) { add_str("bench", name); }

  JsonLine& add_str(const std::string& key, const std::string& value) {
    field(key) += '"' + escaped(value) + '"';
    return *this;
  }
  JsonLine& add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    field(key) += buf;
    return *this;
  }
  JsonLine& add(const std::string& key, int64_t value) {
    field(key) += std::to_string(value);
    return *this;
  }
  JsonLine& add(const std::string& key, uint64_t value) {
    field(key) += std::to_string(value);
    return *this;
  }
  // Catch-all for the remaining integer widths (int, size_t where it is
  // not already uint64_t, ...) — avoids duplicate-overload errors on
  // platforms where size_t aliases one of the explicit types above.
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  JsonLine& add(const std::string& key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return add(key, static_cast<int64_t>(value));
    } else {
      return add(key, static_cast<uint64_t>(value));
    }
  }

  void print() const { std::printf("BENCH_JSON {%s}\n", body_.c_str()); }

 private:
  std::string& field(const std::string& key) {
    if (!body_.empty()) body_ += ", ";
    body_ += '"' + escaped(key) + "\": ";
    return body_;
  }
  // Full JSON string escaping: quotes, backslashes, and every control
  // character (benchmark names and error strings can carry newlines and
  // tabs, which would otherwise break the one-object-per-line contract).
  static std::string escaped(const std::string& s) {
    std::string out;
    for (char ch : s) {
      const unsigned char c = static_cast<unsigned char>(ch);
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    return out;
  }
  std::string body_;
};

inline void banner(const char* id, const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace ilps::bench
