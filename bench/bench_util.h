// Shared helpers for the ILPS benchmark harnesses: aligned table printing
// so each bench reproduces its experiment as readable rows.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace ilps::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < cells.size(); ++c) {
        std::printf("%-*s", static_cast<int>(width[c] + 2), cells[c].c_str());
      }
      std::printf("\n");
    };
    line(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) rule += std::string(width[c], '-') + "  ";
    std::printf("%s\n", rule.c_str());
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

inline void banner(const char* id, const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace ilps::bench
