// E1 (Fig. 1): implicit dataflow of a Swift loop.
//
// The figure shows `foreach i { t=f(i); if (g(t)==0) printf }` expanding
// into independent pipelines that execute concurrently. We compile and run
// exactly that program for growing loop sizes and report rule-engine and
// pipeline metrics; a depth sweep (chains of dependent calls per
// iteration) shows rule cost scaling with pipeline length.
#include <string>

#include "bench/bench_util.h"
#include "runtime/runner.h"
#include "swift/compiler.h"

using namespace ilps;

namespace {

runtime::RunResult run_fig1(int n, int workers) {
  std::string src = R"SWIFT(
    (int o) f (int i) [ "set <<o>> [ expr <<i>> * <<i>> ]" ];
    (int o) g (int t) [ "set <<o>> [ expr <<t>> % 3 ]" ];
    foreach i in [0:N_MINUS_1] {
      int t = f(i);
      int gt = g(t);
      if (gt == 0) { printf("g(%d) == 0", t); }
    }
  )SWIFT";
  size_t pos = src.find("N_MINUS_1");
  src.replace(pos, 9, std::to_string(n - 1));
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = workers;
  cfg.servers = 1;
  return runtime::run_program(cfg, swift::compile(src));
}

// Fire-path microbenchmark: LOCAL rules on a single engine, so the
// measured cost is rule dispatch plus MiniTcl action evaluation with no
// cross-rank messaging in the loop. The action is an STC-shaped leaf
// fragment — a proc call running expr/control-flow work — cycled over
// `span` distinct action strings so the per-rank compiled-unit cache
// serves hits (as it does for real programs, which fire the same action
// text many times). Run with the bytecode layer on and off to expose the
// per-fire dispatch-cost drop.
runtime::RunResult run_fire(int n, int span, bool compiled) {
  std::string prog =
      "proc b:f {i} {\n"
      "  set s 0\n"
      "  for {set j 0} {$j < 4} {incr j} {\n"
      "    if {$j % 2 == 0} { set s [expr {$s + $i * $j}] } else { set s [expr {$s - $j}] }\n"
      "  }\n"
      "  return $s\n"
      "}\n"
      "for {set i 0} {$i < " + std::to_string(n) + "} {incr i} {\n"
      "  turbine::rule {} \"b:f [expr {$i % " + std::to_string(span) + "}]\" type LOCAL\n"
      "}\n";
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 1;
  cfg.servers = 1;
  // && compile_enabled() keeps ILPS_TCL_COMPILE=0 authoritative: under it
  // both passes run the pure interpreter.
  cfg.setup_interp = [compiled](tcl::Interp& in) {
    in.set_compile_enabled(compiled && in.compile_enabled());
  };
  return runtime::run_program(cfg, prog);
}

runtime::RunResult run_chain(int n, int depth, int workers) {
  // Each iteration runs a chain of `depth` dependent leaf calls.
  std::string src = "(int o) step (int i) [ \"set <<o>> [ expr <<i>> + 1 ]\" ];\n";
  src += "foreach i in [0:" + std::to_string(n - 1) + "] {\n";
  std::string prev = "i";
  for (int d = 0; d < depth; ++d) {
    std::string cur = "v" + std::to_string(d);
    src += "  int " + cur + " = step(" + prev + ");\n";
    prev = cur;
  }
  src += "  trace(" + prev + ");\n}\n";
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = workers;
  cfg.servers = 1;
  return runtime::run_program(cfg, swift::compile(src));
}

}  // namespace

int main() {
  bench::banner("E1", "implicit dataflow of a Swift loop (Fig. 1)",
                "each loop iteration forms an independent f->g pipeline; Swift "
                "constructs and executes these pipelines in parallel");

  {
    bench::Table t({"iterations", "workers", "rules", "fired", "notifs", "tasks",
                    "outputs", "elapsed_s", "pipelines/s"});
    for (int n : {8, 32, 128, 512}) {
      auto r = run_fig1(n, 4);
      bench::JsonLine("dataflow_fig1")
          .add("iterations", n)
          .add("workers", 4)
          .add("rules_created", r.engine_stats.rules_created)
          .add("rules_fired", r.engine_stats.rules_fired)
          .add("tasks", r.worker_stats.tasks)
          .add("elapsed_s", r.elapsed_seconds)
          .add("pipelines_per_s", n / r.elapsed_seconds)
          .print();
      t.row({std::to_string(n), "4", std::to_string(r.engine_stats.rules_created),
             std::to_string(r.engine_stats.rules_fired),
             std::to_string(r.engine_stats.notifications),
             std::to_string(r.worker_stats.tasks), std::to_string(r.lines.size()),
             bench::fmt("%.3f", r.elapsed_seconds),
             bench::fmt("%.0f", n / r.elapsed_seconds)});
    }
    t.print();
  }

  {
    std::printf("\npipeline depth sweep (64 iterations):\n\n");
    bench::Table t({"depth", "rules", "fired", "unfired", "elapsed_s", "rules/s"});
    for (int depth : {1, 2, 4, 8}) {
      auto r = run_chain(64, depth, 4);
      bench::JsonLine("dataflow_chain")
          .add("depth", depth)
          .add("iterations", 64)
          .add("rules_created", r.engine_stats.rules_created)
          .add("elapsed_s", r.elapsed_seconds)
          .add("rules_per_s", r.engine_stats.rules_created / r.elapsed_seconds)
          .print();
      t.row({std::to_string(depth), std::to_string(r.engine_stats.rules_created),
             std::to_string(r.engine_stats.rules_fired), std::to_string(r.unfired_rules),
             bench::fmt("%.3f", r.elapsed_seconds),
             bench::fmt("%.0f", r.engine_stats.rules_created / r.elapsed_seconds)});
    }
    t.print();
  }
  {
    std::printf("\nengine-local fire path (40000 LOCAL rules, STC-shaped action,\n"
                "64 distinct action strings), bytecode layer on vs off:\n\n");
    const int n = 40000, span = 64, reps = 3;
    bench::Table t({"mode", "rules", "elapsed_s", "per_fire_us", "rules/s", "unit_hits",
                    "compiles", "bailouts"});
    double rate[2] = {0, 0};
    for (bool compiled : {true, false}) {
      // Best of `reps`: each rep spins its own world, so the minimum is
      // the scheduling-noise-free measurement.
      runtime::RunResult best;
      double best_elapsed = 0;
      for (int rep = 0; rep < reps; ++rep) {
        auto r = run_fire(n, span, compiled);
        if (rep == 0 || r.elapsed_seconds < best_elapsed) {
          best_elapsed = r.elapsed_seconds;
          best = std::move(r);
        }
      }
      const char* mode = compiled ? "compiled" : "interpreted";
      rate[compiled ? 0 : 1] = n / best.elapsed_seconds;
      bench::JsonLine("dataflow_fire")
          .add_str("mode", mode)
          .add("iterations", n)
          .add("span", span)
          .add("rules_created", best.engine_stats.rules_created)
          .add("elapsed_s", best.elapsed_seconds)
          .add("per_fire_us", best.elapsed_seconds * 1e6 / n)
          .add("rules_per_s", n / best.elapsed_seconds)
          .add("tcl_hits", best.tcl_stats.hits)
          .add("tcl_misses", best.tcl_stats.misses)
          .add("tcl_bailouts", best.tcl_stats.bailouts)
          .add("tcl_units_cached", best.tcl_units_cached)
          .print();
      t.row({mode, std::to_string(best.engine_stats.rules_created),
             bench::fmt("%.3f", best.elapsed_seconds),
             bench::fmt("%.2f", best.elapsed_seconds * 1e6 / n),
             bench::fmt("%.0f", n / best.elapsed_seconds), std::to_string(best.tcl_stats.hits),
             std::to_string(best.tcl_stats.misses), std::to_string(best.tcl_stats.bailouts)});
    }
    t.print();
    std::printf("\ncompiled/interpreted speedup: %.2fx\n", rate[0] / rate[1]);
  }

  std::printf("\n'outputs' counts iterations whose g(t) == 0 — the i*i %% 3 == 0\n"
              "cases, i.e. one third of the loop, confirming per-pipeline\n"
              "dataflow rather than lockstep execution.\n");
  return 0;
}
