// E1 (Fig. 1): implicit dataflow of a Swift loop.
//
// The figure shows `foreach i { t=f(i); if (g(t)==0) printf }` expanding
// into independent pipelines that execute concurrently. We compile and run
// exactly that program for growing loop sizes and report rule-engine and
// pipeline metrics; a depth sweep (chains of dependent calls per
// iteration) shows rule cost scaling with pipeline length.
#include <string>

#include "bench/bench_util.h"
#include "runtime/runner.h"
#include "swift/compiler.h"

using namespace ilps;

namespace {

runtime::RunResult run_fig1(int n, int workers) {
  std::string src = R"SWIFT(
    (int o) f (int i) [ "set <<o>> [ expr <<i>> * <<i>> ]" ];
    (int o) g (int t) [ "set <<o>> [ expr <<t>> % 3 ]" ];
    foreach i in [0:N_MINUS_1] {
      int t = f(i);
      int gt = g(t);
      if (gt == 0) { printf("g(%d) == 0", t); }
    }
  )SWIFT";
  size_t pos = src.find("N_MINUS_1");
  src.replace(pos, 9, std::to_string(n - 1));
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = workers;
  cfg.servers = 1;
  return runtime::run_program(cfg, swift::compile(src));
}

runtime::RunResult run_chain(int n, int depth, int workers) {
  // Each iteration runs a chain of `depth` dependent leaf calls.
  std::string src = "(int o) step (int i) [ \"set <<o>> [ expr <<i>> + 1 ]\" ];\n";
  src += "foreach i in [0:" + std::to_string(n - 1) + "] {\n";
  std::string prev = "i";
  for (int d = 0; d < depth; ++d) {
    std::string cur = "v" + std::to_string(d);
    src += "  int " + cur + " = step(" + prev + ");\n";
    prev = cur;
  }
  src += "  trace(" + prev + ");\n}\n";
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = workers;
  cfg.servers = 1;
  return runtime::run_program(cfg, swift::compile(src));
}

}  // namespace

int main() {
  bench::banner("E1", "implicit dataflow of a Swift loop (Fig. 1)",
                "each loop iteration forms an independent f->g pipeline; Swift "
                "constructs and executes these pipelines in parallel");

  {
    bench::Table t({"iterations", "workers", "rules", "fired", "notifs", "tasks",
                    "outputs", "elapsed_s", "pipelines/s"});
    for (int n : {8, 32, 128, 512}) {
      auto r = run_fig1(n, 4);
      bench::JsonLine("dataflow_fig1")
          .add("iterations", n)
          .add("workers", 4)
          .add("rules_created", r.engine_stats.rules_created)
          .add("rules_fired", r.engine_stats.rules_fired)
          .add("tasks", r.worker_stats.tasks)
          .add("elapsed_s", r.elapsed_seconds)
          .add("pipelines_per_s", n / r.elapsed_seconds)
          .print();
      t.row({std::to_string(n), "4", std::to_string(r.engine_stats.rules_created),
             std::to_string(r.engine_stats.rules_fired),
             std::to_string(r.engine_stats.notifications),
             std::to_string(r.worker_stats.tasks), std::to_string(r.lines.size()),
             bench::fmt("%.3f", r.elapsed_seconds),
             bench::fmt("%.0f", n / r.elapsed_seconds)});
    }
    t.print();
  }

  {
    std::printf("\npipeline depth sweep (64 iterations):\n\n");
    bench::Table t({"depth", "rules", "fired", "unfired", "elapsed_s", "rules/s"});
    for (int depth : {1, 2, 4, 8}) {
      auto r = run_chain(64, depth, 4);
      bench::JsonLine("dataflow_chain")
          .add("depth", depth)
          .add("iterations", 64)
          .add("rules_created", r.engine_stats.rules_created)
          .add("elapsed_s", r.elapsed_seconds)
          .add("rules_per_s", r.engine_stats.rules_created / r.elapsed_seconds)
          .print();
      t.row({std::to_string(depth), std::to_string(r.engine_stats.rules_created),
             std::to_string(r.engine_stats.rules_fired), std::to_string(r.unfired_rules),
             bench::fmt("%.3f", r.elapsed_seconds),
             bench::fmt("%.0f", r.engine_stats.rules_created / r.elapsed_seconds)});
    }
    t.print();
  }
  std::printf("\n'outputs' counts iterations whose g(t) == 0 — the i*i %% 3 == 0\n"
              "cases, i.e. one third of the loop, confirming per-pipeline\n"
              "dataflow rather than lockstep execution.\n");
  return 0;
}
