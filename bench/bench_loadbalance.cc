// E3 (§II.A): dynamic load balancing vs static partitioning for tasks of
// varying runtime.
//
// "If f() and g() are compute-intensive functions with varying runtimes,
// the asynchronous, load-balanced Swift model is an excellent fit."
// Task durations are drawn from a Pareto distribution (heavy tail, shape
// swept below). ADLB's dynamic matching hands the next task to the next
// idle worker; the static baseline pre-assigns task i to worker i mod W
// with targeted puts (what a naive MPI decomposition does). We report the
// makespan of each policy and their ratio.
#include <unistd.h>

#include <string>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "runtime/runner.h"

using namespace ilps;

namespace {

void install_sleep(tcl::Interp& in) {
  in.register_command("bench::sleep_us", [](tcl::Interp&, std::vector<std::string>& a) {
    usleep(static_cast<useconds_t>(std::stol(a.at(1))));
    return std::string();
  });
}

std::vector<int> make_durations(int n, double shape, int mean_us, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> raw;
  double total = 0;
  for (int i = 0; i < n; ++i) {
    raw.push_back(rng.next_pareto(shape));
    total += raw.back();
  }
  // Normalize to the requested mean so policies are compared on equal
  // total work.
  std::vector<int> out;
  for (double v : raw) {
    out.push_back(static_cast<int>(v / (total / n) * mean_us));
  }
  return out;
}

double run_policy(const std::vector<int>& durations, int workers, bool dynamic) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = workers;
  cfg.servers = 1;
  cfg.setup_interp = install_sleep;
  std::string program;
  for (size_t i = 0; i < durations.size(); ++i) {
    std::string task = "bench::sleep_us " + std::to_string(durations[i]);
    if (dynamic) {
      program += "turbine::put_work {" + task + "}\n";
    } else {
      // Static: target worker (i mod W). Worker client ranks start at 1
      // (rank 0 is the engine).
      int target = 1 + static_cast<int>(i) % workers;
      program += "turbine::put_work_to " + std::to_string(target) + " {" + task + "}\n";
    }
  }
  auto result = runtime::run_program(cfg, program);
  return result.elapsed_seconds;
}

}  // namespace

int main() {
  bench::banner("E3", "dynamic (ADLB) vs static task assignment, heavy-tailed durations",
                "load balancing by dispatching tasks on demand beats static "
                "partitioning as duration variance grows");

  const int workers = 8;
  const int tasks = 64;
  const int mean_us = 2000;

  bench::Table t({"pareto_shape", "variance", "tasks", "workers", "static_s", "dynamic_s",
                  "static/dynamic"});
  for (double shape : {5.0, 2.0, 1.3, 1.05}) {
    auto durations = make_durations(tasks, shape, mean_us, 42);
    // Duration variance (for the table).
    double mean = 0;
    for (int d : durations) mean += d;
    mean /= tasks;
    double var = 0;
    for (int d : durations) var += (d - mean) * (d - mean);
    var /= tasks;

    double stat = run_policy(durations, workers, /*dynamic=*/false);
    double dyn = run_policy(durations, workers, /*dynamic=*/true);
    bench::JsonLine("loadbalance")
        .add("pareto_shape", shape)
        .add("variance_us2", var)
        .add("tasks", tasks)
        .add("workers", workers)
        .add("static_s", stat)
        .add("dynamic_s", dyn)
        .add("speedup", stat / dyn)
        .print();
    t.row({bench::fmt("%.2f", shape), bench::fmt("%.0f", var / 1e6) + "ms^2",
           std::to_string(tasks), std::to_string(workers), bench::fmt("%.3f", stat),
           bench::fmt("%.3f", dyn), bench::fmt("%.2fx", stat / dyn)});
  }
  t.print();
  std::printf("\nsmaller shape = heavier tail; the static/dynamic ratio should\n"
              "grow as the tail gets heavier (stragglers pin one worker).\n");
  return 0;
}
