// E4 (§III.C): embedded interpreter evaluation vs launching external
// interpreter executables.
//
// "Previous workflow programming systems call external languages by
// executing the external interpreter executables. This strategy is
// undesirable ... at large scale the filesystem overheads are
// unacceptable. Additionally, on specialized supercomputers such as the
// Blue Gene/Q, launching external programs is not possible at all."
//
// Rows compare the per-call cost of evaluating an equivalent snippet
// through the embedded MiniPy/MiniR/MiniTcl interpreters against
// fork+exec of /bin/sh (and python3 when installed) for the same logical
// work (add two numbers, print nothing).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include "python/interp.h"
#include "rlang/interp.h"
#include "tcl/interp.h"
#include "turbine/app.h"

namespace {

void BM_EmbeddedPython(benchmark::State& state) {
  ilps::py::Interpreter py;
  py.set_print_handler([](const std::string&) {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(py.eval("x = 20 + 22", "x"));
  }
}
BENCHMARK(BM_EmbeddedPython);

void BM_EmbeddedPythonWithImport(benchmark::State& state) {
  ilps::py::Interpreter py;
  for (auto _ : state) {
    benchmark::DoNotOptimize(py.eval("import math\nx = math.sqrt(1764)", "x"));
  }
}
BENCHMARK(BM_EmbeddedPythonWithImport);

void BM_EmbeddedR(benchmark::State& state) {
  ilps::r::Interpreter r;
  r.set_output_handler([](const std::string&) {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.eval("x <- 20 + 22", "x"));
  }
}
BENCHMARK(BM_EmbeddedR);

void BM_EmbeddedTcl(benchmark::State& state) {
  ilps::tcl::Interp tcl;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcl.eval("set x [expr 20 + 22]"));
  }
}
BENCHMARK(BM_EmbeddedTcl);

void BM_ForkExecShell(benchmark::State& state) {
  for (auto _ : state) {
    auto result = ilps::turbine::run_app({"/bin/sh", "-c", ": $((20 + 22))"}, false);
    benchmark::DoNotOptimize(result.exit_code);
  }
}
BENCHMARK(BM_ForkExecShell)->Unit(benchmark::kMicrosecond);

void BM_ForkExecEcho(benchmark::State& state) {
  for (auto _ : state) {
    auto result = ilps::turbine::run_app({"/bin/echo", "42"}, false);
    benchmark::DoNotOptimize(result.output);
  }
}
BENCHMARK(BM_ForkExecEcho)->Unit(benchmark::kMicrosecond);

void BM_ForkExecPython3(benchmark::State& state) {
  if (access("/usr/bin/python3", X_OK) != 0) {
    state.SkipWithError("python3 not installed");
    return;
  }
  for (auto _ : state) {
    auto result =
        ilps::turbine::run_app({"/usr/bin/python3", "-c", "x = 20 + 22"}, false);
    benchmark::DoNotOptimize(result.exit_code);
  }
}
BENCHMARK(BM_ForkExecPython3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
