// Ablations of two ILPS design choices (called out in DESIGN.md):
//
//  A1 — rebalance batch size. A hungry server receives half of a peer's
//       untargeted queue (ADLB's steal-half) vs. a single work unit per
//       notice. Workload: one producer rank homed on server 0 floods
//       tasks; consumers homed on the other servers must pull everything
//       across. Single-unit transfers require a Hungry round trip per
//       task; steal-half amortizes.
//
//  A2 — notification priority. Close notifications are boosted above user
//       work so dataflow keeps unfolding ahead of leaf tasks, vs. queued
//       at normal priority behind them. Workload: a deep dependency chain
//       interleaved with a flood of cheap independent tasks sharing the
//       control queue.
#include <unistd.h>

#include <string>

#include "bench/bench_util.h"
#include "runtime/runner.h"
#include "swift/compiler.h"

using namespace ilps;

namespace {

struct AblationResult {
  double elapsed = 0;
  uint64_t messages = 0;
  uint64_t hungry = 0;
  uint64_t batches = 0;
  uint64_t rebalanced = 0;
};

AblationResult run_rebalance(bool steal_half, int tasks) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 6;
  cfg.servers = 3;
  cfg.steal_half = steal_half;
  cfg.setup_interp = [](tcl::Interp& in) {
    in.register_command("bench::spin_us", [](tcl::Interp&, std::vector<std::string>& a) {
      usleep(static_cast<useconds_t>(std::stol(a.at(1))));
      return std::string();
    });
  };
  // All puts originate on the engine (rank 0, homed on server 0); the six
  // workers are spread across all three servers and must be fed. Tasks
  // cost ~300us so queues build up and batching matters.
  std::string program;
  program += "for {set i 0} {$i < " + std::to_string(tasks) + "} {incr i} {\n";
  program += "  turbine::put_work {bench::spin_us 300}\n";
  program += "}\n";
  auto r = runtime::run_program(cfg, program);
  AblationResult out;
  out.elapsed = r.elapsed_seconds;
  out.messages = r.traffic.messages;
  out.hungry = r.server_stats.hungry_notices;
  out.batches = r.server_stats.batches_sent;
  out.rebalanced = r.server_stats.units_rebalanced;
  return out;
}

// Returns (chain-end latency, total makespan).
std::pair<double, double> run_notification_priority(bool boosted, int chain, int noise) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 4;
  cfg.servers = 1;
  cfg.priority_notifications = boosted;
  // A chain of dependent steps racing `noise` independent control tasks
  // for the engine's attention; the metric is when the chain's final
  // printf arrives, not the total makespan.
  std::string src = "(int o) step (int i) [ \"set <<o>> [ expr <<i>> + 1 ]\" ];\n";
  src += "foreach n in [1:" + std::to_string(noise) + "] { trace(n); }\n";
  std::string prev;
  src += "int v0 = step(0);\n";
  prev = "v0";
  for (int d = 1; d < chain; ++d) {
    std::string cur = "v" + std::to_string(d);
    src += "int " + cur + " = step(" + prev + ");\n";
    prev = cur;
  }
  src += "printf(\"end=%d\", " + prev + ");\n";
  auto r = runtime::run_program(cfg, swift::compile(src));
  return {r.time_of("end="), r.elapsed_seconds};
}

}  // namespace

int main() {
  bench::banner("A1", "rebalance batch size: steal-half vs single-unit",
                "shipping half the surplus per hungry notice amortizes the "
                "rebalancing protocol; single-unit transfers pay a notice "
                "round trip per task");
  {
    bench::Table t({"policy", "tasks", "elapsed_s", "messages", "hungry_notices",
                    "batches", "units_moved"});
    for (int tasks : {200, 1000}) {
      for (bool half : {true, false}) {
        auto r = run_rebalance(half, tasks);
        bench::JsonLine("ablation_rebalance")
            .add_str("policy", half ? "steal-half" : "single")
            .add("tasks", tasks)
            .add("elapsed_s", r.elapsed)
            .add("messages", r.messages)
            .add("hungry_notices", r.hungry)
            .add("batches_sent", r.batches)
            .add("units_rebalanced", r.rebalanced)
            .print();
        t.row({half ? "steal-half" : "single", std::to_string(tasks),
               bench::fmt("%.3f", r.elapsed), std::to_string(r.messages),
               std::to_string(r.hungry), std::to_string(r.batches),
               std::to_string(r.rebalanced)});
      }
    }
    t.print();
  }

  bench::banner("A2", "notification priority: boosted vs plain",
                "boosting close notifications lets the dependency chain keep "
                "unfolding ahead of queued noise tasks");
  {
    bench::Table t({"policy", "chain", "noise_tasks", "chain_latency_s", "makespan_s"});
    for (int noise : {200, 1000}) {
      for (bool boosted : {true, false}) {
        auto [latency, total] = run_notification_priority(boosted, 32, noise);
        bench::JsonLine("ablation_notify_priority")
            .add_str("policy", boosted ? "boosted" : "plain")
            .add("chain", 32)
            .add("noise_tasks", noise)
            .add("chain_latency_s", latency)
            .add("makespan_s", total)
            .print();
        t.row({boosted ? "boosted" : "plain", "32", std::to_string(noise),
               bench::fmt("%.4f", latency), bench::fmt("%.3f", total)});
      }
    }
    t.print();
  }
  return 0;
}
