// E5 (§III.C): retaining interpreter state across tasks vs reinitializing
// per task.
//
// "One approach is to finalize the interpreter at the end of each task and
// reinitialize it ... This approach raises concerns about performance and
// possible resource leaks. Thus, we provide options to either retain the
// interpreter or reinitialize it."
//
// Each task evaluates a small snippet that depends on a preamble (imports
// plus P helper function definitions). Under retain, the preamble is paid
// once; under reinitialize it is paid per task. We sweep P and report
// per-task microseconds and the retain/reinit ratio.
#include <string>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "python/interp.h"
#include "rlang/interp.h"

using namespace ilps;

namespace {

std::string python_preamble(int helpers) {
  std::string out = "import math\nimport random\n";
  for (int i = 0; i < helpers; ++i) {
    out += "def helper" + std::to_string(i) + "(x):\n";
    out += "    return x * " + std::to_string(i + 1) + " + math.sqrt(x + 1)\n";
  }
  return out;
}

double python_per_task_us(bool reinit, int helpers, int tasks) {
  py::Interpreter interp;
  interp.set_print_handler([](const std::string&) {});
  std::string preamble = python_preamble(helpers);
  std::string task = "y = helper0(7) + helper" + std::to_string(helpers - 1) + "(3)";
  if (!reinit) interp.eval(preamble);
  Timer t;
  for (int i = 0; i < tasks; ++i) {
    if (reinit) {
      interp.reset();
      interp.eval(preamble);
    }
    interp.eval(task, "y");
  }
  return t.elapsed() * 1e6 / tasks;
}

double r_per_task_us(bool reinit, int helpers, int tasks) {
  r::Interpreter interp;
  interp.set_output_handler([](const std::string&) {});
  std::string preamble;
  for (int i = 0; i < helpers; ++i) {
    preamble += "helper" + std::to_string(i) + " <- function(x) x * " +
                std::to_string(i + 1) + " + sqrt(x + 1)\n";
  }
  std::string task = "y <- helper0(7) + helper" + std::to_string(helpers - 1) + "(3)";
  if (!reinit) interp.eval(preamble);
  Timer t;
  for (int i = 0; i < tasks; ++i) {
    if (reinit) {
      interp.reset();
      interp.eval(preamble);
    }
    interp.eval(task, "y");
  }
  return t.elapsed() * 1e6 / tasks;
}

}  // namespace

int main() {
  bench::banner("E5", "interpreter policy: retain vs reinitialize per task",
                "reinitializing the interpreter per task clears state but costs "
                "the preamble (imports + definitions) every task");

  const int tasks = 2000;
  {
    bench::Table t({"lang", "preamble_defs", "retain_us/task", "reinit_us/task", "reinit/retain"});
    auto emit = [](const char* lang, int helpers, double keep, double re) {
      bench::JsonLine("retain_vs_reinit")
          .add_str("lang", lang)
          .add("preamble_defs", helpers)
          .add("retain_us_per_task", keep)
          .add("reinit_us_per_task", re)
          .add("reinit_over_retain", re / keep)
          .print();
    };
    for (int helpers : {1, 4, 16, 64}) {
      double keep = python_per_task_us(false, helpers, tasks);
      double re = python_per_task_us(true, helpers, tasks);
      emit("python", helpers, keep, re);
      t.row({"python", std::to_string(helpers), bench::fmt("%.1f", keep),
             bench::fmt("%.1f", re), bench::fmt("%.1fx", re / keep)});
    }
    for (int helpers : {1, 4, 16, 64}) {
      double keep = r_per_task_us(false, helpers, tasks / 4);
      double re = r_per_task_us(true, helpers, tasks / 4);
      emit("R", helpers, keep, re);
      t.row({"R", std::to_string(helpers), bench::fmt("%.1f", keep), bench::fmt("%.1f", re),
             bench::fmt("%.1fx", re / keep)});
    }
    t.print();
  }
  std::printf("\nretain pays the preamble once per worker lifetime; reinit pays it\n"
              "per task, and the gap widens with preamble size. The retained\n"
              "interpreter also lets tasks deliberately share state (the paper\n"
              "notes old state \"can also be used to store useful data\").\n");
  return 0;
}
