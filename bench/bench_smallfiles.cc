// E6 (§IV): the many-small-files problem and static packages.
//
// "...we showed how the many small file problem common in scripted
// solutions can be addressed with our static packages."
//
// W worker interpreters concurrently `package require` a package split
// into M small script files. Against the PFS model, every file open is a
// metadata round trip whose cost rises with concurrency; against a static
// package image, resolution is an in-memory lookup. We report total
// simulated metadata time and the observed open counts.
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "pkg/pfs.h"
#include "tcl/interp.h"

using namespace ilps;

namespace {

pkg::FileTree make_package_tree(int files) {
  pkg::FileTree tree;
  std::vector<std::string> names;
  for (int f = 0; f < files; ++f) {
    std::string name = "mod" + std::to_string(f) + ".tcl";
    names.push_back(name);
    tree.add("lib/app/" + name,
             "proc app::fn" + std::to_string(f) + " {x} { expr $x + " + std::to_string(f) +
                 " }\n");
  }
  tree.add("lib/app/pkgIndex.tcl", pkg::make_pkg_index("app", "1.0", "lib/app", names));
  return tree;
}

struct LoadResult {
  double wall_s = 0;
  double simulated_metadata_us = 0;
  uint64_t opens = 0;
};

LoadResult load_with_pfs(int files, int workers) {
  pkg::PfsConfig cfg;
  cfg.open_latency_us = 50.0;
  cfg.contention_us_per_client = 25.0;
  pkg::PfsModel pfs(make_package_tree(files), cfg);
  Timer t;
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&pfs] {
      tcl::Interp in;
      pkg::install_script_loader(
          in, [&pfs](const std::string& p) { return pfs.read(p); }, {"lib/app"});
      in.eval("package require app");
      in.eval("app::fn0 1");
    });
  }
  for (auto& th : threads) th.join();
  LoadResult r;
  r.wall_s = t.elapsed();
  r.simulated_metadata_us = pfs.simulated_time_us();
  r.opens = pfs.stats().opens;
  return r;
}

LoadResult load_with_static(int files, int workers) {
  pkg::StaticPackage image = pkg::StaticPackage::build(make_package_tree(files));
  Timer t;
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&image] {
      tcl::Interp in;
      pkg::install_script_loader(
          in, [&image](const std::string& p) { return image.read(p); }, {"lib/app"});
      in.eval("package require app");
      in.eval("app::fn0 1");
    });
  }
  for (auto& th : threads) th.join();
  LoadResult r;
  r.wall_s = t.elapsed();
  r.simulated_metadata_us = 0;  // no PFS involved at all
  r.opens = 0;
  return r;
}

}  // namespace

int main() {
  bench::banner("E6", "many small files vs static packages",
                "loading a package of many small script files from a parallel "
                "filesystem costs metadata operations that grow with file count "
                "and concurrency; a static in-memory package removes them");

  bench::Table t({"files", "workers", "pfs_opens", "pfs_metadata_ms", "static_opens",
                  "static_metadata_ms"});
  for (int files : {4, 16, 64}) {
    for (int workers : {1, 8, 32}) {
      LoadResult pfs = load_with_pfs(files, workers);
      LoadResult st = load_with_static(files, workers);
      bench::JsonLine("smallfiles")
          .add("files", files)
          .add("workers", workers)
          .add("pfs_opens", pfs.opens)
          .add("pfs_metadata_ms", pfs.simulated_metadata_us / 1000.0)
          .add("static_opens", st.opens)
          .add("pfs_wall_s", pfs.wall_s)
          .add("static_wall_s", st.wall_s)
          .print();
      t.row({std::to_string(files), std::to_string(workers), std::to_string(pfs.opens),
             bench::fmt("%.2f", pfs.simulated_metadata_us / 1000.0), std::to_string(st.opens),
             bench::fmt("%.2f", st.simulated_metadata_us / 1000.0)});
    }
  }
  t.print();
  std::printf("\npfs_opens = (index probe + %s files) x workers; metadata time is\n"
              "simulated server-busy time with contention. Static packages do\n"
              "zero opens regardless of scale — the paper's fix.\n",
              "M");
  return 0;
}
