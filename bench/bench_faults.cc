// E10: fault-tolerant execution cost (src/ckpt).
//
// Two questions an SCR-style checkpoint/restart layer must answer:
//  - what does a checkpoint cost as the data store grows? Serialized
//    snapshot of 2^8..2^16 datums, written with header+CRC+atomic rename;
//    the metric is ms per checkpoint and effective MB/s.
//  - what does recovery cost as a function of WHERE the fault lands?
//    A 400-leaf-task program is killed at its engine's Nth message;
//    run_with_faults restarts from the newest checkpoint and replays only
//    tasks that had not completed. Later faults mean more checkpointed
//    progress, fewer replayed tasks, and recovery time that tracks the
//    remaining (not the total) work.
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "ckpt/ckpt.h"
#include "ckpt/snapshot.h"
#include "common/timer.h"
#include "runtime/runner.h"

namespace fs = std::filesystem;
using namespace ilps;

namespace {

fs::path scratch_dir(const std::string& tag) {
  fs::path p = fs::temp_directory_path() /
               ("ilps-bench-faults-" + tag + "-" + std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

ckpt::Snapshot snapshot_with(int records) {
  ckpt::Snapshot s;
  s.seq = 1;
  s.tasks_completed = records;
  s.data.reserve(static_cast<size_t>(records));
  for (int i = 0; i < records; ++i) {
    ckpt::DatumRecord d;
    d.id = i;
    d.type = 1;  // integer
    d.closed = true;
    d.has_value = true;
    d.value = "datum-value-" + std::to_string(i * 7919) + "-padding-to-32B";
    s.done_tasks.push_back(ckpt::fingerprint(d.value));
    s.data.push_back(std::move(d));
  }
  return s;
}

// N leaf tasks, each storing a deterministic integer; one engine-local
// rule reports the sum so the output is a single stable line.
std::string sum_program(int n) {
  std::string p;
  p += "proc task_val {i} { expr {($i * 37 + 11) % 100} }\n";
  p += "proc report {ids} {\n";
  p += "  set sum 0\n";
  p += "  foreach x $ids { set sum [expr {$sum + [turbine::retrieve_integer $x]}] }\n";
  p += "  puts \"sum $sum of [llength $ids]\"\n";
  p += "}\n";
  p += "proc swift:main {} {\n";
  p += "  set ids [list]\n";
  p += "  for {set i 0} {$i < " + std::to_string(n) + "} {incr i} {\n";
  p += "    set x [turbine::allocate integer]\n";
  p += "    lappend ids $x\n";
  p += "    turbine::put_work \"turbine::store_integer $x \\[task_val $i\\]\"\n";
  p += "  }\n";
  p += "  turbine::rule $ids \"report [list $ids]\" type LOCAL\n";
  p += "}\n";
  return p;
}

}  // namespace

int main() {
  bench::banner("E10", "checkpoint cost and recovery time (src/ckpt)",
                "fault-tolerant task execution: checkpoint cost scales with the "
                "data store; restart replays only unfinished work");

  {
    bench::Table t({"datums", "file_bytes", "ms/ckpt", "MB/s"});
    fs::path dir = scratch_dir("write");
    uint64_t seq = 0;  // monotonic across rows: pruning drops the lowest seq
    for (int exp = 8; exp <= 16; exp += 2) {
      const int records = 1 << exp;
      ckpt::Snapshot s = snapshot_with(records);
      const int reps = 5;
      uintmax_t bytes = 0;
      Timer timer;
      for (int r = 0; r < reps; ++r) {
        s.seq = ++seq;
        bytes = fs::file_size(ckpt::write_checkpoint(dir.string(), s));
      }
      const double ms = timer.elapsed() * 1000.0 / reps;
      const double mbps = (static_cast<double>(bytes) / 1e6) / (ms / 1000.0);
      bench::JsonLine("faults_ckpt_write")
          .add("datums", records)
          .add("file_bytes", static_cast<uint64_t>(bytes))
          .add("ms_per_ckpt", ms)
          .add("mb_per_s", mbps)
          .print();
      t.row({std::to_string(records), std::to_string(bytes), bench::fmt("%.3f", ms),
             bench::fmt("%.1f", mbps)});
    }
    fs::remove_all(dir);
    t.print();
  }

  {
    const int tasks = 400;
    runtime::Config cfg;
    cfg.engines = 1;
    cfg.workers = 4;
    cfg.servers = 1;
    const std::string program = sum_program(tasks);
    const double base = runtime::run_program(cfg, program).elapsed_seconds;
    std::printf("\nfault-free baseline: %d tasks in %.3f s\n\n", tasks, base);

    // The engine spends two sends per leaf task it submits (create +
    // put), so message #m lands ~m/2 tasks into the program.
    bench::Table t({"fault_at_msg", "attempts", "ckpts", "replay_skips", "replayed",
                    "elapsed_s", "vs_baseline"});
    for (int at : {160, 320, 480, 640}) {
      fs::path dir = scratch_dir("recover-" + std::to_string(at));
      runtime::Config fcfg = cfg;
      fcfg.fault_plan.kill_rank(/*rank=*/0, /*at_message=*/static_cast<uint64_t>(at));
      fcfg.ckpt_interval = 16;
      fcfg.ckpt_dir = dir.string();
      runtime::RunResult r = runtime::run_with_faults(fcfg, program);
      fs::remove_all(dir);
      bench::JsonLine("faults_recovery")
          .add("fault_at_msg", at)
          .add("attempts", r.ft.attempts)
          .add("checkpoints", r.server_stats.checkpoints)
          .add("replay_skips", r.server_stats.replay_skips)
          .add("replayed_tasks", r.worker_stats.tasks)
          .add("elapsed_s", r.elapsed_seconds)
          .add("vs_baseline", r.elapsed_seconds / base)
          .print();
      t.row({std::to_string(at), std::to_string(r.ft.attempts),
             std::to_string(r.server_stats.checkpoints),
             std::to_string(r.server_stats.replay_skips),
             std::to_string(r.worker_stats.tasks), bench::fmt("%.3f", r.elapsed_seconds),
             bench::fmt("%.2fx", r.elapsed_seconds / base)});
    }
    t.print();
  }
  return 0;
}
