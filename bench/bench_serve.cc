// E11: the resident service runtime (src/serve) — continuous request
// ingestion against a persistent ILPS world.
//
// The paper's batch model pays world startup (MPI ranks, ADLB servers,
// interpreters) per program. serve::Service amortizes it across many
// small dataflow requests; this bench measures what that buys:
//  - sustained closed-window throughput (requests/second through
//    compile-cache -> admission -> seed -> dataflow -> namespace GC);
//  - an open-loop rate sweep: requests arrive on a fixed schedule
//    regardless of completions, and the p50/p99/p999 latency SLO table
//    shows where queueing starts to bite.
//
// Rank layout everywhere: 1 engine + 1 worker + 1 ingress + 1 server
// (the acceptance target: >= 10k req/s of small dataflow requests on 4
// ranks with bounded p999).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/serve.h"

using namespace ilps;

namespace {

// A small but real dataflow request: one future, a store, and a printf
// rule released by the future's close — the per-request floor of
// compile-cache hit -> admission -> seed -> rule -> store -> notify ->
// fire -> completion accounting -> namespace GC.
const char* kRequest = R"(
  int x = 1;
  printf("v=%d", x);
)";

serve::ServeConfig service_config(size_t max_inflight) {
  serve::ServeConfig cfg;
  cfg.runtime.engines = 1;
  cfg.runtime.workers = 1;
  cfg.runtime.servers = 1;
  cfg.max_inflight = max_inflight;
  cfg.admission = serve::AdmissionPolicy::kBlock;
  return cfg;
}

double pct(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  return sorted[rank - 1];
}

struct Latencies {
  double p50 = 0, p99 = 0, p999 = 0, max = 0;
};

Latencies percentiles(std::vector<double>& lat) {
  std::sort(lat.begin(), lat.end());
  Latencies out;
  out.p50 = pct(lat, 50);
  out.p99 = pct(lat, 99);
  out.p999 = pct(lat, 99.9);
  out.max = lat.empty() ? 0 : lat.back();
  return out;
}

std::string us(double seconds) { return bench::fmt("%.0f", seconds * 1e6); }

// Closed window: submissions push against the admission backpressure
// (kBlock) so the service runs at its own pace; the steady-state rate is
// the dispatch ceiling of the resident runtime.
void sustained(int requests) {
  serve::Service service(service_config(/*max_inflight=*/256));
  service.enter();
  for (int i = 0; i < 64; ++i) service.submit(kRequest);  // warm-up
  service.drain();

  std::vector<serve::RequestHandle> handles;
  handles.reserve(static_cast<size_t>(requests));
  Timer timer;
  for (int i = 0; i < requests; ++i) handles.push_back(service.submit(kRequest));
  service.drain();
  const double elapsed = timer.elapsed();

  std::vector<double> lat;
  lat.reserve(handles.size());
  uint64_t failed = 0;
  for (const auto& h : handles) {
    const serve::RequestResult& r = h.wait();
    if (!r.ok()) ++failed;
    lat.push_back(r.latency_seconds);
  }
  // The live telemetry view, while the world is still resident: the same
  // JSON the flusher embeds in every telemetry.jsonl snapshot and that
  // `ilps --serve-status` renders.
  if (obs::metrics_enabled()) {
    const obs::WindowHistogram::Snapshot w =
        obs::metrics().window_histogram("serve.request_seconds").snapshot();
    std::printf("rolling window (serve.request_seconds, last %.0fs): n=%llu "
                "p50=%sus p99=%sus p999=%sus\n",
                obs::metrics().window_histogram("serve.request_seconds").window_seconds(),
                static_cast<unsigned long long>(w.count), us(w.p50).c_str(), us(w.p99).c_str(),
                us(w.p999).c_str());
    std::printf("status: %s\n", service.status_json().c_str());
  }
  service.shutdown();
  const Latencies l = percentiles(lat);
  const double rate = requests / elapsed;

  bench::Table t({"requests", "elapsed_s", "req/s", "p50_us", "p99_us", "p999_us", "failed"});
  t.row({std::to_string(requests), bench::fmt("%.3f", elapsed), bench::fmt("%.0f", rate),
         us(l.p50), us(l.p99), us(l.p999), std::to_string(failed)});
  t.print();
  std::printf("target: >= 10000 req/s sustained on 4 ranks -> %s\n",
              rate >= 10000 ? "met" : "NOT met");

  bench::JsonLine("serve_sustained")
      .add("requests", requests)
      .add("elapsed_s", elapsed)
      .add("req_per_s", rate)
      .add("p50_s", l.p50)
      .add("p99_s", l.p99)
      .add("p999_s", l.p999)
      .add("max_s", l.max)
      .add("failed", failed)
      .print();
}

// Open loop: requests arrive on a fixed schedule whether or not earlier
// ones completed (the inflight window is effectively unbounded), so
// latency honestly includes queueing once the offered rate passes the
// service rate.
void open_loop(double rate_per_s, double duration_s) {
  serve::Service service(service_config(/*max_inflight=*/1u << 20));
  service.enter();
  for (int i = 0; i < 64; ++i) service.submit(kRequest);  // warm-up
  service.drain();

  const double interval = 1.0 / rate_per_s;
  std::vector<serve::RequestHandle> handles;
  handles.reserve(static_cast<size_t>(rate_per_s * duration_s) + 16);
  Timer timer;
  size_t n = 0;
  while (true) {
    const double next = static_cast<double>(n) * interval;
    if (next >= duration_s) break;
    while (timer.elapsed() < next) {
      // Spin-wait: sleep granularity is far coarser than the inter-arrival
      // times at 10k+ req/s.
    }
    handles.push_back(service.submit(kRequest));
    ++n;
  }
  const double offered_window = timer.elapsed();
  service.drain();
  const double completed_window = timer.elapsed();

  std::vector<double> lat;
  lat.reserve(handles.size());
  uint64_t failed = 0;
  for (const auto& h : handles) {
    const serve::RequestResult& r = h.wait();
    if (!r.ok()) ++failed;
    lat.push_back(r.latency_seconds);
  }
  service.shutdown();
  const Latencies l = percentiles(lat);
  const double achieved = static_cast<double>(handles.size()) / completed_window;

  bench::Table t({"offered_req/s", "achieved_req/s", "p50_us", "p99_us", "p999_us", "failed"});
  t.row({bench::fmt("%.0f", rate_per_s), bench::fmt("%.0f", achieved), us(l.p50), us(l.p99),
         us(l.p999), std::to_string(failed)});
  t.print();

  bench::JsonLine("serve_slo")
      .add("offered_req_per_s", rate_per_s)
      .add("achieved_req_per_s", achieved)
      .add("requests", handles.size())
      .add("offered_window_s", offered_window)
      .add("completed_window_s", completed_window)
      .add("p50_s", l.p50)
      .add("p99_s", l.p99)
      .add("p999_s", l.p999)
      .add("max_s", l.max)
      .add("failed", failed)
      .print();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("E11", "resident service runtime: req/s and latency SLOs (src/serve)",
                "a persistent engine/worker/server world sustains continuous "
                "request ingestion with bounded tail latency");

  sustained(smoke ? 2000 : 20000);

  if (smoke) {
    open_loop(/*rate_per_s=*/1000, /*duration_s=*/0.5);
    open_loop(/*rate_per_s=*/4000, /*duration_s=*/0.5);
  } else {
    open_loop(/*rate_per_s=*/2000, /*duration_s=*/2.0);
    open_loop(/*rate_per_s=*/5000, /*duration_s=*/2.0);
    open_loop(/*rate_per_s=*/10000, /*duration_s=*/2.0);
  }
  return 0;
}
