// E7 (§III.B): blob transport vs string marshaling for bulk numeric data.
//
// "...scientific users of native code languages often desire to operate on
// bulk data in arrays. The Swift approach to these is to handle pointers
// to byte arrays as a novel type: blob."
//
// We move arrays of doubles (2^10 .. 2^20 elements) across the language
// boundary both ways: as blobs (byte copies) and as formatted Tcl list
// strings (format + parse — what string-only marshaling must do). The
// benchmark reports per-element cost; the gap is the reason blobs exist.
#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "blob/blob.h"
#include "common/strings.h"
#include "tcl/value.h"

namespace {

std::vector<double> make_data(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.5 + static_cast<double>(i) * 1.25;
  return v;
}

void BM_BlobPack(benchmark::State& state) {
  auto data = make_data(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    ilps::blob::Blob b = ilps::blob::Blob::from_values(std::span<const double>(data));
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlobPack)->Range(1 << 10, 1 << 20);

void BM_BlobUnpack(benchmark::State& state) {
  auto data = make_data(static_cast<size_t>(state.range(0)));
  ilps::blob::Blob b = ilps::blob::Blob::from_values(std::span<const double>(data));
  for (auto _ : state) {
    double total = 0;
    for (double v : b.as<const double>()) total += v;
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlobUnpack)->Range(1 << 10, 1 << 20);

void BM_StringMarshalPack(benchmark::State& state) {
  auto data = make_data(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string list;
    for (double v : data) {
      if (!list.empty()) list += ' ';
      list += ilps::str::format_double(v);
    }
    benchmark::DoNotOptimize(list.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StringMarshalPack)->Range(1 << 10, 1 << 18);

void BM_StringMarshalUnpack(benchmark::State& state) {
  auto data = make_data(static_cast<size_t>(state.range(0)));
  std::string list;
  for (double v : data) {
    if (!list.empty()) list += ' ';
    list += ilps::str::format_double(v);
  }
  for (auto _ : state) {
    double total = 0;
    for (const auto& tok : ilps::tcl::list_split(list)) {
      total += *ilps::str::parse_double(tok);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StringMarshalUnpack)->Range(1 << 10, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
