// Transport microbenchmark: raw ilps::mpi message rates, isolated from the
// ADLB/Turbine layers above. Each case targets one mechanism introduced by
// the tag-indexed mailbox rewrite:
//  - pingpong: request/reply latency over pooled buffers (the shape of
//    every ADLB RPC) plus the wakeup hit/suppression split;
//  - stream: one-way throughput, pooled move-sends vs copying span-sends;
//  - fan-in: many senders, one receiver, exact vs wildcard matching (the
//    ADLB server's recv loop is the wildcard case);
//  - barrier: collective rounds/s (shared-memory sense-reversing barrier).
//
// One-way flows (stream, fan-in) recycle consumed buffers back to the
// *origin* rank: there is no reply message to carry the buffer home, so
// without recycle(Message&&) the sender allocates every message while the
// receiver's pool sits full — the pool_hits: 0 pathology this bench used
// to report.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "mpi/comm.h"

using namespace ilps;

namespace {

double wtime() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CaseResult {
  double elapsed = 0;
  mpi::TrafficStats stats;
};

CaseResult run_pingpong(int rounds) {
  mpi::World w(2);
  double elapsed = 0;
  w.run([&](mpi::Comm& c) {
    int peer = 1 - c.rank();
    double t0 = wtime();
    for (int i = 0; i < rounds; ++i) {
      if (c.rank() == 0) {
        ser::Writer msg = c.writer();
        msg.put_i32(i);
        c.send(peer, 1, std::move(msg));
        mpi::Message m = c.recv(peer, 2);
        c.recycle(std::move(m.data));
      } else {
        mpi::Message m = c.recv(peer, 1);
        c.recycle(std::move(m.data));
        ser::Writer msg = c.writer();
        msg.put_i32(i);
        c.send(peer, 2, std::move(msg));
      }
    }
    if (c.rank() == 0) elapsed = wtime() - t0;
  });
  return {elapsed, w.stats()};
}

// Outstanding-message window for one-way flows. Eager sends never block,
// so an unwindowed stream lets the sender run arbitrarily far ahead of the
// receiver — in-flight buffers then exceed any bounded freelist and
// recycling can never reach steady state. A credit ack every kWindow
// messages bounds in-flight below the pool cap (the same discipline the
// ADLB client's pipelined datum window applies).
constexpr int kStreamWindow = 32;

CaseResult run_stream(int count, bool pooled) {
  mpi::World w(2);
  double elapsed = 0;
  w.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      double t0 = wtime();
      for (int i = 0; i < count; ++i) {
        if (pooled) {
          ser::Writer msg = c.writer();
          msg.put_i32(i);
          c.send(1, 1, std::move(msg));
        } else {
          ser::Writer msg;
          msg.put_i32(i);
          c.send(1, 1, msg);  // span overload: heap copy per message
        }
        if ((i + 1) % kStreamWindow == 0) {
          mpi::Message ack = c.recv(1, 3);
          c.recycle(std::move(ack));  // ack buffer goes home to the receiver
        }
      }
      // Handshake so elapsed covers delivery, not just posting.
      mpi::Message done = c.recv(1, 2);
      elapsed = wtime() - t0;
      (void)done;
    } else {
      for (int i = 0; i < count; ++i) {
        mpi::Message m = c.recv(0, 1);
        c.recycle(std::move(m));  // back to the sender's freelist
        if ((i + 1) % kStreamWindow == 0) {
          ser::Writer ack = c.writer();
          ack.put_i32(i);
          c.send(0, 3, std::move(ack));
        }
      }
      c.send_str(0, 2, "done");
    }
  });
  return {elapsed, w.stats()};
}

// senders ranks 1..n-1 each stream count messages at rank 0; the receiver
// matches either exactly (round-robin over known envelopes) or by
// wildcard (what the ADLB server loop does).
CaseResult run_fan_in(int ranks, int per_sender, bool wildcard) {
  mpi::World w(ranks);
  double elapsed = 0;
  const int ack_tag = ranks + 1;
  w.run([&](mpi::Comm& c) {
    if (c.rank() != 0) {
      for (int i = 0; i < per_sender; ++i) {
        ser::Writer msg = c.writer();
        msg.put_i32(i);
        c.send(0, c.rank(), std::move(msg));
        if ((i + 1) % kStreamWindow == 0) {
          mpi::Message ack = c.recv(0, ack_tag);
          c.recycle(std::move(ack));  // ack buffer goes home to the receiver
        }
      }
      return;
    }
    const int total = (ranks - 1) * per_sender;
    std::vector<int> seen(static_cast<size_t>(ranks), 0);
    auto consume = [&](mpi::Message&& m) {
      const int src = m.source;
      c.recycle(std::move(m));  // back to the sender's freelist
      if (++seen[static_cast<size_t>(src)] % kStreamWindow == 0) {
        ser::Writer ack = c.writer();
        ack.put_i32(seen[static_cast<size_t>(src)]);
        c.send(src, ack_tag, std::move(ack));
      }
    };
    double t0 = wtime();
    if (wildcard) {
      for (int i = 0; i < total; ++i) consume(c.recv(mpi::ANY_SOURCE, mpi::ANY_TAG));
    } else {
      for (int i = 0; i < per_sender; ++i) {
        for (int src = 1; src < ranks; ++src) consume(c.recv(src, src));
      }
    }
    elapsed = wtime() - t0;
  });
  return {elapsed, w.stats()};
}

CaseResult run_barriers(int ranks, int rounds) {
  mpi::World w(ranks);
  double elapsed = 0;
  w.run([&](mpi::Comm& c) {
    double t0 = wtime();
    for (int i = 0; i < rounds; ++i) c.barrier();
    if (c.rank() == 0) elapsed = wtime() - t0;
  });
  return {elapsed, w.stats()};
}

void emit(const char* name, const CaseResult& r, int units, const char* unit_name,
          std::initializer_list<std::pair<const char*, int64_t>> params = {}) {
  bench::JsonLine j("transport_" + std::string(name));
  for (const auto& [k, v] : params) j.add(k, v);
  j.add(unit_name, units)
      .add("elapsed_s", r.elapsed)
      .add("rate_per_s", units / r.elapsed)
      .add("mpi_messages", r.stats.messages)
      .add("wakeups", r.stats.wakeups)
      .add("wakeups_suppressed", r.stats.wakeups_suppressed)
      .add("pool_hits", r.stats.pool_hits)
      .add("pool_misses", r.stats.pool_misses)
      .add("barrier_fastpath", r.stats.barrier_fastpath)
      .add("collective_wakeups", r.stats.collective_wakeups)
      .print();
}

// Pooled one-way flows must reach a recycling steady state: after the
// freelist primes, nearly every send reuses a returned buffer.
void require_steady_state_hits(const char* name, const CaseResult& r) {
  if (r.stats.pool_hits <= r.stats.pool_misses) {
    std::fprintf(stderr, "FAIL %s: pool never reached steady state (hits=%llu misses=%llu)\n",
                 name, static_cast<unsigned long long>(r.stats.pool_hits),
                 static_cast<unsigned long long>(r.stats.pool_misses));
    std::exit(1);
  }
}

}  // namespace

int main() {
  bench::banner("T", "raw transport message rates (tag-indexed mailbox)",
                "dispatch ceiling is set by the transport: per-message cost "
                "must stay flat as envelope counts and rank counts grow");

  {
    const int rounds = 20000;
    CaseResult r = run_pingpong(rounds);
    emit("pingpong", r, rounds, "roundtrips");
    bench::Table t({"case", "rounds", "elapsed_s", "roundtrips/s", "wakeups", "suppressed",
                    "pool_hit%"});
    double hit = 100.0 * static_cast<double>(r.stats.pool_hits) /
                 static_cast<double>(r.stats.pool_hits + r.stats.pool_misses);
    t.row({"pingpong", std::to_string(rounds), bench::fmt("%.3f", r.elapsed),
           bench::fmt("%.0f", rounds / r.elapsed), std::to_string(r.stats.wakeups),
           std::to_string(r.stats.wakeups_suppressed), bench::fmt("%.1f%%", hit)});
    t.print();
  }

  {
    const int count = 50000;
    bench::Table t({"case", "msgs", "elapsed_s", "msgs/s", "pool_hits", "pool_misses"});
    for (bool pooled : {false, true}) {
      CaseResult r = run_stream(count, pooled);
      emit(pooled ? "stream_pooled" : "stream_copy", r, count, "msgs");
      if (pooled) require_steady_state_hits("stream_pooled", r);
      t.row({pooled ? "stream pooled" : "stream copy", std::to_string(count),
             bench::fmt("%.3f", r.elapsed), bench::fmt("%.0f", count / r.elapsed),
             std::to_string(r.stats.pool_hits), std::to_string(r.stats.pool_misses)});
    }
    std::printf("\n");
    t.print();
  }

  {
    const int per_sender = 8000;
    bench::Table t({"case", "ranks", "msgs", "elapsed_s", "msgs/s"});
    for (int ranks : {4, 8}) {
      for (bool wildcard : {false, true}) {
        CaseResult r = run_fan_in(ranks, per_sender, wildcard);
        int total = (ranks - 1) * per_sender;
        emit(wildcard ? "fanin_wildcard" : "fanin_exact", r, total, "msgs",
             {{"ranks", ranks}});
        require_steady_state_hits(wildcard ? "fanin_wildcard" : "fanin_exact", r);
        t.row({wildcard ? "fan-in wildcard" : "fan-in exact", std::to_string(ranks),
               std::to_string(total), bench::fmt("%.3f", r.elapsed),
               bench::fmt("%.0f", total / r.elapsed)});
      }
    }
    std::printf("\n");
    t.print();
    std::printf("\nwildcard fan-in is the ADLB server's recv loop: the indexed\n"
                "mailbox keeps it within reach of exact-envelope matching.\n");
  }

  {
    const int rounds = 5000;
    bench::Table t({"case", "ranks", "rounds", "elapsed_s", "barriers/s"});
    for (int ranks : {2, 4, 8, 16}) {
      CaseResult r = run_barriers(ranks, rounds);
      emit("barrier", r, rounds, "rounds", {{"ranks", ranks}});
      t.row({"barrier", std::to_string(ranks), std::to_string(rounds),
             bench::fmt("%.3f", r.elapsed), bench::fmt("%.0f", rounds / r.elapsed)});
    }
    std::printf("\n");
    t.print();
  }
  return 0;
}
