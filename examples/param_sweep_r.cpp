// Parameter sweep with R statistical post-processing.
//
// The materials-science motif: a simulated experiment (synthetic "measure
// a property at temperature T" kernel written as a Tcl leaf) is swept over
// a parameter grid by Swift; each point's raw samples are post-processed
// by an embedded *R* fragment computing mean and standard deviation; Swift
// prints a results table.
#include <cstdio>
#include <string>

#include "runtime/runner.h"
#include "swift/compiler.h"

int main() {
  const char* swift_source = R"SWIFT(
    // The "simulation": produces n noisy samples around a T-dependent
    // value, as a comma-separated string. Implemented in Tcl to stand in
    // for a native simulation kernel.
    (string samples) simulate (int temp, int n) "simkit" "1.0" [
      "set <<samples>> [ simkit::run <<temp>> <<n>> ]"
    ];

    // R post-processing of one sweep point.
    (string stats) analyze (string samples) {
      string NL = "\n";
      string code = strcat(
          "vals <- as.numeric(strsplit(\"", samples, "\", \",\")[[1]])", NL,
          "m <- mean(vals)", NL,
          "s <- sd(vals)");
      stats = r(code, "sprintf(\"mean=%.2f sd=%.2f n=%d\", m, s, length(vals))");
    }

    foreach t in [300:400:25] {
      string raw = simulate(t, 40);
      string st = analyze(raw);
      printf("T=%dK  %s", t, st);
    }
  )SWIFT";

  std::string program = ilps::swift::compile(swift_source);

  ilps::runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 4;
  cfg.servers = 1;
  cfg.setup_interp = [](ilps::tcl::Interp& interp) {
    // The simulation kernel package, available on every rank.
    interp.package_ifneeded("simkit", "1.0", R"TCL(
      proc simkit::run {temp n} {
        # Deterministic pseudo-experiment: property ~ 0.1*T with noise.
        expr srand($temp)
        set out {}
        for {set i 0} {$i < $n} {incr i} {
          set v [expr 0.1 * $temp + (rand() - 0.5) * 4.0]
          lappend out [format %.3f $v]
        }
        return [join $out ,]
      }
      package provide simkit 1.0
    )TCL");
  };

  auto result = ilps::runtime::run_program(cfg, program);
  std::printf("parameter sweep with R post-processing\n");
  std::printf("--------------------------------------\n");
  for (const auto& line : result.lines) std::printf("%s\n", line.c_str());
  std::printf("--------------------------------------\n");
  std::printf("R evals: %llu  worker tasks: %llu\n",
              static_cast<unsigned long long>(result.worker_stats.r_evals),
              static_cast<unsigned long long>(result.worker_stats.tasks));
  return result.unfired_rules == 0 && result.lines.size() == 5 ? 0 : 1;
}
