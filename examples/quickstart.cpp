// Quickstart: compile and run a small Swift program.
//
// This is the paper's §III.A scenario: a Swift script calls a Tcl leaf
// function `f` from package my_package; Swift handles the futures, rule
// creation, task distribution and type conversion. Build & run:
//
//   ./build/examples/quickstart
#include <cstdio>

#include "runtime/runner.h"
#include "swift/compiler.h"

int main() {
  // The Swift program — note the paper's leaf-declaration syntax with the
  // <<·>> template placeholders.
  const char* swift_source = R"SWIFT(
    (int o) f (int i, int j) "my_package" "1.0" [
      "set <<o>> [ f <<i>> <<j>> ]"
    ];

    int x = f(20, 22);
    int y = f(x, 100);
    printf("f(20, 22)       = %d", x);
    printf("f(f(20,22),100) = %d", y);
    printf("done on a runtime of engines, servers and workers");
  )SWIFT";

  // Compile Swift -> Turbine (Tcl) code.
  std::string program = ilps::swift::compile(swift_source);

  // Configure the runtime: 1 engine, 2 workers, 1 ADLB server (Fig. 2).
  ilps::runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 2;
  cfg.servers = 1;
  // Provide my_package on every rank (in Swift/T this would come from
  // TCLLIBPATH or a static package).
  cfg.setup_interp = [](ilps::tcl::Interp& interp) {
    interp.package_ifneeded("my_package", "1.0",
                            "proc f {i j} { expr $i + $j }\n"
                            "package provide my_package 1.0");
  };

  auto result = ilps::runtime::run_program(cfg, program);

  for (const auto& line : result.lines) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("--\n");
  std::printf("rules fired: %llu, worker tasks: %llu, messages: %llu\n",
              static_cast<unsigned long long>(result.engine_stats.rules_fired),
              static_cast<unsigned long long>(result.worker_stats.tasks),
              static_cast<unsigned long long>(result.traffic.messages));
  return result.unfired_rules == 0 ? 0 : 1;
}
