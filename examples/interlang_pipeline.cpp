// The paper's headline scenario in one workflow: Tcl, Python, R, native
// C++ (via BindGen) and a shell app cooperating in a single Swift script,
// with Swift futures carrying data between languages and ADLB spreading
// the leaf tasks over workers.
//
// Pipeline, per input record:
//   1. [shell]  an external tool emits a record id        (app/fork-exec)
//   2. [native] a C++ kernel turns the id into raw values (BindGen)
//   3. [python] the values are transformed                (embedded MiniPy)
//   4. [R]      summary statistics are computed           (embedded MiniR)
//   5. [tcl]    the report line is assembled              (leaf template)
#include <cstdio>
#include <string>

#include "bind/bindgen.h"
#include "runtime/runner.h"
#include "swift/compiler.h"

namespace {

// The "native kernel": generate a deterministic series for a record.
std::string make_series(int record, int n) {
  std::string out;
  unsigned x = static_cast<unsigned>(record) * 2654435761u + 12345u;
  for (int i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    if (i > 0) out += ",";
    out += std::to_string(static_cast<double>(x % 1000) / 10.0);
  }
  return out;
}

}  // namespace

int main() {
  const char* swift_source = R"SWIFT(
    // Stage 2: native kernel via BindGen (string-returning C call).
    (string series) gen_series (int record, int n) "genlib" "1.0" [
      "set <<series>> [ gen::make_series <<record>> <<n>> ]"
    ];

    // Stage 3: Python transformation (normalize to [0, 1]).
    (string normed) py_normalize (string series) {
      string NL = "\n";
      string code = strcat(
        "vals = [float(s) for s in \"", series, "\".split(',')]", NL,
        "top = max(vals)", NL,
        "normed = [v / top for v in vals]", NL,
        "out = ','.join(['%.4f' % v for v in normed])");
      normed = python(code, "out");
    }

    // Stage 4: R statistics.
    (string stats) r_stats (string series) {
      string code = strcat(
        "v <- as.numeric(strsplit(\"", series, "\", \",\")[[1]])");
      stats = r(code, "sprintf(\"mean=%.3f sd=%.3f\", mean(v), sd(v))");
    }

    // Stage 5: Tcl report assembly.
    (string line) report (int record, string stats) [
      "set <<line>> [format {record %02d | %s} <<record>> <<stats>>]"
    ];

    // Stage 1 + orchestration: records come from a shell tool.
    string listing = sh("/bin/sh", "-c", "echo 3; echo 7; echo 11");
    foreach idx in [0:2] {
      // Pick the idx-th record id out of the shell output via Python
      // (string wrangling is easiest in a scripting language).
      string pick = strcat("ids = \"\"\"", listing, "\"\"\".split()");
      string pick_expr = strcat("ids[", tostring(idx), "]");
      string rec = python(pick, pick_expr);
      int record = toint(rec);
      string series = gen_series(record, 12);
      string normed = py_normalize(series);
      string stats = r_stats(normed);
      string out = report(record, stats);
      printf("%s", out);
    }
  )SWIFT";

  std::string program = ilps::swift::compile(swift_source);

  auto lib = std::make_shared<ilps::bind::NativeLibrary>();
  lib->add_raw("make_series", [](std::vector<ilps::bind::NativeValue>& args) {
    int record = static_cast<int>(std::get<int64_t>(args[0]));
    int n = static_cast<int>(std::get<int64_t>(args[1]));
    return ilps::bind::NativeValue(make_series(record, n));
  });
  auto protos = ilps::bind::parse_header("const char* make_series(int record, int n);");

  ilps::runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 4;
  cfg.servers = 1;
  cfg.setup_bindings = [protos, lib](ilps::tcl::Interp& interp, ilps::blob::Registry& blobs) {
    ilps::bind::bind_to_tcl(interp, "gen", protos, *lib, blobs);
    interp.package_provide("genlib", "1.0");
  };

  auto result = ilps::runtime::run_program(cfg, program);
  std::printf("five-language pipeline (shell + native + python + R + tcl)\n");
  std::printf("----------------------------------------------------------\n");
  for (const auto& line : result.lines) std::printf("%s\n", line.c_str());
  std::printf("----------------------------------------------------------\n");
  std::printf("tasks: %llu  python: %llu  R: %llu  apps: %llu\n",
              static_cast<unsigned long long>(result.worker_stats.tasks),
              static_cast<unsigned long long>(result.worker_stats.python_evals),
              static_cast<unsigned long long>(result.worker_stats.r_evals),
              static_cast<unsigned long long>(result.worker_stats.app_execs));
  return result.unfired_rules == 0 && result.lines.size() == 3 ? 0 : 1;
}
