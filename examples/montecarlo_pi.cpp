// Monte Carlo estimation of pi with Python leaf tasks.
//
// The numerics-in-scripting motif from the paper's introduction: Swift
// fans a `foreach` out over workers; each iteration runs a *Python*
// fragment in the embedded interpreter (no python executable is launched —
// the Blue Gene/Q-compatible path), computing a partial count of points
// inside the unit circle; a final Python fragment aggregates.
#include <cstdio>
#include <string>

#include "runtime/runner.h"
#include "swift/compiler.h"

int main() {
  constexpr int kBlocks = 16;
  constexpr int kSamplesPerBlock = 20000;

  std::string swift_source = R"SWIFT(
    // Each block seeds its own deterministic RNG stream and counts hits.
    (string hits) mc_block (int seed, int n) {
      string NL = "\n";
      string code = sprintf(
          "import random%s"
          "random.seed(%d)%s"
          "inside = 0%s"
          "for i in range(%d):%s"
          "    x = random.random()%s"
          "    y = random.random()%s"
          "    if x * x + y * y <= 1.0:%s"
          "        inside += 1",
          NL, seed, NL, NL, n, NL, NL, NL, NL);
      hits = python(code, "inside");
    }
  )SWIFT";

  std::string body = R"SWIFT(
    foreach b in [0:BLOCKS_MINUS_1] {
      string h = mc_block(b + 1000, SAMPLES);
      printf("block %d: %s hits", b, h);
    }
  )SWIFT";

  // Simple textual parameterization of the workload.
  auto replace = [](std::string s, const std::string& from, const std::string& to) {
    size_t pos;
    while ((pos = s.find(from)) != std::string::npos) s.replace(pos, from.size(), to);
    return s;
  };
  body = replace(body, "BLOCKS_MINUS_1", std::to_string(kBlocks - 1));
  body = replace(body, "SAMPLES", std::to_string(kSamplesPerBlock));

  std::string program = ilps::swift::compile(swift_source + body);

  ilps::runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 4;
  cfg.servers = 1;
  auto result = ilps::runtime::run_program(cfg, program);

  // Aggregate the per-block counts printed by the workers.
  long long total_hits = 0;
  int blocks_seen = 0;
  for (const auto& line : result.lines) {
    std::printf("%s\n", line.c_str());
    size_t colon = line.find(": ");
    size_t hits_end = line.find(" hits");
    if (colon != std::string::npos && hits_end != std::string::npos) {
      total_hits += std::stoll(line.substr(colon + 2, hits_end - colon - 2));
      ++blocks_seen;
    }
  }
  double pi = 4.0 * static_cast<double>(total_hits) /
              (static_cast<double>(kBlocks) * kSamplesPerBlock);
  std::printf("--\n");
  std::printf("blocks: %d  samples/block: %d  python evals: %llu\n", blocks_seen,
              kSamplesPerBlock, static_cast<unsigned long long>(result.worker_stats.python_evals));
  std::printf("pi estimate: %.5f (error %+0.5f)\n", pi, pi - 3.14159265358979);
  return (pi > 3.0 && pi < 3.3 && blocks_seen == kBlocks) ? 0 : 1;
}
