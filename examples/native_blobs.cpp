// Native code + blobs: a C heat-diffusion kernel bound via BindGen
// (Fig. 3's SWIG pipeline) operating on bulk array data passed as blobs
// (§III.B's blobutils), orchestrated from Swift-level Tcl leaf templates.
//
// The kernel is 1-D explicit heat diffusion: u'[i] = u[i] + alpha *
// (u[i-1] - 2 u[i] + u[i+1]). Swift drives several independent rods
// concurrently; each rod's data stays in binary form end to end.
#include <cstdio>
#include <string>

#include "bind/bindgen.h"
#include "runtime/runner.h"
#include "swift/compiler.h"

namespace {

// ---- the user's native library (what would be afunc.o in Fig. 3) ----

void heat_init(double* u, int n, double peak) {
  for (int i = 0; i < n; ++i) u[i] = 0.0;
  u[n / 2] = peak;  // a spike in the middle
}

void heat_step(double* u, double* scratch, int n, double alpha) {
  for (int i = 0; i < n; ++i) {
    double left = i > 0 ? u[i - 1] : 0.0;
    double right = i < n - 1 ? u[i + 1] : 0.0;
    scratch[i] = u[i] + alpha * (left - 2.0 * u[i] + right);
  }
  for (int i = 0; i < n; ++i) u[i] = scratch[i];
}

double heat_total(const double* u, int n) {
  double s = 0;
  for (int i = 0; i < n; ++i) s += u[i];
  return s;
}

double heat_peak(const double* u, int n) {
  double best = 0;
  for (int i = 0; i < n; ++i) {
    if (u[i] > best) best = u[i];
  }
  return best;
}

}  // namespace

int main() {
  // The header a user would hand to SWIG.
  const char* header = R"C(
    void heat_init(double* u, int n, double peak);
    void heat_step(double* u, double* scratch, int n, double alpha);
    double heat_total(const double* u, int n);
    double heat_peak(const double* u, int n);
  )C";

  const char* swift_source = R"SWIFT(
    // Simulate one rod for `steps` steps; report total and peak energy.
    (string report) run_rod (int rod, int n, int steps) "heatlib" "1.0" [
      "set u [blobutils::zeroes_float <<n>>]
       set tmp [blobutils::zeroes_float <<n>>]
       heat::heat_init $u <<n>> 100.0
       for {set s 0} {$s < <<steps>>} {incr s} {
         heat::heat_step $u $tmp <<n>> 0.25
       }
       set tot [heat::heat_total $u <<n>>]
       set pk [heat::heat_peak $u <<n>>]
       set <<report>> [format {rod %d: total=%.1f peak=%.3f} <<rod>> $tot $pk]
       blobutils::release $u
       blobutils::release $tmp"
    ];

    foreach rod in [0:3] {
      int steps = 50 + rod * 50;
      string rep = run_rod(rod, 64, steps);
      printf("%s", rep);
    }
  )SWIFT";

  std::string program = ilps::swift::compile(swift_source);

  // Build the native library + bindings once; install into every rank.
  auto protos = ilps::bind::parse_header(header);
  auto lib = std::make_shared<ilps::bind::NativeLibrary>();
  lib->add("heat_init", &heat_init);
  lib->add("heat_step", &heat_step);
  lib->add_raw("heat_total", [](std::vector<ilps::bind::NativeValue>& args) {
    auto& blob = std::get<ilps::blob::Blob>(args[0]);
    return ilps::bind::NativeValue(
        heat_total(blob.as<const double>().data(), static_cast<int>(std::get<int64_t>(args[1]))));
  });
  lib->add_raw("heat_peak", [](std::vector<ilps::bind::NativeValue>& args) {
    auto& blob = std::get<ilps::blob::Blob>(args[0]);
    return ilps::bind::NativeValue(
        heat_peak(blob.as<const double>().data(), static_cast<int>(std::get<int64_t>(args[1]))));
  });

  ilps::runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 4;
  cfg.servers = 1;
  cfg.setup_bindings = [protos, lib](ilps::tcl::Interp& interp, ilps::blob::Registry& blobs) {
    // Bind against the rank's own registry so blobutils handles made in
    // the leaf template resolve inside the native calls.
    ilps::bind::bind_to_tcl(interp, "heat", protos, *lib, blobs);
    interp.package_provide("heatlib", "1.0");
  };

  auto result = ilps::runtime::run_program(cfg, program);
  std::printf("native heat kernel through BindGen + blobs\n");
  std::printf("------------------------------------------\n");
  for (const auto& line : result.lines) std::printf("%s\n", line.c_str());
  std::printf("------------------------------------------\n");
  std::printf("worker tasks: %llu\n",
              static_cast<unsigned long long>(result.worker_stats.tasks));
  return result.unfired_rules == 0 && result.lines.size() == 4 ? 0 : 1;
}
