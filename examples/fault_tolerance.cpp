// Fault-tolerant execution (src/ckpt): the same Monte Carlo pi workload
// run three times —
//  1. fault-free, as the reference;
//  2. with a FaultPlan killing one worker mid-run: the ADLB server
//     requeues the dead rank's leaf task and the run completes with
//     byte-identical output;
//  3. with the engine killed mid-run and checkpointing on: the driver
//     restarts from the newest checkpoint and replays only the leaf
//     tasks that had not finished.
// Exit status 0 means all three runs produced the same answer.
#include <cstdio>
#include <filesystem>
#include <string>

#include "runtime/runner.h"

namespace fs = std::filesystem;

namespace {

// 200 deterministic leaf tasks, each storing a hit/miss bit; a single
// engine-local rule reports the estimate once every future is closed.
const char* kProgram = R"(
proc pi_hit {i} {
  set a [expr {($i * 1103515245 + 12345) % 2048}]
  set b [expr {($a * 1103515245 + 12345) % 2048}]
  set x [expr {$a / 2048.0}]
  set y [expr {$b / 2048.0}]
  if {$x * $x + $y * $y <= 1.0} { return 1 }
  return 0
}
proc pi_report {ids n} {
  set hits 0
  foreach x $ids {
    set hits [expr {$hits + [turbine::retrieve_integer $x]}]
  }
  puts "pi-hits $hits of $n"
}
proc swift:main {} {
  set n 200
  set ids [list]
  for {set i 0} {$i < $n} {incr i} {
    set x [turbine::allocate integer]
    lappend ids $x
    turbine::put_work "turbine::store_integer $x \[pi_hit $i\]"
  }
  turbine::rule $ids "pi_report [list $ids] $n" type LOCAL
}
)";

ilps::runtime::Config base_config() {
  ilps::runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 3;
  cfg.servers = 1;
  return cfg;
}

}  // namespace

int main() {
  const auto baseline = ilps::runtime::run_program(base_config(), kProgram);
  std::printf("fault-free:      %s\n", baseline.lines.empty() ? "?" : baseline.lines[0].c_str());

  // Scenario 1: kill worker rank 2 at its 60th message (~its 30th task).
  ilps::runtime::Config kill_cfg = base_config();
  kill_cfg.fault_plan.kill_rank(/*rank=*/2, /*at_message=*/60);
  const auto killed = ilps::runtime::run_with_faults(kill_cfg, kProgram);
  std::printf("worker killed:   %s   (dead ranks: %zu, requeues: %llu)\n",
              killed.lines.empty() ? "?" : killed.lines[0].c_str(), killed.ft.dead_ranks.size(),
              static_cast<unsigned long long>(killed.server_stats.requeues));

  // Scenario 2: kill the engine; recover from the newest checkpoint.
  const fs::path dir =
      fs::temp_directory_path() / ("ilps-example-ft-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  ilps::runtime::Config restart_cfg = base_config();
  restart_cfg.fault_plan.kill_rank(/*rank=*/0, /*at_message=*/250);
  restart_cfg.ckpt_interval = 10;
  restart_cfg.ckpt_dir = dir.string();
  const auto restarted = ilps::runtime::run_with_faults(restart_cfg, kProgram);
  fs::remove_all(dir);
  std::printf("engine restart:  %s   (attempts: %d, replayed: %llu, skipped: %llu)\n",
              restarted.lines.empty() ? "?" : restarted.lines[0].c_str(), restarted.ft.attempts,
              static_cast<unsigned long long>(restarted.worker_stats.tasks),
              static_cast<unsigned long long>(restarted.server_stats.replay_skips));

  const bool ok = !baseline.lines.empty() && killed.output() == baseline.output() &&
                  restarted.output() == baseline.output() && restarted.ft.attempts == 2;
  std::printf("--\n%s\n", ok ? "all three runs agree" : "MISMATCH");
  return ok ? 0 : 1;
}
