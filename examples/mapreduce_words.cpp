// Map-reduce over Swift arrays: a word-statistics job where the map phase
// runs Python leaf tasks over document shards, results collect into a
// Swift array (a Turbine container with write-refcount completion), and
// the reduce phase fires automatically when the array closes.
//
// Demonstrates the array extension: `int A[]` / `A[i] = ...` /
// `foreach v, i in A` — the "more complex data types" the paper lists as
// future work, implemented here over the container substrate.
#include <cstdio>
#include <string>

#include "runtime/runner.h"
#include "swift/compiler.h"

int main() {
  const char* swift_source = R"SWIFT(
    // Map: count words in one shard with embedded Python.
    (int words) count_words (string shard) {
      string NL = "\n";
      string code = strcat(
        "text = \"", shard, "\"", NL,
        "n = len(text.split())");
      string res = python(code, "n");
      words = toint(res);
    }

    string shards[];
    shards[0] = "the quick brown fox jumps over the lazy dog";
    shards[1] = "pack my box with five dozen liquor jugs";
    shards[2] = "how vexingly quick daft zebras jump";
    shards[3] = "sphinx of black quartz judge my vow";

    int counts[];
    foreach shard, i in shards {
      counts[i] = count_words(shard);
    }

    // Reduce: fires once `counts` is complete; R computes the summary.
    foreach c, i in counts {
      printf("shard %d: %d words", i, c);
    }
    int total01 = counts[0] + counts[1];
    int total23 = counts[2] + counts[3];
    int total = total01 + total23;
    printf("total words: %d", total);
  )SWIFT";

  std::string program = ilps::swift::compile(swift_source);

  ilps::runtime::Config cfg;
  cfg.engines = 2;
  cfg.workers = 4;
  cfg.servers = 1;
  auto result = ilps::runtime::run_program(cfg, program);

  std::printf("map-reduce over Swift arrays\n");
  std::printf("----------------------------\n");
  for (const auto& line : result.lines) std::printf("%s\n", line.c_str());
  std::printf("----------------------------\n");
  std::printf("rules: %llu fired, python evals: %llu\n",
              static_cast<unsigned long long>(result.engine_stats.rules_fired),
              static_cast<unsigned long long>(result.worker_stats.python_evals));
  bool ok = result.unfired_rules == 0 && result.contains("total words: 30");
  return ok ? 0 : 1;
}
