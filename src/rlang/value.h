// MiniR value model. MiniR stands in for an embedded libR: an R-subset
// interpreter with R's defining semantics — every value is a vector,
// arithmetic is vectorized with recycling, indexing is 1-based, functions
// are closures over lexical environments.
//
// Types: NULL, logical, numeric (double vectors; R's default numeric),
// character, list (optionally named), closure, builtin.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace ilps::r {

class RError : public ScriptError {
 public:
  explicit RError(const std::string& what) : ScriptError(what) {}
};

struct RValue;
using RRef = std::shared_ptr<RValue>;

// A lexical environment: bindings plus a parent scope.
struct Environment {
  std::map<std::string, RRef> vars;
  std::shared_ptr<Environment> parent;

  RRef* find(const std::string& name) {
    for (Environment* e = this; e != nullptr; e = e->parent.get()) {
      auto it = e->vars.find(name);
      if (it != e->vars.end()) return &it->second;
    }
    return nullptr;
  }
};
using EnvRef = std::shared_ptr<Environment>;

struct RExpr;  // AST node (ast.h)

// A user function: parameters with optional defaults, a body expression,
// and the defining environment (R closures).
struct Closure {
  std::vector<std::pair<std::string, std::shared_ptr<const RExpr>>> params;
  std::shared_ptr<const RExpr> body;
  EnvRef env;
};

struct NamedArg {
  std::optional<std::string> name;
  RRef value;
};

struct BuiltinFn {
  std::string name;
  std::function<RRef(std::vector<NamedArg>&)> fn;
};

struct RValue {
  enum class Type { kNull, kLogical, kNumeric, kCharacter, kList, kClosure, kBuiltin };
  Type type = Type::kNull;

  std::vector<bool> lgl;
  std::vector<double> num;
  std::vector<std::string> chr;
  std::vector<RRef> list;
  std::vector<std::string> names;  // for named lists / vectors
  std::shared_ptr<Closure> closure;
  std::shared_ptr<BuiltinFn> builtin;

  size_t length() const {
    switch (type) {
      case Type::kNull: return 0;
      case Type::kLogical: return lgl.size();
      case Type::kNumeric: return num.size();
      case Type::kCharacter: return chr.size();
      case Type::kList: return list.size();
      default: return 1;
    }
  }
};

// ---- constructors ----
RRef r_null();
RRef r_logical(std::vector<bool> v);
RRef r_scalar_logical(bool b);
RRef r_numeric(std::vector<double> v);
RRef r_scalar(double d);
RRef r_character(std::vector<std::string> v);
RRef r_scalar_str(std::string s);
RRef r_list(std::vector<RRef> items, std::vector<std::string> names = {});

// ---- conversions ----
// R's number printing: integral numerics print without a decimal point.
std::string format_r_number(double d);
// as.character element-wise representation.
std::vector<std::string> as_character(const RRef& v);
// Coerce to numeric (logical -> 0/1, character parsed); throws RError.
std::vector<double> as_numeric(const RRef& v);
// Coerce to logical; numeric nonzero -> TRUE.
std::vector<bool> as_logical(const RRef& v);
// Scalar condition for if/while: first element truthiness; errors on NULL.
bool condition(const RRef& v);
// Single numeric scalar.
double scalar_num(const RRef& v, const char* what);
// Single string scalar.
std::string scalar_chr(const RRef& v, const char* what);

// deparse-like display used for eval results and print().
std::string deparse(const RRef& v);

const char* type_name(RValue::Type t);

}  // namespace ilps::r
