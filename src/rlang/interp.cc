// MiniR tree-walking evaluator: vectorized operators with recycling,
// 1-based indexing with copy-on-assign (R value semantics), lexical
// closures, and control flow.
#include "rlang/interp.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace ilps::r {

namespace {
constexpr int kMaxDepth = 300;

struct BreakSig {};
struct NextSig {};
}  // namespace

// Thrown by the return() builtin; caught at closure-call boundaries.
struct ReturnSig {
  RRef value;
};

class REvaluator {
 public:
  explicit REvaluator(Interpreter& in) : in_(in) {}

  RRef eval(const RExpr& e, const EnvRef& env) {
    ++in_.count_;
    switch (e.kind) {
      case RExpr::Kind::kNum:
        return r_scalar(e.num);
      case RExpr::Kind::kStr:
        return r_scalar_str(e.str);
      case RExpr::Kind::kLogical:
        return r_scalar_logical(e.num != 0);
      case RExpr::Kind::kNull:
        return r_null();
      case RExpr::Kind::kName: {
        RRef* v = env->find(e.str);
        if (v == nullptr) throw RError("object '" + e.str + "' not found");
        return *v;
      }
      case RExpr::Kind::kBlock: {
        RRef last = r_null();
        for (const auto& item : e.items) last = eval(*item, env);
        return last;
      }
      case RExpr::Kind::kAssign: {
        RRef value = eval(*e.b, env);
        assign_target(*e.a, value, env, e.str == "<<-");
        return value;
      }
      case RExpr::Kind::kIf:
        if (condition(eval(*e.a, env))) return eval(*e.b, env);
        if (e.c) return eval(*e.c, env);
        return r_null();
      case RExpr::Kind::kFor: {
        RRef seq = eval(*e.a, env);
        size_t n = seq->length();
        for (size_t i = 0; i < n; ++i) {
          env->vars[e.str] = element(seq, i);
          try {
            eval(*e.b, env);
          } catch (BreakSig&) {
            break;
          } catch (NextSig&) {
            continue;
          }
        }
        return r_null();
      }
      case RExpr::Kind::kWhile:
        while (condition(eval(*e.a, env))) {
          try {
            eval(*e.b, env);
          } catch (BreakSig&) {
            break;
          } catch (NextSig&) {
            continue;
          }
        }
        return r_null();
      case RExpr::Kind::kRepeat:
        while (true) {
          try {
            eval(*e.a, env);
          } catch (BreakSig&) {
            break;
          } catch (NextSig&) {
            continue;
          }
        }
        return r_null();
      case RExpr::Kind::kBreak:
        throw BreakSig{};
      case RExpr::Kind::kNext:
        throw NextSig{};
      case RExpr::Kind::kFunction: {
        auto closure = std::make_shared<Closure>();
        for (const auto& [name, def] : e.params) {
          closure->params.emplace_back(name, def);
        }
        // The AST is owned by the interpreter arena; alias the program's
        // owner so the body outlives this eval call.
        closure->body = std::shared_ptr<const RExpr>(in_.arena_.back(), e.a.get());
        closure->env = env;
        auto v = std::make_shared<RValue>();
        v->type = RValue::Type::kClosure;
        v->closure = std::move(closure);
        return v;
      }
      case RExpr::Kind::kUnary: {
        RRef v = eval(*e.a, env);
        if (e.str == "!") {
          auto l = as_logical(v);
          std::vector<bool> out;
          out.reserve(l.size());
          for (bool b : l) out.push_back(!b);
          return r_logical(std::move(out));
        }
        auto n = as_numeric(v);
        if (e.str == "-") {
          for (auto& d : n) d = -d;
        }
        return r_numeric(std::move(n));
      }
      case RExpr::Kind::kBinary:
        return binary(e, env);
      case RExpr::Kind::kCall:
        return call(e, env);
      case RExpr::Kind::kIndex:
        return index_get(eval(*e.a, env), eval(*e.b, env));
      case RExpr::Kind::kIndex2:
        return index2_get(eval(*e.a, env), eval(*e.b, env));
      case RExpr::Kind::kDollar: {
        RRef obj = eval(*e.a, env);
        if (obj->type != RValue::Type::kList) {
          throw RError("$ operator is invalid for type '" +
                       std::string(type_name(obj->type)) + "'");
        }
        for (size_t i = 0; i < obj->names.size() && i < obj->list.size(); ++i) {
          if (obj->names[i] == e.str) return obj->list[i];
        }
        return r_null();
      }
    }
    throw RError("internal error: unknown expression kind");
  }

  RRef call_closure(const RRef& fn, std::vector<NamedArg>& args) {
    const Closure& closure = *fn->closure;
    if (++in_.depth_ > kMaxDepth) {
      --in_.depth_;
      throw RError("evaluation nested too deeply: infinite recursion?");
    }
    auto env = std::make_shared<Environment>();
    env->parent = closure.env;
    in_.register_env(env);

    // R argument matching (simplified): exact-name matches first, then
    // positional filling of the remaining parameters.
    std::vector<bool> param_bound(closure.params.size(), false);
    std::vector<bool> arg_used(args.size(), false);
    for (size_t a = 0; a < args.size(); ++a) {
      if (!args[a].name) continue;
      bool matched = false;
      for (size_t p = 0; p < closure.params.size(); ++p) {
        if (closure.params[p].first == *args[a].name) {
          if (param_bound[p]) throw RError("formal argument '" + *args[a].name +
                                           "' matched by multiple actual arguments");
          env->vars[closure.params[p].first] = args[a].value;
          param_bound[p] = true;
          arg_used[a] = true;
          matched = true;
          break;
        }
      }
      if (!matched) throw RError("unused argument (" + *args[a].name + " = ...)");
    }
    size_t p = 0;
    for (size_t a = 0; a < args.size(); ++a) {
      if (arg_used[a]) continue;
      while (p < closure.params.size() && param_bound[p]) ++p;
      if (p >= closure.params.size()) throw RError("unused arguments in call");
      env->vars[closure.params[p].first] = args[a].value;
      param_bound[p] = true;
    }
    for (size_t q = 0; q < closure.params.size(); ++q) {
      if (param_bound[q]) continue;
      if (closure.params[q].second) {
        env->vars[closure.params[q].first] = eval(*closure.params[q].second, env);
      } else {
        // Lazily missing, like R; error only if actually used — we
        // simplify to an immediate error.
        throw RError("argument \"" + closure.params[q].first + "\" is missing, with no default");
      }
    }

    struct Guard {
      Interpreter& in;
      ~Guard() { --in.depth_; }
    } guard{in_};
    try {
      return eval(*closure.body, env);
    } catch (ReturnSig& r) {
      return r.value;
    }
  }

 private:
  // ---- assignment ----

  static RRef clone(const RRef& v) { return std::make_shared<RValue>(*v); }

  void assign_target(const RExpr& target, RRef value, const EnvRef& env, bool super) {
    if (target.kind == RExpr::Kind::kName) {
      if (super) {
        // <<-: rebind where found in an enclosing scope, else global.
        for (Environment* e = env->parent.get(); e != nullptr; e = e->parent.get()) {
          auto it = e->vars.find(target.str);
          if (it != e->vars.end()) {
            it->second = std::move(value);
            return;
          }
        }
        in_.global_->vars[target.str] = std::move(value);
        return;
      }
      env->vars[target.str] = std::move(value);
      return;
    }
    // x[i] <- v, x[[i]] <- v, x$n <- v: R value semantics — build a
    // modified copy, then assign it back to the base target.
    if (target.kind == RExpr::Kind::kIndex || target.kind == RExpr::Kind::kIndex2 ||
        target.kind == RExpr::Kind::kDollar) {
      RRef base = clone(eval(*target.a, env));
      if (target.kind == RExpr::Kind::kDollar) {
        dollar_set(base, target.str, value);
      } else {
        RRef key = eval(*target.b, env);
        if (target.kind == RExpr::Kind::kIndex2 || base->type == RValue::Type::kList) {
          element_set(base, key, value);
        } else {
          index_set(base, key, value);
        }
      }
      assign_target(*target.a, base, env, super);
      return;
    }
    throw RError("invalid assignment target");
  }

  static void dollar_set(const RRef& obj, const std::string& name, const RRef& value) {
    if (obj->type == RValue::Type::kNull) {
      obj->type = RValue::Type::kList;
    }
    if (obj->type != RValue::Type::kList) throw RError("$<- is only valid for lists");
    obj->names.resize(obj->list.size());
    for (size_t i = 0; i < obj->names.size(); ++i) {
      if (obj->names[i] == name) {
        obj->list[i] = value;
        return;
      }
    }
    obj->list.push_back(value);
    obj->names.push_back(name);
  }

  void element_set(const RRef& obj, const RRef& key, const RRef& value) {
    if (obj->type == RValue::Type::kNull) obj->type = RValue::Type::kList;
    if (obj->type == RValue::Type::kList) {
      if (key->type == RValue::Type::kCharacter) {
        dollar_set(obj, scalar_chr(key, "[["), value);
        return;
      }
      int64_t i = static_cast<int64_t>(scalar_num(key, "[["));
      if (i < 1) throw RError("invalid subscript");
      if (static_cast<size_t>(i) > obj->list.size()) {
        obj->list.resize(static_cast<size_t>(i), r_null());
        if (!obj->names.empty()) obj->names.resize(static_cast<size_t>(i));
      }
      obj->list[static_cast<size_t>(i - 1)] = value;
      return;
    }
    index_set(obj, key, value);
  }

  void index_set(const RRef& obj, const RRef& key, const RRef& value) {
    auto idx = resolve_indices(obj, key);
    switch (obj->type) {
      case RValue::Type::kNumeric: {
        auto vals = as_numeric(value);
        if (vals.empty()) throw RError("replacement has length zero");
        size_t max_needed = *std::max_element(idx.begin(), idx.end()) + 1;
        if (max_needed > obj->num.size()) obj->num.resize(max_needed, 0.0);
        for (size_t k = 0; k < idx.size(); ++k) obj->num[idx[k]] = vals[k % vals.size()];
        return;
      }
      case RValue::Type::kCharacter: {
        auto vals = as_character(value);
        if (vals.empty()) throw RError("replacement has length zero");
        size_t max_needed = *std::max_element(idx.begin(), idx.end()) + 1;
        if (max_needed > obj->chr.size()) obj->chr.resize(max_needed);
        for (size_t k = 0; k < idx.size(); ++k) obj->chr[idx[k]] = vals[k % vals.size()];
        return;
      }
      case RValue::Type::kLogical: {
        auto vals = as_logical(value);
        if (vals.empty()) throw RError("replacement has length zero");
        size_t max_needed = *std::max_element(idx.begin(), idx.end()) + 1;
        if (max_needed > obj->lgl.size()) obj->lgl.resize(max_needed, false);
        for (size_t k = 0; k < idx.size(); ++k) obj->lgl[idx[k]] = vals[k % vals.size()];
        return;
      }
      default:
        throw RError("object of type '" + std::string(type_name(obj->type)) +
                     "' is not subsettable");
    }
  }

  // ---- indexing ----

  // Resolves an index value against an object into 0-based positions.
  std::vector<size_t> resolve_indices(const RRef& obj, const RRef& key) {
    size_t n = obj->length();
    std::vector<size_t> out;
    if (key->type == RValue::Type::kLogical) {
      if (key->lgl.empty()) throw RError("logical subscript of length zero");
      for (size_t i = 0; i < n; ++i) {
        if (key->lgl[i % key->lgl.size()]) out.push_back(i);
      }
      return out;
    }
    auto nums = as_numeric(key);
    bool any_neg = false;
    bool any_pos = false;
    for (double d : nums) {
      if (d < 0) any_neg = true;
      if (d > 0) any_pos = true;
    }
    if (any_neg && any_pos) throw RError("can't mix positive and negative subscripts");
    if (any_neg) {
      std::vector<bool> drop(n, false);
      for (double d : nums) {
        size_t i = static_cast<size_t>(-d);
        if (i >= 1 && i <= n) drop[i - 1] = true;
      }
      for (size_t i = 0; i < n; ++i) {
        if (!drop[i]) out.push_back(i);
      }
      return out;
    }
    for (double d : nums) {
      int64_t i = static_cast<int64_t>(d);
      if (i < 1) continue;  // 0 indices are dropped, as in R
      out.push_back(static_cast<size_t>(i - 1));
    }
    return out;
  }

  RRef index_get(const RRef& obj, const RRef& key) {
    auto idx = resolve_indices(obj, key);
    auto check = [&](size_t i) {
      if (i >= obj->length()) {
        throw RError("subscript out of bounds: " + std::to_string(i + 1));
      }
      return i;
    };
    switch (obj->type) {
      case RValue::Type::kNumeric: {
        std::vector<double> out;
        for (size_t i : idx) out.push_back(obj->num[check(i)]);
        return r_numeric(std::move(out));
      }
      case RValue::Type::kCharacter: {
        std::vector<std::string> out;
        for (size_t i : idx) out.push_back(obj->chr[check(i)]);
        return r_character(std::move(out));
      }
      case RValue::Type::kLogical: {
        std::vector<bool> out;
        for (size_t i : idx) out.push_back(obj->lgl[check(i)]);
        return r_logical(std::move(out));
      }
      case RValue::Type::kList: {
        std::vector<RRef> out;
        std::vector<std::string> names;
        for (size_t i : idx) {
          out.push_back(obj->list[check(i)]);
          if (i < obj->names.size()) names.push_back(obj->names[i]);
        }
        return r_list(std::move(out), std::move(names));
      }
      default:
        throw RError("object of type '" + std::string(type_name(obj->type)) +
                     "' is not subsettable");
    }
  }

  RRef index2_get(const RRef& obj, const RRef& key) {
    if (obj->type == RValue::Type::kList && key->type == RValue::Type::kCharacter) {
      std::string name = scalar_chr(key, "[[");
      for (size_t i = 0; i < obj->names.size() && i < obj->list.size(); ++i) {
        if (obj->names[i] == name) return obj->list[i];
      }
      throw RError("subscript out of bounds: no element named '" + name + "'");
    }
    int64_t i = static_cast<int64_t>(scalar_num(key, "[["));
    if (i < 1 || static_cast<size_t>(i) > obj->length()) {
      throw RError("subscript out of bounds: " + std::to_string(i));
    }
    return element(obj, static_cast<size_t>(i - 1));
  }

  // The i-th element as a length-one value.
  static RRef element(const RRef& obj, size_t i) {
    switch (obj->type) {
      case RValue::Type::kNumeric: return r_scalar(obj->num[i]);
      case RValue::Type::kCharacter: return r_scalar_str(obj->chr[i]);
      case RValue::Type::kLogical: return r_scalar_logical(obj->lgl[i]);
      case RValue::Type::kList: return obj->list[i];
      default:
        throw RError("cannot take elements of type '" + std::string(type_name(obj->type)) + "'");
    }
  }

  // ---- operators ----

  RRef binary(const RExpr& e, const EnvRef& env) {
    const std::string& op = e.str;

    // Scalar short-circuit forms.
    if (op == "&&") {
      if (!condition(eval(*e.a, env))) return r_scalar_logical(false);
      return r_scalar_logical(condition(eval(*e.b, env)));
    }
    if (op == "||") {
      if (condition(eval(*e.a, env))) return r_scalar_logical(true);
      return r_scalar_logical(condition(eval(*e.b, env)));
    }

    RRef a = eval(*e.a, env);
    RRef b = eval(*e.b, env);

    if (op == ":") {
      double from = scalar_num(a, ":");
      double to = scalar_num(b, ":");
      std::vector<double> out;
      if (from <= to) {
        for (double v = from; v <= to + 1e-9; v += 1.0) out.push_back(v);
      } else {
        for (double v = from; v >= to - 1e-9; v -= 1.0) out.push_back(v);
      }
      return r_numeric(std::move(out));
    }

    if (op == "%in%") {
      auto needles = as_character(a);
      auto haystack = as_character(b);
      std::vector<bool> out;
      for (const auto& n : needles) {
        bool found = false;
        for (const auto& h : haystack) {
          if (n == h) {
            found = true;
            break;
          }
        }
        out.push_back(found);
      }
      return r_logical(std::move(out));
    }

    if (op == "&" || op == "|") {
      auto x = as_logical(a);
      auto y = as_logical(b);
      size_t n = std::max(x.size(), y.size());
      if (x.empty() || y.empty()) return r_logical({});
      std::vector<bool> out;
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        bool xv = x[i % x.size()];
        bool yv = y[i % y.size()];
        out.push_back(op == "&" ? (xv && yv) : (xv || yv));
      }
      return r_logical(std::move(out));
    }

    bool comparison = op == "==" || op == "!=" || op == "<" || op == ">" || op == "<=" ||
                      op == ">=";
    if (comparison && (a->type == RValue::Type::kCharacter ||
                       b->type == RValue::Type::kCharacter)) {
      auto x = as_character(a);
      auto y = as_character(b);
      size_t n = std::max(x.size(), y.size());
      if (x.empty() || y.empty()) return r_logical({});
      std::vector<bool> out;
      for (size_t i = 0; i < n; ++i) {
        const std::string& xv = x[i % x.size()];
        const std::string& yv = y[i % y.size()];
        int c = xv.compare(yv);
        out.push_back(cmp_result(op, c));
      }
      return r_logical(std::move(out));
    }

    auto x = as_numeric(a);
    auto y = as_numeric(b);
    if (x.empty() || y.empty()) {
      return comparison ? r_logical({}) : r_numeric({});
    }
    size_t n = std::max(x.size(), y.size());
    if (comparison) {
      std::vector<bool> out;
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        double xv = x[i % x.size()];
        double yv = y[i % y.size()];
        int c = xv < yv ? -1 : (xv > yv ? 1 : 0);
        out.push_back(cmp_result(op, c));
      }
      return r_logical(std::move(out));
    }
    std::vector<double> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      double xv = x[i % x.size()];
      double yv = y[i % y.size()];
      if (op == "+") {
        out.push_back(xv + yv);
      } else if (op == "-") {
        out.push_back(xv - yv);
      } else if (op == "*") {
        out.push_back(xv * yv);
      } else if (op == "/") {
        out.push_back(xv / yv);  // R yields Inf/NaN, not an error
      } else if (op == "^") {
        out.push_back(std::pow(xv, yv));
      } else if (op == "%%") {
        double r = std::fmod(xv, yv);
        if (r != 0.0 && ((r < 0) != (yv < 0))) r += yv;
        out.push_back(r);
      } else if (op == "%/%") {
        out.push_back(std::floor(xv / yv));
      } else {
        throw RError("internal error: operator " + op);
      }
    }
    return r_numeric(std::move(out));
  }

  static bool cmp_result(const std::string& op, int c) {
    if (op == "==") return c == 0;
    if (op == "!=") return c != 0;
    if (op == "<") return c < 0;
    if (op == "<=") return c <= 0;
    if (op == ">") return c > 0;
    return c >= 0;
  }

  // ---- calls ----

  RRef call(const RExpr& e, const EnvRef& env) {
    RRef fn = eval(*e.a, env);
    std::vector<NamedArg> args;
    for (size_t i = 0; i < e.items.size(); ++i) {
      NamedArg arg;
      if (i < e.arg_names.size() && !e.arg_names[i].empty()) arg.name = e.arg_names[i];
      arg.value = eval(*e.items[i], env);
      args.push_back(std::move(arg));
    }
    if (fn->type == RValue::Type::kBuiltin) return fn->builtin->fn(args);
    if (fn->type == RValue::Type::kClosure) return call_closure(fn, args);
    throw RError("attempt to apply non-function");
  }

  Interpreter& in_;
};

// ---- bridges for builtins.cc ----

RRef call_r_function(Interpreter& in, const RRef& fn, std::vector<NamedArg>& args) {
  if (fn->type == RValue::Type::kBuiltin) return fn->builtin->fn(args);
  if (fn->type != RValue::Type::kClosure) throw RError("attempt to apply non-function");
  REvaluator ev(in);
  return ev.call_closure(fn, args);
}

void throw_r_return(RRef value) { throw ReturnSig{std::move(value)}; }

// ---- Interpreter facade ----

// install_base() lives in builtins.cc.

Interpreter::Interpreter() {
  out_ = [](const std::string& s) { std::fputs(s.c_str(), stdout); };
  global_ = std::make_shared<Environment>();
  install_base();
}

Interpreter::~Interpreter() { break_env_cycles(); }

void Interpreter::register_env(const EnvRef& env) {
  // Compact occasionally so long runs do not accumulate dead entries.
  if (envs_.size() > 64 && envs_.size() == envs_.capacity()) {
    std::erase_if(envs_, [](const std::weak_ptr<Environment>& w) { return w.expired(); });
  }
  envs_.push_back(env);
}

void Interpreter::break_env_cycles() {
  global_->vars.clear();
  for (auto& weak : envs_) {
    if (auto env = weak.lock()) {
      env->vars.clear();
      env->parent.reset();
    }
  }
  envs_.clear();
}

void Interpreter::reset() {
  break_env_cycles();
  global_ = std::make_shared<Environment>();
  arena_.clear();
  count_ = 0;
  depth_ = 0;
  rng_ = Rng(0x5EED);
  install_base();
}

RRef Interpreter::eval_value(const std::string& code) {
  auto prog = std::make_shared<std::vector<RExprP>>(parse_r(code));
  if (prog->empty()) return r_null();
  arena_.push_back(prog);
  REvaluator ev(*this);
  RRef last = r_null();
  for (const auto& e : *prog) last = ev.eval(*e, global_);
  return last;
}

std::string Interpreter::eval(const std::string& code) { return deparse(eval_value(code)); }

std::string Interpreter::eval(const std::string& code, const std::string& expr) {
  eval_value(code);
  RRef v = eval_value(expr);
  auto parts = as_character(v);
  return str::join(parts, ",");
}

void Interpreter::set_output_handler(std::function<void(const std::string&)> fn) {
  out_ = std::move(fn);
}

void Interpreter::set_global(const std::string& name, RRef value) {
  global_->vars[name] = std::move(value);
}

RRef Interpreter::get_global(const std::string& name) {
  auto it = global_->vars.find(name);
  return it == global_->vars.end() ? nullptr : it->second;
}

}  // namespace ilps::r
