// The MiniR interpreter with a libR-embedding-shaped API.
//
// Swift/T calls R through the embedded library (Rf_initEmbeddedR /
// R_ParseVector / Rf_eval): evaluate a code fragment, then evaluate one
// result expression and read it back as a string. MiniR mirrors that:
// eval(code) runs statements in the global environment and returns the
// last value's display form; eval(code, expr) additionally evaluates
// `expr` and returns toString() of the result. Global state persists
// until reset() — the paper's retain-vs-reinitialize policy.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "rlang/ast.h"
#include "rlang/value.h"

namespace ilps::r {

class Interpreter {
 public:
  Interpreter();
  ~Interpreter();

  // Evaluates code; returns the deparsed value of the last expression.
  std::string eval(const std::string& code);

  // Swift/T convention: run `code`, then evaluate `expr` and return the
  // result as a flat string (elements joined by ","), e.g. "1,2,3".
  std::string eval(const std::string& code, const std::string& expr);

  // Evaluates and returns the value of the last expression.
  RRef eval_value(const std::string& code);

  // Clears all global state and reinstalls the base library.
  void reset();

  // Sink for cat()/print() output; defaults to stdout.
  void set_output_handler(std::function<void(const std::string&)> fn);

  void set_global(const std::string& name, RRef value);
  RRef get_global(const std::string& name);  // nullptr if unbound

  uint64_t expressions_evaluated() const { return count_; }
  Rng& rng() { return rng_; }
  EnvRef global_env() { return global_; }

 private:
  friend class REvaluator;
  void install_base();
  // Closures and the environments that hold them form reference cycles
  // (an R implementation detail normally hidden by R's garbage collector).
  // Every environment created for a call is tracked weakly; reset() and
  // the destructor clear surviving environments' bindings, breaking all
  // cycles so shared_ptr reclamation completes.
  void register_env(const EnvRef& env);
  void break_env_cycles();

  EnvRef global_;
  std::function<void(const std::string&)> out_;
  uint64_t count_ = 0;
  int depth_ = 0;
  Rng rng_{0x5EED};
  // Parsed programs stay alive for the interpreter lifetime; closures
  // alias into them.
  std::vector<std::shared_ptr<std::vector<RExprP>>> arena_;
  std::vector<std::weak_ptr<Environment>> envs_;
};

// Bridges for builtins.cc: invoke a closure or builtin value, and signal a
// return() from inside a closure body.
RRef call_r_function(Interpreter& in, const RRef& fn, std::vector<NamedArg>& args);
[[noreturn]] void throw_r_return(RRef value);

}  // namespace ilps::r
