// MiniR lexer and recursive-descent parser.
#include <cctype>
#include <cstdlib>

#include "common/strings.h"
#include "rlang/ast.h"

namespace ilps::r {

namespace {

enum class Tk { kEnd, kNewline, kNum, kStr, kName, kOp };

struct Token {
  Tk kind;
  std::string text;
  double num = 0;
  int line = 0;
};

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  int depth = 0;  // () and [] nesting: newlines inside are not separators

  // Multi-char operators first.
  // Note: `]]` is deliberately NOT a token — it would mis-lex `x[y[1]]`.
  // `[[` is safe to merge because `[` cannot start an operand.
  static const char* kOps[] = {"<<-", "%in%", "%/%", "%%", "<-", "<=", ">=", "==", "!=", "&&", "||",
                               "[[", "(", ")", "[", "]", "{", "}", ",", ";", "+", "-",
                               "*",  "/",  "^", "<", ">", "!", "&", "|", "$", ":", "=", "?"};

  while (i < src.size()) {
    char c = src[i];
    if (c == '\r') {
      ++i;
      continue;
    }
    if (c == '\n') {
      ++i;
      ++line;
      if (depth == 0) {
        if (!out.empty() && out.back().kind != Tk::kNewline) {
          out.push_back({Tk::kNewline, "\n", 0, line});
        }
      }
      continue;
    }
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string value;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) {
          char e = src[i + 1];
          i += 2;
          switch (e) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case '\\': value += '\\'; break;
            case '"': value += '"'; break;
            case '\'': value += '\''; break;
            default: value += e;
          }
          continue;
        }
        if (src[i] == '\n') ++line;
        value += src[i++];
      }
      if (i >= src.size()) throw RError("unexpected end of input in string (line " +
                                        std::to_string(line) + ")");
      ++i;
      out.push_back({Tk::kStr, std::move(value), 0, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      while (i < src.size() && (std::isdigit(static_cast<unsigned char>(src[i])) || src[i] == '.')) {
        ++i;
      }
      if (i < src.size() && (src[i] == 'e' || src[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < src.size() && (src[exp] == '+' || src[exp] == '-')) ++exp;
        if (exp < src.size() && std::isdigit(static_cast<unsigned char>(src[exp]))) {
          i = exp;
          while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        }
      }
      if (i < src.size() && src[i] == 'L') ++i;  // integer literal suffix
      std::string text(src.substr(start, i - start));
      Token t{Tk::kNum, text, std::strtod(text.c_str(), nullptr), line};
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
      size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_' || src[i] == '.')) {
        ++i;
      }
      out.push_back({Tk::kName, std::string(src.substr(start, i - start)), 0, line});
      continue;
    }
    bool matched = false;
    for (const char* op : kOps) {
      if (src.substr(i).starts_with(op)) {
        char first = op[0];
        if (first == '(' || first == '[') ++depth;
        if (first == ')' || first == ']') --depth;
        if (std::string_view(op) == "[[") ++depth;  // counts as two opens
        out.push_back({Tk::kOp, op, 0, line});
        i += std::string_view(op).size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw RError("unexpected character '" + std::string(1, c) + "' (line " +
                   std::to_string(line) + ")");
    }
  }
  out.push_back({Tk::kNewline, "\n", 0, line});
  out.push_back({Tk::kEnd, "", 0, line});
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  std::vector<RExprP> program() {
    std::vector<RExprP> out;
    skip_seps();
    while (!at_end()) {
      out.push_back(expr());
      if (!at_end() && !at_sep() && !at_op("}")) fail("unexpected token after expression");
      skip_seps();
    }
    return out;
  }

 private:
  const Token& cur() const { return toks_[i_]; }
  bool at_end() const { return cur().kind == Tk::kEnd; }
  bool at_sep() const {
    return cur().kind == Tk::kNewline || (cur().kind == Tk::kOp && cur().text == ";");
  }
  bool at_op(std::string_view op) const {
    return cur().kind == Tk::kOp && cur().text == op;
  }
  bool at_name(std::string_view n) const {
    return cur().kind == Tk::kName && cur().text == n;
  }
  bool eat_op(std::string_view op) {
    if (at_op(op)) {
      ++i_;
      return true;
    }
    return false;
  }
  void expect(std::string_view op) {
    if (!eat_op(op)) fail("expected '" + std::string(op) + "'");
  }
  void skip_seps() {
    while (at_sep()) ++i_;
  }
  void skip_newlines() {
    while (cur().kind == Tk::kNewline) ++i_;
  }
  [[noreturn]] void fail(const std::string& why) const {
    throw RError("syntax error: " + why + " (line " + std::to_string(cur().line) + ", near '" +
                 cur().text + "')");
  }

  RExprP node(RExpr::Kind kind) {
    auto e = std::make_shared<RExpr>();
    e->kind = kind;
    e->line = cur().line;
    return e;
  }

  RExprP expr() { return assign(); }

  RExprP assign() {
    RExprP lhs = right();
    if (at_op("<-") || at_op("<<-") || at_op("=")) {
      std::string op = cur().text == "<<-" ? "<<-" : "<-";
      ++i_;
      skip_newlines();
      auto e = node(RExpr::Kind::kAssign);
      e->str = op;
      e->a = lhs;
      e->b = assign();  // right-associative
      if (lhs->kind != RExpr::Kind::kName && lhs->kind != RExpr::Kind::kIndex &&
          lhs->kind != RExpr::Kind::kIndex2 && lhs->kind != RExpr::Kind::kDollar) {
        fail("invalid assignment target");
      }
      return e;
    }
    return lhs;
  }

  // Control structures and function literals parse at this level so that
  // `x <- if (c) 1 else 2` and `f <- function(a) a + 1` work.
  RExprP right() {
    if (at_name("if")) return if_expr();
    if (at_name("for")) return for_expr();
    if (at_name("while")) return while_expr();
    if (at_name("repeat")) return repeat_expr();
    if (at_name("function")) return function_expr();
    if (at_name("break")) {
      ++i_;
      return node(RExpr::Kind::kBreak);
    }
    if (at_name("next")) {
      ++i_;
      return node(RExpr::Kind::kNext);
    }
    return or_expr();
  }

  RExprP if_expr() {
    auto e = node(RExpr::Kind::kIf);
    ++i_;  // if
    expect("(");
    skip_newlines();
    e->a = expr();
    skip_newlines();
    expect(")");
    skip_newlines();
    e->b = expr();  // a body may itself be an assignment
    // `else` may appear after a newline (inside blocks).
    size_t save = i_;
    skip_seps();
    if (at_name("else")) {
      ++i_;
      skip_newlines();
      e->c = expr();
    } else {
      i_ = save;
    }
    return e;
  }

  RExprP for_expr() {
    auto e = node(RExpr::Kind::kFor);
    ++i_;
    expect("(");
    if (cur().kind != Tk::kName) fail("expected loop variable");
    e->str = cur().text;
    ++i_;
    if (!at_name("in")) fail("expected 'in'");
    ++i_;
    e->a = expr();
    expect(")");
    skip_newlines();
    e->b = expr();  // loop bodies may be assignments
    return e;
  }

  RExprP while_expr() {
    auto e = node(RExpr::Kind::kWhile);
    ++i_;
    expect("(");
    e->a = expr();
    expect(")");
    skip_newlines();
    e->b = expr();
    return e;
  }

  RExprP repeat_expr() {
    auto e = node(RExpr::Kind::kRepeat);
    ++i_;
    skip_newlines();
    e->a = expr();
    return e;
  }

  RExprP function_expr() {
    auto e = node(RExpr::Kind::kFunction);
    ++i_;
    expect("(");
    skip_newlines();
    if (!at_op(")")) {
      while (true) {
        if (cur().kind != Tk::kName) fail("expected parameter name");
        std::string pname = cur().text;
        ++i_;
        RExprP def;
        if (eat_op("=")) {
          skip_newlines();
          def = expr();
        }
        e->params.emplace_back(std::move(pname), def);
        skip_newlines();
        if (!eat_op(",")) break;
        skip_newlines();
      }
    }
    expect(")");
    skip_newlines();
    e->a = right();
    return e;
  }

  RExprP binary_chain(RExprP (Parser::*next)(), std::initializer_list<const char*> ops) {
    RExprP lhs = (this->*next)();
    while (true) {
      bool matched = false;
      for (const char* op : ops) {
        if (at_op(op)) {
          auto e = node(RExpr::Kind::kBinary);
          ++i_;
          skip_newlines();
          e->str = op;
          e->a = lhs;
          e->b = (this->*next)();
          lhs = e;
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  RExprP or_expr() { return binary_chain(&Parser::and_expr, {"||", "|"}); }
  RExprP and_expr() { return binary_chain(&Parser::not_expr, {"&&", "&"}); }

  RExprP not_expr() {
    if (at_op("!")) {
      auto e = node(RExpr::Kind::kUnary);
      ++i_;
      e->str = "!";
      e->a = not_expr();
      return e;
    }
    return comparison();
  }

  RExprP comparison() {
    return binary_chain(&Parser::additive, {"<=", ">=", "==", "!=", "<", ">"});
  }

  RExprP additive() { return binary_chain(&Parser::multiplicative, {"+", "-"}); }
  RExprP multiplicative() { return binary_chain(&Parser::special, {"*", "/"}); }
  RExprP special() { return binary_chain(&Parser::range_expr, {"%%", "%/%", "%in%"}); }

  RExprP range_expr() {
    RExprP lhs = unary();
    if (at_op(":")) {
      auto e = node(RExpr::Kind::kBinary);
      ++i_;
      e->str = ":";
      e->a = lhs;
      e->b = unary();
      return e;
    }
    return lhs;
  }

  RExprP unary() {
    if (at_op("-") || at_op("+")) {
      auto e = node(RExpr::Kind::kUnary);
      e->str = cur().text;
      ++i_;
      e->a = unary();
      return e;
    }
    return power();
  }

  RExprP power() {
    RExprP base = postfix();
    if (at_op("^")) {
      auto e = node(RExpr::Kind::kBinary);
      ++i_;
      e->str = "^";
      e->a = base;
      e->b = unary();  // right-associative
      return e;
    }
    return base;
  }

  RExprP postfix() {
    RExprP e = atom();
    while (true) {
      if (at_op("(")) {
        ++i_;
        skip_newlines();
        auto call = node(RExpr::Kind::kCall);
        call->a = e;
        if (!at_op(")")) {
          while (true) {
            std::string aname;
            // name = value (but not ==).
            if (cur().kind == Tk::kName && i_ + 1 < toks_.size() &&
                toks_[i_ + 1].kind == Tk::kOp && toks_[i_ + 1].text == "=") {
              aname = cur().text;
              i_ += 2;
              skip_newlines();
            }
            call->arg_names.push_back(aname);
            call->items.push_back(expr());
            skip_newlines();
            if (!eat_op(",")) break;
            skip_newlines();
          }
        }
        expect(")");
        e = call;
      } else if (at_op("[[")) {
        ++i_;
        auto idx = node(RExpr::Kind::kIndex2);
        idx->a = e;
        idx->b = expr();
        expect("]");
        expect("]");
        e = idx;
      } else if (at_op("[")) {
        ++i_;
        auto idx = node(RExpr::Kind::kIndex);
        idx->a = e;
        idx->b = expr();
        expect("]");
        e = idx;
      } else if (at_op("$")) {
        ++i_;
        if (cur().kind != Tk::kName) fail("expected name after $");
        auto d = node(RExpr::Kind::kDollar);
        d->a = e;
        d->str = cur().text;
        ++i_;
        e = d;
      } else {
        return e;
      }
    }
  }

  RExprP atom() {
    if (cur().kind == Tk::kNum) {
      auto e = node(RExpr::Kind::kNum);
      e->num = cur().num;
      ++i_;
      return e;
    }
    if (cur().kind == Tk::kStr) {
      auto e = node(RExpr::Kind::kStr);
      e->str = cur().text;
      ++i_;
      return e;
    }
    if (cur().kind == Tk::kName) {
      const std::string& n = cur().text;
      if (n == "TRUE" || n == "T") {
        ++i_;
        auto e = node(RExpr::Kind::kLogical);
        e->num = 1;
        return e;
      }
      if (n == "FALSE" || n == "F") {
        ++i_;
        auto e = node(RExpr::Kind::kLogical);
        e->num = 0;
        return e;
      }
      if (n == "NULL") {
        ++i_;
        return node(RExpr::Kind::kNull);
      }
      if (n == "if" || n == "for" || n == "while" || n == "repeat" || n == "function" ||
          n == "break" || n == "next") {
        return right();
      }
      auto e = node(RExpr::Kind::kName);
      e->str = n;
      ++i_;
      return e;
    }
    if (eat_op("(")) {
      skip_newlines();
      RExprP e = expr();
      skip_newlines();
      expect(")");
      return e;
    }
    if (at_op("{")) {
      ++i_;
      auto e = node(RExpr::Kind::kBlock);
      skip_seps();
      while (!at_op("}")) {
        if (at_end()) fail("unexpected end of input in block");
        e->items.push_back(expr());
        skip_seps();
      }
      ++i_;
      return e;
    }
    fail("unexpected token");
  }

  std::vector<Token> toks_;
  size_t i_ = 0;
};

}  // namespace

std::vector<RExprP> parse_r(std::string_view source) {
  Parser p(lex(source));
  return p.program();
}

}  // namespace ilps::r
