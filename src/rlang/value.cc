#include "rlang/value.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace ilps::r {

RRef r_null() {
  auto v = std::make_shared<RValue>();
  v->type = RValue::Type::kNull;
  return v;
}

RRef r_logical(std::vector<bool> vals) {
  auto v = std::make_shared<RValue>();
  v->type = RValue::Type::kLogical;
  v->lgl = std::move(vals);
  return v;
}

RRef r_scalar_logical(bool b) { return r_logical({b}); }

RRef r_numeric(std::vector<double> vals) {
  auto v = std::make_shared<RValue>();
  v->type = RValue::Type::kNumeric;
  v->num = std::move(vals);
  return v;
}

RRef r_scalar(double d) { return r_numeric({d}); }

RRef r_character(std::vector<std::string> vals) {
  auto v = std::make_shared<RValue>();
  v->type = RValue::Type::kCharacter;
  v->chr = std::move(vals);
  return v;
}

RRef r_scalar_str(std::string s) { return r_character({std::move(s)}); }

RRef r_list(std::vector<RRef> items, std::vector<std::string> names) {
  auto v = std::make_shared<RValue>();
  v->type = RValue::Type::kList;
  v->list = std::move(items);
  v->names = std::move(names);
  return v;
}

const char* type_name(RValue::Type t) {
  switch (t) {
    case RValue::Type::kNull: return "NULL";
    case RValue::Type::kLogical: return "logical";
    case RValue::Type::kNumeric: return "numeric";
    case RValue::Type::kCharacter: return "character";
    case RValue::Type::kList: return "list";
    case RValue::Type::kClosure: return "closure";
    case RValue::Type::kBuiltin: return "builtin";
  }
  return "?";
}

std::string format_r_number(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Inf" : "-Inf";
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    return buf;
  }
  // R prints with up to 15 significant digits by default.
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

std::vector<std::string> as_character(const RRef& v) {
  std::vector<std::string> out;
  switch (v->type) {
    case RValue::Type::kNull:
      return out;
    case RValue::Type::kLogical:
      for (bool b : v->lgl) out.push_back(b ? "TRUE" : "FALSE");
      return out;
    case RValue::Type::kNumeric:
      for (double d : v->num) out.push_back(format_r_number(d));
      return out;
    case RValue::Type::kCharacter:
      return v->chr;
    default:
      throw RError("cannot coerce type '" + std::string(type_name(v->type)) + "' to character");
  }
}

std::vector<double> as_numeric(const RRef& v) {
  std::vector<double> out;
  switch (v->type) {
    case RValue::Type::kNull:
      return out;
    case RValue::Type::kLogical:
      for (bool b : v->lgl) out.push_back(b ? 1.0 : 0.0);
      return out;
    case RValue::Type::kNumeric:
      return v->num;
    case RValue::Type::kCharacter:
      for (const auto& s : v->chr) {
        auto d = str::parse_double(s);
        if (!d) throw RError("NAs introduced by coercion: '" + s + "' is not numeric");
        out.push_back(*d);
      }
      return out;
    default:
      throw RError("cannot coerce type '" + std::string(type_name(v->type)) + "' to numeric");
  }
}

std::vector<bool> as_logical(const RRef& v) {
  std::vector<bool> out;
  switch (v->type) {
    case RValue::Type::kNull:
      return out;
    case RValue::Type::kLogical:
      return v->lgl;
    case RValue::Type::kNumeric:
      for (double d : v->num) out.push_back(d != 0.0);
      return out;
    case RValue::Type::kCharacter:
      for (const auto& s : v->chr) {
        if (s == "TRUE" || s == "T" || s == "true") {
          out.push_back(true);
        } else if (s == "FALSE" || s == "F" || s == "false") {
          out.push_back(false);
        } else {
          throw RError("cannot coerce '" + s + "' to logical");
        }
      }
      return out;
    default:
      throw RError("cannot coerce type '" + std::string(type_name(v->type)) + "' to logical");
  }
}

bool condition(const RRef& v) {
  auto l = as_logical(v);
  if (l.empty()) throw RError("argument is of length zero");
  return l[0];
}

double scalar_num(const RRef& v, const char* what) {
  auto n = as_numeric(v);
  if (n.empty()) throw RError(std::string(what) + ": argument of length zero");
  return n[0];
}

std::string scalar_chr(const RRef& v, const char* what) {
  auto c = as_character(v);
  if (c.empty()) throw RError(std::string(what) + ": argument of length zero");
  return c[0];
}

std::string deparse(const RRef& v) {
  switch (v->type) {
    case RValue::Type::kNull:
      return "NULL";
    case RValue::Type::kLogical:
    case RValue::Type::kNumeric: {
      auto parts = as_character(v);
      if (parts.size() == 1) return parts[0];
      std::string out = "c(";
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += ", ";
        out += parts[i];
      }
      return out + ")";
    }
    case RValue::Type::kCharacter: {
      if (v->chr.size() == 1) return "\"" + v->chr[0] + "\"";
      std::string out = "c(";
      for (size_t i = 0; i < v->chr.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + v->chr[i] + "\"";
      }
      return out + ")";
    }
    case RValue::Type::kList: {
      std::string out = "list(";
      for (size_t i = 0; i < v->list.size(); ++i) {
        if (i > 0) out += ", ";
        if (i < v->names.size() && !v->names[i].empty()) out += v->names[i] + " = ";
        out += deparse(v->list[i]);
      }
      return out + ")";
    }
    case RValue::Type::kClosure:
      return "<closure>";
    case RValue::Type::kBuiltin:
      return "<builtin: " + v->builtin->name + ">";
  }
  return "?";
}

}  // namespace ilps::r
