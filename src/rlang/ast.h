// MiniR abstract syntax. R is expression-oriented: blocks, if, for, and
// function definitions are all expressions.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rlang/value.h"

namespace ilps::r {

struct RExpr {
  enum class Kind {
    kNum,       // num
    kStr,       // str
    kLogical,   // num != 0
    kNull,
    kName,      // str
    kCall,      // a(items...), arg_names aligned with items ("" = positional)
    kIndex,     // a[b]
    kIndex2,    // a[[b]]
    kDollar,    // a$str
    kBinary,    // str (op), a, b
    kUnary,     // str (op), a
    kAssign,    // a <- b; str is "<-" or "<<-"
    kIf,        // a (cond), b (then), c (else, may be null)
    kFor,       // str (var), a (iterable), b (body)
    kWhile,     // a (cond), b (body)
    kRepeat,    // a (body)
    kBlock,     // items
    kFunction,  // params, a (body)
    kBreak,
    kNext,
  };

  Kind kind;
  int line = 0;
  double num = 0;
  std::string str;
  std::shared_ptr<RExpr> a, b, c;
  std::vector<std::shared_ptr<RExpr>> items;
  std::vector<std::string> arg_names;
  std::vector<std::pair<std::string, std::shared_ptr<RExpr>>> params;  // default may be null
};

using RExprP = std::shared_ptr<RExpr>;

// Parses a program: a sequence of expressions separated by newlines or
// semicolons. Throws RError on syntax errors.
std::vector<RExprP> parse_r(std::string_view source);

}  // namespace ilps::r
