// MiniR base library: the R builtins the paper's use cases need —
// vector construction, statistics, apply-family, string handling, output,
// and deterministic random number generation.
#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "rlang/interp.h"

namespace ilps::r {

namespace {

// Argument accessor for builtins: positional plus named lookup.
class Args {
 public:
  explicit Args(std::vector<NamedArg>& args) : args_(args) {}

  size_t positional_count() const {
    size_t n = 0;
    for (const auto& a : args_) {
      if (!a.name) ++n;
    }
    return n;
  }
  size_t total() const { return args_.size(); }

  // The i-th positional argument.
  RRef pos(size_t i) const {
    size_t n = 0;
    for (const auto& a : args_) {
      if (!a.name) {
        if (n == i) return a.value;
        ++n;
      }
    }
    throw RError("missing required argument " + std::to_string(i + 1));
  }

  RRef named(const std::string& name, RRef fallback = nullptr) const {
    for (const auto& a : args_) {
      if (a.name && *a.name == name) return a.value;
    }
    return fallback;
  }

  const std::vector<NamedArg>& raw() const { return args_; }

 private:
  std::vector<NamedArg>& args_;
};

RRef make_fn(EnvRef env, const std::string& name,
             std::function<RRef(std::vector<NamedArg>&)> fn) {
  auto b = std::make_shared<BuiltinFn>();
  b->name = name;
  b->fn = std::move(fn);
  auto v = std::make_shared<RValue>();
  v->type = RValue::Type::kBuiltin;
  v->builtin = std::move(b);
  env->vars[name] = v;
  return v;
}

// Gathers every argument's numeric contents (c()-style flattening).
std::vector<double> gather_numeric(const std::vector<NamedArg>& args) {
  std::vector<double> out;
  for (const auto& a : args) {
    auto v = as_numeric(a.value);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

double stat_mean(const std::vector<double>& v) {
  if (v.empty()) throw RError("mean: empty vector");
  double s = 0;
  for (double d : v) s += d;
  return s / static_cast<double>(v.size());
}

double stat_var(const std::vector<double>& v) {
  if (v.size() < 2) throw RError("var: need at least two values");
  double m = stat_mean(v);
  double s = 0;
  for (double d : v) s += (d - m) * (d - m);
  return s / static_cast<double>(v.size() - 1);
}

}  // namespace

void Interpreter::install_base() {
  EnvRef env = global_;
  auto& interp = *this;

  // ---- construction ----

  make_fn(env, "c", [](std::vector<NamedArg>& raw) -> RRef {
    // Determine the common type: character > numeric > logical; any list
    // makes the result a list.
    bool any_list = false;
    bool any_chr = false;
    bool any_num = false;
    for (const auto& a : raw) {
      switch (a.value->type) {
        case RValue::Type::kList: any_list = true; break;
        case RValue::Type::kCharacter: any_chr = true; break;
        case RValue::Type::kNumeric: any_num = true; break;
        default: break;
      }
    }
    if (any_list) {
      std::vector<RRef> out;
      std::vector<std::string> names;
      for (const auto& a : raw) {
        if (a.value->type == RValue::Type::kList) {
          out.insert(out.end(), a.value->list.begin(), a.value->list.end());
          names.insert(names.end(), a.value->names.begin(), a.value->names.end());
          names.resize(out.size());
        } else {
          out.push_back(a.value);
          names.resize(out.size());
          if (a.name) names.back() = *a.name;
        }
      }
      return r_list(std::move(out), std::move(names));
    }
    if (any_chr) {
      std::vector<std::string> out;
      for (const auto& a : raw) {
        auto v = as_character(a.value);
        out.insert(out.end(), v.begin(), v.end());
      }
      return r_character(std::move(out));
    }
    if (any_num) return r_numeric(gather_numeric(raw));
    std::vector<bool> out;
    for (const auto& a : raw) {
      auto v = as_logical(a.value);
      out.insert(out.end(), v.begin(), v.end());
    }
    return r_logical(std::move(out));
  });

  make_fn(env, "list", [](std::vector<NamedArg>& raw) {
    std::vector<RRef> items;
    std::vector<std::string> names;
    for (const auto& a : raw) {
      items.push_back(a.value);
      names.push_back(a.name.value_or(""));
    }
    return r_list(std::move(items), std::move(names));
  });

  make_fn(env, "seq", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    double from = 1;
    double to = 1;
    RRef by = a.named("by");
    RRef length_out = a.named("length.out");
    if (a.positional_count() >= 1) from = scalar_num(a.pos(0), "seq");
    if (a.positional_count() >= 2) to = scalar_num(a.pos(1), "seq");
    if (RRef f = a.named("from")) from = scalar_num(f, "seq");
    if (RRef t = a.named("to")) to = scalar_num(t, "seq");
    std::vector<double> out;
    if (length_out) {
      int64_t n = static_cast<int64_t>(scalar_num(length_out, "seq"));
      if (n <= 0) return r_numeric({});
      if (n == 1) return r_numeric({from});
      double step = (to - from) / static_cast<double>(n - 1);
      for (int64_t i = 0; i < n; ++i) out.push_back(from + step * static_cast<double>(i));
      return r_numeric(std::move(out));
    }
    double step = by ? scalar_num(by, "seq") : (to >= from ? 1.0 : -1.0);
    if (step == 0) throw RError("seq: by must be nonzero");
    if (a.positional_count() >= 3) step = scalar_num(a.pos(2), "seq");
    if (step > 0) {
      for (double v = from; v <= to + 1e-9; v += step) out.push_back(v);
    } else {
      for (double v = from; v >= to - 1e-9; v += step) out.push_back(v);
    }
    return r_numeric(std::move(out));
  });

  make_fn(env, "seq_len", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    int64_t n = static_cast<int64_t>(scalar_num(a.pos(0), "seq_len"));
    std::vector<double> out;
    for (int64_t i = 1; i <= n; ++i) out.push_back(static_cast<double>(i));
    return r_numeric(std::move(out));
  });

  make_fn(env, "rep", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    RRef x = a.pos(0);
    RRef times = a.named("times");
    if (!times && a.positional_count() >= 2) times = a.pos(1);
    int64_t n = times ? static_cast<int64_t>(scalar_num(times, "rep")) : 1;
    if (x->type == RValue::Type::kCharacter) {
      std::vector<std::string> out;
      for (int64_t i = 0; i < n; ++i) out.insert(out.end(), x->chr.begin(), x->chr.end());
      return r_character(std::move(out));
    }
    auto vals = as_numeric(x);
    std::vector<double> out;
    for (int64_t i = 0; i < n; ++i) out.insert(out.end(), vals.begin(), vals.end());
    return r_numeric(std::move(out));
  });

  make_fn(env, "numeric", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    int64_t n = raw.empty() ? 0 : static_cast<int64_t>(scalar_num(a.pos(0), "numeric"));
    return r_numeric(std::vector<double>(static_cast<size_t>(n), 0.0));
  });

  make_fn(env, "character", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    int64_t n = raw.empty() ? 0 : static_cast<int64_t>(scalar_num(a.pos(0), "character"));
    return r_character(std::vector<std::string>(static_cast<size_t>(n)));
  });

  // ---- inspection ----

  make_fn(env, "length", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar(static_cast<double>(a.pos(0)->length()));
  });

  make_fn(env, "names", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    RRef x = a.pos(0);
    if (x->names.empty()) return r_null();
    return r_character(x->names);
  });

  make_fn(env, "is.numeric", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar_logical(a.pos(0)->type == RValue::Type::kNumeric);
  });
  make_fn(env, "is.character", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar_logical(a.pos(0)->type == RValue::Type::kCharacter);
  });
  make_fn(env, "is.logical", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar_logical(a.pos(0)->type == RValue::Type::kLogical);
  });
  make_fn(env, "is.list", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar_logical(a.pos(0)->type == RValue::Type::kList);
  });
  make_fn(env, "is.null", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar_logical(a.pos(0)->type == RValue::Type::kNull);
  });
  make_fn(env, "is.function", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto t = a.pos(0)->type;
    return r_scalar_logical(t == RValue::Type::kClosure || t == RValue::Type::kBuiltin);
  });

  // ---- coercion ----

  make_fn(env, "as.numeric", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_numeric(as_numeric(a.pos(0)));
  });
  make_fn(env, "as.integer", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto v = as_numeric(a.pos(0));
    for (auto& d : v) d = std::trunc(d);
    return r_numeric(std::move(v));
  });
  make_fn(env, "as.character", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_character(as_character(a.pos(0)));
  });
  make_fn(env, "as.logical", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_logical(as_logical(a.pos(0)));
  });

  // ---- math (vectorized) ----

  auto vectorized = [&](const char* name, double (*f)(double)) {
    make_fn(env, name, [f](std::vector<NamedArg>& raw) {
      Args a(raw);
      auto v = as_numeric(a.pos(0));
      for (auto& d : v) d = f(d);
      return r_numeric(std::move(v));
    });
  };
  vectorized("sqrt", std::sqrt);
  vectorized("exp", std::exp);
  vectorized("log", std::log);
  vectorized("log2", std::log2);
  vectorized("log10", std::log10);
  vectorized("sin", std::sin);
  vectorized("cos", std::cos);
  vectorized("tan", std::tan);
  vectorized("abs", std::fabs);
  vectorized("floor", std::floor);
  vectorized("ceiling", std::ceil);

  make_fn(env, "round", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto v = as_numeric(a.pos(0));
    int64_t digits = 0;
    if (a.positional_count() >= 2) digits = static_cast<int64_t>(scalar_num(a.pos(1), "round"));
    if (RRef d = a.named("digits")) digits = static_cast<int64_t>(scalar_num(d, "round"));
    double scale = std::pow(10.0, static_cast<double>(digits));
    for (auto& d : v) d = std::round(d * scale) / scale;
    return r_numeric(std::move(v));
  });

  // ---- reductions and statistics ----

  make_fn(env, "sum", [](std::vector<NamedArg>& raw) {
    double s = 0;
    for (double d : gather_numeric(raw)) s += d;
    return r_scalar(s);
  });
  make_fn(env, "prod", [](std::vector<NamedArg>& raw) {
    double s = 1;
    for (double d : gather_numeric(raw)) s *= d;
    return r_scalar(s);
  });
  make_fn(env, "mean", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar(stat_mean(as_numeric(a.pos(0))));
  });
  make_fn(env, "var", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar(stat_var(as_numeric(a.pos(0))));
  });
  make_fn(env, "sd", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar(std::sqrt(stat_var(as_numeric(a.pos(0)))));
  });
  make_fn(env, "min", [](std::vector<NamedArg>& raw) {
    auto v = gather_numeric(raw);
    if (v.empty()) throw RError("min: no arguments");
    return r_scalar(*std::min_element(v.begin(), v.end()));
  });
  make_fn(env, "max", [](std::vector<NamedArg>& raw) {
    auto v = gather_numeric(raw);
    if (v.empty()) throw RError("max: no arguments");
    return r_scalar(*std::max_element(v.begin(), v.end()));
  });
  make_fn(env, "range", [](std::vector<NamedArg>& raw) {
    auto v = gather_numeric(raw);
    if (v.empty()) throw RError("range: no arguments");
    auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return r_numeric({*lo, *hi});
  });
  make_fn(env, "cumsum", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto v = as_numeric(a.pos(0));
    double s = 0;
    for (auto& d : v) {
      s += d;
      d = s;
    }
    return r_numeric(std::move(v));
  });
  make_fn(env, "any", [](std::vector<NamedArg>& raw) {
    for (const auto& a : raw) {
      for (bool b : as_logical(a.value)) {
        if (b) return r_scalar_logical(true);
      }
    }
    return r_scalar_logical(false);
  });
  make_fn(env, "all", [](std::vector<NamedArg>& raw) {
    for (const auto& a : raw) {
      for (bool b : as_logical(a.value)) {
        if (!b) return r_scalar_logical(false);
      }
    }
    return r_scalar_logical(true);
  });
  make_fn(env, "which", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto v = as_logical(a.pos(0));
    std::vector<double> out;
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i]) out.push_back(static_cast<double>(i + 1));
    }
    return r_numeric(std::move(out));
  });
  make_fn(env, "which.max", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto v = as_numeric(a.pos(0));
    if (v.empty()) throw RError("which.max: empty vector");
    return r_scalar(static_cast<double>(
        std::max_element(v.begin(), v.end()) - v.begin() + 1));
  });
  make_fn(env, "sort", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    bool decreasing = false;
    if (RRef d = a.named("decreasing")) decreasing = condition(d);
    RRef x = a.pos(0);
    if (x->type == RValue::Type::kCharacter) {
      auto v = x->chr;
      std::sort(v.begin(), v.end());
      if (decreasing) std::reverse(v.begin(), v.end());
      return r_character(std::move(v));
    }
    auto v = as_numeric(x);
    std::sort(v.begin(), v.end());
    if (decreasing) std::reverse(v.begin(), v.end());
    return r_numeric(std::move(v));
  });
  make_fn(env, "rev", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    RRef x = a.pos(0);
    if (x->type == RValue::Type::kCharacter) {
      auto v = x->chr;
      std::reverse(v.begin(), v.end());
      return r_character(std::move(v));
    }
    auto v = as_numeric(x);
    std::reverse(v.begin(), v.end());
    return r_numeric(std::move(v));
  });
  make_fn(env, "head", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto v = as_numeric(a.pos(0));
    size_t n = 6;
    if (a.positional_count() >= 2) n = static_cast<size_t>(scalar_num(a.pos(1), "head"));
    if (n < v.size()) v.resize(n);
    return r_numeric(std::move(v));
  });
  make_fn(env, "tail", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto v = as_numeric(a.pos(0));
    size_t n = 6;
    if (a.positional_count() >= 2) n = static_cast<size_t>(scalar_num(a.pos(1), "tail"));
    if (n < v.size()) v.erase(v.begin(), v.end() - static_cast<ptrdiff_t>(n));
    return r_numeric(std::move(v));
  });
  make_fn(env, "ifelse", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto cond = as_logical(a.pos(0));
    auto yes = as_numeric(a.pos(1));
    auto no = as_numeric(a.pos(2));
    std::vector<double> out;
    for (size_t i = 0; i < cond.size(); ++i) {
      out.push_back(cond[i] ? yes[i % yes.size()] : no[i % no.size()]);
    }
    return r_numeric(std::move(out));
  });
  make_fn(env, "identical", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar_logical(deparse(a.pos(0)) == deparse(a.pos(1)));
  });

  // ---- strings ----

  make_fn(env, "nchar", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    std::vector<double> out;
    for (const auto& s : as_character(a.pos(0))) out.push_back(static_cast<double>(s.size()));
    return r_numeric(std::move(out));
  });
  make_fn(env, "toupper", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto v = as_character(a.pos(0));
    for (auto& s : v) s = str::to_upper(s);
    return r_character(std::move(v));
  });
  make_fn(env, "tolower", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto v = as_character(a.pos(0));
    for (auto& s : v) s = str::to_lower(s);
    return r_character(std::move(v));
  });
  make_fn(env, "substr", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto v = as_character(a.pos(0));
    int64_t start = static_cast<int64_t>(scalar_num(a.pos(1), "substr"));
    int64_t stop = static_cast<int64_t>(scalar_num(a.pos(2), "substr"));
    for (auto& s : v) {
      int64_t b = std::max<int64_t>(start, 1);
      int64_t e = std::min<int64_t>(stop, static_cast<int64_t>(s.size()));
      s = b > e ? "" : s.substr(static_cast<size_t>(b - 1), static_cast<size_t>(e - b + 1));
    }
    return r_character(std::move(v));
  });

  auto paste_impl = [](std::vector<NamedArg>& raw, const std::string& default_sep) {
    Args a(raw);
    std::string sep = default_sep;
    if (RRef s = a.named("sep")) sep = scalar_chr(s, "paste");
    std::optional<std::string> collapse;
    if (RRef c = a.named("collapse")) {
      if (c->type != RValue::Type::kNull) collapse = scalar_chr(c, "paste");
    }
    // Element-wise paste with recycling over positional args.
    std::vector<std::vector<std::string>> cols;
    size_t n = 0;
    for (const auto& arg : raw) {
      if (arg.name) continue;
      cols.push_back(as_character(arg.value));
      n = std::max(n, cols.back().size());
    }
    std::vector<std::string> rows;
    for (size_t i = 0; i < n; ++i) {
      std::string row;
      for (size_t c = 0; c < cols.size(); ++c) {
        if (cols[c].empty()) continue;
        if (!row.empty() || c > 0) {
          if (c > 0) row += sep;
        }
        row += cols[c][i % cols[c].size()];
      }
      rows.push_back(std::move(row));
    }
    if (collapse) return r_scalar_str(str::join(rows, *collapse));
    return r_character(std::move(rows));
  };
  make_fn(env, "paste",
          [paste_impl](std::vector<NamedArg>& raw) { return paste_impl(raw, " "); });
  make_fn(env, "paste0",
          [paste_impl](std::vector<NamedArg>& raw) { return paste_impl(raw, ""); });

  make_fn(env, "sprintf", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    std::string fmt = scalar_chr(a.pos(0), "sprintf");
    std::vector<std::string> args;
    for (size_t i = 1; i < a.positional_count(); ++i) {
      args.push_back(as_character(a.pos(i)).at(0));
    }
    return r_scalar_str(str::printf_format(fmt, args));
  });
  make_fn(env, "strsplit", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    auto strings = as_character(a.pos(0));
    std::string sep = scalar_chr(a.pos(1), "strsplit");
    std::vector<RRef> out;
    for (const auto& s : strings) {
      std::vector<std::string> parts;
      if (sep.empty()) {
        for (char ch : s) parts.emplace_back(1, ch);
      } else {
        size_t pos = 0;
        while (true) {
          size_t hit = s.find(sep, pos);
          if (hit == std::string::npos) {
            parts.push_back(s.substr(pos));
            break;
          }
          parts.push_back(s.substr(pos, hit - pos));
          pos = hit + sep.size();
        }
      }
      out.push_back(r_character(std::move(parts)));
    }
    return r_list(std::move(out));
  });

  // ---- apply family ----

  make_fn(env, "sapply", [&interp](std::vector<NamedArg>& raw) -> RRef {
    Args a(raw);
    RRef x = a.pos(0);
    RRef fn = a.pos(1);
    std::vector<RRef> results;
    size_t n = x->length();
    for (size_t i = 0; i < n; ++i) {
      std::vector<NamedArg> call_args;
      NamedArg arg;
      switch (x->type) {
        case RValue::Type::kNumeric: arg.value = r_scalar(x->num[i]); break;
        case RValue::Type::kCharacter: arg.value = r_scalar_str(x->chr[i]); break;
        case RValue::Type::kLogical: arg.value = r_scalar_logical(x->lgl[i]); break;
        case RValue::Type::kList: arg.value = x->list[i]; break;
        default: throw RError("sapply: cannot iterate this type");
      }
      call_args.push_back(std::move(arg));
      results.push_back(call_r_function(interp, fn, call_args));
    }
    // Simplify to a vector if every result is a length-1 numeric/logical/
    // character; otherwise return a list.
    bool all_num = true;
    bool all_chr = true;
    for (const auto& res : results) {
      if (!(res->type == RValue::Type::kNumeric && res->num.size() == 1) &&
          !(res->type == RValue::Type::kLogical && res->lgl.size() == 1)) {
        all_num = false;
      }
      if (!(res->type == RValue::Type::kCharacter && res->chr.size() == 1)) all_chr = false;
    }
    if (all_num && !results.empty()) {
      std::vector<double> out;
      for (const auto& res : results) out.push_back(as_numeric(res)[0]);
      return r_numeric(std::move(out));
    }
    if (all_chr && !results.empty()) {
      std::vector<std::string> out;
      for (const auto& res : results) out.push_back(res->chr[0]);
      return r_character(std::move(out));
    }
    return r_list(std::move(results));
  });

  make_fn(env, "lapply", [&interp](std::vector<NamedArg>& raw) {
    Args a(raw);
    RRef x = a.pos(0);
    RRef fn = a.pos(1);
    std::vector<RRef> results;
    size_t n = x->length();
    for (size_t i = 0; i < n; ++i) {
      std::vector<NamedArg> call_args;
      NamedArg arg;
      switch (x->type) {
        case RValue::Type::kNumeric: arg.value = r_scalar(x->num[i]); break;
        case RValue::Type::kCharacter: arg.value = r_scalar_str(x->chr[i]); break;
        case RValue::Type::kLogical: arg.value = r_scalar_logical(x->lgl[i]); break;
        case RValue::Type::kList: arg.value = x->list[i]; break;
        default: throw RError("lapply: cannot iterate this type");
      }
      call_args.push_back(std::move(arg));
      results.push_back(call_r_function(interp, fn, call_args));
    }
    return r_list(std::move(results), x->names);
  });

  make_fn(env, "Map", [&interp](std::vector<NamedArg>& raw) {
    Args a(raw);
    RRef fn = a.pos(0);
    std::vector<RRef> lists;
    size_t n = SIZE_MAX;
    for (size_t i = 1; i < a.positional_count(); ++i) {
      lists.push_back(a.pos(i));
      n = std::min(n, lists.back()->length());
    }
    if (lists.empty()) throw RError("Map: needs at least one vector");
    std::vector<RRef> out;
    for (size_t i = 0; i < n; ++i) {
      std::vector<NamedArg> call_args;
      for (const auto& v : lists) {
        NamedArg arg;
        switch (v->type) {
          case RValue::Type::kNumeric: arg.value = r_scalar(v->num[i]); break;
          case RValue::Type::kCharacter: arg.value = r_scalar_str(v->chr[i]); break;
          case RValue::Type::kLogical: arg.value = r_scalar_logical(v->lgl[i]); break;
          case RValue::Type::kList: arg.value = v->list[i]; break;
          default: throw RError("Map: cannot iterate this type");
        }
        call_args.push_back(std::move(arg));
      }
      out.push_back(call_r_function(interp, fn, call_args));
    }
    return r_list(std::move(out));
  });

  make_fn(env, "Reduce", [&interp](std::vector<NamedArg>& raw) {
    Args a(raw);
    RRef fn = a.pos(0);
    RRef x = a.pos(1);
    size_t n = x->length();
    RRef acc;
    size_t start = 0;
    if (a.positional_count() >= 3) {
      acc = a.pos(2);
    } else {
      if (n == 0) throw RError("Reduce: empty vector and no initial value");
      std::vector<NamedArg> noargs;
      acc = r_scalar(as_numeric(x)[0]);
      start = 1;
    }
    for (size_t i = start; i < n; ++i) {
      std::vector<NamedArg> call_args(2);
      call_args[0].value = acc;
      switch (x->type) {
        case RValue::Type::kNumeric: call_args[1].value = r_scalar(x->num[i]); break;
        case RValue::Type::kCharacter: call_args[1].value = r_scalar_str(x->chr[i]); break;
        case RValue::Type::kLogical: call_args[1].value = r_scalar_logical(x->lgl[i]); break;
        case RValue::Type::kList: call_args[1].value = x->list[i]; break;
        default: throw RError("Reduce: cannot iterate this type");
      }
      acc = call_r_function(interp, fn, call_args);
    }
    return acc;
  });

  make_fn(env, "do.call", [&interp](std::vector<NamedArg>& raw) {
    Args a(raw);
    RRef fn = a.pos(0);
    RRef args_list = a.pos(1);
    if (args_list->type != RValue::Type::kList) {
      throw RError("do.call: second argument must be a list");
    }
    std::vector<NamedArg> call_args;
    for (size_t i = 0; i < args_list->list.size(); ++i) {
      NamedArg arg;
      if (i < args_list->names.size() && !args_list->names[i].empty()) {
        arg.name = args_list->names[i];
      }
      arg.value = args_list->list[i];
      call_args.push_back(std::move(arg));
    }
    return call_r_function(interp, fn, call_args);
  });

  make_fn(env, "append", [](std::vector<NamedArg>& raw) -> RRef {
    Args a(raw);
    RRef x = a.pos(0);
    RRef values = a.pos(1);
    if (x->type == RValue::Type::kCharacter || values->type == RValue::Type::kCharacter) {
      auto out = as_character(x);
      auto add = as_character(values);
      out.insert(out.end(), add.begin(), add.end());
      return r_character(std::move(out));
    }
    auto out = as_numeric(x);
    auto add = as_numeric(values);
    out.insert(out.end(), add.begin(), add.end());
    return r_numeric(std::move(out));
  });

  make_fn(env, "unlist", [](std::vector<NamedArg>& raw) -> RRef {
    Args a(raw);
    RRef x = a.pos(0);
    if (x->type != RValue::Type::kList) return x;
    bool any_chr = false;
    for (const auto& item : x->list) {
      if (item->type == RValue::Type::kCharacter) any_chr = true;
    }
    if (any_chr) {
      std::vector<std::string> out;
      for (const auto& item : x->list) {
        auto v = as_character(item);
        out.insert(out.end(), v.begin(), v.end());
      }
      return r_character(std::move(out));
    }
    std::vector<double> out;
    for (const auto& item : x->list) {
      auto v = as_numeric(item);
      out.insert(out.end(), v.begin(), v.end());
    }
    return r_numeric(std::move(out));
  });

  // ---- control / output ----

  make_fn(env, "return", [](std::vector<NamedArg>& raw) -> RRef {
    Args a(raw);
    throw_r_return(raw.empty() ? r_null() : a.pos(0));
  });

  make_fn(env, "stop", [](std::vector<NamedArg>& raw) -> RRef {
    Args a(raw);
    std::string msg;
    for (size_t i = 0; i < a.positional_count(); ++i) {
      for (const auto& part : as_character(a.pos(i))) msg += part;
    }
    throw RError(msg.empty() ? "error" : msg);
  });

  make_fn(env, "cat", [this](std::vector<NamedArg>& raw) {
    Args a(raw);
    std::string sep = " ";
    if (RRef s = a.named("sep")) sep = scalar_chr(s, "cat");
    std::string out;
    bool first = true;
    for (const auto& arg : raw) {
      if (arg.name) continue;
      for (const auto& piece : as_character(arg.value)) {
        if (!first) out += sep;
        first = false;
        out += piece;
      }
    }
    out_(out);
    return r_null();
  });

  make_fn(env, "print", [this](std::vector<NamedArg>& raw) {
    Args a(raw);
    RRef x = a.pos(0);
    if (x->type == RValue::Type::kList || x->type == RValue::Type::kNull) {
      out_(deparse(x) + "\n");
    } else {
      out_("[1] " + str::join(as_character(x), " ") + "\n");
    }
    return x;
  });

  make_fn(env, "toString", [](std::vector<NamedArg>& raw) {
    Args a(raw);
    return r_scalar_str(str::join(as_character(a.pos(0)), ", "));
  });

  // ---- random numbers (deterministic per interpreter) ----

  make_fn(env, "set.seed", [&interp](std::vector<NamedArg>& raw) {
    Args a(raw);
    interp.rng() = Rng(static_cast<uint64_t>(scalar_num(a.pos(0), "set.seed")));
    return r_null();
  });
  make_fn(env, "runif", [&interp](std::vector<NamedArg>& raw) {
    Args a(raw);
    int64_t n = static_cast<int64_t>(scalar_num(a.pos(0), "runif"));
    double lo = 0;
    double hi = 1;
    if (a.positional_count() >= 2) lo = scalar_num(a.pos(1), "runif");
    if (a.positional_count() >= 3) hi = scalar_num(a.pos(2), "runif");
    if (RRef m = a.named("min")) lo = scalar_num(m, "runif");
    if (RRef m = a.named("max")) hi = scalar_num(m, "runif");
    std::vector<double> out;
    for (int64_t i = 0; i < n; ++i) out.push_back(lo + (hi - lo) * interp.rng().next_double());
    return r_numeric(std::move(out));
  });
  make_fn(env, "rnorm", [&interp](std::vector<NamedArg>& raw) {
    Args a(raw);
    int64_t n = static_cast<int64_t>(scalar_num(a.pos(0), "rnorm"));
    double mean = 0;
    double sdv = 1;
    if (a.positional_count() >= 2) mean = scalar_num(a.pos(1), "rnorm");
    if (a.positional_count() >= 3) sdv = scalar_num(a.pos(2), "rnorm");
    if (RRef m = a.named("mean")) mean = scalar_num(m, "rnorm");
    if (RRef s = a.named("sd")) sdv = scalar_num(s, "rnorm");
    std::vector<double> out;
    for (int64_t i = 0; i < n; ++i) {
      // Box-Muller.
      double u1 = interp.rng().next_double();
      double u2 = interp.rng().next_double();
      if (u1 <= 0) u1 = 1e-12;
      out.push_back(mean + sdv * std::sqrt(-2.0 * std::log(u1)) *
                               std::cos(2.0 * 3.14159265358979323846 * u2));
    }
    return r_numeric(std::move(out));
  });
}

}  // namespace ilps::r
