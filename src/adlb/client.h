// The client (engine/worker) side of ADLB: task Put/Get plus the typed
// data store operations Turbine is built on. Every call is a synchronous
// RPC to a server; Get blocks until work arrives or the servers detect
// global quiescence and shut the run down.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adlb/protocol.h"
#include "mpi/comm.h"

namespace ilps::adlb {

class Client {
 public:
  Client(mpi::Comm& comm, const Config& cfg);

  int rank() const { return comm_.rank(); }
  mpi::Comm& comm() { return comm_; }
  const Config& config() const { return cfg_; }

  // ---- Tasks ----

  void put(const WorkUnit& unit);

  // Blocks until a unit of `type` is assigned to this rank, or returns
  // nullopt when the run has terminated.
  std::optional<WorkUnit> get(int type);

  // Reports that evaluating `unit` failed on this rank. The server
  // requeues it (bounded by max_task_retries) or fails the run with a
  // typed error naming the task and rank.
  void task_failed(const WorkUnit& unit, const std::string& why);

  // ---- Data ----

  // Allocates a globally unique datum id without server communication
  // (the id space is partitioned by rank).
  int64_t unique();

  void create(int64_t id, DataType type);

  // Stores a value; by default this also closes the datum (single
  // assignment) and triggers subscriber notifications.
  void store(int64_t id, std::string_view value, bool close = true);

  // Retrieves the value of a closed datum. Throws DataError if the datum
  // is missing or unset.
  std::string retrieve(int64_t id);

  bool exists(int64_t id);
  DataType type_of(int64_t id);

  // Explicitly closes a datum (used for containers and void futures).
  void close(int64_t id);

  // Registers for a close notification, delivered later as a targeted
  // work unit of `notify_type` whose payload is the decimal id. Returns
  // true if the datum is already closed (no notification will follow).
  bool subscribe(int64_t id, int notify_type);

  // Reference counts. Read refs reaching zero delete the datum; write
  // refs reaching zero close it (container completion).
  void ref_incr(int64_t id, int delta);
  void write_incr(int64_t id, int delta);

  // ---- Containers ----

  void insert(int64_t container_id, std::string_view key, std::string_view value);
  std::optional<std::string> lookup(int64_t container_id, std::string_view key);
  std::vector<std::pair<std::string, std::string>> enumerate(int64_t container_id);

 private:
  // One synchronous exchange. Flushes buffered puts first, so the home
  // server sees them before this request (per-(source, tag) FIFO) and a
  // client blocked in an RPC never has unsent work — the termination
  // detector's invariant. The reply buffer lives in reply_ until the next
  // rpc() recycles it into the transport's freelist.
  ser::Reader rpc(int server, ser::Writer&& request);
  void flush_puts();
  // Returns prefetched units of the wrong type to the server (only
  // possible if a caller alternates Get types; the Turbine loops never
  // do).
  void flush_prefetch();

  int home_;

  mpi::Comm& comm_;
  Config cfg_;
  int64_t next_local_id_ = 1;

  // ---- fast-path batching state (unused under cfg_.ft) ----
  bool batching_ = false;        // puts may be buffered
  int pending_put_count_ = 0;
  ser::Writer pending_puts_;     // serialized units, shipped as kPutBatch
  std::deque<WorkUnit> prefetched_;  // surplus units from kGotWorkBatch
  std::vector<std::byte> reply_;     // last RPC's reply storage
};

}  // namespace ilps::adlb
