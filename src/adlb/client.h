// The client (engine/worker) side of ADLB: task Put/Get plus the typed
// data store operations Turbine is built on. Every call is a synchronous
// RPC to a server; Get blocks until work arrives or the servers detect
// global quiescence and shut the run down.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adlb/protocol.h"
#include "mpi/comm.h"

namespace ilps::adlb {

// Activity counters for the per-rank datum cache (published as the
// adlb.cache_* metrics). All zero when the cache is disabled.
struct DataCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // LRU drops to stay under the byte budget
  uint64_t invalidations = 0;  // entries dropped by piggybacked GC notices

  DataCacheStats& operator+=(const DataCacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    invalidations += o.invalidations;
    return *this;
  }
};

// Activity counters for the write-behind datum pipeline (published as the
// adlb.pipeline_* metrics). All zero when pipelining is off (window <= 1,
// or ft).
struct DataPipelineStats {
  uint64_t ops = 0;      // ack-only datum ops that were buffered
  uint64_t flushes = 0;  // kDataBatch messages shipped
  uint64_t stalls = 0;   // ships that had to drain an ack first (window full)

  DataPipelineStats& operator+=(const DataPipelineStats& o) {
    ops += o.ops;
    flushes += o.flushes;
    stalls += o.stalls;
    return *this;
  }
};

class Client {
 public:
  Client(mpi::Comm& comm, const Config& cfg);

  int rank() const { return comm_.rank(); }
  mpi::Comm& comm() { return comm_; }
  const Config& config() const { return cfg_; }

  // ---- Tasks ----

  void put(const WorkUnit& unit);

  // Blocks until a unit of `type` is assigned to this rank, or returns
  // nullopt when the run has terminated.
  std::optional<WorkUnit> get(int type);

  // Reports that evaluating `unit` failed on this rank. The server
  // requeues it (bounded by max_task_retries) or fails the run with a
  // typed error naming the task and rank.
  void task_failed(const WorkUnit& unit, const std::string& why);

  // ---- Data ----

  // Allocates a globally unique datum id without server communication
  // (the id space is partitioned by rank).
  int64_t unique();

  void create(int64_t id, DataType type);

  // Stores a value; by default this also closes the datum (single
  // assignment) and triggers subscriber notifications.
  void store(int64_t id, std::string_view value, bool close = true);

  // Retrieves the value of a closed datum. Throws DataError naming the
  // id (and, when a symbol hint is installed, the source variable) if the
  // datum is missing, GC'd, or unset.
  std::string retrieve(int64_t id);

  // Like retrieve, but returns a shared immutable view of the bytes. On
  // a cacheable reply the transport buffer itself becomes the backing
  // storage (zero copy); blobs flow to leaf tasks through this path.
  ser::SharedBytes retrieve_view(int64_t id);

  // Retrieves several closed datums in one RPC per owning server (cache
  // hits are served locally; under ft this degrades to per-id retrieves
  // to keep one message per operation). Values return in input order.
  std::vector<std::string> multi_retrieve(std::span<const int64_t> ids);

  bool exists(int64_t id);
  DataType type_of(int64_t id);

  // Explicitly closes a datum (used for containers and void futures).
  void close(int64_t id);

  // Registers for a close notification, delivered later as a targeted
  // work unit of `notify_type` whose payload is the decimal id. Returns
  // true if the datum is already closed (no notification will follow).
  bool subscribe(int64_t id, int notify_type);

  // Reference counts. Read refs reaching zero delete the datum; write
  // refs reaching zero close it (container completion).
  void ref_incr(int64_t id, int delta);
  void write_incr(int64_t id, int delta);

  // ---- Containers ----

  void insert(int64_t container_id, std::string_view key, std::string_view value);
  std::optional<std::string> lookup(int64_t container_id, std::string_view key);
  std::vector<std::pair<std::string, std::string>> enumerate(int64_t container_id);

  // ---- datum cache ----

  const DataCacheStats& cache_stats() const { return cache_stats_; }
  bool cache_enabled() const { return cache_enabled_; }
  size_t cache_bytes() const { return cache_bytes_; }

  const DataPipelineStats& pipeline_stats() const { return pipeline_stats_; }

  // Maps a datum id to a human-readable source description ("variable
  // \"x\" (line 3)") for DataError messages; empty string = no name.
  // Installed by turbine::Context from the compiler's symbol map.
  void set_symbol_hint(std::function<std::string(int64_t)> hint) {
    symbol_hint_ = std::move(hint);
  }

  // ---- serve runtime (src/serve) ----

  // Ambient request context, stamped onto every put and create issued
  // while a request is being evaluated on this rank (engine rule bodies,
  // worker leaf tasks). An all-zero context (the default) disables every
  // serve path.
  struct ServeCtx {
    int64_t req = 0;
    int owner = kAnyRank;  // engine rank owning the request's accounting
    int64_t prog = 0;      // datum id of the request's program text
  };
  void set_serve_ctx(const ServeCtx& ctx) { serve_ = ctx; }
  void clear_serve_ctx() { serve_ = {}; }
  const ServeCtx& serve_ctx() const { return serve_; }

  // Owner-engine accounting hooks. on_spawned(req) fires when a unit of
  // `req` is counted locally at put time (+1 before the unit leaves this
  // rank); on_self_notify(req, id, n) fires when a store/close/write_incr
  // ACK reports n close notifications queued back to this very rank — the
  // owner must treat them as outstanding until they arrive.
  void set_serve_hooks(std::function<void(int64_t)> on_spawned,
                       std::function<void(int64_t, int64_t, uint32_t)> on_self_notify) {
    on_spawned_ = std::move(on_spawned);
    on_self_notify_ = std::move(on_self_notify);
  }

  // Sweeps every datum created under `req` off all shards; returns the
  // merged (leftover unclosed, stuck with subscribers) diagnostic counts.
  std::pair<uint64_t, uint64_t> free_namespace(int64_t req);

  // Total live datums across all shards (serve memory-bound checks).
  uint64_t datum_count();

 private:
  enum class EntryKind : uint8_t { kScalar, kEnumeration };
  struct CacheEntry {
    EntryKind kind;
    uint64_t epoch = 0;
    ser::SharedBytes bytes;
    std::list<int64_t>::iterator lru;  // position in lru_ (front = hottest)
  };
  // One synchronous exchange. Flushes buffered puts first, so the home
  // server sees them before this request (per-(source, tag) FIFO) and a
  // client blocked in an RPC never has unsent work — the termination
  // detector's invariant. The reply buffer lives in reply_ until the next
  // rpc() recycles it into the transport's freelist.
  ser::Reader rpc(int server, ser::Writer&& request);
  void flush_puts();

  // ---- write-behind datum pipeline (Config::pipeline_window) ----
  // Ack-only datum ops are appended to a per-owning-server kDataBatch
  // buffer instead of doing a blocking round-trip each. Buffers ship
  // before any synchronous exchange leaves this client (flush_puts /
  // rpc), and every outstanding kAckBatch is drained before Get parks
  // this rank, so neither task causality nor the termination detector's
  // "parked clients have nothing in flight" invariant ever observes a
  // buffered op. Batched server errors surface as a DataError thrown at
  // the next synchronous boundary (rpc / flush_puts / get).
  bool pipeline_active() const { return pipeline_window_ > 1 && serve_.req == 0; }
  // Returns the batch buffer for `server`, opening a new kDataBatch frame
  // if needed; the caller appends one sub-op then calls pipeline_note_op.
  ser::Writer& pipeline_writer(int server);
  void pipeline_note_op(int server);
  void pipeline_ship(int server);       // send the buffered batch, windowed
  void pipeline_ship_all();
  void pipeline_drain_one(int server);  // consume one outstanding kAckBatch
  void pipeline_drain(int server);      // ... all of them for one server
  void pipeline_sync();                 // ship + drain everywhere, then
                                        // surface any deferred error
  void maybe_throw_deferred();

  // ---- cache internals ----
  // Drains the invalidation header every reply starts with (protocol.h).
  void apply_invalidations(ser::Reader& r);
  const CacheEntry* cache_lookup(int64_t id, EntryKind kind);
  void cache_insert(int64_t id, EntryKind kind, uint64_t epoch, ser::SharedBytes bytes);
  void cache_erase(int64_t id);
  [[noreturn]] void raise_data_error(int64_t id, std::string message);
  // Returns prefetched units of the wrong type to the server (only
  // possible if a caller alternates Get types; the Turbine loops never
  // do).
  void flush_prefetch();

  int home_;

  mpi::Comm& comm_;
  Config cfg_;
  int64_t next_local_id_ = 1;

  // ---- fast-path batching state (unused under cfg_.ft) ----
  bool batching_ = false;        // puts may be buffered
  int pending_put_count_ = 0;
  ser::Writer pending_puts_;     // serialized units, shipped as kPutBatch
  std::deque<WorkUnit> prefetched_;  // surplus units from kGotWorkBatch
  std::vector<std::byte> reply_;     // last RPC's reply storage

  // ---- datum pipeline state ----
  struct Pipe {
    ser::Writer buf;     // open kDataBatch frame (valid when count > 0)
    uint32_t count = 0;  // sub-ops buffered in buf
    int unacked = 0;     // shipped batches whose kAckBatch is still due
  };
  int pipeline_window_ = 1;               // effective window (1 = off)
  std::unordered_map<int, Pipe> pipes_;   // owning server rank -> state
  std::string deferred_error_;            // first batched failure, pending
  DataPipelineStats pipeline_stats_;

  // ---- datum cache state (empty when cache_enabled_ is false) ----
  bool cache_enabled_ = false;
  size_t cache_budget_ = 0;  // bytes
  size_t cache_bytes_ = 0;   // charged bytes currently resident
  std::unordered_map<int64_t, CacheEntry> cache_;
  std::list<int64_t> lru_;  // most recently used at the front
  DataCacheStats cache_stats_;
  std::function<std::string(int64_t)> symbol_hint_;

  // ---- serve state ----
  ServeCtx serve_;
  std::function<void(int64_t)> on_spawned_;
  std::function<void(int64_t, int64_t, uint32_t)> on_self_notify_;
};

}  // namespace ilps::adlb
