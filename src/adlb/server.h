// The ADLB server: owns work queues and the data store for its shard,
// matches work to parked Gets, rebalances untargeted work across servers,
// and participates in Safra's termination-detection ring.
//
// Concurrency model: the server is a single message loop; every client RPC
// is handled atomically (receive -> mutate -> reply), which is what lets
// termination detection count only server<->server traffic (see
// protocol.h).
//
// Load rebalancing ("stealing"): a server whose clients are parked with an
// empty queue broadcasts a Hungry notice for that work type. Peers holding
// surplus untargeted work respond with a batch (half their queue), and
// remember hungry peers so later Puts with no local taker are forwarded.
// This is a push-triggered variant of ADLB's random-victim stealing with
// the same observable behaviour: idle workers drain busy servers.
//
// Termination (Safra's algorithm over the server ring): each server keeps
// a count of server->server "basic" messages sent minus received and a
// color that blackens on receipt. Server 0, when locally quiet (all its
// clients parked in Get, queues empty), circulates a token that
// accumulates counts; a white round with zero total while quiet proves
// global quiescence, and every parked Get is released with a shutdown
// notice.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "adlb/protocol.h"
#include "ckpt/snapshot.h"
#include "common/rng.h"
#include "mpi/comm.h"

namespace ilps::adlb {

struct ServerStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t matches = 0;          // work units handed to clients
  uint64_t forwards = 0;         // targeted units relayed to another server
  uint64_t hungry_notices = 0;   // notices broadcast by this server
  uint64_t batches_sent = 0;     // rebalance batches shipped to peers
  uint64_t units_rebalanced = 0; // work units inside those batches
  uint64_t steal_batches = 0;      // multi-unit kForwardPut messages sent
  uint64_t steal_batch_units = 0;  // work units inside those messages
  uint64_t notifications = 0;    // close notifications produced
  uint64_t data_ops = 0;
  uint64_t tokens = 0;           // termination tokens handled
  uint64_t leftover_data = 0;    // unclosed data at shutdown (diagnostic)
  uint64_t stuck_datums = 0;     // unclosed data somebody subscribed to (deadlock evidence)

  // ---- fault tolerance ----
  uint64_t requeues = 0;          // units re-dispatched after a failure
  uint64_t task_failures = 0;     // kTaskFailed reports received
  uint64_t heartbeat_deaths = 0;  // clients declared dead by silence
  uint64_t checkpoints = 0;       // checkpoint files written
  uint64_t replay_skips = 0;      // units skipped as already completed
};

class Server {
 public:
  // `restore`, when given, preloads the data store, completed-task
  // fingerprints, and progress counters from a checkpoint snapshot
  // (restart-from-checkpoint; requires nservers == 1).
  Server(mpi::Comm& comm, const Config& cfg, const ckpt::Snapshot* restore = nullptr);

  // Runs the message loop until global termination. Returns normally
  // after releasing all parked clients.
  void serve();

  const ServerStats& stats() const { return stats_; }

 private:
  struct QueuedUnit {
    int priority;
    int64_t seq;  // FIFO among equal priorities
    WorkUnit unit;
  };

  struct Datum {
    DataType type = DataType::kVoid;
    bool closed = false;
    bool has_value = false;
    std::string value;
    std::map<std::string, std::string> entries;
    int read_refs = 1;
    int write_refs = 1;
    std::vector<std::pair<int, int>> subscribers;  // (client rank, notify type)
  };

  // ---- message dispatch ----
  void dispatch(const mpi::Message& m);
  void handle_request(const mpi::Message& m);
  void handle_server(const mpi::Message& m);
  void after_dispatch();

  // ---- fault tolerance ----
  bool ft_active() const { return cfg_.ft; }
  bool is_engine_client(int client) const { return client < cfg_.nengines; }
  void handle_task_failed(int source, ser::Reader& r);
  void on_rank_dead_notice(int rank);   // kTagFault arrived for `rank`
  void on_client_dead(int client);      // bookkeeping + requeue + abort checks
  void check_heartbeats();
  void requeue_or_fail(WorkUnit unit, const std::string& why);
  bool flush_deferred();                // requeue backoff expiries; true if any
  void note_completion(int client);     // client's in-flight unit finished
  void maybe_checkpoint();
  ckpt::Snapshot snapshot() const;
  void restore(const ckpt::Snapshot& snap);

  // ---- tasks ----
  // Serve accounting: the first server to see an uncounted request-tagged
  // unit registers it with the request's owner engine by emitting a spawn
  // notice (+1) before accepting the unit. Eager-transport FIFO then
  // guarantees the +1 reaches the owner before the unit's eventual done
  // notice (-1), so the owner's active count can never touch zero while
  // work is still in flight.
  void maybe_spawn_notice(WorkUnit& unit);
  void handle_put(int source, const WorkUnit& unit);
  // Assigns a globally unique id to a not-yet-named unit.
  void name_unit(WorkUnit& unit);
  // Accepts a unit that belongs on this server (or forwards a targeted
  // unit to its home server).
  void accept_unit(WorkUnit unit);
  void deliver(int client, const WorkUnit& unit);
  // One kGotWorkBatch reply carrying several units (fast path, never
  // under ft).
  void deliver_batch(int client, std::vector<WorkUnit>& units);
  void handle_get(int source, int type);
  void evaluate_hunger();
  void send_batch(int peer, int type);
  // Cross-server forwards (targeted relays, hungry-peer handoffs) are
  // coalesced per destination into one kForwardPut and flushed at the end
  // of the dispatch cycle — unit-at-a-time forwarding is the per-message
  // cost the steal path used to pay. Under ft every forward goes out
  // immediately (one message per unit, as the FaultPlan's send-count
  // triggers assume).
  void forward_unit(int dest, const WorkUnit& unit);
  void flush_forwards();

  // ---- data ----
  void handle_data_op(int source, Op op, ser::Reader& r);
  // Performs one ack-only mutation (create/store/close/ref_incr/
  // write_incr/insert) without replying; returns the self-notification
  // count the single-op ACK would carry. Throws DataError on failure —
  // always after fully consuming the sub-op's arguments, so a kDataBatch
  // loop can catch and keep parsing.
  uint32_t apply_data_mutation(int source, Op op, ser::Reader& r);
  Datum& find_datum(int64_t id, const char* op);
  // Closes the datum and queues one notification unit per subscriber.
  // Returns how many of those notifications target `rpc_source` itself:
  // the count rides back on the ACK so an owner engine can account for
  // close notifications it has just mailed to itself (see maybe_spawn_notice).
  uint32_t do_close(int64_t id, Datum& datum, int rpc_source);
  // Appends one retrieve result (value, cacheable flag, GC epoch) and
  // records the handout when cacheable (shared by kRetrieve and
  // kMultiRetrieve).
  void write_retrieve_result(ser::Writer& w, int source, int64_t id, const Datum& d);
  uint64_t epoch_of(int64_t id) const;
  // Refcount GC: bump the id's epoch and queue an invalidation for every
  // client holding its bytes, then erase it from the store.
  void gc_datum(int64_t id);

  // ---- termination ----
  bool quiet() const;
  void initiate_token();
  void try_forward_token();
  void shutdown_all();
  void release_parked();

  // ---- replies ----
  // Every reply to a client starts with the invalidation header (see
  // protocol.h); this writer drains dest's pending invalidations into it.
  ser::Writer reply_writer(int dest);
  void reply_ack(int dest, uint32_t self_notifications = 0);
  void reply_error(int dest, const std::string& message);
  void send_basic(int dest, const ser::Writer& w);

  mpi::Comm& comm_;
  Config cfg_;
  int index_;        // server index in [0, nservers)
  int next_server_;  // ring successor (server rank)
  std::vector<int> my_clients_;
  std::vector<int> peer_servers_;

  // Work state.
  int64_t seq_ = 0;
  std::vector<std::map<std::pair<int, int64_t>, WorkUnit>> untargeted_;  // [type]{(-prio,seq)}
  std::map<std::pair<int, int>, std::deque<WorkUnit>> targeted_;        // (rank, type)
  std::vector<std::deque<int>> parked_;                                  // [type] client ranks
  std::unordered_map<int, int> parked_clients_;  // client -> type it waits for
  std::vector<bool> announced_;                 // [type] hungry notice outstanding
  std::vector<std::deque<int>> hungry_peers_;   // [type] server ranks
  struct ForwardBatch {
    ser::Writer w;    // open kForwardPut frame
    uint64_t n = 0;   // units appended
  };
  // Coalesced cross-server forwards, flushed by flush_forwards() before
  // any termination-token handling (quiet() counts a non-empty outbox as
  // pending work).
  std::map<int, ForwardBatch> forward_outbox_;

  // Data store shard.
  std::unordered_map<int64_t, Datum> store_;
  // Serve namespace index: ids created under a request (kCreate with
  // req != 0), swept wholesale by kFreeNamespace when the request
  // finishes. Ids already refcount-GC'd are skipped at sweep time.
  std::unordered_map<int64_t, std::vector<int64_t>> req_index_;

  // Client-cache coherence (inert when no client caches: handouts are
  // only recorded for replies marked cacheable, and under ft nothing is
  // ever GC'd so no invalidations arise).
  std::unordered_map<int64_t, uint64_t> gc_epochs_;     // id -> deletions seen
  std::unordered_map<int64_t, std::set<int>> handouts_; // id -> clients holding bytes
  std::unordered_map<int, std::vector<std::pair<int64_t, uint64_t>>>
      pending_inval_;  // client -> (id, epoch) to ride the next reply

  // Fault-tolerance state (all inert unless cfg_.ft).
  std::unordered_map<int, WorkUnit> inflight_;  // client -> delivered unit
  std::vector<std::pair<double, WorkUnit>> deferred_;  // (ready time, requeued unit)
  std::unordered_map<int, double> last_seen_;   // client -> last RPC time
  std::set<int> dead_clients_;                  // global (all servers learn)
  int64_t next_unit_id_ = 1;
  int64_t tasks_completed_ = 0;
  uint64_t ckpt_seq_ = 0;
  bool restored_ = false;  // this run started from a checkpoint
  // Completed-task fingerprint -> remaining skip budget (a multiset:
  // identical payloads may legitimately run more than once).
  std::unordered_map<uint64_t, int> done_fingerprints_;

  // Termination detection.
  int64_t basic_count_ = 0;  // sent - received server basic messages
  bool black_ = false;
  bool token_outstanding_ = false;  // only meaningful on server 0
  std::optional<std::pair<int64_t, bool>> pending_token_;  // (q, black)
  bool done_ = false;

  ServerStats stats_;
  Rng rng_;
};

}  // namespace ilps::adlb
