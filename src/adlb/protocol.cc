#include "adlb/protocol.h"

namespace ilps::adlb {

const char* data_type_name(DataType t) {
  switch (t) {
    case DataType::kVoid: return "void";
    case DataType::kInteger: return "integer";
    case DataType::kFloat: return "float";
    case DataType::kString: return "string";
    case DataType::kBlob: return "blob";
    case DataType::kContainer: return "container";
    case DataType::kFile: return "file";
  }
  return "?";
}

std::optional<DataType> data_type_from_name(std::string_view name) {
  if (name == "void") return DataType::kVoid;
  if (name == "integer") return DataType::kInteger;
  if (name == "float") return DataType::kFloat;
  if (name == "string") return DataType::kString;
  if (name == "blob") return DataType::kBlob;
  if (name == "container") return DataType::kContainer;
  if (name == "file") return DataType::kFile;
  return std::nullopt;
}

void write_work_unit(ser::Writer& w, const WorkUnit& unit) {
  w.put_i32(unit.type);
  w.put_i32(unit.priority);
  w.put_i32(unit.target);
  w.put_i32(unit.answer);
  w.put_str(unit.payload);
  w.put_i64(unit.id);
  w.put_i32(unit.attempts);
  w.put_i64(unit.req);
  w.put_i32(unit.owner);
  w.put_i64(unit.prog);
  w.put_u8(unit.flags);
}

WorkUnit read_work_unit(ser::Reader& r) {
  WorkUnit unit;
  unit.type = r.get_i32();
  unit.priority = r.get_i32();
  unit.target = r.get_i32();
  unit.answer = r.get_i32();
  unit.payload = r.get_str();
  unit.id = r.get_i64();
  unit.attempts = r.get_i32();
  unit.req = r.get_i64();
  unit.owner = r.get_i32();
  unit.prog = r.get_i64();
  unit.flags = r.get_u8();
  return unit;
}

}  // namespace ilps::adlb
