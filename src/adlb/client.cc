#include "adlb/client.h"

#include "common/error.h"
#include "obs/trace.h"

namespace ilps::adlb {

Client::Client(mpi::Comm& comm, const Config& cfg) : comm_(comm), cfg_(cfg) {
  if (is_server(comm.rank(), comm.size(), cfg)) {
    throw CommError("adlb::Client constructed on a server rank");
  }
  home_ = home_server(comm.rank(), comm.size(), cfg);
}

ser::Reader Client::rpc(int server, const ser::Writer& request, std::vector<std::byte>& storage) {
  comm_.send(server, kTagRequest, request);
  mpi::Message reply = comm_.recv(server, kTagResponse);
  storage = std::move(reply.data);
  ser::Reader r(storage);
  return r;
}

namespace {
[[noreturn]] void raise_error(ser::Reader& r) {
  throw DataError(r.get_str());
}

// Reads an Ack/Error reply.
void expect_ack(ser::Reader r) {
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kAck) return;
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply opcode");
}
}  // namespace

void Client::put(const WorkUnit& unit) {
  if (unit.type < 0 || unit.type >= cfg_.ntypes) {
    throw DataError("adlb: put with invalid work type " + std::to_string(unit.type));
  }
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kPut));
  write_work_unit(w, unit);
  std::vector<std::byte> storage;
  expect_ack(rpc(home_, w, storage));
}

std::optional<WorkUnit> Client::get(int type) {
  if (type < 0 || type >= cfg_.ntypes) {
    throw DataError("adlb: get with invalid work type " + std::to_string(type));
  }
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kGet));
  w.put_i32(type);
  std::vector<std::byte> storage;
  // The span covers the whole blocking exchange: its duration is this
  // client's idle-waiting-for-work time.
  obs::Span wait(obs::EventKind::kAdlbGetWait, type);
  ser::Reader r = rpc(home_, w, storage);
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kShutdownClient) return std::nullopt;
  if (op == Op::kGotWork) return read_work_unit(r);
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Get");
}

void Client::task_failed(const WorkUnit& unit, const std::string& why) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kTaskFailed));
  write_work_unit(w, unit);
  w.put_str("rank " + std::to_string(comm_.rank()) + ": " + why);
  std::vector<std::byte> storage;
  expect_ack(rpc(home_, w, storage));
}

int64_t Client::unique() {
  // 23 bits of rank, 40 bits of counter: unique without communication.
  return (static_cast<int64_t>(comm_.rank()) << 40) | next_local_id_++;
}

void Client::create(int64_t id, DataType type) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kCreate));
  w.put_i64(id);
  w.put_u8(static_cast<uint8_t>(type));
  std::vector<std::byte> storage;
  expect_ack(rpc(owner_server(id, comm_.size(), cfg_), w, storage));
}

void Client::store(int64_t id, std::string_view value, bool close) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kStore));
  w.put_i64(id);
  w.put_bool(close);
  w.put_str(value);
  std::vector<std::byte> storage;
  expect_ack(rpc(owner_server(id, comm_.size(), cfg_), w, storage));
}

std::string Client::retrieve(int64_t id) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kRetrieve));
  w.put_i64(id);
  std::vector<std::byte> storage;
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), w, storage);
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_str();
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Retrieve");
}

bool Client::exists(int64_t id) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kExists));
  w.put_i64(id);
  std::vector<std::byte> storage;
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), w, storage);
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_bool();
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Exists");
}

DataType Client::type_of(int64_t id) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kTypeOf));
  w.put_i64(id);
  std::vector<std::byte> storage;
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), w, storage);
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return static_cast<DataType>(r.get_u8());
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to TypeOf");
}

void Client::close(int64_t id) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kCloseDatum));
  w.put_i64(id);
  std::vector<std::byte> storage;
  expect_ack(rpc(owner_server(id, comm_.size(), cfg_), w, storage));
}

bool Client::subscribe(int64_t id, int notify_type) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kSubscribe));
  w.put_i64(id);
  w.put_i32(notify_type);
  std::vector<std::byte> storage;
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), w, storage);
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_bool();
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Subscribe");
}

void Client::ref_incr(int64_t id, int delta) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kRefIncr));
  w.put_i64(id);
  w.put_i32(delta);
  std::vector<std::byte> storage;
  expect_ack(rpc(owner_server(id, comm_.size(), cfg_), w, storage));
}

void Client::write_incr(int64_t id, int delta) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kWriteIncr));
  w.put_i64(id);
  w.put_i32(delta);
  std::vector<std::byte> storage;
  expect_ack(rpc(owner_server(id, comm_.size(), cfg_), w, storage));
}

void Client::insert(int64_t container_id, std::string_view key, std::string_view value) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kInsert));
  w.put_i64(container_id);
  w.put_str(key);
  w.put_str(value);
  std::vector<std::byte> storage;
  expect_ack(rpc(owner_server(container_id, comm_.size(), cfg_), w, storage));
}

std::optional<std::string> Client::lookup(int64_t container_id, std::string_view key) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kLookup));
  w.put_i64(container_id);
  w.put_str(key);
  std::vector<std::byte> storage;
  ser::Reader r = rpc(owner_server(container_id, comm_.size(), cfg_), w, storage);
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_str();
  if (op == Op::kNoValue) return std::nullopt;
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Lookup");
}

std::vector<std::pair<std::string, std::string>> Client::enumerate(int64_t container_id) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kEnumerate));
  w.put_i64(container_id);
  std::vector<std::byte> storage;
  ser::Reader r = rpc(owner_server(container_id, comm_.size(), cfg_), w, storage);
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kError) raise_error(r);
  if (op != Op::kValue) throw CommError("adlb: unexpected reply to Enumerate");
  uint64_t n = r.get_u64();
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string k = r.get_str();
    std::string v = r.get_str();
    out.emplace_back(std::move(k), std::move(v));
  }
  return out;
}

}  // namespace ilps::adlb
