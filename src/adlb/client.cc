#include "adlb/client.h"

#include <cstdlib>
#include <cstring>
#include <map>

#include "common/error.h"
#include "obs/trace.h"

namespace ilps::adlb {

namespace {
// Fixed per-entry charge on top of the value bytes (map node, LRU node,
// shared_ptr control block).
constexpr size_t kCacheEntryOverhead = 64;
}  // namespace

Client::Client(mpi::Comm& comm, const Config& cfg) : comm_(comm), cfg_(cfg) {
  if (is_server(comm.rank(), comm.size(), cfg)) {
    throw CommError("adlb::Client constructed on a server rank");
  }
  home_ = home_server(comm.rank(), comm.size(), cfg);
  // Batching changes how many transport messages an operation costs;
  // under ft that would shift the FaultPlan's send-count triggers and the
  // server's per-RPC liveness bookkeeping, so the fast paths switch off.
  batching_ = !cfg_.ft && cfg_.put_batch > 1;
  // Same reasoning for the write-behind datum pipeline: window 1 restores
  // one blocking round-trip per op.
  pipeline_window_ = (!cfg_.ft && cfg_.pipeline_window > 1) ? cfg_.pipeline_window : 1;
  // The datum cache elides whole retrieve RPCs, so it switches off under
  // ft for the same reason.
  long long mb = cfg_.data_cache_mb;
  if (mb < 0) {
    const char* env = std::getenv("ILPS_DATA_CACHE_MB");
    mb = (env != nullptr) ? std::atoll(env) : 64;
    if (mb < 0) mb = 0;
  }
  cache_enabled_ = !cfg_.ft && mb > 0;
  cache_budget_ = cache_enabled_ ? static_cast<size_t>(mb) << 20 : 0;
}

ser::Reader Client::rpc(int server, ser::Writer&& request) {
  flush_puts();
  comm_.send(server, kTagRequest, std::move(request));
  // Outstanding kAckBatch replies from this server were queued ahead of
  // the real reply (per-(source, tag) FIFO): drain them first.
  pipeline_drain(server);
  mpi::Message reply = comm_.recv(server, kTagResponse);
  // The previous reply has been fully consumed by now; its buffer feeds
  // the freelist the next writer() draws from.
  comm_.recycle(std::move(reply_));
  reply_ = std::move(reply.data);
  ser::Reader r(reply_);
  apply_invalidations(r);
  maybe_throw_deferred();
  return r;
}

// ---- write-behind datum pipeline ----

namespace {
// Sub-ops accumulated per owning server before a kDataBatch ships on its
// own (any synchronous exchange also ships partial batches).
constexpr uint32_t kDataBatchOps = 16;
}  // namespace

ser::Writer& Client::pipeline_writer(int server) {
  Pipe& p = pipes_[server];
  if (p.count == 0) {
    p.buf = comm_.writer();
    p.buf.put_u8(static_cast<uint8_t>(Op::kDataBatch));
    p.buf.put_u64(0);  // placeholder; count rides separately
  }
  return p.buf;
}

void Client::pipeline_note_op(int server) {
  ++pipeline_stats_.ops;
  if (++pipes_[server].count >= kDataBatchOps) pipeline_ship(server);
}

void Client::pipeline_ship(int server) {
  Pipe& p = pipes_[server];
  if (p.count == 0) return;
  // Bounded outstanding window: past it, receive the oldest ack before
  // shipping more (the flow control that keeps in-flight buffers below
  // the transport freelist cap and ft-style accounting sane).
  if (p.unacked >= pipeline_window_) {
    ++pipeline_stats_.stalls;
    pipeline_drain_one(server);
  }
  std::vector<std::byte> buf = p.buf.take();
  const uint64_t n = p.count;
  std::memcpy(buf.data() + 1, &n, sizeof n);
  p.count = 0;
  comm_.send(server, kTagRequest, std::move(buf));
  ++p.unacked;
  ++pipeline_stats_.flushes;
}

void Client::pipeline_ship_all() {
  for (auto& [server, p] : pipes_) {
    if (p.count > 0) pipeline_ship(server);
  }
}

void Client::pipeline_drain_one(int server) {
  mpi::Message reply = comm_.recv(server, kTagResponse);
  comm_.recycle(std::move(reply_));
  reply_ = std::move(reply.data);
  ser::Reader r(reply_);
  apply_invalidations(r);
  Op op = static_cast<Op>(r.get_u8());
  if (op != Op::kAckBatch) throw CommError("adlb: expected AckBatch reply");
  if (!r.get_bool()) {
    std::string err = r.get_str();
    if (deferred_error_.empty()) deferred_error_ = std::move(err);
  }
  --pipes_[server].unacked;
}

void Client::pipeline_drain(int server) {
  auto it = pipes_.find(server);
  if (it == pipes_.end()) return;
  while (it->second.unacked > 0) pipeline_drain_one(server);
}

void Client::pipeline_sync() {
  pipeline_ship_all();
  for (auto& [server, p] : pipes_) {
    while (p.unacked > 0) pipeline_drain_one(server);
  }
  maybe_throw_deferred();
}

void Client::maybe_throw_deferred() {
  if (deferred_error_.empty()) return;
  std::string err = std::move(deferred_error_);
  deferred_error_.clear();
  throw DataError(std::move(err));
}

// ---- datum cache ----

void Client::apply_invalidations(ser::Reader& r) {
  uint32_t n = r.get_u32();
  for (uint32_t i = 0; i < n; ++i) {
    int64_t id = r.get_i64();
    uint64_t epoch = r.get_u64();
    auto it = cache_.find(id);
    // entry.epoch >= epoch means the entry was cached from a later
    // incarnation than the one this deletion notice is about: keep it.
    if (it != cache_.end() && it->second.epoch < epoch) {
      ++cache_stats_.invalidations;
      cache_erase(id);
    }
  }
}

const Client::CacheEntry* Client::cache_lookup(int64_t id, EntryKind kind) {
  // Coherence against the write-behind pipeline: an outstanding kAckBatch
  // from this id's owner may carry the invalidation that kills the cached
  // entry. Apply everything the owner has already replied (acks drain
  // FIFO) before trusting a hit — restoring the synchronous-mode
  // invariant that every received invalidation is applied before any
  // consult. No-op unless a shipped batch to that owner is unacked.
  if (pipeline_window_ > 1) pipeline_drain(owner_server(id, comm_.size(), cfg_));
  auto it = cache_.find(id);
  if (it == cache_.end()) return nullptr;
  if (it->second.kind != kind) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return &it->second;
}

void Client::cache_insert(int64_t id, EntryKind kind, uint64_t epoch, ser::SharedBytes bytes) {
  if (!cache_enabled_) return;
  cache_erase(id);
  // Charge the view length plus fixed overhead. Shared storage can be
  // somewhat larger than the views into it (reply framing, sibling
  // entries already evicted); the budget is a working-set bound, not an
  // exact RSS accounting.
  const size_t charge = bytes.len + kCacheEntryOverhead;
  if (charge > cache_budget_) return;
  while (cache_bytes_ + charge > cache_budget_ && !lru_.empty()) {
    ++cache_stats_.evictions;
    cache_erase(lru_.back());
  }
  lru_.push_front(id);
  cache_bytes_ += charge;
  cache_.emplace(id, CacheEntry{kind, epoch, std::move(bytes), lru_.begin()});
}

void Client::cache_erase(int64_t id) {
  auto it = cache_.find(id);
  if (it == cache_.end()) return;
  cache_bytes_ -= it->second.bytes.len + kCacheEntryOverhead;
  lru_.erase(it->second.lru);
  cache_.erase(it);
}

[[noreturn]] void Client::raise_data_error(int64_t id, std::string message) {
  if (symbol_hint_) {
    std::string hint = symbol_hint_(id);
    if (!hint.empty()) message += " [" + hint + "]";
  }
  throw DataError(std::move(message));
}

namespace {
[[noreturn]] void raise_error(ser::Reader& r) {
  throw DataError(r.get_str());
}

// Reads an Ack/Error reply; returns the ACK's piggybacked count of close
// notifications queued back to this rank (0 for non-closing ops).
uint32_t expect_ack(ser::Reader r) {
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kAck) return r.get_u32();
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply opcode");
}
}  // namespace

void Client::put(const WorkUnit& unit_in) {
  WorkUnit unit = unit_in;
  // Stamp the ambient request context onto units spawned while one of the
  // request's tasks is evaluating here. Serve bookkeeping notices arrive
  // pre-tagged and are left alone.
  if (serve_.req != 0 && unit.req == 0 && (unit.flags & kUnitServeCtl) == 0) {
    unit.req = serve_.req;
    unit.owner = serve_.owner;
    unit.prog = serve_.prog;
    // Control affinity: a request's untargeted control lands on its owner
    // engine, so all of its rule state and completion accounting stay on
    // one rank (requests, not rules, spread across engines).
    if (unit.type == kTypeControl && unit.target == kAnyRank) unit.target = serve_.owner;
  }
  // Owner-local counting: register the +1 before the unit leaves this
  // rank. Non-owner puts are counted by the first server to see them
  // (Server::maybe_spawn_notice).
  if (unit.req != 0 && (unit.flags & (kUnitCounted | kUnitServeCtl)) == 0 &&
      unit.owner == comm_.rank() && on_spawned_) {
    unit.flags |= kUnitCounted;
    on_spawned_(unit.req);
  }
  if (unit.type < 0 || unit.type >= cfg_.ntypes) {
    throw DataError("adlb: put with invalid work type " + std::to_string(unit.type));
  }
  // Validate the target here so a bad put fails immediately even when the
  // unit would otherwise sit in the batch buffer.
  if (unit.target != kAnyRank &&
      (unit.target < 0 || unit.target >= num_clients(comm_.size(), cfg_))) {
    throw DataError("put: target rank " + std::to_string(unit.target) + " out of range");
  }
  // Only untargeted units may linger in the batch buffer. A targeted
  // unit's arrival is observable by its target outside ADLB (e.g. the
  // answer-rank pattern: put to rank R, then block in a raw recv for R's
  // reply), so deferring it could deadlock; it goes out synchronously,
  // after the buffer (rpc() flushes first) to preserve program order.
  // Exception: an owner engine's control put retargeted at itself by the
  // affinity rule above has no outside observer (this rank is both the
  // putter and the target, and rpc() flushes before its next Get), so it
  // keeps the batched fast path.
  const bool self_control =
      unit.req != 0 && unit.type == kTypeControl && unit.target == comm_.rank();
  if (batching_ && (unit.target == kAnyRank || self_control)) {
    if (pending_put_count_ == 0) {
      pending_puts_ = comm_.writer();
      pending_puts_.put_u8(static_cast<uint8_t>(Op::kPutBatch));
      pending_puts_.put_u64(0);  // placeholder; count rides separately
    }
    write_work_unit(pending_puts_, unit);
    if (++pending_put_count_ >= cfg_.put_batch) flush_puts();
    return;
  }
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kPut));
  write_work_unit(w, unit);
  expect_ack(rpc(home_, std::move(w)));
}

void Client::flush_puts() {
  // Buffered datum batches ship first: a put's eventual consumer may
  // retrieve the datums it references, and the causal chain through the
  // task only orders that read correctly if the owning shard received the
  // sub-ops before the put left this rank.
  pipeline_ship_all();
  if (pending_put_count_ == 0) return;
  // Rewrite the count placeholder (u64 directly after the opcode byte),
  // then do the exchange directly — not via rpc(), which would recurse
  // into this flush.
  std::vector<std::byte> buf = pending_puts_.take();
  const uint64_t n = static_cast<uint64_t>(pending_put_count_);
  std::memcpy(buf.data() + 1, &n, sizeof n);
  pending_put_count_ = 0;
  comm_.send(home_, kTagRequest, std::move(buf));
  pipeline_drain(home_);
  mpi::Message reply = comm_.recv(home_, kTagResponse);
  ser::Reader r(reply.data);
  apply_invalidations(r);
  expect_ack(r);
  comm_.recycle(std::move(reply.data));
  maybe_throw_deferred();
}

std::optional<WorkUnit> Client::get(int type) {
  if (type < 0 || type >= cfg_.ntypes) {
    throw DataError("adlb: get with invalid work type " + std::to_string(type));
  }
  if (!prefetched_.empty()) {
    if (prefetched_.front().type == type) {
      WorkUnit unit = std::move(prefetched_.front());
      prefetched_.pop_front();
      obs::instant(obs::EventKind::kAdlbGet, comm_.rank(), type);
      return unit;
    }
    flush_prefetch();
  }
  // A parked client must have nothing in flight anywhere — not just at
  // its home server. An unprocessed kDataBatch sitting in another shard's
  // mailbox is invisible to the token ring (client->server traffic is not
  // counted), so parking with one outstanding could let the ring conclude
  // termination while that batch still has notifications to spawn. Ship
  // and drain everything before blocking.
  pipeline_sync();
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kGet));
  w.put_i32(type);
  // The span covers the whole blocking exchange: its duration is this
  // client's idle-waiting-for-work time.
  obs::Span wait(obs::EventKind::kAdlbGetWait, type);
  ser::Reader r = rpc(home_, std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kShutdownClient) return std::nullopt;
  if (op == Op::kGotWork) return read_work_unit(r);
  if (op == Op::kGotWorkBatch) {
    uint64_t n = r.get_u64();
    WorkUnit first = read_work_unit(r);
    for (uint64_t i = 1; i < n; ++i) prefetched_.push_back(read_work_unit(r));
    return first;
  }
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Get");
}

void Client::flush_prefetch() {
  while (!prefetched_.empty()) {
    WorkUnit unit = std::move(prefetched_.front());
    prefetched_.pop_front();
    ser::Writer w = comm_.writer();
    w.put_u8(static_cast<uint8_t>(Op::kPut));
    write_work_unit(w, unit);
    expect_ack(rpc(home_, std::move(w)));
  }
}

void Client::task_failed(const WorkUnit& unit, const std::string& why) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kTaskFailed));
  write_work_unit(w, unit);
  w.put_str("rank " + std::to_string(comm_.rank()) + ": " + why);
  expect_ack(rpc(home_, std::move(w)));
}

int64_t Client::unique() {
  // 23 bits of rank, 40 bits of counter: unique without communication.
  return (static_cast<int64_t>(comm_.rank()) << 40) | next_local_id_++;
}

void Client::create(int64_t id, DataType type) {
  const int server = owner_server(id, comm_.size(), cfg_);
  if (pipeline_active()) {
    ser::Writer& w = pipeline_writer(server);
    w.put_u8(static_cast<uint8_t>(Op::kCreate));
    w.put_i64(id);
    w.put_u8(static_cast<uint8_t>(type));
    w.put_i64(serve_.req);
    pipeline_note_op(server);
    return;
  }
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kCreate));
  w.put_i64(id);
  w.put_u8(static_cast<uint8_t>(type));
  // Datums created while a request evaluates here belong to its
  // namespace: the owning shard indexes them for kFreeNamespace.
  w.put_i64(serve_.req);
  expect_ack(rpc(server, std::move(w)));
}

void Client::store(int64_t id, std::string_view value, bool close) {
  const int server = owner_server(id, comm_.size(), cfg_);
  // pipeline_active() implies no serve request context, so the ACK's
  // self-notification count (consumed only by serve accounting) can be
  // coalesced away with the rest of the reply.
  if (pipeline_active()) {
    ser::Writer& w = pipeline_writer(server);
    w.put_u8(static_cast<uint8_t>(Op::kStore));
    w.put_i64(id);
    w.put_bool(close);
    w.put_str(value);
    pipeline_note_op(server);
    return;
  }
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kStore));
  w.put_i64(id);
  w.put_bool(close);
  w.put_str(value);
  uint32_t n = expect_ack(rpc(server, std::move(w)));
  if (n > 0 && serve_.req != 0 && on_self_notify_) on_self_notify_(serve_.req, id, n);
}

std::string Client::retrieve(int64_t id) { return retrieve_view(id).to_string(); }

ser::SharedBytes Client::retrieve_view(int64_t id) {
  if (const CacheEntry* e = cache_lookup(id, EntryKind::kScalar)) {
    ++cache_stats_.hits;
    return e->bytes;
  }
  if (cache_enabled_) ++cache_stats_.misses;
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kRetrieve));
  w.put_i64(id);
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kError) raise_data_error(id, r.get_str());
  if (op != Op::kValue) throw CommError("adlb: unexpected reply to Retrieve");
  const size_t vlen = r.get_u64();
  const size_t voff = r.position();
  r.skip(vlen);
  const bool cacheable = r.get_bool();
  const uint64_t epoch = r.get_u64();
  if (cacheable && cache_enabled_) {
    // Zero copy: the reply buffer itself becomes the cached storage; the
    // view addresses the value bytes in place.
    ser::SharedBytes bytes{
        std::make_shared<const std::vector<std::byte>>(std::move(reply_)), voff, vlen};
    cache_insert(id, EntryKind::kScalar, epoch, bytes);
    return bytes;
  }
  return ser::SharedBytes::own(
      {reply_.begin() + static_cast<ptrdiff_t>(voff),
       reply_.begin() + static_cast<ptrdiff_t>(voff + vlen)});
}

std::vector<std::string> Client::multi_retrieve(std::span<const int64_t> ids) {
  std::vector<std::string> out(ids.size());
  if (cfg_.ft) {
    // One transport message per operation (the FaultPlan's send-count
    // triggers assume it): degrade to sequential single-id retrieves.
    for (size_t i = 0; i < ids.size(); ++i) out[i] = retrieve(ids[i]);
    return out;
  }
  // Serve what the cache holds, then group the misses by owning server —
  // one RPC each (ordered so batch formation is deterministic).
  std::map<int, std::vector<size_t>> by_server;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (const CacheEntry* e = cache_lookup(ids[i], EntryKind::kScalar)) {
      ++cache_stats_.hits;
      out[i] = e->bytes.to_string();
      continue;
    }
    if (cache_enabled_) ++cache_stats_.misses;
    by_server[owner_server(ids[i], comm_.size(), cfg_)].push_back(i);
  }
  for (const auto& [server, idxs] : by_server) {
    ser::Writer w = comm_.writer();
    w.put_u8(static_cast<uint8_t>(Op::kMultiRetrieve));
    w.put_u64(idxs.size());
    for (size_t i : idxs) w.put_i64(ids[i]);
    ser::Reader r = rpc(server, std::move(w));
    Op op = static_cast<Op>(r.get_u8());
    if (op == Op::kError) raise_error(r);
    if (op != Op::kValue) throw CommError("adlb: unexpected reply to MultiRetrieve");
    const uint64_t n = r.get_u64();
    struct Slot {
      size_t idx, off, len;
      bool cacheable;
      uint64_t epoch;
    };
    std::vector<Slot> slots;
    slots.reserve(n);
    bool any_cacheable = false;
    for (uint64_t k = 0; k < n; ++k) {
      const size_t i = idxs[k];
      if (r.get_u8() == 0) raise_data_error(ids[i], r.get_str());
      const size_t vlen = r.get_u64();
      const size_t voff = r.position();
      r.skip(vlen);
      const bool cacheable = r.get_bool();
      const uint64_t epoch = r.get_u64();
      slots.push_back({i, voff, vlen, cacheable, epoch});
      any_cacheable = any_cacheable || cacheable;
    }
    // Steal the reply buffer once; every cacheable entry in this batch
    // becomes a view into it at its own offset.
    std::shared_ptr<const std::vector<std::byte>> storage;
    if (any_cacheable && cache_enabled_) {
      storage = std::make_shared<const std::vector<std::byte>>(std::move(reply_));
    }
    for (Slot& s : slots) {
      const std::byte* base = storage ? storage->data() : reply_.data();
      out[s.idx].assign(reinterpret_cast<const char*>(base + s.off), s.len);
      if (storage && s.cacheable) {
        cache_insert(ids[s.idx], EntryKind::kScalar, s.epoch,
                     ser::SharedBytes{storage, s.off, s.len});
      }
    }
  }
  return out;
}

bool Client::exists(int64_t id) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kExists));
  w.put_i64(id);
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_bool();
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Exists");
}

DataType Client::type_of(int64_t id) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kTypeOf));
  w.put_i64(id);
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return static_cast<DataType>(r.get_u8());
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to TypeOf");
}

void Client::close(int64_t id) {
  const int server = owner_server(id, comm_.size(), cfg_);
  if (pipeline_active()) {
    ser::Writer& w = pipeline_writer(server);
    w.put_u8(static_cast<uint8_t>(Op::kCloseDatum));
    w.put_i64(id);
    pipeline_note_op(server);
    return;
  }
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kCloseDatum));
  w.put_i64(id);
  uint32_t n = expect_ack(rpc(server, std::move(w)));
  if (n > 0 && serve_.req != 0 && on_self_notify_) on_self_notify_(serve_.req, id, n);
}

bool Client::subscribe(int64_t id, int notify_type) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kSubscribe));
  w.put_i64(id);
  w.put_i32(notify_type);
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_bool();
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Subscribe");
}

void Client::ref_incr(int64_t id, int delta) {
  // This rank is giving up (part of) its read claim: drop its cached
  // copy up front rather than waiting for the piggybacked invalidation
  // that follows if this decrement turns out to be the last.
  if (delta < 0) cache_erase(id);
  const int server = owner_server(id, comm_.size(), cfg_);
  if (pipeline_active()) {
    ser::Writer& w = pipeline_writer(server);
    w.put_u8(static_cast<uint8_t>(Op::kRefIncr));
    w.put_i64(id);
    w.put_i32(delta);
    pipeline_note_op(server);
    return;
  }
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kRefIncr));
  w.put_i64(id);
  w.put_i32(delta);
  expect_ack(rpc(server, std::move(w)));
}

void Client::write_incr(int64_t id, int delta) {
  const int server = owner_server(id, comm_.size(), cfg_);
  if (pipeline_active()) {
    ser::Writer& w = pipeline_writer(server);
    w.put_u8(static_cast<uint8_t>(Op::kWriteIncr));
    w.put_i64(id);
    w.put_i32(delta);
    pipeline_note_op(server);
    return;
  }
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kWriteIncr));
  w.put_i64(id);
  w.put_i32(delta);
  uint32_t n = expect_ack(rpc(server, std::move(w)));
  if (n > 0 && serve_.req != 0 && on_self_notify_) on_self_notify_(serve_.req, id, n);
}

void Client::insert(int64_t container_id, std::string_view key, std::string_view value) {
  const int server = owner_server(container_id, comm_.size(), cfg_);
  if (pipeline_active()) {
    ser::Writer& w = pipeline_writer(server);
    w.put_u8(static_cast<uint8_t>(Op::kInsert));
    w.put_i64(container_id);
    w.put_str(key);
    w.put_str(value);
    pipeline_note_op(server);
    return;
  }
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kInsert));
  w.put_i64(container_id);
  w.put_str(key);
  w.put_str(value);
  expect_ack(rpc(server, std::move(w)));
}

std::optional<std::string> Client::lookup(int64_t container_id, std::string_view key) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kLookup));
  w.put_i64(container_id);
  w.put_str(key);
  ser::Reader r = rpc(owner_server(container_id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_str();
  if (op == Op::kNoValue) return std::nullopt;
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Lookup");
}

namespace {
std::vector<std::pair<std::string, std::string>> read_pairs(ser::Reader& r) {
  uint64_t n = r.get_u64();
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string k = r.get_str();
    std::string v = r.get_str();
    out.emplace_back(std::move(k), std::move(v));
  }
  return out;
}
}  // namespace

std::pair<uint64_t, uint64_t> Client::free_namespace(int64_t req) {
  uint64_t leftover = 0;
  uint64_t stuck = 0;
  for (int s = 0; s < cfg_.nservers; ++s) {
    ser::Writer w = comm_.writer();
    w.put_u8(static_cast<uint8_t>(Op::kFreeNamespace));
    w.put_i64(req);
    ser::Reader r = rpc(server_rank(s, comm_.size(), cfg_), std::move(w));
    Op op = static_cast<Op>(r.get_u8());
    if (op == Op::kError) raise_error(r);
    if (op != Op::kValue) throw CommError("adlb: unexpected reply to FreeNamespace");
    leftover += r.get_u64();
    stuck += r.get_u64();
  }
  return {leftover, stuck};
}

uint64_t Client::datum_count() {
  uint64_t total = 0;
  for (int s = 0; s < cfg_.nservers; ++s) {
    ser::Writer w = comm_.writer();
    w.put_u8(static_cast<uint8_t>(Op::kDatumCount));
    ser::Reader r = rpc(server_rank(s, comm_.size(), cfg_), std::move(w));
    Op op = static_cast<Op>(r.get_u8());
    if (op == Op::kError) raise_error(r);
    if (op != Op::kValue) throw CommError("adlb: unexpected reply to DatumCount");
    total += r.get_u64();
  }
  return total;
}

std::vector<std::pair<std::string, std::string>> Client::enumerate(int64_t container_id) {
  // A closed container's entries are immutable, so the serialized pair
  // list caches under the same epoch rule as a scalar value.
  if (const CacheEntry* e = cache_lookup(container_id, EntryKind::kEnumeration)) {
    ++cache_stats_.hits;
    ser::Reader cached(e->bytes.view());
    return read_pairs(cached);
  }
  if (cache_enabled_) ++cache_stats_.misses;
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kEnumerate));
  w.put_i64(container_id);
  ser::Reader r = rpc(owner_server(container_id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kError) raise_data_error(container_id, r.get_str());
  if (op != Op::kValue) throw CommError("adlb: unexpected reply to Enumerate");
  const size_t start = r.position();
  auto out = read_pairs(r);
  const size_t len = r.position() - start;
  const bool cacheable = r.get_bool();
  const uint64_t epoch = r.get_u64();
  if (cacheable && cache_enabled_) {
    cache_insert(container_id, EntryKind::kEnumeration, epoch,
                 ser::SharedBytes{
                     std::make_shared<const std::vector<std::byte>>(std::move(reply_)),
                     start, len});
  }
  return out;
}

}  // namespace ilps::adlb
