#include "adlb/client.h"

#include <cstring>

#include "common/error.h"
#include "obs/trace.h"

namespace ilps::adlb {

Client::Client(mpi::Comm& comm, const Config& cfg) : comm_(comm), cfg_(cfg) {
  if (is_server(comm.rank(), comm.size(), cfg)) {
    throw CommError("adlb::Client constructed on a server rank");
  }
  home_ = home_server(comm.rank(), comm.size(), cfg);
  // Batching changes how many transport messages an operation costs;
  // under ft that would shift the FaultPlan's send-count triggers and the
  // server's per-RPC liveness bookkeeping, so the fast paths switch off.
  batching_ = !cfg_.ft && cfg_.put_batch > 1;
}

ser::Reader Client::rpc(int server, ser::Writer&& request) {
  flush_puts();
  comm_.send(server, kTagRequest, std::move(request));
  mpi::Message reply = comm_.recv(server, kTagResponse);
  // The previous reply has been fully consumed by now; its buffer feeds
  // the freelist the next writer() draws from.
  comm_.recycle(std::move(reply_));
  reply_ = std::move(reply.data);
  return ser::Reader(reply_);
}

namespace {
[[noreturn]] void raise_error(ser::Reader& r) {
  throw DataError(r.get_str());
}

// Reads an Ack/Error reply.
void expect_ack(ser::Reader r) {
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kAck) return;
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply opcode");
}
}  // namespace

void Client::put(const WorkUnit& unit) {
  if (unit.type < 0 || unit.type >= cfg_.ntypes) {
    throw DataError("adlb: put with invalid work type " + std::to_string(unit.type));
  }
  // Validate the target here so a bad put fails immediately even when the
  // unit would otherwise sit in the batch buffer.
  if (unit.target != kAnyRank &&
      (unit.target < 0 || unit.target >= num_clients(comm_.size(), cfg_))) {
    throw DataError("put: target rank " + std::to_string(unit.target) + " out of range");
  }
  // Only untargeted units may linger in the batch buffer. A targeted
  // unit's arrival is observable by its target outside ADLB (e.g. the
  // answer-rank pattern: put to rank R, then block in a raw recv for R's
  // reply), so deferring it could deadlock; it goes out synchronously,
  // after the buffer (rpc() flushes first) to preserve program order.
  if (batching_ && unit.target == kAnyRank) {
    if (pending_put_count_ == 0) {
      pending_puts_ = comm_.writer();
      pending_puts_.put_u8(static_cast<uint8_t>(Op::kPutBatch));
      pending_puts_.put_u64(0);  // placeholder; count rides separately
    }
    write_work_unit(pending_puts_, unit);
    if (++pending_put_count_ >= cfg_.put_batch) flush_puts();
    return;
  }
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kPut));
  write_work_unit(w, unit);
  expect_ack(rpc(home_, std::move(w)));
}

void Client::flush_puts() {
  if (pending_put_count_ == 0) return;
  // Rewrite the count placeholder (u64 directly after the opcode byte),
  // then do the exchange directly — not via rpc(), which would recurse
  // into this flush.
  std::vector<std::byte> buf = pending_puts_.take();
  const uint64_t n = static_cast<uint64_t>(pending_put_count_);
  std::memcpy(buf.data() + 1, &n, sizeof n);
  pending_put_count_ = 0;
  comm_.send(home_, kTagRequest, std::move(buf));
  mpi::Message reply = comm_.recv(home_, kTagResponse);
  expect_ack(ser::Reader(reply.data));
  comm_.recycle(std::move(reply.data));
}

std::optional<WorkUnit> Client::get(int type) {
  if (type < 0 || type >= cfg_.ntypes) {
    throw DataError("adlb: get with invalid work type " + std::to_string(type));
  }
  if (!prefetched_.empty()) {
    if (prefetched_.front().type == type) {
      WorkUnit unit = std::move(prefetched_.front());
      prefetched_.pop_front();
      obs::instant(obs::EventKind::kAdlbGet, comm_.rank(), type);
      return unit;
    }
    flush_prefetch();
  }
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kGet));
  w.put_i32(type);
  // The span covers the whole blocking exchange: its duration is this
  // client's idle-waiting-for-work time.
  obs::Span wait(obs::EventKind::kAdlbGetWait, type);
  ser::Reader r = rpc(home_, std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kShutdownClient) return std::nullopt;
  if (op == Op::kGotWork) return read_work_unit(r);
  if (op == Op::kGotWorkBatch) {
    uint64_t n = r.get_u64();
    WorkUnit first = read_work_unit(r);
    for (uint64_t i = 1; i < n; ++i) prefetched_.push_back(read_work_unit(r));
    return first;
  }
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Get");
}

void Client::flush_prefetch() {
  while (!prefetched_.empty()) {
    WorkUnit unit = std::move(prefetched_.front());
    prefetched_.pop_front();
    ser::Writer w = comm_.writer();
    w.put_u8(static_cast<uint8_t>(Op::kPut));
    write_work_unit(w, unit);
    expect_ack(rpc(home_, std::move(w)));
  }
}

void Client::task_failed(const WorkUnit& unit, const std::string& why) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kTaskFailed));
  write_work_unit(w, unit);
  w.put_str("rank " + std::to_string(comm_.rank()) + ": " + why);
  expect_ack(rpc(home_, std::move(w)));
}

int64_t Client::unique() {
  // 23 bits of rank, 40 bits of counter: unique without communication.
  return (static_cast<int64_t>(comm_.rank()) << 40) | next_local_id_++;
}

void Client::create(int64_t id, DataType type) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kCreate));
  w.put_i64(id);
  w.put_u8(static_cast<uint8_t>(type));
  expect_ack(rpc(owner_server(id, comm_.size(), cfg_), std::move(w)));
}

void Client::store(int64_t id, std::string_view value, bool close) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kStore));
  w.put_i64(id);
  w.put_bool(close);
  w.put_str(value);
  expect_ack(rpc(owner_server(id, comm_.size(), cfg_), std::move(w)));
}

std::string Client::retrieve(int64_t id) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kRetrieve));
  w.put_i64(id);
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_str();
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Retrieve");
}

bool Client::exists(int64_t id) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kExists));
  w.put_i64(id);
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_bool();
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Exists");
}

DataType Client::type_of(int64_t id) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kTypeOf));
  w.put_i64(id);
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return static_cast<DataType>(r.get_u8());
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to TypeOf");
}

void Client::close(int64_t id) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kCloseDatum));
  w.put_i64(id);
  expect_ack(rpc(owner_server(id, comm_.size(), cfg_), std::move(w)));
}

bool Client::subscribe(int64_t id, int notify_type) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kSubscribe));
  w.put_i64(id);
  w.put_i32(notify_type);
  ser::Reader r = rpc(owner_server(id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_bool();
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Subscribe");
}

void Client::ref_incr(int64_t id, int delta) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kRefIncr));
  w.put_i64(id);
  w.put_i32(delta);
  expect_ack(rpc(owner_server(id, comm_.size(), cfg_), std::move(w)));
}

void Client::write_incr(int64_t id, int delta) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kWriteIncr));
  w.put_i64(id);
  w.put_i32(delta);
  expect_ack(rpc(owner_server(id, comm_.size(), cfg_), std::move(w)));
}

void Client::insert(int64_t container_id, std::string_view key, std::string_view value) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kInsert));
  w.put_i64(container_id);
  w.put_str(key);
  w.put_str(value);
  expect_ack(rpc(owner_server(container_id, comm_.size(), cfg_), std::move(w)));
}

std::optional<std::string> Client::lookup(int64_t container_id, std::string_view key) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kLookup));
  w.put_i64(container_id);
  w.put_str(key);
  ser::Reader r = rpc(owner_server(container_id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kValue) return r.get_str();
  if (op == Op::kNoValue) return std::nullopt;
  if (op == Op::kError) raise_error(r);
  throw CommError("adlb: unexpected reply to Lookup");
}

std::vector<std::pair<std::string, std::string>> Client::enumerate(int64_t container_id) {
  ser::Writer w = comm_.writer();
  w.put_u8(static_cast<uint8_t>(Op::kEnumerate));
  w.put_i64(container_id);
  ser::Reader r = rpc(owner_server(container_id, comm_.size(), cfg_), std::move(w));
  Op op = static_cast<Op>(r.get_u8());
  if (op == Op::kError) raise_error(r);
  if (op != Op::kValue) throw CommError("adlb: unexpected reply to Enumerate");
  uint64_t n = r.get_u64();
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string k = r.get_str();
    std::string v = r.get_str();
    out.emplace_back(std::move(k), std::move(v));
  }
  return out;
}

}  // namespace ilps::adlb
