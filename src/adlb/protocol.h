// ADLB wire protocol and role layout.
//
// This module reimplements the MPI-based Asynchronous Dynamic Load
// Balancer (Lusk, Pieper & Butler) as used by Swift/T's Turbine engine:
// the last `nservers` ranks are servers; every other rank is a client
// (Turbine engine or worker) assigned to one home server. Clients submit
// work with Put and block in Get; servers match work to parked Gets,
// rebalance across servers (a hungry-server variant of ADLB's random
// stealing), own the Turbine data store, and detect global quiescence with
// a Dijkstra-style token ring, at which point every parked Get is released
// with a shutdown notice.
//
// All client RPCs are synchronous (request then reply): this gives the
// termination detector the invariant that a parked client has no messages
// in flight, so only server<->server traffic needs to be counted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/buffer.h"
#include "mpi/comm.h"

namespace ilps::adlb {

// Work-unit types, by Turbine convention: control tasks run on engines,
// work tasks on workers. Additional user types are permitted (< ntypes).
inline constexpr int kTypeWork = 0;
inline constexpr int kTypeControl = 1;

// Put target meaning "any rank".
inline constexpr int kAnyRank = -1;

struct Config {
  int nservers = 1;
  int ntypes = 2;
  // Rebalancing batch policy: ship half the queue per Hungry notice (ADLB
  // steal-half) or a single unit. Ablated in bench_ablation.
  bool steal_half = true;
  // Close notifications outrank user work in the queues (keeps dataflow
  // graphs unfolding ahead of leaf work). Ablated in bench_ablation.
  bool priority_notifications = true;

  // ---- fast-path batching (disabled automatically under ft, whose
  // send-counting fault triggers and per-RPC liveness bookkeeping assume
  // one message per operation) ----
  // Puts are buffered client-side and shipped as one kPutBatch request of
  // up to this many units; the buffer is always flushed before any other
  // RPC, so a parked client still has nothing in flight (the termination
  // detector's invariant) and server-side ordering is unchanged.
  int put_batch = 16;
  // A Get may be answered with up to this many units of the requested
  // type in one kGotWorkBatch reply; the client runs them off a local
  // prefetch queue, skipping whole round trips per task.
  int get_batch = 4;
  // Ack-only datum ops (create/store/close/ref_incr/write_incr/insert) are
  // write-behind: buffered per owning server into kDataBatch requests and
  // shipped with up to this many unacked batches outstanding per server,
  // each answered by one coalesced kAckBatch. Every batch is shipped
  // before any other RPC leaves this client (so cross-client read-after-
  // write still holds through task causality), and every outstanding ack
  // is drained before a Get parks the client (so the termination detector
  // never sees a parked client with an unprocessed batch in flight).
  // Server errors surface as DataError at the next synchronous boundary.
  // <= 1 restores one blocking round-trip per op; forced to 1 under ft
  // and for any op issued inside a serve request context (src/serve
  // accounting consumes per-op ack payloads).
  int pipeline_window = 8;

  // ---- client-side datum cache (disabled automatically under ft, like
  // the batching fast paths: a cache hit elides the retrieve RPC, which
  // would shift the FaultPlan's send-count triggers) ----
  // Byte budget in MiB for the per-rank read-through cache of closed
  // datums. 0 disables the cache; -1 reads ILPS_DATA_CACHE_MB from the
  // environment (default 64 when unset). Coherence: a closed datum is
  // immutable (single assignment), and refcount-driven deletion
  // piggybacks (id, epoch) invalidations on every server->client reply,
  // so a recycled id never serves stale bytes (see docs/datastore.md).
  int data_cache_mb = -1;

  // ---- fault tolerance (the src/ckpt substrate) ----
  // When ft is set the server tracks in-flight work per client, requeues
  // a dead client's unit (bounded by max_task_retries), treats replayed
  // data ops as idempotent, and — if ckpt_interval > 0 — checkpoints the
  // data store every ckpt_interval completed leaf tasks into ckpt_dir.
  bool ft = false;
  int nengines = 1;              // client ranks < nengines are engines:
                                 // their death is unrecoverable in place
  int max_task_retries = 2;      // per-unit requeue budget
  int retry_backoff_ms = 2;      // requeue delay, doubled per attempt
                                 // (exponential backoff); 0 = immediate
  int heartbeat_timeout_ms = 0;  // busy client silent this long is declared
                                 // dead (hung-worker detection); 0 = off
  int ckpt_interval = 0;         // completed tasks between checkpoints
  std::string ckpt_dir;          // checkpoint directory (empty = no files)

  bool operator==(const Config&) const = default;
};

// Serve-runtime flags on a WorkUnit (src/serve). A request-tagged unit
// (req != 0) participates in per-request completion accounting on its
// owner engine; these bits keep that accounting exact.
inline constexpr uint8_t kUnitServeCtl = 1;  // serve bookkeeping notice, not
                                             // user work: never counted, never
                                             // a task, dispatched by the engine
                                             // loop in C++
inline constexpr uint8_t kUnitCounted = 2;   // +1 already registered with the
                                             // owner (locally or via a spawn
                                             // notice); re-puts must not count
                                             // it again
inline constexpr uint8_t kUnitReqBegin = 4;  // request seed: the target engine
                                             // becomes the owner, begins the
                                             // request, and evaluates the
                                             // payload as its entry script

// A unit of work travelling through ADLB.
struct WorkUnit {
  int type = kTypeWork;
  int priority = 0;
  int target = kAnyRank;   // specific rank, or kAnyRank
  int answer = kAnyRank;   // rank to send an application-level answer to
  std::string payload;
  int64_t id = 0;          // server-assigned identity (0 = not yet assigned);
                           // names the unit in retry bookkeeping and errors
  int attempts = 0;        // delivery attempts so far (fault tolerance)

  // ---- serve-runtime request tagging (src/serve; all zero outside it) ----
  int64_t req = 0;         // request this unit belongs to (0 = none)
  int owner = kAnyRank;    // engine rank owning the request's accounting
  int64_t prog = 0;        // datum id of the request's program text (0 = the
                           // payload is self-contained)
  uint8_t flags = 0;       // kUnitServeCtl / kUnitCounted
};

// Typed data store (the ADLB data extension Turbine uses).
enum class DataType : uint8_t {
  kVoid = 0,     // a pure signal future
  kInteger = 1,
  kFloat = 2,
  kString = 3,
  kBlob = 4,
  kContainer = 5,
  kFile = 6,
};

const char* data_type_name(DataType t);
std::optional<DataType> data_type_from_name(std::string_view name);

// ---- Role layout ----

inline bool is_server(int rank, int size, const Config& cfg) {
  return rank >= size - cfg.nservers;
}

inline int server_index(int rank, int size, const Config& cfg) {
  return rank - (size - cfg.nservers);
}

inline int server_rank(int index, int size, const Config& cfg) {
  return size - cfg.nservers + index;
}

inline int num_clients(int size, const Config& cfg) { return size - cfg.nservers; }

// The home server of a client rank.
inline int home_server(int client_rank, int size, const Config& cfg) {
  return server_rank(client_rank % cfg.nservers, size, cfg);
}

// The server owning a datum id.
inline int owner_server(int64_t id, int size, const Config& cfg) {
  return server_rank(static_cast<int>(((id % cfg.nservers) + cfg.nservers) % cfg.nservers), size,
                     cfg);
}

// ---- Tags ----

inline constexpr int kTagRequest = 100;   // client -> server
inline constexpr int kTagResponse = 101;  // server -> client
inline constexpr int kTagServer = 102;    // server -> server

// Every kTagResponse message begins with a cache-invalidation header
// (u32 count, then count x {i64 id, u64 epoch}) before the reply opcode:
// refcount GC of a datum whose bytes were handed out as cacheable queues
// an invalidation for each holding client, drained onto that client's
// next reply of any kind. No unsolicited server->client message class is
// needed, and — because all replies from a shard flow through this one
// channel in order — a client can never observe a recycled id's new
// incarnation before the invalidation of the old one.

// ---- Opcodes ----

enum class Op : uint8_t {
  // client -> server
  kPut = 1,
  kGet = 2,
  kTaskFailed = 3,  // worker reports a leaf-task eval failure (unit + why);
                    // the server requeues it or aborts the run
  kPutBatch = 4,    // u64 count + that many units, acked once
  kDataBatch = 5,   // u64 count + that many ack-only datum sub-ops (each a
                    // u8 opcode + its usual body), answered by one
                    // kAckBatch; the client pipelines these write-behind
                    // (Config::pipeline_window)
  kCreate = 10,
  kStore = 11,
  kRetrieve = 12,
  kExists = 13,
  kCloseDatum = 14,
  kSubscribe = 15,
  kRefIncr = 16,   // signed delta; datum deleted at zero read refs
  kWriteIncr = 17, // signed delta; datum closed at zero write refs
  kInsert = 20,
  kLookup = 21,
  kEnumerate = 22,
  kTypeOf = 23,
  kMultiRetrieve = 24,  // u64 n + n ids, answered in one kValue reply with
                        // per-id status (one RPC per server per batch)
  kFreeNamespace = 25,  // i64 req: drop every datum created under that
                        // request namespace on this shard (serve GC);
                        // replies kValue with {u64 leftover, u64 stuck}
  kDatumCount = 26,     // no args; replies kValue with u64 live-datum count
                        // on this shard (serve memory-bound checks)

  // server -> client responses
  kAck = 40,
  kError = 41,
  kGotWork = 42,
  kShutdownClient = 43,
  kValue = 44,
  kNoValue = 45,
  kGotWorkBatch = 46,  // u64 count + that many units of the Get's type
  kAckBatch = 47,      // acks one whole kDataBatch: bool ok, else the first
                       // failing sub-op's error string (surfaced client-side
                       // as a deferred DataError at the next sync point)

  // server <-> server
  kForwardPut = 60,  // targeted or rebalanced work moving between servers
  kHungry = 61,      // this server has parked Gets and no work of a type
  kToken = 62,       // termination-detection token
  kShutdownServer = 63,
};

// Serialization helpers shared by client and server.
void write_work_unit(ser::Writer& w, const WorkUnit& unit);
WorkUnit read_work_unit(ser::Reader& r);

}  // namespace ilps::adlb
