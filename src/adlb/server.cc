#include "adlb/server.h"

#include "common/error.h"
#include "common/log.h"

namespace ilps::adlb {

Server::Server(mpi::Comm& comm, const Config& cfg) : comm_(comm), cfg_(cfg) {
  const int size = comm.size();
  const int rank = comm.rank();
  if (!is_server(rank, size, cfg)) {
    throw CommError("adlb::Server constructed on a client rank");
  }
  if (num_clients(size, cfg) <= 0) {
    throw CommError("adlb: configuration leaves no client ranks");
  }
  index_ = server_index(rank, size, cfg);
  next_server_ = server_rank((index_ + 1) % cfg.nservers, size, cfg);
  for (int c = 0; c < num_clients(size, cfg); ++c) {
    if (home_server(c, size, cfg) == rank) my_clients_.push_back(c);
  }
  for (int s = 0; s < cfg.nservers; ++s) {
    int r = server_rank(s, size, cfg);
    if (r != rank) peer_servers_.push_back(r);
  }
  untargeted_.resize(static_cast<size_t>(cfg.ntypes));
  parked_.resize(static_cast<size_t>(cfg.ntypes));
  announced_.assign(static_cast<size_t>(cfg.ntypes), false);
  hungry_peers_.resize(static_cast<size_t>(cfg.ntypes));
  rng_ = Rng(0xAD1Bu + static_cast<uint64_t>(index_));
}

void Server::serve() {
  // A server with no clients of its own still shards data and rebalances.
  while (!done_) {
    mpi::Message m = comm_.recv(mpi::ANY_SOURCE, mpi::ANY_TAG);
    dispatch(m);
    if (!done_) after_dispatch();
  }
}

void Server::dispatch(const mpi::Message& m) {
  if (m.tag == kTagRequest) {
    handle_request(m);
  } else if (m.tag == kTagServer) {
    handle_server(m);
  } else {
    throw CommError("adlb server: unexpected tag " + std::to_string(m.tag));
  }
}

void Server::after_dispatch() {
  evaluate_hunger();
  if (pending_token_) try_forward_token();
  if (index_ == 0 && !token_outstanding_ && quiet()) initiate_token();
}

// ---- client requests ----

void Server::handle_request(const mpi::Message& m) {
  ser::Reader r = m.reader();
  Op op = static_cast<Op>(r.get_u8());
  switch (op) {
    case Op::kPut: {
      WorkUnit unit = read_work_unit(r);
      ++stats_.puts;
      handle_put(m.source, unit);
      break;
    }
    case Op::kGet: {
      int type = r.get_i32();
      ++stats_.gets;
      handle_get(m.source, type);
      break;
    }
    default:
      handle_data_op(m.source, op, r);
      break;
  }
}

void Server::handle_put(int source, const WorkUnit& unit) {
  if (unit.type < 0 || unit.type >= cfg_.ntypes) {
    reply_error(source, "put: invalid work type " + std::to_string(unit.type));
    return;
  }
  try {
    accept_unit(unit);
  } catch (const DataError& e) {
    reply_error(source, e.what());
    return;
  }
  reply_ack(source);
}

void Server::accept_unit(const WorkUnit& unit) {
  const int size = comm_.size();
  if (unit.target != kAnyRank) {
    if (unit.target < 0 || unit.target >= num_clients(size, cfg_)) {
      throw DataError("put: target rank " + std::to_string(unit.target) + " out of range");
    }
    int home = home_server(unit.target, size, cfg_);
    if (home != comm_.rank()) {
      // Relay to the target's home server.
      ser::Writer w;
      w.put_u8(static_cast<uint8_t>(Op::kForwardPut));
      w.put_u64(1);
      write_work_unit(w, unit);
      send_basic(home, w);
      ++stats_.forwards;
      return;
    }
    // Match to the target if it is parked with the right type.
    auto& queue = parked_[static_cast<size_t>(unit.type)];
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (*it == unit.target) {
        int client = *it;
        queue.erase(it);
        parked_clients_.erase(client);
        deliver(client, unit);
        return;
      }
    }
    targeted_[{unit.target, unit.type}].push_back(unit);
    return;
  }

  // Untargeted: hand to a parked local client if any.
  announced_[static_cast<size_t>(unit.type)] = false;
  auto& queue = parked_[static_cast<size_t>(unit.type)];
  if (!queue.empty()) {
    int client = queue.front();
    queue.pop_front();
    parked_clients_.erase(client);
    deliver(client, unit);
    return;
  }
  // No local demand: relay to a hungry peer, if one announced itself.
  auto& hungry = hungry_peers_[static_cast<size_t>(unit.type)];
  if (!hungry.empty()) {
    int peer = hungry.front();
    hungry.pop_front();
    ser::Writer w;
    w.put_u8(static_cast<uint8_t>(Op::kForwardPut));
    w.put_u64(1);
    write_work_unit(w, unit);
    send_basic(peer, w);
    ++stats_.forwards;
    return;
  }
  untargeted_[static_cast<size_t>(unit.type)].emplace(
      std::make_pair(-unit.priority, seq_++), unit);
}

void Server::deliver(int client, const WorkUnit& unit) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kGotWork));
  write_work_unit(w, unit);
  comm_.send(client, kTagResponse, w);
  ++stats_.matches;
}

void Server::handle_get(int source, int type) {
  if (type < 0 || type >= cfg_.ntypes) {
    reply_error(source, "get: invalid work type " + std::to_string(type));
    return;
  }
  // Targeted work first (ADLB's matching order), then untargeted by
  // priority.
  auto targeted_it = targeted_.find({source, type});
  if (targeted_it != targeted_.end() && !targeted_it->second.empty()) {
    WorkUnit unit = std::move(targeted_it->second.front());
    targeted_it->second.pop_front();
    if (targeted_it->second.empty()) targeted_.erase(targeted_it);
    deliver(source, unit);
    return;
  }
  auto& queue = untargeted_[static_cast<size_t>(type)];
  if (!queue.empty()) {
    WorkUnit unit = std::move(queue.begin()->second);
    queue.erase(queue.begin());
    deliver(source, unit);
    return;
  }
  parked_[static_cast<size_t>(type)].push_back(source);
  parked_clients_.insert(source);
}

void Server::evaluate_hunger() {
  for (int t = 0; t < cfg_.ntypes; ++t) {
    auto ts = static_cast<size_t>(t);
    if (!parked_[ts].empty() && untargeted_[ts].empty() && !announced_[ts] &&
        !peer_servers_.empty()) {
      ser::Writer w;
      w.put_u8(static_cast<uint8_t>(Op::kHungry));
      w.put_i32(t);
      for (int peer : peer_servers_) send_basic(peer, w);
      announced_[ts] = true;
      ++stats_.hungry_notices;
    }
  }
}

void Server::send_batch(int peer, int type) {
  auto& queue = untargeted_[static_cast<size_t>(type)];
  if (queue.empty()) return;
  size_t take = cfg_.steal_half ? (queue.size() + 1) / 2 : 1;
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kForwardPut));
  w.put_u64(take);
  // Ship the back (lowest-priority) half, keeping urgent work local.
  for (size_t i = 0; i < take; ++i) {
    auto last = std::prev(queue.end());
    write_work_unit(w, last->second);
    queue.erase(last);
  }
  send_basic(peer, w);
  ++stats_.batches_sent;
  stats_.units_rebalanced += take;
}

// ---- server <-> server ----

void Server::handle_server(const mpi::Message& m) {
  ser::Reader r = m.reader();
  Op op = static_cast<Op>(r.get_u8());
  switch (op) {
    case Op::kForwardPut: {
      --basic_count_;
      black_ = true;
      uint64_t n = r.get_u64();
      for (uint64_t i = 0; i < n; ++i) accept_unit(read_work_unit(r));
      break;
    }
    case Op::kHungry: {
      --basic_count_;
      black_ = true;
      int type = r.get_i32();
      if (type < 0 || type >= cfg_.ntypes) break;
      if (!untargeted_[static_cast<size_t>(type)].empty()) {
        send_batch(m.source, type);
      } else {
        auto& hungry = hungry_peers_[static_cast<size_t>(type)];
        bool known = false;
        for (int peer : hungry) {
          if (peer == m.source) known = true;
        }
        if (!known) hungry.push_back(m.source);
      }
      break;
    }
    case Op::kToken: {
      ++stats_.tokens;
      int64_t q = r.get_i64();
      bool black = r.get_bool();
      if (index_ == 0) {
        token_outstanding_ = false;
        if (quiet() && !black && !black_ && q + basic_count_ == 0) {
          shutdown_all();
        }
        // Otherwise after_dispatch() re-initiates once quiet.
        black_ = false;
      } else {
        pending_token_ = {q, black};
      }
      break;
    }
    case Op::kShutdownServer: {
      release_parked();
      done_ = true;
      break;
    }
    default:
      throw CommError("adlb server: unexpected server opcode");
  }
}

// ---- data store ----

Server::Datum& Server::find_datum(int64_t id, const char* op) {
  auto it = store_.find(id);
  if (it == store_.end()) {
    throw DataError(std::string(op) + ": datum <" + std::to_string(id) + "> does not exist");
  }
  return it->second;
}

void Server::do_close(int64_t id, Datum& datum) {
  datum.closed = true;
  for (const auto& [rank, notify_type] : datum.subscribers) {
    WorkUnit unit;
    unit.type = notify_type;
    unit.priority = cfg_.priority_notifications ? 1 << 20 : 0;
    unit.target = rank;
    unit.payload = std::to_string(id);
    accept_unit(unit);
    ++stats_.notifications;
  }
  datum.subscribers.clear();
}

void Server::handle_data_op(int source, Op op, ser::Reader& r) {
  ++stats_.data_ops;
  try {
    switch (op) {
      case Op::kCreate: {
        int64_t id = r.get_i64();
        auto type = static_cast<DataType>(r.get_u8());
        if (store_.count(id) > 0) {
          throw DataError("create: datum <" + std::to_string(id) + "> already exists");
        }
        Datum d;
        d.type = type;
        store_.emplace(id, std::move(d));
        reply_ack(source);
        return;
      }
      case Op::kStore: {
        int64_t id = r.get_i64();
        bool close = r.get_bool();
        std::string value = r.get_str();
        Datum& d = find_datum(id, "store");
        if (d.closed) {
          throw DataError("store: datum <" + std::to_string(id) +
                          "> already closed (double assignment)");
        }
        d.value = std::move(value);
        d.has_value = true;
        if (close) do_close(id, d);
        reply_ack(source);
        return;
      }
      case Op::kRetrieve: {
        int64_t id = r.get_i64();
        Datum& d = find_datum(id, "retrieve");
        if (!d.closed) {
          throw DataError("retrieve: datum <" + std::to_string(id) + "> is not closed");
        }
        ser::Writer w;
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_str(d.value);
        comm_.send(source, kTagResponse, w);
        return;
      }
      case Op::kExists: {
        int64_t id = r.get_i64();
        ser::Writer w;
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_bool(store_.count(id) > 0);
        comm_.send(source, kTagResponse, w);
        return;
      }
      case Op::kTypeOf: {
        int64_t id = r.get_i64();
        Datum& d = find_datum(id, "typeof");
        ser::Writer w;
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_u8(static_cast<uint8_t>(d.type));
        comm_.send(source, kTagResponse, w);
        return;
      }
      case Op::kCloseDatum: {
        int64_t id = r.get_i64();
        Datum& d = find_datum(id, "close");
        if (d.closed) {
          throw DataError("close: datum <" + std::to_string(id) + "> already closed");
        }
        do_close(id, d);
        reply_ack(source);
        return;
      }
      case Op::kSubscribe: {
        int64_t id = r.get_i64();
        int notify_type = r.get_i32();
        Datum& d = find_datum(id, "subscribe");
        ser::Writer w;
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_bool(d.closed);
        if (!d.closed) d.subscribers.emplace_back(source, notify_type);
        comm_.send(source, kTagResponse, w);
        return;
      }
      case Op::kRefIncr: {
        int64_t id = r.get_i64();
        int delta = r.get_i32();
        Datum& d = find_datum(id, "refcount");
        d.read_refs += delta;
        if (d.read_refs < 0) {
          throw DataError("refcount: datum <" + std::to_string(id) + "> underflow");
        }
        if (d.read_refs == 0) store_.erase(id);
        reply_ack(source);
        return;
      }
      case Op::kWriteIncr: {
        int64_t id = r.get_i64();
        int delta = r.get_i32();
        Datum& d = find_datum(id, "write refcount");
        if (d.closed) {
          throw DataError("write refcount: datum <" + std::to_string(id) + "> already closed");
        }
        d.write_refs += delta;
        if (d.write_refs < 0) {
          throw DataError("write refcount: datum <" + std::to_string(id) + "> underflow");
        }
        if (d.write_refs == 0) do_close(id, d);
        reply_ack(source);
        return;
      }
      case Op::kInsert: {
        int64_t id = r.get_i64();
        std::string key = r.get_str();
        std::string value = r.get_str();
        Datum& d = find_datum(id, "insert");
        if (d.type != DataType::kContainer) {
          throw DataError("insert: datum <" + std::to_string(id) + "> is not a container");
        }
        if (d.closed) {
          throw DataError("insert: container <" + std::to_string(id) + "> is closed");
        }
        if (d.entries.count(key) > 0) {
          throw DataError("insert: container <" + std::to_string(id) + "> already has key \"" +
                          key + "\"");
        }
        d.entries.emplace(std::move(key), std::move(value));
        reply_ack(source);
        return;
      }
      case Op::kLookup: {
        int64_t id = r.get_i64();
        std::string key = r.get_str();
        Datum& d = find_datum(id, "lookup");
        if (d.type != DataType::kContainer) {
          throw DataError("lookup: datum <" + std::to_string(id) + "> is not a container");
        }
        ser::Writer w;
        auto it = d.entries.find(key);
        if (it == d.entries.end()) {
          w.put_u8(static_cast<uint8_t>(Op::kNoValue));
        } else {
          w.put_u8(static_cast<uint8_t>(Op::kValue));
          w.put_str(it->second);
        }
        comm_.send(source, kTagResponse, w);
        return;
      }
      case Op::kEnumerate: {
        int64_t id = r.get_i64();
        Datum& d = find_datum(id, "enumerate");
        if (d.type != DataType::kContainer) {
          throw DataError("enumerate: datum <" + std::to_string(id) + "> is not a container");
        }
        ser::Writer w;
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_u64(d.entries.size());
        for (const auto& [k, v] : d.entries) {
          w.put_str(k);
          w.put_str(v);
        }
        comm_.send(source, kTagResponse, w);
        return;
      }
      default:
        reply_error(source, "adlb: unknown opcode " + std::to_string(static_cast<int>(op)));
        return;
    }
  } catch (const DataError& e) {
    reply_error(source, e.what());
  }
}

// ---- termination ----

bool Server::quiet() const {
  if (parked_clients_.size() != my_clients_.size()) return false;
  for (const auto& queue : untargeted_) {
    if (!queue.empty()) return false;
  }
  for (const auto& [key, queue] : targeted_) {
    (void)key;
    if (!queue.empty()) return false;
  }
  return true;
}

void Server::initiate_token() {
  if (cfg_.nservers == 1) {
    shutdown_all();
    return;
  }
  token_outstanding_ = true;
  black_ = false;
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kToken));
  w.put_i64(0);  // server 0's own count is added at the conclusion check
  w.put_bool(false);
  comm_.send(next_server_, kTagServer, w);
}

void Server::try_forward_token() {
  if (!pending_token_ || !quiet()) return;
  auto [q, black] = *pending_token_;
  pending_token_.reset();
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kToken));
  w.put_i64(q + basic_count_);
  w.put_bool(black || black_);
  black_ = false;
  comm_.send(next_server_, kTagServer, w);
}

void Server::shutdown_all() {
  for (int peer : peer_servers_) {
    ser::Writer w;
    w.put_u8(static_cast<uint8_t>(Op::kShutdownServer));
    comm_.send(peer, kTagServer, w);
  }
  release_parked();
  done_ = true;
}

void Server::release_parked() {
  for (auto& queue : parked_) {
    for (int client : queue) {
      ser::Writer w;
      w.put_u8(static_cast<uint8_t>(Op::kShutdownClient));
      comm_.send(client, kTagResponse, w);
    }
    queue.clear();
  }
  parked_clients_.clear();
  for (const auto& [id, datum] : store_) {
    (void)id;
    if (!datum.closed) ++stats_.leftover_data;
  }
}

// ---- replies ----

void Server::reply_ack(int dest) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kAck));
  comm_.send(dest, kTagResponse, w);
}

void Server::reply_error(int dest, const std::string& message) {
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kError));
  w.put_str(message);
  comm_.send(dest, kTagResponse, w);
}

void Server::send_basic(int dest, const ser::Writer& w) {
  ++basic_count_;
  comm_.send(dest, kTagServer, w);
}

}  // namespace ilps::adlb
