#include "adlb/server.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "ckpt/ckpt.h"
#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ilps::adlb {

Server::Server(mpi::Comm& comm, const Config& cfg, const ckpt::Snapshot* restore_from)
    : comm_(comm), cfg_(cfg) {
  const int size = comm.size();
  const int rank = comm.rank();
  if (!is_server(rank, size, cfg)) {
    throw CommError("adlb::Server constructed on a client rank");
  }
  if (num_clients(size, cfg) <= 0) {
    throw CommError("adlb: configuration leaves no client ranks");
  }
  index_ = server_index(rank, size, cfg);
  next_server_ = server_rank((index_ + 1) % cfg.nservers, size, cfg);
  for (int c = 0; c < num_clients(size, cfg); ++c) {
    if (home_server(c, size, cfg) == rank) my_clients_.push_back(c);
  }
  for (int s = 0; s < cfg.nservers; ++s) {
    int r = server_rank(s, size, cfg);
    if (r != rank) peer_servers_.push_back(r);
  }
  untargeted_.resize(static_cast<size_t>(cfg.ntypes));
  parked_.resize(static_cast<size_t>(cfg.ntypes));
  announced_.assign(static_cast<size_t>(cfg.ntypes), false);
  hungry_peers_.resize(static_cast<size_t>(cfg.ntypes));
  rng_ = Rng(0xAD1Bu + static_cast<uint64_t>(index_));
  if (restore_from != nullptr) {
    if (cfg.nservers != 1) {
      throw CommError("adlb: checkpoint restore requires nservers == 1");
    }
    restore(*restore_from);
  }
}

void Server::serve() {
  // A server with no clients of its own still shards data and rebalances.
  const bool heartbeats = cfg_.ft && cfg_.heartbeat_timeout_ms > 0;
  if (heartbeats) {
    const double now = comm_.wtime();
    for (int c : my_clients_) last_seen_[c] = now;
  }
  // Live utilization gauge: message-handling time accumulated while the
  // server runs (the telemetry plane's per-rank busy view).
  obs::Gauge* busy_gauge =
      obs::metrics_enabled()
          ? &obs::metrics().gauge("rank.busy_seconds.r" + std::to_string(comm_.rank()))
          : nullptr;
  double busy_total = 0;
  while (!done_) {
    bool activity = false;
    std::optional<mpi::Message> m;
    if (heartbeats || !deferred_.empty()) {
      // Poll so a silent (hung/lost) client is noticed — and a requeue
      // backoff expires — even when no traffic arrives to wake the loop.
      const double poll_s =
          heartbeats
              ? std::max(0.001, static_cast<double>(cfg_.heartbeat_timeout_ms) / 4000.0)
              : 0.001;
      // ANY_TAG no longer covers reserved tags, so the fault-aware server
      // loop asks for death notices (kTagFault) explicitly.
      m = comm_.recv_for(poll_s, mpi::ANY_SOURCE, mpi::ANY_TAG_OR_FAULT);
      if (flush_deferred()) activity = true;
      if (heartbeats) check_heartbeats();
    } else {
      m = comm_.recv(mpi::ANY_SOURCE, mpi::ANY_TAG_OR_FAULT);
    }
    if (done_) break;
    if (m) {
      const double started = busy_gauge != nullptr ? comm_.wtime() : 0;
      dispatch(*m);
      comm_.recycle(std::move(m->data));  // feeds the reply-writer freelist
      activity = true;
      if (busy_gauge != nullptr) {
        busy_total += comm_.wtime() - started;
        busy_gauge->set(busy_total);
      }
    }
    if (activity && !done_) after_dispatch();
  }
}

void Server::dispatch(const mpi::Message& m) {
  obs::Span handle(obs::EventKind::kServerHandle, m.tag,
                   static_cast<int64_t>(m.data.size()));
  if (m.tag == kTagRequest) {
    handle_request(m);
  } else if (m.tag == kTagServer) {
    handle_server(m);
  } else if (m.tag == mpi::kTagFault) {
    on_rank_dead_notice(m.source);
  } else {
    throw CommError("adlb server: unexpected tag " + std::to_string(m.tag));
  }
}

void Server::after_dispatch() {
  // Coalesced forwards leave before any token decision: quiet() treats a
  // non-empty outbox as pending work, so flushing here keeps Safra's
  // bookkeeping exact (the flush itself counts as basic traffic).
  flush_forwards();
  evaluate_hunger();
  if (pending_token_) try_forward_token();
  if (index_ == 0 && !token_outstanding_ && quiet()) initiate_token();
}

// ---- client requests ----

void Server::handle_request(const mpi::Message& m) {
  ser::Reader r = m.reader();
  Op op = static_cast<Op>(r.get_u8());
  if (cfg_.ft) {
    // Any RPC proves the client is alive; only Get / TaskFailed mark the
    // in-flight unit finished (data ops happen mid-task).
    last_seen_[m.source] = comm_.wtime();
  }
  switch (op) {
    case Op::kPut: {
      WorkUnit unit = read_work_unit(r);
      ++stats_.puts;
      name_unit(unit);
      maybe_spawn_notice(unit);
      // Attribute the accept (and the sends it triggers) to the unit's
      // request, so server-side events stitch into the request trace.
      obs::RequestScope rscope(unit.req);
      obs::instant(obs::EventKind::kAdlbPut, unit.id, unit.type);
      handle_put(m.source, unit);
      break;
    }
    case Op::kPutBatch: {
      uint64_t n = r.get_u64();
      std::string error;
      for (uint64_t i = 0; i < n; ++i) {
        WorkUnit unit = read_work_unit(r);
        ++stats_.puts;
        name_unit(unit);
        maybe_spawn_notice(unit);
        obs::RequestScope rscope(unit.req);
        obs::instant(obs::EventKind::kAdlbPut, unit.id, unit.type);
        if (unit.type < 0 || unit.type >= cfg_.ntypes) {
          error = "put: invalid work type " + std::to_string(unit.type);
          continue;
        }
        try {
          accept_unit(std::move(unit));
        } catch (const DataError& e) {
          error = e.what();
        }
      }
      if (error.empty()) {
        reply_ack(m.source);
      } else {
        reply_error(m.source, error);
      }
      break;
    }
    case Op::kDataBatch: {
      // Pipelined ack-only datum sub-ops. Failures are collected, not
      // fatal to the batch: each sub-op reads its arguments fully before
      // it can throw, so parsing stays aligned and later sub-ops still
      // apply (mirroring what independent single-op RPCs would do). One
      // kAckBatch answers the whole batch; the first error rides along
      // and surfaces client-side as a deferred DataError.
      uint64_t n = r.get_u64();
      std::string error;
      for (uint64_t i = 0; i < n; ++i) {
        Op sub = static_cast<Op>(r.get_u8());
        ++stats_.data_ops;
        try {
          apply_data_mutation(m.source, sub, r);
        } catch (const DataError& e) {
          if (error.empty()) error = e.what();
        }
      }
      ser::Writer w = reply_writer(m.source);
      w.put_u8(static_cast<uint8_t>(Op::kAckBatch));
      w.put_bool(error.empty());
      if (!error.empty()) w.put_str(error);
      comm_.send(m.source, kTagResponse, std::move(w));
      break;
    }
    case Op::kGet: {
      int type = r.get_i32();
      ++stats_.gets;
      obs::instant(obs::EventKind::kAdlbGet, m.source, type);
      if (cfg_.ft) note_completion(m.source);
      handle_get(m.source, type);
      break;
    }
    case Op::kTaskFailed: {
      handle_task_failed(m.source, r);
      break;
    }
    default:
      handle_data_op(m.source, op, r);
      break;
  }
}

void Server::maybe_spawn_notice(WorkUnit& unit) {
  if (unit.req == 0 || (unit.flags & (kUnitServeCtl | kUnitCounted)) != 0) return;
  unit.flags |= kUnitCounted;
  const int nclients = num_clients(comm_.size(), cfg_);
  if (unit.owner < 0 || unit.owner >= nclients) return;  // untracked request
  WorkUnit notice;
  notice.type = kTypeControl;
  notice.priority = 1 << 20;
  notice.target = unit.owner;
  notice.payload = "+";
  notice.req = unit.req;
  notice.owner = unit.owner;
  notice.flags = kUnitServeCtl | kUnitCounted;
  accept_unit(std::move(notice));
}

void Server::handle_put(int source, const WorkUnit& unit) {
  if (unit.type < 0 || unit.type >= cfg_.ntypes) {
    reply_error(source, "put: invalid work type " + std::to_string(unit.type));
    return;
  }
  try {
    accept_unit(unit);
  } catch (const DataError& e) {
    reply_error(source, e.what());
    return;
  }
  reply_ack(source);
}

// Name the unit once, on the first server that sees it; the id rides
// along through forwards, requeues, and trace events (retry tracking
// needs it under ft, the tracer always benefits from it).
void Server::name_unit(WorkUnit& unit) {
  if (unit.id == 0) {
    unit.id = (static_cast<int64_t>(index_) << 48) | next_unit_id_++;
  }
}

void Server::accept_unit(WorkUnit unit) {
  const int size = comm_.size();
  name_unit(unit);
  if (cfg_.ft) {
    // Restart replay: a work unit whose payload already completed before
    // the checkpoint is not re-dispatched — its effects live in the
    // restored store. Units that manage container write refcounts are
    // exempt (their write_incr must re-run against the reset refcounts).
    if (restored_ && unit.type == kTypeWork &&
        unit.payload.find("write_incr") == std::string::npos) {
      auto it = done_fingerprints_.find(ckpt::fingerprint(unit.payload));
      if (it != done_fingerprints_.end() && it->second > 0) {
        if (--it->second == 0) done_fingerprints_.erase(it);
        ++stats_.replay_skips;
        return;
      }
    }
    // Work targeted at a dead rank can never be delivered; release the
    // constraint instead of deadlocking.
    if (unit.target != kAnyRank && dead_clients_.count(unit.target) > 0) {
      unit.target = kAnyRank;
    }
  }
  if (unit.target != kAnyRank) {
    if (unit.target < 0 || unit.target >= num_clients(size, cfg_)) {
      throw DataError("put: target rank " + std::to_string(unit.target) + " out of range");
    }
    int home = home_server(unit.target, size, cfg_);
    if (home != comm_.rank()) {
      // Relay to the target's home server (coalesced per destination).
      forward_unit(home, unit);
      return;
    }
    // Match to the target if it is parked with the right type. The index
    // makes the (common) miss an O(1) map probe instead of a scan of every
    // parked client; only a hit pays for the queue-entry removal.
    auto parked_it = parked_clients_.find(unit.target);
    if (parked_it != parked_clients_.end() && parked_it->second == unit.type) {
      auto& queue = parked_[static_cast<size_t>(unit.type)];
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (*it == unit.target) {
          queue.erase(it);
          break;
        }
      }
      parked_clients_.erase(parked_it);
      deliver(unit.target, unit);
      return;
    }
    targeted_[{unit.target, unit.type}].push_back(unit);
    return;
  }

  // Untargeted: hand to a parked local client if any.
  announced_[static_cast<size_t>(unit.type)] = false;
  auto& queue = parked_[static_cast<size_t>(unit.type)];
  if (!queue.empty()) {
    int client = queue.front();
    queue.pop_front();
    parked_clients_.erase(client);
    deliver(client, unit);
    return;
  }
  // No local demand: relay to a hungry peer, if one announced itself.
  auto& hungry = hungry_peers_[static_cast<size_t>(unit.type)];
  if (!hungry.empty()) {
    int peer = hungry.front();
    hungry.pop_front();
    forward_unit(peer, unit);
    return;
  }
  untargeted_[static_cast<size_t>(unit.type)].emplace(
      std::make_pair(-unit.priority, seq_++), unit);
}

void Server::deliver(int client, const WorkUnit& unit) {
  obs::RequestScope rscope(unit.req);
  ser::Writer w = reply_writer(client);
  w.put_u8(static_cast<uint8_t>(Op::kGotWork));
  write_work_unit(w, unit);
  comm_.send(client, kTagResponse, std::move(w));
  ++stats_.matches;
  obs::instant(obs::EventKind::kTaskDispatch, unit.id, client);
  // Remember what each worker is running so a dead worker's unit can be
  // requeued. Engines run control tasks (rule bodies); re-running those
  // is not safe in place, so only worker units are tracked.
  if (cfg_.ft && unit.type == kTypeWork && !is_engine_client(client)) {
    inflight_[client] = unit;
  }
  // Delivery starts a task: measure silence from here, not from the
  // client's last RPC. A client handed work after idling a long time in
  // the parked queue would otherwise look instantly timed-out (its
  // liveness-proving store arrives only after the next heartbeat check).
  if (cfg_.ft && cfg_.heartbeat_timeout_ms > 0) last_seen_[client] = comm_.wtime();
}

void Server::deliver_batch(int client, std::vector<WorkUnit>& units) {
  ser::Writer w = reply_writer(client);
  w.put_u8(static_cast<uint8_t>(Op::kGotWorkBatch));
  w.put_u64(units.size());
  for (const WorkUnit& unit : units) {
    obs::RequestScope rscope(unit.req);
    write_work_unit(w, unit);
    ++stats_.matches;
    obs::instant(obs::EventKind::kTaskDispatch, unit.id, client);
  }
  comm_.send(client, kTagResponse, std::move(w));
}

void Server::handle_get(int source, int type) {
  if (type < 0 || type >= cfg_.ntypes) {
    reply_error(source, "get: invalid work type " + std::to_string(type));
    return;
  }
  if (cfg_.ft && dead_clients_.count(source) > 0) {
    // A client declared dead by heartbeat turned out to be alive (e.g. a
    // delayed link). Its unit was already requeued; fence it off.
    ser::Writer w = reply_writer(source);
    w.put_u8(static_cast<uint8_t>(Op::kShutdownClient));
    comm_.send(source, kTagResponse, std::move(w));
    return;
  }
  // Batched delivery (never under ft: in-flight tracking and heartbeat
  // bookkeeping assume one delivered unit per client at a time).
  const int batch = (!cfg_.ft && cfg_.get_batch > 1) ? cfg_.get_batch : 1;
  // Targeted work first (ADLB's matching order), then untargeted by
  // priority. Targeted units can only ever go to this client, so a batch
  // takes as many as the cap allows.
  auto targeted_it = targeted_.find({source, type});
  if (targeted_it != targeted_.end() && !targeted_it->second.empty()) {
    auto& q = targeted_it->second;
    if (batch == 1 || q.size() == 1) {
      WorkUnit unit = std::move(q.front());
      q.pop_front();
      if (q.empty()) targeted_.erase(targeted_it);
      deliver(source, unit);
      return;
    }
    std::vector<WorkUnit> units;
    while (!q.empty() && static_cast<int>(units.size()) < batch) {
      units.push_back(std::move(q.front()));
      q.pop_front();
    }
    if (q.empty()) targeted_.erase(targeted_it);
    deliver_batch(source, units);
    return;
  }
  auto& queue = untargeted_[static_cast<size_t>(type)];
  if (!queue.empty()) {
    WorkUnit unit = std::move(queue.begin()->second);
    queue.erase(queue.begin());
    // Prefetch extra untargeted units, but leave half the queue behind so
    // other local clients and hungry peers still find work to take.
    const size_t extra =
        std::min(static_cast<size_t>(batch - 1), queue.size() / 2);
    if (extra == 0) {
      deliver(source, unit);
      return;
    }
    std::vector<WorkUnit> units;
    units.push_back(std::move(unit));
    for (size_t i = 0; i < extra; ++i) {
      units.push_back(std::move(queue.begin()->second));
      queue.erase(queue.begin());
    }
    deliver_batch(source, units);
    return;
  }
  obs::instant(obs::EventKind::kAdlbPark, source, type);
  parked_[static_cast<size_t>(type)].push_back(source);
  parked_clients_.emplace(source, type);
}

// ---- fault tolerance ----

void Server::handle_task_failed(int source, ser::Reader& r) {
  WorkUnit unit = read_work_unit(r);
  std::string why = r.get_str();
  ++stats_.task_failures;
  obs::instant(obs::EventKind::kTaskFailed, unit.id, source);
  inflight_.erase(source);
  reply_ack(source);  // the worker itself is healthy and keeps serving
  requeue_or_fail(std::move(unit), why);
}

void Server::on_rank_dead_notice(int rank) {
  if (is_server(rank, comm_.size(), cfg_)) {
    // A dead peer server loses its shard and ring position; not
    // recoverable in place.
    comm_.abort("ilps-ft-restart: server rank " + std::to_string(rank) + " died");
    done_ = true;
    return;
  }
  on_client_dead(rank);
}

void Server::on_client_dead(int client) {
  if (dead_clients_.count(client) > 0) return;
  dead_clients_.insert(client);
  if (!cfg_.ft) {
    comm_.abort("ilps: rank " + std::to_string(client) +
                " died and fault tolerance is disabled");
    done_ = true;
    return;
  }
  if (is_engine_client(client)) {
    // The engine holds unserializable rule state; recovery is a restart
    // from the latest checkpoint, driven by runtime::run_with_faults.
    comm_.abort("ilps-ft-restart: engine rank " + std::to_string(client) + " died");
    done_ = true;
    return;
  }
  // A dead client cannot receive work: drop its parked entries.
  if (parked_clients_.erase(client) > 0) {
    for (auto& queue : parked_) {
      for (auto it = queue.begin(); it != queue.end();) {
        it = (*it == client) ? queue.erase(it) : std::next(it);
      }
    }
  }
  // Requeue whatever it was running (tracked on its home server).
  auto inflight = inflight_.find(client);
  if (inflight != inflight_.end()) {
    WorkUnit unit = std::move(inflight->second);
    inflight_.erase(inflight);
    requeue_or_fail(std::move(unit), "rank " + std::to_string(client) + " died");
    if (done_) return;
  }
  // Queued work aimed specifically at the dead rank is retargeted. The
  // map is ordered by (rank, type), so the dead rank's entries form a
  // contiguous range — no full scan.
  std::vector<WorkUnit> orphaned;
  for (auto it = targeted_.lower_bound({client, std::numeric_limits<int>::min()});
       it != targeted_.end() && it->first.first == client;) {
    for (auto& u : it->second) orphaned.push_back(std::move(u));
    it = targeted_.erase(it);
  }
  for (auto& u : orphaned) {
    u.target = kAnyRank;
    accept_unit(std::move(u));
  }
  // With every worker dead, queued work can never run again.
  bool any_worker_alive = false;
  const int nclients = num_clients(comm_.size(), cfg_);
  for (int c = cfg_.nengines; c < nclients; ++c) {
    if (dead_clients_.count(c) == 0) {
      any_worker_alive = true;
      break;
    }
  }
  if (!any_worker_alive) {
    comm_.abort("ilps-ft-restart: all worker ranks died");
    done_ = true;
  }
}

void Server::check_heartbeats() {
  const double timeout = static_cast<double>(cfg_.heartbeat_timeout_ms) / 1000.0;
  const double now = comm_.wtime();
  for (int c : my_clients_) {
    if (dead_clients_.count(c) > 0) continue;
    if (is_engine_client(c)) continue;           // engines are never killed by silence
    if (parked_clients_.count(c) > 0) continue;  // parked = idle, legitimately quiet
    auto it = last_seen_.find(c);
    if (it == last_seen_.end()) {
      last_seen_[c] = now;
      continue;
    }
    if (now - it->second > timeout) {
      ++stats_.heartbeat_deaths;
      obs::instant(obs::EventKind::kHeartbeatDeath, c,
                   static_cast<int64_t>((now - it->second) * 1000.0));
      log::warn("adlb: client ", c, " silent beyond heartbeat timeout, declaring dead");
      on_client_dead(c);
      if (done_) return;
    }
  }
}

void Server::requeue_or_fail(WorkUnit unit, const std::string& why) {
  ++unit.attempts;
  if (unit.attempts > cfg_.max_task_retries) {
    comm_.abort("ilps-task-failed: task <" + std::to_string(unit.id) + "> failed " +
                std::to_string(unit.attempts) + " time(s), retries exhausted: " + why);
    done_ = true;
    return;
  }
  ++stats_.requeues;
  obs::instant(obs::EventKind::kRequeue, unit.id, unit.attempts);
  log::info("adlb: requeueing task <", unit.id, "> (failure ", unit.attempts, "): ", why);
  if (cfg_.retry_backoff_ms > 0) {
    // Exponential backoff: 1x, 2x, 4x, ... the base delay per attempt.
    const int shift = std::min(unit.attempts - 1, 10);
    const double delay_s =
        static_cast<double>(cfg_.retry_backoff_ms << shift) / 1000.0;
    deferred_.emplace_back(comm_.wtime() + delay_s, std::move(unit));
    return;
  }
  accept_unit(std::move(unit));
}

bool Server::flush_deferred() {
  if (deferred_.empty()) return false;
  const double now = comm_.wtime();
  bool any = false;
  for (size_t i = 0; i < deferred_.size();) {
    if (deferred_[i].first <= now) {
      WorkUnit unit = std::move(deferred_[i].second);
      deferred_.erase(deferred_.begin() + static_cast<ptrdiff_t>(i));
      accept_unit(std::move(unit));
      any = true;
    } else {
      ++i;
    }
  }
  return any;
}

void Server::note_completion(int client) {
  auto it = inflight_.find(client);
  if (it == inflight_.end()) return;
  // Units that manage container write refcounts are re-run on restart
  // (see accept_unit), so they are not fingerprinted as done.
  if (it->second.payload.find("write_incr") == std::string::npos) {
    ++done_fingerprints_[ckpt::fingerprint(it->second.payload)];
  }
  inflight_.erase(it);
  ++tasks_completed_;
  maybe_checkpoint();
}

void Server::maybe_checkpoint() {
  if (cfg_.ckpt_interval <= 0 || cfg_.ckpt_dir.empty()) return;
  if (tasks_completed_ % cfg_.ckpt_interval != 0) return;
  ckpt::Snapshot s = snapshot();
  s.seq = ckpt_seq_++;
  ckpt::write_checkpoint(cfg_.ckpt_dir, s);
  ++stats_.checkpoints;
}

ckpt::Snapshot Server::snapshot() const {
  ckpt::Snapshot s;
  s.seq = ckpt_seq_;
  s.tasks_completed = tasks_completed_;
  s.data.reserve(store_.size());
  for (const auto& [id, d] : store_) {
    ckpt::DatumRecord rec;
    rec.id = id;
    rec.type = static_cast<uint8_t>(d.type);
    rec.closed = d.closed;
    rec.has_value = d.has_value;
    rec.value = d.value;
    rec.entries.assign(d.entries.begin(), d.entries.end());
    rec.read_refs = d.read_refs;
    rec.write_refs = d.write_refs;
    s.data.push_back(std::move(rec));
  }
  // Deterministic file contents regardless of hash-map iteration order.
  std::sort(s.data.begin(), s.data.end(),
            [](const ckpt::DatumRecord& a, const ckpt::DatumRecord& b) { return a.id < b.id; });
  for (const auto& [fp, n] : done_fingerprints_) {
    for (int i = 0; i < n; ++i) s.done_tasks.push_back(fp);
  }
  std::sort(s.done_tasks.begin(), s.done_tasks.end());
  return s;
}

void Server::restore(const ckpt::Snapshot& snap) {
  obs::Span span(obs::EventKind::kCkptRestore, snap.seq,
                 static_cast<int64_t>(snap.data.size()));
  restored_ = true;
  ckpt_seq_ = snap.seq + 1;
  tasks_completed_ = snap.tasks_completed;
  for (const auto& rec : snap.data) {
    Datum d;
    d.type = static_cast<DataType>(rec.type);
    d.closed = rec.closed;
    d.has_value = rec.has_value;
    d.value = rec.value;
    for (const auto& [k, v] : rec.entries) d.entries.emplace(k, v);
    d.read_refs = rec.read_refs;
    // Open datums are re-closed by the replayed program; their write
    // refcount bookkeeping restarts from scratch.
    d.write_refs = rec.closed ? rec.write_refs : 1;
    store_.emplace(rec.id, std::move(d));
  }
  for (uint64_t fp : snap.done_tasks) ++done_fingerprints_[fp];
  log::info("adlb: restored checkpoint seq ", snap.seq, ": ", store_.size(), " datums, ",
            snap.done_tasks.size(), " completed tasks");
}

void Server::evaluate_hunger() {
  for (int t = 0; t < cfg_.ntypes; ++t) {
    auto ts = static_cast<size_t>(t);
    if (!parked_[ts].empty() && untargeted_[ts].empty() && !announced_[ts] &&
        !peer_servers_.empty()) {
      ser::Writer w;
      w.put_u8(static_cast<uint8_t>(Op::kHungry));
      w.put_i32(t);
      for (int peer : peer_servers_) send_basic(peer, w);
      announced_[ts] = true;
      ++stats_.hungry_notices;
      obs::instant(obs::EventKind::kHungry, t);
    }
  }
}

void Server::send_batch(int peer, int type) {
  auto& queue = untargeted_[static_cast<size_t>(type)];
  if (queue.empty()) return;
  size_t take = cfg_.steal_half ? (queue.size() + 1) / 2 : 1;
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kForwardPut));
  w.put_u64(take);
  // Ship the back (lowest-priority) half, keeping urgent work local.
  for (size_t i = 0; i < take; ++i) {
    auto last = std::prev(queue.end());
    write_work_unit(w, last->second);
    queue.erase(last);
  }
  send_basic(peer, w);
  ++stats_.batches_sent;
  stats_.units_rebalanced += take;
  ++stats_.steal_batches;
  stats_.steal_batch_units += take;
  obs::instant(obs::EventKind::kSteal, peer, static_cast<int64_t>(take));
}

void Server::forward_unit(int dest, const WorkUnit& unit) {
  ++stats_.forwards;
  if (cfg_.ft) {
    // One message per unit: the FaultPlan's send-count triggers and the
    // per-RPC liveness bookkeeping assume it.
    ser::Writer w;
    w.put_u8(static_cast<uint8_t>(Op::kForwardPut));
    w.put_u64(1);
    write_work_unit(w, unit);
    send_basic(dest, w);
    return;
  }
  ForwardBatch& batch = forward_outbox_[dest];
  if (batch.n == 0) {
    batch.w = ser::Writer();
    batch.w.put_u8(static_cast<uint8_t>(Op::kForwardPut));
    batch.w.put_u64(0);  // placeholder; count rides separately
  }
  write_work_unit(batch.w, unit);
  ++batch.n;
}

void Server::flush_forwards() {
  if (forward_outbox_.empty()) return;
  for (auto& [dest, batch] : forward_outbox_) {
    if (batch.n == 0) continue;
    std::vector<std::byte> buf = batch.w.take();
    const uint64_t n = batch.n;
    std::memcpy(buf.data() + 1, &n, sizeof n);
    ++basic_count_;  // send_basic's accounting, for the buffer overload
    comm_.send(dest, kTagServer, std::move(buf));
    ++stats_.steal_batches;
    stats_.steal_batch_units += n;
  }
  forward_outbox_.clear();
}

// ---- server <-> server ----

void Server::handle_server(const mpi::Message& m) {
  ser::Reader r = m.reader();
  Op op = static_cast<Op>(r.get_u8());
  switch (op) {
    case Op::kForwardPut: {
      --basic_count_;
      black_ = true;
      uint64_t n = r.get_u64();
      for (uint64_t i = 0; i < n; ++i) accept_unit(read_work_unit(r));
      break;
    }
    case Op::kHungry: {
      --basic_count_;
      black_ = true;
      int type = r.get_i32();
      if (type < 0 || type >= cfg_.ntypes) break;
      if (!untargeted_[static_cast<size_t>(type)].empty()) {
        send_batch(m.source, type);
      } else {
        auto& hungry = hungry_peers_[static_cast<size_t>(type)];
        bool known = false;
        for (int peer : hungry) {
          if (peer == m.source) known = true;
        }
        if (!known) hungry.push_back(m.source);
      }
      break;
    }
    case Op::kToken: {
      ++stats_.tokens;
      int64_t q = r.get_i64();
      bool black = r.get_bool();
      obs::instant(obs::EventKind::kTermToken, q, black ? 1 : 0);
      if (index_ == 0) {
        token_outstanding_ = false;
        if (quiet() && !black && !black_ && q + basic_count_ == 0) {
          shutdown_all();
        }
        // Otherwise after_dispatch() re-initiates once quiet.
        black_ = false;
      } else {
        pending_token_ = {q, black};
      }
      break;
    }
    case Op::kShutdownServer: {
      release_parked();
      done_ = true;
      break;
    }
    default:
      throw CommError("adlb server: unexpected server opcode");
  }
}

// ---- data store ----

Server::Datum& Server::find_datum(int64_t id, const char* op) {
  auto it = store_.find(id);
  if (it == store_.end()) {
    throw DataError(std::string(op) + ": datum <" + std::to_string(id) + "> does not exist");
  }
  return it->second;
}

uint32_t Server::do_close(int64_t id, Datum& datum, int rpc_source) {
  datum.closed = true;
  if (!datum.subscribers.empty()) {
    obs::instant(obs::EventKind::kDataNotify, id,
                 static_cast<int64_t>(datum.subscribers.size()));
  }
  uint32_t self_notifications = 0;
  for (const auto& [rank, notify_type] : datum.subscribers) {
    WorkUnit unit;
    unit.type = notify_type;
    unit.priority = cfg_.priority_notifications ? 1 << 20 : 0;
    unit.target = rank;
    unit.payload = std::to_string(id);
    accept_unit(unit);
    ++stats_.notifications;
    if (rank == rpc_source) ++self_notifications;
  }
  datum.subscribers.clear();
  return self_notifications;
}

uint64_t Server::epoch_of(int64_t id) const {
  auto it = gc_epochs_.find(id);
  return it == gc_epochs_.end() ? 0 : it->second;
}

void Server::write_retrieve_result(ser::Writer& w, int source, int64_t id, const Datum& d) {
  w.put_str(d.value);
  // closed is already established by the caller; a live datum's read
  // refcount is positive (zero deletes immediately), but ft tombstones
  // sit at zero and must not be cached.
  const bool cacheable = d.read_refs > 0;
  w.put_bool(cacheable);
  w.put_u64(epoch_of(id));
  // Under ft clients never cache and nothing is GC'd (tombstones), so
  // tracking handouts would only accumulate memory.
  if (cacheable && !cfg_.ft) handouts_[id].insert(source);
}

void Server::gc_datum(int64_t id) {
  // Bump the epoch first: any client holding this incarnation's bytes
  // sees the invalidation (on its next reply) before it can possibly see
  // a recreation of the id, because both travel the same ordered channel.
  const uint64_t epoch = ++gc_epochs_[id];
  auto h = handouts_.find(id);
  if (h != handouts_.end()) {
    for (int client : h->second) pending_inval_[client].emplace_back(id, epoch);
    handouts_.erase(h);
  }
  store_.erase(id);
}

// The ack-only mutations, shared verbatim between single-op RPCs (which
// wrap the returned count in a kAck) and kDataBatch (which coalesces the
// whole batch into one kAckBatch). Every case reads its full argument
// list before any validation can throw — the batch loop relies on that to
// keep parsing past a failed sub-op.
uint32_t Server::apply_data_mutation(int source, Op op, ser::Reader& r) {
  switch (op) {
    case Op::kCreate: {
      int64_t id = r.get_i64();
      auto type = static_cast<DataType>(r.get_u8());
      int64_t req = r.get_i64();
      if (store_.count(id) > 0) {
        // Replay (restart or retried task): re-creating the same id
        // with the same type is idempotent under fault tolerance.
        if (cfg_.ft && store_[id].type == type) return 0;
        throw DataError("create: datum <" + std::to_string(id) + "> already exists");
      }
      Datum d;
      d.type = type;
      store_.emplace(id, std::move(d));
      if (req != 0) req_index_[req].push_back(id);
      return 0;
    }
    case Op::kStore: {
      int64_t id = r.get_i64();
      bool close = r.get_bool();
      std::string value = r.get_str();
      Datum& d = find_datum(id, "store");
      if (d.closed) {
        // Replay writing back the identical value is idempotent; a
        // different value is still a real double assignment.
        if (cfg_.ft && d.has_value && d.value == value) return 0;
        throw DataError("store: datum <" + std::to_string(id) +
                        "> already closed (double assignment)");
      }
      d.value = std::move(value);
      d.has_value = true;
      return close ? do_close(id, d, source) : 0;
    }
    case Op::kCloseDatum: {
      int64_t id = r.get_i64();
      Datum& d = find_datum(id, "close");
      if (d.closed) {
        if (cfg_.ft) return 0;  // replayed close of a void future
        throw DataError("close: datum <" + std::to_string(id) + "> already closed");
      }
      return do_close(id, d, source);
    }
    case Op::kRefIncr: {
      int64_t id = r.get_i64();
      int delta = r.get_i32();
      Datum& d = find_datum(id, "refcount");
      d.read_refs += delta;
      if (d.read_refs < 0) {
        // Replayed decrements may overshoot; clamp instead of failing.
        if (cfg_.ft) {
          d.read_refs = 0;
        } else {
          throw DataError("refcount: datum <" + std::to_string(id) + "> underflow");
        }
      }
      // Under fault tolerance the datum is kept as a tombstone: a
      // restart replays reads that the refcounts say already happened.
      if (d.read_refs == 0 && !cfg_.ft) gc_datum(id);
      return 0;
    }
    case Op::kWriteIncr: {
      int64_t id = r.get_i64();
      int delta = r.get_i32();
      Datum& d = find_datum(id, "write refcount");
      if (d.closed) {
        if (cfg_.ft) return 0;  // replayed decrement after the close already happened
        throw DataError("write refcount: datum <" + std::to_string(id) + "> already closed");
      }
      d.write_refs += delta;
      if (d.write_refs < 0) {
        throw DataError("write refcount: datum <" + std::to_string(id) + "> underflow");
      }
      return d.write_refs == 0 ? do_close(id, d, source) : 0;
    }
    case Op::kInsert: {
      int64_t id = r.get_i64();
      std::string key = r.get_str();
      std::string value = r.get_str();
      Datum& d = find_datum(id, "insert");
      if (d.type != DataType::kContainer) {
        throw DataError("insert: datum <" + std::to_string(id) + "> is not a container");
      }
      {
        // Replayed insert of the identical (key, value) is idempotent,
        // even after the container closed.
        auto prev = d.entries.find(key);
        if (cfg_.ft && prev != d.entries.end() && prev->second == value) return 0;
      }
      if (d.closed) {
        throw DataError("insert: container <" + std::to_string(id) + "> is closed");
      }
      if (d.entries.count(key) > 0) {
        throw DataError("insert: container <" + std::to_string(id) + "> already has key \"" +
                        key + "\"");
      }
      d.entries.emplace(std::move(key), std::move(value));
      return 0;
    }
    default:
      // Not an ack-only opcode: the batch framing itself is corrupt, and
      // the reader can no longer be trusted to stay aligned.
      throw CommError("adlb: opcode " + std::to_string(static_cast<int>(op)) +
                      " is not batchable");
  }
}

void Server::handle_data_op(int source, Op op, ser::Reader& r) {
  ++stats_.data_ops;
  try {
    switch (op) {
      case Op::kCreate:
      case Op::kStore:
      case Op::kCloseDatum:
      case Op::kRefIncr:
      case Op::kWriteIncr:
      case Op::kInsert: {
        reply_ack(source, apply_data_mutation(source, op, r));
        return;
      }
      case Op::kRetrieve: {
        int64_t id = r.get_i64();
        Datum& d = find_datum(id, "retrieve");
        if (!d.closed) {
          throw DataError("retrieve: datum <" + std::to_string(id) + "> is not closed");
        }
        ser::Writer w = reply_writer(source);
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        write_retrieve_result(w, source, id, d);
        comm_.send(source, kTagResponse, std::move(w));
        return;
      }
      case Op::kMultiRetrieve: {
        // One reply carries every id's result; per-id status instead of a
        // batch-wide error, so the client can name the offending id.
        uint64_t n = r.get_u64();
        ser::Writer w = reply_writer(source);
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_u64(n);
        for (uint64_t i = 0; i < n; ++i) {
          int64_t id = r.get_i64();
          auto it = store_.find(id);
          if (it == store_.end()) {
            w.put_u8(0);
            w.put_str("retrieve: datum <" + std::to_string(id) + "> does not exist");
            continue;
          }
          if (!it->second.closed) {
            w.put_u8(0);
            w.put_str("retrieve: datum <" + std::to_string(id) + "> is not closed");
            continue;
          }
          w.put_u8(1);
          write_retrieve_result(w, source, id, it->second);
        }
        comm_.send(source, kTagResponse, std::move(w));
        return;
      }
      case Op::kExists: {
        int64_t id = r.get_i64();
        ser::Writer w = reply_writer(source);
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_bool(store_.count(id) > 0);
        comm_.send(source, kTagResponse, std::move(w));
        return;
      }
      case Op::kTypeOf: {
        int64_t id = r.get_i64();
        Datum& d = find_datum(id, "typeof");
        ser::Writer w = reply_writer(source);
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_u8(static_cast<uint8_t>(d.type));
        comm_.send(source, kTagResponse, std::move(w));
        return;
      }
      case Op::kSubscribe: {
        int64_t id = r.get_i64();
        int notify_type = r.get_i32();
        Datum& d = find_datum(id, "subscribe");
        ser::Writer w = reply_writer(source);
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_bool(d.closed);
        if (!d.closed) {
          obs::instant(obs::EventKind::kDataSubscribe, id, source);
          d.subscribers.emplace_back(source, notify_type);
        }
        comm_.send(source, kTagResponse, std::move(w));
        return;
      }
      case Op::kLookup: {
        int64_t id = r.get_i64();
        std::string key = r.get_str();
        Datum& d = find_datum(id, "lookup");
        if (d.type != DataType::kContainer) {
          throw DataError("lookup: datum <" + std::to_string(id) + "> is not a container");
        }
        ser::Writer w = reply_writer(source);
        auto it = d.entries.find(key);
        if (it == d.entries.end()) {
          w.put_u8(static_cast<uint8_t>(Op::kNoValue));
        } else {
          w.put_u8(static_cast<uint8_t>(Op::kValue));
          w.put_str(it->second);
        }
        comm_.send(source, kTagResponse, std::move(w));
        return;
      }
      case Op::kEnumerate: {
        int64_t id = r.get_i64();
        Datum& d = find_datum(id, "enumerate");
        if (d.type != DataType::kContainer) {
          throw DataError("enumerate: datum <" + std::to_string(id) + "> is not a container");
        }
        ser::Writer w = reply_writer(source);
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_u64(d.entries.size());
        for (const auto& [k, v] : d.entries) {
          w.put_str(k);
          w.put_str(v);
        }
        // A closed container's entry set is as immutable as a closed
        // scalar, so the enumeration is cacheable under the same rule.
        const bool cacheable = d.closed && d.read_refs > 0;
        w.put_bool(cacheable);
        w.put_u64(epoch_of(id));
        if (cacheable && !cfg_.ft) handouts_[id].insert(source);
        comm_.send(source, kTagResponse, std::move(w));
        return;
      }
      case Op::kFreeNamespace: {
        int64_t req = r.get_i64();
        uint64_t leftover = 0;
        uint64_t stuck = 0;
        auto it = req_index_.find(req);
        if (it != req_index_.end()) {
          for (int64_t id : it->second) {
            auto sit = store_.find(id);
            if (sit == store_.end()) continue;  // already refcount-GC'd
            const Datum& d = sit->second;
            if (!d.closed) {
              // Same diagnostics release_parked() produces at shutdown;
              // counting here (the store is swept clean below) keeps the
              // run-level leftover/stuck totals identical.
              ++leftover;
              ++stats_.leftover_data;
              if (!d.subscribers.empty()) {
                ++stuck;
                ++stats_.stuck_datums;
                obs::instant(obs::EventKind::kDatumStuck, id,
                             static_cast<int64_t>(d.subscribers.size()));
                if (stats_.stuck_datums <= 8) {
                  log::warn("adlb: datum <", id, "> never closed; ", d.subscribers.size(),
                            " subscriber(s) still waiting");
                }
              }
            }
            gc_datum(id);
          }
          req_index_.erase(it);
        }
        ser::Writer w = reply_writer(source);
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_u64(leftover);
        w.put_u64(stuck);
        comm_.send(source, kTagResponse, std::move(w));
        return;
      }
      case Op::kDatumCount: {
        ser::Writer w = reply_writer(source);
        w.put_u8(static_cast<uint8_t>(Op::kValue));
        w.put_u64(store_.size());
        comm_.send(source, kTagResponse, std::move(w));
        return;
      }
      default:
        reply_error(source, "adlb: unknown opcode " + std::to_string(static_cast<int>(op)));
        return;
    }
  } catch (const DataError& e) {
    reply_error(source, e.what());
  }
}

// ---- termination ----

bool Server::quiet() const {
  size_t accounted = parked_clients_.size();
  for (int c : my_clients_) {
    if (dead_clients_.count(c) > 0) ++accounted;  // the dead are forever quiet
  }
  if (accounted != my_clients_.size()) return false;
  if (!deferred_.empty()) return false;  // a requeued unit is pending work
  // Coalesced forwards not yet flushed are messages Safra hasn't counted.
  if (!forward_outbox_.empty()) return false;
  for (const auto& queue : untargeted_) {
    if (!queue.empty()) return false;
  }
  for (const auto& [key, queue] : targeted_) {
    (void)key;
    if (!queue.empty()) return false;
  }
  return true;
}

void Server::initiate_token() {
  // b=2 marks initiation (vs 0/1 = received token's black bit).
  obs::instant(obs::EventKind::kTermToken, 0, 2);
  if (cfg_.nservers == 1) {
    shutdown_all();
    return;
  }
  token_outstanding_ = true;
  black_ = false;
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kToken));
  w.put_i64(0);  // server 0's own count is added at the conclusion check
  w.put_bool(false);
  comm_.send(next_server_, kTagServer, w);
}

void Server::try_forward_token() {
  if (!pending_token_ || !quiet()) return;
  auto [q, black] = *pending_token_;
  pending_token_.reset();
  ser::Writer w;
  w.put_u8(static_cast<uint8_t>(Op::kToken));
  w.put_i64(q + basic_count_);
  w.put_bool(black || black_);
  black_ = false;
  comm_.send(next_server_, kTagServer, w);
}

void Server::shutdown_all() {
  obs::instant(obs::EventKind::kShutdown);
  for (int peer : peer_servers_) {
    ser::Writer w;
    w.put_u8(static_cast<uint8_t>(Op::kShutdownServer));
    comm_.send(peer, kTagServer, w);
  }
  release_parked();
  done_ = true;
}

void Server::release_parked() {
  for (auto& queue : parked_) {
    for (int client : queue) {
      ser::Writer w = reply_writer(client);
      w.put_u8(static_cast<uint8_t>(Op::kShutdownClient));
      comm_.send(client, kTagResponse, std::move(w));
    }
    queue.clear();
  }
  parked_clients_.clear();
  for (const auto& [id, datum] : store_) {
    if (!datum.closed) ++stats_.leftover_data;
    // An unclosed datum with live subscribers is the data-store view of a
    // deadlock: some rule subscribed and the close never came.
    if (!datum.closed && !datum.subscribers.empty()) {
      ++stats_.stuck_datums;
      obs::instant(obs::EventKind::kDatumStuck, id,
                   static_cast<int64_t>(datum.subscribers.size()));
      if (stats_.stuck_datums <= 8) {
        log::warn("adlb: datum <", id, "> never closed; ", datum.subscribers.size(),
                  " subscriber(s) still waiting");
      }
    }
  }
}

// ---- replies ----

ser::Writer Server::reply_writer(int dest) {
  ser::Writer w = comm_.writer();
  auto it = pending_inval_.find(dest);
  if (it == pending_inval_.end() || it->second.empty()) {
    w.put_u32(0);
    return w;
  }
  w.put_u32(static_cast<uint32_t>(it->second.size()));
  for (const auto& [id, epoch] : it->second) {
    w.put_i64(id);
    w.put_u64(epoch);
  }
  it->second.clear();
  return w;
}

void Server::reply_ack(int dest, uint32_t self_notifications) {
  ser::Writer w = reply_writer(dest);
  w.put_u8(static_cast<uint8_t>(Op::kAck));
  w.put_u32(self_notifications);
  comm_.send(dest, kTagResponse, std::move(w));
}

void Server::reply_error(int dest, const std::string& message) {
  ser::Writer w = reply_writer(dest);
  w.put_u8(static_cast<uint8_t>(Op::kError));
  w.put_str(message);
  comm_.send(dest, kTagResponse, std::move(w));
}

void Server::send_basic(int dest, const ser::Writer& w) {
  ++basic_count_;
  comm_.send(dest, kTagServer, w);
}

}  // namespace ilps::adlb
