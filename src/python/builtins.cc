// MiniPy built-in functions and the math/random modules.
#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "python/interp.h"

namespace ilps::py {

namespace {

Ref make_builtin(std::string name, std::function<Ref(std::vector<Ref>&)> fn) {
  Builtin b;
  b.name = std::move(name);
  b.fn = std::move(fn);
  return std::make_shared<Value>(std::move(b));
}

void need(const char* name, const std::vector<Ref>& args, size_t lo, size_t hi) {
  if (args.size() < lo || args.size() > hi) {
    throw PyError(std::string("TypeError: ") + name + "() got " + std::to_string(args.size()) +
                  " arguments");
  }
}

std::vector<Ref> to_items(const char* what, const Ref& v) {
  if (is_list(v)) return std::get<Value::List>(v->v);
  if (is_tuple(v)) return std::get<Value::Tuple>(v->v);
  if (is_str(v)) {
    std::vector<Ref> out;
    for (char c : as_str(v)) out.push_back(string(std::string(1, c)));
    return out;
  }
  if (is_dict(v)) {
    std::vector<Ref> out;
    for (const auto& [k, val] : std::get<Value::Dict>(v->v)) {
      (void)val;
      out.push_back(k);
    }
    return out;
  }
  throw PyError(std::string("TypeError: ") + what + "() argument is not iterable");
}

}  // namespace

void Interpreter::install_builtins() {
  auto& b = builtins_;

  b["print"] = make_builtin("print", [this](std::vector<Ref>& args) {
    std::string line;
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) line += ' ';
      line += to_str(args[i]);
    }
    print_(line);
    return none();
  });

  b["len"] = make_builtin("len", [](std::vector<Ref>& args) {
    need("len", args, 1, 1);
    const Ref& v = args[0];
    if (is_str(v)) return integer(static_cast<int64_t>(as_str(v).size()));
    if (is_list(v)) return integer(static_cast<int64_t>(std::get<Value::List>(v->v).size()));
    if (is_tuple(v)) return integer(static_cast<int64_t>(std::get<Value::Tuple>(v->v).size()));
    if (is_dict(v)) return integer(static_cast<int64_t>(std::get<Value::Dict>(v->v).size()));
    throw PyError("TypeError: object of type '" + type_name(v) + "' has no len()");
  });

  b["range"] = make_builtin("range", [](std::vector<Ref>& args) {
    need("range", args, 1, 3);
    int64_t start = 0;
    int64_t stop;
    int64_t step = 1;
    if (args.size() == 1) {
      stop = as_int(args[0]);
    } else {
      start = as_int(args[0]);
      stop = as_int(args[1]);
      if (args.size() == 3) step = as_int(args[2]);
    }
    if (step == 0) throw PyError("ValueError: range() arg 3 must not be zero");
    Value::List out;
    if (step > 0) {
      for (int64_t i = start; i < stop; i += step) out.push_back(integer(i));
    } else {
      for (int64_t i = start; i > stop; i += step) out.push_back(integer(i));
    }
    return list(std::move(out));
  });

  b["abs"] = make_builtin("abs", [](std::vector<Ref>& args) {
    need("abs", args, 1, 1);
    if (is_int(args[0]) || is_bool(args[0])) {
      int64_t v = as_int(args[0]);
      return integer(v < 0 ? -v : v);
    }
    return floating(std::fabs(as_double(args[0])));
  });

  auto minmax = [](const char* name, std::vector<Ref>& args, int sign) {
    std::vector<Ref> items = args.size() == 1 ? to_items(name, args[0]) : args;
    if (items.empty()) throw PyError(std::string("ValueError: ") + name + "() arg is empty");
    Ref best = items[0];
    for (size_t i = 1; i < items.size(); ++i) {
      if (sign * compare(items[i], best) < 0) best = items[i];
    }
    return best;
  };
  b["min"] = make_builtin("min", [minmax](std::vector<Ref>& args) {
    need("min", args, 1, 64);
    return minmax("min", args, 1);
  });
  b["max"] = make_builtin("max", [minmax](std::vector<Ref>& args) {
    need("max", args, 1, 64);
    return minmax("max", args, -1);
  });

  b["sum"] = make_builtin("sum", [](std::vector<Ref>& args) {
    need("sum", args, 1, 2);
    std::vector<Ref> items = to_items("sum", args[0]);
    bool any_float = args.size() > 1 && is_float(args[1]);
    double dacc = args.size() > 1 ? as_double(args[1]) : 0.0;
    int64_t iacc = args.size() > 1 && !any_float ? as_int(args[1]) : 0;
    for (const auto& item : items) {
      if (is_float(item)) any_float = true;
      dacc += as_double(item);
      if (!any_float) iacc += as_int(item);
    }
    if (any_float) return floating(dacc);
    return integer(iacc);
  });

  b["str"] = make_builtin("str", [](std::vector<Ref>& args) {
    need("str", args, 0, 1);
    return string(args.empty() ? "" : to_str(args[0]));
  });
  b["repr"] = make_builtin("repr", [](std::vector<Ref>& args) {
    need("repr", args, 1, 1);
    return string(to_repr(args[0]));
  });

  b["int"] = make_builtin("int", [](std::vector<Ref>& args) {
    need("int", args, 0, 1);
    if (args.empty()) return integer(0);
    const Ref& v = args[0];
    if (is_str(v)) {
      auto i = str::parse_int(as_str(v));
      if (!i) throw PyError("ValueError: invalid literal for int(): '" + as_str(v) + "'");
      return integer(*i);
    }
    if (is_float(v)) return integer(static_cast<int64_t>(as_double(v)));
    return integer(as_int(v));
  });

  b["float"] = make_builtin("float", [](std::vector<Ref>& args) {
    need("float", args, 0, 1);
    if (args.empty()) return floating(0.0);
    const Ref& v = args[0];
    if (is_str(v)) {
      auto d = str::parse_double(as_str(v));
      if (!d) throw PyError("ValueError: could not convert string to float: '" + as_str(v) + "'");
      return floating(*d);
    }
    return floating(as_double(v));
  });

  b["bool"] = make_builtin("bool", [](std::vector<Ref>& args) {
    need("bool", args, 0, 1);
    return boolean(!args.empty() && truthy(args[0]));
  });

  b["list"] = make_builtin("list", [](std::vector<Ref>& args) {
    need("list", args, 0, 1);
    if (args.empty()) return list({});
    return list(to_items("list", args[0]));
  });

  b["tuple"] = make_builtin("tuple", [](std::vector<Ref>& args) {
    need("tuple", args, 0, 1);
    if (args.empty()) return tuple({});
    return tuple(Value::Tuple(to_items("tuple", args[0])));
  });

  b["sorted"] = make_builtin("sorted", [](std::vector<Ref>& args) {
    need("sorted", args, 1, 1);
    std::vector<Ref> items = to_items("sorted", args[0]);
    std::stable_sort(items.begin(), items.end(),
                     [](const Ref& a, const Ref& b) { return compare(a, b) < 0; });
    return list(std::move(items));
  });

  b["reversed"] = make_builtin("reversed", [](std::vector<Ref>& args) {
    need("reversed", args, 1, 1);
    std::vector<Ref> items = to_items("reversed", args[0]);
    std::reverse(items.begin(), items.end());
    return list(std::move(items));
  });

  b["round"] = make_builtin("round", [](std::vector<Ref>& args) {
    need("round", args, 1, 2);
    double v = as_double(args[0]);
    if (args.size() == 2) {
      double scale = std::pow(10.0, static_cast<double>(as_int(args[1])));
      return floating(std::round(v * scale) / scale);
    }
    return integer(static_cast<int64_t>(std::llround(v)));
  });

  b["enumerate"] = make_builtin("enumerate", [](std::vector<Ref>& args) {
    need("enumerate", args, 1, 2);
    int64_t start = args.size() > 1 ? as_int(args[1]) : 0;
    Value::List out;
    for (const auto& item : to_items("enumerate", args[0])) {
      out.push_back(tuple({integer(start++), item}));
    }
    return list(std::move(out));
  });

  b["zip"] = make_builtin("zip", [](std::vector<Ref>& args) {
    need("zip", args, 1, 8);
    std::vector<std::vector<Ref>> columns;
    size_t n = SIZE_MAX;
    for (const auto& arg : args) {
      columns.push_back(to_items("zip", arg));
      n = std::min(n, columns.back().size());
    }
    Value::List out;
    for (size_t i = 0; i < n; ++i) {
      Value::Tuple row;
      for (const auto& col : columns) row.push_back(col[i]);
      out.push_back(tuple(std::move(row)));
    }
    return list(std::move(out));
  });

  b["type"] = make_builtin("type", [](std::vector<Ref>& args) {
    need("type", args, 1, 1);
    return string("<class '" + type_name(args[0]) + "'>");
  });
}

Ref make_math_module() {
  Module m;
  m.name = "math";
  auto fn1 = [&m](const char* name, double (*f)(double)) {
    m.members[name] = make_builtin(name, [f, name](std::vector<Ref>& args) {
      need(name, args, 1, 1);
      return floating(f(as_double(args[0])));
    });
  };
  fn1("sqrt", std::sqrt);
  fn1("sin", std::sin);
  fn1("cos", std::cos);
  fn1("tan", std::tan);
  fn1("asin", std::asin);
  fn1("acos", std::acos);
  fn1("atan", std::atan);
  fn1("exp", std::exp);
  fn1("log", std::log);
  fn1("log10", std::log10);
  fn1("log2", std::log2);
  fn1("fabs", std::fabs);
  auto fn2 = [&m](const char* name, double (*f)(double, double)) {
    m.members[name] = make_builtin(name, [f, name](std::vector<Ref>& args) {
      need(name, args, 2, 2);
      return floating(f(as_double(args[0]), as_double(args[1])));
    });
  };
  fn2("pow", std::pow);
  fn2("atan2", std::atan2);
  fn2("hypot", std::hypot);
  fn2("fmod", std::fmod);
  m.members["floor"] = make_builtin("floor", [](std::vector<Ref>& args) {
    need("floor", args, 1, 1);
    return integer(static_cast<int64_t>(std::floor(as_double(args[0]))));
  });
  m.members["ceil"] = make_builtin("ceil", [](std::vector<Ref>& args) {
    need("ceil", args, 1, 1);
    return integer(static_cast<int64_t>(std::ceil(as_double(args[0]))));
  });
  m.members["pi"] = floating(3.14159265358979323846);
  m.members["e"] = floating(2.71828182845904523536);
  m.members["inf"] = floating(std::numeric_limits<double>::infinity());
  return std::make_shared<Value>(std::move(m));
}

Ref make_random_module(Rng& rng) {
  Module m;
  m.name = "random";
  m.members["seed"] = make_builtin("seed", [&rng](std::vector<Ref>& args) {
    need("seed", args, 1, 1);
    rng = Rng(static_cast<uint64_t>(as_int(args[0])));
    return none();
  });
  m.members["random"] = make_builtin("random", [&rng](std::vector<Ref>& args) {
    need("random", args, 0, 0);
    return floating(rng.next_double());
  });
  m.members["uniform"] = make_builtin("uniform", [&rng](std::vector<Ref>& args) {
    need("uniform", args, 2, 2);
    double lo = as_double(args[0]);
    double hi = as_double(args[1]);
    return floating(lo + (hi - lo) * rng.next_double());
  });
  m.members["randint"] = make_builtin("randint", [&rng](std::vector<Ref>& args) {
    need("randint", args, 2, 2);
    int64_t lo = as_int(args[0]);
    int64_t hi = as_int(args[1]);
    if (hi < lo) throw PyError("ValueError: empty range for randint()");
    return integer(rng.next_range(lo, hi));
  });
  m.members["choice"] = make_builtin("choice", [&rng](std::vector<Ref>& args) {
    need("choice", args, 1, 1);
    auto items = to_items("choice", args[0]);
    if (items.empty()) throw PyError("IndexError: cannot choose from an empty sequence");
    return items[rng.next_below(items.size())];
  });
  return std::make_shared<Value>(std::move(m));
}

}  // namespace ilps::py
