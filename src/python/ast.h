// MiniPy abstract syntax. A deliberately flat node design: one Expr struct
// and one Stmt struct, discriminated by Kind, so the tree-walking
// evaluator in interp.cc stays compact.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "python/value.h"

namespace ilps::py {

struct Expr;
using ExprP = std::shared_ptr<Expr>;

struct Expr {
  enum class Kind {
    kLiteral,   // literal
    kName,      // name
    kUnary,     // op, a
    kBinary,    // op, a, b
    kBoolOp,    // op ("and"/"or"), items (short-circuit left to right)
    kCompare,   // a, ops[i], items[i] (chained: a < b <= c)
    kTernary,   // a if b else c  (a=value, b=cond, c=orelse)
    kCall,      // a(items...)
    kAttribute, // a.name
    kIndex,     // a[b]
    kSlice,     // a[b:c] (b or c may be null)
    kListLit,   // items
    kDictLit,   // items as flattened k,v pairs
    kTupleLit,  // items
    kLambda,    // params, defaults, a (body expression)
    kListComp,  // a (element), names (loop targets), b (iterable), c (optional condition)
    kFString,   // strs (n+1 literal segments), items (n expressions), specs (n format specs)
  };

  Kind kind;
  int line = 0;

  Ref literal;
  std::string name;
  std::string op;
  ExprP a, b, c;
  std::vector<ExprP> items;
  std::vector<std::string> ops;
  std::vector<std::string> names;
  std::vector<std::string> strs;
  std::vector<std::string> specs;
  std::vector<std::string> params;
  std::vector<ExprP> defaults;
};

struct Stmt;
using StmtP = std::shared_ptr<Stmt>;
using Block = std::vector<StmtP>;

struct Stmt {
  enum class Kind {
    kExpr,      // value
    kAssign,    // target = value (target: Name/Index/Attribute/TupleLit)
    kAugAssign, // target op= value
    kIf,        // value (cond), body, orelse
    kWhile,     // value (cond), body
    kFor,       // names (targets), value (iterable), body
    kDef,       // name, params, defaults, body
    kReturn,    // value (may be null)
    kBreak,
    kContinue,
    kPass,
    kImport,    // names
    kGlobal,    // names
    kDel,       // target
    kTry,       // body, handlers, orelse (finally block)
    kRaise,     // name (exception class), value (optional message expr)
    kAssert,    // value (condition), target (optional message expr)
  };

  struct Handler {
    std::string type;  // empty = catch-all; else a class-name prefix match
    std::string var;   // `as var` binding (the message string), may be empty
    Block body;
  };

  Kind kind;
  int line = 0;

  ExprP target;
  ExprP value;
  std::string op;
  std::string name;
  std::vector<std::string> names;
  std::vector<std::string> params;
  std::vector<ExprP> defaults;
  Block body;
  Block orelse;
  std::vector<Handler> handlers;
};

// Parses a fragment into a Block. Throws PyError with a SyntaxError
// message on malformed input.
std::shared_ptr<Block> parse_program(std::string_view source);

// Parses a single expression (used by f-strings and the eval API).
ExprP parse_expression(std::string_view source);

}  // namespace ilps::py
