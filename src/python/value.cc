#include "python/value.h"

#include "common/strings.h"

namespace ilps::py {

Ref none() {
  static const Ref kNone = std::make_shared<Value>();
  return kNone;
}

Ref boolean(bool b) {
  static const Ref kTrue = std::make_shared<Value>(true);
  static const Ref kFalse = std::make_shared<Value>(false);
  return b ? kTrue : kFalse;
}

Ref integer(int64_t i) { return std::make_shared<Value>(i); }
Ref floating(double d) { return std::make_shared<Value>(d); }
Ref string(std::string s) { return std::make_shared<Value>(std::move(s)); }
Ref list(Value::List items) { return std::make_shared<Value>(std::move(items)); }
Ref dict(Value::Dict items) { return std::make_shared<Value>(std::move(items)); }
Ref tuple(Value::Tuple items) { return std::make_shared<Value>(std::move(items)); }

bool is_none(const Ref& v) { return std::holds_alternative<NoneType>(v->v); }
bool is_bool(const Ref& v) { return std::holds_alternative<bool>(v->v); }
bool is_int(const Ref& v) { return std::holds_alternative<int64_t>(v->v); }
bool is_float(const Ref& v) { return std::holds_alternative<double>(v->v); }
bool is_str(const Ref& v) { return std::holds_alternative<std::string>(v->v); }
bool is_list(const Ref& v) { return std::holds_alternative<Value::List>(v->v); }
bool is_dict(const Ref& v) { return std::holds_alternative<Value::Dict>(v->v); }
bool is_tuple(const Ref& v) { return std::holds_alternative<Value::Tuple>(v->v); }

std::string type_name(const Ref& v) {
  struct Visitor {
    std::string operator()(const NoneType&) { return "NoneType"; }
    std::string operator()(bool) { return "bool"; }
    std::string operator()(int64_t) { return "int"; }
    std::string operator()(double) { return "float"; }
    std::string operator()(const std::string&) { return "str"; }
    std::string operator()(const Value::List&) { return "list"; }
    std::string operator()(const Value::Dict&) { return "dict"; }
    std::string operator()(const Value::Tuple&) { return "tuple"; }
    std::string operator()(const Function&) { return "function"; }
    std::string operator()(const Builtin&) { return "builtin_function_or_method"; }
    std::string operator()(const Module&) { return "module"; }
  };
  return std::visit(Visitor{}, v->v);
}

bool truthy(const Ref& v) {
  if (is_none(v)) return false;
  if (is_bool(v)) return std::get<bool>(v->v);
  if (is_int(v)) return std::get<int64_t>(v->v) != 0;
  if (is_float(v)) return std::get<double>(v->v) != 0.0;
  if (is_str(v)) return !std::get<std::string>(v->v).empty();
  if (is_list(v)) return !std::get<Value::List>(v->v).empty();
  if (is_dict(v)) return !std::get<Value::Dict>(v->v).empty();
  if (is_tuple(v)) return !std::get<Value::Tuple>(v->v).empty();
  return true;
}

int64_t as_int(const Ref& v) {
  if (is_bool(v)) return std::get<bool>(v->v) ? 1 : 0;
  if (is_int(v)) return std::get<int64_t>(v->v);
  throw PyError("TypeError: expected int, got " + type_name(v));
}

double as_double(const Ref& v) {
  if (is_bool(v)) return std::get<bool>(v->v) ? 1.0 : 0.0;
  if (is_int(v)) return static_cast<double>(std::get<int64_t>(v->v));
  if (is_float(v)) return std::get<double>(v->v);
  throw PyError("TypeError: expected float, got " + type_name(v));
}

const std::string& as_str(const Ref& v) {
  if (!is_str(v)) throw PyError("TypeError: expected str, got " + type_name(v));
  return std::get<std::string>(v->v);
}

namespace {
std::string float_repr(double d) {
  // Python prints floats with repr shortest round-trip; format_double's
  // trailing-.0 convention matches Python for integral floats.
  return str::format_double(d);
}

std::string join_items(const std::vector<Ref>& items, const char* open, const char* close,
                       bool trailing_comma_if_one) {
  std::string out = open;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += to_repr(items[i]);
  }
  if (trailing_comma_if_one && items.size() == 1) out += ",";
  out += close;
  return out;
}
}  // namespace

std::string to_repr(const Ref& v) {
  struct Visitor {
    std::string operator()(const NoneType&) { return "None"; }
    std::string operator()(bool b) { return b ? "True" : "False"; }
    std::string operator()(int64_t i) { return std::to_string(i); }
    std::string operator()(double d) { return float_repr(d); }
    std::string operator()(const std::string& s) {
      std::string out = "'";
      for (char c : s) {
        switch (c) {
          case '\'': out += "\\'"; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
      }
      out += "'";
      return out;
    }
    std::string operator()(const Value::List& items) {
      return join_items(items, "[", "]", false);
    }
    std::string operator()(const Value::Dict& d) {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, val] : d) {
        if (!first) out += ", ";
        first = false;
        out += to_repr(k) + ": " + to_repr(val);
      }
      return out + "}";
    }
    std::string operator()(const Value::Tuple& items) {
      return join_items(items, "(", ")", true);
    }
    std::string operator()(const Function& f) { return "<function " + f.name + ">"; }
    std::string operator()(const Builtin& f) { return "<built-in function " + f.name + ">"; }
    std::string operator()(const Module& m) { return "<module '" + m.name + "'>"; }
  };
  return std::visit(Visitor{}, v->v);
}

std::string to_str(const Ref& v) {
  if (is_str(v)) return std::get<std::string>(v->v);
  return to_repr(v);
}

bool equal(const Ref& a, const Ref& b) {
  // Numeric cross-type equality (True == 1, 1 == 1.0).
  auto numeric = [](const Ref& v) { return is_bool(v) || is_int(v) || is_float(v); };
  if (numeric(a) && numeric(b)) {
    if (!is_float(a) && !is_float(b)) return as_int(a) == as_int(b);
    return as_double(a) == as_double(b);
  }
  if (is_none(a) || is_none(b)) return is_none(a) && is_none(b);
  if (is_str(a) && is_str(b)) return as_str(a) == as_str(b);
  auto seq_eq = [](const std::vector<Ref>& x, const std::vector<Ref>& y) {
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (!equal(x[i], y[i])) return false;
    }
    return true;
  };
  if (is_list(a) && is_list(b)) {
    return seq_eq(std::get<Value::List>(a->v), std::get<Value::List>(b->v));
  }
  if (is_tuple(a) && is_tuple(b)) {
    return seq_eq(std::get<Value::Tuple>(a->v), std::get<Value::Tuple>(b->v));
  }
  if (is_dict(a) && is_dict(b)) {
    const auto& da = std::get<Value::Dict>(a->v);
    const auto& db = std::get<Value::Dict>(b->v);
    if (da.size() != db.size()) return false;
    for (const auto& [k, val] : da) {
      auto other = dict_get(db, k);
      if (!other || !equal(val, *other)) return false;
    }
    return true;
  }
  return false;
}

int compare(const Ref& a, const Ref& b) {
  auto numeric = [](const Ref& v) { return is_bool(v) || is_int(v) || is_float(v); };
  if (numeric(a) && numeric(b)) {
    if (!is_float(a) && !is_float(b)) {
      int64_t x = as_int(a);
      int64_t y = as_int(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = as_double(a);
    double y = as_double(b);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (is_str(a) && is_str(b)) {
    int c = as_str(a).compare(as_str(b));
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  auto seq_cmp = [](const std::vector<Ref>& x, const std::vector<Ref>& y) {
    size_t n = std::min(x.size(), y.size());
    for (size_t i = 0; i < n; ++i) {
      int c = compare(x[i], y[i]);
      if (c != 0) return c;
    }
    return x.size() < y.size() ? -1 : (x.size() > y.size() ? 1 : 0);
  };
  if (is_list(a) && is_list(b)) {
    return seq_cmp(std::get<Value::List>(a->v), std::get<Value::List>(b->v));
  }
  if (is_tuple(a) && is_tuple(b)) {
    return seq_cmp(std::get<Value::Tuple>(a->v), std::get<Value::Tuple>(b->v));
  }
  throw PyError("TypeError: '<' not supported between instances of '" + type_name(a) + "' and '" +
                type_name(b) + "'");
}

std::optional<Ref> dict_get(const Value::Dict& d, const Ref& key) {
  for (const auto& [k, v] : d) {
    if (equal(k, key)) return v;
  }
  return std::nullopt;
}

void dict_set(Value::Dict& d, const Ref& key, const Ref& value) {
  for (auto& [k, v] : d) {
    if (equal(k, key)) {
      v = value;
      return;
    }
  }
  d.emplace_back(key, value);
}

bool dict_del(Value::Dict& d, const Ref& key) {
  for (auto it = d.begin(); it != d.end(); ++it) {
    if (equal(it->first, key)) {
      d.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace ilps::py
