// MiniPy tokenizer: indentation-aware, with implicit line joining inside
// brackets and explicit backslash continuation, as in CPython's tokenizer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "python/value.h"

namespace ilps::py {

enum class Tok {
  kEnd,
  kNewline,
  kIndent,
  kDedent,
  kName,
  kKeyword,
  kInt,
  kFloat,
  kString,   // text holds the decoded value; fstring flag set for f"..."
  kOp,       // text holds the operator / delimiter spelling
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int64_t ival = 0;
  double dval = 0;
  bool fstring = false;
  int line = 0;
};

// Tokenizes a whole fragment. Throws PyError on bad indentation or
// malformed literals.
std::vector<Token> tokenize(std::string_view source);

bool is_keyword(std::string_view word);

}  // namespace ilps::py
