// MiniPy tree-walking evaluator.
#include "python/interp.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace ilps::py {

namespace {

constexpr int kMaxDepth = 400;

struct BreakSig {};
struct ContinueSig {};
struct ReturnSig {
  Ref value;
};

int64_t floor_div_i(int64_t a, int64_t b) {
  if (b == 0) throw PyError("ZeroDivisionError: integer division or modulo by zero");
  int64_t q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t py_mod_i(int64_t a, int64_t b) {
  if (b == 0) throw PyError("ZeroDivisionError: integer division or modulo by zero");
  int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

// Python-style % formatting ("%d %s" % (a, b)).
std::string percent_format(const std::string& fmt, const Ref& arg) {
  std::vector<std::string> args;
  if (is_tuple(arg)) {
    for (const auto& item : std::get<Value::Tuple>(arg->v)) args.push_back(to_str(item));
  } else {
    args.push_back(to_str(arg));
  }
  return str::printf_format(fmt, args);
}

// Converts a Python format spec (".3f", "05d", "8.2e", "d", "x", "s") into
// a printf conversion applied to the value.
std::string apply_format_spec(const Ref& v, const std::string& spec) {
  if (spec.empty()) return to_str(v);
  char type = spec.back();
  std::string body = spec;
  if (std::isalpha(static_cast<unsigned char>(type))) {
    body = spec.substr(0, spec.size() - 1);
  } else {
    type = is_float(v) ? 'g' : (is_int(v) || is_bool(v) ? 'd' : 's');
  }
  std::string pf = "%" + body + std::string(1, type);
  std::vector<std::string> args;
  if (type == 's') {
    args.push_back(to_str(v));
  } else if (type == 'd' || type == 'x' || type == 'X' || type == 'o' || type == 'c') {
    args.push_back(std::to_string(as_int(v)));
  } else {
    args.push_back(str::format_double(as_double(v)));
  }
  return str::printf_format(pf, args);
}

}  // namespace

class Evaluator {
 public:
  explicit Evaluator(Interpreter& in) : in_(in) {}

  void exec_block(const Block& block) {
    for (const auto& stmt : block) exec(*stmt);
  }

  // ---- statements ----

  void exec(const Stmt& s) {
    ++in_.statements_;
    switch (s.kind) {
      case Stmt::Kind::kExpr:
        eval(*s.value);
        return;
      case Stmt::Kind::kAssign:
        assign(*s.target, eval(*s.value));
        return;
      case Stmt::Kind::kAugAssign: {
        Ref current = eval(*s.target);
        Ref result = binary(s.op, current, eval(*s.value));
        assign(*s.target, result);
        return;
      }
      case Stmt::Kind::kIf:
        if (truthy(eval(*s.value))) {
          exec_block(s.body);
        } else {
          exec_block(s.orelse);
        }
        return;
      case Stmt::Kind::kWhile:
        while (truthy(eval(*s.value))) {
          try {
            exec_block(s.body);
          } catch (BreakSig&) {
            break;
          } catch (ContinueSig&) {
            continue;
          }
        }
        return;
      case Stmt::Kind::kFor: {
        std::vector<Ref> items = iterate(eval(*s.value));
        for (const Ref& item : items) {
          bind_targets(s.names, item);
          try {
            exec_block(s.body);
          } catch (BreakSig&) {
            break;
          } catch (ContinueSig&) {
            continue;
          }
        }
        return;
      }
      case Stmt::Kind::kDef: {
        Function fn;
        fn.name = s.name;
        fn.params = s.params;
        for (const auto& d : s.defaults) fn.defaults.push_back(eval(*d));
        // The Stmt is owned by a Block in the interpreter arena; share the
        // body through an aliasing shared_ptr so it outlives this eval.
        fn.body = std::shared_ptr<const void>(in_.arena_.back(), &s.body);
        set_name(s.name, std::make_shared<Value>(std::move(fn)));
        return;
      }
      case Stmt::Kind::kReturn:
        throw ReturnSig{s.value ? eval(*s.value) : none()};
      case Stmt::Kind::kBreak:
        throw BreakSig{};
      case Stmt::Kind::kContinue:
        throw ContinueSig{};
      case Stmt::Kind::kPass:
        return;
      case Stmt::Kind::kImport:
        for (const auto& name : s.names) {
          if (name == "math") {
            set_name("math", make_math_module());
          } else if (name == "random") {
            set_name("random", make_random_module(in_.rng_));
          } else {
            throw PyError("ModuleNotFoundError: No module named '" + name + "'");
          }
        }
        return;
      case Stmt::Kind::kGlobal:
        if (!in_.frames_.empty()) {
          auto& frame = in_.frames_.back();
          for (const auto& name : s.names) frame.global_names.push_back(name);
        }
        return;
      case Stmt::Kind::kDel:
        del_target(*s.target);
        return;
      case Stmt::Kind::kAssert: {
        if (!truthy(eval(*s.value))) {
          std::string msg = "AssertionError";
          if (s.target) msg += ": " + to_str(eval(*s.target));
          throw PyError(msg);
        }
        return;
      }
      case Stmt::Kind::kRaise: {
        if (s.name.empty()) throw PyError("RuntimeError: re-raise outside handler");
        std::string msg = s.name;
        if (s.value) msg += ": " + to_str(eval(*s.value));
        throw PyError(msg);
      }
      case Stmt::Kind::kTry: {
        auto run_finally = [&] {
          if (!s.orelse.empty()) exec_block(s.orelse);
        };
        try {
          exec_block(s.body);
        } catch (PyError& e) {
          std::string what = e.what();
          for (const auto& handler : s.handlers) {
            bool match = handler.type.empty() || handler.type == "Exception" ||
                         what.rfind(handler.type, 0) == 0;
            if (!match) continue;
            if (!handler.var.empty()) set_name(handler.var, string(what));
            try {
              exec_block(handler.body);
            } catch (...) {
              run_finally();
              throw;
            }
            run_finally();
            return;
          }
          run_finally();
          throw;
        } catch (...) {
          // break/continue/return pass through, but finally still runs.
          run_finally();
          throw;
        }
        run_finally();
        return;
      }
    }
    throw PyError("internal error: unknown statement kind");
  }

  // ---- expressions ----

  Ref eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return e.literal;
      case Expr::Kind::kName:
        return lookup(e.name);
      case Expr::Kind::kUnary: {
        Ref v = eval(*e.a);
        if (e.op == "not") return boolean(!truthy(v));
        if (e.op == "-") {
          if (is_int(v) || is_bool(v)) return integer(-as_int(v));
          if (is_float(v)) return floating(-as_double(v));
          throw PyError("TypeError: bad operand type for unary -: '" + type_name(v) + "'");
        }
        if (e.op == "+") {
          as_double(v);
          return v;
        }
        if (e.op == "~") return integer(~as_int(v));
        throw PyError("internal error: unary op " + e.op);
      }
      case Expr::Kind::kBinary:
        return binary(e.op, eval(*e.a), eval(*e.b));
      case Expr::Kind::kBoolOp: {
        Ref v = eval(*e.items[0]);
        for (size_t i = 1; i < e.items.size(); ++i) {
          bool t = truthy(v);
          if (e.op == "and" && !t) return v;
          if (e.op == "or" && t) return v;
          v = eval(*e.items[i]);
        }
        return v;
      }
      case Expr::Kind::kCompare: {
        Ref lhs = eval(*e.a);
        for (size_t i = 0; i < e.ops.size(); ++i) {
          Ref rhs = eval(*e.items[i]);
          if (!compare_once(e.ops[i], lhs, rhs)) return boolean(false);
          lhs = rhs;
        }
        return boolean(true);
      }
      case Expr::Kind::kTernary:
        return truthy(eval(*e.b)) ? eval(*e.a) : eval(*e.c);
      case Expr::Kind::kCall:
        return call(e);
      case Expr::Kind::kAttribute: {
        Ref obj = eval(*e.a);
        if (std::holds_alternative<Module>(obj->v)) {
          const auto& mod = std::get<Module>(obj->v);
          auto it = mod.members.find(e.name);
          if (it == mod.members.end()) {
            throw PyError("AttributeError: module '" + mod.name + "' has no attribute '" +
                          e.name + "'");
          }
          return it->second;
        }
        throw PyError("AttributeError: '" + type_name(obj) + "' object attribute '" + e.name +
                      "' is not directly readable (method calls are supported)");
      }
      case Expr::Kind::kIndex:
        return index_get(eval(*e.a), eval(*e.b));
      case Expr::Kind::kSlice:
        return slice_get(eval(*e.a), e.b ? eval(*e.b) : nullptr, e.c ? eval(*e.c) : nullptr);
      case Expr::Kind::kListLit: {
        Value::List items;
        for (const auto& item : e.items) items.push_back(eval(*item));
        return list(std::move(items));
      }
      case Expr::Kind::kTupleLit: {
        Value::Tuple items;
        for (const auto& item : e.items) items.push_back(eval(*item));
        return tuple(std::move(items));
      }
      case Expr::Kind::kDictLit: {
        Value::Dict d;
        for (size_t i = 0; i + 1 < e.items.size(); i += 2) {
          dict_set(d, eval(*e.items[i]), eval(*e.items[i + 1]));
        }
        return dict(std::move(d));
      }
      case Expr::Kind::kLambda: {
        Function fn;
        fn.name = "<lambda>";
        fn.params = e.params;
        for (const auto& d : e.defaults) fn.defaults.push_back(eval(*d));
        fn.is_lambda = true;
        fn.body = std::shared_ptr<const void>(in_.arena_.back(), e.a.get());
        return std::make_shared<Value>(std::move(fn));
      }
      case Expr::Kind::kListComp: {
        Value::List out;
        for (const Ref& item : iterate(eval(*e.b))) {
          bind_targets(e.names, item);
          if (e.c && !truthy(eval(*e.c))) continue;
          out.push_back(eval(*e.a));
        }
        return list(std::move(out));
      }
      case Expr::Kind::kFString: {
        std::string out = e.strs[0];
        for (size_t i = 0; i < e.items.size(); ++i) {
          out += apply_format_spec(eval(*e.items[i]), e.specs[i]);
          out += e.strs[i + 1];
        }
        return string(std::move(out));
      }
    }
    throw PyError("internal error: unknown expression kind");
  }

  // ---- helpers used by the Interpreter facade ----

  Ref call_function(const Ref& callee, std::vector<Ref>& args) {
    if (std::holds_alternative<Builtin>(callee->v)) {
      return std::get<Builtin>(callee->v).fn(args);
    }
    if (!std::holds_alternative<Function>(callee->v)) {
      throw PyError("TypeError: '" + type_name(callee) + "' object is not callable");
    }
    const Function& fn = std::get<Function>(callee->v);
    size_t required = fn.params.size() - fn.defaults.size();
    if (args.size() < required || args.size() > fn.params.size()) {
      throw PyError("TypeError: " + fn.name + "() takes " + std::to_string(fn.params.size()) +
                    " arguments but " + std::to_string(args.size()) + " were given");
    }
    if (++in_.depth_ > kMaxDepth) {
      --in_.depth_;
      throw PyError("RecursionError: maximum recursion depth exceeded");
    }
    Interpreter::Frame frame;
    for (size_t i = 0; i < fn.params.size(); ++i) {
      Ref v = i < args.size() ? args[i] : fn.defaults[i - required];
      frame.locals[fn.params[i]] = v;
    }
    in_.frames_.push_back(std::move(frame));
    struct Guard {
      Interpreter& in;
      ~Guard() {
        in.frames_.pop_back();
        --in.depth_;
      }
    } guard{in_};
    if (fn.is_lambda) {
      return eval(*static_cast<const Expr*>(fn.body.get()));
    }
    try {
      exec_block(*static_cast<const Block*>(fn.body.get()));
    } catch (ReturnSig& r) {
      return r.value;
    }
    return none();
  }

 private:
  // ---- names ----

  Ref lookup(const std::string& name) {
    if (!in_.frames_.empty()) {
      auto& frame = in_.frames_.back();
      auto it = frame.locals.find(name);
      if (it != frame.locals.end()) return it->second;
    }
    auto git = in_.globals_.find(name);
    if (git != in_.globals_.end()) return git->second;
    auto bit = in_.builtins_.find(name);
    if (bit != in_.builtins_.end()) return bit->second;
    throw PyError("NameError: name '" + name + "' is not defined");
  }

  void set_name(const std::string& name, Ref value) {
    if (!in_.frames_.empty()) {
      auto& frame = in_.frames_.back();
      bool declared_global = std::find(frame.global_names.begin(), frame.global_names.end(),
                                       name) != frame.global_names.end();
      if (!declared_global) {
        frame.locals[name] = std::move(value);
        return;
      }
    }
    in_.globals_[name] = std::move(value);
  }

  void del_name(const std::string& name) {
    if (!in_.frames_.empty() && in_.frames_.back().locals.erase(name) > 0) return;
    if (in_.globals_.erase(name) > 0) return;
    throw PyError("NameError: name '" + name + "' is not defined");
  }

  // ---- assignment ----

  void assign(const Expr& target, const Ref& value) {
    switch (target.kind) {
      case Expr::Kind::kName:
        set_name(target.name, value);
        return;
      case Expr::Kind::kIndex: {
        Ref obj = eval(*target.a);
        Ref key = eval(*target.b);
        if (is_list(obj)) {
          auto& items = std::get<Value::List>(obj->v);
          items[list_index(as_int(key), items.size())] = value;
          return;
        }
        if (is_dict(obj)) {
          dict_set(std::get<Value::Dict>(obj->v), key, value);
          return;
        }
        throw PyError("TypeError: '" + type_name(obj) + "' object does not support item assignment");
      }
      case Expr::Kind::kTupleLit:
      case Expr::Kind::kListLit: {
        std::vector<Ref> parts = iterate(value);
        if (parts.size() != target.items.size()) {
          throw PyError("ValueError: cannot unpack " + std::to_string(parts.size()) +
                        " values into " + std::to_string(target.items.size()) + " targets");
        }
        for (size_t i = 0; i < parts.size(); ++i) assign(*target.items[i], parts[i]);
        return;
      }
      default:
        throw PyError("SyntaxError: cannot assign to this expression");
    }
  }

  void bind_targets(const std::vector<std::string>& names, const Ref& item) {
    if (names.size() == 1) {
      set_name(names[0], item);
      return;
    }
    std::vector<Ref> parts = iterate(item);
    if (parts.size() != names.size()) {
      throw PyError("ValueError: cannot unpack " + std::to_string(parts.size()) + " values into " +
                    std::to_string(names.size()) + " targets");
    }
    for (size_t i = 0; i < names.size(); ++i) set_name(names[i], parts[i]);
  }

  void del_target(const Expr& target) {
    if (target.kind == Expr::Kind::kName) {
      del_name(target.name);
      return;
    }
    if (target.kind == Expr::Kind::kIndex) {
      Ref obj = eval(*target.a);
      Ref key = eval(*target.b);
      if (is_list(obj)) {
        auto& items = std::get<Value::List>(obj->v);
        items.erase(items.begin() +
                    static_cast<ptrdiff_t>(list_index(as_int(key), items.size())));
        return;
      }
      if (is_dict(obj)) {
        if (!dict_del(std::get<Value::Dict>(obj->v), key)) {
          throw PyError("KeyError: " + to_repr(key));
        }
        return;
      }
    }
    throw PyError("SyntaxError: cannot delete this expression");
  }

  // ---- operators ----

  Ref binary(const std::string& op, const Ref& a, const Ref& b) {
    auto both_intish = [&] {
      return (is_int(a) || is_bool(a)) && (is_int(b) || is_bool(b));
    };
    auto numeric = [](const Ref& v) { return is_bool(v) || is_int(v) || is_float(v); };

    if (op == "+") {
      if (both_intish()) return integer(as_int(a) + as_int(b));
      if (numeric(a) && numeric(b)) return floating(as_double(a) + as_double(b));
      if (is_str(a) && is_str(b)) return string(as_str(a) + as_str(b));
      if (is_list(a) && is_list(b)) {
        Value::List out = std::get<Value::List>(a->v);
        const auto& rhs = std::get<Value::List>(b->v);
        out.insert(out.end(), rhs.begin(), rhs.end());
        return list(std::move(out));
      }
      if (is_tuple(a) && is_tuple(b)) {
        Value::Tuple out = std::get<Value::Tuple>(a->v);
        const auto& rhs = std::get<Value::Tuple>(b->v);
        out.insert(out.end(), rhs.begin(), rhs.end());
        return tuple(std::move(out));
      }
    } else if (op == "-") {
      if (both_intish()) return integer(as_int(a) - as_int(b));
      if (numeric(a) && numeric(b)) return floating(as_double(a) - as_double(b));
    } else if (op == "*") {
      if (both_intish()) return integer(as_int(a) * as_int(b));
      if (numeric(a) && numeric(b)) return floating(as_double(a) * as_double(b));
      auto repeat_seq = [](const std::vector<Ref>& items, int64_t n) {
        std::vector<Ref> out;
        for (int64_t i = 0; i < n; ++i) out.insert(out.end(), items.begin(), items.end());
        return out;
      };
      if (is_str(a) && (is_int(b) || is_bool(b))) {
        std::string out;
        for (int64_t i = 0; i < as_int(b); ++i) out += as_str(a);
        return string(std::move(out));
      }
      if (is_list(a) && (is_int(b) || is_bool(b))) {
        return list(repeat_seq(std::get<Value::List>(a->v), as_int(b)));
      }
    } else if (op == "/") {
      if (numeric(a) && numeric(b)) {
        double y = as_double(b);
        if (y == 0.0) throw PyError("ZeroDivisionError: division by zero");
        return floating(as_double(a) / y);
      }
    } else if (op == "//") {
      if (both_intish()) return integer(floor_div_i(as_int(a), as_int(b)));
      if (numeric(a) && numeric(b)) {
        double y = as_double(b);
        if (y == 0.0) throw PyError("ZeroDivisionError: float floor division by zero");
        return floating(std::floor(as_double(a) / y));
      }
    } else if (op == "%") {
      if (is_str(a)) return string(percent_format(as_str(a), b));
      if (both_intish()) return integer(py_mod_i(as_int(a), as_int(b)));
      if (numeric(a) && numeric(b)) {
        double y = as_double(b);
        if (y == 0.0) throw PyError("ZeroDivisionError: float modulo");
        double r = std::fmod(as_double(a), y);
        if (r != 0.0 && ((r < 0) != (y < 0))) r += y;
        return floating(r);
      }
    } else if (op == "**") {
      if (both_intish() && as_int(b) >= 0) {
        int64_t base = as_int(a);
        int64_t exp = as_int(b);
        int64_t out = 1;
        for (int64_t i = 0; i < exp; ++i) out *= base;
        return integer(out);
      }
      if (numeric(a) && numeric(b)) return floating(std::pow(as_double(a), as_double(b)));
    } else if (op == "&") {
      return integer(as_int(a) & as_int(b));
    } else if (op == "|") {
      return integer(as_int(a) | as_int(b));
    } else if (op == "^") {
      return integer(as_int(a) ^ as_int(b));
    } else if (op == "<<") {
      return integer(as_int(a) << as_int(b));
    } else if (op == ">>") {
      return integer(as_int(a) >> as_int(b));
    }
    throw PyError("TypeError: unsupported operand type(s) for " + op + ": '" + type_name(a) +
                  "' and '" + type_name(b) + "'");
  }

  bool compare_once(const std::string& op, const Ref& a, const Ref& b) {
    if (op == "==") return equal(a, b);
    if (op == "!=") return !equal(a, b);
    if (op == "is") return a.get() == b.get() || (is_none(a) && is_none(b));
    if (op == "is not") return !(a.get() == b.get() || (is_none(a) && is_none(b)));
    if (op == "in" || op == "not in") {
      bool found;
      if (is_str(b)) {
        found = as_str(b).find(as_str(a)) != std::string::npos;
      } else if (is_dict(b)) {
        found = dict_get(std::get<Value::Dict>(b->v), a).has_value();
      } else {
        found = false;
        for (const Ref& item : iterate(b)) {
          if (equal(item, a)) {
            found = true;
            break;
          }
        }
      }
      return op == "in" ? found : !found;
    }
    int c = compare(a, b);
    if (op == "<") return c < 0;
    if (op == "<=") return c <= 0;
    if (op == ">") return c > 0;
    if (op == ">=") return c >= 0;
    throw PyError("internal error: comparison op " + op);
  }

  // ---- sequences ----

  static size_t list_index(int64_t i, size_t n) {
    if (i < 0) i += static_cast<int64_t>(n);
    if (i < 0 || i >= static_cast<int64_t>(n)) {
      throw PyError("IndexError: index out of range");
    }
    return static_cast<size_t>(i);
  }

  std::vector<Ref> iterate(const Ref& v) {
    if (is_list(v)) return std::get<Value::List>(v->v);
    if (is_tuple(v)) return std::get<Value::Tuple>(v->v);
    if (is_str(v)) {
      std::vector<Ref> out;
      for (char c : as_str(v)) out.push_back(string(std::string(1, c)));
      return out;
    }
    if (is_dict(v)) {
      std::vector<Ref> out;
      for (const auto& [k, val] : std::get<Value::Dict>(v->v)) {
        (void)val;
        out.push_back(k);
      }
      return out;
    }
    throw PyError("TypeError: '" + type_name(v) + "' object is not iterable");
  }

  Ref index_get(const Ref& obj, const Ref& key) {
    if (is_list(obj)) {
      const auto& items = std::get<Value::List>(obj->v);
      return items[list_index(as_int(key), items.size())];
    }
    if (is_tuple(obj)) {
      const auto& items = std::get<Value::Tuple>(obj->v);
      return items[list_index(as_int(key), items.size())];
    }
    if (is_str(obj)) {
      const std::string& s = as_str(obj);
      return string(std::string(1, s[list_index(as_int(key), s.size())]));
    }
    if (is_dict(obj)) {
      auto v = dict_get(std::get<Value::Dict>(obj->v), key);
      if (!v) throw PyError("KeyError: " + to_repr(key));
      return *v;
    }
    throw PyError("TypeError: '" + type_name(obj) + "' object is not subscriptable");
  }

  Ref slice_get(const Ref& obj, const Ref& lo, const Ref& hi) {
    auto bounds = [&](size_t n) {
      int64_t b = lo ? as_int(lo) : 0;
      int64_t e = hi ? as_int(hi) : static_cast<int64_t>(n);
      if (b < 0) b += static_cast<int64_t>(n);
      if (e < 0) e += static_cast<int64_t>(n);
      b = std::clamp<int64_t>(b, 0, static_cast<int64_t>(n));
      e = std::clamp<int64_t>(e, 0, static_cast<int64_t>(n));
      if (e < b) e = b;
      return std::pair<size_t, size_t>(static_cast<size_t>(b), static_cast<size_t>(e));
    };
    if (is_str(obj)) {
      const std::string& s = as_str(obj);
      auto [b, e] = bounds(s.size());
      return string(s.substr(b, e - b));
    }
    if (is_list(obj)) {
      const auto& items = std::get<Value::List>(obj->v);
      auto [b, e] = bounds(items.size());
      return list(Value::List(items.begin() + static_cast<ptrdiff_t>(b),
                              items.begin() + static_cast<ptrdiff_t>(e)));
    }
    if (is_tuple(obj)) {
      const auto& items = std::get<Value::Tuple>(obj->v);
      auto [b, e] = bounds(items.size());
      return tuple(Value::Tuple(items.begin() + static_cast<ptrdiff_t>(b),
                                items.begin() + static_cast<ptrdiff_t>(e)));
    }
    throw PyError("TypeError: '" + type_name(obj) + "' object is not sliceable");
  }

  // ---- calls ----

  Ref call(const Expr& e) {
    // Method call: obj.name(args).
    if (e.a->kind == Expr::Kind::kAttribute) {
      Ref obj = eval(*e.a->a);
      if (!std::holds_alternative<Module>(obj->v)) {
        std::vector<Ref> args;
        for (const auto& arg : e.items) args.push_back(eval(*arg));
        return call_method(obj, e.a->name, args);
      }
    }
    Ref callee = eval(*e.a);
    std::vector<Ref> args;
    for (const auto& arg : e.items) args.push_back(eval(*arg));
    return call_function(callee, args);
  }

  Ref call_method(const Ref& obj, const std::string& name, std::vector<Ref>& args);

  Interpreter& in_;
};

// Method implementations live in builtins.cc to keep this file focused on
// evaluation; the declaration above is the hook.
Ref call_object_method(Evaluator& ev, Interpreter& in, const Ref& obj, const std::string& name,
                       std::vector<Ref>& args);

Ref Evaluator::call_method(const Ref& obj, const std::string& name, std::vector<Ref>& args) {
  return call_object_method(*this, in_, obj, name, args);
}

// ---- Interpreter facade ----

Interpreter::Interpreter() {
  print_ = [](const std::string& line) { std::fputs((line + "\n").c_str(), stdout); };
  install_builtins();
}

Interpreter::~Interpreter() = default;

void Interpreter::reset() {
  globals_.clear();
  builtins_.clear();
  frames_.clear();
  arena_.clear();
  statements_ = 0;
  depth_ = 0;
  rng_ = Rng(0x9121);
  install_builtins();
}

std::string Interpreter::eval(const std::string& code, const std::string& expr) {
  auto block = parse_program(code);
  arena_.push_back(block);
  Evaluator ev(*this);
  try {
    ev.exec_block(*block);
  } catch (BreakSig&) {
    throw PyError("SyntaxError: 'break' outside loop");
  } catch (ContinueSig&) {
    throw PyError("SyntaxError: 'continue' outside loop");
  } catch (ReturnSig&) {
    throw PyError("SyntaxError: 'return' outside function");
  }
  if (expr.empty()) return "";
  return to_str(eval_expr(expr));
}

Ref Interpreter::eval_expr(const std::string& expr) {
  auto block = std::make_shared<Block>();  // arena entry to anchor lambdas
  arena_.push_back(block);
  ExprP e = parse_expression(expr);
  // Keep the expression AST alive alongside the arena anchor.
  auto holder = std::make_shared<Stmt>();
  holder->kind = Stmt::Kind::kExpr;
  holder->value = e;
  block->push_back(holder);
  Evaluator ev(*this);
  return ev.eval(*e);
}

void Interpreter::set_print_handler(std::function<void(const std::string&)> fn) {
  print_ = std::move(fn);
}

void Interpreter::set_global(const std::string& name, Ref value) {
  globals_[name] = std::move(value);
}

Ref Interpreter::get_global(const std::string& name) {
  auto it = globals_.find(name);
  return it == globals_.end() ? nullptr : it->second;
}

// install_builtins() and the module factories live in builtins.cc.


// ---- object methods ----

namespace {

void need_args(const std::string& name, const std::vector<Ref>& args, size_t lo, size_t hi) {
  if (args.size() < lo || args.size() > hi) {
    throw PyError("TypeError: " + name + "() takes " + std::to_string(lo) +
                  (hi == lo ? "" : ".." + std::to_string(hi)) + " arguments (" +
                  std::to_string(args.size()) + " given)");
  }
}

Ref str_method(const Ref& obj, const std::string& name, std::vector<Ref>& args) {
  const std::string& s = as_str(obj);
  if (name == "upper") {
    need_args(name, args, 0, 0);
    return string(str::to_upper(s));
  }
  if (name == "lower") {
    need_args(name, args, 0, 0);
    return string(str::to_lower(s));
  }
  if (name == "strip" || name == "lstrip" || name == "rstrip") {
    need_args(name, args, 0, 1);
    std::string chars = args.empty() ? " \t\n\r\v\f" : as_str(args[0]);
    std::string out = s;
    if (name != "rstrip") {
      size_t b = out.find_first_not_of(chars);
      out = b == std::string::npos ? "" : out.substr(b);
    }
    if (name != "lstrip") {
      size_t e = out.find_last_not_of(chars);
      out = e == std::string::npos ? "" : out.substr(0, e + 1);
    }
    return string(std::move(out));
  }
  if (name == "split") {
    need_args(name, args, 0, 1);
    Value::List out;
    if (args.empty()) {
      for (auto& part : str::split_ws(s)) out.push_back(string(std::move(part)));
    } else {
      const std::string& sep = as_str(args[0]);
      if (sep.empty()) throw PyError("ValueError: empty separator");
      size_t pos = 0;
      while (true) {
        size_t hit = s.find(sep, pos);
        if (hit == std::string::npos) {
          out.push_back(string(s.substr(pos)));
          break;
        }
        out.push_back(string(s.substr(pos, hit - pos)));
        pos = hit + sep.size();
      }
    }
    return list(std::move(out));
  }
  if (name == "join") {
    need_args(name, args, 1, 1);
    std::string out;
    bool first = true;
    Value::List items;
    if (is_list(args[0])) {
      items = std::get<Value::List>(args[0]->v);
    } else if (is_tuple(args[0])) {
      items = std::get<Value::Tuple>(args[0]->v);
    } else {
      throw PyError("TypeError: can only join an iterable");
    }
    for (const auto& item : items) {
      if (!first) out += s;
      first = false;
      out += as_str(item);
    }
    return string(std::move(out));
  }
  if (name == "replace") {
    need_args(name, args, 2, 2);
    return string(str::replace_all(s, as_str(args[0]), as_str(args[1])));
  }
  if (name == "startswith") {
    need_args(name, args, 1, 1);
    return boolean(str::starts_with(s, as_str(args[0])));
  }
  if (name == "endswith") {
    need_args(name, args, 1, 1);
    return boolean(str::ends_with(s, as_str(args[0])));
  }
  if (name == "find") {
    need_args(name, args, 1, 1);
    size_t pos = s.find(as_str(args[0]));
    return integer(pos == std::string::npos ? -1 : static_cast<int64_t>(pos));
  }
  if (name == "rfind") {
    need_args(name, args, 1, 1);
    size_t pos = s.rfind(as_str(args[0]));
    return integer(pos == std::string::npos ? -1 : static_cast<int64_t>(pos));
  }
  if (name == "count") {
    need_args(name, args, 1, 1);
    const std::string& needle = as_str(args[0]);
    if (needle.empty()) return integer(static_cast<int64_t>(s.size()) + 1);
    int64_t n = 0;
    size_t pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return integer(n);
  }
  if (name == "isdigit") {
    need_args(name, args, 0, 0);
    if (s.empty()) return boolean(false);
    for (char c : s) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return boolean(false);
    }
    return boolean(true);
  }
  if (name == "isalpha") {
    need_args(name, args, 0, 0);
    if (s.empty()) return boolean(false);
    for (char c : s) {
      if (!std::isalpha(static_cast<unsigned char>(c))) return boolean(false);
    }
    return boolean(true);
  }
  if (name == "zfill") {
    need_args(name, args, 1, 1);
    int64_t width = as_int(args[0]);
    std::string out = s;
    while (static_cast<int64_t>(out.size()) < width) out.insert(0, "0");
    return string(std::move(out));
  }
  if (name == "format") {
    // Positional {} / {0} with optional :spec.
    std::string out;
    size_t next = 0;
    size_t i = 0;
    while (i < s.size()) {
      if (s.compare(i, 2, "{{") == 0) {
        out += '{';
        i += 2;
        continue;
      }
      if (s.compare(i, 2, "}}") == 0) {
        out += '}';
        i += 2;
        continue;
      }
      if (s[i] == '{') {
        size_t end = s.find('}', i);
        if (end == std::string::npos) throw PyError("ValueError: unmatched '{' in format");
        std::string field = s.substr(i + 1, end - i - 1);
        std::string spec;
        size_t colon = field.find(':');
        if (colon != std::string::npos) {
          spec = field.substr(colon + 1);
          field = field.substr(0, colon);
        }
        size_t index = field.empty() ? next++ : static_cast<size_t>(std::stoll(field));
        if (index >= args.size()) throw PyError("IndexError: format index out of range");
        out += apply_format_spec(args[index], spec);
        i = end + 1;
        continue;
      }
      out += s[i++];
    }
    return string(std::move(out));
  }
  throw PyError("AttributeError: 'str' object has no attribute '" + name + "'");
}

Ref list_method(const Ref& obj, const std::string& name, std::vector<Ref>& args) {
  auto& items = std::get<Value::List>(obj->v);
  if (name == "append") {
    need_args(name, args, 1, 1);
    items.push_back(args[0]);
    return none();
  }
  if (name == "extend") {
    need_args(name, args, 1, 1);
    if (is_list(args[0])) {
      const auto& rhs = std::get<Value::List>(args[0]->v);
      items.insert(items.end(), rhs.begin(), rhs.end());
    } else if (is_tuple(args[0])) {
      const auto& rhs = std::get<Value::Tuple>(args[0]->v);
      items.insert(items.end(), rhs.begin(), rhs.end());
    } else {
      throw PyError("TypeError: can only extend with an iterable");
    }
    return none();
  }
  if (name == "insert") {
    need_args(name, args, 2, 2);
    int64_t i = as_int(args[0]);
    if (i < 0) i += static_cast<int64_t>(items.size());
    i = std::clamp<int64_t>(i, 0, static_cast<int64_t>(items.size()));
    items.insert(items.begin() + static_cast<ptrdiff_t>(i), args[1]);
    return none();
  }
  if (name == "pop") {
    need_args(name, args, 0, 1);
    if (items.empty()) throw PyError("IndexError: pop from empty list");
    int64_t i = args.empty() ? static_cast<int64_t>(items.size()) - 1 : as_int(args[0]);
    if (i < 0) i += static_cast<int64_t>(items.size());
    if (i < 0 || i >= static_cast<int64_t>(items.size())) {
      throw PyError("IndexError: pop index out of range");
    }
    Ref out = items[static_cast<size_t>(i)];
    items.erase(items.begin() + static_cast<ptrdiff_t>(i));
    return out;
  }
  if (name == "remove") {
    need_args(name, args, 1, 1);
    for (auto it = items.begin(); it != items.end(); ++it) {
      if (equal(*it, args[0])) {
        items.erase(it);
        return none();
      }
    }
    throw PyError("ValueError: list.remove(x): x not in list");
  }
  if (name == "index") {
    need_args(name, args, 1, 1);
    for (size_t i = 0; i < items.size(); ++i) {
      if (equal(items[i], args[0])) return integer(static_cast<int64_t>(i));
    }
    throw PyError("ValueError: " + to_repr(args[0]) + " is not in list");
  }
  if (name == "count") {
    need_args(name, args, 1, 1);
    int64_t n = 0;
    for (const auto& item : items) {
      if (equal(item, args[0])) ++n;
    }
    return integer(n);
  }
  if (name == "sort") {
    need_args(name, args, 0, 0);
    std::stable_sort(items.begin(), items.end(),
                     [](const Ref& a, const Ref& b) { return compare(a, b) < 0; });
    return none();
  }
  if (name == "reverse") {
    need_args(name, args, 0, 0);
    std::reverse(items.begin(), items.end());
    return none();
  }
  if (name == "copy") {
    need_args(name, args, 0, 0);
    return list(Value::List(items));
  }
  if (name == "clear") {
    need_args(name, args, 0, 0);
    items.clear();
    return none();
  }
  throw PyError("AttributeError: 'list' object has no attribute '" + name + "'");
}

Ref dict_method(const Ref& obj, const std::string& name, std::vector<Ref>& args) {
  auto& d = std::get<Value::Dict>(obj->v);
  if (name == "get") {
    need_args(name, args, 1, 2);
    auto v = dict_get(d, args[0]);
    if (v) return *v;
    return args.size() > 1 ? args[1] : none();
  }
  if (name == "keys") {
    need_args(name, args, 0, 0);
    Value::List out;
    for (const auto& [k, v] : d) {
      (void)v;
      out.push_back(k);
    }
    return list(std::move(out));
  }
  if (name == "values") {
    need_args(name, args, 0, 0);
    Value::List out;
    for (const auto& [k, v] : d) {
      (void)k;
      out.push_back(v);
    }
    return list(std::move(out));
  }
  if (name == "items") {
    need_args(name, args, 0, 0);
    Value::List out;
    for (const auto& [k, v] : d) out.push_back(tuple({k, v}));
    return list(std::move(out));
  }
  if (name == "pop") {
    need_args(name, args, 1, 2);
    auto v = dict_get(d, args[0]);
    if (v) {
      dict_del(d, args[0]);
      return *v;
    }
    if (args.size() > 1) return args[1];
    throw PyError("KeyError: " + to_repr(args[0]));
  }
  if (name == "update") {
    need_args(name, args, 1, 1);
    if (!is_dict(args[0])) throw PyError("TypeError: update() expects a dict");
    for (const auto& [k, v] : std::get<Value::Dict>(args[0]->v)) dict_set(d, k, v);
    return none();
  }
  if (name == "clear") {
    need_args(name, args, 0, 0);
    d.clear();
    return none();
  }
  if (name == "copy") {
    need_args(name, args, 0, 0);
    return dict(Value::Dict(d));
  }
  throw PyError("AttributeError: 'dict' object has no attribute '" + name + "'");
}

}  // namespace

Ref call_object_method(Evaluator& ev, Interpreter& in, const Ref& obj, const std::string& name,
                       std::vector<Ref>& args) {
  (void)ev;
  (void)in;
  if (is_str(obj)) return str_method(obj, name, args);
  if (is_list(obj)) return list_method(obj, name, args);
  if (is_dict(obj)) return dict_method(obj, name, args);
  throw PyError("AttributeError: '" + type_name(obj) + "' object has no attribute '" + name +
                "'");
}

}  // namespace ilps::py
