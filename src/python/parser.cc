// MiniPy recursive-descent parser.
#include "common/strings.h"
#include "python/ast.h"
#include "python/lexer.h"

namespace ilps::py {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  std::shared_ptr<Block> program() {
    auto block = std::make_shared<Block>();
    skip_newlines();
    while (!at(Tok::kEnd)) {
      block->push_back(statement());
      skip_newlines();
    }
    return block;
  }

  ExprP single_expression() {
    skip_newlines();
    ExprP e = expression();
    skip_newlines();
    if (!at(Tok::kEnd)) fail("unexpected trailing input after expression");
    return e;
  }

 private:
  // ---- token plumbing ----
  const Token& cur() const { return toks_[i_]; }
  bool at(Tok kind) const { return cur().kind == kind; }
  bool at_op(std::string_view op) const { return cur().kind == Tok::kOp && cur().text == op; }
  bool at_kw(std::string_view kw) const { return cur().kind == Tok::kKeyword && cur().text == kw; }
  const Token& advance() { return toks_[i_++]; }
  bool eat_op(std::string_view op) {
    if (at_op(op)) {
      ++i_;
      return true;
    }
    return false;
  }
  bool eat_kw(std::string_view kw) {
    if (at_kw(kw)) {
      ++i_;
      return true;
    }
    return false;
  }
  void expect_op(std::string_view op) {
    if (!eat_op(op)) fail("expected '" + std::string(op) + "'");
  }
  void expect_newline() {
    if (at(Tok::kEnd)) return;
    if (!at(Tok::kNewline)) fail("expected end of line");
    ++i_;
  }
  void skip_newlines() {
    while (at(Tok::kNewline)) ++i_;
  }
  [[noreturn]] void fail(const std::string& why) const {
    throw PyError("SyntaxError: " + why + " (line " + std::to_string(cur().line) + ", near '" +
                  cur().text + "')");
  }

  ExprP make(Expr::Kind kind) {
    auto e = std::make_shared<Expr>();
    e->kind = kind;
    e->line = cur().line;
    return e;
  }
  StmtP make_stmt(Stmt::Kind kind) {
    auto s = std::make_shared<Stmt>();
    s->kind = kind;
    s->line = cur().line;
    return s;
  }

  // ---- statements ----

  Block suite() {
    expect_op(":");
    Block block;
    if (at(Tok::kNewline)) {
      ++i_;
      skip_newlines();
      if (!at(Tok::kIndent)) fail("expected an indented block");
      ++i_;
      skip_newlines();
      while (!at(Tok::kDedent) && !at(Tok::kEnd)) {
        block.push_back(statement());
        skip_newlines();
      }
      if (at(Tok::kDedent)) ++i_;
    } else {
      // Inline suite: simple statements separated by ';'.
      block.push_back(simple_statement());
      while (eat_op(";")) {
        if (at(Tok::kNewline) || at(Tok::kEnd)) break;
        block.push_back(simple_statement());
      }
      expect_newline();
    }
    return block;
  }

  StmtP statement() {
    if (at_kw("if")) return if_statement();
    if (at_kw("while")) return while_statement();
    if (at_kw("for")) return for_statement();
    if (at_kw("def")) return def_statement();
    if (at_kw("try")) return try_statement();
    StmtP s = simple_statement();
    while (eat_op(";")) {
      if (at(Tok::kNewline) || at(Tok::kEnd)) break;
      // Wrap multiple simple statements on a line into sequential order by
      // hoisting them as separate statements via a synthetic pass-through:
      // simplest correct behaviour is to treat them as an inline block.
      auto wrapper = make_stmt(Stmt::Kind::kIf);
      wrapper->value = std::make_shared<Expr>();
      wrapper->value->kind = Expr::Kind::kLiteral;
      wrapper->value->literal = boolean(true);
      wrapper->body.push_back(s);
      wrapper->body.push_back(simple_statement());
      while (eat_op(";")) {
        if (at(Tok::kNewline) || at(Tok::kEnd)) break;
        wrapper->body.push_back(simple_statement());
      }
      s = wrapper;
      break;
    }
    expect_newline();
    return s;
  }

  StmtP if_statement() {
    auto s = make_stmt(Stmt::Kind::kIf);
    advance();  // if / elif
    s->value = expression();
    s->body = suite();
    skip_newlines();
    if (at_kw("elif")) {
      s->orelse.push_back(if_statement());
    } else if (eat_kw("else")) {
      s->orelse = suite();
    }
    return s;
  }

  StmtP while_statement() {
    auto s = make_stmt(Stmt::Kind::kWhile);
    advance();
    s->value = expression();
    s->body = suite();
    return s;
  }

  StmtP for_statement() {
    auto s = make_stmt(Stmt::Kind::kFor);
    advance();
    s->names.push_back(expect_name());
    while (eat_op(",")) s->names.push_back(expect_name());
    if (!eat_kw("in")) fail("expected 'in' in for statement");
    s->value = expression_list();
    s->body = suite();
    return s;
  }

  StmtP def_statement() {
    auto s = make_stmt(Stmt::Kind::kDef);
    advance();
    s->name = expect_name();
    expect_op("(");
    if (!at_op(")")) {
      while (true) {
        s->params.push_back(expect_name());
        if (eat_op("=")) {
          s->defaults.push_back(expression());
        } else if (!s->defaults.empty()) {
          fail("non-default argument follows default argument");
        }
        if (!eat_op(",")) break;
      }
    }
    expect_op(")");
    s->body = suite();
    return s;
  }

  StmtP try_statement() {
    auto s = make_stmt(Stmt::Kind::kTry);
    advance();  // try
    s->body = suite();
    skip_newlines();
    while (at_kw("except")) {
      advance();
      Stmt::Handler h;
      if (at(Tok::kName)) h.type = advance().text;
      if (eat_kw("as")) h.var = expect_name();
      h.body = suite();
      s->handlers.push_back(std::move(h));
      skip_newlines();
    }
    if (eat_kw("finally")) {
      s->orelse = suite();
      skip_newlines();
    }
    if (s->handlers.empty() && s->orelse.empty()) {
      fail("try statement needs an except or finally clause");
    }
    return s;
  }

  StmtP simple_statement() {
    if (eat_kw("raise")) {
      auto s = make_stmt(Stmt::Kind::kRaise);
      if (!at(Tok::kNewline) && !at(Tok::kEnd)) {
        s->name = expect_name();
        if (eat_op("(")) {
          if (!at_op(")")) s->value = expression();
          expect_op(")");
        }
      }
      return s;
    }
    if (eat_kw("assert")) {
      auto s = make_stmt(Stmt::Kind::kAssert);
      s->value = expression();
      if (eat_op(",")) s->target = expression();
      return s;
    }
    if (eat_kw("return")) {
      auto s = make_stmt(Stmt::Kind::kReturn);
      if (!at(Tok::kNewline) && !at(Tok::kEnd) && !at_op(";")) s->value = expression_list();
      return s;
    }
    if (eat_kw("break")) return make_stmt(Stmt::Kind::kBreak);
    if (eat_kw("continue")) return make_stmt(Stmt::Kind::kContinue);
    if (eat_kw("pass")) return make_stmt(Stmt::Kind::kPass);
    if (eat_kw("import")) {
      auto s = make_stmt(Stmt::Kind::kImport);
      s->names.push_back(expect_name());
      while (eat_op(",")) s->names.push_back(expect_name());
      return s;
    }
    if (eat_kw("from")) {
      // `from math import ...` loads the whole module; member access stays
      // qualified in MiniPy, so we record just the module.
      auto s = make_stmt(Stmt::Kind::kImport);
      s->names.push_back(expect_name());
      if (!eat_kw("import")) fail("expected 'import' after 'from <module>'");
      // Consume the imported-name list.
      if (eat_op("*")) return s;
      expect_name();
      while (eat_op(",")) expect_name();
      return s;
    }
    if (eat_kw("global")) {
      auto s = make_stmt(Stmt::Kind::kGlobal);
      s->names.push_back(expect_name());
      while (eat_op(",")) s->names.push_back(expect_name());
      return s;
    }
    if (eat_kw("del")) {
      auto s = make_stmt(Stmt::Kind::kDel);
      s->target = postfix_target();
      return s;
    }

    // Expression, assignment, or augmented assignment.
    ExprP first = expression_list();
    static const char* kAug[] = {"+=", "-=", "*=", "/=", "//=", "%=", "**="};
    for (const char* op : kAug) {
      if (at_op(op)) {
        advance();
        auto s = make_stmt(Stmt::Kind::kAugAssign);
        s->target = first;
        s->op = std::string(op).substr(0, std::string(op).size() - 1);
        s->value = expression_list();
        check_target(s->target);
        return s;
      }
    }
    if (eat_op("=")) {
      auto s = make_stmt(Stmt::Kind::kAssign);
      s->target = first;
      s->value = expression_list();
      // Chained assignment a = b = expr.
      while (eat_op("=")) {
        auto inner = make_stmt(Stmt::Kind::kAssign);
        inner->target = s->value;
        inner->value = expression_list();
        check_target(inner->target);
        // Evaluate once, assign right-to-left: model as nested assigns of
        // the same expression (safe for our side-effect-free targets).
        s->value = inner->value;
        auto chain = make_stmt(Stmt::Kind::kIf);
        chain->value = std::make_shared<Expr>();
        chain->value->kind = Expr::Kind::kLiteral;
        chain->value->literal = boolean(true);
        chain->body.push_back(s);
        chain->body.push_back(inner);
        check_target(s->target);
        return chain;
      }
      check_target(s->target);
      return s;
    }
    auto s = make_stmt(Stmt::Kind::kExpr);
    s->value = first;
    return s;
  }

  void check_target(const ExprP& t) {
    switch (t->kind) {
      case Expr::Kind::kName:
      case Expr::Kind::kIndex:
      case Expr::Kind::kAttribute:
        return;
      case Expr::Kind::kTupleLit:
      case Expr::Kind::kListLit:
        for (const auto& item : t->items) check_target(item);
        return;
      default:
        fail("cannot assign to this expression");
    }
  }

  std::string expect_name() {
    if (!at(Tok::kName)) fail("expected a name");
    return advance().text;
  }

  // A target usable by del: name / index / attribute.
  ExprP postfix_target() {
    ExprP e = atom();
    e = postfix(e);
    return e;
  }

  // ---- expressions ----

  // expression_list: expr (',' expr)* -> tuple if more than one.
  ExprP expression_list() {
    ExprP first = expression();
    if (!at_op(",")) return first;
    auto t = make(Expr::Kind::kTupleLit);
    t->items.push_back(first);
    while (eat_op(",")) {
      if (at(Tok::kNewline) || at(Tok::kEnd) || at_op("=") || at_op(")") || at_op("]")) break;
      t->items.push_back(expression());
    }
    return t;
  }

  ExprP expression() {
    if (at_kw("lambda")) return lambda();
    ExprP value = or_expr();
    if (eat_kw("if")) {
      auto t = make(Expr::Kind::kTernary);
      t->a = value;
      t->b = or_expr();
      if (!eat_kw("else")) fail("expected 'else' in conditional expression");
      t->c = expression();
      return t;
    }
    return value;
  }

  ExprP lambda() {
    advance();  // lambda
    auto e = make(Expr::Kind::kLambda);
    if (!at_op(":")) {
      while (true) {
        e->params.push_back(expect_name());
        if (eat_op("=")) {
          e->defaults.push_back(expression());
        }
        if (!eat_op(",")) break;
      }
    }
    expect_op(":");
    e->a = expression();
    return e;
  }

  ExprP or_expr() {
    ExprP lhs = and_expr();
    if (!at_kw("or")) return lhs;
    auto e = make(Expr::Kind::kBoolOp);
    e->op = "or";
    e->items.push_back(lhs);
    while (eat_kw("or")) e->items.push_back(and_expr());
    return e;
  }

  ExprP and_expr() {
    ExprP lhs = not_expr();
    if (!at_kw("and")) return lhs;
    auto e = make(Expr::Kind::kBoolOp);
    e->op = "and";
    e->items.push_back(lhs);
    while (eat_kw("and")) e->items.push_back(not_expr());
    return e;
  }

  ExprP not_expr() {
    if (at_kw("not")) {
      auto e = make(Expr::Kind::kUnary);
      advance();
      e->op = "not";
      e->a = not_expr();
      return e;
    }
    return comparison();
  }

  ExprP comparison() {
    ExprP lhs = bit_or();
    auto grab_op = [&]() -> std::optional<std::string> {
      static const char* kOps[] = {"<", ">", "<=", ">=", "==", "!="};
      for (const char* op : kOps) {
        if (at_op(op)) {
          advance();
          return std::string(op);
        }
      }
      if (at_kw("in")) {
        advance();
        return std::string("in");
      }
      if (at_kw("is")) {
        advance();
        if (eat_kw("not")) return std::string("is not");
        return std::string("is");
      }
      if (at_kw("not")) {
        advance();
        if (!eat_kw("in")) fail("expected 'in' after 'not'");
        return std::string("not in");
      }
      return std::nullopt;
    };
    auto first = grab_op();
    if (!first) return lhs;
    auto e = make(Expr::Kind::kCompare);
    e->a = lhs;
    e->ops.push_back(*first);
    e->items.push_back(bit_or());
    while (auto op = grab_op()) {
      e->ops.push_back(*op);
      e->items.push_back(bit_or());
    }
    return e;
  }

  ExprP binary_chain(ExprP (Parser::*next)(), std::initializer_list<const char*> ops) {
    ExprP lhs = (this->*next)();
    while (true) {
      bool matched = false;
      for (const char* op : ops) {
        if (at_op(op)) {
          auto e = make(Expr::Kind::kBinary);
          advance();
          e->op = op;
          e->a = lhs;
          e->b = (this->*next)();
          lhs = e;
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprP bit_or() { return binary_chain(&Parser::bit_xor, {"|"}); }
  ExprP bit_xor() { return binary_chain(&Parser::bit_and, {"^"}); }
  ExprP bit_and() { return binary_chain(&Parser::shift, {"&"}); }
  ExprP shift() { return binary_chain(&Parser::additive, {"<<", ">>"}); }
  ExprP additive() { return binary_chain(&Parser::multiplicative, {"+", "-"}); }
  ExprP multiplicative() {
    return binary_chain(&Parser::unary, {"*", "//", "/", "%"});
  }

  ExprP unary() {
    if (at_op("-") || at_op("+") || at_op("~")) {
      auto e = make(Expr::Kind::kUnary);
      e->op = advance().text;
      e->a = unary();
      return e;
    }
    return power();
  }

  ExprP power() {
    ExprP base = postfix(atom());
    if (at_op("**")) {
      auto e = make(Expr::Kind::kBinary);
      advance();
      e->op = "**";
      e->a = base;
      e->b = unary();  // right associative, unary binds into exponent
      return e;
    }
    return base;
  }

  ExprP postfix(ExprP e) {
    while (true) {
      if (at_op("(")) {
        advance();
        auto call = make(Expr::Kind::kCall);
        call->a = e;
        if (!at_op(")")) {
          while (true) {
            call->items.push_back(expression());
            if (!eat_op(",")) break;
            if (at_op(")")) break;
          }
        }
        expect_op(")");
        e = call;
      } else if (at_op("[")) {
        advance();
        ExprP lo;
        ExprP hi;
        bool is_slice = false;
        if (!at_op(":")) lo = expression();
        if (eat_op(":")) {
          is_slice = true;
          if (!at_op("]")) hi = expression();
        }
        expect_op("]");
        if (is_slice) {
          auto s = make(Expr::Kind::kSlice);
          s->a = e;
          s->b = lo;
          s->c = hi;
          e = s;
        } else {
          auto idx = make(Expr::Kind::kIndex);
          idx->a = e;
          idx->b = lo;
          e = idx;
        }
      } else if (at_op(".")) {
        advance();
        auto attr = make(Expr::Kind::kAttribute);
        attr->a = e;
        attr->name = expect_name();
        e = attr;
      } else {
        return e;
      }
    }
  }

  ExprP atom() {
    if (at(Tok::kInt)) {
      auto e = make(Expr::Kind::kLiteral);
      e->literal = integer(advance().ival);
      return e;
    }
    if (at(Tok::kFloat)) {
      auto e = make(Expr::Kind::kLiteral);
      e->literal = floating(advance().dval);
      return e;
    }
    if (at(Tok::kString)) {
      // Adjacent literals concatenate; an f-string anywhere makes the
      // whole concatenation an f-string.
      bool any_f = false;
      std::string text;
      while (at(Tok::kString)) {
        any_f = any_f || cur().fstring;
        text += advance().text;
      }
      if (!any_f) {
        auto e = make(Expr::Kind::kLiteral);
        e->literal = string(std::move(text));
        return e;
      }
      return fstring(text);
    }
    if (at_kw("True") || at_kw("False")) {
      auto e = make(Expr::Kind::kLiteral);
      e->literal = boolean(advance().text == "True");
      return e;
    }
    if (at_kw("None")) {
      advance();
      auto e = make(Expr::Kind::kLiteral);
      e->literal = none();
      return e;
    }
    if (at_kw("lambda")) return lambda();
    if (at(Tok::kName)) {
      auto e = make(Expr::Kind::kName);
      e->name = advance().text;
      return e;
    }
    if (eat_op("(")) {
      if (eat_op(")")) return make(Expr::Kind::kTupleLit);
      ExprP first = expression();
      if (at_op(",")) {
        auto t = make(Expr::Kind::kTupleLit);
        t->items.push_back(first);
        while (eat_op(",")) {
          if (at_op(")")) break;
          t->items.push_back(expression());
        }
        expect_op(")");
        return t;
      }
      expect_op(")");
      return first;
    }
    if (eat_op("[")) {
      if (eat_op("]")) return make(Expr::Kind::kListLit);
      ExprP first = expression();
      if (at_kw("for")) {
        auto comp = make(Expr::Kind::kListComp);
        comp->a = first;
        advance();  // for
        comp->names.push_back(expect_name());
        while (eat_op(",")) comp->names.push_back(expect_name());
        // The iterable is an or_test in Python's grammar, so a following
        // 'if' belongs to the comprehension, not a ternary.
        if (!eat_kw("in")) fail("expected 'in' in comprehension");
        comp->b = or_expr();
        if (eat_kw("if")) comp->c = expression();
        expect_op("]");
        return comp;
      }
      auto l = make(Expr::Kind::kListLit);
      l->items.push_back(first);
      while (eat_op(",")) {
        if (at_op("]")) break;
        l->items.push_back(expression());
      }
      expect_op("]");
      return l;
    }
    if (eat_op("{")) {
      auto d = make(Expr::Kind::kDictLit);
      if (eat_op("}")) return d;
      while (true) {
        d->items.push_back(expression());
        expect_op(":");
        d->items.push_back(expression());
        if (!eat_op(",")) break;
        if (at_op("}")) break;
      }
      expect_op("}");
      return d;
    }
    fail("unexpected token");
  }

  // Splits an f-string body into literal segments and embedded
  // expressions with optional ":spec" suffixes.
  ExprP fstring(const std::string& raw) {
    auto e = make(Expr::Kind::kFString);
    std::string literal;
    size_t i = 0;
    while (i < raw.size()) {
      if (raw.compare(i, 2, "\\{") == 0) {
        literal += '{';
        i += 2;
        continue;
      }
      if (raw.compare(i, 2, "\\}") == 0) {
        literal += '}';
        i += 2;
        continue;
      }
      if (raw.compare(i, 2, "{{") == 0) {
        literal += '{';
        i += 2;
        continue;
      }
      if (raw.compare(i, 2, "}}") == 0) {
        literal += '}';
        i += 2;
        continue;
      }
      if (raw[i] == '{') {
        size_t depth = 1;
        size_t start = ++i;
        while (i < raw.size() && depth > 0) {
          if (raw[i] == '{') ++depth;
          if (raw[i] == '}') --depth;
          if (depth > 0) ++i;
        }
        if (depth != 0) fail("unterminated expression in f-string");
        std::string inner = raw.substr(start, i - start);
        ++i;  // past '}'
        std::string spec;
        // Split off a trailing :spec that is not inside brackets.
        int bracket = 0;
        for (size_t k = 0; k < inner.size(); ++k) {
          char ch = inner[k];
          if (ch == '[' || ch == '(') ++bracket;
          if (ch == ']' || ch == ')') --bracket;
          if (ch == ':' && bracket == 0) {
            spec = inner.substr(k + 1);
            inner = inner.substr(0, k);
            break;
          }
        }
        e->strs.push_back(literal);
        literal.clear();
        e->items.push_back(parse_expression(inner));
        e->specs.push_back(spec);
        continue;
      }
      literal += raw[i++];
    }
    e->strs.push_back(literal);
    return e;
  }

  std::vector<Token> toks_;
  size_t i_ = 0;
};

}  // namespace

std::shared_ptr<Block> parse_program(std::string_view source) {
  Parser p(tokenize(source));
  return p.program();
}

ExprP parse_expression(std::string_view source) {
  Parser p(tokenize(source));
  return p.single_expression();
}

}  // namespace ilps::py
