// MiniPy value model. MiniPy is the stand-in for an embedded CPython: a
// Python-subset interpreter with the same embedding surface Swift/T uses
// (initialize, evaluate a code fragment, read back one expression's string
// value, optionally finalize to clear state).
//
// Values: None, bool, int, float, str, list, dict, tuple, function.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/error.h"

namespace ilps::py {

// Raised for Python-level errors; the message mimics CPython ("NameError:
// name 'x' is not defined").
class PyError : public ScriptError {
 public:
  explicit PyError(const std::string& what) : ScriptError(what) {}
};

class Value;
// Refs are shared and mutable so Python aliasing semantics hold: two names
// bound to one list observe each other's in-place mutations. Only lists
// and dicts are ever mutated through a Ref.
using Ref = std::shared_ptr<Value>;

struct NoneType {};

// A user-defined function (def or lambda).
struct Function {
  std::string name;
  std::vector<std::string> params;
  std::vector<Ref> defaults;  // aligned to the tail of params
  // Body is an opaque, shared-ownership pointer to AST owned by the
  // defining interpreter (a Block for def, an Expr for lambda).
  std::shared_ptr<const void> body;
  bool is_lambda = false;
};

// A built-in function.
struct Builtin {
  std::string name;
  std::function<Ref(std::vector<Ref>&)> fn;
};

// A module (math, random): a named bag of members.
struct Module {
  std::string name;
  std::map<std::string, Ref> members;
};

class Value {
 public:
  using List = std::vector<Ref>;
  using Dict = std::vector<std::pair<Ref, Ref>>;  // insertion-ordered
  // Distinct type so the variant can discriminate tuple from list.
  struct Tuple : std::vector<Ref> {
    using std::vector<Ref>::vector;
    Tuple() = default;
    explicit Tuple(std::vector<Ref> items) : std::vector<Ref>(std::move(items)) {}
  };

  std::variant<NoneType, bool, int64_t, double, std::string, List, Dict, Tuple, Function, Builtin,
               Module>
      v;

  Value() : v(NoneType{}) {}
  template <typename T>
  explicit Value(T x) : v(std::move(x)) {}
};

// ---- constructors ----
Ref none();
Ref boolean(bool b);
Ref integer(int64_t i);
Ref floating(double d);
Ref string(std::string s);
Ref list(Value::List items);
Ref dict(Value::Dict items);
Ref tuple(Value::Tuple items);

// ---- inspectors ----
bool is_none(const Ref& v);
bool is_bool(const Ref& v);
bool is_int(const Ref& v);
bool is_float(const Ref& v);
bool is_str(const Ref& v);
bool is_list(const Ref& v);
bool is_dict(const Ref& v);
bool is_tuple(const Ref& v);

// Python type name ("int", "str", ...).
std::string type_name(const Ref& v);

// ---- conversions (throw PyError on type mismatch) ----
bool truthy(const Ref& v);
int64_t as_int(const Ref& v);      // bool -> 0/1, int only (no float coercion)
double as_double(const Ref& v);    // bool/int/float
const std::string& as_str(const Ref& v);

// str(v) and repr(v) per Python conventions (repr quotes strings).
std::string to_str(const Ref& v);
std::string to_repr(const Ref& v);

// == comparison (deep, numeric cross-type like Python).
bool equal(const Ref& a, const Ref& b);
// Ordering comparison; throws PyError for unorderable types.
int compare(const Ref& a, const Ref& b);

// Dict key lookup (linear over insertion order, Python-equal semantics).
std::optional<Ref> dict_get(const Value::Dict& d, const Ref& key);
void dict_set(Value::Dict& d, const Ref& key, const Ref& value);
bool dict_del(Value::Dict& d, const Ref& key);

}  // namespace ilps::py
