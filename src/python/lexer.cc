#include "python/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace ilps::py {

namespace {

const char* kKeywords[] = {"def",   "return", "if",    "elif",   "else",  "while", "for",
                           "in",    "not",    "and",   "or",     "break", "continue",
                           "pass",  "import", "from",  "lambda", "global", "True",  "False",
                           "None",  "del",    "is",    "try",    "except", "finally",
                           "raise", "as",    "assert"};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-char operators, longest first.
const char* kOps[] = {"**=", "//=", "<<=", ">>=", "==", "!=", "<=", ">=", "->", "+=", "-=",
                      "*=",  "/=",  "%=",  "**",  "//", "<<", ">>", "(",  ")",  "[",  "]",
                      "{",   "}",   ",",   ":",   ".",  ";",  "=",  "+",  "-",  "*",  "/",
                      "%",   "<",   ">",   "&",   "|",  "^",  "~",  "@"};

}  // namespace

bool is_keyword(std::string_view word) {
  for (const char* k : kKeywords) {
    if (word == k) return true;
  }
  return false;
}

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::vector<int> indents = {0};
  size_t i = 0;
  int line = 1;
  int paren_depth = 0;
  bool at_line_start = true;

  auto push = [&](Tok kind, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i <= src.size()) {
    if (at_line_start && paren_depth == 0) {
      // Measure indentation; skip blank and comment-only lines entirely.
      size_t start = i;
      int col = 0;
      while (i < src.size() && (src[i] == ' ' || src[i] == '\t')) {
        col += src[i] == '\t' ? 8 - (col % 8) : 1;
        ++i;
      }
      if (i >= src.size()) break;
      if (src[i] == '\n') {
        ++i;
        ++line;
        continue;
      }
      if (src[i] == '#') {
        while (i < src.size() && src[i] != '\n') ++i;
        continue;
      }
      if (src[i] == '\r') {
        ++i;
        continue;
      }
      (void)start;
      if (col > indents.back()) {
        indents.push_back(col);
        push(Tok::kIndent);
      } else {
        while (col < indents.back()) {
          indents.pop_back();
          push(Tok::kDedent);
        }
        if (col != indents.back()) {
          throw PyError("IndentationError: unindent does not match any outer indentation level (line " +
                        std::to_string(line) + ")");
        }
      }
      at_line_start = false;
      continue;
    }

    if (i >= src.size()) break;
    char c = src[i];

    if (c == '\r') {
      ++i;
      continue;
    }
    if (c == '\n') {
      ++i;
      ++line;
      if (paren_depth > 0) continue;  // implicit joining
      if (!out.empty() && out.back().kind != Tok::kNewline && out.back().kind != Tok::kIndent &&
          out.back().kind != Tok::kDedent) {
        push(Tok::kNewline);
      }
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '\\' && i + 1 < src.size() && src[i + 1] == '\n') {
      i += 2;
      ++line;
      continue;
    }

    // String literals (with optional f prefix; '' or "" or triple).
    bool fprefix = false;
    size_t save = i;
    if ((c == 'f' || c == 'F') && i + 1 < src.size() && (src[i + 1] == '"' || src[i + 1] == '\'')) {
      fprefix = true;
      ++i;
      c = src[i];
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      bool triple = src.substr(i).starts_with(std::string(3, quote));
      i += triple ? 3 : 1;
      std::string value;
      while (true) {
        if (i >= src.size()) throw PyError("SyntaxError: unterminated string (line " +
                                           std::to_string(line) + ")");
        if (triple) {
          if (src.substr(i).starts_with(std::string(3, quote))) {
            i += 3;
            break;
          }
        } else if (src[i] == quote) {
          ++i;
          break;
        }
        if (src[i] == '\n') {
          if (!triple) throw PyError("SyntaxError: EOL in string (line " + std::to_string(line) + ")");
          ++line;
          value += '\n';
          ++i;
          continue;
        }
        if (src[i] == '\\' && i + 1 < src.size()) {
          char e = src[i + 1];
          i += 2;
          switch (e) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case 'r': value += '\r'; break;
            case '\\': value += '\\'; break;
            case '\'': value += '\''; break;
            case '"': value += '"'; break;
            case '0': value += '\0'; break;
            case '\n': ++line; break;  // line continuation in string
            case '{': value += fprefix ? "\\{" : "{"; break;
            case '}': value += fprefix ? "\\}" : "}"; break;
            default:
              value += '\\';
              value += e;
          }
          continue;
        }
        value += src[i++];
      }
      Token t;
      t.kind = Tok::kString;
      t.text = std::move(value);
      t.fstring = fprefix;
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    i = save;  // undo the f-prefix lookahead if it was not a string
    c = src[i];

    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      if (src.substr(i).starts_with("0x") || src.substr(i).starts_with("0X")) {
        i += 2;
        while (i < src.size() && std::isxdigit(static_cast<unsigned char>(src[i]))) ++i;
      } else {
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        if (i < src.size() && src[i] == '.' &&
            !(i + 1 < src.size() && src[i + 1] == '.')) {  // not a slice ".."
          is_float = true;
          ++i;
          while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        }
        if (i < src.size() && (src[i] == 'e' || src[i] == 'E')) {
          size_t exp = i + 1;
          if (exp < src.size() && (src[exp] == '+' || src[exp] == '-')) ++exp;
          if (exp < src.size() && std::isdigit(static_cast<unsigned char>(src[exp]))) {
            is_float = true;
            i = exp;
            while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
          }
        }
      }
      std::string text(src.substr(start, i - start));
      Token t;
      t.line = line;
      if (is_float) {
        t.kind = Tok::kFloat;
        t.dval = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = Tok::kInt;
        t.ival = std::strtoll(text.c_str(), nullptr, 0);
      }
      t.text = std::move(text);
      out.push_back(std::move(t));
      continue;
    }

    // Identifiers and keywords.
    if (ident_start(c)) {
      size_t start = i;
      while (i < src.size() && ident_char(src[i])) ++i;
      std::string word(src.substr(start, i - start));
      // Evaluate the kind before the call: argument evaluation order is
      // unspecified and std::move(word) may bind first.
      Tok kind = is_keyword(word) ? Tok::kKeyword : Tok::kName;
      push(kind, std::move(word));
      continue;
    }

    // Operators.
    bool matched = false;
    for (const char* op : kOps) {
      if (src.substr(i).starts_with(op)) {
        if (op[0] == '(' || op[0] == '[' || op[0] == '{') ++paren_depth;
        if (op[0] == ')' || op[0] == ']' || op[0] == '}') --paren_depth;
        push(Tok::kOp, op);
        i += std::string_view(op).size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw PyError("SyntaxError: invalid character '" + std::string(1, c) + "' (line " +
                    std::to_string(line) + ")");
    }
  }

  if (!out.empty() && out.back().kind != Tok::kNewline) push(Tok::kNewline);
  while (indents.size() > 1) {
    indents.pop_back();
    push(Tok::kDedent);
  }
  push(Tok::kEnd);
  return out;
}

}  // namespace ilps::py
