// The MiniPy interpreter with a CPython-embedding-shaped API.
//
// Swift/T calls Python by linking libpython and running
//   PyRun_String(code); result = str(eval(expr));
// per task. MiniPy reproduces that surface: eval(code, expr) executes the
// statements in `code` in the interpreter's global scope, then evaluates
// the expression `expr` and returns its str(). Global state persists
// across eval calls until reset() — which is the retain-vs-reinitialize
// policy choice §III.C of the paper discusses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "python/ast.h"
#include "python/value.h"

namespace ilps::py {

class Interpreter {
 public:
  Interpreter();
  ~Interpreter();

  // Executes `code`; then, if `expr` is nonempty, evaluates it and returns
  // str(result). Throws PyError on any Python-level error.
  std::string eval(const std::string& code, const std::string& expr = "");

  // Evaluates a single expression to a value.
  Ref eval_expr(const std::string& expr);

  // Clears all global state (Py_Finalize + Py_Initialize equivalent).
  void reset();

  // print() sink; defaults to stdout.
  void set_print_handler(std::function<void(const std::string& line)> fn);

  // Direct global access for embedding (PyDict_SetItemString analogue).
  void set_global(const std::string& name, Ref value);
  Ref get_global(const std::string& name);  // nullptr if missing

  uint64_t statements_executed() const { return statements_; }

  // Deterministic RNG backing the `random` module.
  Rng& rng() { return rng_; }

 private:
  friend class Evaluator;

  struct Frame {
    std::map<std::string, Ref> locals;
    std::vector<std::string> global_names;
  };

  void install_builtins();

  std::map<std::string, Ref> globals_;
  std::map<std::string, Ref> builtins_;
  std::vector<Frame> frames_;
  std::vector<std::shared_ptr<Block>> arena_;  // keeps executed ASTs alive
  std::function<void(const std::string&)> print_;
  uint64_t statements_ = 0;
  int depth_ = 0;
  Rng rng_{0x9121};
};

// Installs the `math` and `random` module objects (called by the
// interpreter's builtin setup; exposed for tests).
Ref make_math_module();
Ref make_random_module(Rng& rng);

}  // namespace ilps::py
