// BindGen — the SWIG role in Fig. 3 of the paper: given C function
// prototypes (header text), generate MiniTcl command bindings so the
// functions become callable from Swift/T code, with argument conversion
// (numbers, strings) and blob-handle passing for pointer types, plus a
// FortWrap-lite translator for Fortran interfaces.
//
// Pipeline:
//   1. NativeLibrary: the "compiled object file" — named C/C++ functions
//      adapted to a uniform calling convention (NativeValue in/out).
//      The add() template plays the role of compiling afunc.c to afunc.o.
//   2. parse_header(): reads prototypes out of C header text (SWIG's
//      interface parsing).
//   3. bind_to_tcl(): registers one Tcl command per prototype that
//      converts Tcl strings to C values — int/double parsed, char*
//      passed through, T* resolved from blobutils handles — and converts
//      the result back (SWIG's generated wrapper code).
//   4. fortwrap(): converts Fortran subroutine interfaces to C prototypes
//      first, as FortWrap does.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "blob/blob.h"
#include "common/error.h"

namespace ilps::tcl {
class Interp;
}

namespace ilps::bind {

class BindError : public Error {
 public:
  explicit BindError(const std::string& what) : Error(what) {}
};

// The uniform value passed across the binding boundary.
// Pointer arguments travel as blobs (void* + implicit length).
using NativeValue = std::variant<int64_t, double, std::string, blob::Blob>;

using NativeFn = std::function<NativeValue(std::vector<NativeValue>&)>;

// ---- C type model ----

enum class CType {
  kVoid,
  kInt,      // int, long, int64_t
  kDouble,   // double, float
  kString,   // const char*, char*
  kDoublePtr,
  kIntPtr,
  kVoidPtr,
};

const char* c_type_name(CType t);

struct CParam {
  CType type;
  std::string name;
};

struct CFunction {
  CType return_type = CType::kVoid;
  std::string name;
  std::vector<CParam> params;
};

// Parses function prototypes from C header text. Understands the types
// above, comments, and extern "C" blocks. Throws BindError on any
// declaration it cannot handle.
std::vector<CFunction> parse_header(const std::string& header_text);

// Renders a prototype back to C (used in tests and diagnostics).
std::string to_prototype(const CFunction& fn);

// ---- FortWrap-lite ----
// Converts Fortran 90 interface declarations to C prototypes, e.g.
//   subroutine heat_step(n, dt, u)
//     integer :: n
//     real(8) :: dt
//     real(8) :: u(n)
//   end subroutine
// becomes: void heat_step(int n, double dt, double* u);
std::string fortwrap(const std::string& fortran_interface);

// ---- the "object file" ----

class NativeLibrary {
 public:
  // Registers a pre-adapted function.
  void add_raw(const std::string& name, NativeFn fn);

  // Registers a plain C/C++ function; an adapter converting NativeValue
  // arguments to the function's parameter types is generated at compile
  // time. Supported parameter types: int64_t/int/long, double, const
  // std::string& / std::string, double* (paired with a preceding or
  // following length by the caller's convention — the raw blob is
  // reinterpreted), std::span<double>, std::span<const double>.
  template <typename R, typename... Args>
  void add(const std::string& name, R (*fn)(Args...));

  const NativeFn* find(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, NativeFn> fns_;
};

// ---- the generated wrapper ----

// Registers `<package>::<fn>` Tcl commands for every prototype, wired to
// the library implementations through the blob registry for pointer
// arguments. Provides Tcl package `package_name` version 1.0.
// Throws BindError when a prototype has no implementation in `lib`.
void bind_to_tcl(tcl::Interp& interp, const std::string& package_name,
                 const std::vector<CFunction>& prototypes, const NativeLibrary& lib,
                 blob::Registry& blobs);

// ---- template adapter implementation ----

namespace detail {

template <typename T>
struct ArgCast;

template <>
struct ArgCast<int64_t> {
  static int64_t get(NativeValue& v) {
    if (auto* i = std::get_if<int64_t>(&v)) return *i;
    if (auto* d = std::get_if<double>(&v)) return static_cast<int64_t>(*d);
    throw BindError("expected integer argument");
  }
};
template <>
struct ArgCast<int> {
  static int get(NativeValue& v) { return static_cast<int>(ArgCast<int64_t>::get(v)); }
};
template <>
struct ArgCast<double> {
  static double get(NativeValue& v) {
    if (auto* d = std::get_if<double>(&v)) return *d;
    if (auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
    throw BindError("expected floating-point argument");
  }
};
template <>
struct ArgCast<std::string> {
  static std::string get(NativeValue& v) {
    if (auto* s = std::get_if<std::string>(&v)) return *s;
    throw BindError("expected string argument");
  }
};
template <>
struct ArgCast<const std::string&> {
  static std::string get(NativeValue& v) { return ArgCast<std::string>::get(v); }
};
template <>
struct ArgCast<double*> {
  static double* get(NativeValue& v) {
    if (auto* b = std::get_if<blob::Blob>(&v)) return b->as<double>().data();
    throw BindError("expected blob argument for double*");
  }
};
template <>
struct ArgCast<const double*> {
  static const double* get(NativeValue& v) {
    if (auto* b = std::get_if<blob::Blob>(&v)) return b->as<const double>().data();
    throw BindError("expected blob argument for const double*");
  }
};
template <>
struct ArgCast<int64_t*> {
  static int64_t* get(NativeValue& v) {
    if (auto* b = std::get_if<blob::Blob>(&v)) return b->as<int64_t>().data();
    throw BindError("expected blob argument for int64_t*");
  }
};

template <typename R>
struct RetCast {
  static NativeValue put(R v) { return NativeValue(v); }
};
template <>
struct RetCast<int> {
  static NativeValue put(int v) { return NativeValue(static_cast<int64_t>(v)); }
};

}  // namespace detail

template <typename R, typename... Args>
void NativeLibrary::add(const std::string& name, R (*fn)(Args...)) {
  fns_[name] = [fn, name](std::vector<NativeValue>& args) -> NativeValue {
    if (args.size() != sizeof...(Args)) {
      throw BindError(name + ": expected " + std::to_string(sizeof...(Args)) + " arguments, got " +
                      std::to_string(args.size()));
    }
    size_t i = 0;
    auto call = [&](auto&&... unpacked) {
      if constexpr (std::is_void_v<R>) {
        fn(std::forward<decltype(unpacked)>(unpacked)...);
        return NativeValue(static_cast<int64_t>(0));
      } else {
        return detail::RetCast<R>::put(fn(std::forward<decltype(unpacked)>(unpacked)...));
      }
    };
    // Build the argument pack left to right.
    return [&]<size_t... I>(std::index_sequence<I...>) {
      (void)i;
      return call(detail::ArgCast<Args>::get(args[I])...);
    }(std::index_sequence_for<Args...>{});
  };
}

}  // namespace ilps::bind
