#include "bind/bindgen.h"

#include <cctype>

#include "common/strings.h"
#include "tcl/interp.h"

namespace ilps::bind {

const char* c_type_name(CType t) {
  switch (t) {
    case CType::kVoid: return "void";
    case CType::kInt: return "int";
    case CType::kDouble: return "double";
    case CType::kString: return "const char*";
    case CType::kDoublePtr: return "double*";
    case CType::kIntPtr: return "int64_t*";
    case CType::kVoidPtr: return "void*";
  }
  return "?";
}

namespace {

// Strips // and /* */ comments.
std::string strip_comments(const std::string& text) {
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    if (text.compare(i, 2, "//") == 0) {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (text.compare(i, 2, "/*") == 0) {
      size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) throw BindError("unterminated /* comment");
      i = end + 2;
      out += ' ';
      continue;
    }
    out += text[i++];
  }
  return out;
}

// Parses one C type from a token list starting at `i`; consumes tokens.
CType parse_type(const std::vector<std::string>& toks, size_t& i) {
  bool is_const = false;
  if (i < toks.size() && toks[i] == "const") {
    is_const = true;
    ++i;
  }
  if (i >= toks.size()) throw BindError("expected a type");
  std::string base = toks[i++];
  // Multi-word bases.
  if (base == "unsigned" || base == "signed" || base == "long") {
    while (i < toks.size() && (toks[i] == "long" || toks[i] == "int")) {
      base += " " + toks[i++];
    }
  }
  int stars = 0;
  while (i < toks.size() && toks[i] == "*") {
    ++stars;
    ++i;
  }
  (void)is_const;
  if (base == "void") {
    if (stars == 0) return CType::kVoid;
    return CType::kVoidPtr;
  }
  if (base == "char") {
    if (stars == 1) return CType::kString;
    throw BindError("unsupported char type with " + std::to_string(stars) + " stars");
  }
  bool integral = base == "int" || base == "long" || base == "int64_t" || base == "int32_t" ||
                  base == "size_t" || str::starts_with(base, "unsigned") ||
                  str::starts_with(base, "long") || str::starts_with(base, "signed");
  bool floating = base == "double" || base == "float";
  if (integral && stars == 0) return CType::kInt;
  if (integral && stars == 1) return CType::kIntPtr;
  if (floating && stars == 0) return CType::kDouble;
  if (floating && stars == 1) return CType::kDoublePtr;
  throw BindError("unsupported C type: " + base + std::string(static_cast<size_t>(stars), '*'));
}

std::vector<std::string> tokenize_c(const std::string& text) {
  std::vector<std::string> toks;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_')) {
        ++i;
      }
      toks.emplace_back(text.substr(start, i - start));
      continue;
    }
    if (c == '"') {  // skip string literals wholesale (extern "C")
      size_t end = text.find('"', i + 1);
      if (end == std::string::npos) throw BindError("unterminated string in header");
      toks.emplace_back(text.substr(i, end - i + 1));
      i = end + 1;
      continue;
    }
    toks.emplace_back(1, c);
    ++i;
  }
  return toks;
}

}  // namespace

std::vector<CFunction> parse_header(const std::string& header_text) {
  std::vector<std::string> toks = tokenize_c(strip_comments(header_text));
  std::vector<CFunction> out;
  size_t i = 0;
  while (i < toks.size()) {
    // Skip preprocessor-ish noise, braces from extern "C" blocks, and
    // stray semicolons.
    if (toks[i] == "#") {
      // Consume to the next plausible line start: up to and including the
      // include target or macro name (headers for BindGen are simple).
      i += 2;
      continue;
    }
    if (toks[i] == "extern") {
      ++i;
      if (i < toks.size() && toks[i].front() == '"') ++i;
      continue;
    }
    if (toks[i] == "{" || toks[i] == "}" || toks[i] == ";") {
      ++i;
      continue;
    }

    CFunction fn;
    fn.return_type = parse_type(toks, i);
    if (i >= toks.size()) throw BindError("truncated declaration");
    fn.name = toks[i++];
    if (i >= toks.size() || toks[i] != "(") {
      throw BindError("expected ( after function name " + fn.name);
    }
    ++i;
    if (i < toks.size() && toks[i] == "void" && i + 1 < toks.size() && toks[i + 1] == ")") {
      i += 1;  // foo(void)
    }
    while (i < toks.size() && toks[i] != ")") {
      CParam p;
      p.type = parse_type(toks, i);
      if (i < toks.size() && toks[i] != "," && toks[i] != ")") {
        p.name = toks[i++];
        // Array suffix [] reads as a pointer.
        if (i + 1 < toks.size() && toks[i] == "[" && toks[i + 1] == "]") {
          i += 2;
          if (p.type == CType::kDouble) p.type = CType::kDoublePtr;
          if (p.type == CType::kInt) p.type = CType::kIntPtr;
        }
      }
      fn.params.push_back(std::move(p));
      if (i < toks.size() && toks[i] == ",") ++i;
    }
    if (i >= toks.size()) throw BindError("unterminated parameter list in " + fn.name);
    ++i;  // ')'
    if (i < toks.size() && toks[i] == ";") ++i;
    out.push_back(std::move(fn));
  }
  return out;
}

std::string to_prototype(const CFunction& fn) {
  std::string out = std::string(c_type_name(fn.return_type)) + " " + fn.name + "(";
  for (size_t i = 0; i < fn.params.size(); ++i) {
    if (i > 0) out += ", ";
    out += c_type_name(fn.params[i].type);
    if (!fn.params[i].name.empty()) out += " " + fn.params[i].name;
  }
  return out + ")";
}

std::string fortwrap(const std::string& fortran_interface) {
  // Recognize: subroutine NAME(p1, p2, ...) / function declarations with
  // type lines `integer :: n`, `real(8) :: x(n)` / `double precision x`.
  std::vector<std::string> lines = str::split(fortran_interface, '\n');
  std::string name;
  std::vector<std::string> params;
  std::map<std::string, std::string> types;  // param -> C type text
  bool is_function = false;
  std::string result_type = "void";

  for (auto& raw : lines) {
    std::string line = std::string(str::trim(raw));
    // Strip Fortran comments.
    size_t bang = line.find('!');
    if (bang != std::string::npos) line = std::string(str::trim(line.substr(0, bang)));
    if (line.empty()) continue;
    std::string lower = str::to_lower(line);
    if (str::starts_with(lower, "end")) continue;
    if (str::starts_with(lower, "subroutine") || str::starts_with(lower, "function") ||
        lower.find(" function ") != std::string::npos) {
      is_function = !str::starts_with(lower, "subroutine");
      size_t kw = lower.find(is_function ? "function" : "subroutine");
      size_t name_start = kw + (is_function ? 8 : 10);
      // Search for the parameter list after the name: a result-type
      // prefix like real(8) has parentheses of its own.
      size_t open = line.find('(', name_start);
      size_t close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close < open) {
        throw BindError("fortwrap: malformed declaration: " + line);
      }
      name = std::string(str::trim(line.substr(name_start, open - name_start)));
      if (is_function) {
        std::string prefix = std::string(str::trim(lower.substr(0, kw)));
        if (str::starts_with(prefix, "integer")) result_type = "int";
        if (str::starts_with(prefix, "real") || str::starts_with(prefix, "double")) {
          result_type = "double";
        }
      }
      for (const auto& p : str::split(line.substr(open + 1, close - open - 1), ',')) {
        std::string t = std::string(str::trim(p));
        if (!t.empty()) params.push_back(t);
      }
      continue;
    }
    // Type declaration line.
    std::string ctype;
    std::string rest;
    auto take = [&](const char* prefix, const char* mapped) {
      if (str::starts_with(lower, prefix)) {
        ctype = mapped;
        rest = line.substr(std::string(prefix).size());
        return true;
      }
      return false;
    };
    if (take("double precision", "double") || take("real(8)", "double") ||
        take("real*8", "double") || take("real", "double") || take("integer", "int") ||
        take("character", "const char*") || take("logical", "int")) {
      size_t colons = rest.find("::");
      if (colons != std::string::npos) rest = rest.substr(colons + 2);
      for (const auto& piece : str::split(rest, ',')) {
        std::string var = std::string(str::trim(piece));
        if (var.empty()) continue;
        bool is_array = var.find('(') != std::string::npos;
        size_t paren = var.find('(');
        std::string var_name = std::string(str::trim(paren == std::string::npos
                                                         ? var
                                                         : var.substr(0, paren)));
        std::string final_type = ctype;
        if (is_array) {
          if (ctype == std::string("double")) final_type = "double*";
          else if (ctype == std::string("int")) final_type = "int64_t*";
          else final_type = ctype + std::string("*");
        }
        types[str::to_lower(var_name)] = final_type;
      }
    }
  }
  if (name.empty()) throw BindError("fortwrap: no subroutine or function found");
  std::string out = result_type + " " + name + "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out += ", ";
    auto it = types.find(str::to_lower(params[i]));
    // Untyped Fortran dummies default to double (real).
    out += (it == types.end() ? std::string("double") : it->second) + " " + params[i];
  }
  return out + ");";
}

void NativeLibrary::add_raw(const std::string& name, NativeFn fn) { fns_[name] = std::move(fn); }

const NativeFn* NativeLibrary::find(const std::string& name) const {
  auto it = fns_.find(name);
  return it == fns_.end() ? nullptr : &it->second;
}

std::vector<std::string> NativeLibrary::names() const {
  std::vector<std::string> out;
  for (const auto& [name, fn] : fns_) {
    (void)fn;
    out.push_back(name);
  }
  return out;
}

void bind_to_tcl(tcl::Interp& interp, const std::string& package_name,
                 const std::vector<CFunction>& prototypes, const NativeLibrary& lib,
                 blob::Registry& blobs) {
  for (const auto& proto : prototypes) {
    const NativeFn* impl = lib.find(proto.name);
    if (impl == nullptr) {
      throw BindError("no implementation for " + proto.name + " in native library");
    }
    std::string cmd_name = package_name + "::" + proto.name;
    CFunction sig = proto;
    NativeFn fn = *impl;
    interp.register_command(
        cmd_name, [sig, fn, &blobs](tcl::Interp&, std::vector<std::string>& args) {
          if (args.size() - 1 != sig.params.size()) {
            throw tcl::TclError("wrong # args: " + to_prototype(sig));
          }
          std::vector<NativeValue> native;
          for (size_t i = 0; i < sig.params.size(); ++i) {
            const std::string& raw = args[i + 1];
            switch (sig.params[i].type) {
              case CType::kInt: {
                auto v = str::parse_int(raw);
                if (!v) throw tcl::TclError(sig.name + ": expected integer for " +
                                            sig.params[i].name + ", got \"" + raw + "\"");
                native.emplace_back(*v);
                break;
              }
              case CType::kDouble: {
                auto v = str::parse_double(raw);
                if (!v) throw tcl::TclError(sig.name + ": expected number for " +
                                            sig.params[i].name + ", got \"" + raw + "\"");
                native.emplace_back(*v);
                break;
              }
              case CType::kString:
                native.emplace_back(raw);
                break;
              case CType::kDoublePtr:
              case CType::kIntPtr:
              case CType::kVoidPtr:
                // blobutils handle -> raw pointer: the conversion SWIG
                // will not do and blobutils exists for.
                native.emplace_back(blobs.get(raw));
                break;
              case CType::kVoid:
                throw tcl::TclError("void parameter in " + sig.name);
            }
          }
          NativeValue result = fn(native);
          switch (sig.return_type) {
            case CType::kVoid:
              return std::string();
            case CType::kInt:
              return std::to_string(std::get<int64_t>(result));
            case CType::kDouble: {
              if (auto* d = std::get_if<double>(&result)) return str::format_double(*d);
              return std::to_string(std::get<int64_t>(result));
            }
            case CType::kString:
              return std::get<std::string>(result);
            default:
              // Pointer returns come back as fresh blob handles.
              return blobs.insert(std::get<blob::Blob>(result));
          }
        });
  }
  interp.package_provide(package_name, "1.0");
}

}  // namespace ilps::bind
