// In-memory image of recoverable program state: the ADLB data store
// (typed entries, containers, refcounts, close state) plus progress
// markers (completed-task fingerprints). The ADLB server fills one in and
// restores from one; this header knows nothing about servers — it is a
// plain serializable value so tests and tools can build snapshots too.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/buffer.h"

namespace ilps::ckpt {

// One datum of the ADLB store. `entries` carries container members for
// container-typed data and is empty for scalars.
struct DatumRecord {
  int64_t id = 0;
  uint8_t type = 0;  // adlb::DataType, kept as its wire value
  bool closed = false;
  bool has_value = false;
  std::string value;
  std::vector<std::pair<std::string, std::string>> entries;
  int32_t read_refs = 1;
  int32_t write_refs = 1;

  bool operator==(const DatumRecord&) const = default;
};

struct Snapshot {
  uint64_t seq = 0;             // checkpoint sequence number (monotonic)
  int64_t tasks_completed = 0;  // leaf tasks retired when this was taken
  std::vector<DatumRecord> data;
  // Fingerprints of completed leaf-task payloads (a multiset encoded as a
  // sorted vector — identical tasks may legitimately run twice). On
  // restart the server skips re-dispatching a matching payload and
  // instead replays its idempotent effects from the restored store.
  std::vector<uint64_t> done_tasks;

  void serialize(ser::Writer& w) const;
  static Snapshot deserialize(ser::Reader& r);

  bool operator==(const Snapshot&) const = default;
};

// FNV-1a 64-bit over a task payload; the identity used for replay
// skipping. Stable across runs by construction.
uint64_t fingerprint(std::string_view payload);

}  // namespace ilps::ckpt
