// SCR-style checkpoint files: versioned, CRC-guarded, atomically renamed
// into place so a crash mid-write can never corrupt the latest good
// checkpoint. Layout of `<dir>/ckpt-<seq>.ilps`:
//
//   magic "ILPSCKPT" | u32 format version | u64 seq | u64 payload length
//   | u32 crc32(payload) | payload (ser-encoded Snapshot)
//
// write_checkpoint() writes to a `.tmp` sibling, fsync-free (the threat
// model is process failure, not power loss — matching SCR's in-job cache
// level), renames over, and prunes all but the newest kKeep files.
// load_latest() scans the directory and returns the highest-seq snapshot
// whose CRC verifies, silently skipping damaged files.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"

namespace ilps::ckpt {

inline constexpr char kMagic[8] = {'I', 'L', 'P', 'S', 'C', 'K', 'P', 'T'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr int kKeep = 2;  // newest checkpoints retained after a write

// Writes `snap` under `dir` (created if missing). Returns the final path.
// Throws ilps::OsError on I/O failure.
std::string write_checkpoint(const std::string& dir, const Snapshot& snap);

// Highest-seq valid checkpoint in `dir`, or nullopt if none verifies
// (missing dir, no files, or every candidate fails magic/CRC checks).
std::optional<Snapshot> load_latest(const std::string& dir);

// Checkpoint file paths in `dir`, sorted by ascending seq (name order).
std::vector<std::string> list_checkpoints(const std::string& dir);

}  // namespace ilps::ckpt
