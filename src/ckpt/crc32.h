// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Used to verify
// checkpoint payload integrity before a restore is attempted — a truncated
// or corrupted file must be rejected, not deserialized.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace ilps::ckpt {

namespace detail {
constexpr std::array<uint32_t, 256> make_crc32_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

inline uint32_t crc32(std::span<const std::byte> data, uint32_t seed = 0) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = detail::kCrc32Table[(c ^ static_cast<uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ilps::ckpt
