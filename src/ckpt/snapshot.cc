#include "ckpt/snapshot.h"

namespace ilps::ckpt {

void Snapshot::serialize(ser::Writer& w) const {
  w.put_u64(seq);
  w.put_i64(tasks_completed);
  w.put_u64(data.size());
  for (const DatumRecord& d : data) {
    w.put_i64(d.id);
    w.put_u8(d.type);
    w.put_bool(d.closed);
    w.put_bool(d.has_value);
    w.put_str(d.value);
    w.put_u64(d.entries.size());
    for (const auto& [key, val] : d.entries) {
      w.put_str(key);
      w.put_str(val);
    }
    w.put_i32(d.read_refs);
    w.put_i32(d.write_refs);
  }
  w.put_u64(done_tasks.size());
  for (uint64_t f : done_tasks) w.put_u64(f);
}

Snapshot Snapshot::deserialize(ser::Reader& r) {
  Snapshot s;
  s.seq = r.get_u64();
  s.tasks_completed = r.get_i64();
  const uint64_t ndata = r.get_u64();
  s.data.reserve(ndata);
  for (uint64_t i = 0; i < ndata; ++i) {
    DatumRecord d;
    d.id = r.get_i64();
    d.type = r.get_u8();
    d.closed = r.get_bool();
    d.has_value = r.get_bool();
    d.value = r.get_str();
    const uint64_t nentries = r.get_u64();
    d.entries.reserve(nentries);
    for (uint64_t k = 0; k < nentries; ++k) {
      std::string key = r.get_str();
      std::string val = r.get_str();
      d.entries.emplace_back(std::move(key), std::move(val));
    }
    d.read_refs = r.get_i32();
    d.write_refs = r.get_i32();
    s.data.push_back(std::move(d));
  }
  const uint64_t ndone = r.get_u64();
  s.done_tasks.reserve(ndone);
  for (uint64_t i = 0; i < ndone; ++i) s.done_tasks.push_back(r.get_u64());
  return s;
}

uint64_t fingerprint(std::string_view payload) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (char c : payload) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace ilps::ckpt
