#include "ckpt/ckpt.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ckpt/crc32.h"
#include "common/error.h"
#include "common/log.h"
#include "obs/trace.h"

namespace fs = std::filesystem;

namespace ilps::ckpt {

namespace {

std::string file_name(uint64_t seq) {
  // Zero-padded so lexical order == seq order.
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%012llu.ilps", static_cast<unsigned long long>(seq));
  return buf;
}

// Parses "<dir>/ckpt-<seq>.ilps" names; nullopt for anything else.
std::optional<uint64_t> seq_of(const fs::path& p) {
  const std::string name = p.filename().string();
  if (name.size() < 11 || name.rfind("ckpt-", 0) != 0) return std::nullopt;
  if (p.extension() != ".ilps") return std::nullopt;
  uint64_t seq = 0;
  for (size_t i = 5; i < name.size() - 5; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

}  // namespace

std::string write_checkpoint(const std::string& dir, const Snapshot& snap) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw OsError("ckpt: cannot create directory " + dir + ": " + ec.message());

  ser::Writer payload;
  snap.serialize(payload);
  const auto body = payload.bytes();
  const uint32_t crc = crc32(body);
  // Spans serialize + write + rename + prune (the checkpoint stall a
  // server's clients observe).
  obs::Span span(obs::EventKind::kCkptWrite, static_cast<int64_t>(snap.seq),
                 static_cast<int64_t>(body.size()));

  ser::Writer header;
  for (char c : kMagic) header.put_u8(static_cast<uint8_t>(c));
  header.put_u32(kFormatVersion);
  header.put_u64(snap.seq);
  header.put_u64(body.size());
  header.put_u32(crc);

  const fs::path final_path = fs::path(dir) / file_name(snap.seq);
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw OsError("ckpt: cannot open " + tmp_path.string());
    const auto head = header.bytes();
    out.write(reinterpret_cast<const char*>(head.data()),
              static_cast<std::streamsize>(head.size()));
    out.write(reinterpret_cast<const char*>(body.data()),
              static_cast<std::streamsize>(body.size()));
    if (!out) throw OsError("ckpt: short write to " + tmp_path.string());
  }
  fs::rename(tmp_path, final_path, ec);  // atomic replace on POSIX
  if (ec) throw OsError("ckpt: rename failed: " + ec.message());

  // Prune: keep the newest kKeep checkpoints.
  auto files = list_checkpoints(dir);
  while (files.size() > static_cast<size_t>(kKeep)) {
    fs::remove(files.front(), ec);  // oldest first; best effort
    files.erase(files.begin());
  }
  log::debug("ckpt: wrote ", final_path.string(), " (", body.size(), " bytes)");
  return final_path.string();
}

std::vector<std::string> list_checkpoints(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (seq_of(entry.path())) out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());  // zero-padded names: lexical == seq
  return out;
}

std::optional<Snapshot> load_latest(const std::string& dir) {
  auto files = list_checkpoints(dir);
  // Newest first; fall back to older files when a candidate is damaged.
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    std::ifstream in(*it, std::ios::binary);
    if (!in) continue;
    std::vector<char> raw((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    const size_t header_size = sizeof kMagic + 4 + 8 + 8 + 4;
    if (raw.size() < header_size) {
      log::warn("ckpt: ", *it, " truncated header, skipping");
      continue;
    }
    if (std::memcmp(raw.data(), kMagic, sizeof kMagic) != 0) {
      log::warn("ckpt: ", *it, " bad magic, skipping");
      continue;
    }
    ser::Reader head(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(raw.data() + sizeof kMagic),
        header_size - sizeof kMagic));
    const uint32_t version = head.get_u32();
    head.get_u64();  // seq (also encoded in the name)
    const uint64_t len = head.get_u64();
    const uint32_t want_crc = head.get_u32();
    if (version != kFormatVersion) {
      log::warn("ckpt: ", *it, " version ", version, " unsupported, skipping");
      continue;
    }
    if (raw.size() != header_size + len) {
      log::warn("ckpt: ", *it, " truncated payload, skipping");
      continue;
    }
    const std::span<const std::byte> body(
        reinterpret_cast<const std::byte*>(raw.data() + header_size), len);
    if (crc32(body) != want_crc) {
      log::warn("ckpt: ", *it, " CRC mismatch, skipping");
      continue;
    }
    ser::Reader r(body);
    return Snapshot::deserialize(r);
  }
  return std::nullopt;
}

}  // namespace ilps::ckpt
