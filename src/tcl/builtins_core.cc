// Core built-ins: variables, control flow, procs, error handling.
#include "common/strings.h"
#include "tcl/interp.h"

namespace ilps::tcl {

namespace {

// Parses the level argument of upvar/uplevel: "#N" is absolute (we support
// #0 = global), a bare integer is relative. Returns levels-up, with -1
// meaning the global frame.
int parse_level(Interp& in, const std::string& s, bool* consumed) {
  *consumed = true;
  if (!s.empty() && s[0] == '#') {
    auto n = str::parse_int(s.substr(1));
    if (!n) throw TclError("bad level \"" + s + "\"");
    if (*n == 0) return -1;
    // Absolute level N: levels_up = current - N.
    int up = in.frame_level() - static_cast<int>(*n);
    if (up < 0) throw TclError("bad level \"" + s + "\"");
    return up;
  }
  if (auto n = str::parse_int(s)) {
    if (*n < 0) throw TclError("bad level \"" + s + "\"");
    return static_cast<int>(*n);
  }
  *consumed = false;
  return 1;
}

std::string cmd_set(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, 2, "varName ?newValue?");
  if (args.size() == 3) {
    in.set_var(args[1], args[2]);
    return args[2];
  }
  return in.get_var(args[1]);
}

std::string cmd_unset(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 0, -1, "?-nocomplain? ?varName ...?");
  size_t start = 1;
  bool nocomplain = false;
  if (args.size() > 1 && args[1] == "-nocomplain") {
    nocomplain = true;
    start = 2;
  }
  for (size_t i = start; i < args.size(); ++i) {
    if (!in.unset_var(args[i]) && !nocomplain) {
      throw TclError("can't unset \"" + args[i] + "\": no such variable");
    }
  }
  return "";
}

std::string cmd_incr(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, 2, "varName ?increment?");
  int64_t delta = 1;
  if (args.size() == 3) {
    auto d = str::parse_int(args[2]);
    if (!d) throw TclError("expected integer but got \"" + args[2] + "\"");
    delta = *d;
  }
  int64_t value = 0;
  if (auto cur = in.get_var_opt(args[1])) {
    auto v = str::parse_int(*cur);
    if (!v) throw TclError("expected integer but got \"" + *cur + "\"");
    value = *v;
  }
  value += delta;
  std::string out = std::to_string(value);
  in.set_var(args[1], out);
  return out;
}

std::string cmd_append(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "varName ?value ...?");
  std::string value;
  if (auto cur = in.get_var_opt(args[1])) value = *cur;
  for (size_t i = 2; i < args.size(); ++i) value += args[i];
  in.set_var(args[1], value);
  return value;
}

std::string cmd_expr(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "arg ?arg ...?");
  if (args.size() == 2) return in.expr(args[1]);
  std::string joined;
  for (size_t i = 1; i < args.size(); ++i) {
    if (i > 1) joined += ' ';
    joined += args[i];
  }
  return in.expr(joined);
}

std::string cmd_if(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 2, -1, "condition body ?elseif cond body ...? ?else body?");
  size_t i = 1;
  while (true) {
    if (i + 1 >= args.size()) throw TclError("wrong # args: no body for if condition");
    const std::string& cond = args[i];
    size_t body_index = i + 1;
    if (args[body_index] == "then") ++body_index;
    if (body_index >= args.size()) throw TclError("wrong # args: no body after then");
    if (in.expr_bool(cond)) return in.eval(args[body_index]);
    i = body_index + 1;
    if (i >= args.size()) return "";
    if (args[i] == "elseif") {
      ++i;
      continue;
    }
    if (args[i] == "else") {
      if (i + 1 >= args.size()) throw TclError("wrong # args: no body after else");
      return in.eval(args[i + 1]);
    }
    // Bare trailing body acts as else (Tcl allows this).
    return in.eval(args[i]);
  }
}

std::string cmd_while(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 2, 2, "test command");
  while (in.expr_bool(args[1])) {
    try {
      in.eval(args[2]);
    } catch (BreakSignal&) {
      break;
    } catch (ContinueSignal&) {
      continue;
    }
  }
  return "";
}

std::string cmd_for(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 4, 4, "start test next command");
  in.eval(args[1]);
  while (in.expr_bool(args[2])) {
    try {
      in.eval(args[4]);
    } catch (BreakSignal&) {
      break;
    } catch (ContinueSignal&) {
      // fall through to next
    }
    in.eval(args[3]);
  }
  return "";
}

std::string cmd_foreach(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 3, -1, "varList list ?varList list ...? command");
  if ((args.size() - 2) % 2 != 0) {
    throw TclError("wrong # args: should be \"foreach varList list ?varList list ...? command\"");
  }
  const std::string& body = args.back();
  struct Group {
    std::vector<std::string> vars;
    std::vector<std::string> values;
  };
  std::vector<Group> groups;
  size_t iterations = 0;
  for (size_t i = 1; i + 1 < args.size(); i += 2) {
    Group g;
    g.vars = list_split(args[i]);
    if (g.vars.empty()) throw TclError("foreach varlist is empty");
    g.values = list_split(args[i + 1]);
    size_t iters = (g.values.size() + g.vars.size() - 1) / g.vars.size();
    iterations = std::max(iterations, iters);
    groups.push_back(std::move(g));
  }
  for (size_t iter = 0; iter < iterations; ++iter) {
    for (const auto& g : groups) {
      for (size_t v = 0; v < g.vars.size(); ++v) {
        size_t idx = iter * g.vars.size() + v;
        in.set_var(g.vars[v], idx < g.values.size() ? g.values[idx] : "");
      }
    }
    try {
      in.eval(body);
    } catch (BreakSignal&) {
      return "";
    } catch (ContinueSignal&) {
      continue;
    }
  }
  return "";
}

std::string cmd_break(Interp&, std::vector<std::string>& args) {
  check_arity(args, 0, 0, "");
  throw BreakSignal{};
}

std::string cmd_continue(Interp&, std::vector<std::string>& args) {
  check_arity(args, 0, 0, "");
  throw ContinueSignal{};
}

std::string cmd_proc(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 3, 3, "name args body");
  Interp::ProcInfo proc;
  for (const auto& p : list_split(args[2])) {
    auto parts = list_split(p);
    if (parts.size() == 1) {
      proc.params.emplace_back(parts[0], std::nullopt);
    } else if (parts.size() == 2) {
      proc.params.emplace_back(parts[0], parts[1]);
    } else {
      throw TclError("too many fields in argument specifier \"" + p + "\"");
    }
  }
  proc.body = args[3];
  in.define_proc(args[1], std::move(proc));
  return "";
}

std::string cmd_return(Interp&, std::vector<std::string>& args) {
  // Supports `return ?value?` and `return -code error message`.
  if (args.size() == 4 && args[1] == "-code") {
    if (args[2] == "error") throw TclError(args[3]);
    if (args[2] == "return" || args[2] == "ok") throw ReturnSignal{args[3]};
    if (args[2] == "break") throw BreakSignal{};
    if (args[2] == "continue") throw ContinueSignal{};
    throw TclError("bad completion code \"" + args[2] + "\"");
  }
  check_arity(args, 0, 1, "?value?");
  throw ReturnSignal{args.size() > 1 ? args[1] : ""};
}

std::string cmd_error(Interp&, std::vector<std::string>& args) {
  check_arity(args, 1, 2, "message ?info?");
  throw TclError(args[1]);
}

std::string cmd_catch(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, 2, "script ?resultVarName?");
  int code = kTclOk;
  std::string result;
  try {
    result = in.eval(args[1]);
  } catch (TclError& e) {
    code = kTclErrorCode;
    result = e.what();
  } catch (ReturnSignal& r) {
    code = kTclReturn;
    result = std::move(r.value);
  } catch (BreakSignal&) {
    code = kTclBreak;
  } catch (ContinueSignal&) {
    code = kTclContinue;
  }
  if (args.size() == 3) in.set_var(args[2], result);
  return std::to_string(code);
}

std::string cmd_eval(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "arg ?arg ...?");
  if (args.size() == 2) return in.eval(args[1]);
  std::vector<std::string> parts(args.begin() + 1, args.end());
  return in.eval(str::join(parts, " "));
}

std::string cmd_uplevel(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "?level? arg ?arg ...?");
  bool consumed = false;
  int up = parse_level(in, args[1], &consumed);
  size_t start = consumed ? 2 : 1;
  if (!consumed) up = 1;
  if (start >= args.size()) throw TclError("wrong # args: uplevel needs a script");
  std::vector<std::string> parts(args.begin() + static_cast<ptrdiff_t>(start), args.end());
  return in.eval_up(up, str::join(parts, " "));
}

std::string cmd_upvar(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 2, -1, "?level? otherVar localVar ?otherVar localVar ...?");
  bool consumed = false;
  int up = parse_level(in, args[1], &consumed);
  size_t start = consumed ? 2 : 1;
  if ((args.size() - start) % 2 != 0 || args.size() == start) {
    throw TclError("wrong # args: upvar needs otherVar localVar pairs");
  }
  for (size_t i = start; i + 1 < args.size(); i += 2) {
    in.link_var(up, args[i], args[i + 1]);
  }
  return "";
}

std::string cmd_global(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "varName ?varName ...?");
  if (in.frame_level() == 0) return "";  // no-op at global scope
  for (size_t i = 1; i < args.size(); ++i) {
    in.link_var(-1, args[i], args[i]);
  }
  return "";
}

std::string cmd_source(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, 1, "fileName");
  auto text = in.source_resolver()(args[1]);
  if (!text) throw TclError("couldn't read file \"" + args[1] + "\"");
  return in.eval(*text);
}

std::string cmd_rename(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 2, 2, "oldName newName");
  const std::string& old_name = args[1];
  const std::string& new_name = args[2];
  if (const Interp::ProcInfo* proc = in.find_proc(old_name)) {
    if (!new_name.empty()) in.define_proc(new_name, *proc);
    in.remove_command(old_name);
    return "";
  }
  throw TclError("can't rename \"" + old_name + "\": command doesn't exist or is a builtin");
}

std::string cmd_subst(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, 1, "string");
  return in.subst(args[1]);
}

std::string cmd_switch(Interp& in, std::vector<std::string>& args) {
  // switch ?-exact|-glob? ?--? string {pattern body ?pattern body ...?}
  // or the flat form: switch string pattern body ?pattern body ...?
  check_arity(args, 2, -1, "?options? string pattern body ?...?");
  size_t a = 1;
  bool glob = false;
  while (a < args.size() && !args[a].empty() && args[a][0] == '-') {
    if (args[a] == "-exact") {
      glob = false;
    } else if (args[a] == "-glob") {
      glob = true;
    } else if (args[a] == "--") {
      ++a;
      break;
    } else {
      throw TclError("bad switch option \"" + args[a] + "\"");
    }
    ++a;
  }
  if (a >= args.size()) throw TclError("wrong # args: switch needs a string");
  const std::string value = args[a++];
  std::vector<std::string> clauses;
  if (args.size() - a == 1) {
    clauses = list_split(args[a]);
  } else {
    clauses.assign(args.begin() + static_cast<ptrdiff_t>(a), args.end());
  }
  if (clauses.size() % 2 != 0) {
    throw TclError("extra switch pattern with no body");
  }
  for (size_t i = 0; i + 1 < clauses.size(); i += 2) {
    bool hit;
    if (clauses[i] == "default") {
      hit = true;
    } else if (glob) {
      std::vector<std::string> match_args = {"string", "match", clauses[i], value};
      hit = in.invoke(match_args) == "1";
    } else {
      hit = clauses[i] == value;
    }
    if (!hit) continue;
    // `-` falls through to the next body.
    size_t body = i + 1;
    while (body + 1 < clauses.size() && clauses[body] == "-") body += 2;
    return in.eval(clauses[body]);
  }
  return "";
}

std::string cmd_namespace(Interp& in, std::vector<std::string>& args) {
  // Minimal namespace support: qualified command names are plain strings
  // in MiniTcl, so `namespace eval ns body` just evaluates the body, and
  // `namespace current` reports the global namespace.
  check_arity(args, 1, -1, "subcommand ?arg ...?");
  const std::string& sub = args[1];
  if (sub == "eval") {
    check_arity(args, 3, 3, "eval name body");
    return in.eval(args[3]);
  }
  if (sub == "current") return "::";
  if (sub == "exists") return "1";
  throw TclError("unsupported namespace subcommand \"" + sub + "\"");
}

}  // namespace

void register_core_builtins(Interp& in) {
  in.register_command("set", cmd_set);
  in.register_command("unset", cmd_unset);
  in.register_command("incr", cmd_incr);
  in.register_command("append", cmd_append);
  in.register_command("expr", cmd_expr);
  in.register_command("if", cmd_if);
  in.register_command("while", cmd_while);
  in.register_command("for", cmd_for);
  in.register_command("foreach", cmd_foreach);
  in.register_command("break", cmd_break);
  in.register_command("continue", cmd_continue);
  in.register_command("proc", cmd_proc);
  in.register_command("return", cmd_return);
  in.register_command("error", cmd_error);
  in.register_command("catch", cmd_catch);
  in.register_command("eval", cmd_eval);
  in.register_command("uplevel", cmd_uplevel);
  in.register_command("upvar", cmd_upvar);
  in.register_command("global", cmd_global);
  in.register_command("source", cmd_source);
  in.register_command("rename", cmd_rename);
  in.register_command("subst", cmd_subst);
  in.register_command("switch", cmd_switch);
  in.register_command("namespace", cmd_namespace);
}

}  // namespace ilps::tcl
