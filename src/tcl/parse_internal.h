// Character classes and the braced-word scanner shared by the direct
// evaluator (interp.cc) and the bytecode compiler (compile.cc). Both sides
// MUST agree on the word grammar exactly — the compiler's equivalence
// guarantee rests on reusing these definitions rather than mirroring them.
#pragma once

#include <string>
#include <string_view>

#include "tcl/value.h"

namespace ilps::tcl::parse {

// Recursion guard shared by eval_until and the compiler, so a compile-time
// bailout at the limit reproduces the same runtime error.
inline constexpr int kMaxEvalDepth = 800;

inline bool is_word_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }
inline bool is_cmd_end(char c) { return c == '\n' || c == ';'; }
inline bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

// Scans a braced word starting at s[i]=='{'; returns the literal content
// (backslash-newline is substituted even inside braces, as in Tcl).
inline std::string scan_braced(std::string_view s, size_t& i) {
  int depth = 1;
  size_t start = ++i;
  std::string out;
  while (i < s.size()) {
    char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      if (s[i + 1] == '\n') {
        // Backslash-newline is substituted even inside braces.
        out += s.substr(start, i - start);
        size_t j = i;
        out += backslash_escape(s, j);
        i = j;
        start = i;
        continue;
      }
      i += 2;
      continue;
    }
    if (c == '{') ++depth;
    if (c == '}') {
      --depth;
      if (depth == 0) {
        out += s.substr(start, i - start);
        ++i;
        return out;
      }
    }
    ++i;
  }
  throw TclError("missing close-brace");
}

}  // namespace ilps::tcl::parse
