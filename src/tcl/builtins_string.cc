// The `string` ensemble, `format`, and glob matching.
#include <algorithm>
#include <cctype>

#include "common/strings.h"
#include "tcl/interp.h"

namespace ilps::tcl {

namespace {

// Tcl-style glob matching: * ? [set] \escape.
bool glob_match(std::string_view pattern, std::string_view text, bool nocase) {
  size_t p = 0;
  size_t t = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  auto norm = [&](char c) {
    return nocase ? static_cast<char>(std::tolower(static_cast<unsigned char>(c))) : c;
  };
  while (t < text.size()) {
    if (p < pattern.size()) {
      char pc = pattern[p];
      if (pc == '*') {
        star_p = ++p;
        star_t = t;
        continue;
      }
      if (pc == '?') {
        ++p;
        ++t;
        continue;
      }
      if (pc == '[') {
        size_t q = p + 1;
        bool negate = false;
        if (q < pattern.size() && (pattern[q] == '^' || pattern[q] == '!')) {
          negate = true;
          ++q;
        }
        bool matched = false;
        char tc = norm(text[t]);
        bool first = true;
        while (q < pattern.size() && (first || pattern[q] != ']')) {
          first = false;
          char lo = pattern[q];
          if (q + 2 < pattern.size() && pattern[q + 1] == '-' && pattern[q + 2] != ']') {
            char hi = pattern[q + 2];
            if (norm(lo) <= tc && tc <= norm(hi)) matched = true;
            q += 3;
          } else {
            if (norm(lo) == tc) matched = true;
            ++q;
          }
        }
        if (q >= pattern.size()) return false;  // unterminated set
        ++q;                                    // skip ']'
        if (matched != negate) {
          p = q;
          ++t;
          continue;
        }
      } else {
        if (pc == '\\' && p + 1 < pattern.size()) {
          pc = pattern[++p];
        }
        if (norm(pc) == norm(text[t])) {
          ++p;
          ++t;
          continue;
        }
      }
    }
    // Mismatch: backtrack to the last '*' if any.
    if (star_p == std::string_view::npos) return false;
    p = star_p;
    t = ++star_t;
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string cmd_string(Interp&, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "subcommand ?arg ...?");
  const std::string& sub = args[1];

  auto need = [&](size_t n, const char* usage) { check_arity(args, static_cast<int>(n), static_cast<int>(n), usage); };

  if (sub == "length") {
    need(2, "length string");
    return std::to_string(args[2].size());
  }
  if (sub == "index") {
    need(3, "index string charIndex");
    const std::string& s = args[2];
    int64_t idx;
    if (args[3] == "end") {
      idx = static_cast<int64_t>(s.size()) - 1;
    } else if (str::starts_with(args[3], "end-")) {
      auto n = str::parse_int(args[3].substr(4));
      if (!n) throw TclError("bad index \"" + args[3] + "\"");
      idx = static_cast<int64_t>(s.size()) - 1 - *n;
    } else {
      auto n = str::parse_int(args[3]);
      if (!n) throw TclError("bad index \"" + args[3] + "\"");
      idx = *n;
    }
    if (idx < 0 || idx >= static_cast<int64_t>(s.size())) return "";
    return std::string(1, s[static_cast<size_t>(idx)]);
  }
  if (sub == "range") {
    need(4, "range string first last");
    const std::string& s = args[2];
    auto parse_idx = [&](const std::string& t) -> int64_t {
      if (t == "end") return static_cast<int64_t>(s.size()) - 1;
      if (str::starts_with(t, "end-")) {
        auto n = str::parse_int(t.substr(4));
        if (!n) throw TclError("bad index \"" + t + "\"");
        return static_cast<int64_t>(s.size()) - 1 - *n;
      }
      auto n = str::parse_int(t);
      if (!n) throw TclError("bad index \"" + t + "\"");
      return *n;
    };
    int64_t first = std::max<int64_t>(0, parse_idx(args[3]));
    int64_t last = std::min<int64_t>(static_cast<int64_t>(s.size()) - 1, parse_idx(args[4]));
    if (first > last) return "";
    return s.substr(static_cast<size_t>(first), static_cast<size_t>(last - first + 1));
  }
  if (sub == "tolower") {
    need(2, "tolower string");
    return str::to_lower(args[2]);
  }
  if (sub == "toupper") {
    need(2, "toupper string");
    return str::to_upper(args[2]);
  }
  if (sub == "trim" || sub == "trimleft" || sub == "trimright") {
    check_arity(args, 2, 3, "trim string ?chars?");
    std::string chars = args.size() > 3 ? args[3] : " \t\n\r\v\f";
    std::string s = args[2];
    if (sub != "trimright") {
      size_t b = s.find_first_not_of(chars);
      s = b == std::string::npos ? "" : s.substr(b);
    }
    if (sub != "trimleft") {
      size_t e = s.find_last_not_of(chars);
      s = e == std::string::npos ? "" : s.substr(0, e + 1);
    }
    return s;
  }
  if (sub == "repeat") {
    need(3, "repeat string count");
    auto n = str::parse_int(args[3]);
    if (!n) throw TclError("expected integer but got \"" + args[3] + "\"");
    std::string out;
    for (int64_t i = 0; i < *n; ++i) out += args[2];
    return out;
  }
  if (sub == "reverse") {
    need(2, "reverse string");
    std::string s = args[2];
    std::reverse(s.begin(), s.end());
    return s;
  }
  if (sub == "first") {
    check_arity(args, 3, 4, "first needleString haystackString ?startIndex?");
    size_t start = 0;
    if (args.size() > 4) {
      auto n = str::parse_int(args[4]);
      if (!n || *n < 0) throw TclError("bad index \"" + args[4] + "\"");
      start = static_cast<size_t>(*n);
    }
    size_t pos = args[3].find(args[2], start);
    return pos == std::string::npos ? "-1" : std::to_string(pos);
  }
  if (sub == "last") {
    need(3, "last needleString haystackString");
    size_t pos = args[3].rfind(args[2]);
    return pos == std::string::npos ? "-1" : std::to_string(pos);
  }
  if (sub == "compare") {
    need(3, "compare string1 string2");
    int c = args[2].compare(args[3]);
    return std::to_string(c < 0 ? -1 : (c > 0 ? 1 : 0));
  }
  if (sub == "equal") {
    check_arity(args, 2, 4, "equal ?-nocase? string1 string2");
    if (args.size() == 5) {
      if (args[2] != "-nocase") throw TclError("bad option \"" + args[2] + "\"");
      return str::to_lower(args[3]) == str::to_lower(args[4]) ? "1" : "0";
    }
    return args[2] == args[3] ? "1" : "0";
  }
  if (sub == "match") {
    check_arity(args, 2, 4, "match ?-nocase? pattern string");
    if (args.size() == 5) {
      if (args[2] != "-nocase") throw TclError("bad option \"" + args[2] + "\"");
      return glob_match(args[3], args[4], /*nocase=*/true) ? "1" : "0";
    }
    return glob_match(args[2], args[3], /*nocase=*/false) ? "1" : "0";
  }
  if (sub == "map") {
    need(3, "map mapping string");
    auto mapping = list_split(args[2]);
    if (mapping.size() % 2 != 0) throw TclError("char map list unbalanced");
    const std::string& s = args[3];
    std::string out;
    size_t i = 0;
    while (i < s.size()) {
      bool hit = false;
      for (size_t m = 0; m + 1 < mapping.size(); m += 2) {
        const std::string& from = mapping[m];
        if (!from.empty() && s.compare(i, from.size(), from) == 0) {
          out += mapping[m + 1];
          i += from.size();
          hit = true;
          break;
        }
      }
      if (!hit) out += s[i++];
    }
    return out;
  }
  if (sub == "replace") {
    check_arity(args, 4, 5, "replace string first last ?newstring?");
    const std::string& s = args[2];
    auto f = str::parse_int(args[3]);
    auto l = args[4] == "end" ? std::optional<int64_t>(static_cast<int64_t>(s.size()) - 1)
                              : str::parse_int(args[4]);
    if (!f || !l) throw TclError("bad index in string replace");
    int64_t first = std::max<int64_t>(0, *f);
    int64_t last = std::min<int64_t>(static_cast<int64_t>(s.size()) - 1, *l);
    if (first > last || first >= static_cast<int64_t>(s.size())) return s;
    std::string out = s.substr(0, static_cast<size_t>(first));
    if (args.size() > 5) out += args[5];
    out += s.substr(static_cast<size_t>(last + 1));
    return out;
  }
  if (sub == "cat") {
    std::string out;
    for (size_t i = 2; i < args.size(); ++i) out += args[i];
    return out;
  }
  if (sub == "is") {
    check_arity(args, 3, 3, "is class string");
    const std::string& cls = args[2];
    const std::string& s = args[3];
    if (cls == "integer") return str::parse_int(s) ? "1" : "0";
    if (cls == "double") return str::parse_double(s) ? "1" : "0";
    if (cls == "boolean") return parse_bool(s) ? "1" : "0";
    auto all = [&](int (*pred)(int)) {
      if (s.empty()) return std::string("1");
      for (char c : s) {
        if (pred(static_cast<unsigned char>(c)) == 0) return std::string("0");
      }
      return std::string("1");
    };
    if (cls == "alpha") return all(std::isalpha);
    if (cls == "alnum") return all(std::isalnum);
    if (cls == "digit") return all(std::isdigit);
    if (cls == "space") return all(std::isspace);
    if (cls == "upper") return all(std::isupper);
    if (cls == "lower") return all(std::islower);
    throw TclError("unsupported string is class \"" + cls + "\"");
  }
  throw TclError("unsupported string subcommand \"" + sub + "\"");
}

std::string cmd_format(Interp&, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "formatString ?arg ...?");
  std::vector<std::string> rest(args.begin() + 2, args.end());
  return str::printf_format(args[1], rest);
}

std::string cmd_scan(Interp& in, std::vector<std::string>& args) {
  // Minimal scan: supports %d %f %s conversions separated by whitespace.
  check_arity(args, 2, -1, "string format ?varName ...?");
  const std::string& input = args[1];
  const std::string& fmt = args[2];
  auto fields = str::split_ws(input);
  size_t field = 0;
  size_t var = 3;
  int converted = 0;
  for (size_t i = 0; i + 1 < fmt.size(); ++i) {
    if (fmt[i] != '%') continue;
    char conv = fmt[i + 1];
    if (conv == '%') {
      ++i;
      continue;
    }
    if (field >= fields.size() || var >= args.size()) break;
    const std::string& tok = fields[field++];
    std::string value;
    if (conv == 'd' || conv == 'i') {
      auto v = str::parse_int(tok);
      if (!v) break;
      value = std::to_string(*v);
    } else if (conv == 'f' || conv == 'e' || conv == 'g') {
      auto v = str::parse_double(tok);
      if (!v) break;
      value = str::format_double(*v);
    } else if (conv == 's') {
      value = tok;
    } else {
      throw TclError("unsupported scan conversion %" + std::string(1, conv));
    }
    in.set_var(args[var++], value);
    ++converted;
  }
  return std::to_string(converted);
}

}  // namespace

void register_string_builtins(Interp& in) {
  in.register_command("string", cmd_string);
  in.register_command("format", cmd_format);
  in.register_command("scan", cmd_scan);
}

}  // namespace ilps::tcl
