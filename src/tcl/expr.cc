// The Tcl `expr` sublanguage: numbers (int64 / double), strings, the full
// operator set with Tcl precedence, short-circuit && || and lazy ?:, and
// the math function library. Integer / and % use floor semantics as Tcl
// does. Operands may be $variables, [command substitutions], "quoted" or
// {braced} strings, numeric literals, or boolean words.
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "tcl/compile.h"
#include "tcl/interp.h"

namespace ilps::tcl {

namespace {

// Expression values are the tagged tcl::Value (value.h); these wrappers
// keep the parser code in its historical shape.
Value make_int(int64_t x) { return Value::from_int(x); }
Value make_double(double x) { return Value::from_double(x); }
Value make_bool(bool b) { return Value::from_bool(b); }
Value make_string(std::string s) { return Value::from_string(std::move(s)); }

// Converts raw text (from a $var or [cmd]) into the narrowest numeric
// value, or keeps it as a string.
Value classify(std::string raw) { return Value::classify(std::move(raw)); }

int64_t floor_div(int64_t a, int64_t b) {
  if (b == 0) throw TclError("divide by zero");
  int64_t q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t floor_mod(int64_t a, int64_t b) {
  if (b == 0) throw TclError("divide by zero");
  int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

// Operator semantics shared by the live parser (ExprParser) and the
// compiled-expression evaluator (ExprIrEval). Both paths MUST produce
// identical values and identical error messages; sharing the definitions
// is what makes that hold by construction.

// Numeric compare when both operands look numeric (Tcl reclassifies
// string operands that parse as numbers), else string compare.
int expr_compare(const Value& a0, const Value& b0) {
  Value a = a0.is_string() ? classify(a0.str()) : a0;
  Value b = b0.is_string() ? classify(b0.str()) : b0;
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) {
      int64_t x = a.as_int();
      int64_t y = b.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.as_double();
    double y = b.as_double();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  std::string x = a.as_string();
  std::string y = b.as_string();
  return x < y ? -1 : (x > y ? 1 : 0);
}

Value expr_arith(const Value& a, const Value& b, char op) {
  if (a.is_int() && b.is_int()) {
    int64_t x = a.as_int();
    int64_t y = b.as_int();
    switch (op) {
      case '+': return make_int(x + y);
      case '-': return make_int(x - y);
      case '*': return make_int(x * y);
      case '/': return make_int(floor_div(x, y));
    }
  }
  double x = a.as_double();
  double y = b.as_double();
  switch (op) {
    case '+': return make_double(x + y);
    case '-': return make_double(x - y);
    case '*': return make_double(x * y);
    case '/':
      if (y == 0.0) throw TclError("divide by zero");
      return make_double(x / y);
  }
  throw TclError("bad arithmetic operator");
}

bool expr_list_contains(const std::string& list, const std::string& item) {
  for (const auto& e : list_split(list)) {
    if (e == item) return true;
  }
  return false;
}

Value expr_call_function(Interp& in, const std::string& name, std::vector<Value>& fn_args) {
  auto need = [&](size_t n) {
    if (fn_args.size() != n) {
      throw TclError("wrong # args to math function " + name);
    }
  };
  auto f1 = [&](double (*fn)(double)) {
    need(1);
    return make_double(fn(fn_args[0].as_double()));
  };
  if (name == "abs") {
    need(1);
    if (fn_args[0].is_int()) {
      int64_t v = fn_args[0].as_int();
      return make_int(v < 0 ? -v : v);
    }
    return make_double(std::fabs(fn_args[0].as_double()));
  }
  if (name == "int") {
    need(1);
    return make_int(static_cast<int64_t>(fn_args[0].as_double()));
  }
  if (name == "double") {
    need(1);
    return make_double(fn_args[0].as_double());
  }
  if (name == "round") {
    need(1);
    return make_int(static_cast<int64_t>(std::llround(fn_args[0].as_double())));
  }
  if (name == "floor") return f1(std::floor);
  if (name == "ceil") return f1(std::ceil);
  if (name == "sqrt") return f1(std::sqrt);
  if (name == "exp") return f1(std::exp);
  if (name == "log") return f1(std::log);
  if (name == "log10") return f1(std::log10);
  if (name == "sin") return f1(std::sin);
  if (name == "cos") return f1(std::cos);
  if (name == "tan") return f1(std::tan);
  if (name == "asin") return f1(std::asin);
  if (name == "acos") return f1(std::acos);
  if (name == "atan") return f1(std::atan);
  if (name == "pow") {
    need(2);
    return make_double(std::pow(fn_args[0].as_double(), fn_args[1].as_double()));
  }
  if (name == "atan2") {
    need(2);
    return make_double(std::atan2(fn_args[0].as_double(), fn_args[1].as_double()));
  }
  if (name == "hypot") {
    need(2);
    return make_double(std::hypot(fn_args[0].as_double(), fn_args[1].as_double()));
  }
  if (name == "fmod") {
    need(2);
    return make_double(std::fmod(fn_args[0].as_double(), fn_args[1].as_double()));
  }
  if (name == "min" || name == "max") {
    if (fn_args.empty()) throw TclError(name + " requires at least one argument");
    Value best = fn_args[0];
    for (size_t k = 1; k < fn_args.size(); ++k) {
      int c = expr_compare(fn_args[k], best);
      if ((name == "min" && c < 0) || (name == "max" && c > 0)) best = fn_args[k];
    }
    return best;
  }
  if (name == "rand") {
    need(0);
    return make_double(in.rng().next_double());
  }
  if (name == "srand") {
    need(1);
    in.rng() = Rng(static_cast<uint64_t>(fn_args[0].as_int()));
    return make_double(0.0);
  }
  throw TclError("unknown math function \"" + name + "\"");
}

}  // namespace

class ExprParser {
 public:
  ExprParser(Interp& interp, std::string_view text) : in_(interp), s_(text) {}

  Value run() {
    Value v = ternary(/*live=*/true);
    skip_ws();
    if (i_ < s_.size()) {
      throw TclError("syntax error in expression near \"" + std::string(s_.substr(i_)) + "\"");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool eat(std::string_view op) {
    skip_ws();
    if (s_.substr(i_).starts_with(op)) {
      // Avoid taking "<" when the text is "<<" or "<=" etc.
      char next = i_ + op.size() < s_.size() ? s_[i_ + op.size()] : '\0';
      if (op == "<" && (next == '<' || next == '=')) return false;
      if (op == ">" && (next == '>' || next == '=')) return false;
      if (op == "=" ) return false;  // '=' alone never an operator
      if (op == "&" && next == '&') return false;
      if (op == "|" && next == '|') return false;
      if (op == "!" && next == '=') return false;
      if ((op == "eq" || op == "ne" || op == "in" || op == "ni") && is_word_char(next)) {
        return false;
      }
      i_ += op.size();
      return true;
    }
    return false;
  }

  static bool is_word_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
  }

  Value ternary(bool live) {
    Value cond = logical_or(live);
    skip_ws();
    if (eat("?")) {
      bool take_first = live && cond.truthy();
      Value a = ternary(live && take_first);
      skip_ws();
      if (!eat(":")) throw TclError("missing : in ternary expression");
      Value b = ternary(live && !take_first);
      if (!live) return make_int(0);
      return take_first ? a : b;
    }
    return cond;
  }

  Value logical_or(bool live) {
    Value lhs = logical_and(live);
    while (eat("||")) {
      bool lhs_true = live && lhs.truthy();
      Value rhs = logical_and(live && !lhs_true);
      if (live) lhs = make_bool(lhs_true || rhs.truthy());
    }
    return lhs;
  }

  Value logical_and(bool live) {
    Value lhs = bit_or(live);
    while (eat("&&")) {
      bool lhs_true = live && lhs.truthy();
      Value rhs = bit_or(live && lhs_true);
      if (live) lhs = make_bool(lhs_true && rhs.truthy());
    }
    return lhs;
  }

  Value bit_or(bool live) {
    Value lhs = bit_xor(live);
    while (eat("|")) {
      Value rhs = bit_xor(live);
      if (live) lhs = make_int(lhs.require_int("|") | rhs.require_int("|"));
    }
    return lhs;
  }

  Value bit_xor(bool live) {
    Value lhs = bit_and(live);
    while (eat("^")) {
      Value rhs = bit_and(live);
      if (live) lhs = make_int(lhs.require_int("^") ^ rhs.require_int("^"));
    }
    return lhs;
  }

  Value bit_and(bool live) {
    Value lhs = equality(live);
    while (eat("&")) {
      Value rhs = equality(live);
      if (live) lhs = make_int(lhs.require_int("&") & rhs.require_int("&"));
    }
    return lhs;
  }

  Value equality(bool live) {
    Value lhs = relational(live);
    while (true) {
      skip_ws();
      if (eat("==")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(expr_compare(lhs, rhs) == 0);
      } else if (eat("!=")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(expr_compare(lhs, rhs) != 0);
      } else if (eat("eq")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(lhs.as_string() == rhs.as_string());
      } else if (eat("ne")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(lhs.as_string() != rhs.as_string());
      } else if (eat("in")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(expr_list_contains(rhs.as_string(), lhs.as_string()));
      } else if (eat("ni")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(!expr_list_contains(rhs.as_string(), lhs.as_string()));
      } else {
        return lhs;
      }
    }
  }

  Value relational(bool live) {
    Value lhs = shift(live);
    while (true) {
      skip_ws();
      int op;
      if (eat("<=")) {
        op = 0;
      } else if (eat(">=")) {
        op = 1;
      } else if (eat("<")) {
        op = 2;
      } else if (eat(">")) {
        op = 3;
      } else {
        return lhs;
      }
      Value rhs = shift(live);
      if (!live) continue;
      int c = expr_compare(lhs, rhs);
      switch (op) {
        case 0: lhs = make_bool(c <= 0); break;
        case 1: lhs = make_bool(c >= 0); break;
        case 2: lhs = make_bool(c < 0); break;
        case 3: lhs = make_bool(c > 0); break;
      }
    }
  }

  Value shift(bool live) {
    Value lhs = additive(live);
    while (true) {
      if (eat("<<")) {
        Value rhs = additive(live);
        if (live) lhs = make_int(lhs.require_int("<<") << rhs.require_int("<<"));
      } else if (eat(">>")) {
        Value rhs = additive(live);
        if (live) lhs = make_int(lhs.require_int(">>") >> rhs.require_int(">>"));
      } else {
        return lhs;
      }
    }
  }

  Value additive(bool live) {
    Value lhs = multiplicative(live);
    while (true) {
      skip_ws();
      if (eat("+")) {
        Value rhs = multiplicative(live);
        if (live) lhs = expr_arith(lhs, rhs, '+');
      } else if (eat("-")) {
        Value rhs = multiplicative(live);
        if (live) lhs = expr_arith(lhs, rhs, '-');
      } else {
        return lhs;
      }
    }
  }

  Value multiplicative(bool live) {
    Value lhs = unary(live);
    while (true) {
      skip_ws();
      if (eat("*")) {
        Value rhs = unary(live);
        if (live) lhs = expr_arith(lhs, rhs, '*');
      } else if (eat("/")) {
        Value rhs = unary(live);
        if (live) lhs = expr_arith(lhs, rhs, '/');
      } else if (eat("%")) {
        Value rhs = unary(live);
        if (live) lhs = make_int(floor_mod(lhs.require_int("%"), rhs.require_int("%")));
      } else {
        return lhs;
      }
    }
  }

  Value unary(bool live) {
    skip_ws();
    if (eat("!")) {
      Value v = unary(live);
      return live ? make_bool(!v.truthy()) : v;
    }
    if (eat("~")) {
      Value v = unary(live);
      return live ? make_int(~v.require_int("~")) : v;
    }
    if (eat("-")) {
      Value v = unary(live);
      if (!live) return v;
      if (v.is_int()) return make_int(-v.as_int());
      return make_double(-v.as_double());
    }
    if (eat("+")) {
      Value v = unary(live);
      if (!live) return v;
      v.as_double();  // must be numeric
      return v;
    }
    return primary(live);
  }

  Value primary(bool live) {
    skip_ws();
    if (i_ >= s_.size()) throw TclError("premature end of expression");
    char c = s_[i_];

    if (c == '(') {
      ++i_;
      Value v = ternary(live);
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != ')') throw TclError("missing ) in expression");
      ++i_;
      return v;
    }

    if (c == '$') {
      ++i_;
      if (live) return classify(in_.parse_dollar(s_, i_));
      skip_dollar();
      return make_int(0);
    }

    if (c == '[') {
      if (live) return classify(in_.parse_bracket(s_, i_));
      skip_bracket();
      return make_int(0);
    }

    if (c == '"') {
      ++i_;
      std::string out;
      while (i_ < s_.size() && s_[i_] != '"') {
        char q = s_[i_];
        if (q == '\\') {
          out += backslash_escape(s_, i_);
        } else if (q == '$') {
          ++i_;
          if (live) {
            out += in_.parse_dollar(s_, i_);
          } else {
            skip_dollar();
          }
        } else if (q == '[') {
          if (live) {
            out += in_.parse_bracket(s_, i_);
          } else {
            skip_bracket();
          }
        } else {
          out += q;
          ++i_;
        }
      }
      if (i_ >= s_.size()) throw TclError("missing \" in expression");
      ++i_;
      return make_string(std::move(out));
    }

    if (c == '{') {
      int depth = 1;
      size_t start = ++i_;
      while (i_ < s_.size() && depth > 0) {
        if (s_[i_] == '{') ++depth;
        if (s_[i_] == '}') --depth;
        ++i_;
      }
      if (depth != 0) throw TclError("missing } in expression");
      return make_string(std::string(s_.substr(start, i_ - start - 1)));
    }

    // Number?
    if ((c >= '0' && c <= '9') ||
        (c == '.' && i_ + 1 < s_.size() && s_[i_ + 1] >= '0' && s_[i_ + 1] <= '9')) {
      return number();
    }

    // Identifier: math function or boolean word.
    if (is_word_char(c)) {
      size_t start = i_;
      while (i_ < s_.size() && is_word_char(s_[i_])) ++i_;
      std::string word(s_.substr(start, i_ - start));
      skip_ws();
      if (i_ < s_.size() && s_[i_] == '(') {
        ++i_;
        std::vector<Value> fn_args;
        skip_ws();
        if (i_ < s_.size() && s_[i_] == ')') {
          ++i_;
        } else {
          while (true) {
            fn_args.push_back(ternary(live));
            skip_ws();
            if (i_ < s_.size() && s_[i_] == ',') {
              ++i_;
              continue;
            }
            if (i_ < s_.size() && s_[i_] == ')') {
              ++i_;
              break;
            }
            throw TclError("missing , or ) in call to " + word);
          }
        }
        if (!live) return make_int(0);
        return expr_call_function(in_, word, fn_args);
      }
      auto b = parse_bool(word);
      if (b) return make_bool(*b);
      throw TclError("unknown operand \"" + word + "\" in expression");
    }

    throw TclError("syntax error in expression at \"" + std::string(s_.substr(i_, 10)) + "\"");
  }

  Value number() {
    std::string buf(s_.substr(i_));
    errno = 0;
    char* int_end = nullptr;
    long long iv = std::strtoll(buf.c_str(), &int_end, 0);
    bool int_overflow = errno == ERANGE;
    char* dbl_end = nullptr;
    double dv = std::strtod(buf.c_str(), &dbl_end);
    if (dbl_end > int_end || int_overflow) {
      i_ += static_cast<size_t>(dbl_end - buf.c_str());
      return make_double(dv);
    }
    i_ += static_cast<size_t>(int_end - buf.c_str());
    return make_int(static_cast<int64_t>(iv));
  }

  void skip_dollar() {
    // i_ just past '$'; consume the variable reference without evaluating.
    if (i_ < s_.size() && s_[i_] == '{') {
      size_t end = s_.find('}', i_);
      i_ = end == std::string_view::npos ? s_.size() : end + 1;
      return;
    }
    while (i_ < s_.size() && (is_word_char(s_[i_]) || s_[i_] == ':')) ++i_;
    if (i_ < s_.size() && s_[i_] == '(') {
      while (i_ < s_.size() && s_[i_] != ')') ++i_;
      if (i_ < s_.size()) ++i_;
    }
  }

  void skip_bracket() {
    // i_ at '['; consume balanced brackets without evaluating.
    int depth = 0;
    while (i_ < s_.size()) {
      char c = s_[i_++];
      if (c == '\\' && i_ < s_.size()) {
        ++i_;
        continue;
      }
      if (c == '[') ++depth;
      if (c == ']') {
        --depth;
        if (depth == 0) return;
      }
    }
    throw TclError("missing close-bracket in expression");
  }

  Interp& in_;
  std::string_view s_;
  size_t i_ = 0;
};

std::string Interp::expr(std::string_view expression) {
  ExprParser parser(*this, expression);
  Value v = parser.run();
  return v.as_string();
}

// ---- Compiled expressions (ExprIr) ----
//
// The IR is the ExprParser grammar parsed once into a node pool. Constant
// operands (numbers, braced strings, boolean words) become pre-classified
// Values; $var and [cmd] operands stay lazy thunks so each execution
// re-reads live state in exactly the live parser's order, including
// short-circuit and ternary dead branches (never evaluated — matching the
// parser's live=false mode, which skips evaluation but, like compilation,
// has already vetted the structure).

struct ExprIr {
  enum class K : uint8_t {
    kConst,        // cval
    kLazyVar,      // text = variable name, classified per eval
    kLazyBracket,  // text = "[...]" span, evaluated + classified per eval
    kQuoted,       // kids = fragments concatenated raw -> string value
    kEager,        // eager_index into the template's pre-evaluated leaves
    kUnary,        // op = Un, operand a
    kBinary,       // op = Bin, operands a b (b lazy for kOr/kAnd)
    kTernary,      // a ? b : c
    kCall,         // text = math function name (resolved at eval), kids = args
  };
  enum class Un : uint8_t { kNot, kBitNot, kNeg, kPlus };
  enum class Bin : uint8_t {
    kOr, kAnd, kBitOr, kBitXor, kBitAnd,
    kEq, kNe, kStrEq, kStrNe, kIn, kNi,
    kLe, kGe, kLt, kGt, kShl, kShr,
    kAdd, kSub, kMul, kDiv, kMod,
  };
  struct Node {
    K kind = K::kConst;
    uint8_t op = 0;              // Un / Bin payload
    int a = -1, b = -1, c = -1;  // operand node indices
    int eager_index = -1;        // kEager
    Value cval;                  // kConst
    std::string text;            // kLazyVar / kLazyBracket / kCall
    std::vector<int> kids;       // kCall args / kQuoted fragments
  };
  std::vector<Node> nodes;
  int root = -1;
};

namespace {

using K = ExprIr::K;
using Un = ExprIr::Un;
using Bin = ExprIr::Bin;

// The eager-leaf marker byte used by the kExprTemplate specialization
// (compile.cc): \x01<k>\x01 stands for pre-evaluated leaf k. The byte
// cannot appear in user text that reaches a template (the specializer
// refuses), so the compiler rejects it everywhere except operand position.
constexpr char kEagerMark = '\x01';

// Mirrors ExprParser's grammar but builds nodes instead of evaluating.
// Throws Bail on anything it cannot compile with provable equivalence —
// including every syntax error, so error behavior stays with the live
// parser via the caller's text fallback.
class IrCompiler {
 public:
  struct Bail {};

  IrCompiler(std::string_view s, bool allow_markers)
      : s_(s), allow_markers_(allow_markers) {}

  std::shared_ptr<const ExprIr> run() {
    auto ir = std::make_shared<ExprIr>();
    ir_ = ir.get();
    try {
      int root = ternary();
      skip_ws();
      if (i_ < s_.size()) return nullptr;  // live parser raises syntax error
      ir->root = root;
      return ir;
    } catch (const Bail&) {
      return nullptr;
    } catch (const ScriptError&) {
      return nullptr;  // e.g. malformed backslash escape
    }
  }

 private:
  // ---- node pool ----
  int add(ExprIr::Node n) {
    ir_->nodes.push_back(std::move(n));
    return static_cast<int>(ir_->nodes.size()) - 1;
  }
  int konst(Value v) {
    ExprIr::Node n;
    n.kind = K::kConst;
    n.cval = std::move(v);
    return add(std::move(n));
  }
  int unary_node(Un op, int a) {
    ExprIr::Node n;
    n.kind = K::kUnary;
    n.op = static_cast<uint8_t>(op);
    n.a = a;
    return add(std::move(n));
  }
  int binary_node(Bin op, int a, int b) {
    ExprIr::Node n;
    n.kind = K::kBinary;
    n.op = static_cast<uint8_t>(op);
    n.a = a;
    n.b = b;
    return add(std::move(n));
  }

  // ---- lexing: identical to ExprParser ----
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool eat(std::string_view op) {
    skip_ws();
    if (s_.substr(i_).starts_with(op)) {
      char next = i_ + op.size() < s_.size() ? s_[i_ + op.size()] : '\0';
      if (op == "<" && (next == '<' || next == '=')) return false;
      if (op == ">" && (next == '>' || next == '=')) return false;
      if (op == "=") return false;
      if (op == "&" && next == '&') return false;
      if (op == "|" && next == '|') return false;
      if (op == "!" && next == '=') return false;
      if ((op == "eq" || op == "ne" || op == "in" || op == "ni") && is_word_char(next)) {
        return false;
      }
      i_ += op.size();
      return true;
    }
    return false;
  }

  static bool is_word_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
  }

  // ---- grammar ----
  int ternary() {
    int cond = logical_or();
    skip_ws();
    if (eat("?")) {
      int a = ternary();
      skip_ws();
      if (!eat(":")) throw Bail{};  // live: "missing : in ternary expression"
      int b = ternary();
      ExprIr::Node n;
      n.kind = K::kTernary;
      n.a = cond;
      n.b = a;
      n.c = b;
      return add(std::move(n));
    }
    return cond;
  }

  int logical_or() {
    int lhs = logical_and();
    while (eat("||")) lhs = binary_node(Bin::kOr, lhs, logical_and());
    return lhs;
  }

  int logical_and() {
    int lhs = bit_or();
    while (eat("&&")) lhs = binary_node(Bin::kAnd, lhs, bit_or());
    return lhs;
  }

  int bit_or() {
    int lhs = bit_xor();
    while (eat("|")) lhs = binary_node(Bin::kBitOr, lhs, bit_xor());
    return lhs;
  }

  int bit_xor() {
    int lhs = bit_and();
    while (eat("^")) lhs = binary_node(Bin::kBitXor, lhs, bit_and());
    return lhs;
  }

  int bit_and() {
    int lhs = equality();
    while (eat("&")) lhs = binary_node(Bin::kBitAnd, lhs, equality());
    return lhs;
  }

  int equality() {
    int lhs = relational();
    while (true) {
      skip_ws();
      if (eat("==")) {
        lhs = binary_node(Bin::kEq, lhs, relational());
      } else if (eat("!=")) {
        lhs = binary_node(Bin::kNe, lhs, relational());
      } else if (eat("eq")) {
        lhs = binary_node(Bin::kStrEq, lhs, relational());
      } else if (eat("ne")) {
        lhs = binary_node(Bin::kStrNe, lhs, relational());
      } else if (eat("in")) {
        lhs = binary_node(Bin::kIn, lhs, relational());
      } else if (eat("ni")) {
        lhs = binary_node(Bin::kNi, lhs, relational());
      } else {
        return lhs;
      }
    }
  }

  int relational() {
    int lhs = shift();
    while (true) {
      skip_ws();
      if (eat("<=")) {
        lhs = binary_node(Bin::kLe, lhs, shift());
      } else if (eat(">=")) {
        lhs = binary_node(Bin::kGe, lhs, shift());
      } else if (eat("<")) {
        lhs = binary_node(Bin::kLt, lhs, shift());
      } else if (eat(">")) {
        lhs = binary_node(Bin::kGt, lhs, shift());
      } else {
        return lhs;
      }
    }
  }

  int shift() {
    int lhs = additive();
    while (true) {
      if (eat("<<")) {
        lhs = binary_node(Bin::kShl, lhs, additive());
      } else if (eat(">>")) {
        lhs = binary_node(Bin::kShr, lhs, additive());
      } else {
        return lhs;
      }
    }
  }

  int additive() {
    int lhs = multiplicative();
    while (true) {
      skip_ws();
      if (eat("+")) {
        lhs = binary_node(Bin::kAdd, lhs, multiplicative());
      } else if (eat("-")) {
        lhs = binary_node(Bin::kSub, lhs, multiplicative());
      } else {
        return lhs;
      }
    }
  }

  int multiplicative() {
    int lhs = unary();
    while (true) {
      skip_ws();
      if (eat("*")) {
        lhs = binary_node(Bin::kMul, lhs, unary());
      } else if (eat("/")) {
        lhs = binary_node(Bin::kDiv, lhs, unary());
      } else if (eat("%")) {
        lhs = binary_node(Bin::kMod, lhs, unary());
      } else {
        return lhs;
      }
    }
  }

  int unary() {
    skip_ws();
    if (eat("!")) return unary_node(Un::kNot, unary());
    if (eat("~")) return unary_node(Un::kBitNot, unary());
    if (eat("-")) return unary_node(Un::kNeg, unary());
    if (eat("+")) return unary_node(Un::kPlus, unary());
    return primary();
  }

  int primary() {
    skip_ws();
    if (i_ >= s_.size()) throw Bail{};  // live: "premature end of expression"
    char c = s_[i_];

    if (c == kEagerMark) {
      if (!allow_markers_) throw Bail{};
      ++i_;
      size_t start = i_;
      while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') ++i_;
      if (i_ == start || i_ >= s_.size() || s_[i_] != kEagerMark) throw Bail{};
      int k = 0;
      for (size_t j = start; j < i_; ++j) k = k * 10 + (s_[j] - '0');
      ++i_;
      ExprIr::Node n;
      n.kind = K::kEager;
      n.eager_index = k;
      return add(std::move(n));
    }

    if (c == '(') {
      ++i_;
      int v = ternary();
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != ')') throw Bail{};
      ++i_;
      return v;
    }

    if (c == '$') {
      ++i_;
      return lazy_var();
    }

    if (c == '[') return lazy_bracket();

    if (c == '"') return quoted();

    if (c == '{') {
      int depth = 1;
      size_t start = ++i_;
      while (i_ < s_.size() && depth > 0) {
        if (s_[i_] == '{') ++depth;
        if (s_[i_] == '}') --depth;
        ++i_;
      }
      if (depth != 0) throw Bail{};
      std::string inner(s_.substr(start, i_ - start - 1));
      if (inner.find(kEagerMark) != std::string::npos) throw Bail{};
      return konst(make_string(std::move(inner)));
    }

    if ((c >= '0' && c <= '9') ||
        (c == '.' && i_ + 1 < s_.size() && s_[i_ + 1] >= '0' && s_[i_ + 1] <= '9')) {
      return number();
    }

    if (is_word_char(c)) {
      size_t start = i_;
      while (i_ < s_.size() && is_word_char(s_[i_])) ++i_;
      std::string word(s_.substr(start, i_ - start));
      skip_ws();
      if (i_ < s_.size() && s_[i_] == '(') {
        ++i_;
        std::vector<int> args;
        skip_ws();
        if (i_ < s_.size() && s_[i_] == ')') {
          ++i_;
        } else {
          while (true) {
            args.push_back(ternary());
            skip_ws();
            if (i_ < s_.size() && s_[i_] == ',') {
              ++i_;
              continue;
            }
            if (i_ < s_.size() && s_[i_] == ')') {
              ++i_;
              break;
            }
            throw Bail{};
          }
        }
        // Unknown functions error at eval time in the live parser (only a
        // live branch calls them), so resolution stays an eval-time lookup.
        ExprIr::Node n;
        n.kind = K::kCall;
        n.text = std::move(word);
        n.kids = std::move(args);
        return add(std::move(n));
      }
      auto b = parse_bool(word);
      if (b) return konst(make_bool(*b));
      throw Bail{};  // live: "unknown operand" — raised in dead branches too
    }

    throw Bail{};
  }

  int number() {
    std::string buf(s_.substr(i_));
    errno = 0;
    char* int_end = nullptr;
    long long iv = std::strtoll(buf.c_str(), &int_end, 0);
    bool int_overflow = errno == ERANGE;
    char* dbl_end = nullptr;
    double dv = std::strtod(buf.c_str(), &dbl_end);
    if (dbl_end > int_end || int_overflow) {
      i_ += static_cast<size_t>(dbl_end - buf.c_str());
      return konst(make_double(dv));
    }
    i_ += static_cast<size_t>(int_end - buf.c_str());
    return konst(make_int(static_cast<int64_t>(iv)));
  }

  // A $var reference whose extent provably matches parse_dollar's: plain
  // names, ${braced} names, and array elements with literal-only indices.
  // Substituted indices bail out — their scan order is the live parser's
  // business.
  int lazy_var() {
    std::string name;
    if (i_ < s_.size() && s_[i_] == '{') {
      size_t end = s_.find('}', i_ + 1);
      if (end == std::string_view::npos) throw Bail{};
      name = std::string(s_.substr(i_ + 1, end - i_ - 1));
      i_ = end + 1;
    } else {
      size_t start = i_;
      while (i_ < s_.size() && (is_word_char(s_[i_]) || s_[i_] == ':')) ++i_;
      if (i_ == start) throw Bail{};  // lone '$' is literal text — too rare to model
      name = std::string(s_.substr(start, i_ - start));
      if (i_ < s_.size() && s_[i_] == '(') {
        ++i_;
        size_t istart = i_;
        while (i_ < s_.size() && s_[i_] != ')') {
          char q = s_[i_];
          if (q == '$' || q == '[' || q == '\\' || q == kEagerMark) throw Bail{};
          ++i_;
        }
        if (i_ >= s_.size()) throw Bail{};
        name += '(';
        name.append(s_.substr(istart, i_ - istart));
        name += ')';
        ++i_;
      }
    }
    if (name.find(kEagerMark) != std::string::npos) throw Bail{};
    ExprIr::Node n;
    n.kind = K::kLazyVar;
    n.text = std::move(name);
    return add(std::move(n));
  }

  // A [cmd] span. Restricted to spans containing none of " { } \ # ( so
  // that plain [/] depth counting — here, in skip_bracket, and in the real
  // parse — provably finds the same extent; anything else bails to the
  // text path.
  int lazy_bracket() {
    size_t start = i_;  // at '['
    int depth = 0;
    bool closed = false;
    while (i_ < s_.size()) {
      char c = s_[i_];
      if (c == '"' || c == '{' || c == '}' || c == '\\' || c == '#' || c == '(' ||
          c == kEagerMark) {
        throw Bail{};
      }
      ++i_;
      if (c == '[') ++depth;
      if (c == ']') {
        --depth;
        if (depth == 0) {
          closed = true;
          break;
        }
      }
    }
    if (!closed) throw Bail{};
    ExprIr::Node n;
    n.kind = K::kLazyBracket;
    n.text = std::string(s_.substr(start, i_ - start));
    return add(std::move(n));
  }

  // A "quoted" operand: literal runs (escapes resolved now — they are pure
  // text transforms) plus raw-substituting $var / [cmd] fragments.
  int quoted() {
    ++i_;  // past '"'
    std::vector<int> kids;
    std::string lit;
    auto flush = [&] {
      if (!lit.empty()) {
        kids.push_back(konst(make_string(lit)));
        lit.clear();
      }
    };
    while (i_ < s_.size() && s_[i_] != '"') {
      char q = s_[i_];
      if (q == '\\') {
        lit += backslash_escape(s_, i_);
      } else if (q == '$') {
        ++i_;
        flush();
        kids.push_back(lazy_var());
      } else if (q == '[') {
        flush();
        kids.push_back(lazy_bracket());
      } else if (q == kEagerMark) {
        throw Bail{};
      } else {
        lit += q;
        ++i_;
      }
    }
    if (i_ >= s_.size()) throw Bail{};  // live: missing "
    ++i_;
    flush();
    ExprIr::Node n;
    n.kind = K::kQuoted;
    n.kids = std::move(kids);
    return add(std::move(n));
  }

  ExprIr* ir_ = nullptr;
  std::string_view s_;
  size_t i_ = 0;
  bool allow_markers_;
};

}  // namespace

// Tree-walking evaluator. A friend of Interp so lazy [cmd] thunks reach
// parse_bracket — the exact function the live parser calls.
class ExprIrEval {
 public:
  ExprIrEval(Interp& in, const ExprIr& ir, const std::vector<Value>* eager)
      : in_(in), ir_(ir), eager_(eager) {}

  Value eval(int idx) {
    const ExprIr::Node& n = ir_.nodes[static_cast<size_t>(idx)];
    switch (n.kind) {
      case K::kConst:
        return n.cval;
      case K::kLazyVar:
        return in_.read_var_value(n.text);
      case K::kLazyBracket: {
        size_t i = 1;  // past '['
        return classify(in_.eval_until(n.text, i, ']'));
      }
      case K::kQuoted: {
        std::string out;
        for (int k : n.kids) out += raw(k);
        return make_string(std::move(out));
      }
      case K::kEager:
        if (!eager_ || n.eager_index < 0 ||
            static_cast<size_t>(n.eager_index) >= eager_->size()) {
          throw TclError("internal error: expr template leaf out of range");
        }
        return (*eager_)[static_cast<size_t>(n.eager_index)];
      case K::kUnary: {
        Value v = eval(n.a);
        switch (static_cast<Un>(n.op)) {
          case Un::kNot: return make_bool(!v.truthy());
          case Un::kBitNot: return make_int(~v.require_int("~"));
          case Un::kNeg:
            if (v.is_int()) return make_int(-v.as_int());
            return make_double(-v.as_double());
          case Un::kPlus:
            v.as_double();  // must be numeric
            return v;
        }
        break;
      }
      case K::kBinary:
        return binary(n);
      case K::kTernary:
        return eval(n.a).truthy() ? eval(n.b) : eval(n.c);
      case K::kCall: {
        std::vector<Value> args;
        args.reserve(n.kids.size());
        for (int k : n.kids) args.push_back(eval(k));
        return expr_call_function(in_, n.text, args);
      }
    }
    throw TclError("internal error: bad expr node");
  }

 private:
  Value binary(const ExprIr::Node& n) {
    Bin op = static_cast<Bin>(n.op);
    // Short-circuit forms evaluate the rhs only when the lhs doesn't
    // decide, exactly as the live parser's live-flag threading does.
    if (op == Bin::kOr) {
      if (eval(n.a).truthy()) return make_bool(true);
      return make_bool(eval(n.b).truthy());
    }
    if (op == Bin::kAnd) {
      if (!eval(n.a).truthy()) return make_bool(false);
      return make_bool(eval(n.b).truthy());
    }
    // Everything else: lhs fully evaluates before the rhs (the parser
    // evaluates operands in parse order).
    Value L = eval(n.a);
    Value R = eval(n.b);
    switch (op) {
      case Bin::kBitOr: return make_int(L.require_int("|") | R.require_int("|"));
      case Bin::kBitXor: return make_int(L.require_int("^") ^ R.require_int("^"));
      case Bin::kBitAnd: return make_int(L.require_int("&") & R.require_int("&"));
      case Bin::kEq: return make_bool(expr_compare(L, R) == 0);
      case Bin::kNe: return make_bool(expr_compare(L, R) != 0);
      case Bin::kStrEq: return make_bool(L.as_string() == R.as_string());
      case Bin::kStrNe: return make_bool(L.as_string() != R.as_string());
      case Bin::kIn: return make_bool(expr_list_contains(R.as_string(), L.as_string()));
      case Bin::kNi: return make_bool(!expr_list_contains(R.as_string(), L.as_string()));
      case Bin::kLe: return make_bool(expr_compare(L, R) <= 0);
      case Bin::kGe: return make_bool(expr_compare(L, R) >= 0);
      case Bin::kLt: return make_bool(expr_compare(L, R) < 0);
      case Bin::kGt: return make_bool(expr_compare(L, R) > 0);
      case Bin::kShl: {
        int64_t l = L.require_int("<<");
        return make_int(l << R.require_int("<<"));
      }
      case Bin::kShr: {
        int64_t l = L.require_int(">>");
        return make_int(l >> R.require_int(">>"));
      }
      case Bin::kAdd: return expr_arith(L, R, '+');
      case Bin::kSub: return expr_arith(L, R, '-');
      case Bin::kMul: return expr_arith(L, R, '*');
      case Bin::kDiv: return expr_arith(L, R, '/');
      case Bin::kMod: {
        int64_t l = L.require_int("%");
        return make_int(floor_mod(l, R.require_int("%")));
      }
      case Bin::kOr:
      case Bin::kAnd:
        break;  // handled above
    }
    throw TclError("internal error: bad expr operator");
  }

  // Quoted-fragment context: substitutions splice raw text, not classified
  // values (matching parse_dollar / parse_bracket inside quotes).
  std::string raw(int idx) {
    const ExprIr::Node& n = ir_.nodes[static_cast<size_t>(idx)];
    switch (n.kind) {
      case K::kConst:
        return n.cval.str();
      case K::kLazyVar:
        return in_.get_var(n.text);
      case K::kLazyBracket: {
        size_t i = 1;  // past '['
        return in_.eval_until(n.text, i, ']');
      }
      default:
        throw TclError("internal error: bad quoted fragment");
    }
  }

  Interp& in_;
  const ExprIr& ir_;
  const std::vector<Value>* eager_;
};

std::shared_ptr<const ExprIr> expr_ir_compile(std::string_view text, bool allow_markers) {
  return IrCompiler(text, allow_markers).run();
}

Value expr_ir_eval(Interp& interp, const ExprIr& ir, const std::vector<Value>* eager) {
  return ExprIrEval(interp, ir, eager).eval(ir.root);
}

}  // namespace ilps::tcl
