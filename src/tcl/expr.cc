// The Tcl `expr` sublanguage: numbers (int64 / double), strings, the full
// operator set with Tcl precedence, short-circuit && || and lazy ?:, and
// the math function library. Integer / and % use floor semantics as Tcl
// does. Operands may be $variables, [command substitutions], "quoted" or
// {braced} strings, numeric literals, or boolean words.
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>
#include <variant>
#include <vector>

#include "common/strings.h"
#include "tcl/interp.h"

namespace ilps::tcl {

namespace {

struct Value {
  std::variant<int64_t, double, std::string> v;

  bool is_int() const { return std::holds_alternative<int64_t>(v); }
  bool is_double() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_numeric() const { return !is_string(); }

  int64_t as_int() const {
    if (is_int()) return std::get<int64_t>(v);
    if (is_double()) return static_cast<int64_t>(std::get<double>(v));
    throw TclError("expected integer but got \"" + std::get<std::string>(v) + "\"");
  }
  int64_t require_int(const char* op) const {
    if (is_int()) return std::get<int64_t>(v);
    throw TclError(std::string("operand of ") + op + " must be an integer");
  }
  double as_double() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(v));
    if (is_double()) return std::get<double>(v);
    throw TclError("expected number but got \"" + std::get<std::string>(v) + "\"");
  }
  std::string as_string() const {
    if (is_int()) return std::to_string(std::get<int64_t>(v));
    if (is_double()) return str::format_double(std::get<double>(v));
    return std::get<std::string>(v);
  }
  bool truthy() const {
    if (is_int()) return std::get<int64_t>(v) != 0;
    if (is_double()) return std::get<double>(v) != 0.0;
    auto b = parse_bool(std::get<std::string>(v));
    if (!b) throw TclError("expected boolean value but got \"" + std::get<std::string>(v) + "\"");
    return *b;
  }
};

Value make_int(int64_t x) { return Value{x}; }
Value make_double(double x) { return Value{x}; }
Value make_bool(bool b) { return Value{static_cast<int64_t>(b ? 1 : 0)}; }
Value make_string(std::string s) { return Value{std::move(s)}; }

// Converts raw text (from a $var or [cmd]) into the narrowest numeric
// value, or keeps it as a string.
Value classify(std::string raw) {
  if (auto i = str::parse_int(raw)) return make_int(*i);
  if (auto d = str::parse_double(raw)) return make_double(*d);
  return make_string(std::move(raw));
}

int64_t floor_div(int64_t a, int64_t b) {
  if (b == 0) throw TclError("divide by zero");
  int64_t q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t floor_mod(int64_t a, int64_t b) {
  if (b == 0) throw TclError("divide by zero");
  int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

}  // namespace

class ExprParser {
 public:
  ExprParser(Interp& interp, std::string_view text) : in_(interp), s_(text) {}

  Value run() {
    Value v = ternary(/*live=*/true);
    skip_ws();
    if (i_ < s_.size()) {
      throw TclError("syntax error in expression near \"" + std::string(s_.substr(i_)) + "\"");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool eat(std::string_view op) {
    skip_ws();
    if (s_.substr(i_).starts_with(op)) {
      // Avoid taking "<" when the text is "<<" or "<=" etc.
      char next = i_ + op.size() < s_.size() ? s_[i_ + op.size()] : '\0';
      if (op == "<" && (next == '<' || next == '=')) return false;
      if (op == ">" && (next == '>' || next == '=')) return false;
      if (op == "=" ) return false;  // '=' alone never an operator
      if (op == "&" && next == '&') return false;
      if (op == "|" && next == '|') return false;
      if (op == "!" && next == '=') return false;
      if ((op == "eq" || op == "ne" || op == "in" || op == "ni") && is_word_char(next)) {
        return false;
      }
      i_ += op.size();
      return true;
    }
    return false;
  }

  static bool is_word_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
  }

  Value ternary(bool live) {
    Value cond = logical_or(live);
    skip_ws();
    if (eat("?")) {
      bool take_first = live && cond.truthy();
      Value a = ternary(live && take_first);
      skip_ws();
      if (!eat(":")) throw TclError("missing : in ternary expression");
      Value b = ternary(live && !take_first);
      if (!live) return make_int(0);
      return take_first ? a : b;
    }
    return cond;
  }

  Value logical_or(bool live) {
    Value lhs = logical_and(live);
    while (eat("||")) {
      bool lhs_true = live && lhs.truthy();
      Value rhs = logical_and(live && !lhs_true);
      if (live) lhs = make_bool(lhs_true || rhs.truthy());
    }
    return lhs;
  }

  Value logical_and(bool live) {
    Value lhs = bit_or(live);
    while (eat("&&")) {
      bool lhs_true = live && lhs.truthy();
      Value rhs = bit_or(live && lhs_true);
      if (live) lhs = make_bool(lhs_true && rhs.truthy());
    }
    return lhs;
  }

  Value bit_or(bool live) {
    Value lhs = bit_xor(live);
    while (eat("|")) {
      Value rhs = bit_xor(live);
      if (live) lhs = make_int(lhs.require_int("|") | rhs.require_int("|"));
    }
    return lhs;
  }

  Value bit_xor(bool live) {
    Value lhs = bit_and(live);
    while (eat("^")) {
      Value rhs = bit_and(live);
      if (live) lhs = make_int(lhs.require_int("^") ^ rhs.require_int("^"));
    }
    return lhs;
  }

  Value bit_and(bool live) {
    Value lhs = equality(live);
    while (eat("&")) {
      Value rhs = equality(live);
      if (live) lhs = make_int(lhs.require_int("&") & rhs.require_int("&"));
    }
    return lhs;
  }

  Value equality(bool live) {
    Value lhs = relational(live);
    while (true) {
      skip_ws();
      if (eat("==")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(compare(lhs, rhs) == 0);
      } else if (eat("!=")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(compare(lhs, rhs) != 0);
      } else if (eat("eq")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(lhs.as_string() == rhs.as_string());
      } else if (eat("ne")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(lhs.as_string() != rhs.as_string());
      } else if (eat("in")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(list_contains(rhs.as_string(), lhs.as_string()));
      } else if (eat("ni")) {
        Value rhs = relational(live);
        if (live) lhs = make_bool(!list_contains(rhs.as_string(), lhs.as_string()));
      } else {
        return lhs;
      }
    }
  }

  static bool list_contains(const std::string& list, const std::string& item) {
    for (const auto& e : list_split(list)) {
      if (e == item) return true;
    }
    return false;
  }

  Value relational(bool live) {
    Value lhs = shift(live);
    while (true) {
      skip_ws();
      int op;
      if (eat("<=")) {
        op = 0;
      } else if (eat(">=")) {
        op = 1;
      } else if (eat("<")) {
        op = 2;
      } else if (eat(">")) {
        op = 3;
      } else {
        return lhs;
      }
      Value rhs = shift(live);
      if (!live) continue;
      int c = compare(lhs, rhs);
      switch (op) {
        case 0: lhs = make_bool(c <= 0); break;
        case 1: lhs = make_bool(c >= 0); break;
        case 2: lhs = make_bool(c < 0); break;
        case 3: lhs = make_bool(c > 0); break;
      }
    }
  }

  // Numeric compare when both operands look numeric (Tcl reclassifies
  // string operands that parse as numbers), else string compare.
  static int compare(const Value& a0, const Value& b0) {
    Value a = a0.is_string() ? classify(std::get<std::string>(a0.v)) : a0;
    Value b = b0.is_string() ? classify(std::get<std::string>(b0.v)) : b0;
    if (a.is_numeric() && b.is_numeric()) {
      if (a.is_int() && b.is_int()) {
        int64_t x = a.as_int();
        int64_t y = b.as_int();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      double x = a.as_double();
      double y = b.as_double();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    std::string x = a.as_string();
    std::string y = b.as_string();
    return x < y ? -1 : (x > y ? 1 : 0);
  }

  Value shift(bool live) {
    Value lhs = additive(live);
    while (true) {
      if (eat("<<")) {
        Value rhs = additive(live);
        if (live) lhs = make_int(lhs.require_int("<<") << rhs.require_int("<<"));
      } else if (eat(">>")) {
        Value rhs = additive(live);
        if (live) lhs = make_int(lhs.require_int(">>") >> rhs.require_int(">>"));
      } else {
        return lhs;
      }
    }
  }

  Value additive(bool live) {
    Value lhs = multiplicative(live);
    while (true) {
      skip_ws();
      if (eat("+")) {
        Value rhs = multiplicative(live);
        if (live) lhs = arith(lhs, rhs, '+');
      } else if (eat("-")) {
        Value rhs = multiplicative(live);
        if (live) lhs = arith(lhs, rhs, '-');
      } else {
        return lhs;
      }
    }
  }

  Value multiplicative(bool live) {
    Value lhs = unary(live);
    while (true) {
      skip_ws();
      if (eat("*")) {
        Value rhs = unary(live);
        if (live) lhs = arith(lhs, rhs, '*');
      } else if (eat("/")) {
        Value rhs = unary(live);
        if (live) lhs = arith(lhs, rhs, '/');
      } else if (eat("%")) {
        Value rhs = unary(live);
        if (live) lhs = make_int(floor_mod(lhs.require_int("%"), rhs.require_int("%")));
      } else {
        return lhs;
      }
    }
  }

  static Value arith(const Value& a, const Value& b, char op) {
    if (a.is_int() && b.is_int()) {
      int64_t x = a.as_int();
      int64_t y = b.as_int();
      switch (op) {
        case '+': return make_int(x + y);
        case '-': return make_int(x - y);
        case '*': return make_int(x * y);
        case '/': return make_int(floor_div(x, y));
      }
    }
    double x = a.as_double();
    double y = b.as_double();
    switch (op) {
      case '+': return make_double(x + y);
      case '-': return make_double(x - y);
      case '*': return make_double(x * y);
      case '/':
        if (y == 0.0) throw TclError("divide by zero");
        return make_double(x / y);
    }
    throw TclError("bad arithmetic operator");
  }

  Value unary(bool live) {
    skip_ws();
    if (eat("!")) {
      Value v = unary(live);
      return live ? make_bool(!v.truthy()) : v;
    }
    if (eat("~")) {
      Value v = unary(live);
      return live ? make_int(~v.require_int("~")) : v;
    }
    if (eat("-")) {
      Value v = unary(live);
      if (!live) return v;
      if (v.is_int()) return make_int(-v.as_int());
      return make_double(-v.as_double());
    }
    if (eat("+")) {
      Value v = unary(live);
      if (!live) return v;
      v.as_double();  // must be numeric
      return v;
    }
    return primary(live);
  }

  Value primary(bool live) {
    skip_ws();
    if (i_ >= s_.size()) throw TclError("premature end of expression");
    char c = s_[i_];

    if (c == '(') {
      ++i_;
      Value v = ternary(live);
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != ')') throw TclError("missing ) in expression");
      ++i_;
      return v;
    }

    if (c == '$') {
      ++i_;
      if (live) return classify(in_.parse_dollar(s_, i_));
      skip_dollar();
      return make_int(0);
    }

    if (c == '[') {
      if (live) return classify(in_.parse_bracket(s_, i_));
      skip_bracket();
      return make_int(0);
    }

    if (c == '"') {
      ++i_;
      std::string out;
      while (i_ < s_.size() && s_[i_] != '"') {
        char q = s_[i_];
        if (q == '\\') {
          out += backslash_escape(s_, i_);
        } else if (q == '$') {
          ++i_;
          if (live) {
            out += in_.parse_dollar(s_, i_);
          } else {
            skip_dollar();
          }
        } else if (q == '[') {
          if (live) {
            out += in_.parse_bracket(s_, i_);
          } else {
            skip_bracket();
          }
        } else {
          out += q;
          ++i_;
        }
      }
      if (i_ >= s_.size()) throw TclError("missing \" in expression");
      ++i_;
      return make_string(std::move(out));
    }

    if (c == '{') {
      int depth = 1;
      size_t start = ++i_;
      while (i_ < s_.size() && depth > 0) {
        if (s_[i_] == '{') ++depth;
        if (s_[i_] == '}') --depth;
        ++i_;
      }
      if (depth != 0) throw TclError("missing } in expression");
      return make_string(std::string(s_.substr(start, i_ - start - 1)));
    }

    // Number?
    if ((c >= '0' && c <= '9') ||
        (c == '.' && i_ + 1 < s_.size() && s_[i_ + 1] >= '0' && s_[i_ + 1] <= '9')) {
      return number();
    }

    // Identifier: math function or boolean word.
    if (is_word_char(c)) {
      size_t start = i_;
      while (i_ < s_.size() && is_word_char(s_[i_])) ++i_;
      std::string word(s_.substr(start, i_ - start));
      skip_ws();
      if (i_ < s_.size() && s_[i_] == '(') {
        ++i_;
        std::vector<Value> fn_args;
        skip_ws();
        if (i_ < s_.size() && s_[i_] == ')') {
          ++i_;
        } else {
          while (true) {
            fn_args.push_back(ternary(live));
            skip_ws();
            if (i_ < s_.size() && s_[i_] == ',') {
              ++i_;
              continue;
            }
            if (i_ < s_.size() && s_[i_] == ')') {
              ++i_;
              break;
            }
            throw TclError("missing , or ) in call to " + word);
          }
        }
        if (!live) return make_int(0);
        return call_function(word, fn_args);
      }
      auto b = parse_bool(word);
      if (b) return make_bool(*b);
      throw TclError("unknown operand \"" + word + "\" in expression");
    }

    throw TclError("syntax error in expression at \"" + std::string(s_.substr(i_, 10)) + "\"");
  }

  Value number() {
    std::string buf(s_.substr(i_));
    errno = 0;
    char* int_end = nullptr;
    long long iv = std::strtoll(buf.c_str(), &int_end, 0);
    bool int_overflow = errno == ERANGE;
    char* dbl_end = nullptr;
    double dv = std::strtod(buf.c_str(), &dbl_end);
    if (dbl_end > int_end || int_overflow) {
      i_ += static_cast<size_t>(dbl_end - buf.c_str());
      return make_double(dv);
    }
    i_ += static_cast<size_t>(int_end - buf.c_str());
    return make_int(static_cast<int64_t>(iv));
  }

  void skip_dollar() {
    // i_ just past '$'; consume the variable reference without evaluating.
    if (i_ < s_.size() && s_[i_] == '{') {
      size_t end = s_.find('}', i_);
      i_ = end == std::string_view::npos ? s_.size() : end + 1;
      return;
    }
    while (i_ < s_.size() && (is_word_char(s_[i_]) || s_[i_] == ':')) ++i_;
    if (i_ < s_.size() && s_[i_] == '(') {
      while (i_ < s_.size() && s_[i_] != ')') ++i_;
      if (i_ < s_.size()) ++i_;
    }
  }

  void skip_bracket() {
    // i_ at '['; consume balanced brackets without evaluating.
    int depth = 0;
    while (i_ < s_.size()) {
      char c = s_[i_++];
      if (c == '\\' && i_ < s_.size()) {
        ++i_;
        continue;
      }
      if (c == '[') ++depth;
      if (c == ']') {
        --depth;
        if (depth == 0) return;
      }
    }
    throw TclError("missing close-bracket in expression");
  }

  Value call_function(const std::string& name, std::vector<Value>& fn_args) {
    auto need = [&](size_t n) {
      if (fn_args.size() != n) {
        throw TclError("wrong # args to math function " + name);
      }
    };
    auto f1 = [&](double (*fn)(double)) {
      need(1);
      return make_double(fn(fn_args[0].as_double()));
    };
    if (name == "abs") {
      need(1);
      if (fn_args[0].is_int()) {
        int64_t v = fn_args[0].as_int();
        return make_int(v < 0 ? -v : v);
      }
      return make_double(std::fabs(fn_args[0].as_double()));
    }
    if (name == "int") {
      need(1);
      return make_int(static_cast<int64_t>(fn_args[0].as_double()));
    }
    if (name == "double") {
      need(1);
      return make_double(fn_args[0].as_double());
    }
    if (name == "round") {
      need(1);
      return make_int(static_cast<int64_t>(std::llround(fn_args[0].as_double())));
    }
    if (name == "floor") return f1(std::floor);
    if (name == "ceil") return f1(std::ceil);
    if (name == "sqrt") return f1(std::sqrt);
    if (name == "exp") return f1(std::exp);
    if (name == "log") return f1(std::log);
    if (name == "log10") return f1(std::log10);
    if (name == "sin") return f1(std::sin);
    if (name == "cos") return f1(std::cos);
    if (name == "tan") return f1(std::tan);
    if (name == "asin") return f1(std::asin);
    if (name == "acos") return f1(std::acos);
    if (name == "atan") return f1(std::atan);
    if (name == "pow") {
      need(2);
      return make_double(std::pow(fn_args[0].as_double(), fn_args[1].as_double()));
    }
    if (name == "atan2") {
      need(2);
      return make_double(std::atan2(fn_args[0].as_double(), fn_args[1].as_double()));
    }
    if (name == "hypot") {
      need(2);
      return make_double(std::hypot(fn_args[0].as_double(), fn_args[1].as_double()));
    }
    if (name == "fmod") {
      need(2);
      return make_double(std::fmod(fn_args[0].as_double(), fn_args[1].as_double()));
    }
    if (name == "min" || name == "max") {
      if (fn_args.empty()) throw TclError(name + " requires at least one argument");
      Value best = fn_args[0];
      for (size_t k = 1; k < fn_args.size(); ++k) {
        int c = compare(fn_args[k], best);
        if ((name == "min" && c < 0) || (name == "max" && c > 0)) best = fn_args[k];
      }
      return best;
    }
    if (name == "rand") {
      need(0);
      return make_double(in_.rng().next_double());
    }
    if (name == "srand") {
      need(1);
      in_.rng() = Rng(static_cast<uint64_t>(fn_args[0].as_int()));
      return make_double(0.0);
    }
    throw TclError("unknown math function \"" + name + "\"");
  }

  Interp& in_;
  std::string_view s_;
  size_t i_ = 0;
};

std::string Interp::expr(std::string_view expression) {
  ExprParser parser(*this, expression);
  Value v = parser.run();
  return v.as_string();
}

}  // namespace ilps::tcl
