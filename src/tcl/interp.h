// MiniTcl — an embeddable Tcl-subset interpreter.
//
// MiniTcl plays the role CPython's Tcl plays in Swift/T: it is the target
// representation of the Swift compiler (STC emits MiniTcl "Turbine code"),
// the glue through which native code is reached (BindGen registers C++
// commands), and a leaf-task language in its own right. The properties the
// paper needs from Tcl hold here too: programs are plain text that can be
// shipped through ADLB and evaluated on any rank, and C/C++ functions are
// registered as commands with a small API (mirroring Tcl_CreateObjCommand).
//
// Supported language: command/word parsing with {braces}, "quotes",
// [command substitution], $var and ${var} and $arr(elem) substitution,
// backslash escapes, {*} expansion, comments; procs with defaults and
// `args`; upvar/uplevel/global; arrays; dicts (list representation); the
// expr sublanguage; ~70 built-in commands (see builtins_*.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "tcl/value.h"

namespace ilps::tcl {

class Interp;

// A command implementation. args[0] is the command name, as in Tcl.
using CommandFn = std::function<std::string(Interp&, std::vector<std::string>&)>;

// Raised for Tcl-level errors (`error`, bad usage, unknown command).
class TclError : public ScriptError {
 public:
  explicit TclError(const std::string& what) : ScriptError(what) {}
};

// Non-error control flow, caught by loops / proc calls / catch.
struct BreakSignal {};
struct ContinueSignal {};
struct ReturnSignal {
  std::string value;
};

// Result codes reported by `catch`, matching Tcl's numbering.
enum : int { kTclOk = 0, kTclErrorCode = 1, kTclReturn = 2, kTclBreak = 3, kTclContinue = 4 };

class Interp {
 public:
  Interp();
  ~Interp();

  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  // Evaluates a script in the current frame and returns the result of the
  // last command. Throws TclError (and lets Break/Continue/Return signals
  // escape, as Tcl does for a top-level break).
  std::string eval(std::string_view script);

  // Performs $-, bracket- and backslash-substitution on `text` without
  // treating it as a command (Tcl's `subst`).
  std::string subst(std::string_view text);

  // Evaluates the expr sublanguage.
  std::string expr(std::string_view expression);
  bool expr_bool(std::string_view expression);

  // ---- Commands ----
  void register_command(const std::string& name, CommandFn fn);
  bool has_command(const std::string& name) const;
  void remove_command(const std::string& name);
  std::vector<std::string> command_names() const;
  // Invokes a command with already-substituted words.
  std::string invoke(std::vector<std::string>& words);

  // ---- Variables ----
  // Names may be plain ("x"), or array references ("a(elem)").
  void set_var(const std::string& name, std::string value);
  std::string get_var(const std::string& name);  // throws TclError if unset
  std::optional<std::string> get_var_opt(const std::string& name);
  bool var_exists(const std::string& name);
  bool unset_var(const std::string& name);  // true if it existed
  // Links `local_name` in the current frame to `other_name` in the frame
  // `levels_up` frames up the call chain (upvar). levels_up == -1 means the
  // global frame.
  void link_var(int levels_up, const std::string& other_name, const std::string& local_name);

  // ---- Arrays (for the `array` command) ----
  bool array_exists(const std::string& name);
  std::vector<std::pair<std::string, std::string>> array_entries(const std::string& name);
  void array_set_entries(const std::string& name,
                         const std::vector<std::pair<std::string, std::string>>& entries);

  // ---- Frames ----
  // Current logical call depth (0 at global scope).
  int frame_level() const;
  // Names of scalar/array variables visible in the current frame.
  std::vector<std::string> var_names() const;
  // Evaluates `script` with the frame `levels_up` up the chain active
  // (uplevel). levels_up == -1 means global.
  std::string eval_up(int levels_up, std::string_view script);

  // ---- Procs ----
  struct ProcInfo {
    std::vector<std::pair<std::string, std::optional<std::string>>> params;
    std::string body;
  };
  void define_proc(const std::string& name, ProcInfo proc);
  const ProcInfo* find_proc(const std::string& name) const;
  std::vector<std::string> proc_names() const;

  // ---- Packages ----
  // `package provide` / `package ifneeded` registry.
  void package_provide(const std::string& name, const std::string& version);
  void package_ifneeded(const std::string& name, const std::string& version,
                        const std::string& script);
  // Returns the provided version, running the ifneeded script or the
  // package-unknown handler if necessary. Throws TclError if unavailable.
  std::string package_require(const std::string& name);
  std::optional<std::string> package_provided(const std::string& name) const;
  std::vector<std::string> package_names() const;
  // Called when a required package has no ifneeded script. The handler
  // should locate and evaluate the package's index/load scripts (the pkg
  // module installs one that searches an ILPS_TCLLIBPATH-style path).
  using PackageUnknownFn = std::function<bool(Interp&, const std::string& name)>;
  void set_package_unknown(PackageUnknownFn fn);

  // ---- source ----
  // Resolver mapping a path to script text. The default reads the real
  // filesystem; the pkg module installs resolvers backed by the PFS model
  // or a static package image.
  using SourceResolver = std::function<std::optional<std::string>(const std::string& path)>;
  void set_source_resolver(SourceResolver fn);
  const SourceResolver& source_resolver() const { return source_resolver_; }

  // ---- Output ----
  // `puts` sink; defaults to stdout. Tests capture output here.
  using PutsFn = std::function<void(std::string_view text, bool newline)>;
  void set_puts_handler(PutsFn fn);
  void do_puts(std::string_view text, bool newline);

  // ---- Introspection / instrumentation ----
  uint64_t commands_evaluated() const { return commands_evaluated_; }
  Rng& rng() { return rng_; }

  // Host hook: arbitrary context a host embeds for its commands (the
  // Turbine worker stores its task context here).
  void set_host_data(void* p) { host_data_ = p; }
  void* host_data() const { return host_data_; }

 private:
  friend class ExprParser;
  struct Frame;
  struct Var;

  // Core script evaluator: parses and runs commands in s starting at i;
  // stops at end of input or at an unescaped `terminator` (']' for command
  // substitution), consuming it.
  std::string eval_until(std::string_view s, size_t& i, char terminator);

  // Word parsing helpers (see interp.cc).
  std::string parse_dollar(std::string_view s, size_t& i);
  std::string parse_bracket(std::string_view s, size_t& i);

  // Variable plumbing.
  Var* lookup(const std::string& base, bool create);
  static std::pair<std::string, std::optional<std::string>> split_name(const std::string& name);
  size_t frame_up(int levels_up) const;

  void push_frame();
  void pop_frame();
  std::string call_proc(const std::string& name, const ProcInfo& proc,
                        std::vector<std::string>& words);

  std::vector<std::unique_ptr<Frame>> frames_;
  size_t active_ = 0;
  std::map<std::string, CommandFn> commands_;
  std::map<std::string, ProcInfo> procs_;
  std::map<std::string, std::string> provided_;
  std::map<std::string, std::pair<std::string, std::string>> ifneeded_;  // name -> (version, script)
  PackageUnknownFn package_unknown_;
  SourceResolver source_resolver_;
  PutsFn puts_;
  uint64_t commands_evaluated_ = 0;
  int depth_ = 0;
  Rng rng_{0x1234567};
  void* host_data_ = nullptr;
};

// Registers the built-in command set into an interp; called by the
// constructor. Split across builtins_*.cc by topic.
void register_core_builtins(Interp& interp);
void register_list_builtins(Interp& interp);
void register_string_builtins(Interp& interp);
void register_misc_builtins(Interp& interp);

// Argument-count helper for command implementations: throws the standard
// Tcl usage error unless min <= args.size()-1 <= max (max < 0 = unbounded).
void check_arity(const std::vector<std::string>& args, int min, int max, const char* usage);

}  // namespace ilps::tcl
