// MiniTcl — an embeddable Tcl-subset interpreter.
//
// MiniTcl plays the role CPython's Tcl plays in Swift/T: it is the target
// representation of the Swift compiler (STC emits MiniTcl "Turbine code"),
// the glue through which native code is reached (BindGen registers C++
// commands), and a leaf-task language in its own right. The properties the
// paper needs from Tcl hold here too: programs are plain text that can be
// shipped through ADLB and evaluated on any rank, and C/C++ functions are
// registered as commands with a small API (mirroring Tcl_CreateObjCommand).
//
// Supported language: command/word parsing with {braces}, "quotes",
// [command substitution], $var and ${var} and $arr(elem) substitution,
// backslash escapes, {*} expansion, comments; procs with defaults and
// `args`; upvar/uplevel/global; arrays; dicts (list representation); the
// expr sublanguage; ~70 built-in commands (see builtins_*.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "tcl/value.h"

namespace ilps::tcl {

class Interp;
struct CompiledUnit;
struct CompiledCommand;
struct CompiledWord;
struct CompiledPart;
struct ExprIr;

// A command implementation. args[0] is the command name, as in Tcl.
using CommandFn = std::function<std::string(Interp&, std::vector<std::string>&)>;

// (TclError lives in tcl/value.h so the value layer can throw it too.)

// Non-error control flow, caught by loops / proc calls / catch.
struct BreakSignal {};
struct ContinueSignal {};
struct ReturnSignal {
  std::string value;
};

// Result codes reported by `catch`, matching Tcl's numbering.
enum : int { kTclOk = 0, kTclErrorCode = 1, kTclReturn = 2, kTclBreak = 3, kTclContinue = 4 };

class Interp {
 public:
  Interp();
  ~Interp();

  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  // Evaluates a script in the current frame and returns the result of the
  // last command. Throws TclError (and lets Break/Continue/Return signals
  // escape, as Tcl does for a top-level break).
  std::string eval(std::string_view script);

  // Performs $-, bracket- and backslash-substitution on `text` without
  // treating it as a command (Tcl's `subst`).
  std::string subst(std::string_view text);

  // Evaluates the expr sublanguage.
  std::string expr(std::string_view expression);
  bool expr_bool(std::string_view expression);

  // ---- Commands ----
  void register_command(const std::string& name, CommandFn fn);
  bool has_command(const std::string& name) const;
  void remove_command(const std::string& name);
  std::vector<std::string> command_names() const;
  // Invokes a command with already-substituted words.
  std::string invoke(std::vector<std::string>& words);

  // ---- Variables ----
  // Names may be plain ("x"), or array references ("a(elem)").
  void set_var(const std::string& name, std::string value);
  std::string get_var(const std::string& name);  // throws TclError if unset
  std::optional<std::string> get_var_opt(const std::string& name);
  bool var_exists(const std::string& name);
  bool unset_var(const std::string& name);  // true if it existed
  // Links `local_name` in the current frame to `other_name` in the frame
  // `levels_up` frames up the call chain (upvar). levels_up == -1 means the
  // global frame.
  void link_var(int levels_up, const std::string& other_name, const std::string& local_name);

  // ---- Arrays (for the `array` command) ----
  bool array_exists(const std::string& name);
  std::vector<std::pair<std::string, std::string>> array_entries(const std::string& name);
  void array_set_entries(const std::string& name,
                         const std::vector<std::pair<std::string, std::string>>& entries);

  // ---- Frames ----
  // Current logical call depth (0 at global scope).
  int frame_level() const;
  // Names of scalar/array variables visible in the current frame.
  std::vector<std::string> var_names() const;
  // Evaluates `script` with the frame `levels_up` up the chain active
  // (uplevel). levels_up == -1 means global.
  std::string eval_up(int levels_up, std::string_view script);

  // ---- Procs ----
  struct ProcInfo {
    std::vector<std::pair<std::string, std::optional<std::string>>> params;
    std::string body;
  };
  void define_proc(const std::string& name, ProcInfo proc);
  const ProcInfo* find_proc(const std::string& name) const;
  std::vector<std::string> proc_names() const;

  // ---- Packages ----
  // `package provide` / `package ifneeded` registry.
  void package_provide(const std::string& name, const std::string& version);
  void package_ifneeded(const std::string& name, const std::string& version,
                        const std::string& script);
  // Returns the provided version, running the ifneeded script or the
  // package-unknown handler if necessary. Throws TclError if unavailable.
  std::string package_require(const std::string& name);
  std::optional<std::string> package_provided(const std::string& name) const;
  std::vector<std::string> package_names() const;
  // Called when a required package has no ifneeded script. The handler
  // should locate and evaluate the package's index/load scripts (the pkg
  // module installs one that searches an ILPS_TCLLIBPATH-style path).
  using PackageUnknownFn = std::function<bool(Interp&, const std::string& name)>;
  void set_package_unknown(PackageUnknownFn fn);

  // ---- source ----
  // Resolver mapping a path to script text. The default reads the real
  // filesystem; the pkg module installs resolvers backed by the PFS model
  // or a static package image.
  using SourceResolver = std::function<std::optional<std::string>(const std::string& path)>;
  void set_source_resolver(SourceResolver fn);
  const SourceResolver& source_resolver() const { return source_resolver_; }

  // ---- Output ----
  // `puts` sink; defaults to stdout. Tests capture output here.
  using PutsFn = std::function<void(std::string_view text, bool newline)>;
  void set_puts_handler(PutsFn fn);
  void do_puts(std::string_view text, bool newline);

  // ---- Compiled execution (the bytecode layer; see docs/interp.md) ----
  // Compilation is a pure rank-local cache: only source text ever crosses
  // ranks. compile() builds a unit of pre-resolved command/argument thunks;
  // exec() runs one with observable behavior identical to eval() of the
  // unit's source (results, errors, commands_evaluated deltas). Constructs
  // the compiler cannot prove equivalent become the unit's raw-source
  // `tail`, which exec hands back to eval() — the general path stays
  // authoritative.
  struct CompileStats {
    uint64_t hits = 0;      // cached-unit reuses (proc bodies, action cache)
    uint64_t misses = 0;    // units compiled
    uint64_t bailouts = 0;  // raw-source tail evaluations at exec time
  };
  // Defaults to on; ILPS_TCL_COMPILE=0 in the environment restores the
  // pure-interpreter path bit-for-bit.
  bool compile_enabled() const { return compile_enabled_; }
  void set_compile_enabled(bool on) { compile_enabled_ = on; }
  CompileStats& compile_stats() { return compile_stats_; }
  const CompileStats& compile_stats() const { return compile_stats_; }
  // Never throws on malformed source (parse errors surface at exec time,
  // exactly where eval() would raise them). Counts one compile miss.
  std::shared_ptr<const CompiledUnit> compile(std::string_view source);
  // Executes a unit in the current frame. Throws like eval().
  std::string exec(const CompiledUnit& unit);

  // ---- Introspection / instrumentation ----
  uint64_t commands_evaluated() const { return commands_evaluated_; }
  Rng& rng() { return rng_; }

  // Host hook: arbitrary context a host embeds for its commands (the
  // Turbine worker stores its task context here).
  void set_host_data(void* p) { host_data_ = p; }
  void* host_data() const { return host_data_; }

 private:
  friend class ExprParser;
  friend class ExprIrEval;  // compiled-expression evaluator (expr.cc)
  struct Frame;
  struct Var;
  class VarStore;

  // A proc's definition, shared so an in-flight body survives
  // redefinition/removal of the proc and so the lazily compiled body is
  // dropped naturally when the proc is redefined.
  struct ProcData {
    ProcInfo info;
    std::shared_ptr<const CompiledUnit> compiled;  // built on first call
  };

  // Cached resolution of an interned command name, valid while the epoch
  // matches (register_command / remove_command / define_proc bump it).
  struct ResolveEntry {
    uint64_t epoch = 0;  // 0 = never resolved; live epochs start at 1
    enum class Kind : uint8_t { kBuiltin, kProc, kMissing } kind = Kind::kMissing;
    const CommandFn* fn = nullptr;
    const std::shared_ptr<ProcData>* proc = nullptr;
  };

  // Core script evaluator: parses and runs commands in s starting at i;
  // stops at end of input or at an unescaped `terminator` (']' for command
  // substitution), consuming it.
  std::string eval_until(std::string_view s, size_t& i, char terminator);

  // Word parsing helpers (see interp.cc).
  std::string parse_dollar(std::string_view s, size_t& i);
  std::string parse_bracket(std::string_view s, size_t& i);

  // Variable plumbing.
  // Reads a variable straight into a classified Value without the
  // intermediate string copy (the compiled-expression $var fast path).
  Value read_var_value(const std::string& name);
  Var* lookup(const std::string& base, bool create);
  static std::pair<std::string, std::optional<std::string>> split_name(const std::string& name);
  size_t frame_up(int levels_up) const;

  void push_frame();
  void pop_frame();
  std::string call_proc(const std::string& name, ProcData& proc, std::vector<std::string>& words);

  // Compiled-unit executor (compile.cc).
  std::string exec_body(const CompiledUnit& unit);
  std::string exec_command(const CompiledCommand& cmd, bool* invoked);
  std::string exec_generic(const CompiledCommand& cmd, bool* invoked);
  std::string exec_expr_template(const CompiledCommand& cmd);
  bool exec_cond(const ExprIr& ir);
  std::string exec_part(const CompiledPart& part);
  std::string word_value(const CompiledWord& word);
  void append_word(const CompiledWord& word, std::vector<std::string>& out);
  const ResolveEntry& resolve_symbol(uint32_t sym);
  void note_mutation(const std::string& name);

  std::vector<std::unique_ptr<Frame>> frames_;
  size_t active_ = 0;
  std::map<std::string, CommandFn> commands_;
  std::map<std::string, std::shared_ptr<ProcData>> procs_;
  std::map<std::string, std::string> provided_;
  std::map<std::string, std::pair<std::string, std::string>> ifneeded_;  // name -> (version, script)
  PackageUnknownFn package_unknown_;
  SourceResolver source_resolver_;
  PutsFn puts_;
  uint64_t commands_evaluated_ = 0;
  int depth_ = 0;
  Rng rng_{0x1234567};
  void* host_data_ = nullptr;

  // Bytecode-layer state.
  bool compile_enabled_ = true;
  bool specials_retouched_ = false;  // a specialized builtin was re-registered
  uint64_t mutation_epoch_ = 1;      // bumped on any command/proc mutation
  CompileStats compile_stats_;
  SymbolTable symbols_;
  std::vector<ResolveEntry> resolve_cache_;  // indexed by symbol id
};

// Registers the built-in command set into an interp; called by the
// constructor. Split across builtins_*.cc by topic.
void register_core_builtins(Interp& interp);
void register_list_builtins(Interp& interp);
void register_string_builtins(Interp& interp);
void register_misc_builtins(Interp& interp);

// Argument-count helper for command implementations: throws the standard
// Tcl usage error unless min <= args.size()-1 <= max (max < 0 = unbounded).
void check_arity(const std::vector<std::string>& args, int min, int max, const char* usage);

}  // namespace ilps::tcl
