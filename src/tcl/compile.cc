// The MiniTcl bytecode compiler and executor (see compile.h / docs/interp.md).
//
// The compiler mirrors Interp::eval_until's word grammar exactly (sharing
// its character classes and braced-word scanner via parse_internal.h) but
// builds thunks instead of evaluating. Anything it cannot compile — always
// a parse error in the remainder — becomes the unit's raw-source tail,
// which the executor hands back to Interp::eval so side-effect-before-
// syntax-error ordering is reproduced exactly.
//
// The executor is a set of Interp member functions so compiled code runs
// against the same frames, variables, and command tables as direct eval,
// and increments commands_evaluated_ with identical cadence (the
// differential fuzzer in tests/expr_fuzz_test.cc asserts this).
#include "tcl/compile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "tcl/interp.h"
#include "tcl/parse_internal.h"

namespace ilps::tcl {

using parse::is_cmd_end;
using parse::is_word_space;
using parse::is_name_char;
using parse::scan_braced;

namespace {

// Accumulates the parts of one word, merging adjacent literal runs.
struct WordBuilder {
  CompiledWord w;

  void lit(std::string_view text) {
    if (!w.parts.empty() && w.parts.back().kind == CompiledPart::Kind::kLiteral) {
      w.parts.back().text += text;
    } else {
      CompiledPart p;
      p.text = std::string(text);
      w.parts.push_back(std::move(p));
    }
  }
  void lit_char(char c) { lit(std::string_view(&c, 1)); }
  void part(CompiledPart p) {
    if (p.kind == CompiledPart::Kind::kLiteral) {
      lit(p.text);
    } else {
      w.parts.push_back(std::move(p));
    }
  }
};

class Compiler {
 public:
  explicit Compiler(SymbolTable& syms) : syms_(syms) {}

  std::shared_ptr<const CompiledUnit> compile_top(std::string_view src) {
    size_t i = 0;
    std::shared_ptr<CompiledUnit> unit = compile_until(src, i, '\0', /*allow_tail=*/true);
    unit->source_bytes = src.size();
    return unit;
  }

 private:
  // Mirrors Interp::eval_until. With allow_tail (top level only), a parse
  // error turns the remainder — from the start of the offending command —
  // into the unit's tail; inside brackets errors propagate so the whole
  // enclosing command bails out.
  std::shared_ptr<CompiledUnit> compile_until(std::string_view s, size_t& i, char terminator,
                                              bool allow_tail) {
    if (++depth_ > parse::kMaxEvalDepth) {
      --depth_;
      throw TclError("too many nested evaluations (infinite recursion?)");
    }
    struct DepthGuard {
      int* d;
      ~DepthGuard() { --*d; }
    } dguard{&depth_};

    auto unit = std::make_shared<CompiledUnit>();
    const size_t n = s.size();
    while (i <= n) {
      while (i < n && (is_word_space(s[i]) || is_cmd_end(s[i]))) ++i;
      if (i < n && s[i] == '#') {
        // Comment to end of line; backslash-newline continues it.
        while (i < n && s[i] != '\n') {
          if (s[i] == '\\' && i + 1 < n) ++i;
          ++i;
        }
        continue;
      }
      if (i >= n) {
        if (terminator != '\0') throw TclError("missing close-bracket");
        break;
      }
      if (terminator != '\0' && s[i] == terminator) {
        ++i;
        return unit;
      }

      size_t cmd_start = i;
      try {
        CompiledCommand cmd = compile_command(s, i, terminator);
        if (!cmd.words.empty()) unit->cmds.push_back(std::move(cmd));
      } catch (const ScriptError&) {
        if (!allow_tail) throw;
        unit->has_tail = true;
        unit->tail = std::string(s.substr(cmd_start));
        i = n;
        return unit;
      }

      if (i < n && is_cmd_end(s[i])) {
        ++i;
        continue;
      }
      if (i < n && terminator != '\0' && s[i] == terminator) {
        ++i;
        return unit;
      }
      if (i >= n) {
        if (terminator != '\0') throw TclError("missing close-bracket");
        break;
      }
    }
    return unit;
  }

  // Mirrors the words loop of eval_until.
  CompiledCommand compile_command(std::string_view s, size_t& i, char terminator) {
    CompiledCommand cmd;
    const size_t n = s.size();
    while (true) {
      while (i < n && is_word_space(s[i])) ++i;
      if (i >= n || is_cmd_end(s[i]) || (terminator != '\0' && s[i] == terminator)) break;

      bool expand = false;
      if (s.substr(i).starts_with("{*}") && i + 3 < n && !is_word_space(s[i + 3]) &&
          !is_cmd_end(s[i + 3])) {
        expand = true;
        i += 3;
      }

      WordBuilder b;
      b.w.expand = expand;
      char c = s[i];
      if (c == '{') {
        b.lit(scan_braced(s, i));
        if (i < n && !is_word_space(s[i]) && !is_cmd_end(s[i]) &&
            !(terminator != '\0' && s[i] == terminator)) {
          throw TclError("extra characters after close-brace");
        }
      } else if (c == '"') {
        ++i;
        while (i < n && s[i] != '"') {
          char q = s[i];
          if (q == '$') {
            ++i;
            b.part(compile_dollar(s, i));
          } else if (q == '[') {
            b.part(compile_bracket(s, i));
          } else if (q == '\\') {
            b.lit(backslash_escape(s, i));
          } else {
            b.lit_char(q);
            ++i;
          }
        }
        if (i >= n) throw TclError("missing \"");
        ++i;  // closing quote
        if (i < n && !is_word_space(s[i]) && !is_cmd_end(s[i]) &&
            !(terminator != '\0' && s[i] == terminator)) {
          throw TclError("extra characters after close-quote");
        }
      } else {
        // Bare word with substitutions.
        while (i < n && !is_word_space(s[i]) && !is_cmd_end(s[i]) &&
               !(terminator != '\0' && s[i] == terminator)) {
          char q = s[i];
          if (q == '$') {
            ++i;
            b.part(compile_dollar(s, i));
          } else if (q == '[') {
            b.part(compile_bracket(s, i));
          } else if (q == '\\') {
            if (i + 1 < n && s[i + 1] == '\n') break;  // line continuation ends word
            b.lit(backslash_escape(s, i));
          } else {
            b.lit_char(q);
            ++i;
          }
        }
        // Swallow a line continuation between words.
        if (i + 1 < n && s[i] == '\\' && s[i + 1] == '\n') {
          size_t j = i;
          backslash_escape(s, j);
          i = j;
        }
      }

      finalize_word(b.w);
      cmd.words.push_back(std::move(b.w));
    }

    if (!cmd.words.empty() && cmd.words[0].pure_literal && !cmd.words[0].expand) {
      const std::string& name = cmd.words[0].parts[0].text;
      cmd.name_sym = syms_.intern(name);
      cmd.words[0].lit = Value::symbol(cmd.name_sym, name);
      specialize(cmd);
    }
    return cmd;
  }

  void finalize_word(CompiledWord& w) {
    if (w.parts.empty()) w.parts.emplace_back();  // empty literal word
    w.pure_literal = w.parts.size() == 1 && w.parts[0].kind == CompiledPart::Kind::kLiteral;
    if (!w.pure_literal) return;
    const std::string& t = w.parts[0].text;
    // Tag canonical integers (exact round-trip only — "007" stays text).
    if (auto v = str::parse_int(t); v && std::to_string(*v) == t) w.lit = Value::from_int(*v);
    if (w.expand) {
      // May throw (unbalanced braces): that bails the whole command out,
      // and the tail reproduces the error at run time.
      w.pre_split = list_split(t);
      w.pre_split_valid = true;
    }
  }

  // Mirrors Interp::parse_dollar (i just past the '$').
  CompiledPart compile_dollar(std::string_view s, size_t& i) {
    CompiledPart p;
    if (i < s.size() && s[i] == '{') {
      size_t end = s.find('}', i + 1);
      if (end == std::string_view::npos) throw TclError("missing close-brace for variable name");
      p.kind = CompiledPart::Kind::kVar;
      p.text = std::string(s.substr(i + 1, end - i - 1));
      i = end + 1;
      return p;
    }
    size_t start = i;
    while (i < s.size() && (is_name_char(s[i]) || s[i] == ':')) ++i;
    if (i == start) {
      p.text = "$";  // lone dollar is literal
      return p;
    }
    p.text = std::string(s.substr(start, i - start));
    if (i < s.size() && s[i] == '(') {
      // Array element: the index undergoes substitution.
      ++i;
      WordBuilder idx;
      while (i < s.size() && s[i] != ')') {
        char c = s[i];
        if (c == '$') {
          ++i;
          idx.part(compile_dollar(s, i));
        } else if (c == '[') {
          idx.part(compile_bracket(s, i));
        } else if (c == '\\') {
          idx.lit(backslash_escape(s, i));
        } else {
          idx.lit_char(c);
          ++i;
        }
      }
      if (i >= s.size()) throw TclError("missing ) for array index");
      ++i;  // consume ')'
      p.kind = CompiledPart::Kind::kVarIndexed;
      p.index = std::move(idx.w.parts);
      return p;
    }
    p.kind = CompiledPart::Kind::kVar;
    return p;
  }

  // i at '['. Compiles the embedded script up to the matching ']'.
  CompiledPart compile_bracket(std::string_view s, size_t& i) {
    ++i;  // past '['
    CompiledPart p;
    p.kind = CompiledPart::Kind::kScript;
    p.script = compile_until(s, i, ']', /*allow_tail=*/false);
    return p;
  }

  // ---- Specialized forms ----

  std::shared_ptr<const CompiledUnit> try_sub(const std::string& text) {
    try {
      size_t i = 0;
      return compile_until(text, i, '\0', /*allow_tail=*/true);
    } catch (const ScriptError&) {
      return nullptr;  // compiler depth guard; fall back to generic
    }
  }

  // Installs a specialized opcode when the command's literal structure
  // provably matches the builtin's happy path. Anything else stays
  // kGeneric, whose dispatch reaches the real builtin — so argument-count
  // errors, lazy `if` structure checks, and {*} surprises keep their exact
  // runtime behavior.
  void specialize(CompiledCommand& cmd) {
    for (const CompiledWord& w : cmd.words) {
      if (w.expand) return;
    }
    const std::string& name = cmd.words[0].parts[0].text;
    const size_t n = cmd.words.size();
    auto lit = [&](size_t k) { return cmd.words[k].pure_literal; };
    auto text = [&](size_t k) -> const std::string& { return cmd.words[k].parts[0].text; };

    using Op = CompiledCommand::Op;
    if (name == "set" && (n == 2 || n == 3)) {
      cmd.op = Op::kSet;
    } else if (name == "incr" && (n == 2 || n == 3)) {
      cmd.op = Op::kIncr;
    } else if (name == "break" && n == 1) {
      cmd.op = Op::kBreak;
    } else if (name == "continue" && n == 1) {
      cmd.op = Op::kContinue;
    } else if (name == "return" && (n == 1 || n == 2)) {
      cmd.op = Op::kReturn;
    } else if (name == "expr" && n >= 2) {
      bool all_lit = true;
      for (size_t k = 1; k < n; ++k) {
        if (!lit(k)) {
          all_lit = false;
          break;
        }
      }
      if (!all_lit) {
        specialize_expr_template(cmd);
        return;
      }
      std::string joined;
      for (size_t k = 1; k < n; ++k) {
        if (k > 1) joined += ' ';
        joined += text(k);
      }
      cmd.op = Op::kExpr;
      cmd.expr_ir = expr_ir_compile(joined);
      cmd.expr_text = std::move(joined);
    } else if (name == "while" && n == 3 && lit(1) && lit(2)) {
      if (auto body = try_sub(text(2))) {
        cmd.op = Op::kWhile;
        cmd.expr_text = text(1);
        cmd.expr_ir = expr_ir_compile(cmd.expr_text);
        cmd.body = std::move(body);
      }
    } else if (name == "for" && n == 5 && lit(1) && lit(2) && lit(3) && lit(4)) {
      auto init = try_sub(text(1));
      auto next = try_sub(text(3));
      auto body = try_sub(text(4));
      if (init && next && body) {
        cmd.op = Op::kFor;
        cmd.init = std::move(init);
        cmd.expr_text = text(2);
        cmd.expr_ir = expr_ir_compile(cmd.expr_text);
        cmd.next = std::move(next);
        cmd.body = std::move(body);
      }
    } else if (name == "catch" && (n == 2 || n == 3) && lit(1)) {
      if (auto body = try_sub(text(1))) {
        cmd.op = Op::kCatch;
        cmd.body = std::move(body);
      }
    } else if (name == "foreach" && n >= 4 && (n - 2) % 2 == 0) {
      std::vector<std::vector<std::string>> groups;
      for (size_t k = 1; k + 1 < n; k += 2) {
        if (!lit(k)) return;
        std::vector<std::string> vars;
        try {
          vars = list_split(text(k));
        } catch (const ScriptError&) {
          return;  // runtime cmd_foreach raises the identical error
        }
        if (vars.empty()) return;
        groups.push_back(std::move(vars));
      }
      if (!lit(n - 1)) return;
      auto body = try_sub(text(n - 1));
      if (!body) return;
      cmd.op = Op::kForeach;
      cmd.loop_vars = std::move(groups);
      cmd.body = std::move(body);
    } else if (name == "if" && n >= 3) {
      specialize_if(cmd);
    }
  }

  // `expr` with substituted arguments: reassemble the expression text the
  // builtin would see, with each non-literal fragment replaced by an
  // eager-leaf marker, and compile that. At execution the leaves evaluate
  // once in substitution order; values that round-trip as canonical
  // numbers are provably splice-equivalent and feed the IR's eager slots,
  // anything else splices the raw strings back into text and evaluates it
  // (the uncompiled path, with the thunks' side effects already done).
  void specialize_expr_template(CompiledCommand& cmd) {
    std::vector<std::string> segs;
    std::vector<CompiledPart> leaves;
    std::string cur;
    for (size_t k = 1; k < cmd.words.size(); ++k) {
      if (k > 1) cur += ' ';
      for (const CompiledPart& p : cmd.words[k].parts) {
        if (p.kind == CompiledPart::Kind::kLiteral) {
          // A stray marker byte in user text would collide with our
          // leaf encoding; such programs stay on the generic path.
          if (p.text.find('\x01') != std::string::npos) return;
          cur += p.text;
        } else {
          segs.push_back(cur);
          cur.clear();
          leaves.push_back(p);
        }
      }
    }
    segs.push_back(std::move(cur));
    if (leaves.empty()) return;  // all-literal is handled by kExpr
    std::string text;
    for (size_t k = 0; k < leaves.size(); ++k) {
      text += segs[k];
      text += '\x01';
      text += std::to_string(k);
      text += '\x01';
    }
    text += segs.back();
    auto ir = expr_ir_compile(text, /*allow_markers=*/true);
    if (!ir) return;
    cmd.op = CompiledCommand::Op::kExprTemplate;
    cmd.expr_ir = std::move(ir);
    cmd.expr_segments = std::move(segs);
    cmd.expr_leaves = std::move(leaves);
  }

  // Statically walks cmd_if's cond/then/elseif/else structure. Bails to
  // generic on anything irregular — cmd_if checks its structure lazily
  // (a true condition hides malformed trailing clauses), and only the
  // interpreter reproduces that faithfully.
  void specialize_if(CompiledCommand& cmd) {
    const size_t n = cmd.words.size();
    auto lit = [&](size_t k) { return cmd.words[k].pure_literal; };
    auto text = [&](size_t k) -> const std::string& { return cmd.words[k].parts[0].text; };
    for (size_t k = 1; k < n; ++k) {
      if (!lit(k)) return;
    }

    std::vector<CompiledCommand::IfArm> arms;
    std::shared_ptr<const CompiledUnit> else_body;
    size_t i = 1;
    while (true) {
      if (i + 1 >= n) return;
      size_t body_index = i + 1;
      if (text(body_index) == "then") ++body_index;
      if (body_index >= n) return;
      auto body = try_sub(text(body_index));
      if (!body) return;
      CompiledCommand::IfArm arm;
      arm.cond = text(i);
      arm.cond_ir = expr_ir_compile(arm.cond);
      arm.body = std::move(body);
      arms.push_back(std::move(arm));
      i = body_index + 1;
      if (i >= n) break;  // chain ends with no else
      if (text(i) == "elseif") {
        ++i;
        continue;
      }
      if (text(i) == "else") {
        if (i + 1 >= n) return;
        else_body = try_sub(text(i + 1));
        if (!else_body) return;
        break;  // cmd_if ignores words past the else body
      }
      // Bare trailing body acts as else (Tcl allows this).
      else_body = try_sub(text(i));
      if (!else_body) return;
      break;
    }
    cmd.op = CompiledCommand::Op::kIf;
    cmd.arms = std::move(arms);
    cmd.else_body = std::move(else_body);
  }

  SymbolTable& syms_;
  int depth_ = 0;
};

}  // namespace

// ---- Interp: compile entry point ----

std::shared_ptr<const CompiledUnit> Interp::compile(std::string_view source) {
  ++compile_stats_.misses;
  Compiler compiler(symbols_);
  return compiler.compile_top(source);
}

// ---- Interp: executor ----

std::string Interp::exec(const CompiledUnit& unit) { return exec_body(unit); }

std::string Interp::exec_body(const CompiledUnit& unit) {
  if (++depth_ > parse::kMaxEvalDepth) {
    --depth_;
    throw TclError("too many nested evaluations (infinite recursion?)");
  }
  struct DepthGuard {
    int* d;
    ~DepthGuard() { --*d; }
  } dguard{&depth_};

  std::string result;
  for (const CompiledCommand& cmd : unit.cmds) {
    bool invoked = false;
    std::string r = exec_command(cmd, &invoked);
    if (invoked) result = std::move(r);
  }
  if (unit.has_tail) {
    ++compile_stats_.bailouts;
    // Run the tail in the unit's own depth slot, exactly where eval()
    // would be, so recursion-limit behavior is unchanged.
    --depth_;
    struct Restore {
      int* d;
      ~Restore() { ++*d; }
    } restore{&depth_};
    uint64_t before = commands_evaluated_;
    std::string r = eval(unit.tail);
    if (commands_evaluated_ != before) result = std::move(r);
  }
  return result;
}

std::string Interp::exec_part(const CompiledPart& part) {
  switch (part.kind) {
    case CompiledPart::Kind::kLiteral:
      return part.text;
    case CompiledPart::Kind::kVar:
      return get_var(part.text);
    case CompiledPart::Kind::kVarIndexed: {
      std::string index;
      for (const CompiledPart& ip : part.index) index += exec_part(ip);
      return get_var(part.text + "(" + index + ")");
    }
    case CompiledPart::Kind::kScript:
      return exec_body(*part.script);
  }
  return "";
}

std::string Interp::word_value(const CompiledWord& word) {
  if (word.pure_literal) return word.parts[0].text;
  if (word.parts.size() == 1) return exec_part(word.parts[0]);
  std::string out;
  for (const CompiledPart& p : word.parts) out += exec_part(p);
  return out;
}

void Interp::append_word(const CompiledWord& word, std::vector<std::string>& out) {
  if (!word.expand) {
    out.push_back(word_value(word));
    return;
  }
  if (word.pre_split_valid) {
    out.insert(out.end(), word.pre_split.begin(), word.pre_split.end());
    return;
  }
  std::string value = word_value(word);
  for (std::string& e : list_split(value)) out.push_back(std::move(e));
}

// A loop/if condition through the compiled expression: expr_bool minus the
// text re-parse. The int fast path mirrors expr_bool exactly — as_string
// of an int always re-parses as that number, so parse_bool reduces to a
// nonzero test.
bool Interp::exec_cond(const ExprIr& ir) {
  Value v = expr_ir_eval(*this, ir, nullptr);
  if (v.is_int()) return v.as_int() != 0;
  std::string s = v.as_string();
  auto b = parse_bool(s);
  if (!b) throw TclError("expected boolean value but got \"" + s + "\"");
  return *b;
}

// `expr` with substituted arguments. Every leaf evaluates exactly once, in
// the same order direct evaluation substitutes the command's words; the
// round-trip guard then decides whether the classified values are provably
// splice-equivalent to their raw texts. On any guard failure the raws are
// spliced back into the expression text and evaluated — bit-for-bit the
// uncompiled path, with no thunk re-run.
std::string Interp::exec_expr_template(const CompiledCommand& cmd) {
  const size_t nleaves = cmd.expr_leaves.size();
  std::vector<std::string> raws(nleaves);
  for (size_t k = 0; k < nleaves; ++k) raws[k] = exec_part(cmd.expr_leaves[k]);
  // Leaf thunks substituted; now the expr command itself counts, exactly
  // where direct evaluation would invoke it.
  ++commands_evaluated_;
  std::vector<Value> vals(nleaves);
  bool exact = true;
  for (size_t k = 0; k < nleaves; ++k) {
    vals[k] = Value::classify(raws[k]);
    bool ok = vals[k].is_numeric() && vals[k].as_string() == raws[k];
    // Two canonical numerics re-parse differently when spliced as text:
    // inf/nan classify as doubles but read back as boolean words, and
    // INT64_MIN reads back as unary minus on an overflowing literal
    // (which falls to double). Both take the text path.
    if (ok && vals[k].is_double() && !std::isfinite(vals[k].as_double())) ok = false;
    if (ok && vals[k].is_int() && vals[k].as_int() == std::numeric_limits<int64_t>::min()) {
      ok = false;
    }
    if (!ok) {
      exact = false;
      break;
    }
  }
  if (!exact) {
    std::string text = cmd.expr_segments[0];
    for (size_t k = 0; k < nleaves; ++k) {
      text += raws[k];
      text += cmd.expr_segments[k + 1];
    }
    return expr(text);
  }
  return expr_ir_eval(*this, *cmd.expr_ir, &vals).as_string();
}

const Interp::ResolveEntry& Interp::resolve_symbol(uint32_t sym) {
  if (sym >= resolve_cache_.size()) resolve_cache_.resize(symbols_.size());
  ResolveEntry& e = resolve_cache_[sym];
  if (e.epoch == mutation_epoch_) return e;
  const std::string& name = symbols_.name(sym);
  e.epoch = mutation_epoch_;
  e.fn = nullptr;
  e.proc = nullptr;
  if (auto it = commands_.find(name); it != commands_.end()) {
    e.kind = ResolveEntry::Kind::kBuiltin;
    e.fn = &it->second;
  } else if (auto it = procs_.find(name); it != procs_.end()) {
    e.kind = ResolveEntry::Kind::kProc;
    e.proc = &it->second;
  } else {
    e.kind = ResolveEntry::Kind::kMissing;
  }
  return e;
}

std::string Interp::exec_generic(const CompiledCommand& cmd, bool* invoked) {
  std::vector<std::string> words;
  words.reserve(cmd.words.size());
  for (const CompiledWord& w : cmd.words) append_word(w, words);
  if (words.empty()) {
    *invoked = false;
    return "";
  }
  *invoked = true;
  ++commands_evaluated_;
  if (cmd.name_sym != kNoSymbol) {
    const ResolveEntry& e = resolve_symbol(cmd.name_sym);
    if (e.kind == ResolveEntry::Kind::kBuiltin) return (*e.fn)(*this, words);
    if (e.kind == ResolveEntry::Kind::kProc) {
      // Keep the definition alive: the body may redefine or remove it.
      std::shared_ptr<ProcData> proc = *e.proc;
      return call_proc(words[0], *proc, words);
    }
    throw TclError("invalid command name \"" + words[0] + "\"");
  }
  const std::string& name = words[0];
  if (auto it = commands_.find(name); it != commands_.end()) {
    return it->second(*this, words);
  }
  if (auto it = procs_.find(name); it != procs_.end()) {
    std::shared_ptr<ProcData> proc = it->second;
    return call_proc(name, *proc, words);
  }
  throw TclError("invalid command name \"" + name + "\"");
}

std::string Interp::exec_command(const CompiledCommand& cmd, bool* invoked) {
  using Op = CompiledCommand::Op;
  // If any specialized builtin was re-registered, only generic dispatch
  // (which resolves through the live command tables) is trustworthy.
  if (cmd.op == Op::kGeneric || specials_retouched_) return exec_generic(cmd, invoked);
  *invoked = true;
  // Count cadence matches direct evaluation exactly: argument words
  // substitute first (running — and counting — any nested [scripts]),
  // and only then is the command itself counted. A throwing thunk must
  // leave this command uncounted, as it leaves it uninvoked in eval().
  switch (cmd.op) {
    case Op::kSet: {
      if (cmd.words.size() == 3) {
        std::string name = word_value(cmd.words[1]);
        std::string value = word_value(cmd.words[2]);
        ++commands_evaluated_;
        set_var(name, value);
        return value;
      }
      std::string name = word_value(cmd.words[1]);
      ++commands_evaluated_;
      return get_var(name);
    }
    case Op::kIncr: {
      std::string name = word_value(cmd.words[1]);
      bool thunked_delta = cmd.words.size() == 3 && !cmd.words[2].lit.is_int();
      std::string d;
      if (thunked_delta) d = word_value(cmd.words[2]);
      ++commands_evaluated_;
      int64_t delta = 1;
      if (cmd.words.size() == 3) {
        if (cmd.words[2].lit.is_int()) {
          delta = cmd.words[2].lit.as_int();
        } else {
          auto pd = str::parse_int(d);
          if (!pd) throw TclError("expected integer but got \"" + d + "\"");
          delta = *pd;
        }
      }
      int64_t value = 0;
      if (auto cur = get_var_opt(name)) {
        auto v = str::parse_int(*cur);
        if (!v) throw TclError("expected integer but got \"" + *cur + "\"");
        value = *v;
      }
      value += delta;
      std::string out = std::to_string(value);
      set_var(name, out);
      return out;
    }
    case Op::kExpr:
      ++commands_evaluated_;
      if (cmd.expr_ir) return expr_ir_eval(*this, *cmd.expr_ir, nullptr).as_string();
      return expr(cmd.expr_text);
    case Op::kExprTemplate:
      // Counts itself after its leaf thunks have evaluated.
      return exec_expr_template(cmd);
    case Op::kIf: {
      ++commands_evaluated_;
      for (const CompiledCommand::IfArm& arm : cmd.arms) {
        bool taken = arm.cond_ir ? exec_cond(*arm.cond_ir) : expr_bool(arm.cond);
        if (taken) return exec_body(*arm.body);
      }
      if (cmd.else_body) return exec_body(*cmd.else_body);
      return "";
    }
    case Op::kWhile: {
      ++commands_evaluated_;
      while (cmd.expr_ir ? exec_cond(*cmd.expr_ir) : expr_bool(cmd.expr_text)) {
        try {
          exec_body(*cmd.body);
        } catch (BreakSignal&) {
          break;
        } catch (ContinueSignal&) {
          continue;
        }
      }
      return "";
    }
    case Op::kFor: {
      ++commands_evaluated_;
      exec_body(*cmd.init);
      while (cmd.expr_ir ? exec_cond(*cmd.expr_ir) : expr_bool(cmd.expr_text)) {
        try {
          exec_body(*cmd.body);
        } catch (BreakSignal&) {
          break;
        } catch (ContinueSignal&) {
          // fall through to next
        }
        exec_body(*cmd.next);
      }
      return "";
    }
    case Op::kForeach: {
      // Mirror cmd_foreach: all value words substitute first (left to
      // right), then each group's values are split.
      const size_t ngroups = cmd.loop_vars.size();
      std::vector<std::string> raw(ngroups);
      for (size_t g = 0; g < ngroups; ++g) raw[g] = word_value(cmd.words[2 + 2 * g]);
      ++commands_evaluated_;
      std::vector<std::vector<std::string>> values(ngroups);
      size_t iterations = 0;
      for (size_t g = 0; g < ngroups; ++g) {
        values[g] = list_split(raw[g]);
        const size_t nvars = cmd.loop_vars[g].size();
        size_t iters = (values[g].size() + nvars - 1) / nvars;
        iterations = std::max(iterations, iters);
      }
      for (size_t iter = 0; iter < iterations; ++iter) {
        for (size_t g = 0; g < ngroups; ++g) {
          const auto& vars = cmd.loop_vars[g];
          for (size_t v = 0; v < vars.size(); ++v) {
            size_t idx = iter * vars.size() + v;
            set_var(vars[v], idx < values[g].size() ? values[g][idx] : "");
          }
        }
        try {
          exec_body(*cmd.body);
        } catch (BreakSignal&) {
          return "";
        } catch (ContinueSignal&) {
          continue;
        }
      }
      return "";
    }
    case Op::kCatch: {
      // The result-variable word substitutes before the script runs, as
      // in direct evaluation.
      std::string result_var;
      if (cmd.words.size() == 3) result_var = word_value(cmd.words[2]);
      ++commands_evaluated_;
      int code = kTclOk;
      std::string result;
      try {
        result = exec_body(*cmd.body);
      } catch (TclError& e) {
        code = kTclErrorCode;
        result = e.what();
      } catch (ReturnSignal& r) {
        code = kTclReturn;
        result = std::move(r.value);
      } catch (BreakSignal&) {
        code = kTclBreak;
      } catch (ContinueSignal&) {
        code = kTclContinue;
      }
      if (cmd.words.size() == 3) set_var(result_var, result);
      return std::to_string(code);
    }
    case Op::kBreak:
      ++commands_evaluated_;
      throw BreakSignal{};
    case Op::kContinue:
      ++commands_evaluated_;
      throw ContinueSignal{};
    case Op::kReturn: {
      std::string value = cmd.words.size() > 1 ? word_value(cmd.words[1]) : "";
      ++commands_evaluated_;
      throw ReturnSignal{std::move(value)};
    }
    case Op::kGeneric:
      break;  // unreachable
  }
  return exec_generic(cmd, invoked);
}

}  // namespace ilps::tcl
