// The MiniTcl bytecode layer: a compiled unit is the word structure of a
// script, parsed once — literal words, variable-reference thunks, nested
// [script] slots — plus specialized forms for the control-flow builtins so
// loop bodies and conditions are not re-tokenized per iteration.
//
// Units are a rank-local cache, never shipped: only source text crosses
// ranks (the paper's shippable-text property), and any construct the
// compiler cannot prove equivalent is kept as raw source in `tail`, which
// the executor hands back to Interp::eval. See docs/interp.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tcl/value.h"

namespace ilps::tcl {

class Interp;
struct CompiledUnit;
struct ExprIr;

inline constexpr uint32_t kNoSymbol = 0xffffffff;

// ---- Compiled expr sublanguage ----
// An ExprIr is the expr grammar parsed once into a small tree: constant
// operands are pre-classified Values, $var / [cmd] operands stay lazy
// thunks evaluated per execution (matching the parser's left-to-right,
// short-circuit-aware evaluation order exactly). The compiler is strictly
// conservative: any construct whose scanning could diverge from the live
// parser (braces or escapes inside bracket spans, substituted array
// indices, ...) fails compilation, and callers keep evaluating the source
// text — the general path stays authoritative.
//
// Returns nullptr when the expression cannot be compiled (including any
// syntax error, so error positions/messages stay with the live parser).
// `allow_markers` admits \x01<k>\x01 eager-leaf markers, used only by the
// kExprTemplate specialization below.
std::shared_ptr<const ExprIr> expr_ir_compile(std::string_view text, bool allow_markers = false);

// Evaluates a compiled expression against the interp. `eager` supplies the
// pre-evaluated leaf values for a template expression (null otherwise).
Value expr_ir_eval(Interp& interp, const ExprIr& ir, const std::vector<Value>* eager);

// One fragment of a word: a literal run, a scalar variable reference, an
// array-element reference (whose index is itself a fragment sequence), or
// a nested [script] whose result is spliced in.
struct CompiledPart {
  enum class Kind : uint8_t { kLiteral, kVar, kVarIndexed, kScript };
  Kind kind = Kind::kLiteral;
  std::string text;                     // kLiteral: text; kVar*: variable base name
  std::vector<CompiledPart> index;      // kVarIndexed: array index fragments
  std::shared_ptr<const CompiledUnit> script;  // kScript
};

// One word of a command. Backslash escapes are already resolved into the
// literal fragments (they are pure text transforms).
struct CompiledWord {
  bool expand = false;        // {*}-prefixed
  bool pure_literal = false;  // exactly one kLiteral part
  std::vector<CompiledPart> parts;
  // Tagged view of a pure literal: kInt when the text is a canonical
  // integer (round-trips exactly), kSymbol for interned command names.
  // parts[0].text remains the authoritative exact text.
  Value lit;
  // {*} on a pure literal: elements pre-split at compile time.
  bool pre_split_valid = false;
  std::vector<std::string> pre_split;
};

// One command: its words, plus (when the command name is a literal and the
// shape matches) a specialized opcode with pre-compiled sub-parts. The
// generic word list is always retained — specialized execution degrades to
// generic dispatch if a specialized builtin is ever re-registered.
struct CompiledCommand {
  enum class Op : uint8_t {
    kGeneric,
    kSet,       // set name ?value?
    kIncr,      // incr name ?delta?
    kExpr,      // expr with all-literal args (pre-joined)
    kExprTemplate,  // expr with substituted args (eager leaves + ExprIr)
    kIf,        // literal cond/body chain
    kWhile,     // literal cond + body
    kFor,       // literal init/cond/next/body
    kForeach,   // literal varlists + body (value lists stay thunks)
    kCatch,     // literal script
    kBreak,
    kContinue,
    kReturn,    // return ?value? (not the -code forms)
  };
  Op op = Op::kGeneric;
  std::vector<CompiledWord> words;
  // Interned command name when words[0] is a non-expand pure literal.
  uint32_t name_sym = kNoSymbol;

  // Specialized payloads (set only for the matching op).
  struct IfArm {
    std::string cond;  // literal expr text, fed to expr_bool like cmd_if
    std::shared_ptr<const ExprIr> cond_ir;  // compiled cond (null = eval text)
    std::shared_ptr<const CompiledUnit> body;
  };
  std::vector<IfArm> arms;                         // kIf
  std::shared_ptr<const CompiledUnit> else_body;   // kIf; may be null
  std::string expr_text;                           // kExpr / kWhile / kFor cond
  std::shared_ptr<const ExprIr> expr_ir;           // compiled expr_text / template
  std::shared_ptr<const CompiledUnit> body;        // kWhile/kFor/kForeach/kCatch
  std::shared_ptr<const CompiledUnit> init;        // kFor
  std::shared_ptr<const CompiledUnit> next;        // kFor
  std::vector<std::vector<std::string>> loop_vars;  // kForeach var groups

  // kExprTemplate: the expr text reassembled around its substituted
  // fragments. segments[k] is the literal text before leaf k (one extra
  // trailing segment); leaves[k] is the fragment's thunk. At execution the
  // leaves evaluate once, in substitution order; values that round-trip as
  // canonical numbers feed the ExprIr's eager slots, and anything else
  // falls back to splicing the raw strings into text and evaluating it —
  // bit-for-bit the uncompiled path, with no re-run of the thunks.
  std::vector<std::string> expr_segments;          // kExprTemplate
  std::vector<CompiledPart> expr_leaves;           // kExprTemplate
};

struct CompiledUnit {
  std::vector<CompiledCommand> cmds;
  // Raw source from the first construct the compiler could not compile
  // (always a parse error in the remainder). The executor evaluates it
  // with Interp::eval after `cmds`, which reproduces the interpreter's
  // interleaved parse/execute semantics — side effects before the error,
  // then the identical error — exactly.
  bool has_tail = false;
  std::string tail;
  size_t source_bytes = 0;  // compile-input size (cache budgeting/metrics)
};

}  // namespace ilps::tcl
