// Miscellaneous built-ins: puts, clock, time, package, info, array, apply.
#include <chrono>

#include "common/strings.h"
#include "common/timer.h"
#include "tcl/interp.h"

namespace ilps::tcl {

namespace {

std::string cmd_puts(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, 3, "?-nonewline? ?channelId? string");
  bool newline = true;
  size_t a = 1;
  if (args[a] == "-nonewline") {
    newline = false;
    ++a;
  }
  if (a >= args.size()) throw TclError("wrong # args: puts needs a string");
  // A channel argument (stdout/stderr) may precede the string; both go to
  // the interp's puts handler.
  if (a + 1 < args.size()) {
    if (args[a] != "stdout" && args[a] != "stderr") {
      throw TclError("can not find channel named \"" + args[a] + "\"");
    }
    ++a;
  }
  in.do_puts(args[a], newline);
  return "";
}

std::string cmd_clock(Interp&, std::vector<std::string>& args) {
  check_arity(args, 1, 1, "subcommand");
  using namespace std::chrono;
  auto now = system_clock::now().time_since_epoch();
  const std::string& sub = args[1];
  if (sub == "seconds") return std::to_string(duration_cast<seconds>(now).count());
  if (sub == "milliseconds") return std::to_string(duration_cast<milliseconds>(now).count());
  if (sub == "microseconds") return std::to_string(duration_cast<microseconds>(now).count());
  throw TclError("unsupported clock subcommand \"" + sub + "\"");
}

std::string cmd_time(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, 2, "script ?count?");
  int64_t count = 1;
  if (args.size() == 3) {
    auto n = str::parse_int(args[2]);
    if (!n || *n <= 0) throw TclError("time count must be a positive integer");
    count = *n;
  }
  Timer t;
  for (int64_t i = 0; i < count; ++i) in.eval(args[1]);
  double per_iter_us = t.elapsed() * 1e6 / static_cast<double>(count);
  return str::format_double(per_iter_us) + " microseconds per iteration";
}

std::string cmd_package(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "subcommand ?arg ...?");
  const std::string& sub = args[1];
  if (sub == "provide") {
    check_arity(args, 2, 3, "provide package ?version?");
    if (args.size() == 4) {
      in.package_provide(args[2], args[3]);
      return "";
    }
    if (auto v = in.package_provided(args[2])) return *v;
    return "";
  }
  if (sub == "require") {
    check_arity(args, 2, 3, "require package ?version?");
    // The requested version, if present, is accepted as long as the
    // package loads; MiniTcl does not enforce version constraints.
    return in.package_require(args[2]);
  }
  if (sub == "ifneeded") {
    check_arity(args, 4, 4, "ifneeded package version script");
    in.package_ifneeded(args[2], args[3], args[4]);
    return "";
  }
  if (sub == "names") {
    return list_join(in.package_names());
  }
  if (sub == "present") {
    check_arity(args, 2, 3, "present package ?version?");
    if (auto v = in.package_provided(args[2])) return *v;
    throw TclError("package " + args[2] + " is not present");
  }
  throw TclError("unsupported package subcommand \"" + sub + "\"");
}

std::string cmd_info(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "subcommand ?arg ...?");
  const std::string& sub = args[1];
  if (sub == "exists") {
    check_arity(args, 2, 2, "exists varName");
    return in.var_exists(args[2]) ? "1" : "0";
  }
  if (sub == "commands") {
    auto names = in.command_names();
    if (args.size() > 2) {
      std::vector<std::string> filtered;
      for (const auto& n : names) {
        std::vector<std::string> match_args = {"string", "match", args[2], n};
        if (in.invoke(match_args) == "1") filtered.push_back(n);
      }
      return list_join(filtered);
    }
    return list_join(names);
  }
  if (sub == "procs") {
    return list_join(in.proc_names());
  }
  if (sub == "level") {
    check_arity(args, 1, 2, "level ?number?");
    return std::to_string(in.frame_level());
  }
  if (sub == "args") {
    check_arity(args, 2, 2, "args procName");
    const Interp::ProcInfo* p = in.find_proc(args[2]);
    if (p == nullptr) throw TclError("\"" + args[2] + "\" isn't a procedure");
    std::vector<std::string> names;
    for (const auto& [name, def] : p->params) {
      (void)def;
      names.push_back(name);
    }
    return list_join(names);
  }
  if (sub == "body") {
    check_arity(args, 2, 2, "body procName");
    const Interp::ProcInfo* p = in.find_proc(args[2]);
    if (p == nullptr) throw TclError("\"" + args[2] + "\" isn't a procedure");
    return p->body;
  }
  if (sub == "vars" || sub == "locals") {
    return list_join(in.var_names());
  }
  throw TclError("unsupported info subcommand \"" + sub + "\"");
}

std::string cmd_array(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 2, -1, "subcommand arrayName ?arg ...?");
  const std::string& sub = args[1];
  const std::string& name = args[2];
  if (sub == "exists") {
    return in.array_exists(name) ? "1" : "0";
  }
  if (sub == "size") {
    return std::to_string(in.array_entries(name).size());
  }
  if (sub == "names") {
    std::vector<std::string> keys;
    for (const auto& [k, v] : in.array_entries(name)) {
      (void)v;
      if (args.size() > 3) {
        std::vector<std::string> match_args = {"string", "match", args[3], k};
        if (in.invoke(match_args) != "1") continue;
      }
      keys.push_back(k);
    }
    return list_join(keys);
  }
  if (sub == "get") {
    std::vector<std::string> flat;
    for (const auto& [k, v] : in.array_entries(name)) {
      flat.push_back(k);
      flat.push_back(v);
    }
    return list_join(flat);
  }
  if (sub == "set") {
    check_arity(args, 3, 3, "set arrayName list");
    auto elems = list_split(args[3]);
    if (elems.size() % 2 != 0) throw TclError("list must have an even number of elements");
    std::vector<std::pair<std::string, std::string>> entries;
    for (size_t i = 0; i + 1 < elems.size(); i += 2) entries.emplace_back(elems[i], elems[i + 1]);
    in.array_set_entries(name, entries);
    return "";
  }
  if (sub == "unset") {
    in.unset_var(name);
    return "";
  }
  throw TclError("unsupported array subcommand \"" + sub + "\"");
}

std::string cmd_apply(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "lambdaExpr ?arg ...?");
  auto lambda = list_split(args[1]);
  if (lambda.size() < 2) throw TclError("bad lambda expression");
  Interp::ProcInfo proc;
  for (const auto& p : list_split(lambda[0])) {
    auto parts = list_split(p);
    if (parts.size() == 1) {
      proc.params.emplace_back(parts[0], std::nullopt);
    } else {
      proc.params.emplace_back(parts[0], parts[1]);
    }
  }
  proc.body = lambda[1];
  // Reuse the proc machinery through a uniquely named temporary.
  std::string temp = "::ilps_apply_lambda";
  in.define_proc(temp, proc);
  std::vector<std::string> call;
  call.push_back(temp);
  call.insert(call.end(), args.begin() + 2, args.end());
  try {
    std::string out = in.invoke(call);
    in.remove_command(temp);
    return out;
  } catch (...) {
    in.remove_command(temp);
    throw;
  }
}

}  // namespace

void register_misc_builtins(Interp& in) {
  in.register_command("puts", cmd_puts);
  in.register_command("clock", cmd_clock);
  in.register_command("time", cmd_time);
  in.register_command("package", cmd_package);
  in.register_command("info", cmd_info);
  in.register_command("array", cmd_array);
  in.register_command("apply", cmd_apply);
}

}  // namespace ilps::tcl
