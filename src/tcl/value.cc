#include "tcl/value.h"

#include <cctype>
#include <cstdio>

#include "common/error.h"
#include "common/strings.h"

namespace ilps::tcl {

namespace {

bool is_list_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string backslash_escape(std::string_view s, size_t& i) {
  // i is at the backslash.
  ++i;
  if (i >= s.size()) return "\\";
  char c = s[i++];
  switch (c) {
    case 'n': return "\n";
    case 't': return "\t";
    case 'r': return "\r";
    case 'a': return "\a";
    case 'b': return "\b";
    case 'f': return "\f";
    case 'v': return "\v";
    case 'x': {
      int value = 0;
      int digits = 0;
      while (i < s.size() && digits < 2) {
        int d = hex_digit(s[i]);
        if (d < 0) break;
        value = value * 16 + d;
        ++i;
        ++digits;
      }
      if (digits == 0) return "x";
      return std::string(1, static_cast<char>(value));
    }
    case 'u': {
      int value = 0;
      int digits = 0;
      while (i < s.size() && digits < 4) {
        int d = hex_digit(s[i]);
        if (d < 0) break;
        value = value * 16 + d;
        ++i;
        ++digits;
      }
      if (digits == 0) return "u";
      // Encode as UTF-8.
      std::string out;
      if (value < 0x80) {
        out += static_cast<char>(value);
      } else if (value < 0x800) {
        out += static_cast<char>(0xC0 | (value >> 6));
        out += static_cast<char>(0x80 | (value & 0x3F));
      } else {
        out += static_cast<char>(0xE0 | (value >> 12));
        out += static_cast<char>(0x80 | ((value >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (value & 0x3F));
      }
      return out;
    }
    case '\n': {
      // Backslash-newline plus following whitespace collapses to a space.
      while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
      return " ";
    }
    default:
      return std::string(1, c);
  }
}

std::vector<std::string> list_split(std::string_view list) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = list.size();
  while (true) {
    while (i < n && is_list_space(list[i])) ++i;
    if (i >= n) break;
    std::string elem;
    if (list[i] == '{') {
      // Braced element: literal content, balanced braces, backslash guards.
      int depth = 1;
      size_t start = ++i;
      while (i < n && depth > 0) {
        char c = list[i];
        if (c == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (c == '{') ++depth;
        if (c == '}') --depth;
        ++i;
      }
      if (depth != 0) throw ScriptError("unmatched open brace in list");
      elem = std::string(list.substr(start, i - start - 1));
      if (i < n && !is_list_space(list[i])) {
        throw ScriptError("list element in braces followed by \"" +
                          std::string(list.substr(i, 8)) + "\" instead of space");
      }
    } else if (list[i] == '"') {
      size_t j = ++i;
      while (j < n && list[j] != '"') {
        if (list[j] == '\\') {
          size_t k = j;
          elem += list.substr(i, j - i);
          elem += backslash_escape(list, k);
          j = k;
          i = j;
          continue;
        }
        ++j;
      }
      if (j >= n) throw ScriptError("unmatched quote in list");
      elem += list.substr(i, j - i);
      i = j + 1;
      if (i < n && !is_list_space(list[i])) {
        throw ScriptError("list element in quotes followed by non-space");
      }
    } else {
      while (i < n && !is_list_space(list[i])) {
        if (list[i] == '\\') {
          elem += backslash_escape(list, i);
        } else {
          elem += list[i++];
        }
      }
    }
    out.push_back(std::move(elem));
  }
  return out;
}

namespace {

// True if `s` can appear in a list without any quoting.
bool needs_no_quoting(std::string_view s) {
  if (s.empty()) return false;
  if (s[0] == '"' || s[0] == '{' || s[0] == '#') return false;
  for (char c : s) {
    if (is_list_space(c)) return false;
    switch (c) {
      case '\\': case '"': case '{': case '}':
      case '[': case ']': case '$': case ';':
        return false;
      default:
        break;
    }
  }
  return true;
}

// True if `s` may be brace-quoted: braces balanced, no trailing lone
// backslash, no backslash-newline.
bool can_brace(std::string_view s) {
  int depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\\') {
      if (i + 1 >= s.size()) return false;  // trailing backslash
      if (s[i + 1] == '\n') return false;
      ++i;
      continue;
    }
    if (c == '{') ++depth;
    if (c == '}') {
      --depth;
      if (depth < 0) return false;
    }
  }
  return depth == 0;
}

}  // namespace

std::string list_quote(std::string_view element) {
  if (element.empty()) return "{}";
  if (needs_no_quoting(element)) return std::string(element);
  if (can_brace(element)) return "{" + std::string(element) + "}";
  // Backslash-quote every special character.
  std::string out;
  for (char c : element) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\v': out += "\\v"; break;
      case '\f': out += "\\f"; break;
      case ' ': case '\\': case '"':
      case '{': case '}': case '[': case ']':
      case '$': case ';':
        out += '\\';
        out += c;
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string list_join(const std::vector<std::string>& elements) {
  std::string out;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) out += ' ';
    out += list_quote(elements[i]);
  }
  return out;
}

std::optional<bool> parse_bool(std::string_view s) {
  std::string lower = str::to_lower(str::trim(s));
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") return false;
  if (auto i = str::parse_int(lower)) return *i != 0;
  if (auto d = str::parse_double(lower)) return *d != 0.0;
  return std::nullopt;
}

}  // namespace ilps::tcl
