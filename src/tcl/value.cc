#include "tcl/value.h"

#include <cctype>
#include <cstdio>

#include "common/error.h"
#include "common/strings.h"

namespace ilps::tcl {

namespace {

bool is_list_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

// ---- Value ----

Value Value::from_int(int64_t v) {
  Value out;
  out.tag_ = Tag::kInt;
  out.i_ = v;
  return out;
}

Value Value::from_double(double v) {
  Value out;
  out.tag_ = Tag::kDouble;
  out.d_ = v;
  return out;
}

Value Value::from_bool(bool b) { return from_int(b ? 1 : 0); }

Value Value::from_string(std::string s) {
  Value out;
  out.tag_ = Tag::kString;
  out.s_ = std::move(s);
  return out;
}

Value Value::symbol(uint32_t id, std::string name) {
  Value out;
  out.tag_ = Tag::kSymbol;
  out.sym_ = id;
  out.s_ = std::move(name);
  return out;
}

Value Value::classify(std::string raw) {
  if (auto i = str::parse_int(raw)) return from_int(*i);
  if (auto d = str::parse_double(raw)) return from_double(*d);
  return from_string(std::move(raw));
}

Value Value::classify_view(std::string_view raw) {
  if (auto i = str::parse_int(raw)) return from_int(*i);
  if (auto d = str::parse_double(raw)) return from_double(*d);
  return from_string(std::string(raw));
}

int64_t Value::as_int() const {
  if (tag_ == Tag::kInt) return i_;
  if (tag_ == Tag::kDouble) return static_cast<int64_t>(d_);
  throw TclError("expected integer but got \"" + s_ + "\"");
}

int64_t Value::require_int(const char* op) const {
  if (tag_ == Tag::kInt) return i_;
  throw TclError(std::string("operand of ") + op + " must be an integer");
}

double Value::as_double() const {
  if (tag_ == Tag::kInt) return static_cast<double>(i_);
  if (tag_ == Tag::kDouble) return d_;
  throw TclError("expected number but got \"" + s_ + "\"");
}

std::string Value::as_string() const {
  if (tag_ == Tag::kInt) return std::to_string(i_);
  if (tag_ == Tag::kDouble) return str::format_double(d_);
  return s_;
}

bool Value::truthy() const {
  if (tag_ == Tag::kInt) return i_ != 0;
  if (tag_ == Tag::kDouble) return d_ != 0.0;
  auto b = parse_bool(s_);
  if (!b) throw TclError("expected boolean value but got \"" + s_ + "\"");
  return *b;
}

// ---- SymbolTable ----

uint32_t SymbolTable::intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::string backslash_escape(std::string_view s, size_t& i) {
  // i is at the backslash.
  ++i;
  if (i >= s.size()) return "\\";
  char c = s[i++];
  switch (c) {
    case 'n': return "\n";
    case 't': return "\t";
    case 'r': return "\r";
    case 'a': return "\a";
    case 'b': return "\b";
    case 'f': return "\f";
    case 'v': return "\v";
    case 'x': {
      int value = 0;
      int digits = 0;
      while (i < s.size() && digits < 2) {
        int d = hex_digit(s[i]);
        if (d < 0) break;
        value = value * 16 + d;
        ++i;
        ++digits;
      }
      if (digits == 0) return "x";
      return std::string(1, static_cast<char>(value));
    }
    case 'u': {
      int value = 0;
      int digits = 0;
      while (i < s.size() && digits < 4) {
        int d = hex_digit(s[i]);
        if (d < 0) break;
        value = value * 16 + d;
        ++i;
        ++digits;
      }
      if (digits == 0) return "u";
      // Encode as UTF-8.
      std::string out;
      if (value < 0x80) {
        out += static_cast<char>(value);
      } else if (value < 0x800) {
        out += static_cast<char>(0xC0 | (value >> 6));
        out += static_cast<char>(0x80 | (value & 0x3F));
      } else {
        out += static_cast<char>(0xE0 | (value >> 12));
        out += static_cast<char>(0x80 | ((value >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (value & 0x3F));
      }
      return out;
    }
    case '\n': {
      // Backslash-newline plus following whitespace collapses to a space.
      while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
      return " ";
    }
    default:
      return std::string(1, c);
  }
}

std::vector<std::string> list_split(std::string_view list) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = list.size();
  while (true) {
    while (i < n && is_list_space(list[i])) ++i;
    if (i >= n) break;
    std::string elem;
    if (list[i] == '{') {
      // Braced element: literal content, balanced braces, backslash guards.
      int depth = 1;
      size_t start = ++i;
      while (i < n && depth > 0) {
        char c = list[i];
        if (c == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (c == '{') ++depth;
        if (c == '}') --depth;
        ++i;
      }
      if (depth != 0) throw ScriptError("unmatched open brace in list");
      elem = std::string(list.substr(start, i - start - 1));
      if (i < n && !is_list_space(list[i])) {
        throw ScriptError("list element in braces followed by \"" +
                          std::string(list.substr(i, 8)) + "\" instead of space");
      }
    } else if (list[i] == '"') {
      size_t j = ++i;
      while (j < n && list[j] != '"') {
        if (list[j] == '\\') {
          size_t k = j;
          elem += list.substr(i, j - i);
          elem += backslash_escape(list, k);
          j = k;
          i = j;
          continue;
        }
        ++j;
      }
      if (j >= n) throw ScriptError("unmatched quote in list");
      elem += list.substr(i, j - i);
      i = j + 1;
      if (i < n && !is_list_space(list[i])) {
        throw ScriptError("list element in quotes followed by non-space");
      }
    } else {
      while (i < n && !is_list_space(list[i])) {
        if (list[i] == '\\') {
          elem += backslash_escape(list, i);
        } else {
          elem += list[i++];
        }
      }
    }
    out.push_back(std::move(elem));
  }
  return out;
}

namespace {

// True if `s` can appear in a list without any quoting.
bool needs_no_quoting(std::string_view s) {
  if (s.empty()) return false;
  if (s[0] == '"' || s[0] == '{' || s[0] == '#') return false;
  for (char c : s) {
    if (is_list_space(c)) return false;
    switch (c) {
      case '\\': case '"': case '{': case '}':
      case '[': case ']': case '$': case ';':
        return false;
      default:
        break;
    }
  }
  return true;
}

// True if `s` may be brace-quoted: braces balanced, no trailing lone
// backslash, no backslash-newline.
bool can_brace(std::string_view s) {
  int depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\\') {
      if (i + 1 >= s.size()) return false;  // trailing backslash
      if (s[i + 1] == '\n') return false;
      ++i;
      continue;
    }
    if (c == '{') ++depth;
    if (c == '}') {
      --depth;
      if (depth < 0) return false;
    }
  }
  return depth == 0;
}

}  // namespace

std::string list_quote(std::string_view element) {
  if (element.empty()) return "{}";
  if (needs_no_quoting(element)) return std::string(element);
  if (can_brace(element)) return "{" + std::string(element) + "}";
  // Backslash-quote every special character.
  std::string out;
  for (char c : element) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\v': out += "\\v"; break;
      case '\f': out += "\\f"; break;
      case ' ': case '\\': case '"':
      case '{': case '}': case '[': case ']':
      case '$': case ';':
        out += '\\';
        out += c;
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string list_join(const std::vector<std::string>& elements) {
  std::string out;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) out += ' ';
    out += list_quote(elements[i]);
  }
  return out;
}

std::optional<bool> parse_bool(std::string_view s) {
  std::string lower = str::to_lower(str::trim(s));
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") return false;
  if (auto i = str::parse_int(lower)) return *i != 0;
  if (auto d = str::parse_double(lower)) return *d != 0.0;
  return std::nullopt;
}

}  // namespace ilps::tcl
