#include "tcl/interp.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "tcl/compile.h"
#include "tcl/parse_internal.h"

namespace ilps::tcl {

using parse::is_cmd_end;
using parse::is_name_char;
using parse::is_word_space;
using parse::scan_braced;

namespace {
constexpr int kMaxDepth = parse::kMaxEvalDepth;
}  // namespace

// A variable slot: scalar, array, or a link to a slot in another frame.
struct Interp::Var {
  enum class Kind { kScalar, kArray, kLink };
  Kind kind = Kind::kScalar;
  std::string scalar;
  std::map<std::string, std::string> array;
  size_t link_frame = 0;
  std::string link_name;
};

// Per-frame variable storage. Frames are small — a proc's locals — and a
// linear scan of a contiguous array beats a red-black tree there, which is
// the hottest lookup in compiled execution. A frame that outgrows the flat
// array (scripts accumulating hundreds of globals) spills into a map so
// lookups stay logarithmic. Var pointers are only ever used transiently
// (between two store operations), so flat-array reallocation is safe.
class Interp::VarStore {
 public:
  Var* find(const std::string& key) {
    if (spill_) {
      auto it = spill_->find(key);
      return it == spill_->end() ? nullptr : &it->second;
    }
    for (auto& e : flat_) {
      if (e.first == key) return &e.second;
    }
    return nullptr;
  }

  Var* get_or_create(const std::string& key) {
    if (Var* v = find(key)) return v;
    if (!spill_ && flat_.size() >= kSpillAt) {
      spill_ = std::make_unique<std::map<std::string, Var>>();
      for (auto& e : flat_) (*spill_)[std::move(e.first)] = std::move(e.second);
      flat_.clear();
    }
    if (spill_) return &(*spill_)[key];
    flat_.emplace_back(key, Var{});
    return &flat_.back().second;
  }

  bool erase(const std::string& key) {
    if (spill_) return spill_->erase(key) > 0;
    for (size_t i = 0; i < flat_.size(); ++i) {
      if (flat_[i].first == key) {
        flat_[i] = std::move(flat_.back());
        flat_.pop_back();
        return true;
      }
    }
    return false;
  }

  // Names in sorted order (`info vars` kept the old map ordering).
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    if (spill_) {
      for (const auto& [k, v] : *spill_) out.push_back(k);
      return out;
    }
    for (const auto& e : flat_) out.push_back(e.first);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  static constexpr size_t kSpillAt = 32;
  std::vector<std::pair<std::string, Var>> flat_;
  std::unique_ptr<std::map<std::string, Var>> spill_;
};

struct Interp::Frame {
  VarStore vars;
  size_t parent = 0;  // call-chain parent (index into frames_)
  int level = 0;      // logical depth; 0 = global
};

Interp::Interp() {
  frames_.push_back(std::make_unique<Frame>());
  source_resolver_ = [](const std::string& path) -> std::optional<std::string> {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  puts_ = [](std::string_view text, bool newline) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    if (newline) std::fputc('\n', stdout);
  };
  register_core_builtins(*this);
  register_list_builtins(*this);
  register_string_builtins(*this);
  register_misc_builtins(*this);
  // The builtins registered above are the baseline the compiler's
  // specialized forms were written against.
  specials_retouched_ = false;
  if (const char* e = std::getenv("ILPS_TCL_COMPILE")) {
    compile_enabled_ = !(e[0] == '0' && e[1] == '\0');
  }
}

Interp::~Interp() = default;

// ---- Frames and variables ----

void Interp::push_frame() {
  auto f = std::make_unique<Frame>();
  f->parent = active_;
  f->level = frames_[active_]->level + 1;
  frames_.push_back(std::move(f));
  active_ = frames_.size() - 1;
}

void Interp::pop_frame() {
  active_ = frames_.back()->parent;
  frames_.pop_back();
}

int Interp::frame_level() const { return frames_[active_]->level; }

size_t Interp::frame_up(int levels_up) const {
  if (levels_up < 0) return 0;  // global
  size_t f = active_;
  for (int i = 0; i < levels_up; ++i) {
    if (f == 0) throw TclError("bad level: no frame " + std::to_string(levels_up) + " up");
    f = frames_[f]->parent;
  }
  return f;
}

std::pair<std::string, std::optional<std::string>> Interp::split_name(const std::string& name) {
  if (!name.empty() && name.back() == ')') {
    size_t open = name.find('(');
    if (open != std::string::npos && open > 0) {
      return {name.substr(0, open), name.substr(open + 1, name.size() - open - 2)};
    }
  }
  return {name, std::nullopt};
}

Interp::Var* Interp::lookup(const std::string& base, bool create) {
  size_t f = active_;
  const std::string* key = &base;
  // Follow link chains across frames.
  for (int hops = 0; hops < 64; ++hops) {
    auto& vars = frames_[f]->vars;
    Var* v = vars.find(*key);
    if (v == nullptr) {
      if (!create) return nullptr;
      return vars.get_or_create(*key);
    }
    if (v->kind != Var::Kind::kLink) return v;
    f = v->link_frame;
    key = &v->link_name;
  }
  throw TclError("too many upvar links for \"" + base + "\"");
}

void Interp::set_var(const std::string& name, std::string value) {
  // Plain (non-array) names skip split_name's base copy — the hot path.
  if (name.empty() || name.back() != ')') {
    Var* v = lookup(name, /*create=*/true);
    if (v->kind == Var::Kind::kArray) {
      throw TclError("can't set \"" + name + "\": variable is array");
    }
    v->kind = Var::Kind::kScalar;
    v->scalar = std::move(value);
    return;
  }
  auto [base, elem] = split_name(name);
  Var* v = lookup(base, /*create=*/true);
  if (elem) {
    if (v->kind == Var::Kind::kScalar && !v->scalar.empty()) {
      throw TclError("can't set \"" + name + "\": variable isn't array");
    }
    v->kind = Var::Kind::kArray;
    v->array[*elem] = std::move(value);
  } else {
    if (v->kind == Var::Kind::kArray) {
      throw TclError("can't set \"" + name + "\": variable is array");
    }
    v->kind = Var::Kind::kScalar;
    v->scalar = std::move(value);
  }
}

std::optional<std::string> Interp::get_var_opt(const std::string& name) {
  if (name.empty() || name.back() != ')') {
    Var* v = lookup(name, /*create=*/false);
    if (v == nullptr) return std::nullopt;
    if (v->kind == Var::Kind::kArray) {
      throw TclError("can't read \"" + name + "\": variable is array");
    }
    return v->scalar;
  }
  auto [base, elem] = split_name(name);
  Var* v = lookup(base, /*create=*/false);
  if (v == nullptr) return std::nullopt;
  if (elem) {
    if (v->kind != Var::Kind::kArray) return std::nullopt;
    auto it = v->array.find(*elem);
    if (it == v->array.end()) return std::nullopt;
    return it->second;
  }
  if (v->kind == Var::Kind::kArray) {
    throw TclError("can't read \"" + name + "\": variable is array");
  }
  return v->scalar;
}

Value Interp::read_var_value(const std::string& name) {
  if (name.empty() || name.back() != ')') {
    Var* v = lookup(name, /*create=*/false);
    if (v == nullptr) throw TclError("can't read \"" + name + "\": no such variable");
    if (v->kind == Var::Kind::kArray) {
      throw TclError("can't read \"" + name + "\": variable is array");
    }
    return Value::classify_view(v->scalar);
  }
  return Value::classify(get_var(name));
}

std::string Interp::get_var(const std::string& name) {
  auto v = get_var_opt(name);
  if (!v) throw TclError("can't read \"" + name + "\": no such variable");
  return std::move(*v);
}

bool Interp::var_exists(const std::string& name) {
  auto [base, elem] = split_name(name);
  Var* v = lookup(base, /*create=*/false);
  if (v == nullptr) return false;
  if (elem) return v->kind == Var::Kind::kArray && v->array.count(*elem) > 0;
  return true;
}

bool Interp::unset_var(const std::string& name) {
  auto [base, elem] = split_name(name);
  // Unset removes the local binding (or the linked target's element).
  auto& vars = frames_[active_]->vars;
  Var* local = vars.find(base);
  if (local == nullptr) return false;
  if (elem) {
    Var* v = lookup(base, /*create=*/false);
    if (v == nullptr || v->kind != Var::Kind::kArray) return false;
    return v->array.erase(*elem) > 0;
  }
  if (local->kind == Var::Kind::kLink) {
    // Unset through the link, then remove the link itself.
    size_t f = local->link_frame;
    std::string target = local->link_name;
    vars.erase(base);
    frames_[f]->vars.erase(target);
    return true;
  }
  vars.erase(base);
  return true;
}

void Interp::link_var(int levels_up, const std::string& other_name, const std::string& local_name) {
  size_t target = frame_up(levels_up);
  if (target == active_) throw TclError("upvar: can't link a frame to itself");
  Var link;
  link.kind = Var::Kind::kLink;
  link.link_frame = target;
  link.link_name = other_name;
  *frames_[active_]->vars.get_or_create(local_name) = std::move(link);
}

bool Interp::array_exists(const std::string& name) {
  Var* v = lookup(name, /*create=*/false);
  return v != nullptr && v->kind == Var::Kind::kArray;
}

std::vector<std::pair<std::string, std::string>> Interp::array_entries(const std::string& name) {
  std::vector<std::pair<std::string, std::string>> out;
  Var* v = lookup(name, /*create=*/false);
  if (v == nullptr || v->kind != Var::Kind::kArray) return out;
  out.assign(v->array.begin(), v->array.end());
  return out;
}

void Interp::array_set_entries(const std::string& name,
                               const std::vector<std::pair<std::string, std::string>>& entries) {
  Var* v = lookup(name, /*create=*/true);
  if (v->kind == Var::Kind::kScalar && !v->scalar.empty()) {
    throw TclError("can't array set \"" + name + "\": variable isn't array");
  }
  v->kind = Var::Kind::kArray;
  for (const auto& [k, val] : entries) v->array[k] = val;
}

std::vector<std::string> Interp::var_names() const {
  return frames_[active_]->vars.names();
}

std::string Interp::eval_up(int levels_up, std::string_view script) {
  size_t target = frame_up(levels_up);
  size_t saved = active_;
  active_ = target;
  try {
    std::string result = eval(script);
    active_ = saved;
    return result;
  } catch (...) {
    active_ = saved;
    throw;
  }
}

// ---- Commands ----

void Interp::register_command(const std::string& name, CommandFn fn) {
  commands_[name] = std::move(fn);
  note_mutation(name);
}

// Invalidate cached name resolutions; if a builtin the compiler specializes
// was replaced, compiled specialized forms fall back to generic dispatch
// permanently (the retained word lists make that safe).
void Interp::note_mutation(const std::string& name) {
  ++mutation_epoch_;
  static constexpr const char* kSpecials[] = {"set",     "incr",  "expr",     "if",
                                              "while",   "for",   "foreach",  "catch",
                                              "break",   "continue", "return"};
  for (const char* s : kSpecials) {
    if (name == s) {
      specials_retouched_ = true;
      return;
    }
  }
}

bool Interp::has_command(const std::string& name) const {
  return commands_.count(name) > 0 || procs_.count(name) > 0;
}

void Interp::remove_command(const std::string& name) {
  commands_.erase(name);
  procs_.erase(name);
  note_mutation(name);
}

std::vector<std::string> Interp::command_names() const {
  std::vector<std::string> out;
  for (const auto& [name, fn] : commands_) {
    (void)fn;
    out.push_back(name);
  }
  for (const auto& [name, p] : procs_) {
    (void)p;
    out.push_back(name);
  }
  return out;
}

void Interp::define_proc(const std::string& name, ProcInfo proc) {
  auto data = std::make_shared<ProcData>();
  data->info = std::move(proc);
  procs_[name] = std::move(data);  // redefinition drops the stale compiled body
  note_mutation(name);
}

const Interp::ProcInfo* Interp::find_proc(const std::string& name) const {
  auto it = procs_.find(name);
  return it == procs_.end() ? nullptr : &it->second->info;
}

std::vector<std::string> Interp::proc_names() const {
  std::vector<std::string> out;
  for (const auto& [name, p] : procs_) {
    (void)p;
    out.push_back(name);
  }
  return out;
}

std::string Interp::call_proc(const std::string& name, ProcData& data,
                              std::vector<std::string>& words) {
  const ProcInfo& proc = data.info;
  push_frame();
  struct FrameGuard {
    Interp* in;
    ~FrameGuard() { in->pop_frame(); }
  } guard{this};

  size_t wi = 1;  // words[0] is the proc name
  for (size_t p = 0; p < proc.params.size(); ++p) {
    const auto& [pname, def] = proc.params[p];
    if (pname == "args" && p + 1 == proc.params.size()) {
      std::vector<std::string> rest(words.begin() + static_cast<ptrdiff_t>(wi), words.end());
      set_var("args", list_join(rest));
      wi = words.size();
      break;
    }
    if (wi < words.size()) {
      set_var(pname, words[wi++]);
    } else if (def) {
      set_var(pname, *def);
    } else {
      throw TclError("wrong # args: should be \"" + name + " ...\"");
    }
  }
  if (wi != words.size()) {
    throw TclError("wrong # args: should be \"" + name + " ...\" (extra arguments)");
  }

  try {
    if (compile_enabled_) {
      if (!data.compiled) {
        data.compiled = compile(proc.body);
      } else {
        ++compile_stats_.hits;
      }
      return exec(*data.compiled);
    }
    return eval(proc.body);
  } catch (ReturnSignal& r) {
    return std::move(r.value);
  }
}

std::string Interp::invoke(std::vector<std::string>& words) {
  if (words.empty()) return "";
  ++commands_evaluated_;
  const std::string& name = words[0];
  if (auto it = commands_.find(name); it != commands_.end()) {
    return it->second(*this, words);
  }
  if (auto it = procs_.find(name); it != procs_.end()) {
    // Keep the definition alive: the body may redefine or remove the proc.
    std::shared_ptr<ProcData> proc = it->second;
    return call_proc(name, *proc, words);
  }
  throw TclError("invalid command name \"" + name + "\"");
}

// ---- Parser ----

// After '$': ${name}, $name, or $name(index). Returns the variable value.
std::string Interp::parse_dollar(std::string_view s, size_t& i) {
  // i is just past the '$'.
  if (i < s.size() && s[i] == '{') {
    size_t end = s.find('}', i + 1);
    if (end == std::string_view::npos) throw TclError("missing close-brace for variable name");
    std::string name(s.substr(i + 1, end - i - 1));
    i = end + 1;
    return get_var(name);
  }
  size_t start = i;
  while (i < s.size() && (is_name_char(s[i]) || s[i] == ':')) ++i;
  if (i == start) return "$";  // lone dollar is literal
  std::string name(s.substr(start, i - start));
  if (i < s.size() && s[i] == '(') {
    // Array element: the index undergoes substitution.
    ++i;
    std::string index;
    while (i < s.size() && s[i] != ')') {
      char c = s[i];
      if (c == '$') {
        ++i;
        index += parse_dollar(s, i);
      } else if (c == '[') {
        index += parse_bracket(s, i);
      } else if (c == '\\') {
        index += backslash_escape(s, i);
      } else {
        index += c;
        ++i;
      }
    }
    if (i >= s.size()) throw TclError("missing ) for array index");
    ++i;  // consume ')'
    return get_var(name + "(" + index + ")");
  }
  return get_var(name);
}

// i at '['. Evaluates the embedded script up to the matching ']'.
std::string Interp::parse_bracket(std::string_view s, size_t& i) {
  ++i;  // past '['
  return eval_until(s, i, ']');
}

std::string Interp::subst(std::string_view text) {
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '$') {
      ++i;
      out += parse_dollar(text, i);
    } else if (c == '[') {
      out += parse_bracket(text, i);
    } else if (c == '\\') {
      out += backslash_escape(text, i);
    } else {
      out += c;
      ++i;
    }
  }
  return out;
}

// (The braced-word scanner lives in parse_internal.h, shared with the
// bytecode compiler.)

std::string Interp::eval_until(std::string_view s, size_t& i, char terminator) {
  if (++depth_ > kMaxDepth) {
    --depth_;
    throw TclError("too many nested evaluations (infinite recursion?)");
  }
  struct DepthGuard {
    int* d;
    ~DepthGuard() { --*d; }
  } dguard{&depth_};

  std::string result;
  const size_t n = s.size();
  while (i <= n) {
    // Skip blanks and command separators before a command.
    while (i < n && (is_word_space(s[i]) || is_cmd_end(s[i]))) ++i;
    if (i < n && s[i] == '#') {
      // Comment to end of line; backslash-newline continues it.
      while (i < n && s[i] != '\n') {
        if (s[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      continue;
    }
    if (i >= n) {
      if (terminator != '\0') throw TclError("missing close-bracket");
      break;
    }
    if (terminator != '\0' && s[i] == terminator) {
      ++i;
      return result;
    }

    // Parse the words of one command.
    std::vector<std::string> words;
    while (true) {
      while (i < n && is_word_space(s[i])) {
        ++i;
      }
      if (i >= n || is_cmd_end(s[i]) || (terminator != '\0' && s[i] == terminator)) break;

      bool expand = false;
      if (s.substr(i).starts_with("{*}") && i + 3 < n && !is_word_space(s[i + 3]) &&
          !is_cmd_end(s[i + 3])) {
        expand = true;
        i += 3;
      }

      std::string word;
      char c = s[i];
      if (c == '{') {
        word = scan_braced(s, i);
        if (i < n && !is_word_space(s[i]) && !is_cmd_end(s[i]) &&
            !(terminator != '\0' && s[i] == terminator)) {
          throw TclError("extra characters after close-brace");
        }
      } else if (c == '"') {
        ++i;
        while (i < n && s[i] != '"') {
          char q = s[i];
          if (q == '$') {
            ++i;
            word += parse_dollar(s, i);
          } else if (q == '[') {
            word += parse_bracket(s, i);
          } else if (q == '\\') {
            word += backslash_escape(s, i);
          } else {
            word += q;
            ++i;
          }
        }
        if (i >= n) throw TclError("missing \"");
        ++i;  // closing quote
        if (i < n && !is_word_space(s[i]) && !is_cmd_end(s[i]) &&
            !(terminator != '\0' && s[i] == terminator)) {
          throw TclError("extra characters after close-quote");
        }
      } else {
        // Bare word with substitutions.
        while (i < n && !is_word_space(s[i]) && !is_cmd_end(s[i]) &&
               !(terminator != '\0' && s[i] == terminator)) {
          char q = s[i];
          if (q == '$') {
            ++i;
            word += parse_dollar(s, i);
          } else if (q == '[') {
            word += parse_bracket(s, i);
          } else if (q == '\\') {
            if (i + 1 < n && s[i + 1] == '\n') break;  // line continuation ends word
            word += backslash_escape(s, i);
          } else {
            word += q;
            ++i;
          }
        }
        // Swallow a line continuation between words.
        if (i + 1 < n && s[i] == '\\' && s[i + 1] == '\n') {
          size_t j = i;
          backslash_escape(s, j);
          i = j;
        }
      }

      if (expand) {
        for (auto& e : list_split(word)) words.push_back(std::move(e));
      } else {
        words.push_back(std::move(word));
      }
    }

    if (!words.empty()) result = invoke(words);

    if (i < n && is_cmd_end(s[i])) {
      ++i;
      continue;
    }
    if (i < n && terminator != '\0' && s[i] == terminator) {
      ++i;
      return result;
    }
    if (i >= n) {
      if (terminator != '\0') throw TclError("missing close-bracket");
      break;
    }
  }
  return result;
}

std::string Interp::eval(std::string_view script) {
  size_t i = 0;
  return eval_until(script, i, '\0');
}

bool Interp::expr_bool(std::string_view expression) {
  std::string v = expr(expression);
  auto b = parse_bool(v);
  if (!b) throw TclError("expected boolean value but got \"" + v + "\"");
  return *b;
}

// ---- Packages ----

void Interp::package_provide(const std::string& name, const std::string& version) {
  provided_[name] = version;
}

void Interp::package_ifneeded(const std::string& name, const std::string& version,
                              const std::string& script) {
  ifneeded_[name] = {version, script};
}

std::optional<std::string> Interp::package_provided(const std::string& name) const {
  auto it = provided_.find(name);
  if (it == provided_.end()) return std::nullopt;
  return it->second;
}

std::string Interp::package_require(const std::string& name) {
  if (auto v = package_provided(name)) return *v;
  if (auto it = ifneeded_.find(name); it != ifneeded_.end()) {
    eval(it->second.second);
    if (auto v = package_provided(name)) return *v;
    throw TclError("package \"" + name + "\" ifneeded script did not provide it");
  }
  if (package_unknown_ && package_unknown_(*this, name)) {
    // The handler may have installed an ifneeded script or provided the
    // package directly; retry once.
    if (auto v = package_provided(name)) return *v;
    if (auto it = ifneeded_.find(name); it != ifneeded_.end()) {
      eval(it->second.second);
      if (auto v = package_provided(name)) return *v;
    }
  }
  throw TclError("can't find package " + name);
}

std::vector<std::string> Interp::package_names() const {
  std::vector<std::string> out;
  for (const auto& [name, v] : provided_) {
    (void)v;
    out.push_back(name);
  }
  return out;
}

void Interp::set_package_unknown(PackageUnknownFn fn) { package_unknown_ = std::move(fn); }

void Interp::set_source_resolver(SourceResolver fn) { source_resolver_ = std::move(fn); }

void Interp::set_puts_handler(PutsFn fn) { puts_ = std::move(fn); }

void Interp::do_puts(std::string_view text, bool newline) { puts_(text, newline); }

void check_arity(const std::vector<std::string>& args, int min, int max, const char* usage) {
  int argc = static_cast<int>(args.size()) - 1;
  if (argc < min || (max >= 0 && argc > max)) {
    throw TclError("wrong # args: should be \"" + args[0] + " " + usage + "\"");
  }
}

}  // namespace ilps::tcl
