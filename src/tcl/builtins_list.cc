// List and dict built-ins. Dicts use the Tcl representation: a list of
// alternating keys and values.
#include <algorithm>

#include "common/strings.h"
#include "tcl/interp.h"

namespace ilps::tcl {

namespace {

// Parses a Tcl list index: an integer, "end", or "end-N".
int64_t parse_index(const std::string& s, size_t len) {
  if (s == "end") return static_cast<int64_t>(len) - 1;
  if (str::starts_with(s, "end-")) {
    auto n = str::parse_int(s.substr(4));
    if (!n) throw TclError("bad index \"" + s + "\"");
    return static_cast<int64_t>(len) - 1 - *n;
  }
  if (str::starts_with(s, "end+")) {
    auto n = str::parse_int(s.substr(4));
    if (!n) throw TclError("bad index \"" + s + "\"");
    return static_cast<int64_t>(len) - 1 + *n;
  }
  auto n = str::parse_int(s);
  if (!n) throw TclError("bad index \"" + s + "\": must be integer or end?-integer?");
  return *n;
}

std::string cmd_list(Interp&, std::vector<std::string>& args) {
  std::vector<std::string> elems(args.begin() + 1, args.end());
  return list_join(elems);
}

std::string cmd_llength(Interp&, std::vector<std::string>& args) {
  check_arity(args, 1, 1, "list");
  return std::to_string(list_split(args[1]).size());
}

std::string cmd_lindex(Interp&, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "list ?index ...?");
  std::string cur = args[1];
  for (size_t a = 2; a < args.size(); ++a) {
    auto elems = list_split(cur);
    int64_t idx = parse_index(args[a], elems.size());
    if (idx < 0 || idx >= static_cast<int64_t>(elems.size())) return "";
    cur = elems[static_cast<size_t>(idx)];
  }
  return cur;
}

std::string cmd_lappend(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "varName ?value ...?");
  std::string value;
  if (auto cur = in.get_var_opt(args[1])) value = *cur;
  for (size_t i = 2; i < args.size(); ++i) {
    if (!value.empty()) value += ' ';
    value += list_quote(args[i]);
  }
  in.set_var(args[1], value);
  return value;
}

std::string cmd_lrange(Interp&, std::vector<std::string>& args) {
  check_arity(args, 3, 3, "list first last");
  auto elems = list_split(args[1]);
  int64_t first = parse_index(args[2], elems.size());
  int64_t last = parse_index(args[3], elems.size());
  first = std::max<int64_t>(first, 0);
  last = std::min<int64_t>(last, static_cast<int64_t>(elems.size()) - 1);
  if (first > last) return "";
  std::vector<std::string> out(elems.begin() + first, elems.begin() + last + 1);
  return list_join(out);
}

std::string cmd_linsert(Interp&, std::vector<std::string>& args) {
  check_arity(args, 2, -1, "list index ?element ...?");
  auto elems = list_split(args[1]);
  int64_t idx = parse_index(args[2], elems.size());
  // For insertion, "end" means after the last element.
  if (args[2] == "end") idx = static_cast<int64_t>(elems.size());
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(elems.size()));
  elems.insert(elems.begin() + idx, args.begin() + 3, args.end());
  return list_join(elems);
}

std::string cmd_lreplace(Interp&, std::vector<std::string>& args) {
  check_arity(args, 3, -1, "list first last ?element ...?");
  auto elems = list_split(args[1]);
  int64_t first = parse_index(args[2], elems.size());
  int64_t last = parse_index(args[3], elems.size());
  first = std::max<int64_t>(first, 0);
  last = std::min<int64_t>(last, static_cast<int64_t>(elems.size()) - 1);
  std::vector<std::string> out(elems.begin(), elems.begin() + std::min<int64_t>(first, static_cast<int64_t>(elems.size())));
  out.insert(out.end(), args.begin() + 4, args.end());
  if (last + 1 < static_cast<int64_t>(elems.size())) {
    out.insert(out.end(), elems.begin() + std::max<int64_t>(last + 1, first), elems.end());
  }
  return list_join(out);
}

std::string cmd_lsearch(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 2, -1, "?-exact|-glob? ?-all? list pattern");
  bool exact = false;
  bool all = false;
  size_t a = 1;
  while (a + 2 < args.size() + 1 && !args[a].empty() && args[a][0] == '-') {
    if (args[a] == "-exact") {
      exact = true;
    } else if (args[a] == "-glob") {
      exact = false;
    } else if (args[a] == "-all") {
      all = true;
    } else {
      throw TclError("bad lsearch option \"" + args[a] + "\"");
    }
    ++a;
  }
  if (a + 1 >= args.size()) throw TclError("wrong # args: lsearch needs list and pattern");
  auto elems = list_split(args[a]);
  const std::string& pattern = args[a + 1];
  std::vector<std::string> hits;
  for (size_t i = 0; i < elems.size(); ++i) {
    bool match;
    if (exact) {
      match = elems[i] == pattern;
    } else {
      std::vector<std::string> match_args = {"string", "match", pattern, elems[i]};
      match = in.invoke(match_args) == "1";
    }
    if (match) {
      if (!all) return std::to_string(i);
      hits.push_back(std::to_string(i));
    }
  }
  if (all) return list_join(hits);
  return "-1";
}

std::string cmd_lsort(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "?options? list");
  bool integer = false;
  bool real = false;
  bool decreasing = false;
  bool unique = false;
  std::string command;
  size_t a = 1;
  for (; a + 1 < args.size(); ++a) {
    if (args[a] == "-integer") {
      integer = true;
    } else if (args[a] == "-real") {
      real = true;
    } else if (args[a] == "-decreasing") {
      decreasing = true;
    } else if (args[a] == "-increasing") {
      decreasing = false;
    } else if (args[a] == "-unique") {
      unique = true;
    } else if (args[a] == "-ascii") {
      // default
    } else if (args[a] == "-command") {
      if (a + 2 >= args.size()) throw TclError("lsort -command needs an argument");
      command = args[++a];
    } else {
      throw TclError("bad lsort option \"" + args[a] + "\"");
    }
  }
  auto elems = list_split(args[a]);
  auto cmp = [&](const std::string& x, const std::string& y) {
    int c;
    if (!command.empty()) {
      std::string script = command + " " + list_quote(x) + " " + list_quote(y);
      auto r = str::parse_int(in.eval(script));
      if (!r) throw TclError("lsort -command result must be an integer");
      c = static_cast<int>(*r);
    } else if (integer) {
      auto xi = str::parse_int(x);
      auto yi = str::parse_int(y);
      if (!xi || !yi) throw TclError("lsort -integer: non-integer element");
      c = *xi < *yi ? -1 : (*xi > *yi ? 1 : 0);
    } else if (real) {
      auto xd = str::parse_double(x);
      auto yd = str::parse_double(y);
      if (!xd || !yd) throw TclError("lsort -real: non-numeric element");
      c = *xd < *yd ? -1 : (*xd > *yd ? 1 : 0);
    } else {
      c = x < y ? -1 : (x > y ? 1 : 0);
    }
    return decreasing ? c > 0 : c < 0;
  };
  std::stable_sort(elems.begin(), elems.end(), cmp);
  if (unique) {
    elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  }
  return list_join(elems);
}

std::string cmd_lreverse(Interp&, std::vector<std::string>& args) {
  check_arity(args, 1, 1, "list");
  auto elems = list_split(args[1]);
  std::reverse(elems.begin(), elems.end());
  return list_join(elems);
}

std::string cmd_lassign(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "list ?varName ...?");
  auto elems = list_split(args[1]);
  size_t v = 0;
  for (size_t a = 2; a < args.size(); ++a, ++v) {
    in.set_var(args[a], v < elems.size() ? elems[v] : "");
  }
  std::vector<std::string> rest(elems.begin() + std::min(v, elems.size()), elems.end());
  return list_join(rest);
}

std::string cmd_lmap(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 3, 3, "varList list body");
  auto vars = list_split(args[1]);
  auto values = list_split(args[2]);
  if (vars.empty()) throw TclError("lmap varlist is empty");
  std::vector<std::string> out;
  size_t iters = vars.empty() ? 0 : (values.size() + vars.size() - 1) / vars.size();
  for (size_t iter = 0; iter < iters; ++iter) {
    for (size_t v = 0; v < vars.size(); ++v) {
      size_t idx = iter * vars.size() + v;
      in.set_var(vars[v], idx < values.size() ? values[idx] : "");
    }
    try {
      out.push_back(in.eval(args[3]));
    } catch (BreakSignal&) {
      break;
    } catch (ContinueSignal&) {
      continue;
    }
  }
  return list_join(out);
}

std::string cmd_concat(Interp&, std::vector<std::string>& args) {
  std::vector<std::string> parts;
  for (size_t i = 1; i < args.size(); ++i) {
    std::string_view t = str::trim(args[i]);
    if (!t.empty()) parts.emplace_back(t);
  }
  return str::join(parts, " ");
}

std::string cmd_join(Interp&, std::vector<std::string>& args) {
  check_arity(args, 1, 2, "list ?joinString?");
  std::string sep = args.size() > 2 ? args[2] : " ";
  auto elems = list_split(args[1]);
  return str::join(elems, sep);
}

std::string cmd_split(Interp&, std::vector<std::string>& args) {
  check_arity(args, 1, 2, "string ?splitChars?");
  const std::string& s = args[1];
  std::string chars = args.size() > 2 ? args[2] : " \t\n\r";
  if (chars.empty()) {
    std::vector<std::string> out;
    for (char c : s) out.emplace_back(1, c);
    return list_join(out);
  }
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (chars.find(c) != std::string::npos) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return list_join(out);
}

// ---- dict ----

std::vector<std::pair<std::string, std::string>> dict_parse(const std::string& d) {
  auto elems = list_split(d);
  if (elems.size() % 2 != 0) throw TclError("missing value to go with key");
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = 0; i + 1 < elems.size(); i += 2) {
    out.emplace_back(elems[i], elems[i + 1]);
  }
  return out;
}

std::string dict_build(const std::vector<std::pair<std::string, std::string>>& entries) {
  std::vector<std::string> flat;
  for (const auto& [k, v] : entries) {
    flat.push_back(k);
    flat.push_back(v);
  }
  return list_join(flat);
}

std::string cmd_dict(Interp& in, std::vector<std::string>& args) {
  check_arity(args, 1, -1, "subcommand ?arg ...?");
  const std::string& sub = args[1];
  if (sub == "create") {
    if ((args.size() - 2) % 2 != 0) throw TclError("missing value to go with key");
    std::vector<std::pair<std::string, std::string>> entries;
    for (size_t i = 2; i + 1 < args.size(); i += 2) entries.emplace_back(args[i], args[i + 1]);
    return dict_build(entries);
  }
  if (sub == "get") {
    check_arity(args, 2, 3, "get dictionary ?key?");
    auto entries = dict_parse(args[2]);
    if (args.size() == 3) return args[2];
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (it->first == args[3]) return it->second;
    }
    throw TclError("key \"" + args[3] + "\" not known in dictionary");
  }
  if (sub == "exists") {
    check_arity(args, 3, 3, "exists dictionary key");
    for (const auto& [k, v] : dict_parse(args[2])) {
      (void)v;
      if (k == args[3]) return "1";
    }
    return "0";
  }
  if (sub == "set") {
    check_arity(args, 4, 4, "set dictVarName key value");
    std::string d;
    if (auto cur = in.get_var_opt(args[2])) d = *cur;
    auto entries = dict_parse(d);
    bool found = false;
    for (auto& [k, v] : entries) {
      if (k == args[3]) {
        v = args[4];
        found = true;
      }
    }
    if (!found) entries.emplace_back(args[3], args[4]);
    std::string out = dict_build(entries);
    in.set_var(args[2], out);
    return out;
  }
  if (sub == "unset") {
    check_arity(args, 3, 3, "unset dictVarName key");
    std::string d;
    if (auto cur = in.get_var_opt(args[2])) d = *cur;
    auto entries = dict_parse(d);
    std::erase_if(entries, [&](const auto& e) { return e.first == args[3]; });
    std::string out = dict_build(entries);
    in.set_var(args[2], out);
    return out;
  }
  if (sub == "keys") {
    check_arity(args, 2, 2, "keys dictionary");
    std::vector<std::string> keys;
    for (const auto& [k, v] : dict_parse(args[2])) {
      (void)v;
      keys.push_back(k);
    }
    return list_join(keys);
  }
  if (sub == "values") {
    check_arity(args, 2, 2, "values dictionary");
    std::vector<std::string> values;
    for (const auto& [k, v] : dict_parse(args[2])) {
      (void)k;
      values.push_back(v);
    }
    return list_join(values);
  }
  if (sub == "size") {
    check_arity(args, 2, 2, "size dictionary");
    return std::to_string(dict_parse(args[2]).size());
  }
  if (sub == "merge") {
    std::vector<std::pair<std::string, std::string>> entries;
    for (size_t i = 2; i < args.size(); ++i) {
      for (const auto& [k, v] : dict_parse(args[i])) {
        bool found = false;
        for (auto& [ek, ev] : entries) {
          if (ek == k) {
            ev = v;
            found = true;
          }
        }
        if (!found) entries.emplace_back(k, v);
      }
    }
    return dict_build(entries);
  }
  if (sub == "for") {
    check_arity(args, 4, 4, "for {keyVar valueVar} dictionary body");
    auto vars = list_split(args[2]);
    if (vars.size() != 2) throw TclError("dict for needs {keyVar valueVar}");
    for (const auto& [k, v] : dict_parse(args[3])) {
      in.set_var(vars[0], k);
      in.set_var(vars[1], v);
      try {
        in.eval(args[4]);
      } catch (BreakSignal&) {
        break;
      } catch (ContinueSignal&) {
        continue;
      }
    }
    return "";
  }
  throw TclError("unsupported dict subcommand \"" + sub + "\"");
}

}  // namespace

void register_list_builtins(Interp& in) {
  in.register_command("list", cmd_list);
  in.register_command("llength", cmd_llength);
  in.register_command("lindex", cmd_lindex);
  in.register_command("lappend", cmd_lappend);
  in.register_command("lrange", cmd_lrange);
  in.register_command("linsert", cmd_linsert);
  in.register_command("lreplace", cmd_lreplace);
  in.register_command("lsearch", cmd_lsearch);
  in.register_command("lsort", cmd_lsort);
  in.register_command("lreverse", cmd_lreverse);
  in.register_command("lassign", cmd_lassign);
  in.register_command("lmap", cmd_lmap);
  in.register_command("concat", cmd_concat);
  in.register_command("join", cmd_join);
  in.register_command("split", cmd_split);
  in.register_command("dict", cmd_dict);
}

}  // namespace ilps::tcl
