// MiniTcl value helpers. MiniTcl follows Tcl's "everything is a string"
// model: a value is a std::string, and a list is a string in Tcl list
// syntax. These functions implement the list reader/writer and the boolean
// reader used throughout the interpreter and by Swift/T type conversion.
//
// `Value` is the tagged representation used off the string rail: the expr
// sublanguage computes with it, and the bytecode compiler (compile.h) tags
// literal words with it so hot integers (datum ids, loop counts) and
// interned command names stop round-tripping through std::string on every
// execution.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace ilps::tcl {

// Raised for Tcl-level errors (`error`, bad usage, unknown command).
class TclError : public ScriptError {
 public:
  explicit TclError(const std::string& what) : ScriptError(what) {}
};

// A tagged MiniTcl value: a small integer, a double, an interned symbol,
// or a plain string. Everything still *prints* as a string (as_string()),
// preserving the everything-is-a-string model; the tag is an internal
// accelerator. Conversion errors throw TclError with the exact messages
// the expr sublanguage has always produced.
class Value {
 public:
  enum class Tag : uint8_t { kNone, kInt, kDouble, kString, kSymbol };

  Value() = default;
  static Value from_int(int64_t v);
  static Value from_double(double v);
  static Value from_bool(bool b);
  static Value from_string(std::string s);
  // An interned name: compares/prints as its string, carries the id.
  static Value symbol(uint32_t id, std::string name);
  // Converts raw text into the narrowest numeric value, or keeps it as a
  // string (the expr operand classifier).
  static Value classify(std::string raw);
  // Same classification, but only allocates when the result stays a
  // string — the numeric cases never copy the input.
  static Value classify_view(std::string_view raw);

  Tag tag() const { return tag_; }
  bool is_none() const { return tag_ == Tag::kNone; }
  bool is_int() const { return tag_ == Tag::kInt; }
  bool is_double() const { return tag_ == Tag::kDouble; }
  bool is_string() const { return tag_ == Tag::kString || tag_ == Tag::kSymbol; }
  bool is_numeric() const { return tag_ == Tag::kInt || tag_ == Tag::kDouble; }
  bool is_symbol() const { return tag_ == Tag::kSymbol; }

  // Accessors with expr-compatible coercions and error messages.
  int64_t as_int() const;                   // truncates doubles, rejects strings
  int64_t require_int(const char* op) const;  // ints only ("operand of <op> ...")
  double as_double() const;
  std::string as_string() const;
  const std::string& str() const { return s_; }  // kString/kSymbol payload
  uint32_t symbol_id() const { return sym_; }
  bool truthy() const;  // expr boolean coercion

 private:
  Tag tag_ = Tag::kNone;
  int64_t i_ = 0;
  double d_ = 0;
  uint32_t sym_ = 0;
  std::string s_;
};

// Interns strings to dense uint32 ids. Per-Interp: compiled units refer to
// command and variable names by id, and the interp keeps a parallel
// resolution cache indexed by id (see interp.h).
class SymbolTable {
 public:
  uint32_t intern(std::string_view name);
  const std::string& name(uint32_t id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

// Parses a Tcl list into its elements. Handles {braced}, "quoted" and bare
// elements with backslash escapes. Throws ilps::ScriptError on unbalanced
// braces or quotes.
std::vector<std::string> list_split(std::string_view list);

// Quotes one element so list_split will recover it exactly.
std::string list_quote(std::string_view element);

// Joins elements into a Tcl list string.
std::string list_join(const std::vector<std::string>& elements);

// Tcl boolean reader: accepts 1/0, true/false, yes/no, on/off in any case,
// and any numeric value (nonzero is true). Returns nullopt otherwise.
std::optional<bool> parse_bool(std::string_view s);

// Processes backslash escapes the way the Tcl word parser does:
// \n \t \r \a \b \f \v \\ \xHH \uHHHH \<newline><ws> and \C for any other C.
// `i` is at the backslash; it is advanced past the escape. Returns the
// replacement text.
std::string backslash_escape(std::string_view s, size_t& i);

}  // namespace ilps::tcl
