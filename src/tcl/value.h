// MiniTcl value helpers. MiniTcl follows Tcl's "everything is a string"
// model: a value is a std::string, and a list is a string in Tcl list
// syntax. These functions implement the list reader/writer and the boolean
// reader used throughout the interpreter and by Swift/T type conversion.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ilps::tcl {

// Parses a Tcl list into its elements. Handles {braced}, "quoted" and bare
// elements with backslash escapes. Throws ilps::ScriptError on unbalanced
// braces or quotes.
std::vector<std::string> list_split(std::string_view list);

// Quotes one element so list_split will recover it exactly.
std::string list_quote(std::string_view element);

// Joins elements into a Tcl list string.
std::string list_join(const std::vector<std::string>& elements);

// Tcl boolean reader: accepts 1/0, true/false, yes/no, on/off in any case,
// and any numeric value (nonzero is true). Returns nullopt otherwise.
std::optional<bool> parse_bool(std::string_view s);

// Processes backslash escapes the way the Tcl word parser does:
// \n \t \r \a \b \f \v \\ \xHH \uHHHH \<newline><ws> and \C for any other C.
// `i` is at the backslash; it is advanced past the escape. Returns the
// replacement text.
std::string backslash_escape(std::string_view s, size_t& i);

}  // namespace ilps::tcl
