// A parallel-filesystem model and the static-package mechanism.
//
// The paper's "many small file problem": on a cluster filesystem
// (GPFS/Lustre), every open() is a metadata operation whose cost grows
// with the number of clients hammering the metadata server. Script-based
// applications that `package require` dozens of small .tcl files from
// thousands of ranks stall on metadata. Swift/T's fix is *static
// packages*: the script files are baked into one in-memory image, so a
// worker resolves `source`/`package require` without touching the
// filesystem at all.
//
// PfsModel simulates the metadata cost: a shared metadata server with a
// configurable base latency and per-concurrent-client contention factor.
// The simulation is in *simulated time* (an atomic clock advanced by
// operations), so benches are deterministic and fast regardless of
// wall-clock speed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/sync.h"

namespace ilps::tcl {
class Interp;
}

namespace ilps::pkg {

// A bag of named script files (the contents of a TCLLIBPATH directory
// tree, or of a whole installation).
class FileTree {
 public:
  void add(const std::string& path, std::string contents);
  bool contains(const std::string& path) const;
  const std::string* get(const std::string& path) const;
  std::vector<std::string> list_dir(const std::string& dir) const;
  size_t file_count() const { return files_.size(); }

 private:
  std::map<std::string, std::string> files_;
};

struct PfsConfig {
  // Metadata latency per open(), in simulated microseconds.
  double open_latency_us = 50.0;
  // Extra latency per concurrently-open client (metadata contention).
  double contention_us_per_client = 10.0;
  // Streaming cost per byte read (simulated microseconds).
  double read_us_per_byte = 0.001;
};

struct PfsStats {
  uint64_t opens = 0;
  uint64_t misses = 0;       // opens of nonexistent paths (failed probes)
  uint64_t bytes_read = 0;
  double busy_us = 0;        // total simulated metadata-server time
};

// A shared filesystem with metadata costs. Thread-safe: many worker ranks
// open files concurrently, which is exactly the contention being modeled.
class PfsModel {
 public:
  PfsModel(FileTree tree, PfsConfig cfg) : tree_(std::move(tree)), cfg_(cfg) {}

  // Opens and reads a file, charging simulated time. Returns nullopt for
  // missing paths (which still cost a metadata round trip, as on a real
  // PFS — failed probes are why path searching hurts).
  std::optional<std::string> read(const std::string& path);

  // Total simulated microseconds consumed by the metadata server so far.
  double simulated_time_us() const;

  PfsStats stats() const;
  const FileTree& tree() const { return tree_; }

 private:
  FileTree tree_;
  PfsConfig cfg_;
  mutable ilps::Mutex mutex_;
  PfsStats stats_ ILPS_GUARDED_BY(mutex_);
  int in_flight_ ILPS_GUARDED_BY(mutex_) = 0;
};

// A static package image: every file of a FileTree frozen into memory.
// Reads are plain map lookups with no metadata cost — the paper's fix.
class StaticPackage {
 public:
  explicit StaticPackage(FileTree tree) : tree_(std::move(tree)) {}

  // Builds an image from a tree (in Swift/T this happens at job-assembly
  // time on the login node).
  static StaticPackage build(const FileTree& tree) { return StaticPackage(tree); }

  std::optional<std::string> read(const std::string& path) const;
  uint64_t reads() const { return reads_.load(); }  // stats-only tally
  size_t file_count() const { return tree_.file_count(); }

 private:
  FileTree tree_;
  mutable ilps::RelaxedCounter reads_;
};

// ---- Tcl integration ----
//
// Installs a `source` resolver and a `package unknown` handler into a
// MiniTcl interp, resolving through the given reader function over a
// TCLLIBPATH-style list of directories. The package-unknown handler
// mimics Tcl's: it probes each directory for pkgIndex.tcl and evaluates
// the ones it finds (each probe is an open()).
using ReadFileFn = std::function<std::optional<std::string>(const std::string& path)>;

void install_script_loader(tcl::Interp& interp, ReadFileFn read, std::vector<std::string> lib_path);

// Convenience: a pkgIndex.tcl body declaring one package whose load
// script sources `files` from `dir`.
std::string make_pkg_index(const std::string& name, const std::string& version,
                           const std::string& dir, const std::vector<std::string>& files);

}  // namespace ilps::pkg
