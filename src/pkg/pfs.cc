#include "pkg/pfs.h"

#include "common/strings.h"
#include "tcl/interp.h"

namespace ilps::pkg {

void FileTree::add(const std::string& path, std::string contents) {
  files_[path] = std::move(contents);
}

bool FileTree::contains(const std::string& path) const { return files_.count(path) > 0; }

const std::string* FileTree::get(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<std::string> FileTree::list_dir(const std::string& dir) const {
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> out;
  for (const auto& [path, contents] : files_) {
    (void)contents;
    if (str::starts_with(path, prefix)) out.push_back(path);
  }
  return out;
}

std::optional<std::string> PfsModel::read(const std::string& path) {
  ilps::LockGuard lock(mutex_);
  // Metadata cost: base latency plus contention from concurrent clients.
  // in_flight_ approximates concurrency: it counts clients that arrived
  // while the lock was contended in this window.
  ++in_flight_;
  double cost = cfg_.open_latency_us +
                cfg_.contention_us_per_client * static_cast<double>(in_flight_ - 1);
  ++stats_.opens;
  const std::string* contents = tree_.get(path);
  if (contents == nullptr) {
    ++stats_.misses;
    stats_.busy_us += cost;
    --in_flight_;
    return std::nullopt;
  }
  stats_.busy_us += cost + cfg_.read_us_per_byte * static_cast<double>(contents->size());
  stats_.bytes_read += contents->size();
  --in_flight_;
  return *contents;
}

double PfsModel::simulated_time_us() const {
  ilps::LockGuard lock(mutex_);
  return stats_.busy_us;
}

PfsStats PfsModel::stats() const {
  ilps::LockGuard lock(mutex_);
  return stats_;
}

std::optional<std::string> StaticPackage::read(const std::string& path) const {
  reads_.add(1);
  const std::string* contents = tree_.get(path);
  if (contents == nullptr) return std::nullopt;
  return *contents;
}

void install_script_loader(tcl::Interp& interp, ReadFileFn read,
                           std::vector<std::string> lib_path) {
  interp.set_source_resolver(read);
  interp.set_package_unknown(
      [read = std::move(read), lib_path = std::move(lib_path)](tcl::Interp& in,
                                                               const std::string& name) {
        (void)name;
        bool found_any = false;
        for (const auto& dir : lib_path) {
          std::string index_path = dir;
          if (!index_path.empty() && index_path.back() != '/') index_path += '/';
          index_path += "pkgIndex.tcl";
          auto contents = read(index_path);
          if (!contents) continue;
          // pkgIndex.tcl scripts refer to their own directory as $dir.
          in.set_var("dir", dir);
          in.eval(*contents);
          found_any = true;
        }
        return found_any;
      });
}

std::string make_pkg_index(const std::string& name, const std::string& version,
                           const std::string& dir, const std::vector<std::string>& files) {
  (void)dir;
  // Double-quoted so $dir is substituted when the index file is evaluated
  // (as real pkgIndex.tcl files do), not when the package is required.
  std::string load_script;
  for (const auto& f : files) {
    load_script += "source $dir/" + f + "; ";
  }
  load_script += "package provide " + name + " " + version;
  return "package ifneeded " + name + " " + version + " \"" + load_script + "\"\n";
}

}  // namespace ilps::pkg
