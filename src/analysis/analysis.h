// swift-verify: static dataflow verification over the Swift AST.
//
// Runs between parse and compile (and standalone via `ilps --lint`). The
// execution model makes these properties statically checkable (Armstrong
// et al., "Compiler Techniques for Massively Scalable Implicit Task
// Parallelism"): every variable is a single-assignment future, so a
// def/use graph over the AST predicts deadlocks before any rank spins up.
//
// Diagnostics (docs/analysis.md):
//   - unassigned-read  (error):   a future read on some path but assigned
//                                 on none — every rule waiting on it is a
//                                 guaranteed deadlock.
//   - double-write     (error):   a future assigned more than once on
//                                 every path — a guaranteed write-once
//                                 violation (runtime double-store).
//   - wait-cycle       (error):   statements in one block that wait on
//                                 each other's outputs (SCC over the
//                                 block's dependency graph).
//   - maybe-double-write (warning): assigned more than once on some path.
//   - unused-value     (warning): a variable never read, or a leaf task
//                                 whose every output is discarded.
//
// The analysis is sound for acceptance: it never reports an *error* for a
// program the runtime completes. `foreach` bodies may run zero times and
// `if` branches are merged min/max, so conditional writes count toward
// "may be assigned" but never toward "definitely assigned"; container
// (array) dataflow goes through deferred write-refcounts the analysis
// cannot bound, so arrays are excluded from the error classes and only
// produce warnings. Whatever slips through is caught at run time by the
// engine's stuck-future report (see turbine::Engine::stuck_report).
#pragma once

#include <string>
#include <vector>

#include "swift/ast.h"

namespace ilps::analysis {

enum class Severity { kError, kWarning };

enum class DiagKind {
  kUnassignedRead,    // read but never assigned on any path
  kDoubleWrite,       // definitely assigned more than once
  kMaybeDoubleWrite,  // assigned more than once on some path
  kWaitCycle,         // statements wait on each other's outputs
  kUnusedValue,       // assignment or leaf result never consumed
};

struct Diagnostic {
  Severity severity = Severity::kError;
  DiagKind kind = DiagKind::kUnassignedRead;
  int line = 0;          // primary source line
  std::string var;       // offending variable, if there is one
  std::string message;   // human-readable, includes line references
};

struct Report {
  std::vector<Diagnostic> diagnostics;  // sorted by line

  bool has_errors() const;
  size_t error_count() const;

  // Every diagnostic, one per line, prefixed "error: " / "warning: ".
  std::string to_string() const;
  // The errors alone, formatted for a thrown SwiftError.
  std::string error_summary() const;
};

// Analyzes a parsed program: main statements plus every function body,
// interprocedural through composite calls. Never throws on analyzable
// input; malformed constructs (undefined variables, type errors) are left
// for the compiler to report and simply skipped here.
Report analyze(const swift::Program& program);

}  // namespace ilps::analysis
