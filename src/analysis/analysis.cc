#include "analysis/analysis.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace ilps::analysis {

namespace {

using swift::Expr;
using swift::FunctionDef;
using swift::Program;
using swift::Stmt;
using swift::StmtP;

// Write counts saturate here: 0 = never, 1 = once, 2 = more than once.
constexpr int kMany = 2;

int bump(int count) { return std::min(kMany, count + 1); }
int first_line(int a, int b) { return a != 0 ? a : b; }

struct VarDecl {
  std::string name;
  int line = 0;
  bool is_array = false;
  bool is_input = false;
  bool is_output = false;
  bool synthetic = false;  // loop variables: assigned by the runtime
  int input_index = -1;
  int loop_depth = 0;  // foreach nesting at the declaration site
};

// The mutable dataflow facts; snapshot/merged around branches and loops.
struct VarState {
  int min_writes = 0;  // assignments on every path
  int max_writes = 0;  // assignments on some path
  bool read = false;
  bool dw_reported = false;
  int first_read_line = 0;
  int first_write_line = 0;
  // Input parameters the (single definite) assignment transitively
  // requires. Only trusted when deps_valid; an empty set is always safe
  // (the analysis under-approximates true requirements, see header).
  std::set<size_t> dep_inputs;
  bool deps_valid = false;
};

// What a composite (or leaf) function does to its outputs, as seen from a
// call site.
struct Summary {
  bool is_leaf = false;
  size_t n_inputs = 0;
  std::vector<int> out_min;
  std::vector<int> out_max;
  std::vector<std::set<size_t>> out_deps;  // input indices, true requirements
};

// One statement's contribution to the block-level wait graph: `writes`
// are scalars this statement definitely closes, `reads` are scalars that
// closure truly waits on. Arrays never appear (their closure goes through
// write-refcounts the analysis cannot bound).
struct Node {
  int line = 0;
  std::set<int> reads;
  std::set<int> writes;
};

void merge_into(std::set<int>& dst, const std::set<int>& src) {
  dst.insert(src.begin(), src.end());
}

class Analyzer {
 public:
  explicit Analyzer(const Program& prog) : prog_(prog) {
    for (const auto& fn : prog.functions) functions_.emplace(fn.name, &fn);
  }

  Report run();

  const FunctionDef* function(const std::string& name) const {
    auto it = functions_.find(name);
    return it == functions_.end() ? nullptr : it->second;
  }

  Summary summary(const std::string& name);

  void diag(Severity sev, DiagKind kind, int line, std::string var, std::string message) {
    diagnostics_.push_back({sev, kind, line, std::move(var), std::move(message)});
  }

 private:
  const Program& prog_;
  std::map<std::string, const FunctionDef*> functions_;
  std::map<std::string, Summary> summaries_;
  std::set<std::string> in_progress_;
  std::vector<Diagnostic> diagnostics_;
};

// Per-function (or main) dataflow walk. Declarations accumulate in
// decls_/state_ for the whole context; the scope stack only affects name
// resolution, so branch-local variables keep their facts for the
// end-of-context checks.
class Context {
 public:
  Context(Analyzer& an, std::string where) : an_(an), where_(std::move(where)) {
    scopes_.push_back({});
  }

  void enter_function(const FunctionDef& fn) {
    for (const auto& p : fn.outputs) {
      int idx = declare(p.name, fn.line, /*is_array=*/false);
      if (idx >= 0) decls_[static_cast<size_t>(idx)].is_output = true;
    }
    int in_k = 0;
    for (const auto& p : fn.inputs) {
      int idx = declare(p.name, fn.line, /*is_array=*/false);
      if (idx < 0) continue;
      decls_[static_cast<size_t>(idx)].is_input = true;
      decls_[static_cast<size_t>(idx)].input_index = in_k++;
      // The caller provides and (eventually) closes inputs.
      state_[static_cast<size_t>(idx)].min_writes = 1;
      state_[static_cast<size_t>(idx)].max_writes = 1;
    }
  }

  void analyze_block(const std::vector<StmtP>& stmts);
  void finish();
  Summary extract_summary(const FunctionDef& fn) const;

 private:
  // ---- variable table ----

  int declare(const std::string& name, int line, bool is_array, bool synthetic = false) {
    int idx = static_cast<int>(decls_.size());
    VarDecl d;
    d.name = name;
    d.line = line;
    d.is_array = is_array;
    d.synthetic = synthetic;
    d.loop_depth = loop_depth_;
    decls_.push_back(std::move(d));
    state_.emplace_back();
    scopes_.back()[name] = idx;  // shadowing: innermost wins, compiler rejects same-scope dups
    return idx;
  }

  int lookup(const std::string& name) const {
    for (size_t s = scopes_.size(); s-- > 0;) {
      auto it = scopes_[s].find(name);
      if (it != scopes_[s].end()) return it->second;
    }
    return -1;
  }

  void mark_read(int idx, int line) {
    VarState& st = state_[static_cast<size_t>(idx)];
    st.read = true;
    if (st.first_read_line == 0) st.first_read_line = line;
  }

  // Maps a wait set (var indices) to the input parameters those waits
  // truly require.
  std::set<size_t> input_deps_of(const std::set<int>& waits) const {
    std::set<size_t> out;
    for (int w : waits) {
      const VarDecl& d = decls_[static_cast<size_t>(w)];
      const VarState& st = state_[static_cast<size_t>(w)];
      if (d.is_input) {
        out.insert(static_cast<size_t>(d.input_index));
      } else if (st.deps_valid) {
        out.insert(st.dep_inputs.begin(), st.dep_inputs.end());
      }
    }
    return out;
  }

  void diag(Severity sev, DiagKind kind, int line, const std::string& var, std::string msg) {
    an_.diag(sev, kind, line, var, std::move(msg) + where_);
  }

  // ---- writes ----

  // Records an assignment to `idx`. `definite` = the statement, when it
  // executes, is guaranteed to store; `possible` = it can store at all
  // (false when a composite never assigns that output). Conditional
  // execution is cond_depth_'s job, resolved by the branch merges.
  void apply_write(int idx, int line, const std::set<int>& waits, bool definite,
                   bool possible) {
    if (!possible) return;
    VarDecl& d = decls_[static_cast<size_t>(idx)];
    VarState& st = state_[static_cast<size_t>(idx)];
    if (d.is_array) {  // container insert: counts only feed warnings
      if (cond_depth_ == 0 && definite) st.min_writes = bump(st.min_writes);
      st.max_writes = bump(st.max_writes);
      if (st.first_write_line == 0) st.first_write_line = line;
      return;
    }
    if (d.is_input) {
      // Writing a parameter stores into the caller's datum; whether that
      // collides depends on the caller, so this cannot be a hard error.
      diag(Severity::kWarning, DiagKind::kMaybeDoubleWrite, line, d.name,
           "input parameter \"" + d.name + "\" is assigned (line " + std::to_string(line) +
               "); a write-once violation if the caller also assigns it");
    } else if (definite && cond_depth_ == 0 && st.min_writes >= 1) {
      if (!st.dw_reported) {
        st.dw_reported = true;
        diag(Severity::kError, DiagKind::kDoubleWrite, line, d.name,
             "variable \"" + d.name + "\" is assigned more than once (lines " +
                 std::to_string(st.first_write_line) + " and " + std::to_string(line) +
                 "); futures are single-assignment");
      }
    } else if (st.max_writes >= 1 && !st.dw_reported) {
      diag(Severity::kWarning, DiagKind::kMaybeDoubleWrite, line, d.name,
           "variable \"" + d.name + "\" may be assigned more than once (lines " +
               std::to_string(st.first_write_line) + " and " + std::to_string(line) + ")");
    } else if (d.loop_depth < loop_depth_ && !d.synthetic) {
      diag(Severity::kWarning, DiagKind::kMaybeDoubleWrite, line, d.name,
           "variable \"" + d.name + "\" (declared outside the loop at line " +
               std::to_string(d.line) + ") is assigned inside a foreach body (line " +
               std::to_string(line) + "); every iteration assigns it again");
    }
    bool first_ever = st.max_writes == 0;
    if (definite) st.min_writes = bump(st.min_writes);
    st.max_writes = bump(st.max_writes);
    if (st.first_write_line == 0) st.first_write_line = line;
    if (first_ever && definite) {
      st.dep_inputs = input_deps_of(waits);
      st.deps_valid = true;
    } else {
      st.deps_valid = false;
    }
  }

  // ---- expressions ----

  // Marks every variable in `e` as read; returns the scalar vars the
  // computed value truly waits on (dependency-accurate through composite
  // calls: an under-approximation, so wait-cycle edges are never false).
  std::set<int> walk_expr(const Expr& e) {
    std::set<int> waits;
    switch (e.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kFloatLit:
      case Expr::Kind::kStringLit:
      case Expr::Kind::kBoolLit:
        break;
      case Expr::Kind::kVar: {
        int idx = lookup(e.name);
        if (idx >= 0) {
          mark_read(idx, e.line);
          if (!decls_[static_cast<size_t>(idx)].is_array) waits.insert(idx);
        }
        break;
      }
      case Expr::Kind::kIndex: {
        int idx = lookup(e.name);
        if (idx >= 0) mark_read(idx, e.line);  // container read: no wait edge
        if (e.a) merge_into(waits, walk_expr(*e.a));
        break;
      }
      case Expr::Kind::kUnary:
        if (e.a) merge_into(waits, walk_expr(*e.a));
        break;
      case Expr::Kind::kBinary:
        if (e.a) merge_into(waits, walk_expr(*e.a));
        if (e.b) merge_into(waits, walk_expr(*e.b));
        break;
      case Expr::Kind::kCall: {
        std::vector<std::set<int>> arg_waits;
        arg_waits.reserve(e.args.size());
        for (const auto& arg : e.args) arg_waits.push_back(walk_expr(*arg));
        const FunctionDef* fn = an_.function(e.name);
        if (fn != nullptr && !fn->is_leaf && fn->outputs.size() == 1) {
          // The value waits only on the inputs the callee's output needs.
          Summary sum = an_.summary(e.name);
          if (!sum.out_deps.empty()) {
            for (size_t k : sum.out_deps[0]) {
              if (k < arg_waits.size()) merge_into(waits, arg_waits[k]);
            }
          }
        } else {
          // Leafs and builtins wait on every argument.
          for (const auto& aw : arg_waits) merge_into(waits, aw);
        }
        break;
      }
    }
    return waits;
  }

  // ---- statements ----

  // A scalar assignment from an arbitrary value expression.
  void assign_value(int idx, int line, const Expr& value, std::vector<Node>& nodes) {
    const FunctionDef* fn =
        value.kind == Expr::Kind::kCall ? an_.function(value.name) : nullptr;
    if (fn != nullptr) {
      apply_user_call(value, *fn, {idx}, line, nodes);
      return;
    }
    std::set<int> waits = walk_expr(value);
    apply_write(idx, line, waits, /*definite=*/true, /*possible=*/true);
    if (!decls_[static_cast<size_t>(idx)].is_array) {
      nodes.push_back({line, std::move(waits), {idx}});
    }
  }

  // A statement-level call to a user function; targets[k] is the resolved
  // variable index of output k, or -1 when discarded/unresolvable.
  void apply_user_call(const Expr& call, const FunctionDef& fn, std::vector<int> targets,
                       int line, std::vector<Node>& nodes) {
    std::vector<std::set<int>> arg_waits;
    arg_waits.reserve(call.args.size());
    for (const auto& arg : call.args) arg_waits.push_back(walk_expr(*arg));
    if (call.args.size() != fn.inputs.size() || targets.size() != fn.outputs.size()) {
      return;  // arity mismatch: the compiler reports it
    }
    Summary sum = an_.summary(fn.name);
    for (size_t k = 0; k < targets.size(); ++k) {
      int idx = targets[k];
      if (idx < 0 || decls_[static_cast<size_t>(idx)].is_array) continue;
      std::set<int> waits;
      if (sum.is_leaf) {
        for (const auto& aw : arg_waits) merge_into(waits, aw);
      } else if (k < sum.out_deps.size()) {
        for (size_t j : sum.out_deps[k]) {
          if (j < arg_waits.size()) merge_into(waits, arg_waits[j]);
        }
      }
      bool definite = k < sum.out_min.size() && sum.out_min[k] > 0;
      bool possible = k < sum.out_max.size() && sum.out_max[k] > 0;
      apply_write(idx, line, waits, definite, possible);
      if (definite) nodes.push_back({line, std::move(waits), {idx}});
    }
  }

  void analyze_stmt(const Stmt& s, std::vector<Node>& nodes);

  // ---- branch/loop state merging ----

  void merge_loop(const std::vector<VarState>& base) {
    for (size_t i = 0; i < base.size(); ++i) {
      VarState& st = state_[i];
      // The body may run zero times: only "may write" survives.
      st.min_writes = base[i].min_writes;
      if (st.max_writes > base[i].max_writes) st.deps_valid = false;
    }
  }

  void merge_if(int line, const std::set<int>& cond_waits,
                const std::vector<VarState>& base, const std::vector<VarState>& then_state,
                Node& node) {
    std::set<size_t> cond_deps = input_deps_of(cond_waits);
    for (size_t i = 0; i < base.size(); ++i) {
      const VarState& a = then_state[i];
      const VarState& b = state_[i];  // else branch's final state
      VarState m;
      m.min_writes = std::min(a.min_writes, b.min_writes);
      m.max_writes = std::max(a.max_writes, b.max_writes);
      m.read = a.read || b.read;
      m.dw_reported = a.dw_reported || b.dw_reported;
      m.first_read_line = first_line(a.first_read_line, b.first_read_line);
      m.first_write_line = first_line(a.first_write_line, b.first_write_line);
      const VarDecl& d = decls_[i];
      if (m.min_writes > base[i].min_writes && !d.is_array) {
        // Both branches assign: the if as a whole definitely closes it,
        // and firing either branch truly requires the condition.
        if (!d.synthetic && !d.is_input) node.writes.insert(static_cast<int>(i));
        m.dep_inputs = cond_deps;
        m.deps_valid = base[i].max_writes == 0;
        if (cond_depth_ == 0 && m.min_writes >= 2 && !m.dw_reported && !d.is_input) {
          m.dw_reported = true;
          diag(Severity::kError, DiagKind::kDoubleWrite, line, d.name,
               "variable \"" + d.name + "\" is assigned on every path more than once (line " +
                   std::to_string(line) + "); futures are single-assignment");
        }
      } else if (m.max_writes > base[i].max_writes) {
        m.deps_valid = false;  // a conditional write joined the picture
      } else {
        m.dep_inputs = base[i].dep_inputs;
        m.deps_valid = base[i].deps_valid;
      }
      state_[i] = std::move(m);
    }
  }

  // ---- wait cycles ----

  void check_cycles(const std::vector<Node>& nodes);

  Analyzer& an_;
  std::string where_;  // "" for main, " in function \"f\"" otherwise

  std::vector<VarDecl> decls_;
  std::vector<VarState> state_;
  std::vector<std::map<std::string, int>> scopes_;
  int cond_depth_ = 0;
  int loop_depth_ = 0;
};

void Context::analyze_block(const std::vector<StmtP>& stmts) {
  std::vector<Node> nodes;
  for (const auto& sp : stmts) {
    if (sp) analyze_stmt(*sp, nodes);
  }
  check_cycles(nodes);
}

void Context::analyze_stmt(const Stmt& s, std::vector<Node>& nodes) {
  switch (s.kind) {
    case Stmt::Kind::kDecl: {
      int idx = declare(s.name, s.line, s.is_array);
      if (s.value && !s.is_array) assign_value(idx, s.line, *s.value, nodes);
      return;
    }
    case Stmt::Kind::kAssign: {
      int idx = lookup(s.name);
      if (idx < 0 || decls_[static_cast<size_t>(idx)].is_array) {
        if (s.value) walk_expr(*s.value);  // compiler reports the real problem
        return;
      }
      if (s.value) assign_value(idx, s.line, *s.value, nodes);
      return;
    }
    case Stmt::Kind::kMultiAssign: {
      if (!s.value || s.value->kind != Expr::Kind::kCall) return;
      const FunctionDef* fn = an_.function(s.value->name);
      if (fn == nullptr) {
        walk_expr(*s.value);
        return;
      }
      std::vector<int> targets;
      targets.reserve(s.names.size());
      for (const auto& name : s.names) {
        int idx = lookup(name);
        targets.push_back(idx >= 0 && !decls_[static_cast<size_t>(idx)].is_array ? idx : -1);
      }
      apply_user_call(*s.value, *fn, std::move(targets), s.line, nodes);
      return;
    }
    case Stmt::Kind::kArrayAssign: {
      std::set<int> waits;
      if (s.index) merge_into(waits, walk_expr(*s.index));
      if (s.value) merge_into(waits, walk_expr(*s.value));
      int idx = lookup(s.name);
      if (idx >= 0 && decls_[static_cast<size_t>(idx)].is_array) {
        apply_write(idx, s.line, waits, /*definite=*/true, /*possible=*/true);
      }
      return;
    }
    case Stmt::Kind::kExprStmt: {
      if (!s.value || s.value->kind != Expr::Kind::kCall) return;
      const Expr& call = *s.value;
      const FunctionDef* fn = an_.function(call.name);
      if (fn == nullptr) {
        walk_expr(call);  // builtin (printf, trace, ...) or undefined
        return;
      }
      if (fn->is_leaf && !fn->outputs.empty()) {
        bool any_void = false;
        for (const auto& p : fn->outputs) any_void = any_void || p.type == swift::Type::kVoid;
        if (!any_void) {
          diag(Severity::kWarning, DiagKind::kUnusedValue, s.line, call.name,
               "every output of leaf task \"" + call.name + "\" is discarded (line " +
                   std::to_string(s.line) + "); the task still runs");
        }
      }
      apply_user_call(call, *fn, std::vector<int>(fn->outputs.size(), -1), s.line, nodes);
      return;
    }
    case Stmt::Kind::kForeach: {
      Node node;
      node.line = s.line;
      // The split rule waits only on the range bounds.
      for (const auto& bound : {s.from, s.to, s.step}) {
        if (bound) merge_into(node.reads, walk_expr(*bound));
      }
      std::vector<VarState> base = state_;
      ++cond_depth_;
      ++loop_depth_;
      scopes_.push_back({});
      int lv = declare(s.name, s.line, /*is_array=*/false, /*synthetic=*/true);
      state_[static_cast<size_t>(lv)].min_writes = 1;
      state_[static_cast<size_t>(lv)].max_writes = 1;
      analyze_block(s.body);
      scopes_.pop_back();
      --loop_depth_;
      --cond_depth_;
      merge_loop(base);
      nodes.push_back(std::move(node));
      return;
    }
    case Stmt::Kind::kForeachArray: {
      if (s.value && s.value->kind == Expr::Kind::kVar) {
        int arr = lookup(s.value->name);
        if (arr >= 0) mark_read(arr, s.value->line);  // split waits on the container
      } else if (s.value) {
        walk_expr(*s.value);
      }
      std::vector<VarState> base = state_;
      ++cond_depth_;
      ++loop_depth_;
      scopes_.push_back({});
      int vv = declare(s.name, s.line, /*is_array=*/false, /*synthetic=*/true);
      state_[static_cast<size_t>(vv)].min_writes = 1;
      state_[static_cast<size_t>(vv)].max_writes = 1;
      if (!s.index_name.empty()) {
        int iv = declare(s.index_name, s.line, /*is_array=*/false, /*synthetic=*/true);
        state_[static_cast<size_t>(iv)].min_writes = 1;
        state_[static_cast<size_t>(iv)].max_writes = 1;
      }
      analyze_block(s.body);
      scopes_.pop_back();
      --loop_depth_;
      --cond_depth_;
      merge_loop(base);
      return;
    }
    case Stmt::Kind::kIf: {
      Node node;
      node.line = s.line;
      std::set<int> cond_waits;
      if (s.value) cond_waits = walk_expr(*s.value);
      node.reads = cond_waits;
      std::vector<VarState> base = state_;
      ++cond_depth_;
      scopes_.push_back({});
      analyze_block(s.body);
      scopes_.pop_back();
      std::vector<VarState> then_state = state_;
      // Reset the shared prefix for the else walk; branch-local slots
      // beyond base keep their final (then) facts, the else branch cannot
      // touch them.
      for (size_t i = 0; i < base.size(); ++i) state_[i] = base[i];
      scopes_.push_back({});
      analyze_block(s.orelse);
      scopes_.pop_back();
      --cond_depth_;
      merge_if(s.line, cond_waits, base, then_state, node);
      nodes.push_back(std::move(node));
      return;
    }
  }
}

void Context::check_cycles(const std::vector<Node>& nodes) {
  // Definite writer per var (the first claim wins; double writes are
  // already their own error).
  std::map<int, int> writer;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int v : nodes[i].writes) writer.emplace(v, static_cast<int>(i));
  }
  if (writer.empty()) return;
  const int n = static_cast<int>(nodes.size());
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int v : nodes[static_cast<size_t>(i)].reads) {
      auto it = writer.find(v);
      if (it != writer.end()) adj[static_cast<size_t>(i)].push_back(it->second);
    }
  }

  // Tarjan SCC (blocks are small; recursion depth is bounded by them).
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  int counter = 0;

  auto strongconnect = [&](auto&& self, int v) -> void {
    index[static_cast<size_t>(v)] = low[static_cast<size_t>(v)] = counter++;
    stack.push_back(v);
    on_stack[static_cast<size_t>(v)] = true;
    for (int w : adj[static_cast<size_t>(v)]) {
      if (index[static_cast<size_t>(w)] < 0) {
        self(self, w);
        low[static_cast<size_t>(v)] =
            std::min(low[static_cast<size_t>(v)], low[static_cast<size_t>(w)]);
      } else if (on_stack[static_cast<size_t>(w)]) {
        low[static_cast<size_t>(v)] =
            std::min(low[static_cast<size_t>(v)], index[static_cast<size_t>(w)]);
      }
    }
    if (low[static_cast<size_t>(v)] != index[static_cast<size_t>(v)]) return;
    std::set<int> scc;
    while (true) {
      int w = stack.back();
      stack.pop_back();
      on_stack[static_cast<size_t>(w)] = false;
      scc.insert(w);
      if (w == v) break;
    }
    bool self_loop = false;
    for (int w : adj[static_cast<size_t>(v)]) self_loop = self_loop || w == v;
    if (scc.size() < 2 && !self_loop) return;

    std::set<int> lines;
    std::set<std::string> vars;
    for (int m : scc) {
      lines.insert(nodes[static_cast<size_t>(m)].line);
      for (int var : nodes[static_cast<size_t>(m)].reads) {
        auto it = writer.find(var);
        if (it != writer.end() && scc.count(it->second) > 0) {
          vars.insert(decls_[static_cast<size_t>(var)].name);
        }
      }
    }
    std::ostringstream msg;
    msg << "wait cycle: statement" << (lines.size() > 1 ? "s" : "") << " at line"
        << (lines.size() > 1 ? "s " : " ");
    bool first = true;
    for (int line : lines) {
      msg << (first ? "" : ", ") << line;
      first = false;
    }
    msg << " wait on each other's outputs (";
    first = true;
    for (const auto& name : vars) {
      msg << (first ? "" : ", ") << name;
      first = false;
    }
    msg << "); no rule can fire first";
    diag(Severity::kError, DiagKind::kWaitCycle, *lines.begin(),
         vars.empty() ? std::string() : *vars.begin(), msg.str());
  };
  for (int v = 0; v < n; ++v) {
    if (index[static_cast<size_t>(v)] < 0) strongconnect(strongconnect, v);
  }
}

void Context::finish() {
  for (size_t i = 0; i < decls_.size(); ++i) {
    const VarDecl& d = decls_[i];
    const VarState& st = state_[i];
    if (d.synthetic || d.is_input) continue;
    if (d.is_output) {
      if (st.max_writes == 0) {
        diag(Severity::kError, DiagKind::kUnassignedRead, d.line, d.name,
             "output \"" + d.name + "\" is never assigned (declared line " +
                 std::to_string(d.line) + "); every caller deadlocks");
      } else if (st.min_writes == 0) {
        diag(Severity::kWarning, DiagKind::kUnassignedRead, d.line, d.name,
             "output \"" + d.name + "\" may not be assigned on every path (declared line " +
                 std::to_string(d.line) + ")");
      }
      continue;
    }
    if (st.read && st.max_writes == 0) {
      if (d.is_array) {
        diag(Severity::kWarning, DiagKind::kUnassignedRead, st.first_read_line, d.name,
             "array \"" + d.name + "\" is read (line " + std::to_string(st.first_read_line) +
                 ") but never written; it is always empty");
      } else {
        diag(Severity::kError, DiagKind::kUnassignedRead, st.first_read_line, d.name,
             "variable \"" + d.name + "\" is read (line " +
                 std::to_string(st.first_read_line) + ") but never assigned (declared line " +
                 std::to_string(d.line) + "); a guaranteed deadlock");
      }
    } else if (!st.read) {
      diag(Severity::kWarning, DiagKind::kUnusedValue, d.line, d.name,
           (d.is_array ? "array \"" : "variable \"") + d.name + "\" (line " +
               std::to_string(d.line) + ") is never read");
    }
  }
}

Summary Context::extract_summary(const FunctionDef& fn) const {
  Summary s;
  s.n_inputs = fn.inputs.size();
  s.out_min.reserve(fn.outputs.size());
  for (size_t k = 0; k < fn.outputs.size() && k < decls_.size(); ++k) {
    const VarState& st = state_[k];  // outputs are the first declarations
    s.out_min.push_back(st.min_writes);
    s.out_max.push_back(st.max_writes);
    s.out_deps.push_back(st.deps_valid ? st.dep_inputs : std::set<size_t>{});
  }
  return s;
}

Summary Analyzer::summary(const std::string& name) {
  if (auto it = summaries_.find(name); it != summaries_.end()) return it->second;
  const FunctionDef* fn = function(name);
  if (fn == nullptr) return {};
  if (fn->is_leaf) {
    Summary s;
    s.is_leaf = true;
    s.n_inputs = fn->inputs.size();
    std::set<size_t> all_inputs;
    for (size_t j = 0; j < fn->inputs.size(); ++j) all_inputs.insert(j);
    s.out_min.assign(fn->outputs.size(), 1);
    s.out_max.assign(fn->outputs.size(), 1);
    s.out_deps.assign(fn->outputs.size(), all_inputs);  // one WORK rule, all inputs
    summaries_.emplace(name, s);
    return s;
  }
  if (!in_progress_.insert(name).second) {
    // Recursive call: an optimistic, never-memoized placeholder — may
    // assign (no false unassigned-read), never definitely (no false
    // double-write), claims no deps (no false cycle edge).
    Summary s;
    s.n_inputs = fn->inputs.size();
    s.out_min.assign(fn->outputs.size(), 0);
    s.out_max.assign(fn->outputs.size(), kMany);
    s.out_deps.assign(fn->outputs.size(), {});
    return s;
  }
  Context ctx(*this, " in function \"" + name + "\"");
  ctx.enter_function(*fn);
  ctx.analyze_block(fn->body);
  ctx.finish();
  Summary s = ctx.extract_summary(*fn);
  in_progress_.erase(name);
  summaries_.emplace(name, s);
  return s;
}

Report Analyzer::run() {
  // Analyze every composite exactly once (summary() memoizes), then main.
  for (const auto& fn : prog_.functions) {
    if (!fn.is_leaf) (void)summary(fn.name);
  }
  Context main_ctx(*this, "");
  main_ctx.analyze_block(prog_.main_statements);
  main_ctx.finish();

  // A maybe-double warning is noise once the same variable has a hard
  // double-write error.
  std::set<std::string> dw_errors;
  for (const auto& d : diagnostics_) {
    if (d.kind == DiagKind::kDoubleWrite) dw_errors.insert(d.var);
  }
  Report report;
  for (auto& d : diagnostics_) {
    if (d.kind == DiagKind::kMaybeDoubleWrite && dw_errors.count(d.var) > 0) continue;
    report.diagnostics.push_back(std::move(d));
  }
  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) { return a.line < b.line; });
  return report;
}

}  // namespace

bool Report::has_errors() const { return error_count() > 0; }

size_t Report::error_count() const {
  size_t n = 0;
  for (const auto& d : diagnostics) n += d.severity == Severity::kError ? 1 : 0;
  return n;
}

std::string Report::to_string() const {
  std::string out;
  for (const auto& d : diagnostics) {
    out += d.severity == Severity::kError ? "error: " : "warning: ";
    out += d.message;
    out += '\n';
  }
  return out;
}

std::string Report::error_summary() const {
  std::string out;
  for (const auto& d : diagnostics) {
    if (d.severity != Severity::kError) continue;
    if (!out.empty()) out += "\n  ";
    out += d.message;
  }
  return out;
}

Report analyze(const swift::Program& program) { return Analyzer(program).run(); }

}  // namespace ilps::analysis
