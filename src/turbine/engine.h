// The Turbine rule engine, run on engine ranks (Fig. 2 of the paper).
//
// A *rule* is the dataflow primitive: a set of input datum ids plus an
// action (a MiniTcl script). When every input is closed, the action is
// released — submitted to ADLB as a control task (runs on some engine), a
// work task (runs on a worker), or executed locally. Engines learn about
// closure through ADLB subscribe notifications, which arrive as targeted
// control tasks whose payload is the datum id.
//
// Serve multiplexing (src/serve): the engine tracks rules, subscriptions
// and symbol names per request namespace, and keeps a credit-based
// completion count for every request it owns:
//
//   active  = counted units in flight + queued local actions
//             + close notifications the engine has mailed to itself
//   pending = rules still waiting on unset inputs
//
// Every request-tagged unit is counted exactly once before it can leave
// its spawning rank (owner puts count locally; non-owner puts are counted
// by the first server via a spawn notice that, by eager-transport FIFO,
// reaches the owner before the unit's done notice). Consequently
// active == 0 proves nothing of the request is in flight anywhere, and:
//   active == 0 && pending == 0  ->  the request completed, or
//   active == 0 && pending  > 0  ->  the request is deadlocked,
// both detected deterministically with no polling or grace periods.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adlb/client.h"

namespace ilps::turbine {

// Where a released action runs. Values match ADLB work types.
enum class TaskType {
  kWork = adlb::kTypeWork,       // leaf task on a worker
  kControl = adlb::kTypeControl, // dataflow logic on an engine
  kLocal = -1,                   // immediately, on this engine
};

struct EngineStats {
  uint64_t rules_created = 0;
  uint64_t rules_fired = 0;
  uint64_t rules_fired_immediately = 0;  // all inputs already closed
  uint64_t notifications = 0;
  uint64_t subscribes = 0;
};

// One unset datum a stuck rule is waiting on. `name`/`line` come from the
// compiler-emitted symbol map (swift:alloc -> turbine::declare_name) and
// are empty/0 for temporaries the compiler did not register.
struct StuckInput {
  int64_t id = 0;
  std::string name;
  int line = 0;
};

// A rule still pending when termination fired: the deadlock diagnosis.
struct StuckRule {
  int64_t id = 0;
  std::string action;  // the MiniTcl action that never ran
  std::vector<StuckInput> waiting;
};

// A locally released action awaiting evaluation on this engine, tagged
// with the request it belongs to (0 = none).
struct LocalAction {
  int64_t req = 0;
  std::string action;
};

// How a request ended. Error text travels alongside; the kind restores
// the typed exception at the submission side.
enum class RequestErrorKind : uint8_t {
  kNone = 0,
  kDeadlock,  // rules left waiting on unset futures
  kData,      // DataError (double assignment, missing datum, ...)
  kScript,    // ScriptError / TclError
  kTask,      // a leaf task failed on a worker
  kOs,        // OsError (restricted-OS policy violation, ...)
  kGeneric,   // any other ilps::Error
};

// Everything the engine knows about a finished request, handed to the
// serve layer when the accounting proves completion.
struct RequestOutcome {
  int64_t req = 0;
  RequestErrorKind kind = RequestErrorKind::kNone;
  std::string error;
  uint64_t unfired_rules = 0;        // rules never released (deadlock)
  std::vector<StuckRule> stuck;      // their diagnosis, symbol-resolved
  uint64_t leftover_data = 0;        // filled by the serve layer after GC
  uint64_t stuck_datums = 0;
};

class Engine {
 public:
  explicit Engine(adlb::Client& client) : client_(client) {}

  // Registers a rule under the client's ambient request namespace.
  // Subscribes to unready inputs; if everything is already closed the
  // action is released at once. Local actions released synchronously are
  // queued on local_ready() rather than executed here, so the caller
  // controls reentrancy.
  void add_rule(const std::vector<int64_t>& inputs, std::string action, TaskType type,
                int target = adlb::kAnyRank, int priority = 0);

  // Handles a close notification for `id` (the payload of a notification
  // control task). Fires any rules that became ready.
  void notify_closed(int64_t id);

  // Actions of kLocal rules that became ready; the engine loop drains
  // this queue and evaluates each script, then calls local_done().
  std::deque<LocalAction>& local_ready() { return local_ready_; }

  // Rules still waiting on inputs (nonzero at shutdown means the program
  // deadlocked on unset data).
  size_t pending_rules() const { return rules_.size(); }

  // Symbol map: remembers that datum `id` backs source variable `name`
  // declared at `line` (registered by the compiled program's swift:alloc).
  void name_datum(int64_t id, std::string name, int line);

  // "variable \"x\" (line 3)" for a mapped datum, "" otherwise. Feeds the
  // client's DataError symbol hint.
  std::string describe_datum(int64_t id) const;

  // The quiescence diagnosis: every pending rule with the unset datum ids
  // it is waiting on, resolved through the symbol map where possible.
  // Meaningful once the run has terminated with pending_rules() > 0.
  std::vector<StuckRule> stuck_report() const;

  const EngineStats& stats() const { return stats_; }

  // ---- serve request accounting (this engine = the request's owner) ----

  // Marks the request begun (eligible for completion detection) and
  // records its program datum for released work units. Auto-creates the
  // tracker if counting signals arrived first.
  void begin_request(int64_t req, int64_t prog);

  // +1: a counted unit of `req` exists (local put or a server spawn
  // notice). Also wired as the client's on_spawned hook.
  void on_spawned(int64_t req);

  // -1: a counted unit finished evaluating (engine-local control task, or
  // a worker's done notice).
  void unit_done(int64_t req);

  // A store/close ACK reported `count` close notifications queued back to
  // this rank for datum `id`: they are in flight, so the request cannot
  // complete until notify_closed() consumes them. Wired as the client's
  // on_self_notify hook.
  void note_self_notify(int64_t req, int64_t id, uint32_t count);

  // One queued local action of `req` finished evaluating.
  void local_done(int64_t req);

  // Marks the request failed (first error wins). Outstanding units keep
  // draining; completion fires once active reaches zero.
  void fail_request(int64_t req, RequestErrorKind kind, std::string error);

  // Requests whose accounting has proven completion since the last call.
  // Check once per engine-loop iteration, after draining local actions.
  std::vector<int64_t> take_completed();

  // Builds the outcome and erases every trace of the request from the
  // engine (rules, watchers, closed-set, symbol map, notify credits).
  RequestOutcome finish_request(int64_t req);

  // Number of requests with live trackers (diagnostics).
  size_t inflight_requests() const { return requests_.size(); }

  // Program datum recorded by begin_request (0 if unknown/batch).
  int64_t request_prog(int64_t req) const {
    auto it = requests_.find(req);
    return it == requests_.end() ? 0 : it->second.prog;
  }

 private:
  struct Rule {
    int waiting = 0;
    std::string action;
    TaskType type;
    int target;
    int priority;
    int64_t req = 0;
  };

  struct RequestState {
    int64_t active = 0;
    int64_t pending = 0;
    int64_t prog = 0;
    bool begun = false;
    bool failed = false;
    RequestErrorKind kind = RequestErrorKind::kNone;
    std::string error;
  };

  void release(Rule&& rule);
  RequestState& state(int64_t req);
  // Records that `id` was touched under `req` so finish_request() can
  // clean the per-datum maps without a full scan.
  void touch(int64_t req, int64_t id);
  void mark_dirty(int64_t req);

  adlb::Client& client_;
  int64_t next_id_ = 1;
  std::unordered_map<int64_t, Rule> rules_;
  std::unordered_map<int64_t, std::vector<int64_t>> watchers_;  // datum -> rule ids
  std::unordered_set<int64_t> closed_;  // ids known closed (subscribe said so or notified)
  std::unordered_map<int64_t, StuckInput> names_;  // datum -> source symbol
  std::deque<LocalAction> local_ready_;
  EngineStats stats_;

  // ---- serve state ----
  std::unordered_map<int64_t, RequestState> requests_;
  std::unordered_map<int64_t, int64_t> datum_req_;  // datum -> request that touched it
  std::unordered_map<int64_t, std::vector<int64_t>> req_datums_;  // inverse, for cleanup
  // datum -> (req, in-flight self-notifications) credited by note_self_notify.
  std::unordered_map<int64_t, std::pair<int64_t, uint32_t>> self_notify_;
  std::unordered_set<int64_t> dirty_;  // requests whose counters moved
};

}  // namespace ilps::turbine
