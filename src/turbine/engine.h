// The Turbine rule engine, run on engine ranks (Fig. 2 of the paper).
//
// A *rule* is the dataflow primitive: a set of input datum ids plus an
// action (a MiniTcl script). When every input is closed, the action is
// released — submitted to ADLB as a control task (runs on some engine), a
// work task (runs on a worker), or executed locally. Engines learn about
// closure through ADLB subscribe notifications, which arrive as targeted
// control tasks whose payload is the datum id.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adlb/client.h"

namespace ilps::turbine {

// Where a released action runs. Values match ADLB work types.
enum class TaskType {
  kWork = adlb::kTypeWork,       // leaf task on a worker
  kControl = adlb::kTypeControl, // dataflow logic on an engine
  kLocal = -1,                   // immediately, on this engine
};

struct EngineStats {
  uint64_t rules_created = 0;
  uint64_t rules_fired = 0;
  uint64_t rules_fired_immediately = 0;  // all inputs already closed
  uint64_t notifications = 0;
  uint64_t subscribes = 0;
};

// One unset datum a stuck rule is waiting on. `name`/`line` come from the
// compiler-emitted symbol map (swift:alloc -> turbine::declare_name) and
// are empty/0 for temporaries the compiler did not register.
struct StuckInput {
  int64_t id = 0;
  std::string name;
  int line = 0;
};

// A rule still pending when termination fired: the deadlock diagnosis.
struct StuckRule {
  int64_t id = 0;
  std::string action;  // the MiniTcl action that never ran
  std::vector<StuckInput> waiting;
};

class Engine {
 public:
  explicit Engine(adlb::Client& client) : client_(client) {}

  // Registers a rule. Subscribes to unready inputs; if everything is
  // already closed the action is released at once. Local actions released
  // synchronously are queued on local_ready() rather than executed here,
  // so the caller controls reentrancy.
  void add_rule(const std::vector<int64_t>& inputs, std::string action, TaskType type,
                int target = adlb::kAnyRank, int priority = 0);

  // Handles a close notification for `id` (the payload of a notification
  // control task). Fires any rules that became ready.
  void notify_closed(int64_t id);

  // Actions of kLocal rules that became ready; the engine loop drains
  // this queue and evaluates each script.
  std::deque<std::string>& local_ready() { return local_ready_; }

  // Rules still waiting on inputs (nonzero at shutdown means the program
  // deadlocked on unset data).
  size_t pending_rules() const { return rules_.size(); }

  // Symbol map: remembers that datum `id` backs source variable `name`
  // declared at `line` (registered by the compiled program's swift:alloc).
  void name_datum(int64_t id, std::string name, int line);

  // "variable \"x\" (line 3)" for a mapped datum, "" otherwise. Feeds the
  // client's DataError symbol hint.
  std::string describe_datum(int64_t id) const;

  // The quiescence diagnosis: every pending rule with the unset datum ids
  // it is waiting on, resolved through the symbol map where possible.
  // Meaningful once the run has terminated with pending_rules() > 0.
  std::vector<StuckRule> stuck_report() const;

  const EngineStats& stats() const { return stats_; }

 private:
  struct Rule {
    int waiting = 0;
    std::string action;
    TaskType type;
    int target;
    int priority;
  };

  void release(Rule&& rule);

  adlb::Client& client_;
  int64_t next_id_ = 1;
  std::unordered_map<int64_t, Rule> rules_;
  std::unordered_map<int64_t, std::vector<int64_t>> watchers_;  // datum -> rule ids
  std::unordered_set<int64_t> closed_;  // ids known closed (subscribe said so or notified)
  std::unordered_map<int64_t, StuckInput> names_;  // datum -> source symbol
  std::deque<std::string> local_ready_;
  EngineStats stats_;
};

}  // namespace ilps::turbine
