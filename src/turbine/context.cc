#include "turbine/context.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "turbine/app.h"

namespace ilps::turbine {

namespace {

int64_t want_id(const std::string& s) {
  auto id = str::parse_int(s);
  if (!id) throw tcl::TclError("turbine: expected a datum id, got \"" + s + "\"");
  return *id;
}

adlb::DataType want_type(const std::string& s) {
  auto t = adlb::data_type_from_name(s);
  if (!t) throw tcl::TclError("turbine: unknown data type \"" + s + "\"");
  return *t;
}

// Maps a caught Error to the typed kind a request outcome carries, so the
// submission side can rethrow the same exception type. TclError derives
// from ScriptError, so both classify as kScript.
RequestErrorKind classify_error(const Error& e) {
  if (dynamic_cast<const DataError*>(&e) != nullptr) return RequestErrorKind::kData;
  if (dynamic_cast<const TaskError*>(&e) != nullptr) return RequestErrorKind::kTask;
  if (dynamic_cast<const OsError*>(&e) != nullptr) return RequestErrorKind::kOs;
  if (dynamic_cast<const ScriptError*>(&e) != nullptr) return RequestErrorKind::kScript;
  return RequestErrorKind::kGeneric;
}

}  // namespace

Context::Context(adlb::Client& client, Engine* engine, const ContextConfig& cfg)
    : client_(client), engine_(engine), cfg_(cfg) {
  interp_.set_puts_handler([this](std::string_view text, bool newline) {
    std::string line(text);
    if (newline) line += '\n';
    emit(line);
  });
  register_commands();
  // On engine ranks, data errors name the source variable behind the
  // offending id via the compiler's symbol map.
  if (engine_ != nullptr) {
    Engine* engine = engine_;
    client_.set_symbol_hint([engine](int64_t id) { return engine->describe_datum(id); });
    // Owner-engine request accounting: +1 when a request-tagged unit is
    // counted at put time, +n when a store ACK reports close
    // notifications queued back to this very rank. Both hooks are inert
    // while no request scope is active (all of legacy/batch mode).
    client_.set_serve_hooks(
        [engine](int64_t req) { engine->on_spawned(req); },
        [engine](int64_t req, int64_t id, uint32_t n) { engine->note_self_notify(req, id, n); });
  }
  blob::register_blobutils(interp_, blobs_);
  if (cfg_.setup_interp) cfg_.setup_interp(interp_);
  if (cfg_.setup_bindings) cfg_.setup_bindings(interp_, blobs_);
  if (const char* e = std::getenv("ILPS_TCL_UNIT_CACHE")) {
    if (auto n = str::parse_int(e); n && *n > 0) unit_cap_ = static_cast<size_t>(*n);
  }
}

std::string Context::exec_action(const std::string& script) {
  if (!interp_.compile_enabled()) return interp_.eval(script);
  // FNV-1a over the action text: the unit key. Same text -> same unit on
  // this rank, no matter which request or program shipped it.
  uint64_t h = 1469598103934665603ull;
  for (char c : script) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  auto it = unit_map_.find(h);
  if (it != unit_map_.end() && it->second->source == script) {
    unit_lru_.splice(unit_lru_.begin(), unit_lru_, it->second);
    ++interp_.compile_stats().hits;
    // Keep the unit alive across exec: a recursive exec_action (an action
    // that evals further actions) may evict this entry meanwhile.
    std::shared_ptr<const tcl::CompiledUnit> unit = unit_lru_.front().unit;
    return interp_.exec(*unit);
  }
  std::shared_ptr<const tcl::CompiledUnit> unit = interp_.compile(script);
  if (it != unit_map_.end()) {
    // Hash collision with different source: replace the stale entry.
    it->second->source = script;
    it->second->unit = unit;
    unit_lru_.splice(unit_lru_.begin(), unit_lru_, it->second);
  } else {
    unit_lru_.push_front(UnitEntry{h, script, unit});
    unit_map_[h] = unit_lru_.begin();
    if (unit_lru_.size() > unit_cap_) {
      unit_map_.erase(unit_lru_.back().hash);
      unit_lru_.pop_back();
    }
  }
  return interp_.exec(*unit);
}

void Context::emit(const std::string& line) {
  if (cfg_.serve_output) {
    cfg_.serve_output(cur_req_, client_.rank(), line);
  } else if (cfg_.output) {
    cfg_.output(client_.rank(), line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stdout);
  }
}

py::Interpreter& Context::python() {
  if (!python_) {
    python_ = std::make_unique<py::Interpreter>();
    python_->set_print_handler([this](const std::string& s) { emit(s + "\n"); });
  }
  return *python_;
}

r::Interpreter& Context::rlang() {
  if (!rlang_) {
    rlang_ = std::make_unique<r::Interpreter>();
    rlang_->set_output_handler([this](const std::string& s) { emit(s); });
  }
  return *rlang_;
}

void Context::end_task() {
  if (cfg_.policy == InterpPolicy::kReinitialize) {
    if (python_) {
      python_->reset();
      ++stats_.interpreter_resets;
    }
    if (rlang_) {
      rlang_->reset();
      ++stats_.interpreter_resets;
    }
  }
}

// ---- the turbine::* Tcl library ----

void Context::register_commands() {
  using Args = std::vector<std::string>;
  auto& in = interp_;
  Context* ctx = this;

  // -- identity --
  in.register_command("turbine::rank", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 0, 0, "");
    return std::to_string(ctx->client_.rank());
  });
  in.register_command("turbine::is_engine", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 0, 0, "");
    return std::string(ctx->engine_ != nullptr ? "1" : "0");
  });

  // -- data allocation --
  in.register_command("turbine::unique", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 0, 0, "");
    return std::to_string(ctx->client_.unique());
  });
  in.register_command("turbine::create", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "id type");
    ctx->client_.create(want_id(a[1]), want_type(a[2]));
    return std::string();
  });
  // Convenience per-type creators; `turbine::allocate type` also returns
  // a fresh id.
  for (const char* type_name :
       {"integer", "float", "string", "blob", "void", "container", "file"}) {
    std::string cmd = std::string("turbine::create_") + type_name;
    adlb::DataType type = *adlb::data_type_from_name(type_name);
    in.register_command(cmd, [ctx, type](tcl::Interp&, Args& a) {
      tcl::check_arity(a, 1, 1, "id");
      ctx->client_.create(want_id(a[1]), type);
      return std::string();
    });
  }
  in.register_command("turbine::allocate", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "type");
    int64_t id = ctx->client_.unique();
    ctx->client_.create(id, want_type(a[1]));
    return std::to_string(id);
  });
  // Symbol map for stuck-future reports: the compiled program registers
  // each named variable's datum id with its source name and line. A no-op
  // on ranks without an engine (workers evaluate the same prelude).
  in.register_command("turbine::declare_name", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 3, 3, "id name line");
    if (ctx->engine_ != nullptr) {
      ctx->engine_->name_datum(want_id(a[1]), a[2], static_cast<int>(want_id(a[3])));
    }
    return std::string();
  });

  // -- store --
  in.register_command("turbine::store_integer", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "id value");
    auto v = str::parse_int(a[2]);
    if (!v) throw tcl::TclError("store_integer: \"" + a[2] + "\" is not an integer");
    ctx->client_.store(want_id(a[1]), std::to_string(*v));
    return std::string();
  });
  in.register_command("turbine::store_float", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "id value");
    auto v = str::parse_double(a[2]);
    if (!v) throw tcl::TclError("store_float: \"" + a[2] + "\" is not a number");
    ctx->client_.store(want_id(a[1]), str::format_double(*v));
    return std::string();
  });
  in.register_command("turbine::store_string", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "id value");
    ctx->client_.store(want_id(a[1]), a[2]);
    return std::string();
  });
  in.register_command("turbine::store_blob", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "id blobHandle");
    ctx->client_.store(want_id(a[1]), ctx->blobs_.get(a[2]).to_string());
    return std::string();
  });
  in.register_command("turbine::store_void", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "id");
    ctx->client_.close(want_id(a[1]));
    return std::string();
  });

  // -- retrieve --
  auto retrieve = [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "id");
    return ctx->client_.retrieve(want_id(a[1]));
  };
  in.register_command("turbine::retrieve", retrieve);
  in.register_command("turbine::retrieve_integer", retrieve);
  in.register_command("turbine::retrieve_float", retrieve);
  in.register_command("turbine::retrieve_string", retrieve);
  // One RPC per owning server for a whole list of ids; returns the values
  // as a Tcl list in input order. Rule bodies with several input futures
  // use this instead of a retrieve loop.
  in.register_command("turbine::multi_retrieve", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "idList");
    std::vector<int64_t> ids;
    for (const auto& tok : tcl::list_split(a[1])) ids.push_back(want_id(tok));
    return tcl::list_join(ctx->client_.multi_retrieve(ids));
  });
  in.register_command("turbine::retrieve_blob", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "id");
    // Zero copy: the blob aliases the retrieve reply (or the cached
    // bytes) until some binding mutates it.
    return ctx->blobs_.insert(blob::Blob::from_view(ctx->client_.retrieve_view(want_id(a[1]))));
  });
  in.register_command("turbine::exists", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "id");
    return std::string(ctx->client_.exists(want_id(a[1])) ? "1" : "0");
  });
  in.register_command("turbine::typeof", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "id");
    return std::string(adlb::data_type_name(ctx->client_.type_of(want_id(a[1]))));
  });
  in.register_command("turbine::close", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "id");
    ctx->client_.close(want_id(a[1]));
    return std::string();
  });

  // -- refcounts --
  in.register_command("turbine::read_incr", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "id delta");
    ctx->client_.ref_incr(want_id(a[1]), static_cast<int>(want_id(a[2])));
    return std::string();
  });
  in.register_command("turbine::write_incr", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "id delta");
    ctx->client_.write_incr(want_id(a[1]), static_cast<int>(want_id(a[2])));
    return std::string();
  });

  // -- containers --
  in.register_command("turbine::container_insert", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 3, 3, "id key value");
    ctx->client_.insert(want_id(a[1]), a[2], a[3]);
    return std::string();
  });
  in.register_command("turbine::container_lookup", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "id key");
    auto v = ctx->client_.lookup(want_id(a[1]), a[2]);
    if (!v) throw tcl::TclError("container <" + a[1] + "> has no key \"" + a[2] + "\"");
    return *v;
  });
  in.register_command("turbine::container_size", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "id");
    return std::to_string(ctx->client_.enumerate(want_id(a[1])).size());
  });
  in.register_command("turbine::enumerate", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "id");
    std::vector<std::string> flat;
    for (const auto& [k, v] : ctx->client_.enumerate(want_id(a[1]))) {
      flat.push_back(k);
      flat.push_back(v);
    }
    return tcl::list_join(flat);
  });

  // -- rules and tasks --
  in.register_command("turbine::rule", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, -1, "inputs action ?type TYPE? ?target RANK? ?priority P?");
    if (ctx->engine_ == nullptr) {
      throw tcl::TclError("turbine::rule: rules may only be created on engine ranks");
    }
    std::vector<int64_t> inputs;
    for (const auto& tok : tcl::list_split(a[1])) inputs.push_back(want_id(tok));
    TaskType type = TaskType::kWork;
    int target = adlb::kAnyRank;
    int priority = 0;
    for (size_t i = 3; i < a.size(); i += 2) {
      if (i + 1 >= a.size()) throw tcl::TclError("turbine::rule: option needs a value");
      const std::string& opt = a[i];
      const std::string& val = a[i + 1];
      if (opt == "type") {
        std::string upper = str::to_upper(val);
        if (upper == "WORK") {
          type = TaskType::kWork;
        } else if (upper == "CONTROL") {
          type = TaskType::kControl;
        } else if (upper == "LOCAL") {
          type = TaskType::kLocal;
        } else {
          throw tcl::TclError("turbine::rule: unknown type \"" + val + "\"");
        }
      } else if (opt == "target") {
        target = static_cast<int>(want_id(val));
      } else if (opt == "priority") {
        priority = static_cast<int>(want_id(val));
      } else {
        throw tcl::TclError("turbine::rule: unknown option \"" + opt + "\"");
      }
    }
    ctx->engine_->add_rule(inputs, a[2], type, target, priority);
    return std::string();
  });
  in.register_command("turbine::put_control", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 2, "action ?priority?");
    adlb::WorkUnit unit;
    unit.type = adlb::kTypeControl;
    unit.payload = a[1];
    if (a.size() > 2) unit.priority = static_cast<int>(want_id(a[2]));
    ctx->client_.put(unit);
    return std::string();
  });
  in.register_command("turbine::put_work", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 2, "action ?priority?");
    adlb::WorkUnit unit;
    unit.type = adlb::kTypeWork;
    unit.payload = a[1];
    if (a.size() > 2) unit.priority = static_cast<int>(want_id(a[2]));
    ctx->client_.put(unit);
    return std::string();
  });
  in.register_command("turbine::put_work_to", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "targetRank action");
    adlb::WorkUnit unit;
    unit.type = adlb::kTypeWork;
    unit.target = static_cast<int>(want_id(a[1]));
    unit.payload = a[2];
    ctx->client_.put(unit);
    return std::string();
  });

  // -- interlanguage leaf functions (§III of the paper) --
  in.register_command("python", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 2, "code ?expr?");
    ++ctx->stats_.python_evals;
    try {
      return ctx->python().eval(a[1], a.size() > 2 ? a[2] : "");
    } catch (const py::PyError& e) {
      throw tcl::TclError(std::string("python: ") + e.what());
    }
  });
  in.register_command("R", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 2, "code ?expr?");
    ++ctx->stats_.r_evals;
    try {
      if (a.size() > 2) return ctx->rlang().eval(a[1], a[2]);
      return ctx->rlang().eval(a[1]);
    } catch (const r::RError& e) {
      throw tcl::TclError(std::string("R: ") + e.what());
    }
  });
  in.register_command("r", [ctx](tcl::Interp& in2, Args& a) {
    // Alias for R.
    a[0] = "R";
    return in2.invoke(a);
  });
  in.register_command("turbine::exec_app", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, -1, "command ?arg ...?");
    ++ctx->stats_.app_execs;
    std::vector<std::string> argv(a.begin() + 1, a.end());
    AppResult result = run_app(argv, ctx->cfg_.restricted_os);
    if (result.exit_code != 0) {
      throw tcl::TclError("app: command \"" + argv[0] + "\" exited with code " +
                          std::to_string(result.exit_code));
    }
    // Trim one trailing newline, like shell $(...).
    if (!result.output.empty() && result.output.back() == '\n') result.output.pop_back();
    return result.output;
  });

  // -- Swift built-ins implemented as thin Tcl (as the paper describes,
  //    these exist because exposing Tcl snippets to Swift is easy) --
  in.register_command("printf", [ctx](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, -1, "format ?arg ...?");
    std::vector<std::string> rest(a.begin() + 2, a.end());
    ctx->emit(str::printf_format(a[1], rest) + "\n");
    return std::string();
  });
  in.register_command("trace", [ctx](tcl::Interp&, Args& a) {
    std::vector<std::string> parts(a.begin() + 1, a.end());
    ctx->emit("trace: " + str::join(parts, ",") + "\n");
    return std::string();
  });
}

// ---- serve helpers ----

Context::ReqScope::ReqScope(Context& ctx, int64_t req, int owner, int64_t prog)
    : ctx_(ctx),
      prev_(ctx.client_.serve_ctx()),
      prev_req_(ctx.cur_req_),
      prev_thread_req_(log::thread_request()) {
  ctx_.client_.set_serve_ctx({req, owner, prog});
  ctx_.cur_req_ = req;
  log::set_thread_request(req);
}

Context::ReqScope::~ReqScope() {
  ctx_.client_.set_serve_ctx(prev_);
  ctx_.cur_req_ = prev_req_;
  log::set_thread_request(prev_thread_req_);
}

void Context::load_program(int64_t prog) {
  if (prog == 0 || !loaded_progs_.insert(prog).second) return;
  // The program text is pure proc definitions (the entry proc is invoked
  // by the request's seed script), so evaluating it has no data effects.
  interp_.eval(client_.retrieve(prog));
}

void Context::send_serve_notice(int64_t req, int owner, std::string payload) {
  adlb::WorkUnit notice;
  notice.type = adlb::kTypeControl;
  notice.target = owner;
  notice.payload = std::move(payload);
  notice.req = req;
  notice.owner = owner;
  notice.flags = adlb::kUnitServeCtl | adlb::kUnitCounted;
  // put() flushes buffered puts first, so any units this task spawned
  // reach the home server — and thus the owner — before this notice.
  client_.put(notice);
}

void Context::handle_serve_notice(const adlb::WorkUnit& unit) {
  const std::string& p = unit.payload;
  if (p == "+") {
    engine_->on_spawned(unit.req);
    return;
  }
  if (p == "-") {
    engine_->unit_done(unit.req);
    return;
  }
  if (!p.empty() && p[0] == 'E') {
    // "E<kind>:<message>": a remote rank failed a unit of this request.
    // The notice doubles as the unit's done signal (-1).
    RequestErrorKind kind = RequestErrorKind::kGeneric;
    std::string message = p.substr(1);
    size_t colon = p.find(':');
    if (colon != std::string::npos && colon > 1) {
      int k = 0;
      if (auto parsed = str::parse_int(p.substr(1, colon - 1))) k = static_cast<int>(*parsed);
      if (k > 0 && k <= static_cast<int>(RequestErrorKind::kGeneric)) {
        kind = static_cast<RequestErrorKind>(k);
      }
      message = p.substr(colon + 1);
    }
    engine_->fail_request(unit.req, kind, std::move(message));
    engine_->unit_done(unit.req);
  }
}

void Context::eval_for_request(int64_t req, int owner, int64_t prog, const std::string& script) {
  ReqScope scope(*this, req, owner, prog);
  try {
    exec_action(script);
  } catch (const Error& e) {
    // The request fails; the resident runtime does not. Outstanding units
    // keep draining and completion fires once the counts reach zero.
    engine_->fail_request(req, classify_error(e), e.what());
  }
}

void Context::sweep_completed() {
  if (!cfg_.serve_complete) return;
  for (int64_t req : engine_->take_completed()) {
    RequestOutcome out = engine_->finish_request(req);
    auto [leftover, stuck] = client_.free_namespace(req);
    out.leftover_data = leftover;
    out.stuck_datums = stuck;
    cfg_.serve_complete(std::move(out));
  }
}

// ---- rank loops ----

size_t Context::run_engine(const std::string& main_script) {
  if (engine_ == nullptr) throw Error("run_engine called without an Engine");
  if (!main_script.empty()) exec_action(main_script);

  // Live utilization: cumulative non-blocked seconds, published as a
  // gauge so the telemetry plane can report per-rank busy fractions while
  // the service runs (the trace-based table needs the run to end first).
  obs::Gauge* busy_gauge =
      obs::metrics_enabled()
          ? &obs::metrics().gauge("rank.busy_seconds.r" + std::to_string(client_.rank()))
          : nullptr;
  double busy_total = 0;

  auto drain_local = [this] {
    while (!engine_->local_ready().empty()) {
      LocalAction local = std::move(engine_->local_ready().front());
      engine_->local_ready().pop_front();
      if (local.req != 0) {
        eval_for_request(local.req, client_.rank(), engine_->request_prog(local.req),
                         local.action);
        engine_->local_done(local.req);
      } else {
        exec_action(local.action);
      }
    }
  };
  drain_local();
  sweep_completed();

  while (auto unit = client_.get(adlb::kTypeControl)) {
    const double started = busy_gauge != nullptr ? ilps::wtime() : 0;
    if ((unit->flags & adlb::kUnitServeCtl) != 0) {
      // Serve bookkeeping notice — C++ dispatch, never a task.
      handle_serve_notice(*unit);
    } else if (auto id = str::parse_int(unit->payload)) {
      // Notifications carry a bare datum id; rule actions are scripts.
      engine_->notify_closed(*id);
    } else if ((unit->flags & adlb::kUnitReqBegin) != 0) {
      // A request seed: this engine becomes the owner, loads the compiled
      // program, and runs its entry script as the request's first unit.
      engine_->begin_request(unit->req, unit->prog);
      ++stats_.tasks;
      {
        obs::RequestScope rscope(unit->req);
        obs::instant(obs::EventKind::kReqBegin, unit->req);
        obs::Span span(obs::EventKind::kTaskRun, unit->id);
        load_program(unit->prog);
        eval_for_request(unit->req, client_.rank(), unit->prog, unit->payload);
      }
      end_task();
      engine_->unit_done(unit->req);
    } else if (unit->req != 0) {
      // A request-tagged control action (owner affinity: it is ours).
      ++stats_.tasks;
      {
        obs::RequestScope rscope(unit->req);
        obs::Span span(obs::EventKind::kTaskRun, unit->id);
        load_program(unit->prog);
        eval_for_request(unit->req, client_.rank(), unit->prog, unit->payload);
      }
      end_task();
      engine_->unit_done(unit->req);
    } else {
      ++stats_.tasks;
      {
        obs::Span span(obs::EventKind::kTaskRun, unit->id);
        exec_action(unit->payload);
      }
      end_task();
    }
    drain_local();
    sweep_completed();
    if (busy_gauge != nullptr) {
      busy_total += ilps::wtime() - started;
      busy_gauge->set(busy_total);
    }
  }
  return engine_->pending_rules();
}

void Context::run_worker() {
  // Resolved once; the registry lookup takes a lock, the record does not.
  // task.seconds keeps both views: the exact (reservoir-capped) histogram
  // and the rolling window the live telemetry plane reads.
  obs::Histogram* task_seconds =
      obs::metrics_enabled() ? &obs::metrics().histogram("task.seconds") : nullptr;
  obs::WindowHistogram* task_seconds_window =
      obs::metrics_enabled() ? &obs::metrics().window_histogram("task.seconds") : nullptr;
  obs::Gauge* busy_gauge =
      obs::metrics_enabled()
          ? &obs::metrics().gauge("rank.busy_seconds.r" + std::to_string(client_.rank()))
          : nullptr;
  double busy_total = 0;
  while (auto unit = client_.get(adlb::kTypeWork)) {
    ++stats_.tasks;
    const double started = ilps::wtime();
    const bool serve = unit->req != 0;
    const auto account_busy = [&] {
      if (busy_gauge != nullptr) {
        busy_total += ilps::wtime() - started;
        busy_gauge->set(busy_total);
      }
    };
    try {
      {
        obs::RequestScope rscope(serve ? unit->req : 0);
        obs::Span span(obs::EventKind::kTaskRun, unit->id);
        if (serve) {
          load_program(unit->prog);
          ReqScope scope(*this, unit->req, unit->owner, unit->prog);
          exec_action(unit->payload);
        } else {
          exec_action(unit->payload);
        }
      }
      const double took = ilps::wtime() - started;
      if (task_seconds != nullptr) task_seconds->record(took);
      if (task_seconds_window != nullptr) task_seconds_window->record(took);
    } catch (const Error& e) {
      // A leaf-task failure is typed and attributed (rank, task id), not
      // a raw string on stdout. Under fault tolerance it goes back to the
      // server for retry; under serve it fails only its own request;
      // otherwise it fails the run as before.
      end_task();
      if (cfg_.ft) {
        client_.task_failed(*unit, e.what());
        account_busy();
        continue;
      }
      std::string message = "task <" + std::to_string(unit->id) + "> failed on rank " +
                            std::to_string(client_.rank()) + ": " + e.what();
      if (serve) {
        send_serve_notice(unit->req, unit->owner,
                          "E" + std::to_string(static_cast<int>(RequestErrorKind::kTask)) +
                              ":" + message);
        account_busy();
        continue;
      }
      throw TaskError(message);
    }
    end_task();
    if (serve) send_serve_notice(unit->req, unit->owner, "-");
    account_busy();
  }
}

}  // namespace ilps::turbine
