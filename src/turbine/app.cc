#include "turbine/app.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ilps::turbine {

AppResult run_app(const std::vector<std::string>& argv, bool restricted_os) {
  if (restricted_os) {
    throw OsError("app execution unavailable: this system does not support "
                  "launching external programs (restricted OS mode)");
  }
  if (argv.empty()) throw OsError("app: empty command line");

  int fds[2];
  if (pipe(fds) != 0) throw OsError(std::string("app: pipe failed: ") + std::strerror(errno));

  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    throw OsError(std::string("app: fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: stdout -> pipe.
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    execvp(cargv[0], cargv.data());
    _exit(127);
  }
  close(fds[1]);
  AppResult result;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) {
    result.output.append(buf, static_cast<size_t>(n));
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else {
    result.exit_code = -1;
  }
  return result;
}

}  // namespace ilps::turbine
