// External-program ("app") leaf tasks: the shell interface retained from
// Swift/K. Runs a command via fork/exec and captures stdout. The
// restricted-OS mode models machines like the Blue Gene/Q where compute
// nodes cannot fork — the situation that motivates embedded interpreters
// in the first place (§III.C).
#pragma once

#include <string>
#include <vector>

#include "common/error.h"

namespace ilps::turbine {

struct AppResult {
  int exit_code = 0;
  std::string output;  // captured stdout
};

// Executes argv[0] with the given arguments. Throws OsError if
// `restricted_os` is set (fork unavailable) or if the process cannot be
// spawned; a nonzero exit code is reported in the result, not thrown.
AppResult run_app(const std::vector<std::string>& argv, bool restricted_os);

}  // namespace ilps::turbine
