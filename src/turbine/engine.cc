#include "turbine/engine.h"

#include <algorithm>

#include "obs/trace.h"

namespace ilps::turbine {

Engine::RequestState& Engine::state(int64_t req) { return requests_[req]; }

void Engine::mark_dirty(int64_t req) {
  if (req != 0) dirty_.insert(req);
}

void Engine::touch(int64_t req, int64_t id) {
  if (req == 0) return;
  auto [it, inserted] = datum_req_.emplace(id, req);
  if (inserted) req_datums_[req].push_back(id);
}

void Engine::add_rule(const std::vector<int64_t>& inputs, std::string action, TaskType type,
                      int target, int priority) {
  ++stats_.rules_created;
  obs::instant(obs::EventKind::kRuleCreated, next_id_,
               static_cast<int64_t>(inputs.size()));
  Rule rule;
  rule.action = std::move(action);
  rule.type = type;
  rule.target = target;
  rule.priority = priority;
  rule.req = client_.serve_ctx().req;

  int64_t rule_id = next_id_++;
  for (int64_t input : inputs) {
    if (closed_.count(input) > 0) continue;
    auto it = watchers_.find(input);
    if (it != watchers_.end()) {
      // Already subscribed and still open.
      it->second.push_back(rule_id);
      ++rule.waiting;
      continue;
    }
    ++stats_.subscribes;
    touch(rule.req, input);
    if (client_.subscribe(input, adlb::kTypeControl)) {
      // Closed already; no notification will come.
      closed_.insert(input);
      continue;
    }
    watchers_[input].push_back(rule_id);
    ++rule.waiting;
  }

  if (rule.waiting == 0) {
    ++stats_.rules_fired_immediately;
    release(std::move(rule));
    return;
  }
  if (rule.req != 0) {
    ++state(rule.req).pending;
    mark_dirty(rule.req);
  }
  rules_.emplace(rule_id, std::move(rule));
}

void Engine::notify_closed(int64_t id) {
  ++stats_.notifications;
  closed_.insert(id);
  // Consume a self-notification credit: the close notification the
  // accounting was holding the request open for has now arrived.
  auto sit = self_notify_.find(id);
  if (sit != self_notify_.end()) {
    auto& [req, count] = sit->second;
    auto rit = requests_.find(req);
    if (rit != requests_.end()) {
      --rit->second.active;
      mark_dirty(req);
    }
    if (--count == 0) self_notify_.erase(sit);
  }
  auto it = watchers_.find(id);
  if (it == watchers_.end()) return;
  std::vector<int64_t> rule_ids = std::move(it->second);
  watchers_.erase(it);
  for (int64_t rule_id : rule_ids) {
    auto rit = rules_.find(rule_id);
    if (rit == rules_.end()) continue;
    if (--rit->second.waiting == 0) {
      Rule rule = std::move(rit->second);
      rules_.erase(rit);
      if (rule.req != 0) {
        --state(rule.req).pending;
        mark_dirty(rule.req);
      }
      release(std::move(rule));
    }
  }
}

void Engine::name_datum(int64_t id, std::string name, int line) {
  StuckInput sym;
  sym.id = id;
  sym.name = std::move(name);
  sym.line = line;
  touch(client_.serve_ctx().req, id);
  names_[id] = std::move(sym);
}

std::string Engine::describe_datum(int64_t id) const {
  auto it = names_.find(id);
  if (it == names_.end()) return {};
  return "variable \"" + it->second.name + "\" (line " + std::to_string(it->second.line) + ")";
}

std::vector<StuckRule> Engine::stuck_report() const {
  // Invert watchers_ (datum -> rule ids) to find what each pending rule
  // is still waiting on.
  std::unordered_map<int64_t, std::vector<int64_t>> waits;  // rule -> datums
  for (const auto& [datum, rule_ids] : watchers_) {
    for (int64_t rule_id : rule_ids) waits[rule_id].push_back(datum);
  }
  std::vector<StuckRule> report;
  report.reserve(rules_.size());
  for (const auto& [rule_id, rule] : rules_) {
    StuckRule stuck;
    stuck.id = rule_id;
    stuck.action = rule.action;
    auto wit = waits.find(rule_id);
    if (wit != waits.end()) {
      for (int64_t datum : wit->second) {
        auto nit = names_.find(datum);
        if (nit != names_.end()) {
          stuck.waiting.push_back(nit->second);
        } else {
          StuckInput anon;
          anon.id = datum;
          stuck.waiting.push_back(std::move(anon));
        }
      }
    }
    report.push_back(std::move(stuck));
  }
  // Deterministic order for tests and logs.
  std::sort(report.begin(), report.end(),
            [](const StuckRule& a, const StuckRule& b) { return a.id < b.id; });
  for (auto& stuck : report) {
    std::sort(stuck.waiting.begin(), stuck.waiting.end(),
              [](const StuckInput& a, const StuckInput& b) { return a.id < b.id; });
  }
  return report;
}

void Engine::release(Rule&& rule) {
  ++stats_.rules_fired;
  // Fires triggered by close notifications run outside any request scope,
  // so attribute the fire (and the put it causes) to the rule's request.
  obs::RequestScope rscope(rule.req);
  obs::instant(obs::EventKind::kRuleFired, static_cast<int64_t>(rule.type));
  if (rule.type == TaskType::kLocal) {
    if (rule.req != 0) {
      ++state(rule.req).active;
      mark_dirty(rule.req);
    }
    local_ready_.push_back({rule.req, std::move(rule.action)});
    return;
  }
  adlb::WorkUnit unit;
  unit.type = static_cast<int>(rule.type);
  unit.priority = rule.priority;
  unit.target = rule.target;
  unit.payload = std::move(rule.action);
  if (rule.req != 0) {
    // Rules live only on the request's owner engine (control affinity),
    // so released units are stamped and counted right here; the client's
    // on_spawned hook registers the +1 before the unit leaves.
    unit.req = rule.req;
    unit.owner = client_.rank();
    unit.prog = state(rule.req).prog;
    if (unit.type == adlb::kTypeControl && unit.target == adlb::kAnyRank) {
      unit.target = client_.rank();
    }
  }
  client_.put(unit);
}

// ---- serve request accounting ----

void Engine::begin_request(int64_t req, int64_t prog) {
  RequestState& st = state(req);
  st.begun = true;
  st.prog = prog;
  mark_dirty(req);
}

void Engine::on_spawned(int64_t req) {
  if (req == 0) return;
  ++state(req).active;
  mark_dirty(req);
}

void Engine::unit_done(int64_t req) {
  if (req == 0) return;
  --state(req).active;
  mark_dirty(req);
}

void Engine::note_self_notify(int64_t req, int64_t id, uint32_t count) {
  if (req == 0 || count == 0) return;
  state(req).active += count;
  auto [it, inserted] = self_notify_.emplace(id, std::make_pair(req, count));
  if (!inserted) it->second.second += count;
  mark_dirty(req);
}

void Engine::local_done(int64_t req) { unit_done(req); }

void Engine::fail_request(int64_t req, RequestErrorKind kind, std::string error) {
  if (req == 0) return;
  RequestState& st = state(req);
  if (!st.failed) {  // first error wins
    st.failed = true;
    st.kind = kind;
    st.error = std::move(error);
  }
  mark_dirty(req);
}

std::vector<int64_t> Engine::take_completed() {
  if (dirty_.empty()) return {};
  std::vector<int64_t> done;
  for (int64_t req : dirty_) {
    auto it = requests_.find(req);
    if (it == requests_.end()) continue;
    const RequestState& st = it->second;
    if (!st.begun || st.active != 0) continue;
    // active == 0 with rules still pending is a confirmed deadlock —
    // nothing left in flight can ever close the datums they wait on — so
    // the request is complete either way; finish_request classifies it.
    done.push_back(req);
  }
  dirty_.clear();
  // Deterministic completion order when several requests finish in the
  // same engine-loop iteration.
  std::sort(done.begin(), done.end());
  return done;
}

RequestOutcome Engine::finish_request(int64_t req) {
  RequestOutcome out;
  out.req = req;
  auto it = requests_.find(req);
  if (it != requests_.end()) {
    RequestState& st = it->second;
    if (st.failed) {
      out.kind = st.kind;
      out.error = std::move(st.error);
    }
    // Deadlocked (or failed-with-leftovers): collect and erase the
    // request's never-fired rules plus their watcher entries.
    if (st.pending > 0) {
      std::unordered_map<int64_t, std::vector<int64_t>> waits;
      for (auto rit = rules_.begin(); rit != rules_.end();) {
        if (rit->second.req != req) {
          ++rit;
          continue;
        }
        StuckRule stuck;
        stuck.id = rit->first;
        stuck.action = rit->second.action;
        waits[rit->first] = {};
        rit = rules_.erase(rit);
        out.stuck.push_back(std::move(stuck));
      }
      for (auto wit = watchers_.begin(); wit != watchers_.end();) {
        auto& rule_ids = wit->second;
        for (auto vid = rule_ids.begin(); vid != rule_ids.end();) {
          auto w = waits.find(*vid);
          if (w != waits.end()) {
            w->second.push_back(wit->first);
            vid = rule_ids.erase(vid);
          } else {
            ++vid;
          }
        }
        wit = rule_ids.empty() ? watchers_.erase(wit) : std::next(wit);
      }
      for (StuckRule& stuck : out.stuck) {
        for (int64_t datum : waits[stuck.id]) {
          auto nit = names_.find(datum);
          if (nit != names_.end()) {
            stuck.waiting.push_back(nit->second);
          } else {
            StuckInput anon;
            anon.id = datum;
            stuck.waiting.push_back(std::move(anon));
          }
        }
        std::sort(stuck.waiting.begin(), stuck.waiting.end(),
                  [](const StuckInput& a, const StuckInput& b) { return a.id < b.id; });
      }
      std::sort(out.stuck.begin(), out.stuck.end(),
                [](const StuckRule& a, const StuckRule& b) { return a.id < b.id; });
      out.unfired_rules = out.stuck.size();
      if (out.kind == RequestErrorKind::kNone) out.kind = RequestErrorKind::kDeadlock;
    }
    requests_.erase(it);
  }
  // Drop every per-datum record the request accumulated so resident
  // memory stays bounded across requests.
  auto dit = req_datums_.find(req);
  if (dit != req_datums_.end()) {
    for (int64_t id : dit->second) {
      closed_.erase(id);
      names_.erase(id);
      datum_req_.erase(id);
      self_notify_.erase(id);
      watchers_.erase(id);
    }
    req_datums_.erase(dit);
  }
  dirty_.erase(req);
  return out;
}

}  // namespace ilps::turbine
