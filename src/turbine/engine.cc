#include "turbine/engine.h"

#include <algorithm>

#include "obs/trace.h"

namespace ilps::turbine {

void Engine::add_rule(const std::vector<int64_t>& inputs, std::string action, TaskType type,
                      int target, int priority) {
  ++stats_.rules_created;
  obs::instant(obs::EventKind::kRuleCreated, next_id_,
               static_cast<int64_t>(inputs.size()));
  Rule rule;
  rule.action = std::move(action);
  rule.type = type;
  rule.target = target;
  rule.priority = priority;

  int64_t rule_id = next_id_++;
  for (int64_t input : inputs) {
    if (closed_.count(input) > 0) continue;
    auto it = watchers_.find(input);
    if (it != watchers_.end()) {
      // Already subscribed and still open.
      it->second.push_back(rule_id);
      ++rule.waiting;
      continue;
    }
    ++stats_.subscribes;
    if (client_.subscribe(input, adlb::kTypeControl)) {
      // Closed already; no notification will come.
      closed_.insert(input);
      continue;
    }
    watchers_[input].push_back(rule_id);
    ++rule.waiting;
  }

  if (rule.waiting == 0) {
    ++stats_.rules_fired_immediately;
    release(std::move(rule));
    return;
  }
  rules_.emplace(rule_id, std::move(rule));
}

void Engine::notify_closed(int64_t id) {
  ++stats_.notifications;
  closed_.insert(id);
  auto it = watchers_.find(id);
  if (it == watchers_.end()) return;
  std::vector<int64_t> rule_ids = std::move(it->second);
  watchers_.erase(it);
  for (int64_t rule_id : rule_ids) {
    auto rit = rules_.find(rule_id);
    if (rit == rules_.end()) continue;
    if (--rit->second.waiting == 0) {
      Rule rule = std::move(rit->second);
      rules_.erase(rit);
      release(std::move(rule));
    }
  }
}

void Engine::name_datum(int64_t id, std::string name, int line) {
  StuckInput sym;
  sym.id = id;
  sym.name = std::move(name);
  sym.line = line;
  names_[id] = std::move(sym);
}

std::string Engine::describe_datum(int64_t id) const {
  auto it = names_.find(id);
  if (it == names_.end()) return {};
  return "variable \"" + it->second.name + "\" (line " + std::to_string(it->second.line) + ")";
}

std::vector<StuckRule> Engine::stuck_report() const {
  // Invert watchers_ (datum -> rule ids) to find what each pending rule
  // is still waiting on.
  std::unordered_map<int64_t, std::vector<int64_t>> waits;  // rule -> datums
  for (const auto& [datum, rule_ids] : watchers_) {
    for (int64_t rule_id : rule_ids) waits[rule_id].push_back(datum);
  }
  std::vector<StuckRule> report;
  report.reserve(rules_.size());
  for (const auto& [rule_id, rule] : rules_) {
    StuckRule stuck;
    stuck.id = rule_id;
    stuck.action = rule.action;
    auto wit = waits.find(rule_id);
    if (wit != waits.end()) {
      for (int64_t datum : wit->second) {
        auto nit = names_.find(datum);
        if (nit != names_.end()) {
          stuck.waiting.push_back(nit->second);
        } else {
          StuckInput anon;
          anon.id = datum;
          stuck.waiting.push_back(std::move(anon));
        }
      }
    }
    report.push_back(std::move(stuck));
  }
  // Deterministic order for tests and logs.
  std::sort(report.begin(), report.end(),
            [](const StuckRule& a, const StuckRule& b) { return a.id < b.id; });
  for (auto& stuck : report) {
    std::sort(stuck.waiting.begin(), stuck.waiting.end(),
              [](const StuckInput& a, const StuckInput& b) { return a.id < b.id; });
  }
  return report;
}

void Engine::release(Rule&& rule) {
  ++stats_.rules_fired;
  obs::instant(obs::EventKind::kRuleFired, static_cast<int64_t>(rule.type));
  if (rule.type == TaskType::kLocal) {
    local_ready_.push_back(std::move(rule.action));
    return;
  }
  adlb::WorkUnit unit;
  unit.type = static_cast<int>(rule.type);
  unit.priority = rule.priority;
  unit.target = rule.target;
  unit.payload = std::move(rule.action);
  client_.put(unit);
}

}  // namespace ilps::turbine
