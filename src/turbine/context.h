// Per-rank Turbine context: the MiniTcl interpreter with the turbine::*
// command library, the blob registry, the lazily-created embedded Python
// and R interpreters, and (on engine ranks) the rule engine.
//
// The interpreter-state policy (§III.C of the paper): kRetain keeps
// Python/R interpreter state across leaf tasks (fast, but old state is
// visible to later tasks); kReinitialize resets them after every task
// (clean-slate semantics at a cost). Swift/T offers both; so does ILPS.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "adlb/client.h"
#include "blob/blob.h"
#include "python/interp.h"
#include "rlang/interp.h"
#include "tcl/interp.h"
#include "turbine/engine.h"

namespace ilps::turbine {

enum class InterpPolicy { kRetain, kReinitialize };

struct WorkerStats {
  uint64_t tasks = 0;
  uint64_t python_evals = 0;
  uint64_t r_evals = 0;
  uint64_t app_execs = 0;
  uint64_t interpreter_resets = 0;
};

struct ContextConfig {
  InterpPolicy policy = InterpPolicy::kRetain;
  bool restricted_os = false;
  // Fault tolerance: a worker whose leaf task throws reports it to the
  // server (Op::kTaskFailed) for retry instead of failing the run.
  bool ft = false;
  // Sink for puts/printf/python-print/R-cat output (defaults to stdout).
  std::function<void(int rank, const std::string& line)> output;
  // Hook to register user packages / extra commands into the rank's
  // interpreter (static packages, script loaders, ...).
  std::function<void(tcl::Interp&)> setup_interp;
  // Hook that additionally receives the rank's blob registry — required
  // when installing BindGen bindings so native pointer arguments resolve
  // against the same registry blobutils uses.
  std::function<void(tcl::Interp&, blob::Registry&)> setup_bindings;
};

class Context {
 public:
  // `engine` may be null (worker ranks).
  Context(adlb::Client& client, Engine* engine, const ContextConfig& cfg);

  tcl::Interp& interp() { return interp_; }
  adlb::Client& client() { return client_; }
  Engine* engine() { return engine_; }
  blob::Registry& blobs() { return blobs_; }
  const WorkerStats& stats() const { return stats_; }

  // The embedded interpreters, created on first use (as Swift/T loads
  // libpython/libR lazily).
  py::Interpreter& python();
  r::Interpreter& rlang();
  bool python_loaded() const { return python_ != nullptr; }
  bool r_loaded() const { return rlang_ != nullptr; }

  // Applies the interpreter policy at a task boundary.
  void end_task();

  // ---- rank loops ----

  // Engine rank: optionally evaluates the top-level program, then serves
  // control tasks (rule actions and close notifications) until shutdown.
  // Returns the number of rules left unfired (nonzero = user deadlock).
  size_t run_engine(const std::string& main_script);

  // Worker rank: evaluates work-task payloads until shutdown.
  void run_worker();

  void emit(const std::string& line);

 private:
  void register_commands();

  adlb::Client& client_;
  Engine* engine_;
  ContextConfig cfg_;
  tcl::Interp interp_;
  blob::Registry blobs_;
  std::unique_ptr<py::Interpreter> python_;
  std::unique_ptr<r::Interpreter> rlang_;
  WorkerStats stats_;
};

}  // namespace ilps::turbine
