// Per-rank Turbine context: the MiniTcl interpreter with the turbine::*
// command library, the blob registry, the lazily-created embedded Python
// and R interpreters, and (on engine ranks) the rule engine.
//
// The interpreter-state policy (§III.C of the paper): kRetain keeps
// Python/R interpreter state across leaf tasks (fast, but old state is
// visible to later tasks); kReinitialize resets them after every task
// (clean-slate semantics at a cost). Swift/T offers both; so does ILPS.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "adlb/client.h"
#include "blob/blob.h"
#include "python/interp.h"
#include "rlang/interp.h"
#include "tcl/interp.h"
#include "turbine/engine.h"

namespace ilps::turbine {

enum class InterpPolicy { kRetain, kReinitialize };

struct WorkerStats {
  uint64_t tasks = 0;
  uint64_t python_evals = 0;
  uint64_t r_evals = 0;
  uint64_t app_execs = 0;
  uint64_t interpreter_resets = 0;
};

struct ContextConfig {
  InterpPolicy policy = InterpPolicy::kRetain;
  bool restricted_os = false;
  // Fault tolerance: a worker whose leaf task throws reports it to the
  // server (Op::kTaskFailed) for retry instead of failing the run.
  bool ft = false;
  // Sink for puts/printf/python-print/R-cat output (defaults to stdout).
  std::function<void(int rank, const std::string& line)> output;
  // Hook to register user packages / extra commands into the rank's
  // interpreter (static packages, script loaders, ...).
  std::function<void(tcl::Interp&)> setup_interp;
  // Hook that additionally receives the rank's blob registry — required
  // when installing BindGen bindings so native pointer arguments resolve
  // against the same registry blobutils uses.
  std::function<void(tcl::Interp&, blob::Registry&)> setup_bindings;

  // ---- serve runtime hooks (src/serve; unset in legacy/batch use) ----
  // Setting serve_complete switches the rank loops into resident mode:
  // engines multiplex per-request rule sets and report finished requests
  // through this callback (with namespace-GC counts filled in); workers
  // send done/fail notices instead of throwing, so one request's error
  // never poisons the resident runtime.
  std::function<void(RequestOutcome&&)> serve_complete;
  // Per-request output sink: receives the request the emitting task
  // belongs to (0 = output outside any request). Takes precedence over
  // `output` when set.
  std::function<void(int64_t req, int rank, const std::string& line)> serve_output;
};

class Context {
 public:
  // `engine` may be null (worker ranks).
  Context(adlb::Client& client, Engine* engine, const ContextConfig& cfg);

  tcl::Interp& interp() { return interp_; }
  adlb::Client& client() { return client_; }
  Engine* engine() { return engine_; }
  blob::Registry& blobs() { return blobs_; }
  const WorkerStats& stats() const { return stats_; }

  // The embedded interpreters, created on first use (as Swift/T loads
  // libpython/libR lazily).
  py::Interpreter& python();
  r::Interpreter& rlang();
  bool python_loaded() const { return python_ != nullptr; }
  bool r_loaded() const { return rlang_ != nullptr; }

  // Applies the interpreter policy at a task boundary.
  void end_task();

  // Evaluates an action script through the per-rank compiled-unit cache:
  // content-hashed, LRU-bounded (ILPS_TCL_UNIT_CACHE, default 512), one
  // compile per distinct action text. Observable behavior is identical to
  // interp().eval(script); with ILPS_TCL_COMPILE=0 it IS interp().eval.
  // Only source text ever crosses ranks — units are a rank-local cache.
  std::string exec_action(const std::string& script);

  // Live entries in the action-unit cache (bounded by capacity).
  size_t units_cached() const { return unit_lru_.size(); }
  size_t unit_cache_capacity() const { return unit_cap_; }

  // ---- rank loops ----

  // Engine rank: optionally evaluates the top-level program, then serves
  // control tasks (rule actions and close notifications) until shutdown.
  // Returns the number of rules left unfired (nonzero = user deadlock).
  size_t run_engine(const std::string& main_script);

  // Worker rank: evaluates work-task payloads until shutdown.
  void run_worker();

  void emit(const std::string& line);

 private:
  // RAII request scope: installs the ambient serve context on the client
  // (so puts/creates are stamped and counted), tags emitted output with
  // the request, and binds the thread's request id (log prefix + trace
  // event attribution). Restores the previous scope on exit.
  class ReqScope {
   public:
    ReqScope(Context& ctx, int64_t req, int owner, int64_t prog);
    ~ReqScope();

   private:
    Context& ctx_;
    adlb::Client::ServeCtx prev_;
    int64_t prev_req_;
    int64_t prev_thread_req_;
  };

  void register_commands();
  // Lazily retrieves and evaluates a request's program text (datum
  // `prog`), once per rank per program. A no-op for prog == 0.
  void load_program(int64_t prog);
  // Serve bookkeeping notice dispatch ("+" spawn, "-" done,
  // "E<kind>:<msg>" fail-and-done).
  void handle_serve_notice(const adlb::WorkUnit& unit);
  // Evaluates a request-tagged script under its ReqScope, capturing any
  // Error as the request's failure instead of letting it poison the
  // resident runtime.
  void eval_for_request(int64_t req, int owner, int64_t prog, const std::string& script);
  // Sends a serve bookkeeping notice to the request's owner engine.
  void send_serve_notice(int64_t req, int owner, std::string payload);
  // Completion sweep: finish requests the engine proved done, GC their
  // namespaces, and hand the outcomes to the serve layer.
  void sweep_completed();

  adlb::Client& client_;
  Engine* engine_;
  ContextConfig cfg_;
  tcl::Interp interp_;
  blob::Registry blobs_;
  std::unique_ptr<py::Interpreter> python_;
  std::unique_ptr<r::Interpreter> rlang_;
  WorkerStats stats_;
  int64_t cur_req_ = 0;  // request being evaluated on this rank right now
  std::unordered_set<int64_t> loaded_progs_;

  // Action-unit cache: FNV-1a content hash -> LRU entry. Entries keep the
  // source text so a hash collision degrades to a recompile, never to
  // executing the wrong unit.
  struct UnitEntry {
    uint64_t hash = 0;
    std::string source;
    std::shared_ptr<const tcl::CompiledUnit> unit;
  };
  std::list<UnitEntry> unit_lru_;
  std::unordered_map<uint64_t, std::list<UnitEntry>::iterator> unit_map_;
  size_t unit_cap_ = 512;
};

}  // namespace ilps::turbine
