#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/log.h"
#include "common/timer.h"
#include "mpi/comm.h"

namespace ilps::mpi {

namespace {
// Internal tags for collectives, outside the user range.
constexpr int kTagBarrierUp = kMaxUserTag + 1;
constexpr int kTagBarrierDown = kMaxUserTag + 2;
constexpr int kTagBcast = kMaxUserTag + 3;
constexpr int kTagReduce = kMaxUserTag + 4;
constexpr int kTagGather = kMaxUserTag + 5;

bool matches(const Message& m, int source, int tag) {
  return (source == ANY_SOURCE || m.source == source) && (tag == ANY_TAG || m.tag == tag);
}
}  // namespace

struct World::Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct WorldState {
  std::atomic<bool> aborted{false};
  std::mutex abort_mutex;
  std::string abort_reason;
  std::atomic<uint64_t> messages{0};
  std::atomic<uint64_t> bytes{0};
};

World::World(int size) : size_(size), state_(std::make_unique<WorldState>()) {
  if (size <= 0) throw CommError("world size must be positive");
  boxes_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& rank_main) {
  state_->aborted.store(false);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &first_error, &error_mutex] {
      Comm comm(this, r);
      try {
        rank_main(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort("rank " + std::to_string(r) + " threw");
      }
    });
  }
  for (auto& t : threads) t.join();

  // Clear mailboxes so a World can host several independent runs.
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->queue.clear();
  }
  if (first_error) std::rethrow_exception(first_error);
  if (state_->aborted.load()) {
    throw CommError("world aborted: " + state_->abort_reason);
  }
}

TrafficStats World::stats() const {
  return TrafficStats{state_->messages.load(), state_->bytes.load()};
}

void World::post(int source, int dest, int tag, std::span<const std::byte> data) {
  if (dest < 0 || dest >= size_) {
    throw CommError("send to invalid rank " + std::to_string(dest));
  }
  state_->messages.fetch_add(1, std::memory_order_relaxed);
  state_->bytes.fetch_add(data.size(), std::memory_order_relaxed);
  Mailbox& box = *boxes_[static_cast<size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(Message{source, tag, {data.begin(), data.end()}});
  }
  box.cv.notify_all();
}

std::optional<Message> World::match_now(int self, int source, int tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(box.mutex);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (matches(*it, source, tag)) {
      Message m = std::move(*it);
      box.queue.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message World::wait_match(int self, int source, int tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        return m;
      }
    }
    if (state_->aborted.load()) {
      throw CommError("recv interrupted: world aborted (" + state_->abort_reason + ")");
    }
    box.cv.wait(lock);
  }
}

bool World::probe(int self, int source, int tag, int* out_source, int* out_tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(box.mutex);
  for (const auto& m : box.queue) {
    if (matches(m, source, tag)) {
      if (out_source != nullptr) *out_source = m.source;
      if (out_tag != nullptr) *out_tag = m.tag;
      return true;
    }
  }
  return false;
}

void World::abort(const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(state_->abort_mutex);
    if (state_->abort_reason.empty()) state_->abort_reason = why;
  }
  state_->aborted.store(true);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
}

bool World::aborted() const { return state_->aborted.load(); }

// ---- Comm ----

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, std::span<const std::byte> data) {
  if (tag < 0 || tag >= kMaxUserTag) {
    throw CommError("user tag out of range: " + std::to_string(tag));
  }
  world_->post(rank_, dest, tag, data);
}

Message Comm::recv(int source, int tag) { return world_->wait_match(rank_, source, tag); }

std::optional<Message> Comm::try_recv(int source, int tag) {
  return world_->match_now(rank_, source, tag);
}

bool Comm::iprobe(int source, int tag, int* out_source, int* out_tag) {
  return world_->probe(rank_, source, tag, out_source, out_tag);
}

void Comm::barrier() {
  // Flat fan-in to rank 0, then fan-out. With the thread-backed transport
  // the constant factors dwarf any tree-topology gain at our rank counts.
  const std::vector<std::byte> empty;
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) world_->wait_match(0, ANY_SOURCE, kTagBarrierUp);
    for (int r = 1; r < size(); ++r) world_->post(0, r, kTagBarrierDown, empty);
  } else {
    world_->post(rank_, 0, kTagBarrierUp, empty);
    world_->wait_match(rank_, 0, kTagBarrierDown);
  }
}

void Comm::broadcast(std::vector<std::byte>& data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) world_->post(rank_, r, kTagBcast, data);
    }
  } else {
    data = world_->wait_match(rank_, root, kTagBcast).data;
  }
}

int64_t Comm::reduce_sum(int64_t value, int root) {
  if (rank_ == root) {
    int64_t total = value;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = world_->wait_match(rank_, ANY_SOURCE, kTagReduce);
      total += m.reader().get_i64();
    }
    return total;
  }
  ser::Writer w;
  w.put_i64(value);
  world_->post(rank_, root, kTagReduce, w.bytes());
  return 0;
}

int64_t Comm::allreduce_sum(int64_t value) {
  int64_t total = reduce_sum(value, 0);
  ser::Writer w;
  w.put_i64(total);
  std::vector<std::byte> buf = w.take();
  broadcast(buf, 0);
  return ser::Reader(buf).get_i64();
}

double Comm::allreduce_sum(double value) {
  // Route through gather so every rank sums in the same order and the
  // result is bit-identical everywhere.
  ser::Writer w;
  w.put_f64(value);
  auto parts = gather(w.bytes(), 0);
  std::vector<std::byte> buf;
  if (rank_ == 0) {
    double total = 0;
    for (const auto& p : parts) total += ser::Reader(p).get_f64();
    ser::Writer out;
    out.put_f64(total);
    buf = out.take();
  }
  broadcast(buf, 0);
  return ser::Reader(buf).get_f64();
}

std::vector<std::vector<std::byte>> Comm::gather(std::span<const std::byte> data, int root) {
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<size_t>(size()));
    out[static_cast<size_t>(root)] = {data.begin(), data.end()};
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = world_->wait_match(rank_, r, kTagGather);
      out[static_cast<size_t>(r)] = std::move(m.data);
    }
  } else {
    world_->post(rank_, root, kTagGather, data);
  }
  return out;
}

double Comm::wtime() const { return ilps::wtime(); }

void Comm::abort(const std::string& why) { world_->abort(why); }

}  // namespace ilps::mpi
