#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/timer.h"
#include "mpi/comm.h"
#include "obs/trace.h"

namespace ilps::mpi {

namespace {
// Internal tags for collectives, outside the user range.
constexpr int kTagBarrierUp = kMaxUserTag + 1;
constexpr int kTagBarrierDown = kMaxUserTag + 2;
constexpr int kTagBcast = kMaxUserTag + 3;
constexpr int kTagReduce = kMaxUserTag + 4;
constexpr int kTagGather = kMaxUserTag + 5;

bool matches(const Message& m, int source, int tag) {
  return (source == ANY_SOURCE || m.source == source) && (tag == ANY_TAG || m.tag == tag);
}
}  // namespace

struct World::Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct WorldState {
  std::atomic<bool> aborted{false};
  std::mutex abort_mutex;
  std::string abort_reason;
  std::atomic<uint64_t> messages{0};
  std::atomic<uint64_t> bytes{0};

  // ---- fault injection ----
  FaultPlan plan;
  std::vector<std::unique_ptr<std::atomic<bool>>> fired;  // parallel to plan.actions
  std::vector<char> dead;    // written by the dying thread, read after run()
  std::vector<char> doomed;  // only the owning rank reads/writes its slot
  // Drain bookkeeping: hung/doomed ranks are released (and killed) once
  // every other rank has finished, so run() can always join its threads.
  std::mutex fin_mutex;
  std::condition_variable fin_cv;
  int finished = 0;
  int parked_faulty = 0;
};

World::World(int size) : size_(size), state_(std::make_unique<WorldState>()) {
  if (size <= 0) throw CommError("world size must be positive");
  boxes_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& rank_main) {
  state_->aborted.store(false);
  // Fresh per-rank event buffers each run; a previous run's session (read
  // by the runner between runs) is released here.
  obs_ = obs::trace_enabled()
             ? std::make_unique<obs::Session>(size_, obs::default_capacity())
             : nullptr;
  {
    // Reset per-run fault bookkeeping (fired flags persist across runs so a
    // restart driver can inspect them; they are reset by set_fault_plan).
    std::lock_guard<std::mutex> lock(state_->fin_mutex);
    state_->finished = 0;
    state_->parked_faulty = 0;
    state_->dead.assign(static_cast<size_t>(size_), 0);
    state_->doomed.assign(static_cast<size_t>(size_), 0);
  }
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &first_error, &error_mutex] {
      log::set_thread_rank(r);
      if (obs_) obs::attach(&obs_->rank(r));
      Comm comm(this, r);
      try {
        rank_main(comm);
      } catch (const RankKilled&) {
        on_rank_dead(r);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort("rank " + std::to_string(r) + " threw");
      }
      finish_rank();
      obs::detach();
      log::set_thread_rank(-1);
    });
  }
  for (auto& t : threads) t.join();

  // Clear mailboxes so a World can host several independent runs.
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->queue.clear();
  }
  if (first_error) std::rethrow_exception(first_error);
  if (state_->aborted.load()) {
    throw CommError("world aborted: " + state_->abort_reason);
  }
}

TrafficStats World::stats() const {
  return TrafficStats{state_->messages.load(), state_->bytes.load()};
}

void World::post(int source, int dest, int tag, std::span<const std::byte> data) {
  if (dest < 0 || dest >= size_) {
    throw CommError("send to invalid rank " + std::to_string(dest));
  }
  state_->messages.fetch_add(1, std::memory_order_relaxed);
  state_->bytes.fetch_add(data.size(), std::memory_order_relaxed);
  Mailbox& box = *boxes_[static_cast<size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(Message{source, tag, {data.begin(), data.end()}});
  }
  box.cv.notify_all();
}

std::optional<Message> World::match_now(int self, int source, int tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(box.mutex);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (matches(*it, source, tag)) {
      Message m = std::move(*it);
      box.queue.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message World::wait_match(int self, int source, int tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  const bool is_doomed = doomed(self);
  bool parked = false;
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        if (parked) {
          std::lock_guard<std::mutex> fl(state_->fin_mutex);
          --state_->parked_faulty;
        }
        return m;
      }
    }
    if (state_->aborted.load()) {
      throw CommError("recv interrupted: world aborted (" + state_->abort_reason + ")");
    }
    if (is_doomed) {
      // A doomed rank (its request was dropped) will never get a reply.
      // Count it as parked so quiescent peers can drain, then kill it.
      {
        std::lock_guard<std::mutex> fl(state_->fin_mutex);
        if (!parked) {
          ++state_->parked_faulty;
          parked = true;
          state_->fin_cv.notify_all();
        }
        if (state_->finished + state_->parked_faulty >= size_) throw RankKilled{self};
      }
      // Poll: finish_rank() notifies box cvs without holding box.mutex, so
      // a timed wait avoids any lost-wakeup ordering subtleties.
      box.cv.wait_for(lock, std::chrono::milliseconds(5));
    } else {
      box.cv.wait(lock);
    }
  }
}

std::optional<Message> World::wait_match_for(int self, int source, int tag, double seconds) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        return m;
      }
    }
    if (state_->aborted.load()) {
      throw CommError("recv interrupted: world aborted (" + state_->abort_reason + ")");
    }
    if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last scan in case the notify raced the timeout.
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (matches(*it, source, tag)) {
          Message m = std::move(*it);
          box.queue.erase(it);
          return m;
        }
      }
      return std::nullopt;
    }
  }
}

bool World::probe(int self, int source, int tag, int* out_source, int* out_tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(box.mutex);
  for (const auto& m : box.queue) {
    if (matches(m, source, tag)) {
      if (out_source != nullptr) *out_source = m.source;
      if (out_tag != nullptr) *out_tag = m.tag;
      return true;
    }
  }
  return false;
}

void World::abort(const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(state_->abort_mutex);
    if (state_->abort_reason.empty()) state_->abort_reason = why;
  }
  state_->aborted.store(true);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
}

bool World::aborted() const { return state_->aborted.load(); }

// ---- fault injection ----

void World::set_fault_plan(FaultPlan plan) {
  state_->plan = std::move(plan);
  state_->fired.clear();
  for (size_t i = 0; i < state_->plan.actions.size(); ++i) {
    state_->fired.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

std::vector<bool> World::fault_fired() const {
  std::vector<bool> out;
  out.reserve(state_->fired.size());
  for (const auto& f : state_->fired) out.push_back(f->load());
  return out;
}

std::vector<int> World::dead_ranks() const {
  std::vector<int> out;
  for (size_t i = 0; i < state_->dead.size(); ++i) {
    if (state_->dead[i] != 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool World::doomed(int rank) const {
  const auto& d = state_->doomed;
  return static_cast<size_t>(rank) < d.size() && d[static_cast<size_t>(rank)] != 0;
}

bool World::apply_fault(int rank, uint64_t message_number) {
  auto& st = *state_;
  if (st.plan.actions.empty()) return true;
  bool deliver = true;
  for (size_t i = 0; i < st.plan.actions.size(); ++i) {
    const FaultAction& a = st.plan.actions[i];
    if (a.rank != rank || a.at_message != message_number) continue;
    if (st.fired[i]->exchange(true)) continue;  // each action fires once
    switch (a.kind) {
      case FaultAction::Kind::kKillRank:
        throw RankKilled{rank};
      case FaultAction::Kind::kHangRank:
        park_until_drained(rank);  // throws RankKilled when released
        break;
      case FaultAction::Kind::kDropMessage:
        // The message is lost; since every client exchange is a
        // synchronous RPC the sender can never make progress again.
        if (static_cast<size_t>(rank) < st.doomed.size()) {
          st.doomed[static_cast<size_t>(rank)] = 1;
        }
        deliver = false;
        break;
      case FaultAction::Kind::kDelayMessage:
        std::this_thread::sleep_for(std::chrono::duration<double>(a.delay_seconds));
        break;
    }
  }
  return deliver;
}

void World::on_rank_dead(int rank) {
  auto& st = *state_;
  if (static_cast<size_t>(rank) < st.dead.size()) st.dead[static_cast<size_t>(rank)] = 1;
  // Runs on the dying rank's own thread, so the instant lands in its
  // buffer — and exactly once per death (on_rank_dead has one call site).
  obs::instant(obs::EventKind::kRankDead, rank);
  log::warn("rank ", rank, " died (fault injection)");
  // Death notice to every surviving mailbox; fault-aware receivers (the
  // ADLB server) match kTagFault, everyone else never requests it.
  const std::vector<std::byte> empty;
  for (int r = 0; r < size_; ++r) {
    if (r != rank) post(rank, r, kTagFault, empty);
  }
}

void World::finish_rank() {
  {
    std::lock_guard<std::mutex> lock(state_->fin_mutex);
    ++state_->finished;
    state_->fin_cv.notify_all();
  }
  // Wake doomed pollers blocked in wait_match so they observe the drain.
  for (auto& box : boxes_) box->cv.notify_all();
}

void World::park_until_drained(int rank) {
  {
    std::unique_lock<std::mutex> lock(state_->fin_mutex);
    ++state_->parked_faulty;
    state_->fin_cv.notify_all();
    state_->fin_cv.wait(lock, [this] {
      return state_->finished + state_->parked_faulty >= size_;
    });
  }
  throw RankKilled{rank};
}

FaultPlan FaultPlan::random_kill(uint64_t seed, int first_rank, int last_rank,
                                 uint64_t lo_message, uint64_t hi_message) {
  Rng rng(seed);
  const int victim =
      first_rank + static_cast<int>(rng.next_below(
                       static_cast<uint64_t>(last_rank - first_rank + 1)));
  const uint64_t at = lo_message + rng.next_below(hi_message - lo_message + 1);
  FaultPlan plan;
  plan.kill_rank(victim, at);
  return plan;
}

// ---- Comm ----

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, std::span<const std::byte> data) {
  if (tag < 0 || tag >= kMaxUserTag) {
    throw CommError("user tag out of range: " + std::to_string(tag));
  }
  ++sent_;
  if (!world_->apply_fault(rank_, sent_)) return;  // dropped message
  world_->post(rank_, dest, tag, data);
  obs::instant(obs::EventKind::kMpiSend, dest, static_cast<int64_t>(data.size()));
}

Message Comm::recv(int source, int tag) {
  Message m = world_->wait_match(rank_, source, tag);
  obs::instant(obs::EventKind::kMpiRecv, m.source, static_cast<int64_t>(m.data.size()));
  return m;
}

std::optional<Message> Comm::recv_for(double seconds, int source, int tag) {
  auto m = world_->wait_match_for(rank_, source, tag, seconds);
  if (m) {
    obs::instant(obs::EventKind::kMpiRecv, m->source, static_cast<int64_t>(m->data.size()));
  }
  return m;
}

std::optional<Message> Comm::try_recv(int source, int tag) {
  return world_->match_now(rank_, source, tag);
}

bool Comm::iprobe(int source, int tag, int* out_source, int* out_tag) {
  return world_->probe(rank_, source, tag, out_source, out_tag);
}

void Comm::barrier() {
  // Flat fan-in to rank 0, then fan-out. With the thread-backed transport
  // the constant factors dwarf any tree-topology gain at our rank counts.
  const std::vector<std::byte> empty;
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) world_->wait_match(0, ANY_SOURCE, kTagBarrierUp);
    for (int r = 1; r < size(); ++r) world_->post(0, r, kTagBarrierDown, empty);
  } else {
    world_->post(rank_, 0, kTagBarrierUp, empty);
    world_->wait_match(rank_, 0, kTagBarrierDown);
  }
}

void Comm::broadcast(std::vector<std::byte>& data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) world_->post(rank_, r, kTagBcast, data);
    }
  } else {
    data = world_->wait_match(rank_, root, kTagBcast).data;
  }
}

int64_t Comm::reduce_sum(int64_t value, int root) {
  if (rank_ == root) {
    int64_t total = value;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = world_->wait_match(rank_, ANY_SOURCE, kTagReduce);
      total += m.reader().get_i64();
    }
    return total;
  }
  ser::Writer w;
  w.put_i64(value);
  world_->post(rank_, root, kTagReduce, w.bytes());
  return 0;
}

int64_t Comm::allreduce_sum(int64_t value) {
  int64_t total = reduce_sum(value, 0);
  ser::Writer w;
  w.put_i64(total);
  std::vector<std::byte> buf = w.take();
  broadcast(buf, 0);
  return ser::Reader(buf).get_i64();
}

double Comm::allreduce_sum(double value) {
  // Route through gather so every rank sums in the same order and the
  // result is bit-identical everywhere.
  ser::Writer w;
  w.put_f64(value);
  auto parts = gather(w.bytes(), 0);
  std::vector<std::byte> buf;
  if (rank_ == 0) {
    double total = 0;
    for (const auto& p : parts) total += ser::Reader(p).get_f64();
    ser::Writer out;
    out.put_f64(total);
    buf = out.take();
  }
  broadcast(buf, 0);
  return ser::Reader(buf).get_f64();
}

std::vector<std::vector<std::byte>> Comm::gather(std::span<const std::byte> data, int root) {
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<size_t>(size()));
    out[static_cast<size_t>(root)] = {data.begin(), data.end()};
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = world_->wait_match(rank_, r, kTagGather);
      out[static_cast<size_t>(r)] = std::move(m.data);
    }
  } else {
    world_->post(rank_, root, kTagGather, data);
  }
  return out;
}

double Comm::wtime() const { return ilps::wtime(); }

void Comm::abort(const std::string& why) { world_->abort(why); }

}  // namespace ilps::mpi
