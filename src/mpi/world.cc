#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/timer.h"
#include "mpi/comm.h"
#include "obs/trace.h"

namespace ilps::mpi {

namespace {
// Internal tags for collectives, outside the user range.
constexpr int kTagBarrierUp = kMaxUserTag + 1;
constexpr int kTagBarrierDown = kMaxUserTag + 2;
constexpr int kTagBcast = kMaxUserTag + 3;
constexpr int kTagReduce = kMaxUserTag + 4;
constexpr int kTagGather = kMaxUserTag + 5;

// Wildcard semantics: ANY_TAG covers user tags only, so a plain recv can
// never swallow a collective payload or a death notice racing past it;
// ANY_TAG_OR_FAULT additionally covers kTagFault for fault-aware loops.
bool tag_matches(int pattern, int tag) {
  if (pattern == ANY_TAG) return tag < kMaxUserTag;
  if (pattern == ANY_TAG_OR_FAULT) return tag < kMaxUserTag || tag == kTagFault;
  return tag == pattern;
}

bool envelope_matches(int want_source, int want_tag, int source, int tag) {
  return (want_source == ANY_SOURCE || source == want_source) && tag_matches(want_tag, tag);
}
}  // namespace

// Tag-indexed mailbox: one FIFO bucket per (source, tag) pair, each entry
// stamped with a mailbox-wide arrival number. An exact-envelope recv is an
// O(1) hash lookup + pop; a wildcard recv takes the lowest arrival number
// among matching bucket fronts, which is exactly the message a linear scan
// of a single arrival-ordered queue would have returned — so MPI matching
// and per-(source, tag) ordering semantics are preserved verbatim.
//
// Wakeup protocol: the owning rank registers the envelope it is blocked on
// (waiting/want_*); post() signals the condition variable only when the
// new message matches that envelope, and uses notify_one (there is exactly
// one possible waiter — the mailbox owner). Everything else is a
// suppressed wakeup: no syscall, no context switch.
struct World::Mailbox {
  struct Item {
    uint64_t seq;
    Message msg;
  };
  struct Bucket {
    std::deque<Item> q;
  };

  static uint64_t key(int source, int tag) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(source)) << 32) |
           static_cast<uint32_t>(tag);
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::unordered_map<uint64_t, Bucket> buckets;
  uint64_t next_seq = 0;

  // Waiter registration (guarded by mutex). Only the owning rank blocks on
  // its own mailbox, so one slot suffices.
  bool waiting = false;
  bool notified = false;
  int want_source = ANY_SOURCE;
  int want_tag = ANY_TAG;
};

struct WorldState {
  std::atomic<bool> aborted{false};
  std::mutex abort_mutex;
  std::string abort_reason;
  std::atomic<uint64_t> messages{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> wakeups{0};
  std::atomic<uint64_t> wakeups_suppressed{0};
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> pool_misses{0};

  // ---- fault injection ----
  FaultPlan plan;
  std::vector<std::unique_ptr<std::atomic<bool>>> fired;  // parallel to plan.actions
  std::vector<char> dead;    // written by the dying thread, read after run()
  std::vector<char> doomed;  // only the owning rank reads/writes its slot
  // Drain bookkeeping: hung/doomed ranks are released (and killed) once
  // every other rank has finished, so run() can always join its threads.
  std::mutex fin_mutex;
  std::condition_variable fin_cv;
  int finished = 0;
  int parked_faulty = 0;
};

World::World(int size) : size_(size), state_(std::make_unique<WorldState>()) {
  if (size <= 0) throw CommError("world size must be positive");
  boxes_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& rank_main) {
  state_->aborted.store(false);
  // Fresh per-rank event buffers each run; a previous run's session (read
  // by the runner between runs) is released here.
  obs_ = obs::trace_enabled()
             ? std::make_unique<obs::Session>(size_, obs::default_capacity())
             : nullptr;
  {
    // Reset per-run fault bookkeeping (fired flags persist across runs so a
    // restart driver can inspect them; they are reset by set_fault_plan).
    std::lock_guard<std::mutex> lock(state_->fin_mutex);
    state_->finished = 0;
    state_->parked_faulty = 0;
    state_->dead.assign(static_cast<size_t>(size_), 0);
    state_->doomed.assign(static_cast<size_t>(size_), 0);
  }
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &first_error, &error_mutex] {
      log::set_thread_rank(r);
      if (obs_) obs::attach(&obs_->rank(r));
      Comm comm(this, r);
      try {
        rank_main(comm);
      } catch (const RankKilled&) {
        on_rank_dead(r);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort("rank " + std::to_string(r) + " threw");
      }
      finish_rank();
      obs::detach();
      log::set_thread_rank(-1);
    });
  }
  for (auto& t : threads) t.join();

  // Clear mailboxes so a World can host several independent runs.
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->buckets.clear();
    box->next_seq = 0;
    box->waiting = false;
    box->notified = false;
  }
  if (first_error) std::rethrow_exception(first_error);
  if (state_->aborted.load()) {
    throw CommError("world aborted: " + state_->abort_reason);
  }
}

TrafficStats World::stats() const {
  return TrafficStats{state_->messages.load(),
                      state_->bytes.load(),
                      state_->wakeups.load(),
                      state_->wakeups_suppressed.load(),
                      state_->pool_hits.load(),
                      state_->pool_misses.load()};
}

void World::post(int source, int dest, int tag, std::vector<std::byte>&& data) {
  if (dest < 0 || dest >= size_) {
    throw CommError("send to invalid rank " + std::to_string(dest));
  }
  state_->messages.fetch_add(1, std::memory_order_relaxed);
  state_->bytes.fetch_add(data.size(), std::memory_order_relaxed);
  Mailbox& box = *boxes_[static_cast<size_t>(dest)];
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    Mailbox::Bucket& b = box.buckets[Mailbox::key(source, tag)];
    b.q.push_back(Mailbox::Item{box.next_seq++, Message{source, tag, std::move(data)}});
    if (box.waiting && !box.notified &&
        envelope_matches(box.want_source, box.want_tag, source, tag)) {
      box.notified = true;
      wake = true;
    }
  }
  if (wake) {
    state_->wakeups.fetch_add(1, std::memory_order_relaxed);
    box.cv.notify_one();
  } else {
    state_->wakeups_suppressed.fetch_add(1, std::memory_order_relaxed);
  }
}

void World::post(int source, int dest, int tag, std::span<const std::byte> data) {
  post(source, dest, tag, std::vector<std::byte>(data.begin(), data.end()));
}

std::optional<Message> World::take_locked(Mailbox& box, int source, int tag) {
  if (source != ANY_SOURCE && tag >= 0) {
    // Exact envelope: O(1) bucket lookup.
    auto it = box.buckets.find(Mailbox::key(source, tag));
    if (it == box.buckets.end() || it->second.q.empty()) return std::nullopt;
    Message m = std::move(it->second.q.front().msg);
    it->second.q.pop_front();
    return m;
  }
  // Wildcard: the oldest matching message is the lowest arrival number
  // among matching bucket fronts (bucket queues are arrival-ordered, so
  // only fronts can be oldest).
  Mailbox::Bucket* best = nullptr;
  uint64_t best_seq = 0;
  for (auto& [key, b] : box.buckets) {
    if (b.q.empty()) continue;
    const Mailbox::Item& front = b.q.front();
    if (!envelope_matches(source, tag, front.msg.source, front.msg.tag)) continue;
    if (best == nullptr || front.seq < best_seq) {
      best = &b;
      best_seq = front.seq;
    }
  }
  if (best == nullptr) return std::nullopt;
  Message m = std::move(best->q.front().msg);
  best->q.pop_front();
  return m;
}

bool World::probe_locked(const Mailbox& box, int source, int tag, int* out_source,
                         int* out_tag) {
  if (source != ANY_SOURCE && tag >= 0) {
    auto it = box.buckets.find(Mailbox::key(source, tag));
    if (it == box.buckets.end() || it->second.q.empty()) return false;
    if (out_source != nullptr) *out_source = source;
    if (out_tag != nullptr) *out_tag = tag;
    return true;
  }
  const Mailbox::Item* best = nullptr;
  for (const auto& [key, b] : box.buckets) {
    if (b.q.empty()) continue;
    const Mailbox::Item& front = b.q.front();
    if (!envelope_matches(source, tag, front.msg.source, front.msg.tag)) continue;
    if (best == nullptr || front.seq < best->seq) best = &front;
  }
  if (best == nullptr) return false;
  if (out_source != nullptr) *out_source = best->msg.source;
  if (out_tag != nullptr) *out_tag = best->msg.tag;
  return true;
}

std::optional<Message> World::match_now(int self, int source, int tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(box.mutex);
  return take_locked(box, source, tag);
}

Message World::wait_match(int self, int source, int tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  const bool is_doomed = doomed(self);
  bool parked = false;
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    if (auto m = take_locked(box, source, tag)) {
      if (parked) {
        std::lock_guard<std::mutex> fl(state_->fin_mutex);
        --state_->parked_faulty;
      }
      return std::move(*m);
    }
    if (state_->aborted.load()) {
      throw CommError("recv interrupted: world aborted (" + state_->abort_reason + ")");
    }
    if (is_doomed) {
      // A doomed rank (its request was dropped) will never get a reply.
      // Count it as parked so quiescent peers can drain, then kill it.
      {
        std::lock_guard<std::mutex> fl(state_->fin_mutex);
        if (!parked) {
          ++state_->parked_faulty;
          parked = true;
          state_->fin_cv.notify_all();
        }
        if (state_->finished + state_->parked_faulty >= size_) throw RankKilled{self};
      }
      // Poll: finish_rank() notifies box cvs without holding box.mutex, so
      // a timed wait avoids any lost-wakeup ordering subtleties.
      box.cv.wait_for(lock, std::chrono::milliseconds(5));
    } else {
      box.waiting = true;
      box.want_source = source;
      box.want_tag = tag;
      box.notified = false;
      box.cv.wait(lock, [&box] { return box.notified; });
      box.waiting = false;
      box.notified = false;
    }
  }
}

std::optional<Message> World::wait_match_for(int self, int source, int tag, double seconds) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    if (auto m = take_locked(box, source, tag)) return m;
    if (state_->aborted.load()) {
      throw CommError("recv interrupted: world aborted (" + state_->abort_reason + ")");
    }
    box.waiting = true;
    box.want_source = source;
    box.want_tag = tag;
    box.notified = false;
    const bool signalled = box.cv.wait_until(lock, deadline, [&box] { return box.notified; });
    box.waiting = false;
    box.notified = false;
    if (!signalled) {
      // Timed out; one final pass through the same matching helper in case
      // a post raced the deadline.
      return take_locked(box, source, tag);
    }
  }
}

bool World::probe(int self, int source, int tag, int* out_source, int* out_tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(box.mutex);
  return probe_locked(box, source, tag, out_source, out_tag);
}

void World::abort(const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(state_->abort_mutex);
    if (state_->abort_reason.empty()) state_->abort_reason = why;
  }
  state_->aborted.store(true);
  for (auto& box : boxes_) {
    {
      std::lock_guard<std::mutex> lock(box->mutex);
      // Release waiters past their predicate so they observe the abort.
      box->notified = true;
    }
    box->cv.notify_all();
  }
}

bool World::aborted() const { return state_->aborted.load(); }

// ---- fault injection ----

void World::set_fault_plan(FaultPlan plan) {
  state_->plan = std::move(plan);
  state_->fired.clear();
  for (size_t i = 0; i < state_->plan.actions.size(); ++i) {
    state_->fired.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

std::vector<bool> World::fault_fired() const {
  std::vector<bool> out;
  out.reserve(state_->fired.size());
  for (const auto& f : state_->fired) out.push_back(f->load());
  return out;
}

std::vector<int> World::dead_ranks() const {
  std::vector<int> out;
  for (size_t i = 0; i < state_->dead.size(); ++i) {
    if (state_->dead[i] != 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool World::doomed(int rank) const {
  const auto& d = state_->doomed;
  return static_cast<size_t>(rank) < d.size() && d[static_cast<size_t>(rank)] != 0;
}

bool World::apply_fault(int rank, uint64_t message_number) {
  auto& st = *state_;
  if (st.plan.actions.empty()) return true;
  bool deliver = true;
  for (size_t i = 0; i < st.plan.actions.size(); ++i) {
    const FaultAction& a = st.plan.actions[i];
    if (a.rank != rank || a.at_message != message_number) continue;
    if (st.fired[i]->exchange(true)) continue;  // each action fires once
    switch (a.kind) {
      case FaultAction::Kind::kKillRank:
        throw RankKilled{rank};
      case FaultAction::Kind::kHangRank:
        park_until_drained(rank);  // throws RankKilled when released
        break;
      case FaultAction::Kind::kDropMessage:
        // The message is lost; since every client exchange is a
        // synchronous RPC the sender can never make progress again.
        if (static_cast<size_t>(rank) < st.doomed.size()) {
          st.doomed[static_cast<size_t>(rank)] = 1;
        }
        deliver = false;
        break;
      case FaultAction::Kind::kDelayMessage:
        std::this_thread::sleep_for(std::chrono::duration<double>(a.delay_seconds));
        break;
    }
  }
  return deliver;
}

void World::on_rank_dead(int rank) {
  auto& st = *state_;
  if (static_cast<size_t>(rank) < st.dead.size()) st.dead[static_cast<size_t>(rank)] = 1;
  // Runs on the dying rank's own thread, so the instant lands in its
  // buffer — and exactly once per death (on_rank_dead has one call site).
  obs::instant(obs::EventKind::kRankDead, rank);
  log::warn("rank ", rank, " died (fault injection)");
  // Death notice to every surviving mailbox; fault-aware receivers (the
  // ADLB server) match kTagFault, everyone else never requests it.
  const std::vector<std::byte> empty;
  for (int r = 0; r < size_; ++r) {
    if (r != rank) post(rank, r, kTagFault, empty);
  }
}

void World::finish_rank() {
  {
    std::lock_guard<std::mutex> lock(state_->fin_mutex);
    ++state_->finished;
    state_->fin_cv.notify_all();
  }
  // Wake doomed pollers blocked in wait_match so they observe the drain
  // (they use a timed wait with no predicate, so a bare notify suffices
  // and normal predicate-guarded waiters are not disturbed).
  for (auto& box : boxes_) box->cv.notify_all();
}

void World::park_until_drained(int rank) {
  {
    std::unique_lock<std::mutex> lock(state_->fin_mutex);
    ++state_->parked_faulty;
    state_->fin_cv.notify_all();
    state_->fin_cv.wait(lock, [this] {
      return state_->finished + state_->parked_faulty >= size_;
    });
  }
  throw RankKilled{rank};
}

FaultPlan FaultPlan::random_kill(uint64_t seed, int first_rank, int last_rank,
                                 uint64_t lo_message, uint64_t hi_message) {
  Rng rng(seed);
  const int victim =
      first_rank + static_cast<int>(rng.next_below(
                       static_cast<uint64_t>(last_rank - first_rank + 1)));
  const uint64_t at = lo_message + rng.next_below(hi_message - lo_message + 1);
  FaultPlan plan;
  plan.kill_rank(victim, at);
  return plan;
}

// ---- Comm ----

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, std::span<const std::byte> data) {
  if (tag < 0 || tag >= kMaxUserTag) {
    throw CommError("user tag out of range: " + std::to_string(tag));
  }
  ++sent_;
  if (!world_->apply_fault(rank_, sent_)) return;  // dropped message
  world_->post(rank_, dest, tag, data);
  obs::instant(obs::EventKind::kMpiSend, dest, static_cast<int64_t>(data.size()));
}

void Comm::send(int dest, int tag, std::vector<std::byte>&& data) {
  if (tag < 0 || tag >= kMaxUserTag) {
    throw CommError("user tag out of range: " + std::to_string(tag));
  }
  ++sent_;
  const size_t n = data.size();
  if (!world_->apply_fault(rank_, sent_)) return;  // dropped message
  world_->post(rank_, dest, tag, std::move(data));
  obs::instant(obs::EventKind::kMpiSend, dest, static_cast<int64_t>(n));
}

std::vector<std::byte> Comm::acquire_buffer() {
  if (!pool_.empty()) {
    std::vector<std::byte> buf = std::move(pool_.back());
    pool_.pop_back();
    world_->state_->pool_hits.fetch_add(1, std::memory_order_relaxed);
    return buf;
  }
  world_->state_->pool_misses.fetch_add(1, std::memory_order_relaxed);
  return {};
}

void Comm::recycle(std::vector<std::byte>&& buf) {
  // Small bounded freelist; beyond the cap buffers are just freed. Owned
  // by this rank's thread, so no lock.
  constexpr size_t kMaxPooled = 64;
  if (pool_.size() < kMaxPooled) pool_.push_back(std::move(buf));
}

Message Comm::recv(int source, int tag) {
  Message m = world_->wait_match(rank_, source, tag);
  obs::instant(obs::EventKind::kMpiRecv, m.source, static_cast<int64_t>(m.data.size()));
  return m;
}

std::optional<Message> Comm::recv_for(double seconds, int source, int tag) {
  auto m = world_->wait_match_for(rank_, source, tag, seconds);
  if (m) {
    obs::instant(obs::EventKind::kMpiRecv, m->source, static_cast<int64_t>(m->data.size()));
  }
  return m;
}

std::optional<Message> Comm::try_recv(int source, int tag) {
  return world_->match_now(rank_, source, tag);
}

bool Comm::iprobe(int source, int tag, int* out_source, int* out_tag) {
  return world_->probe(rank_, source, tag, out_source, out_tag);
}

void Comm::barrier() {
  // Binomial fan-in to rank 0, then binomial fan-out: O(log n) rounds on
  // the critical path instead of O(n) sequential messages through rank 0.
  const std::vector<std::byte> empty;
  int mask = 1;
  while (mask < size()) {
    if (rank_ & mask) break;
    if (rank_ + mask < size()) world_->wait_match(rank_, rank_ + mask, kTagBarrierUp);
    mask <<= 1;
  }
  if (rank_ != 0) {
    // mask is the lowest set bit of rank_: the binomial-tree parent link.
    world_->post(rank_, rank_ - mask, kTagBarrierUp, empty);
    world_->wait_match(rank_, rank_ - mask, kTagBarrierDown);
  }
  for (mask >>= 1; mask > 0; mask >>= 1) {
    if (rank_ + mask < size()) world_->post(rank_, rank_ + mask, kTagBarrierDown, empty);
  }
}

void Comm::broadcast(std::vector<std::byte>& data, int root) {
  // Binomial tree rooted at `root` (ranks taken relative to the root, as
  // in MPICH): each subtree head receives once, then forwards to
  // log-many children.
  const int n = size();
  const int rel = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int parent = (rank_ - mask + n) % n;
      data = world_->wait_match(rank_, parent, kTagBcast).data;
      break;
    }
    mask <<= 1;
  }
  for (mask >>= 1; mask > 0; mask >>= 1) {
    if (rel + mask < n) {
      const int child = (rank_ + mask) % n;
      world_->post(rank_, child, kTagBcast, data);
    }
  }
}

int64_t Comm::reduce_sum(int64_t value, int root) {
  // Binomial fan-in mirroring broadcast's tree. Integer addition is
  // exactly associative, so the tree order matches the old flat sum.
  const int n = size();
  const int rel = (rank_ - root + n) % n;
  int64_t total = value;
  for (int mask = 1; mask < n; mask <<= 1) {
    if (rel & mask) {
      const int parent = (rank_ - mask + n) % n;
      ser::Writer w;
      w.put_i64(total);
      world_->post(rank_, parent, kTagReduce, w.bytes());
      return 0;
    }
    if (rel + mask < n) {
      const int child = (rank_ + mask) % n;
      Message m = world_->wait_match(rank_, child, kTagReduce);
      total += m.reader().get_i64();
    }
  }
  return total;  // only the root reaches here
}

int64_t Comm::allreduce_sum(int64_t value) {
  int64_t total = reduce_sum(value, 0);
  ser::Writer w;
  w.put_i64(total);
  std::vector<std::byte> buf = w.take();
  broadcast(buf, 0);
  return ser::Reader(buf).get_i64();
}

double Comm::allreduce_sum(double value) {
  // Route through gather so every rank sums in the same order and the
  // result is bit-identical everywhere (a tree reduction would change the
  // floating-point association).
  ser::Writer w;
  w.put_f64(value);
  auto parts = gather(w.bytes(), 0);
  std::vector<std::byte> buf;
  if (rank_ == 0) {
    double total = 0;
    for (const auto& p : parts) total += ser::Reader(p).get_f64();
    ser::Writer out;
    out.put_f64(total);
    buf = out.take();
  }
  broadcast(buf, 0);
  return ser::Reader(buf).get_f64();
}

std::vector<std::vector<std::byte>> Comm::gather(std::span<const std::byte> data, int root) {
  // Gather stays flat: the root needs every rank's payload anyway, so a
  // tree only adds store-and-forward copies of the concatenated data.
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<size_t>(size()));
    out[static_cast<size_t>(root)] = {data.begin(), data.end()};
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = world_->wait_match(rank_, r, kTagGather);
      out[static_cast<size_t>(r)] = std::move(m.data);
    }
  } else {
    world_->post(rank_, root, kTagGather, data);
  }
  return out;
}

double Comm::wtime() const { return ilps::wtime(); }

void Comm::abort(const std::string& why) { world_->abort(why); }

}  // namespace ilps::mpi
