#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/sync.h"
#include "common/timer.h"
#include "mpi/comm.h"
#include "obs/trace.h"

namespace ilps::mpi {

namespace {
// Internal tags for collectives, outside the user range. The barrier has a
// shared-memory fast path and sends no messages; the data-carrying
// collectives (broadcast/reduce/gather) still move payloads point-to-point.
constexpr int kTagBcast = kMaxUserTag + 3;
constexpr int kTagReduce = kMaxUserTag + 4;
constexpr int kTagGather = kMaxUserTag + 5;

// Send-buffer freelist cap, shared by the owner pool and the return box.
constexpr size_t kMaxPooled = 64;

// Bounded yield-spin before a barrier waiter sleeps on the condition
// variable. Ranks are threads (often oversubscribed on few cores), so the
// spin must yield the CPU rather than burn it.
constexpr int kBarrierSpins = 32;

// Wildcard semantics: ANY_TAG covers user tags only, so a plain recv can
// never swallow a collective payload or a death notice racing past it;
// ANY_TAG_OR_FAULT additionally covers kTagFault for fault-aware loops.
bool tag_matches(int pattern, int tag) {
  if (pattern == ANY_TAG) return tag < kMaxUserTag;
  if (pattern == ANY_TAG_OR_FAULT) return tag < kMaxUserTag || tag == kTagFault;
  return tag == pattern;
}

bool envelope_matches(int want_source, int want_tag, int source, int tag) {
  return (want_source == ANY_SOURCE || source == want_source) && tag_matches(want_tag, tag);
}
}  // namespace

// Lock-light mailbox: producers never touch shared matching state. Each
// (source → dest) pair has its own SPSC staging lane; a post locks only
// that lane (contended at worst with the consumer's drain, never with
// other producers). The owner drains lanes into consumer-private
// per-(source, tag) FIFO buckets and matches there with no lock at all.
//
// Ordering: every item is stamped from a mailbox-wide atomic arrival
// counter at post time. Items from one source are stamped in program
// order, so each bucket (fed by exactly one lane) stays seq-sorted and a
// wildcard recv — which takes the lowest seq among matching bucket fronts
// — returns exactly the message a single arrival-ordered queue would
// have. Causally ordered posts from different sources get increasing
// seqs because the fetch_add on the arrival counter is part of the
// happens-before chain.
//
// Wakeup protocol (eventcount): the owner registers the envelope it is
// about to block on under wake_mu, publishes `maybe_waiting` with seq_cst,
// then re-drains every lane before sleeping. A producer stamps its lane
// (seq_cst flag inside the lane critical section), then checks
// `maybe_waiting` with seq_cst: either the producer observes the waiter
// (and signals under wake_mu), or the waiter's re-drain observes the
// item — the classic Dekker store-buffering argument, so no wakeup is
// ever lost while producers that find no waiter skip the syscall
// entirely.
struct World::Mailbox {
  struct Item {
    uint64_t seq;
    Message msg;
  };
  struct Bucket {
    std::deque<Item> q;
  };

  static uint64_t key(int source, int tag) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(source)) << 32) |
           static_cast<uint32_t>(tag);
  }

  // One SPSC staging lane per source rank.
  struct Lane {
    ilps::Mutex mu;
    std::vector<Item> staged ILPS_GUARDED_BY(mu);
    // Dekker-side flag: deliberately read/written outside mu by design
    // (see the wakeup-protocol comment above), so it must not be
    // GUARDED_BY.
    ilps::Atomic<bool> has_items{false};
  };
  std::vector<std::unique_ptr<Lane>> lanes;
  ilps::Atomic<uint64_t> next_seq{0};

  // Consumer-private matching state: only the owning rank thread touches
  // the buckets, after draining the lanes.
  std::unordered_map<uint64_t, Bucket> buckets;

  // Eventcount wakeup state (wake_mu guards everything but maybe_waiting,
  // whose whole job is to be checked without the lock — the Dekker
  // partner of the consumer's register-then-redrain).
  ilps::Atomic<bool> maybe_waiting{false};
  ilps::Mutex wake_mu;
  ilps::CondVar cv;
  bool waiting ILPS_GUARDED_BY(wake_mu) = false;
  bool notified ILPS_GUARDED_BY(wake_mu) = false;
  int want_source ILPS_GUARDED_BY(wake_mu) = ANY_SOURCE;
  int want_tag ILPS_GUARDED_BY(wake_mu) = ANY_TAG;

  // Return box: peers deposit consumed message buffers here so one-way
  // flows prime the *sender's* freelist (see Comm::recycle(Message&&)).
  ilps::Mutex ret_mu;
  std::vector<std::vector<std::byte>> returns ILPS_GUARDED_BY(ret_mu);

  // Owner thread only: move staged items into the private buckets.
  void drain() {
    for (auto& lp : lanes) {
      Lane& lane = *lp;
      if (!lane.has_items.load(std::memory_order_seq_cst)) continue;
      std::vector<Item> got;
      {
        ilps::LockGuard lock(lane.mu);
        got.swap(lane.staged);
        // ordering: relaxed is enough — the flag only changes inside
        // lane.mu's critical section here, and a producer that races the
        // clear re-stores true (seq_cst) after its push under the same
        // lock, so no set flag is ever lost.
        lane.has_items.store(false, std::memory_order_relaxed);
      }
      for (auto& it : got) {
        buckets[key(it.msg.source, it.msg.tag)].q.push_back(std::move(it));
      }
    }
  }
};

struct WorldState {
  ilps::Atomic<bool> aborted{false};
  ilps::Mutex abort_mutex;
  std::string abort_reason ILPS_GUARDED_BY(abort_mutex);

  // First writer wins; readers take the (cold-path) lock so the string
  // read needs no publication argument.
  void set_abort_reason(const std::string& why) {
    ilps::LockGuard lock(abort_mutex);
    if (abort_reason.empty()) abort_reason = why;
  }
  std::string copy_abort_reason() {
    ilps::LockGuard lock(abort_mutex);
    return abort_reason;
  }

  // Traffic / wakeup / pool tallies: pure stats, no protocol reads them.
  ilps::RelaxedCounter messages;
  ilps::RelaxedCounter bytes;
  ilps::RelaxedCounter wakeups;
  ilps::RelaxedCounter wakeups_suppressed;
  ilps::RelaxedCounter pool_hits;
  ilps::RelaxedCounter pool_misses;
  ilps::RelaxedCounter barrier_fastpath;
  ilps::RelaxedCounter collective_wakeups;

  // Sense-reversing shared-memory barrier. Ranks are threads in one
  // process, so a barrier needs no messages at all: arrive on an atomic
  // counter, the last arriver flips the generation, everyone else
  // yield-spins briefly and then sleeps on one condition variable. The
  // sleeper count and the generation flip form a Dekker pair (both
  // seq_cst), so the releaser either sees the sleeper (and notifies under
  // the mutex) or the sleeper's predicate sees the new generation. The
  // atomics are read outside bar.mu by design and must not be GUARDED_BY.
  struct BarrierSync {
    ilps::Atomic<int> arrived{0};
    ilps::Atomic<uint64_t> generation{0};
    ilps::Atomic<int> sleepers{0};
    ilps::Mutex mu;
    ilps::CondVar cv;
  };
  BarrierSync bar;

  // ---- fault injection ----
  FaultPlan plan;
  std::vector<std::unique_ptr<ilps::Atomic<bool>>> fired;  // parallel to plan.actions
  std::vector<char> dead;    // written by the dying thread, read after run()
  std::vector<char> doomed;  // only the owning rank reads/writes its slot
  // Drain bookkeeping: hung/doomed ranks are released (and killed) once
  // every other rank has finished, so run() can always join its threads.
  ilps::Mutex fin_mutex;
  ilps::CondVar fin_cv;
  int finished ILPS_GUARDED_BY(fin_mutex) = 0;
  int parked_faulty ILPS_GUARDED_BY(fin_mutex) = 0;
};

World::World(int size) : size_(size), state_(std::make_unique<WorldState>()) {
  if (size <= 0) throw CommError("world size must be positive");
  boxes_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    auto box = std::make_unique<Mailbox>();
    box->lanes.reserve(static_cast<size_t>(size));
    for (int s = 0; s < size; ++s) box->lanes.push_back(std::make_unique<Mailbox::Lane>());
    boxes_.push_back(std::move(box));
  }
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& rank_main) {
  state_->aborted.store(false);
  // Fresh per-rank event buffers each run; a previous run's session (read
  // by the runner between runs) is released here.
  obs_ = obs::trace_enabled()
             ? std::make_unique<obs::Session>(size_, obs::default_capacity())
             : nullptr;
  {
    // Reset per-run fault bookkeeping (fired flags persist across runs so a
    // restart driver can inspect them; they are reset by set_fault_plan).
    ilps::LockGuard lock(state_->fin_mutex);
    state_->finished = 0;
    state_->parked_faulty = 0;
    state_->dead.assign(static_cast<size_t>(size_), 0);
    state_->doomed.assign(static_cast<size_t>(size_), 0);
  }
  state_->bar.arrived.store(0);
  state_->bar.generation.store(0);
  state_->bar.sleepers.store(0);
  std::exception_ptr first_error;
  ilps::Mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &first_error, &error_mutex] {
      log::set_thread_rank(r);
      if (obs_) obs::attach(&obs_->rank(r));
      Comm comm(this, r);
      try {
        rank_main(comm);
      } catch (const RankKilled&) {
        on_rank_dead(r);
      } catch (...) {
        {
          ilps::LockGuard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort("rank " + std::to_string(r) + " threw");
      }
      finish_rank();
      obs::detach();
      log::set_thread_rank(-1);
    });
  }
  for (auto& t : threads) t.join();

  // Clear mailboxes so a World can host several independent runs.
  for (auto& box : boxes_) {
    for (auto& lane : box->lanes) {
      ilps::LockGuard lock(lane->mu);
      lane->staged.clear();
      lane->has_items.store(false);
    }
    box->buckets.clear();
    box->next_seq.store(0);
    box->maybe_waiting.store(false);
    {
      ilps::LockGuard lock(box->wake_mu);
      box->waiting = false;
      box->notified = false;
    }
    {
      ilps::LockGuard lock(box->ret_mu);
      box->returns.clear();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  if (state_->aborted.load()) {
    throw CommError("world aborted: " + state_->copy_abort_reason());
  }
}

TrafficStats World::stats() const {
  return TrafficStats{state_->messages.load(),
                      state_->bytes.load(),
                      state_->wakeups.load(),
                      state_->wakeups_suppressed.load(),
                      state_->pool_hits.load(),
                      state_->pool_misses.load(),
                      state_->barrier_fastpath.load(),
                      state_->collective_wakeups.load()};
}

void World::post(int source, int dest, int tag, std::vector<std::byte>&& data) {
  if (dest < 0 || dest >= size_) {
    throw CommError("send to invalid rank " + std::to_string(dest));
  }
  state_->messages.add(1);
  state_->bytes.add(data.size());
  Mailbox& box = *boxes_[static_cast<size_t>(dest)];
  Mailbox::Lane& lane = *box.lanes[static_cast<size_t>(source)];
  {
    ilps::LockGuard lock(lane.mu);
    // ordering: acq_rel keeps the arrival counter a causal chain — a post
    // that happens-after another (same source, or via any cross-rank
    // synchronization) reads the later counter value, which is what makes
    // wildcard matching equal to a single arrival-ordered queue.
    lane.staged.push_back(Mailbox::Item{
        box.next_seq.fetch_add(1, std::memory_order_acq_rel),
        Message{source, tag, std::move(data)}});
    lane.has_items.store(true, std::memory_order_seq_cst);
  }
  // Dekker partner of the consumer's register-then-redrain: the seq_cst
  // flag store above and this seq_cst load mean either we see the waiter
  // or its re-drain sees our item.
  if (box.maybe_waiting.load(std::memory_order_seq_cst)) {
    bool wake = false;
    {
      ilps::LockGuard lock(box.wake_mu);
      if (box.waiting && !box.notified &&
          envelope_matches(box.want_source, box.want_tag, source, tag)) {
        box.notified = true;
        wake = true;
      }
    }
    if (wake) {
      state_->wakeups.add(1);
      box.cv.notify_one();
      return;
    }
  }
  state_->wakeups_suppressed.add(1);
}

void World::post(int source, int dest, int tag, std::span<const std::byte> data) {
  post(source, dest, tag, std::vector<std::byte>(data.begin(), data.end()));
}

std::optional<Message> World::take_now(Mailbox& box, int source, int tag) {
  if (source != ANY_SOURCE && tag >= 0) {
    // Exact envelope: O(1) bucket lookup.
    auto it = box.buckets.find(Mailbox::key(source, tag));
    if (it == box.buckets.end() || it->second.q.empty()) return std::nullopt;
    Message m = std::move(it->second.q.front().msg);
    it->second.q.pop_front();
    return m;
  }
  // Wildcard: the oldest matching message is the lowest arrival number
  // among matching bucket fronts (bucket queues are arrival-ordered, so
  // only fronts can be oldest).
  Mailbox::Bucket* best = nullptr;
  uint64_t best_seq = 0;
  for (auto& [key, b] : box.buckets) {
    if (b.q.empty()) continue;
    const Mailbox::Item& front = b.q.front();
    if (!envelope_matches(source, tag, front.msg.source, front.msg.tag)) continue;
    if (best == nullptr || front.seq < best_seq) {
      best = &b;
      best_seq = front.seq;
    }
  }
  if (best == nullptr) return std::nullopt;
  Message m = std::move(best->q.front().msg);
  best->q.pop_front();
  return m;
}

bool World::probe_now(const Mailbox& box, int source, int tag, int* out_source,
                      int* out_tag) {
  if (source != ANY_SOURCE && tag >= 0) {
    auto it = box.buckets.find(Mailbox::key(source, tag));
    if (it == box.buckets.end() || it->second.q.empty()) return false;
    if (out_source != nullptr) *out_source = source;
    if (out_tag != nullptr) *out_tag = tag;
    return true;
  }
  const Mailbox::Item* best = nullptr;
  for (const auto& [key, b] : box.buckets) {
    if (b.q.empty()) continue;
    const Mailbox::Item& front = b.q.front();
    if (!envelope_matches(source, tag, front.msg.source, front.msg.tag)) continue;
    if (best == nullptr || front.seq < best->seq) best = &front;
  }
  if (best == nullptr) return false;
  if (out_source != nullptr) *out_source = best->msg.source;
  if (out_tag != nullptr) *out_tag = best->msg.tag;
  return true;
}

std::optional<Message> World::match_now(int self, int source, int tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  box.drain();
  return take_now(box, source, tag);
}

Message World::wait_match(int self, int source, int tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  const bool is_doomed = doomed(self);
  bool parked = false;
  while (true) {
    box.drain();
    if (auto m = take_now(box, source, tag)) {
      if (parked) {
        ilps::LockGuard fl(state_->fin_mutex);
        --state_->parked_faulty;
      }
      return std::move(*m);
    }
    if (state_->aborted.load()) {
      throw CommError("recv interrupted: world aborted (" + state_->copy_abort_reason() +
                      ")");
    }
    if (is_doomed) {
      // A doomed rank (its request was dropped) will never get a reply.
      // Count it as parked so quiescent peers can drain, then kill it.
      {
        ilps::LockGuard fl(state_->fin_mutex);
        if (!parked) {
          ++state_->parked_faulty;
          parked = true;
          state_->fin_cv.notify_all();
        }
        if (state_->finished + state_->parked_faulty >= size_) throw RankKilled{self};
      }
      // Poll: finish_rank() notifies box cvs without holding wake_mu, so a
      // timed wait avoids any lost-wakeup ordering subtleties.
      ilps::UniqueLock lock(box.wake_mu);
      box.cv.wait_for(lock, std::chrono::milliseconds(5));
      continue;
    }
    // Register the envelope, publish the flag, then re-drain before
    // sleeping (the Dekker pair of post()'s flag-store / flag-load).
    {
      ilps::LockGuard lock(box.wake_mu);
      box.waiting = true;
      box.want_source = source;
      box.want_tag = tag;
      box.notified = false;
    }
    box.maybe_waiting.store(true, std::memory_order_seq_cst);
    box.drain();
    if (auto m = take_now(box, source, tag)) {
      box.maybe_waiting.store(false, std::memory_order_seq_cst);
      {
        ilps::LockGuard lock(box.wake_mu);
        box.waiting = false;
        box.notified = false;
      }
      if (parked) {
        ilps::LockGuard fl(state_->fin_mutex);
        --state_->parked_faulty;
      }
      return std::move(*m);
    }
    {
      // The wait loop re-checks `aborted`: an abort that completed between
      // the loop-top check and our registration has already overwritten
      // and consumed its `notified = true`, and will never notify again.
      ilps::UniqueLock lock(box.wake_mu);
      while (!box.notified && !state_->aborted.load()) box.cv.wait(lock);
      box.waiting = false;
      box.notified = false;
    }
    box.maybe_waiting.store(false, std::memory_order_seq_cst);
  }
}

std::optional<Message> World::wait_match_for(int self, int source, int tag, double seconds) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  while (true) {
    box.drain();
    if (auto m = take_now(box, source, tag)) return m;
    if (state_->aborted.load()) {
      throw CommError("recv interrupted: world aborted (" + state_->copy_abort_reason() +
                      ")");
    }
    {
      ilps::LockGuard lock(box.wake_mu);
      box.waiting = true;
      box.want_source = source;
      box.want_tag = tag;
      box.notified = false;
    }
    box.maybe_waiting.store(true, std::memory_order_seq_cst);
    box.drain();
    if (auto m = take_now(box, source, tag)) {
      box.maybe_waiting.store(false, std::memory_order_seq_cst);
      ilps::LockGuard lock(box.wake_mu);
      box.waiting = false;
      box.notified = false;
      return m;
    }
    bool signalled = false;
    {
      ilps::UniqueLock lock(box.wake_mu);
      // Timed wait loop: leave on a signal (or abort), or report a timeout
      // with the final state of the predicate, exactly like the
      // predicate-taking std overload.
      while (!box.notified && !state_->aborted.load()) {
        if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
      signalled = box.notified || state_->aborted.load();
      box.waiting = false;
      box.notified = false;
    }
    box.maybe_waiting.store(false, std::memory_order_seq_cst);
    if (!signalled) {
      // Timed out; one final pass through the same matching helper in case
      // a post raced the deadline.
      box.drain();
      return take_now(box, source, tag);
    }
  }
}

bool World::probe(int self, int source, int tag, int* out_source, int* out_tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(self)];
  box.drain();
  return probe_now(box, source, tag, out_source, out_tag);
}

void World::abort(const std::string& why) {
  state_->set_abort_reason(why);
  state_->aborted.store(true);
  for (auto& box : boxes_) {
    {
      ilps::LockGuard lock(box->wake_mu);
      // Release waiters past their predicate so they observe the abort.
      box->notified = true;
    }
    box->cv.notify_all();
  }
  {
    ilps::LockGuard lock(state_->bar.mu);
  }
  state_->bar.cv.notify_all();
}

bool World::aborted() const { return state_->aborted.load(); }

// ---- barrier ----

void World::barrier_cross(int /*self*/) {
  auto& st = *state_;
  auto& bar = st.bar;
  // ordering: acquire pairs with the releaser's seq_cst generation flip,
  // so everything the previous episode's ranks wrote before arriving is
  // visible once we observe the flip.
  const uint64_t gen = bar.generation.load(std::memory_order_acquire);
  // ordering: acq_rel chains every arrival, so the last arriver's flip
  // happens-after all pre-barrier writes of every rank.
  const int pos = bar.arrived.fetch_add(1, std::memory_order_acq_rel);
  if (pos + 1 == size_) {
    // Last arriver: reset for the next episode, flip the generation, and
    // wake sleepers only if there are any (Dekker pair with the sleeper
    // increment below).
    // ordering: relaxed — only the last arriver writes, and the next
    // episode's arrivals are ordered behind the seq_cst flip below.
    bar.arrived.store(0, std::memory_order_relaxed);
    bar.generation.store(gen + 1, std::memory_order_seq_cst);
    st.barrier_fastpath.add(1);
    if (bar.sleepers.load(std::memory_order_seq_cst) > 0) {
      {
        ilps::LockGuard lock(bar.mu);
      }
      bar.cv.notify_all();
      st.collective_wakeups.add(1);
    }
    return;
  }
  for (int spin = 0; spin < kBarrierSpins; ++spin) {
    // ordering: acquire — observing the flip must also publish the other
    // ranks' pre-barrier writes to this rank.
    if (bar.generation.load(std::memory_order_acquire) != gen) {
      st.barrier_fastpath.add(1);
      return;
    }
    if (st.aborted.load()) {
      throw CommError("barrier interrupted: world aborted (" + st.copy_abort_reason() +
                      ")");
    }
    std::this_thread::yield();
  }
  bar.sleepers.fetch_add(1, std::memory_order_seq_cst);
  {
    ilps::UniqueLock lock(bar.mu);
    // ordering: acquire — same edge as the spin loop above, re-checked
    // under the wakeup mutex.
    while (bar.generation.load(std::memory_order_acquire) == gen && !st.aborted.load()) {
      bar.cv.wait(lock);
    }
  }
  bar.sleepers.fetch_sub(1, std::memory_order_seq_cst);
  // ordering: acquire — distinguishes a real release from an abort wakeup
  // while keeping the publication edge on the release path.
  if (bar.generation.load(std::memory_order_acquire) == gen) {
    throw CommError("barrier interrupted: world aborted (" + st.copy_abort_reason() + ")");
  }
}

// ---- fault injection ----

void World::set_fault_plan(FaultPlan plan) {
  state_->plan = std::move(plan);
  state_->fired.clear();
  for (size_t i = 0; i < state_->plan.actions.size(); ++i) {
    state_->fired.push_back(std::make_unique<ilps::Atomic<bool>>(false));
  }
}

std::vector<bool> World::fault_fired() const {
  std::vector<bool> out;
  out.reserve(state_->fired.size());
  for (const auto& f : state_->fired) out.push_back(f->load());
  return out;
}

std::vector<int> World::dead_ranks() const {
  std::vector<int> out;
  for (size_t i = 0; i < state_->dead.size(); ++i) {
    if (state_->dead[i] != 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool World::doomed(int rank) const {
  const auto& d = state_->doomed;
  return static_cast<size_t>(rank) < d.size() && d[static_cast<size_t>(rank)] != 0;
}

bool World::apply_fault(int rank, uint64_t message_number) {
  auto& st = *state_;
  if (st.plan.actions.empty()) return true;
  bool deliver = true;
  for (size_t i = 0; i < st.plan.actions.size(); ++i) {
    const FaultAction& a = st.plan.actions[i];
    if (a.rank != rank || a.at_message != message_number) continue;
    if (st.fired[i]->exchange(true)) continue;  // each action fires once
    switch (a.kind) {
      case FaultAction::Kind::kKillRank:
        throw RankKilled{rank};
      case FaultAction::Kind::kHangRank:
        park_until_drained(rank);  // throws RankKilled when released
        break;
      case FaultAction::Kind::kDropMessage:
        // The message is lost; since every client exchange is a
        // synchronous RPC the sender can never make progress again.
        if (static_cast<size_t>(rank) < st.doomed.size()) {
          st.doomed[static_cast<size_t>(rank)] = 1;
        }
        deliver = false;
        break;
      case FaultAction::Kind::kDelayMessage:
        std::this_thread::sleep_for(std::chrono::duration<double>(a.delay_seconds));
        break;
    }
  }
  return deliver;
}

void World::on_rank_dead(int rank) {
  auto& st = *state_;
  if (static_cast<size_t>(rank) < st.dead.size()) st.dead[static_cast<size_t>(rank)] = 1;
  // Runs on the dying rank's own thread, so the instant lands in its
  // buffer — and exactly once per death (on_rank_dead has one call site).
  obs::instant(obs::EventKind::kRankDead, rank);
  log::warn("rank ", rank, " died (fault injection)");
  // Death notice to every surviving mailbox; fault-aware receivers (the
  // ADLB server) match kTagFault, everyone else never requests it.
  const std::vector<std::byte> empty;
  for (int r = 0; r < size_; ++r) {
    if (r != rank) post(rank, r, kTagFault, empty);
  }
}

void World::finish_rank() {
  {
    ilps::LockGuard lock(state_->fin_mutex);
    ++state_->finished;
    state_->fin_cv.notify_all();
  }
  // Wake doomed pollers blocked in wait_match so they observe the drain
  // (they use a timed wait with no predicate, so a bare notify suffices
  // and normal predicate-guarded waiters are not disturbed).
  for (auto& box : boxes_) box->cv.notify_all();
}

void World::park_until_drained(int rank) {
  {
    ilps::UniqueLock lock(state_->fin_mutex);
    ++state_->parked_faulty;
    state_->fin_cv.notify_all();
    while (state_->finished + state_->parked_faulty < size_) {
      state_->fin_cv.wait(lock);
    }
  }
  throw RankKilled{rank};
}

FaultPlan FaultPlan::random_kill(uint64_t seed, int first_rank, int last_rank,
                                 uint64_t lo_message, uint64_t hi_message) {
  Rng rng(seed);
  const int victim =
      first_rank + static_cast<int>(rng.next_below(
                       static_cast<uint64_t>(last_rank - first_rank + 1)));
  const uint64_t at = lo_message + rng.next_below(hi_message - lo_message + 1);
  FaultPlan plan;
  plan.kill_rank(victim, at);
  return plan;
}

// ---- buffer recycling ----

void World::recycle_to_origin(int origin, std::vector<std::byte>&& buf) {
  Mailbox& box = *boxes_[static_cast<size_t>(origin)];
  ilps::LockGuard lock(box.ret_mu);
  if (box.returns.size() < kMaxPooled) box.returns.push_back(std::move(buf));
}

// ---- Comm ----

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, std::span<const std::byte> data) {
  if (tag < 0 || tag >= kMaxUserTag) {
    throw CommError("user tag out of range: " + std::to_string(tag));
  }
  ++sent_;
  if (!world_->apply_fault(rank_, sent_)) return;  // dropped message
  world_->post(rank_, dest, tag, data);
  obs::instant(obs::EventKind::kMpiSend, dest, static_cast<int64_t>(data.size()));
}

void Comm::send(int dest, int tag, std::vector<std::byte>&& data) {
  if (tag < 0 || tag >= kMaxUserTag) {
    throw CommError("user tag out of range: " + std::to_string(tag));
  }
  ++sent_;
  const size_t n = data.size();
  if (!world_->apply_fault(rank_, sent_)) return;  // dropped message
  world_->post(rank_, dest, tag, std::move(data));
  obs::instant(obs::EventKind::kMpiSend, dest, static_cast<int64_t>(n));
}

std::vector<std::byte> Comm::acquire_buffer() {
  if (pool_.empty()) {
    // Pull home any buffers peers deposited in our return box.
    auto& box = *world_->boxes_[static_cast<size_t>(rank_)];
    ilps::LockGuard lock(box.ret_mu);
    if (!box.returns.empty()) pool_.swap(box.returns);
  }
  if (!pool_.empty()) {
    std::vector<std::byte> buf = std::move(pool_.back());
    pool_.pop_back();
    world_->state_->pool_hits.add(1);
    return buf;
  }
  world_->state_->pool_misses.add(1);
  return {};
}

void Comm::recycle(std::vector<std::byte>&& buf) {
  // Small bounded freelist; beyond the cap buffers are just freed. Owned
  // by this rank's thread, so no lock.
  if (pool_.size() < kMaxPooled) pool_.push_back(std::move(buf));
}

void Comm::recycle(Message&& m) {
  if (m.source >= 0 && m.source < world_->size() && m.source != rank_) {
    world_->recycle_to_origin(m.source, std::move(m.data));
  } else {
    recycle(std::move(m.data));
  }
}

Message Comm::recv(int source, int tag) {
  Message m = world_->wait_match(rank_, source, tag);
  obs::instant(obs::EventKind::kMpiRecv, m.source, static_cast<int64_t>(m.data.size()));
  return m;
}

std::optional<Message> Comm::recv_for(double seconds, int source, int tag) {
  auto m = world_->wait_match_for(rank_, source, tag, seconds);
  if (m) {
    obs::instant(obs::EventKind::kMpiRecv, m->source, static_cast<int64_t>(m->data.size()));
  }
  return m;
}

std::optional<Message> Comm::try_recv(int source, int tag) {
  return world_->match_now(rank_, source, tag);
}

bool Comm::iprobe(int source, int tag, int* out_source, int* out_tag) {
  return world_->probe(rank_, source, tag, out_source, out_tag);
}

void Comm::barrier() { world_->barrier_cross(rank_); }

void Comm::broadcast(std::vector<std::byte>& data, int root) {
  // Binomial tree rooted at `root` (ranks taken relative to the root, as
  // in MPICH): each subtree head receives once, then forwards to
  // log-many children.
  const int n = size();
  const int rel = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int parent = (rank_ - mask + n) % n;
      data = world_->wait_match(rank_, parent, kTagBcast).data;
      break;
    }
    mask <<= 1;
  }
  for (mask >>= 1; mask > 0; mask >>= 1) {
    if (rel + mask < n) {
      const int child = (rank_ + mask) % n;
      world_->post(rank_, child, kTagBcast, data);
    }
  }
}

int64_t Comm::reduce_sum(int64_t value, int root) {
  // Binomial fan-in mirroring broadcast's tree. Integer addition is
  // exactly associative, so the tree order matches the old flat sum.
  const int n = size();
  const int rel = (rank_ - root + n) % n;
  int64_t total = value;
  for (int mask = 1; mask < n; mask <<= 1) {
    if (rel & mask) {
      const int parent = (rank_ - mask + n) % n;
      ser::Writer w;
      w.put_i64(total);
      world_->post(rank_, parent, kTagReduce, w.bytes());
      return 0;
    }
    if (rel + mask < n) {
      const int child = (rank_ + mask) % n;
      Message m = world_->wait_match(rank_, child, kTagReduce);
      total += m.reader().get_i64();
    }
  }
  return total;  // only the root reaches here
}

int64_t Comm::allreduce_sum(int64_t value) {
  int64_t total = reduce_sum(value, 0);
  ser::Writer w;
  w.put_i64(total);
  std::vector<std::byte> buf = w.take();
  broadcast(buf, 0);
  return ser::Reader(buf).get_i64();
}

double Comm::allreduce_sum(double value) {
  // Route through gather so every rank sums in the same order and the
  // result is bit-identical everywhere (a tree reduction would change the
  // floating-point association).
  ser::Writer w;
  w.put_f64(value);
  auto parts = gather(w.bytes(), 0);
  std::vector<std::byte> buf;
  if (rank_ == 0) {
    double total = 0;
    for (const auto& p : parts) total += ser::Reader(p).get_f64();
    ser::Writer out;
    out.put_f64(total);
    buf = out.take();
  }
  broadcast(buf, 0);
  return ser::Reader(buf).get_f64();
}

std::vector<std::vector<std::byte>> Comm::gather(std::span<const std::byte> data, int root) {
  // Gather stays flat: the root needs every rank's payload anyway, so a
  // tree only adds store-and-forward copies of the concatenated data.
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<size_t>(size()));
    out[static_cast<size_t>(root)] = {data.begin(), data.end()};
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = world_->wait_match(rank_, r, kTagGather);
      out[static_cast<size_t>(r)] = std::move(m.data);
    }
  } else {
    world_->post(rank_, root, kTagGather, data);
  }
  return out;
}

double Comm::wtime() const { return ilps::wtime(); }

void Comm::abort(const std::string& why) { world_->abort(why); }

}  // namespace ilps::mpi
