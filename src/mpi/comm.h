// ilps::mpi — a message-passing library with MPI semantics whose ranks are
// OS threads. It exists so the ADLB and Turbine layers above it are written
// exactly as they would be against real MPI: ranks share nothing, and all
// communication is explicit sends and receives of serialized byte buffers
// matched by (source, tag).
//
// Differences from real MPI, by design:
//  - sends are always eager/buffered (never block on the receiver);
//  - collectives are implemented over point-to-point with reserved tags;
//  - a rank that throws aborts the world, waking peers blocked in recv.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/buffer.h"

namespace ilps::mpi {

// Wildcards for recv/probe matching, as in MPI.
inline constexpr int ANY_SOURCE = -1;
inline constexpr int ANY_TAG = -1;

// User tags must lie in [0, kMaxUserTag); larger tags are reserved for
// collectives implemented inside this library.
inline constexpr int kMaxUserTag = 1 << 24;

struct Message {
  int source = ANY_SOURCE;
  int tag = ANY_TAG;
  std::vector<std::byte> data;

  ser::Reader reader() const { return ser::Reader(data); }
};

// Aggregate traffic counters for a World; read them after run() returns or
// accept slightly stale values during a run.
struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

class World;

// A rank's handle to the world. Each rank thread receives its own Comm;
// Comm objects must not be shared across rank threads.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // Point-to-point. send never blocks; recv blocks until a matching
  // message arrives or the world aborts (then it throws CommError).
  void send(int dest, int tag, std::span<const std::byte> data);
  void send(int dest, int tag, const ser::Writer& w) { send(dest, tag, w.bytes()); }
  void send_str(int dest, int tag, std::string_view s) { send(dest, tag, ser::as_bytes(s)); }

  Message recv(int source = ANY_SOURCE, int tag = ANY_TAG);

  // Non-blocking receive: returns the message if one matches now.
  std::optional<Message> try_recv(int source = ANY_SOURCE, int tag = ANY_TAG);

  // Non-blocking probe: reports whether a matching message is queued and,
  // if so, its envelope.
  bool iprobe(int source, int tag, int* out_source = nullptr, int* out_tag = nullptr);

  // Collectives. Every rank must call these in the same order.
  void barrier();
  void broadcast(std::vector<std::byte>& data, int root);
  int64_t reduce_sum(int64_t value, int root);
  int64_t allreduce_sum(int64_t value);
  double allreduce_sum(double value);
  std::vector<std::vector<std::byte>> gather(std::span<const std::byte> data, int root);

  // Wall-clock seconds (MPI_Wtime analogue).
  double wtime() const;

  // Signals all ranks that the program is being torn down abnormally.
  void abort(const std::string& why);

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
};

// Owns the mailboxes and the rank threads. Usage:
//
//   World world(8);
//   world.run([](Comm& comm) { ... rank body ... });
//
// run() joins every rank and rethrows the first rank exception, if any.
class World {
 public:
  explicit World(int size);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return size_; }

  void run(const std::function<void(Comm&)>& rank_main);

  TrafficStats stats() const;

 private:
  friend class Comm;
  struct Mailbox;

  void post(int source, int dest, int tag, std::span<const std::byte> data);
  Message wait_match(int self, int source, int tag);
  std::optional<Message> match_now(int self, int source, int tag);
  bool probe(int self, int source, int tag, int* out_source, int* out_tag);
  void abort(const std::string& why);
  bool aborted() const;

  int size_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::unique_ptr<struct WorldState> state_;
};

}  // namespace ilps::mpi
