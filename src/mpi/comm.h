// ilps::mpi — a message-passing library with MPI semantics whose ranks are
// OS threads. It exists so the ADLB and Turbine layers above it are written
// exactly as they would be against real MPI: ranks share nothing, and all
// communication is explicit sends and receives of serialized byte buffers
// matched by (source, tag).
//
// Differences from real MPI, by design:
//  - sends are always eager/buffered (never block on the receiver);
//  - collectives are implemented over point-to-point with reserved tags;
//  - a rank that throws aborts the world, waking peers blocked in recv.
//
// Fault injection (src/ckpt's substrate): a World can carry a FaultPlan
// that kills a rank at its Nth send, makes it hang, or drops/delays one
// of its messages. A killed rank does NOT abort the world — its thread
// exits, a death notice (kTagFault) is posted to every surviving mailbox,
// and the upper layers (the ADLB server's heartbeat/requeue logic) are
// expected to recover. This mirrors an MPI-ULFM/SCR failure model on the
// thread-backed transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/buffer.h"

namespace ilps::obs {
class Session;
}

namespace ilps::mpi {

// Wildcards for recv/probe matching, as in MPI.
inline constexpr int ANY_SOURCE = -1;
inline constexpr int ANY_TAG = -1;

// User tags must lie in [0, kMaxUserTag); larger tags are reserved for
// collectives implemented inside this library.
inline constexpr int kMaxUserTag = 1 << 24;

// Reserved tag for rank-death notices. When a rank dies under a FaultPlan
// the World posts an empty message with this tag (source = dead rank) to
// every other mailbox; fault-aware receivers (the ADLB server) request it
// explicitly, everyone else never matches it.
inline constexpr int kTagFault = kMaxUserTag + 64;

// ANY_TAG matches user tags only (tag < kMaxUserTag): a plain
// recv(ANY_SOURCE, ANY_TAG) must never consume a reserved-tag message — a
// death notice or a collective payload racing past it would be silently
// swallowed. Fault-aware receivers (the ADLB server loop) use this
// wildcard instead, which additionally matches kTagFault (but still not
// the collective tags).
inline constexpr int ANY_TAG_OR_FAULT = -2;

// ---- Fault injection ----

// One scripted failure. `at_message` counts the victim rank's user-level
// sends (1-based): the action fires when the rank is about to perform its
// Nth Comm::send, before the message leaves.
struct FaultAction {
  enum class Kind : uint8_t {
    kKillRank,      // the rank dies; the Nth message is never sent
    kHangRank,      // the rank blocks (hung worker); released and killed
                    // only when every other rank has finished
    kDropMessage,   // the Nth message is silently lost; because every
                    // client exchange is a synchronous RPC, the sender is
                    // then doomed: its next blocking recv parks until the
                    // world drains, then it dies (lost-request model)
    kDelayMessage,  // the Nth message is delivered after delay_seconds
                    // (the sender blocks, modelling a slow link)
  };
  Kind kind = Kind::kKillRank;
  int rank = -1;
  uint64_t at_message = 0;
  double delay_seconds = 0.0;
};

// A scripted failure scenario, attached to a World before run(). Actions
// fire at most once; World::fault_fired() reports which ones did, so a
// restart driver can drop consumed faults before re-running.
struct FaultPlan {
  std::vector<FaultAction> actions;

  bool empty() const { return actions.empty(); }

  FaultPlan& kill_rank(int rank, uint64_t at_message) {
    actions.push_back({FaultAction::Kind::kKillRank, rank, at_message, 0.0});
    return *this;
  }
  FaultPlan& hang_rank(int rank, uint64_t at_message) {
    actions.push_back({FaultAction::Kind::kHangRank, rank, at_message, 0.0});
    return *this;
  }
  FaultPlan& drop_message(int rank, uint64_t at_message) {
    actions.push_back({FaultAction::Kind::kDropMessage, rank, at_message, 0.0});
    return *this;
  }
  FaultPlan& delay_message(int rank, uint64_t at_message, double delay_seconds) {
    actions.push_back({FaultAction::Kind::kDelayMessage, rank, at_message, delay_seconds});
    return *this;
  }

  // Deterministically scripted random kill: picks a victim in
  // [first_rank, last_rank] and a message number in [lo_message,
  // hi_message] from the seed (common/rng.h), so fault sweeps are
  // reproducible.
  static FaultPlan random_kill(uint64_t seed, int first_rank, int last_rank, uint64_t lo_message,
                               uint64_t hi_message);
};

// Thrown inside a rank thread to terminate it under a FaultPlan.
// Deliberately NOT derived from std::exception: script-level catch
// handlers (MiniTcl `catch`, MiniPy `except`) must not intercept a rank
// death.
struct RankKilled {
  int rank = -1;
};

struct Message {
  int source = ANY_SOURCE;
  int tag = ANY_TAG;
  std::vector<std::byte> data;

  ser::Reader reader() const { return ser::Reader(data); }
};

// Aggregate traffic counters for a World; read them after run() returns or
// accept slightly stale values during a run.
struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  // Wakeup protocol: a post() only signals the destination's condition
  // variable when a receiver is registered as blocked on a matching
  // envelope. `wakeups` counts posts that signalled; `wakeups_suppressed`
  // counts posts that skipped the syscall (no waiter, or the waiter wants
  // a different envelope).
  uint64_t wakeups = 0;
  uint64_t wakeups_suppressed = 0;
  // Send-buffer freelist: pool_hits counts sends served from a recycled
  // buffer, pool_misses counts sends that had to allocate.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  // Shared-memory collectives. `barrier_fastpath` counts rank-crossings of
  // the sense-reversing barrier that completed without sleeping on the
  // condition variable; `collective_wakeups` counts the notify episodes the
  // barrier releaser had to issue (each one wakes every sleeper at once,
  // replacing the per-edge message wakeups of the old binomial tree).
  uint64_t barrier_fastpath = 0;
  uint64_t collective_wakeups = 0;
};

class World;

// A rank's handle to the world. Each rank thread receives its own Comm;
// Comm objects must not be shared across rank threads.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // Point-to-point. send never blocks; recv blocks until a matching
  // message arrives or the world aborts (then it throws CommError).
  void send(int dest, int tag, std::span<const std::byte> data);
  void send(int dest, int tag, const ser::Writer& w) { send(dest, tag, w.bytes()); }
  // Zero-copy sends: the buffer travels to the destination mailbox without
  // an intermediate heap copy. Preferred on hot paths.
  void send(int dest, int tag, ser::Writer&& w) { send(dest, tag, w.take()); }
  void send(int dest, int tag, std::vector<std::byte>&& data);
  void send_str(int dest, int tag, std::string_view s) { send(dest, tag, ser::as_bytes(s)); }

  // Buffer pool. writer() hands out a serialization writer backed by a
  // recycled buffer (capacity reuse, no allocation in steady state);
  // recycle() returns a consumed message buffer to this rank's freelist.
  // Buffers migrate between ranks inside messages: a request buffer
  // recycled by the server comes back to the client inside a reply.
  ser::Writer writer() { return ser::Writer(acquire_buffer()); }
  void recycle(std::vector<std::byte>&& buf);
  // Recycle a consumed message back to the rank that allocated it (the
  // sender). One-way flows (streams, fan-in) never send a reply that could
  // carry the buffer home, so without this the receiver's pool grows while
  // the sender allocates every message; routing the empty buffer to the
  // origin's return box primes the sender's freelist instead.
  void recycle(Message&& m);

  Message recv(int source = ANY_SOURCE, int tag = ANY_TAG);

  // Blocking receive with a deadline: returns nullopt if no matching
  // message arrives within `seconds` (the ADLB server's heartbeat poll).
  std::optional<Message> recv_for(double seconds, int source = ANY_SOURCE, int tag = ANY_TAG);

  // Non-blocking receive: returns the message if one matches now.
  std::optional<Message> try_recv(int source = ANY_SOURCE, int tag = ANY_TAG);

  // Non-blocking probe: reports whether a matching message is queued and,
  // if so, its envelope.
  bool iprobe(int source, int tag, int* out_source = nullptr, int* out_tag = nullptr);

  // Collectives. Every rank must call these in the same order.
  void barrier();
  void broadcast(std::vector<std::byte>& data, int root);
  int64_t reduce_sum(int64_t value, int root);
  int64_t allreduce_sum(int64_t value);
  double allreduce_sum(double value);
  std::vector<std::vector<std::byte>> gather(std::span<const std::byte> data, int root);

  // Wall-clock seconds (MPI_Wtime analogue).
  double wtime() const;

  // Signals all ranks that the program is being torn down abnormally.
  void abort(const std::string& why);

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  // Pops a buffer from the freelist (or allocates). Owner-thread only —
  // like the Comm itself — so the pool needs no lock.
  std::vector<std::byte> acquire_buffer();

  World* world_;
  int rank_;
  uint64_t sent_ = 0;  // user-level sends, the FaultPlan trigger counter
  std::vector<std::vector<std::byte>> pool_;  // recycled send/recv buffers
};

// Owns the mailboxes and the rank threads. Usage:
//
//   World world(8);
//   world.run([](Comm& comm) { ... rank body ... });
//
// run() joins every rank and rethrows the first rank exception, if any.
class World {
 public:
  explicit World(int size);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return size_; }

  void run(const std::function<void(Comm&)>& rank_main);

  TrafficStats stats() const;

  // Installs the failure scenario for the next run(). Must not be called
  // while a run is in progress.
  void set_fault_plan(FaultPlan plan);

  // Which plan actions fired during the last run (parallel to
  // plan.actions). A restart driver drops fired actions before retrying.
  std::vector<bool> fault_fired() const;

  // Ranks that died (kill/hang/drop faults) during the last run.
  std::vector<int> dead_ranks() const;

  // Per-rank event buffers (src/obs), allocated lazily at run() when
  // obs::trace_enabled(). Null when tracing is off. Read after run()
  // returns — this is the "gather all ranks' buffers" step (trivially so
  // on the thread-backed transport: joining the rank threads is the
  // gather).
  const obs::Session* obs_session() const { return obs_.get(); }

 private:
  friend class Comm;
  struct Mailbox;

  void post(int source, int dest, int tag, std::vector<std::byte>&& data);
  void post(int source, int dest, int tag, std::span<const std::byte> data);
  Message wait_match(int self, int source, int tag);
  std::optional<Message> wait_match_for(int self, int source, int tag, double seconds);
  std::optional<Message> match_now(int self, int source, int tag);
  bool probe(int self, int source, int tag, int* out_source, int* out_tag);
  // The one matching routine (owner thread only, after draining the
  // per-source lanes into the private buckets): pops the oldest message
  // matching (source, tag) or returns nullopt. Every recv variant —
  // blocking, timed (including its post-timeout rescan), and non-blocking
  // — goes through here, so the paths cannot drift.
  static std::optional<Message> take_now(Mailbox& box, int source, int tag);
  static bool probe_now(const Mailbox& box, int source, int tag, int* out_source,
                        int* out_tag);
  void recycle_to_origin(int origin, std::vector<std::byte>&& buf);
  void barrier_cross(int self);
  void abort(const std::string& why);
  bool aborted() const;

  // FaultPlan machinery (world.cc). apply_fault returns false when the
  // pending message must be dropped; it throws RankKilled for kill/hang.
  bool apply_fault(int rank, uint64_t message_number);
  void on_rank_dead(int rank);                          // notice + bookkeeping
  void finish_rank();
  void park_until_drained(int rank);  // hung/doomed ranks; throws RankKilled
  bool doomed(int rank) const;

  int size_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::unique_ptr<struct WorldState> state_;
  std::unique_ptr<obs::Session> obs_;
};

}  // namespace ilps::mpi
