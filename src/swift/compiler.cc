#include "swift/compiler.h"

#include <map>
#include <set>
#include <sstream>

#include "analysis/analysis.h"
#include "common/strings.h"
#include "tcl/value.h"

namespace ilps::swift {

const std::string& runtime_prelude() {
  static const std::string kPrelude = R"TCL(
# ---- Swift runtime support (emitted by STC into every program) ----
proc swift:store_typed {type id value} {
  if {$type eq "integer"} { turbine::store_integer $id $value } elseif {$type eq "float"} { turbine::store_float $id $value } elseif {$type eq "string"} { turbine::store_string $id $value } elseif {$type eq "blob"} { turbine::store_blob $id $value } elseif {$type eq "void"} { turbine::store_void $id } else { error "swift:store_typed: bad type $type" }
}
proc swift:retrieve_typed {type id} {
  if {$type eq "blob"} { return [turbine::retrieve_blob $id] } else { return [turbine::retrieve $id] }
}
proc swift:copy {type out in} {
  turbine::rule [list $in] [list swift:copy_body $type $out $in] type LOCAL
}
proc swift:copy_body {type out in} {
  swift:store_typed $type $out [turbine::retrieve $in]
}
proc swift:binop {out type op a b} {
  turbine::rule [list $a $b] [list swift:binop_body $out $type $op $a $b] type LOCAL
}
proc swift:binop_body {out type op a b} {
  lassign [turbine::multi_retrieve [list $a $b]] va vb
  if {$op eq "cat"} { swift:store_typed $type $out [string cat $va $vb] } elseif {$op eq "streq"} { swift:store_typed $type $out [string equal $va $vb] } elseif {$op eq "strne"} { swift:store_typed $type $out [expr ![string equal $va $vb]] } else { swift:store_typed $type $out [expr $va $op $vb] }
}
proc swift:unop {out type op a} {
  turbine::rule [list $a] [list swift:unop_body $out $type $op $a] type LOCAL
}
proc swift:unop_body {out type op a} {
  swift:store_typed $type $out [expr $op [turbine::retrieve $a]]
}
proc swift:printf {ids} {
  turbine::rule $ids [list swift:printf_body $ids] type LOCAL
}
proc swift:printf_body {ids} {
  set vals [turbine::multi_retrieve $ids]
  printf {*}$vals
}
proc swift:trace {ids} {
  turbine::rule $ids [list swift:trace_body $ids] type LOCAL
}
proc swift:trace_body {ids} {
  set vals [turbine::multi_retrieve $ids]
  trace {*}$vals
}
proc swift:sprintf {out ids} {
  turbine::rule $ids [list swift:sprintf_body $out $ids] type LOCAL
}
proc swift:sprintf_body {out ids} {
  set vals [turbine::multi_retrieve $ids]
  turbine::store_string $out [format {*}$vals]
}
proc swift:strcat {out ids} {
  turbine::rule $ids [list swift:strcat_body $out $ids] type LOCAL
}
proc swift:strcat_body {out ids} {
  set s {}
  foreach v [turbine::multi_retrieve $ids] { append s $v }
  turbine::store_string $out $s
}
proc swift:convert {out kind in} {
  turbine::rule [list $in] [list swift:convert_body $out $kind $in] type LOCAL
}
proc swift:convert_body {out kind in} {
  set v [turbine::retrieve $in]
  if {$kind eq "toint"} { turbine::store_integer $out [expr int($v)] } elseif {$kind eq "tofloat"} { turbine::store_float $out [expr double($v)] } elseif {$kind eq "tostring"} { turbine::store_string $out $v } else { error "swift:convert: bad kind $kind" }
}
proc swift:python {out code expr} {
  turbine::rule [list $code $expr] [list swift:python_body $out $code $expr] type WORK
}
proc swift:python_body {out code expr} {
  lassign [turbine::multi_retrieve [list $code $expr]] vcode vexpr
  turbine::store_string $out [python $vcode $vexpr]
}
proc swift:r {out code expr} {
  turbine::rule [list $code $expr] [list swift:r_body $out $code $expr] type WORK
}
proc swift:r_body {out code expr} {
  lassign [turbine::multi_retrieve [list $code $expr]] vcode vexpr
  turbine::store_string $out [R $vcode $vexpr]
}
proc swift:app {out ids} {
  turbine::rule $ids [list swift:app_body $out $ids] type WORK
}
proc swift:app_body {out ids} {
  set argv [turbine::multi_retrieve $ids]
  turbine::store_string $out [turbine::exec_app {*}$argv]
}
proc swift:array_store {arr key value} {
  turbine::rule [list $key $value] [list swift:array_store_body $arr $key $value] type LOCAL
}
proc swift:array_store_body {arr key value} {
  lassign [turbine::multi_retrieve [list $key $value]] vkey vvalue
  turbine::container_insert $arr $vkey $vvalue
  turbine::write_incr $arr -1
}
proc swift:array_get {out arr key type} {
  turbine::rule [list $arr $key] [list swift:array_get_body $out $arr $key $type] type LOCAL
}
proc swift:array_get_body {out arr key type} {
  swift:store_typed $type $out [turbine::container_lookup $arr [turbine::retrieve $key]]
}
proc swift:array_size {out arr} {
  turbine::rule [list $arr] [list swift:array_size_body $out $arr] type LOCAL
}
proc swift:array_size_body {out arr} {
  turbine::store_integer $out [turbine::container_size $arr]
}
proc swift:alloc {type name line} {
  set id [turbine::allocate $type]
  turbine::declare_name $id $name $line
  return $id
}
# ---- end Swift runtime support ----
)TCL";
  return kPrelude;
}

namespace {

struct BuiltinSig {
  // Output type of the builtin (kVoid for statements like printf).
  Type out;
  // Fixed leading parameter types; kVariadic args after them accept any.
  std::vector<Type> fixed;
  bool variadic = false;
};

const std::map<std::string, BuiltinSig>& builtins() {
  static const std::map<std::string, BuiltinSig> kBuiltins = {
      {"printf", {Type::kVoid, {Type::kString}, true}},
      {"trace", {Type::kVoid, {}, true}},
      {"strcat", {Type::kString, {}, true}},
      {"sprintf", {Type::kString, {Type::kString}, true}},
      {"toint", {Type::kInt, {Type::kString}, false}},
      {"tofloat", {Type::kFloat, {Type::kString}, false}},
      {"tostring", {Type::kString, {Type::kInt}, false}},  // accepts any scalar
      {"python", {Type::kString, {Type::kString, Type::kString}, false}},
      {"r", {Type::kString, {Type::kString, Type::kString}, false}},
      {"sh", {Type::kString, {Type::kString}, true}},
  };
  return kBuiltins;
}

std::string quote(const std::string& s) { return tcl::list_quote(s); }

class Compiler {
 public:
  explicit Compiler(Program prog, std::string proc_ns = {})
      : prog_(std::move(prog)), ns_(std::move(proc_ns)) {}

  std::string run() {
    for (const auto& fn : prog_.functions) {
      if (functions_.count(fn.name) > 0 || builtins().count(fn.name) > 0) {
        throw SwiftError("function \"" + fn.name + "\" redefined (line " +
                         std::to_string(fn.line) + ")");
      }
      functions_[fn.name] = &fn;
    }
    for (const auto& fn : prog_.functions) {
      if (fn.is_leaf) {
        emit_leaf(fn);
      } else {
        emit_composite(fn);
      }
    }
    // Top-level statements become swift:main.
    Body main_body;
    scopes_.push_back({});
    for (const auto& stmt : prog_.main_statements) compile_stmt(*stmt, main_body);
    emit_scope_releases(main_body);
    scopes_.pop_back();
    std::ostringstream out;
    out << runtime_prelude() << "\n" << procs_.str() << "\nproc " << nsp("swift:main")
        << " {} {\n" << main_body.code.str() << "}\n";
    return out.str();
  }

 private:
  struct VarInfo {
    Type type;                   // for arrays: the element type
    Type key_type = Type::kInt;  // for arrays: the index type
    bool is_array = false;
  };
  struct Scope {
    std::map<std::string, VarInfo> vars;
    std::vector<std::string> arrays;  // arrays declared here (released at scope end)
  };

  // One emission context (a proc body): generated code, a temp counter,
  // and the scope-boundary bookkeeping for capture analysis.
  struct Body {
    std::ostringstream code;
    int temps = 0;
    size_t boundary = 0;               // scopes_ index where this body starts
    std::set<std::string>* captures = nullptr;
    // Arrays written by code in this body whose declaration is outside it:
    // the enclosing construct must hold a write reference across the
    // deferral (the STC write-refcount transfer rule).
    std::set<std::string>* array_writes = nullptr;
  };

  [[noreturn]] void fail(int line, const std::string& why) {
    throw SwiftError(why + " (line " + std::to_string(line) + ")");
  }

  // ---- scope handling ----

  VarInfo& declare(int line, const std::string& name, Type type, bool is_array = false,
                   Type key_type = Type::kInt) {
    Scope& top = scopes_.back();
    if (top.vars.count(name) > 0) fail(line, "variable \"" + name + "\" already declared");
    top.vars[name] = VarInfo{type, key_type, is_array};
    if (is_array) top.arrays.push_back(name);
    return top.vars[name];
  }

  VarInfo resolve(int line, const std::string& name, const Body& body) {
    for (size_t s = scopes_.size(); s-- > 0;) {
      auto it = scopes_[s].vars.find(name);
      if (it != scopes_[s].vars.end()) {
        if (s < body.boundary && body.captures != nullptr) body.captures->insert(name);
        return it->second;
      }
    }
    fail(line, "undefined variable \"" + name + "\"");
  }

  // Records that code in `body` defers a write to array `name`; the
  // information propagates to the construct that owns the declaration.
  void note_array_write(int line, const std::string& name, const Body& body) {
    for (size_t s = scopes_.size(); s-- > 0;) {
      if (scopes_[s].vars.count(name) > 0) {
        if (s < body.boundary && body.array_writes != nullptr) body.array_writes->insert(name);
        return;
      }
    }
    fail(line, "undefined array \"" + name + "\"");
  }

  // Releases the declaring scope's write hold on arrays declared in the
  // current (top) scope. Call just before popping a scope.
  void emit_scope_releases(Body& body) {
    for (const auto& name : scopes_.back().arrays) {
      body.code << "  turbine::write_incr $" << name << " -1\n";
    }
  }

  std::string temp(Body& body, Type type) {
    std::string name = "_t" + std::to_string(body.temps++);
    body.code << "  set " << name << " [turbine::allocate " << turbine_type(type) << "]\n";
    return name;
  }

  // ---- expression typing ----

  Type type_of(const Expr& e, const Body& body) {
    switch (e.kind) {
      case Expr::Kind::kIntLit: return Type::kInt;
      case Expr::Kind::kFloatLit: return Type::kFloat;
      case Expr::Kind::kStringLit: return Type::kString;
      case Expr::Kind::kBoolLit: return Type::kBoolean;
      case Expr::Kind::kVar: {
        // Resolving may add to the capture set; that is idempotent, so
        // repeated type queries are harmless.
        VarInfo info = resolve(e.line, e.name, body);
        if (info.is_array) fail(e.line, "array \"" + e.name + "\" used as a scalar value");
        return info.type;
      }
      case Expr::Kind::kIndex: {
        VarInfo info = resolve(e.line, e.name, body);
        if (!info.is_array) fail(e.line, "\"" + e.name + "\" is not an array");
        return info.type;
      }
      case Expr::Kind::kUnary:
        return e.op == "!" ? Type::kBoolean : type_of(*e.a, body);
      case Expr::Kind::kBinary: {
        Type a = type_of(*e.a, body);
        Type b = type_of(*e.b, body);
        if (e.op == "==" || e.op == "!=" || e.op == "<" || e.op == "<=" || e.op == ">" ||
            e.op == ">=" || e.op == "&&" || e.op == "||") {
          return Type::kBoolean;
        }
        if (a == Type::kString || b == Type::kString) return Type::kString;
        if (a == Type::kFloat || b == Type::kFloat) return Type::kFloat;
        return a;
      }
      case Expr::Kind::kCall: {
        if (e.name == "size") return Type::kInt;
        if (auto it = builtins().find(e.name); it != builtins().end()) return it->second.out;
        auto fit = functions_.find(e.name);
        if (fit == functions_.end()) fail(e.line, "call to undefined function \"" + e.name + "\"");
        if (fit->second->outputs.size() != 1) {
          fail(e.line, "function \"" + e.name + "\" does not return exactly one value");
        }
        return fit->second->outputs[0].type;
      }
    }
    fail(e.line, "internal: unknown expression kind");
  }

  static bool numeric(Type t) { return t == Type::kInt || t == Type::kFloat || t == Type::kBoolean; }

  static bool assignable(Type target, Type source) {
    if (target == source) return true;
    if (target == Type::kFloat && source == Type::kInt) return true;
    if (target == Type::kBoolean && source == Type::kInt) return true;
    if (target == Type::kInt && source == Type::kBoolean) return true;
    return false;
  }

  // ---- expression compilation ----

  // Compiles `e`, returning the Tcl variable (without $) holding its id.
  std::string compile_expr(const Expr& e, Body& body) {
    switch (e.kind) {
      case Expr::Kind::kVar:
        resolve(e.line, e.name, body);
        return e.name;
      default: {
        Type t = type_of(e, body);
        if (t == Type::kVoid) fail(e.line, "void expression used as a value");
        std::string out = temp(body, t);
        compile_into(out, t, e, body);
        return out;
      }
    }
  }

  // Compiles `e` storing its result into datum `$target` of type
  // `target_type`.
  void compile_into(const std::string& target, Type target_type, const Expr& e, Body& body) {
    Type et = type_of(e, body);
    if (!assignable(target_type, et)) {
      fail(e.line, std::string("cannot assign ") + type_name(et) + " to " +
                       type_name(target_type));
    }
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        body.code << "  swift:store_typed " << turbine_type(target_type) << " $" << target << " "
                  << e.ival << "\n";
        return;
      case Expr::Kind::kBoolLit:
        body.code << "  swift:store_typed integer $" << target << " " << e.ival << "\n";
        return;
      case Expr::Kind::kFloatLit:
        body.code << "  swift:store_typed float $" << target << " "
                  << str::format_double(e.fval) << "\n";
        return;
      case Expr::Kind::kStringLit:
        body.code << "  swift:store_typed string $" << target << " " << quote(e.sval) << "\n";
        return;
      case Expr::Kind::kVar: {
        VarInfo info = resolve(e.line, e.name, body);
        if (info.is_array) fail(e.line, "cannot copy an array into a scalar");
        body.code << "  swift:copy " << turbine_type(target_type) << " $" << target << " $"
                  << e.name << "\n";
        return;
      }
      case Expr::Kind::kIndex: {
        VarInfo ainfo = resolve(e.line, e.name, body);
        Type kt = type_of(*e.a, body);
        if (kt != ainfo.key_type) {
          fail(e.a->line, std::string("array index must be ") + type_name(ainfo.key_type));
        }
        std::string key = compile_expr(*e.a, body);
        body.code << "  swift:array_get $" << target << " $" << e.name << " $" << key << " "
                  << turbine_type(target_type) << "\n";
        return;
      }
      case Expr::Kind::kUnary: {
        Type at = type_of(*e.a, body);
        if (!numeric(at)) fail(e.line, "unary " + e.op + " requires a numeric operand");
        std::string a = compile_expr(*e.a, body);
        body.code << "  swift:unop $" << target << " " << turbine_type(target_type) << " "
                  << e.op << " $" << a << "\n";
        return;
      }
      case Expr::Kind::kBinary: {
        Type at = type_of(*e.a, body);
        Type bt = type_of(*e.b, body);
        std::string op = e.op;
        if (at == Type::kString || bt == Type::kString) {
          if (at != bt) fail(e.line, "string operator requires two strings");
          if (op == "+") {
            op = "cat";
          } else if (op == "==") {
            op = "streq";
          } else if (op == "!=") {
            op = "strne";
          } else {
            fail(e.line, "operator " + op + " is not defined on strings");
          }
        } else if (!numeric(at) || !numeric(bt)) {
          fail(e.line, "operator " + op + " requires numeric operands");
        } else if (op == "%" && (at == Type::kFloat || bt == Type::kFloat)) {
          fail(e.line, "%% requires integer operands");
        }
        std::string a = compile_expr(*e.a, body);
        std::string b = compile_expr(*e.b, body);
        body.code << "  swift:binop $" << target << " " << turbine_type(target_type) << " "
                  << quote(op) << " $" << a << " $" << b << "\n";
        return;
      }
      case Expr::Kind::kCall:
        compile_call(e, {target}, body);
        return;
    }
  }

  // Compiles a call whose outputs go to the given target Tcl vars (ids).
  void compile_call(const Expr& e, const std::vector<std::string>& targets, Body& body) {
    // -- size(A): array length once A is closed --
    if (e.name == "size") {
      if (e.args.size() != 1 || e.args[0]->kind != Expr::Kind::kVar) {
        fail(e.line, "size() takes one array variable");
      }
      VarInfo info = resolve(e.args[0]->line, e.args[0]->name, body);
      if (!info.is_array) fail(e.args[0]->line, "size() argument is not an array");
      body.code << "  swift:array_size $" << targets.at(0) << " $" << e.args[0]->name << "\n";
      return;
    }
    // -- builtins --
    if (auto bit = builtins().find(e.name); bit != builtins().end()) {
      const BuiltinSig& sig = bit->second;
      if (e.args.size() < sig.fixed.size() ||
          (!sig.variadic && e.args.size() != sig.fixed.size())) {
        fail(e.line, "wrong number of arguments to " + e.name);
      }
      std::vector<std::string> arg_vars;
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i < sig.fixed.size()) {
          Type at = type_of(*e.args[i], body);
          if (!assignable(sig.fixed[i], at) && !(sig.fixed[i] == Type::kInt)) {
            fail(e.args[i]->line, "argument " + std::to_string(i + 1) + " of " + e.name +
                                      " must be " + type_name(sig.fixed[i]));
          }
        }
        arg_vars.push_back(compile_expr(*e.args[i], body));
      }
      std::string id_list = "[list";
      for (const auto& v : arg_vars) id_list += " $" + v;
      id_list += "]";

      const std::string& target = targets.empty() ? std::string() : targets[0];
      if (e.name == "printf") {
        body.code << "  swift:printf " << id_list << "\n";
      } else if (e.name == "trace") {
        body.code << "  swift:trace " << id_list << "\n";
      } else if (e.name == "strcat") {
        body.code << "  swift:strcat $" << target << " " << id_list << "\n";
      } else if (e.name == "sprintf") {
        body.code << "  swift:sprintf $" << target << " " << id_list << "\n";
      } else if (e.name == "toint" || e.name == "tofloat" || e.name == "tostring") {
        body.code << "  swift:convert $" << target << " " << e.name << " $" << arg_vars[0]
                  << "\n";
      } else if (e.name == "python") {
        body.code << "  swift:python $" << target << " $" << arg_vars[0] << " $" << arg_vars[1]
                  << "\n";
      } else if (e.name == "r") {
        body.code << "  swift:r $" << target << " $" << arg_vars[0] << " $" << arg_vars[1]
                  << "\n";
      } else if (e.name == "sh") {
        body.code << "  swift:app $" << target << " " << id_list << "\n";
      }
      return;
    }

    // -- user functions --
    auto fit = functions_.find(e.name);
    if (fit == functions_.end()) fail(e.line, "call to undefined function \"" + e.name + "\"");
    const FunctionDef& fn = *fit->second;
    if (e.args.size() != fn.inputs.size()) {
      fail(e.line, "function \"" + e.name + "\" expects " + std::to_string(fn.inputs.size()) +
                       " arguments, got " + std::to_string(e.args.size()));
    }
    if (targets.size() != fn.outputs.size()) {
      fail(e.line, "function \"" + e.name + "\" produces " + std::to_string(fn.outputs.size()) +
                       " values, " + std::to_string(targets.size()) + " expected");
    }
    std::vector<std::string> arg_vars;
    for (size_t i = 0; i < e.args.size(); ++i) {
      Type at = type_of(*e.args[i], body);
      if (!assignable(fn.inputs[i].type, at)) {
        fail(e.args[i]->line, "argument \"" + fn.inputs[i].name + "\" of " + e.name +
                                  " must be " + type_name(fn.inputs[i].type) + ", got " +
                                  type_name(at));
      }
      arg_vars.push_back(compile_expr(*e.args[i], body));
    }
    if (fn.is_leaf) {
      // Leaf: a WORK rule waiting on all inputs.
      body.code << "  turbine::rule [list";
      for (const auto& v : arg_vars) body.code << " $" << v;
      body.code << "] [list " << nsp("u:" + fn.name);
      for (const auto& t : targets) body.code << " $" << t;
      for (const auto& v : arg_vars) body.code << " $" << v;
      body.code << "] type WORK\n";
    } else {
      // Composite: invoked directly; it only builds more dataflow.
      body.code << "  " << nsp("u:" + fn.name);
      for (const auto& t : targets) body.code << " $" << t;
      for (const auto& v : arg_vars) body.code << " $" << v;
      body.code << "\n";
    }
  }

  // ---- statements ----

  void compile_stmt(const Stmt& s, Body& body) {
    switch (s.kind) {
      case Stmt::Kind::kDecl: {
        if (s.is_array) {
          declare(s.line, s.name, s.type, /*is_array=*/true, s.key_type);
          // The container starts with one write reference — the declaring
          // scope's hold, released when the scope's emission ends.
          // swift:alloc registers the datum in the engine's symbol map so
          // stuck-future reports can name it.
          body.code << "  set " << s.name << " [swift:alloc container " << s.name << " "
                    << s.line << "]\n";
          return;
        }
        declare(s.line, s.name, s.type);
        body.code << "  set " << s.name << " [swift:alloc " << turbine_type(s.type) << " "
                  << s.name << " " << s.line << "]\n";
        if (s.value) compile_into(s.name, s.type, *s.value, body);
        return;
      }
      case Stmt::Kind::kAssign: {
        VarInfo info = resolve(s.line, s.name, body);
        if (info.is_array) fail(s.line, "cannot assign to array \"" + s.name + "\" as a whole");
        compile_into(s.name, info.type, *s.value, body);
        return;
      }
      case Stmt::Kind::kMultiAssign: {
        const Expr& call = *s.value;
        auto fit = functions_.find(call.name);
        if (fit == functions_.end()) {
          fail(s.line, "multiple assignment requires a user function, \"" + call.name +
                           "\" is not one");
        }
        const FunctionDef& fn = *fit->second;
        if (fn.outputs.size() != s.names.size()) {
          fail(s.line, "function \"" + call.name + "\" produces " +
                           std::to_string(fn.outputs.size()) + " values, " +
                           std::to_string(s.names.size()) + " targets given");
        }
        std::vector<std::string> targets;
        for (size_t i = 0; i < s.names.size(); ++i) {
          VarInfo info = resolve(s.line, s.names[i], body);
          if (info.is_array) fail(s.line, "cannot multi-assign into an array");
          if (!assignable(info.type, fn.outputs[i].type)) {
            fail(s.line, "target \"" + s.names[i] + "\" has type " + type_name(info.type) +
                             " but output " + std::to_string(i + 1) + " of " + call.name +
                             " is " + type_name(fn.outputs[i].type));
          }
          targets.push_back(s.names[i]);
        }
        compile_call(call, targets, body);
        return;
      }
      case Stmt::Kind::kArrayAssign: {
        VarInfo info = resolve(s.line, s.name, body);
        if (!info.is_array) fail(s.line, "\"" + s.name + "\" is not an array");
        if (type_of(*s.index, body) != info.key_type) {
          fail(s.line, std::string("array index must be ") + type_name(info.key_type));
        }
        Type vt = type_of(*s.value, body);
        if (!assignable(info.type, vt)) {
          fail(s.line, std::string("cannot store ") + type_name(vt) + " into array of " +
                           type_name(info.type));
        }
        std::string key = compile_expr(*s.index, body);
        std::string value = compile_expr(*s.value, body);
        // Take a write hold now; swift:array_store releases it after the
        // deferred insert completes.
        body.code << "  turbine::write_incr $" << s.name << " 1\n";
        body.code << "  swift:array_store $" << s.name << " $" << key << " $" << value << "\n";
        note_array_write(s.line, s.name, body);
        return;
      }
      case Stmt::Kind::kExprStmt: {
        if (s.value->kind != Expr::Kind::kCall) {
          fail(s.line, "expression statement must be a function call");
        }
        const Expr& call = *s.value;
        // Void builtins need no targets; value-returning calls as
        // statements get discarded temporaries.
        std::vector<std::string> targets;
        if (auto fit = functions_.find(call.name); fit != functions_.end()) {
          for (const auto& p : fit->second->outputs) targets.push_back(temp(body, p.type));
        } else {
          Type out = type_of(call, body);
          if (out != Type::kVoid) targets.push_back(temp(body, out));
        }
        compile_call(call, targets, body);
        return;
      }
      case Stmt::Kind::kForeach:
        compile_foreach(s, body);
        return;
      case Stmt::Kind::kForeachArray:
        compile_foreach_array(s, body);
        return;
      case Stmt::Kind::kIf:
        compile_if(s, body);
        return;
    }
  }

  void compile_foreach(const Stmt& s, Body& body) {
    int n = helper_counter_++;
    std::string body_proc = nsp("swift:loop_body_" + std::to_string(n));
    std::string split_proc = nsp("swift:loop_split_" + std::to_string(n));

    // Compile the loop body into its own proc, collecting captures and
    // deferred array writes.
    std::set<std::string> captures;
    std::set<std::string> writes;
    Body inner;
    inner.boundary = scopes_.size();
    inner.captures = &captures;
    inner.array_writes = &writes;
    scopes_.push_back({});
    declare(s.line, s.name, Type::kInt);
    // The loop variable arrives as a plain integer value; materialize it
    // as a future so the body sees an ordinary Swift int.
    inner.code << "  set " << s.name << " [turbine::allocate integer]\n";
    inner.code << "  turbine::store_integer $" << s.name << " $" << s.name << "__val\n";
    for (const auto& stmt : s.body) compile_stmt(*stmt, inner);
    emit_scope_releases(inner);
    scopes_.pop_back();

    std::string cap_params;
    std::string cap_args;
    for (const auto& c : captures) {
      // Re-resolve against the enclosing body so captures propagate
      // through nested constructs (outer procs must receive them too).
      resolve(s.line, c, body);
      cap_params += " " + c;
      cap_args += " $" + c;
    }
    // Write-reference transfer: each loop-body instance holds one write
    // reference per written array, taken by the splitter before the body
    // is shipped; the splitter and the site each hold one across their
    // own deferral windows.
    std::string iter_holds;
    std::string iter_releases;
    for (const auto& w : writes) {
      iter_holds += "    turbine::write_incr $" + w + " 1\n";
      iter_releases += "  turbine::write_incr $" + w + " -1\n";
    }

    procs_ << "proc " << body_proc << " {" << s.name << "__val" << cap_params << "} {\n"
           << inner.code.str() << iter_releases << "}\n";
    procs_ << "proc " << split_proc << " {lo hi step" << cap_params << "} {\n"
           << "  lassign [turbine::multi_retrieve [list $lo $hi $step]] lo_v hi_v step_v\n"
           << "  if {$step_v == 0} { error \"foreach: step must be nonzero\" }\n"
           << "  for {set k $lo_v} {($step_v > 0 && $k <= $hi_v) || ($step_v < 0 && $k >= "
              "$hi_v)} {incr k $step_v} {\n"
           << iter_holds
           << "    turbine::put_control [list " << body_proc << " $k" << cap_args << "]\n"
           << "  }\n"
           << iter_releases << "}\n";

    // Range bounds are futures evaluated in the enclosing context.
    auto bound = [&](const ExprP& e, int64_t fallback) {
      if (e == nullptr) {
        Expr lit;
        lit.kind = Expr::Kind::kIntLit;
        lit.ival = fallback;
        lit.line = s.line;
        return compile_expr(lit, body);
      }
      Type t = type_of(*e, body);
      if (t != Type::kInt) fail(e->line, "foreach range bounds must be int");
      return compile_expr(*e, body);
    };
    std::string lo = bound(s.from, 0);
    std::string hi = bound(s.to, 0);
    std::string step = bound(s.step, 1);
    for (const auto& w : writes) {
      body.code << "  turbine::write_incr $" << w << " 1\n";
      note_array_write(s.line, w, body);
    }
    body.code << "  turbine::rule [list $" << lo << " $" << hi << " $" << step << "] [list "
              << split_proc << " $" << lo << " $" << hi << " $" << step << cap_args
              << "] type CONTROL\n";
  }

  void compile_foreach_array(const Stmt& s, Body& body) {
    if (s.value->kind != Expr::Kind::kVar) {
      fail(s.line, "foreach over an array requires an array variable");
    }
    VarInfo arr = resolve(s.value->line, s.value->name, body);
    if (!arr.is_array) fail(s.line, "\"" + s.value->name + "\" is not an array");
    const std::string& arr_var = s.value->name;

    int n = helper_counter_++;
    std::string body_proc = nsp("swift:arrloop_body_" + std::to_string(n));
    std::string split_proc = nsp("swift:arrloop_split_" + std::to_string(n));

    std::set<std::string> captures;
    std::set<std::string> writes;
    Body inner;
    inner.boundary = scopes_.size();
    inner.captures = &captures;
    inner.array_writes = &writes;
    scopes_.push_back({});
    declare(s.line, s.name, arr.type);
    inner.code << "  set " << s.name << " [turbine::allocate " << turbine_type(arr.type)
               << "]\n";
    inner.code << "  swift:store_typed " << turbine_type(arr.type) << " $" << s.name << " $"
               << s.name << "__val\n";
    if (!s.index_name.empty()) {
      declare(s.line, s.index_name, arr.key_type);
      inner.code << "  set " << s.index_name << " [turbine::allocate "
                 << turbine_type(arr.key_type) << "]\n";
      inner.code << "  swift:store_typed " << turbine_type(arr.key_type) << " $"
                 << s.index_name << " $" << s.name << "__key\n";
    }
    for (const auto& stmt : s.body) compile_stmt(*stmt, inner);
    emit_scope_releases(inner);
    scopes_.pop_back();

    std::string cap_params;
    std::string cap_args;
    for (const auto& c : captures) {
      // Re-resolve against the enclosing body so captures propagate
      // through nested constructs (outer procs must receive them too).
      resolve(s.line, c, body);
      cap_params += " " + c;
      cap_args += " $" + c;
    }
    std::string iter_holds;
    std::string iter_releases;
    for (const auto& w : writes) {
      iter_holds += "    turbine::write_incr $" + w + " 1\n";
      iter_releases += "  turbine::write_incr $" + w + " -1\n";
    }

    procs_ << "proc " << body_proc << " {" << s.name << "__key " << s.name << "__val"
           << cap_params << "} {\n" << inner.code.str() << iter_releases << "}\n";
    procs_ << "proc " << split_proc << " {arr" << cap_params << "} {\n"
           << "  foreach {k v} [turbine::enumerate $arr] {\n"
           << iter_holds
           << "    turbine::put_control [list " << body_proc << " $k $v" << cap_args << "]\n"
           << "  }\n"
           << iter_releases << "}\n";

    for (const auto& w : writes) {
      body.code << "  turbine::write_incr $" << w << " 1\n";
      note_array_write(s.line, w, body);
    }
    body.code << "  turbine::rule [list $" << arr_var << "] [list " << split_proc << " $"
              << arr_var << cap_args << "] type CONTROL\n";
  }

  void compile_if(const Stmt& s, Body& body) {
    Type ct = type_of(*s.value, body);
    if (!numeric(ct)) fail(s.line, "if condition must be boolean or integer");
    int n = helper_counter_++;
    std::string then_proc = nsp("swift:then_" + std::to_string(n));
    std::string else_proc = nsp("swift:else_" + std::to_string(n));
    std::string if_proc = nsp("swift:if_" + std::to_string(n));

    std::set<std::string> captures;
    std::set<std::string> writes;
    Body then_body;
    then_body.boundary = scopes_.size();
    then_body.captures = &captures;
    then_body.array_writes = &writes;
    scopes_.push_back({});
    for (const auto& stmt : s.body) compile_stmt(*stmt, then_body);
    emit_scope_releases(then_body);
    scopes_.pop_back();

    Body else_body;
    else_body.boundary = scopes_.size();
    else_body.captures = &captures;
    else_body.array_writes = &writes;
    scopes_.push_back({});
    for (const auto& stmt : s.orelse) compile_stmt(*stmt, else_body);
    emit_scope_releases(else_body);
    scopes_.pop_back();

    std::string cap_params;
    std::string cap_args;
    for (const auto& c : captures) {
      // Re-resolve against the enclosing body so captures propagate
      // through nested constructs (outer procs must receive them too).
      resolve(s.line, c, body);
      cap_params += " " + c;
      cap_args += " $" + c;
    }
    std::string releases;
    for (const auto& w : writes) {
      releases += "  turbine::write_incr $" + w + " -1\n";
    }
    procs_ << "proc " << then_proc << " {" << str::trim(cap_params) << "} {\n"
           << then_body.code.str() << "}\n";
    procs_ << "proc " << else_proc << " {" << str::trim(cap_params) << "} {\n"
           << else_body.code.str() << "}\n";
    procs_ << "proc " << if_proc << " {cond" << cap_params << "} {\n"
           << "  if {[turbine::retrieve $cond]} { " << then_proc << cap_args << " } else { "
           << else_proc << cap_args << " }\n"
           << releases << "}\n";

    std::string cond = compile_expr(*s.value, body);
    for (const auto& w : writes) {
      body.code << "  turbine::write_incr $" << w << " 1\n";
      note_array_write(s.line, w, body);
    }
    body.code << "  turbine::rule [list $" << cond << "] [list " << if_proc << " $" << cond
              << cap_args << "] type CONTROL\n";
  }

  // ---- functions ----

  void emit_composite(const FunctionDef& fn) {
    Body body;
    body.boundary = scopes_.size() + 1;  // captures would be a bug here
    scopes_.push_back({});
    std::string params;
    for (const auto& p : fn.outputs) {
      declare(fn.line, p.name, p.type);
      params += " " + p.name;
    }
    for (const auto& p : fn.inputs) {
      declare(fn.line, p.name, p.type);
      params += " " + p.name;
    }
    for (const auto& stmt : fn.body) compile_stmt(*stmt, body);
    emit_scope_releases(body);
    scopes_.pop_back();
    procs_ << "proc " << nsp("u:" + fn.name) << " {" << str::trim(params) << "} {\n"
           << body.code.str() << "}\n";
  }

  void emit_leaf(const FunctionDef& fn) {
    std::string params;
    for (const auto& p : fn.outputs) params += " " + p.name;
    for (const auto& p : fn.inputs) params += " " + p.name;
    std::ostringstream proc;
    proc << "proc " << nsp("u:" + fn.name) << " {" << str::trim(params) << "} {\n";
    if (!fn.package.empty()) proc << "  package require " << fn.package << "\n";
    // Retrieve inputs into v_<name>.
    for (const auto& p : fn.inputs) {
      proc << "  set v_" << p.name << " [swift:retrieve_typed " << turbine_type(p.type) << " $"
           << p.name << "]\n";
    }
    // Substitute the template: <<in>> -> ${v_in}, <<out>> -> v_out.
    std::string text = fn.template_text;
    for (const auto& p : fn.inputs) {
      text = str::replace_all(text, "<<" + p.name + ">>", "${v_" + p.name + "}");
    }
    for (const auto& p : fn.outputs) {
      text = str::replace_all(text, "<<" + p.name + ">>", "v_" + p.name);
    }
    if (text.find("<<") != std::string::npos) {
      fail(fn.line, "template of \"" + fn.name + "\" references an unknown parameter: " + text);
    }
    proc << "  " << text << "\n";
    for (const auto& p : fn.outputs) {
      if (p.type == Type::kVoid) {
        proc << "  turbine::store_void $" << p.name << "\n";
      } else {
        proc << "  swift:store_typed " << turbine_type(p.type) << " $" << p.name << " $v_"
             << p.name << "\n";
      }
    }
    proc << "}\n";
    procs_ << proc.str();
  }

  // Applies the per-program proc namespace to a generated name. Runtime
  // prelude procs (swift:store_typed, ...) are shared and stay unprefixed.
  std::string nsp(const std::string& name) const { return ns_.empty() ? name : ns_ + name; }

  Program prog_;
  std::string ns_;
  std::map<std::string, const FunctionDef*> functions_;
  std::vector<Scope> scopes_;
  std::ostringstream procs_;
  int helper_counter_ = 0;
};

}  // namespace

std::string compile(const std::string& source) { return compile(source, {}); }

std::string compile(const std::string& source, const std::string& proc_ns) {
  Program prog = parse_swift(source);
  // swift-verify: reject guaranteed deadlocks / write-once violations
  // before generating any code (warnings are reported by `ilps --lint`).
  analysis::Report report = analysis::analyze(prog);
  if (report.has_errors()) {
    throw SwiftError("swift-verify: " + report.error_summary());
  }
  Compiler compiler(std::move(prog), proc_ns);
  return compiler.run();
}

}  // namespace ilps::swift
