// Swift language AST (the subset of Swift the paper exercises: futures,
// extern leaf functions with <<·>> Tcl templates, python/R/shell builtins,
// composite functions, foreach loop splitting, dataflow if).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace ilps::swift {

class SwiftError : public ScriptError {
 public:
  explicit SwiftError(const std::string& what) : ScriptError(what) {}
};

enum class Type { kInt, kFloat, kString, kBoolean, kBlob, kVoid };

const char* type_name(Type t);
// The Turbine data-type name backing a Swift type (boolean -> integer).
const char* turbine_type(Type t);

struct Expr;
using ExprP = std::shared_ptr<Expr>;

struct Expr {
  enum class Kind {
    kIntLit,     // ival
    kFloatLit,   // fval
    kStringLit,  // sval
    kBoolLit,    // ival
    kVar,        // name
    kBinary,     // op, a, b
    kUnary,      // op, a
    kCall,       // name, args
    kIndex,      // name[a] — array element read
  };

  Kind kind;
  int line = 0;
  int64_t ival = 0;
  double fval = 0;
  std::string sval;
  std::string name;
  std::string op;
  ExprP a, b;
  std::vector<ExprP> args;
};

struct Stmt;
using StmtP = std::shared_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kDecl,        // type name (= value)?; is_array for `type name[];`
    kAssign,      // name = value
    kMultiAssign, // names = call (multi-output function)
    kArrayAssign, // name[index] = value
    kExprStmt,    // value (a call)
    kForeach,     // loop_var, from, to, step?, body — range form
    kForeachArray,// name (value var), index_name?, value (the array), body
    kIf,          // cond, body, orelse
  };

  Kind kind;
  int line = 0;
  Type type = Type::kVoid;
  Type key_type = Type::kInt;  // kDecl arrays: index type (int or string)
  bool is_array = false;
  std::string name;
  std::string index_name;  // kForeachArray: optional index variable
  std::vector<std::string> names;  // kMultiAssign targets
  ExprP value;
  ExprP index;             // kArrayAssign: the key expression
  ExprP from, to, step;
  std::vector<StmtP> body;
  std::vector<StmtP> orelse;
};

struct Param {
  Type type;
  std::string name;
};

// The implementation language of an extern (leaf) function.
enum class LeafLang { kTcl };

struct FunctionDef {
  std::string name;
  std::vector<Param> outputs;
  std::vector<Param> inputs;
  int line = 0;

  // Extern leaf (template) form:
  bool is_leaf = false;
  LeafLang lang = LeafLang::kTcl;
  std::string package;          // optional Tcl package to require
  std::string package_version;
  std::string template_text;    // with <<name>> placeholders

  // Composite form:
  std::vector<StmtP> body;
};

struct Program {
  std::vector<FunctionDef> functions;
  std::vector<StmtP> main_statements;
};

// Parses Swift source. Throws SwiftError with line info on bad input.
Program parse_swift(std::string_view source);

}  // namespace ilps::swift
