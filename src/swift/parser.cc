// Swift lexer and parser.
#include <cctype>
#include <cstdlib>

#include "common/strings.h"
#include "swift/ast.h"

namespace ilps::swift {

const char* type_name(Type t) {
  switch (t) {
    case Type::kInt: return "int";
    case Type::kFloat: return "float";
    case Type::kString: return "string";
    case Type::kBoolean: return "boolean";
    case Type::kBlob: return "blob";
    case Type::kVoid: return "void";
  }
  return "?";
}

const char* turbine_type(Type t) {
  switch (t) {
    case Type::kInt: return "integer";
    case Type::kFloat: return "float";
    case Type::kString: return "string";
    case Type::kBoolean: return "integer";
    case Type::kBlob: return "blob";
    case Type::kVoid: return "void";
  }
  return "?";
}

namespace {

enum class Tk { kEnd, kName, kKeyword, kInt, kFloat, kString, kOp };

struct Token {
  Tk kind;
  std::string text;
  int64_t ival = 0;
  double fval = 0;
  int line = 0;
};

bool is_swift_keyword(std::string_view w) {
  static const char* kw[] = {"int",  "float", "string", "boolean", "blob", "void",
                             "if",   "else",  "foreach", "in",      "true", "false",
                             "main", "import"};
  for (const char* k : kw) {
    if (w == k) return true;
  }
  return false;
}

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  static const char* kOps[] = {"==", "!=", "<=", ">=", "&&", "||", "(", ")", "{", "}",
                               "[",  "]",  ",",  ";",  ":",  "=",  "+", "-", "*", "/",
                               "%",  "<",  ">",  "!",  "@"};
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (src.compare(i, 2, "//") == 0 || src[i] == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (src.compare(i, 2, "/*") == 0) {
      size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) {
        throw SwiftError("unterminated /* comment (line " + std::to_string(line) + ")");
      }
      for (size_t k = i; k < end; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = end + 2;
      continue;
    }
    if (c == '"') {
      ++i;
      std::string value;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < src.size()) {
          char e = src[i + 1];
          i += 2;
          switch (e) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case '\\': value += '\\'; break;
            case '"': value += '"'; break;
            default: value += e;
          }
          continue;
        }
        if (src[i] == '\n') ++line;
        value += src[i++];
      }
      if (i >= src.size()) throw SwiftError("unterminated string (line " + std::to_string(line) + ")");
      ++i;
      out.push_back({Tk::kString, std::move(value), 0, 0, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      if (i < src.size() && src[i] == '.' &&
          i + 1 < src.size() && std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        is_float = true;
        ++i;
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      }
      if (i < src.size() && (src[i] == 'e' || src[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < src.size() && (src[exp] == '+' || src[exp] == '-')) ++exp;
        if (exp < src.size() && std::isdigit(static_cast<unsigned char>(src[exp]))) {
          is_float = true;
          i = exp;
          while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        }
      }
      std::string text(src.substr(start, i - start));
      Token t;
      t.line = line;
      if (is_float) {
        t.kind = Tk::kFloat;
        t.fval = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = Tk::kInt;
        t.ival = std::strtoll(text.c_str(), nullptr, 10);
      }
      t.text = std::move(text);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) || src[i] == '_')) {
        ++i;
      }
      std::string word(src.substr(start, i - start));
      Tk kind = is_swift_keyword(word) ? Tk::kKeyword : Tk::kName;
      out.push_back({kind, std::move(word), 0, 0, line});
      continue;
    }
    bool matched = false;
    for (const char* op : kOps) {
      if (src.substr(i).starts_with(op)) {
        out.push_back({Tk::kOp, op, 0, 0, line});
        i += std::string_view(op).size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw SwiftError("unexpected character '" + std::string(1, c) + "' (line " +
                       std::to_string(line) + ")");
    }
  }
  out.push_back({Tk::kEnd, "", 0, 0, line});
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Program program() {
    Program prog;
    while (!at_end()) {
      if (at_kw("import")) {
        // `import pkg;` accepted and ignored (packages load lazily).
        ++i_;
        while (!at_end() && !at_op(";")) ++i_;
        expect_op(";");
        continue;
      }
      if (at_kw("main")) {
        ++i_;
        expect_op("{");
        while (!at_op("}")) prog.main_statements.push_back(statement());
        expect_op("}");
        continue;
      }
      if (at_op("(")) {
        prog.functions.push_back(function_def());
        continue;
      }
      prog.main_statements.push_back(statement());
    }
    return prog;
  }

 private:
  const Token& cur() const { return toks_[i_]; }
  const Token& peek(size_t n = 1) const {
    return toks_[std::min(i_ + n, toks_.size() - 1)];
  }
  bool at_end() const { return cur().kind == Tk::kEnd; }
  bool at_op(std::string_view op) const { return cur().kind == Tk::kOp && cur().text == op; }
  bool at_kw(std::string_view kw) const {
    return cur().kind == Tk::kKeyword && cur().text == kw;
  }
  bool eat_op(std::string_view op) {
    if (at_op(op)) {
      ++i_;
      return true;
    }
    return false;
  }
  void expect_op(std::string_view op) {
    if (!eat_op(op)) fail("expected '" + std::string(op) + "'");
  }
  [[noreturn]] void fail(const std::string& why) const {
    throw SwiftError("syntax error: " + why + " (line " + std::to_string(cur().line) +
                     ", near '" + cur().text + "')");
  }

  bool at_type() const {
    return cur().kind == Tk::kKeyword &&
           (cur().text == "int" || cur().text == "float" || cur().text == "string" ||
            cur().text == "boolean" || cur().text == "blob" || cur().text == "void");
  }

  Type parse_type() {
    if (!at_type()) fail("expected a type");
    std::string t = cur().text;
    ++i_;
    if (t == "int") return Type::kInt;
    if (t == "float") return Type::kFloat;
    if (t == "string") return Type::kString;
    if (t == "boolean") return Type::kBoolean;
    if (t == "blob") return Type::kBlob;
    return Type::kVoid;
  }

  std::string expect_name() {
    if (cur().kind != Tk::kName) fail("expected an identifier");
    std::string n = cur().text;
    ++i_;
    return n;
  }

  std::vector<Param> param_list() {
    std::vector<Param> params;
    expect_op("(");
    if (!at_op(")")) {
      while (true) {
        Param p;
        p.type = parse_type();
        p.name = expect_name();
        params.push_back(std::move(p));
        if (!eat_op(",")) break;
      }
    }
    expect_op(")");
    return params;
  }

  // (outs) name (ins) ["pkg" "ver"]? [ "template" ];   -- leaf
  // (outs) name (ins) { body }                         -- composite
  FunctionDef function_def() {
    FunctionDef fn;
    fn.line = cur().line;
    fn.outputs = param_list();
    fn.name = expect_name();
    fn.inputs = param_list();
    if (at_op("{")) {
      ++i_;
      while (!at_op("}")) fn.body.push_back(statement());
      expect_op("}");
      return fn;
    }
    fn.is_leaf = true;
    if (cur().kind == Tk::kString) {
      fn.package = cur().text;
      ++i_;
      if (cur().kind == Tk::kString) {
        fn.package_version = cur().text;
        ++i_;
      }
    }
    expect_op("[");
    if (cur().kind != Tk::kString) fail("expected the Tcl template string");
    fn.template_text = cur().text;
    ++i_;
    expect_op("]");
    expect_op(";");
    return fn;
  }

  StmtP make_stmt(Stmt::Kind kind) {
    auto s = std::make_shared<Stmt>();
    s->kind = kind;
    s->line = cur().line;
    return s;
  }

  StmtP statement() {
    if (at_type()) {
      auto s = make_stmt(Stmt::Kind::kDecl);
      s->type = parse_type();
      s->name = expect_name();
      if (eat_op("[")) {
        // `type name[];` (int keys) or `type name[string];` / `[int]`.
        s->key_type = Type::kInt;
        if (!at_op("]")) {
          s->key_type = parse_type();
          if (s->key_type != Type::kInt && s->key_type != Type::kString) {
            fail("array keys must be int or string");
          }
        }
        expect_op("]");
        s->is_array = true;
        expect_op(";");
        return s;
      }
      if (eat_op("=")) s->value = expression();
      expect_op(";");
      return s;
    }
    if (at_kw("foreach")) {
      ++i_;
      std::string first = expect_name();
      std::string second;
      if (eat_op(",")) second = expect_name();
      if (!at_kw("in")) fail("expected 'in'");
      ++i_;
      if (at_op("[")) {
        // Range form: foreach i in [lo:hi:step].
        if (!second.empty()) fail("range foreach takes a single loop variable");
        auto s = make_stmt(Stmt::Kind::kForeach);
        s->name = first;
        expect_op("[");
        s->from = expression();
        expect_op(":");
        s->to = expression();
        if (eat_op(":")) s->step = expression();
        expect_op("]");
        expect_op("{");
        while (!at_op("}")) s->body.push_back(statement());
        expect_op("}");
        return s;
      }
      // Array form: foreach v, i in A.
      auto s = make_stmt(Stmt::Kind::kForeachArray);
      s->name = first;
      s->index_name = second;
      s->value = expression();
      expect_op("{");
      while (!at_op("}")) s->body.push_back(statement());
      expect_op("}");
      return s;
    }
    if (at_kw("if")) {
      auto s = make_stmt(Stmt::Kind::kIf);
      ++i_;
      expect_op("(");
      s->value = expression();
      expect_op(")");
      expect_op("{");
      while (!at_op("}")) s->body.push_back(statement());
      expect_op("}");
      if (at_kw("else")) {
        ++i_;
        if (at_kw("if")) {
          s->orelse.push_back(statement());
        } else {
          expect_op("{");
          while (!at_op("}")) s->orelse.push_back(statement());
          expect_op("}");
        }
      }
      return s;
    }
    // Multiple-output assignment: a, b = f(x);
    if (cur().kind == Tk::kName && peek().kind == Tk::kOp && peek().text == ",") {
      auto s = make_stmt(Stmt::Kind::kMultiAssign);
      s->names.push_back(expect_name());
      while (eat_op(",")) s->names.push_back(expect_name());
      expect_op("=");
      s->value = expression();
      if (s->value->kind != Expr::Kind::kCall) {
        fail("multiple assignment requires a function call on the right");
      }
      expect_op(";");
      return s;
    }
    // Assignment, array element assignment, or expression statement.
    if (cur().kind == Tk::kName && peek().kind == Tk::kOp && peek().text == "=") {
      auto s = make_stmt(Stmt::Kind::kAssign);
      s->name = expect_name();
      expect_op("=");
      s->value = expression();
      expect_op(";");
      return s;
    }
    if (cur().kind == Tk::kName && peek().kind == Tk::kOp && peek().text == "[") {
      // Lookahead to distinguish `A[i] = v;` from an expression statement.
      size_t save = i_;
      std::string name = expect_name();
      expect_op("[");
      ExprP index = expression();
      expect_op("]");
      if (eat_op("=")) {
        auto s = make_stmt(Stmt::Kind::kArrayAssign);
        s->name = std::move(name);
        s->index = std::move(index);
        s->value = expression();
        expect_op(";");
        return s;
      }
      i_ = save;  // it was an expression like `A[i];` — reparse below
    }
    auto s = make_stmt(Stmt::Kind::kExprStmt);
    s->value = expression();
    expect_op(";");
    return s;
  }

  ExprP make_expr(Expr::Kind kind) {
    auto e = std::make_shared<Expr>();
    e->kind = kind;
    e->line = cur().line;
    return e;
  }

  ExprP expression() { return logical_or(); }

  ExprP binary_chain(ExprP (Parser::*next)(), std::initializer_list<const char*> ops) {
    ExprP lhs = (this->*next)();
    while (true) {
      bool matched = false;
      for (const char* op : ops) {
        if (at_op(op)) {
          auto e = make_expr(Expr::Kind::kBinary);
          ++i_;
          e->op = op;
          e->a = lhs;
          e->b = (this->*next)();
          lhs = e;
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprP logical_or() { return binary_chain(&Parser::logical_and, {"||"}); }
  ExprP logical_and() { return binary_chain(&Parser::equality, {"&&"}); }
  ExprP equality() { return binary_chain(&Parser::relational, {"==", "!="}); }
  ExprP relational() { return binary_chain(&Parser::additive, {"<=", ">=", "<", ">"}); }
  ExprP additive() { return binary_chain(&Parser::multiplicative, {"+", "-"}); }
  ExprP multiplicative() { return binary_chain(&Parser::unary, {"*", "/", "%"}); }

  ExprP unary() {
    if (at_op("-") || at_op("!")) {
      auto e = make_expr(Expr::Kind::kUnary);
      e->op = cur().text;
      ++i_;
      e->a = unary();
      return e;
    }
    return primary();
  }

  ExprP primary() {
    if (cur().kind == Tk::kInt) {
      auto e = make_expr(Expr::Kind::kIntLit);
      e->ival = cur().ival;
      ++i_;
      return e;
    }
    if (cur().kind == Tk::kFloat) {
      auto e = make_expr(Expr::Kind::kFloatLit);
      e->fval = cur().fval;
      ++i_;
      return e;
    }
    if (cur().kind == Tk::kString) {
      auto e = make_expr(Expr::Kind::kStringLit);
      // Adjacent string literals concatenate, as in C.
      while (cur().kind == Tk::kString) {
        e->sval += cur().text;
        ++i_;
      }
      return e;
    }
    if (at_kw("true") || at_kw("false")) {
      auto e = make_expr(Expr::Kind::kBoolLit);
      e->ival = cur().text == "true" ? 1 : 0;
      ++i_;
      return e;
    }
    if (eat_op("(")) {
      ExprP e = expression();
      expect_op(")");
      return e;
    }
    if (cur().kind == Tk::kName) {
      std::string name = expect_name();
      if (at_op("(")) {
        auto e = make_expr(Expr::Kind::kCall);
        e->name = std::move(name);
        ++i_;
        if (!at_op(")")) {
          while (true) {
            e->args.push_back(expression());
            if (!eat_op(",")) break;
          }
        }
        expect_op(")");
        return e;
      }
      if (at_op("[")) {
        auto e = make_expr(Expr::Kind::kIndex);
        e->name = std::move(name);
        ++i_;
        e->a = expression();
        expect_op("]");
        return e;
      }
      auto e = make_expr(Expr::Kind::kVar);
      e->name = std::move(name);
      return e;
    }
    fail("unexpected token in expression");
  }

  std::vector<Token> toks_;
  size_t i_ = 0;
};

}  // namespace

Program parse_swift(std::string_view source) {
  Parser p(lex(source));
  return p.program();
}

}  // namespace ilps::swift
