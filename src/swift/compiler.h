// STC — the Swift-to-Turbine compiler.
//
// Translates Swift source into a MiniTcl program for runtime::run_program:
// a fixed runtime prelude (swift:* helper procs), one `u:<name>` proc per
// user function, numbered helper procs for loop bodies and if branches,
// and a `proc swift:main` holding the top-level statements.
//
// The compilation model matches the paper's description of Swift/T:
// every Swift variable is a future (a Turbine datum id held in a Tcl
// variable of the same name); operators become LOCAL rules; leaf calls
// become WORK rules whose action retrieves inputs, runs the user's Tcl
// template / Python / R / shell fragment, and stores outputs; `foreach`
// splits into control tasks shipped through ADLB so loop bodies spread
// over engines; `if` on a future becomes a control task released by the
// condition.
#pragma once

#include <string>

#include "swift/ast.h"

namespace ilps::swift {

// Compiles Swift source to a runnable Turbine program. Throws SwiftError
// on syntax or type errors.
std::string compile(const std::string& source);

// Same, but prefixes every generated proc name (`u:<fn>`, `swift:main`,
// numbered loop/if helpers) with `proc_ns` so several compiled programs
// can coexist in one resident interpreter (src/serve compile-once cache).
// The entry proc becomes `<proc_ns>swift:main`; the shared runtime
// prelude stays unprefixed. An empty `proc_ns` is the plain compile.
std::string compile(const std::string& source, const std::string& proc_ns);

// The fixed runtime-support prelude included in every compiled program.
const std::string& runtime_prelude();

}  // namespace ilps::swift
