#include "runtime/runner.h"

#include <cstdio>
#include <sstream>

#include "adlb/client.h"
#include "ckpt/ckpt.h"
#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"
#include "common/sync.h"
#include "common/timer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/serve.h"

namespace ilps::runtime {

std::string RunResult::output() const {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

bool RunResult::contains(const std::string& needle) const {
  for (const auto& line : lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

double RunResult::time_of(const std::string& needle) const {
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find(needle) != std::string::npos) {
      return i < line_times.size() ? line_times[i] : -1.0;
    }
  }
  return -1.0;
}

namespace {

// The fault-tolerant attempt loop body. The plain (non-ft) path lives in
// serve::Service::run_batch — run_program is a thin wrapper over it — but
// restart orchestration needs to own the World (fault plans, dead-rank
// harvesting, trace merging across attempts), so the ft world body stays
// here.
RunResult run_ft_attempt(const Config& cfg, const std::string& program, mpi::World& world,
                         const ckpt::Snapshot* restore) {
  // The swift:main convention (see runner.h): load everywhere, run once.
  const bool has_main = program.find("proc swift:main") != std::string::npos;
  if (cfg.engines < 1) throw Error("runtime: at least one engine rank is required");
  if (cfg.workers < 1) throw Error("runtime: at least one worker rank is required");
  if (cfg.servers < 1) throw Error("runtime: at least one server rank is required");

  adlb::Config acfg = cfg.adlb();
  acfg.ft = true;
  acfg.nengines = cfg.engines;
  acfg.max_task_retries = cfg.max_task_retries;
  acfg.retry_backoff_ms = cfg.retry_backoff_ms;
  acfg.heartbeat_timeout_ms = cfg.heartbeat_timeout_ms;
  acfg.ckpt_interval = cfg.ckpt_interval;
  acfg.ckpt_dir = cfg.ckpt_dir;

  RunResult result;
  ilps::Mutex mu;  // guards result + pending across rank threads
  std::string pending;  // partial line accumulator across emits
  Timer timer;

  auto sink = [&](int rank, const std::string& text) {
    (void)rank;
    ilps::LockGuard lock(mu);
    if (cfg.echo_output) std::fwrite(text.data(), 1, text.size(), stdout);
    pending += text;
    size_t pos;
    while ((pos = pending.find('\n')) != std::string::npos) {
      result.lines.push_back(pending.substr(0, pos));
      result.line_times.push_back(timer.elapsed());
      pending.erase(0, pos + 1);
    }
  };
  auto body = [&](mpi::Comm& comm) {
    if (adlb::is_server(comm.rank(), comm.size(), acfg)) {
      adlb::Server server(comm, acfg, restore);
      server.serve();
      ilps::LockGuard lock(mu);
      const adlb::ServerStats& s = server.stats();
      result.server_stats.puts += s.puts;
      result.server_stats.gets += s.gets;
      result.server_stats.matches += s.matches;
      result.server_stats.forwards += s.forwards;
      result.server_stats.hungry_notices += s.hungry_notices;
      result.server_stats.batches_sent += s.batches_sent;
      result.server_stats.units_rebalanced += s.units_rebalanced;
      result.server_stats.steal_batches += s.steal_batches;
      result.server_stats.steal_batch_units += s.steal_batch_units;
      result.server_stats.notifications += s.notifications;
      result.server_stats.data_ops += s.data_ops;
      result.server_stats.tokens += s.tokens;
      result.server_stats.leftover_data += s.leftover_data;
      result.server_stats.stuck_datums += s.stuck_datums;
      result.server_stats.requeues += s.requeues;
      result.server_stats.task_failures += s.task_failures;
      result.server_stats.heartbeat_deaths += s.heartbeat_deaths;
      result.server_stats.checkpoints += s.checkpoints;
      result.server_stats.replay_skips += s.replay_skips;
      return;
    }

    adlb::Client client(comm, acfg);
    turbine::ContextConfig ccfg;
    ccfg.policy = cfg.policy;
    ccfg.restricted_os = cfg.restricted_os;
    ccfg.ft = true;
    ccfg.output = sink;
    ccfg.setup_interp = cfg.setup_interp;
    ccfg.setup_bindings = cfg.setup_bindings;

    if (comm.rank() < cfg.engines) {
      turbine::Engine engine(client);
      turbine::Context ctx(client, &engine, ccfg);
      std::string to_run;
      if (has_main) {
        ctx.interp().eval(program);
        if (comm.rank() == 0) to_run = "swift:main";
      } else if (comm.rank() == 0) {
        to_run = program;
      }
      size_t unfired = ctx.run_engine(to_run);
      std::vector<turbine::StuckRule> stuck;
      if (unfired > 0) {
        stuck = engine.stuck_report();
        for (const auto& rule : stuck) {
          obs::instant(obs::EventKind::kRuleStuck, rule.id,
                       static_cast<int64_t>(rule.waiting.size()));
        }
      }
      ilps::LockGuard lock(mu);
      result.unfired_rules += unfired;
      for (auto& rule : stuck) result.stuck.push_back(std::move(rule));
      const turbine::EngineStats& es = engine.stats();
      result.engine_stats.rules_created += es.rules_created;
      result.engine_stats.rules_fired += es.rules_fired;
      result.engine_stats.rules_fired_immediately += es.rules_fired_immediately;
      result.engine_stats.notifications += es.notifications;
      result.engine_stats.subscribes += es.subscribes;
      const turbine::WorkerStats& ws = ctx.stats();
      result.worker_stats.tasks += ws.tasks;
      result.worker_stats.python_evals += ws.python_evals;
      result.worker_stats.r_evals += ws.r_evals;
      result.worker_stats.app_execs += ws.app_execs;
      result.worker_stats.interpreter_resets += ws.interpreter_resets;
      result.cache_stats += client.cache_stats();
      result.pipeline_stats += client.pipeline_stats();
      const tcl::Interp::CompileStats& cs = ctx.interp().compile_stats();
      result.tcl_stats.hits += cs.hits;
      result.tcl_stats.misses += cs.misses;
      result.tcl_stats.bailouts += cs.bailouts;
      result.tcl_units_cached += ctx.units_cached();
    } else {
      turbine::Context ctx(client, nullptr, ccfg);
      if (has_main) ctx.interp().eval(program);
      ctx.run_worker();
      ilps::LockGuard lock(mu);
      const turbine::WorkerStats& ws = ctx.stats();
      result.worker_stats.tasks += ws.tasks;
      result.worker_stats.python_evals += ws.python_evals;
      result.worker_stats.r_evals += ws.r_evals;
      result.worker_stats.app_execs += ws.app_execs;
      result.worker_stats.interpreter_resets += ws.interpreter_resets;
      result.cache_stats += client.cache_stats();
      result.pipeline_stats += client.pipeline_stats();
      const tcl::Interp::CompileStats& cs = ctx.interp().compile_stats();
      result.tcl_stats.hits += cs.hits;
      result.tcl_stats.misses += cs.misses;
      result.tcl_stats.bailouts += cs.bailouts;
      result.tcl_units_cached += ctx.units_cached();
    }
  };
  try {
    world.run(body);
  } catch (const CommError& e) {
    // Servers signal unrecoverable conditions by aborting the world with
    // a marker; classify the resulting CommError into the typed errors
    // the recovery driver keys off.
    const std::string msg = e.what();
    if (msg.find("ilps-ft-restart:") != std::string::npos) throw RestartError(msg);
    if (msg.find("ilps-task-failed:") != std::string::npos) throw TaskError(msg);
    throw;
  }
  result.elapsed_seconds = timer.elapsed();
  result.traffic = world.stats();
  if (const obs::Session* session = world.obs_session()) {
    result.trace = session->merged();
  }
  if (!pending.empty()) {
    result.lines.push_back(pending);
    result.line_times.push_back(result.elapsed_seconds);
    pending.clear();
  }
  return result;
}

// Publishes every layer's stat structs into the process-wide metrics
// registry under stable dotted names (set, not add: the registry reflects
// the most recent run; only histograms accumulate).
void publish_metrics(const RunResult& r) {
  obs::Metrics& m = obs::metrics();
  const adlb::ServerStats& s = r.server_stats;
  m.counter("adlb.puts").set(s.puts);
  m.counter("adlb.gets").set(s.gets);
  m.counter("adlb.matches").set(s.matches);
  m.counter("adlb.forwards").set(s.forwards);
  m.counter("adlb.hungry_notices").set(s.hungry_notices);
  m.counter("adlb.batches_sent").set(s.batches_sent);
  m.counter("adlb.units_rebalanced").set(s.units_rebalanced);
  m.counter("adlb.steal_batches").set(s.steal_batches);
  m.counter("adlb.steal_batch_units").set(s.steal_batch_units);
  m.counter("adlb.notifications").set(s.notifications);
  m.counter("adlb.data_ops").set(s.data_ops);
  m.counter("adlb.tokens").set(s.tokens);
  m.counter("adlb.leftover_data").set(s.leftover_data);
  m.counter("adlb.stuck_datums").set(s.stuck_datums);
  m.counter("adlb.requeues").set(s.requeues);
  m.counter("adlb.task_failures").set(s.task_failures);
  m.counter("adlb.heartbeat_deaths").set(s.heartbeat_deaths);
  m.counter("adlb.checkpoints").set(s.checkpoints);
  m.counter("adlb.replay_skips").set(s.replay_skips);
  const adlb::DataCacheStats& c = r.cache_stats;
  m.counter("adlb.cache_hits").set(c.hits);
  m.counter("adlb.cache_misses").set(c.misses);
  m.counter("adlb.cache_evictions").set(c.evictions);
  m.counter("adlb.cache_invalidations").set(c.invalidations);
  const adlb::DataPipelineStats& p = r.pipeline_stats;
  m.counter("adlb.pipeline_ops").set(p.ops);
  m.counter("adlb.pipeline_flushes").set(p.flushes);
  m.counter("adlb.pipeline_stalls").set(p.stalls);
  const turbine::EngineStats& e = r.engine_stats;
  m.counter("engine.rules_created").set(e.rules_created);
  m.counter("engine.rules_fired").set(e.rules_fired);
  m.counter("engine.rules_fired_immediately").set(e.rules_fired_immediately);
  m.counter("engine.notifications").set(e.notifications);
  m.counter("engine.subscribes").set(e.subscribes);
  m.counter("engine.stuck_rules").set(r.stuck.size());
  const turbine::WorkerStats& w = r.worker_stats;
  m.counter("worker.tasks").set(w.tasks);
  m.counter("worker.python_evals").set(w.python_evals);
  m.counter("worker.r_evals").set(w.r_evals);
  m.counter("worker.app_execs").set(w.app_execs);
  m.counter("worker.interpreter_resets").set(w.interpreter_resets);
  const tcl::Interp::CompileStats& t = r.tcl_stats;
  m.counter("tcl.compile_hits").set(t.hits);
  m.counter("tcl.compile_misses").set(t.misses);
  m.counter("tcl.compile_bailouts").set(t.bailouts);
  m.counter("tcl.units_cached").set(r.tcl_units_cached);
  m.counter("mpi.messages").set(r.traffic.messages);
  m.counter("mpi.bytes").set(r.traffic.bytes);
  m.counter("mpi.wakeups").set(r.traffic.wakeups);
  m.counter("mpi.wakeups_suppressed").set(r.traffic.wakeups_suppressed);
  m.counter("mpi.pool_hits").set(r.traffic.pool_hits);
  m.counter("mpi.pool_misses").set(r.traffic.pool_misses);
  m.counter("mpi.barrier_fastpath").set(r.traffic.barrier_fastpath);
  m.counter("mpi.collective_wakeups").set(r.traffic.collective_wakeups);
  m.counter("run.attempts").set(static_cast<uint64_t>(r.ft.attempts));
  m.counter("run.dead_ranks").set(r.ft.dead_ranks.size());
  m.counter("run.unfired_rules").set(r.unfired_rules);
  m.gauge("run.elapsed_seconds").set(r.elapsed_seconds);
}

// End-of-run aggregation: fill the registry and, when ILPS_TRACE asked
// for files, write trace.json / metrics.json into obs::output_dir().
void finish_observability(const Config& cfg, const RunResult& result) {
  if (obs::metrics_enabled()) publish_metrics(result);
  if (obs::export_requested() && !result.trace.empty()) {
    obs::write_reports(result.trace, role_names(cfg), obs::metrics(), obs::output_dir());
  }
}

// Formats the merged stuck-future report for DeadlockError::what().
std::string stuck_message(const RunResult& r) {
  std::ostringstream out;
  out << "deadlock: program terminated with " << r.unfired_rules
      << " rule(s) still waiting on unset futures";
  constexpr size_t kMaxShown = 8;
  size_t shown = 0;
  for (const auto& rule : r.stuck) {
    if (shown++ == kMaxShown) {
      out << "\n  ... and " << (r.stuck.size() - kMaxShown) << " more rule(s)";
      break;
    }
    out << "\n  rule <" << rule.id << "> waiting on";
    if (rule.waiting.empty()) out << " unknown inputs";
    for (const auto& input : rule.waiting) {
      out << " ";
      if (!input.name.empty()) {
        out << "\"" << input.name << "\" (line " << input.line << ", datum <" << input.id
            << ">)";
      } else {
        out << "datum <" << input.id << ">";
      }
    }
  }
  out << "\n  hint: `ilps --lint` reports statically provable deadlocks";
  return out.str();
}

// The quiescence check's teeth: a deadlocked program fails with a typed,
// readable report instead of returning a silently useless result.
void throw_if_stuck(const Config& cfg, const RunResult& result) {
  if (cfg.deadlock_error && result.unfired_rules > 0) {
    throw DeadlockError(stuck_message(result));
  }
}

}  // namespace

std::vector<std::string> role_names(const Config& cfg) {
  std::vector<std::string> roles;
  roles.reserve(static_cast<size_t>(cfg.total_ranks()));
  for (int i = 0; i < cfg.engines; ++i) roles.emplace_back("engine");
  for (int i = 0; i < cfg.workers; ++i) roles.emplace_back("worker");
  for (int i = 0; i < cfg.servers; ++i) roles.emplace_back("server");
  return roles;
}

RunResult run_program(const Config& cfg, const std::string& program) {
  // The world body moved to the serve runtime (src/serve), which reuses
  // it for batch runs; semantics, output, and stats are unchanged.
  RunResult result = serve::Service::run_batch(cfg, program);
  finish_observability(cfg, result);
  throw_if_stuck(cfg, result);
  return result;
}

RunResult run_with_faults(const Config& cfg, const std::string& program) {
  if (cfg.ckpt_interval > 0 && cfg.servers != 1) {
    throw Error("runtime: checkpointing requires exactly one server rank");
  }
  if (cfg.ckpt_interval > 0 && cfg.ckpt_dir.empty()) {
    throw Error("runtime: ckpt_interval is set but ckpt_dir is empty");
  }
  mpi::FaultPlan remaining = cfg.fault_plan;
  std::vector<int> all_dead;
  std::vector<obs::Event> prior_trace;  // events of failed attempts
  int attempts = 0;
  while (true) {
    ++attempts;
    mpi::World world(cfg.total_ranks());
    world.set_fault_plan(remaining);
    std::optional<ckpt::Snapshot> snap;
    if (!cfg.ckpt_dir.empty()) snap = ckpt::load_latest(cfg.ckpt_dir);
    try {
      RunResult result = run_ft_attempt(cfg, program, world, snap ? &*snap : nullptr);
      for (int r : world.dead_ranks()) all_dead.push_back(r);
      result.ft.attempts = attempts;
      result.ft.dead_ranks = std::move(all_dead);
      if (!prior_trace.empty()) {
        // Attempts run sequentially on one wtime() epoch, so prepending
        // keeps the merged trace time-ordered.
        prior_trace.insert(prior_trace.end(), result.trace.begin(), result.trace.end());
        result.trace = std::move(prior_trace);
      }
      finish_observability(cfg, result);
      throw_if_stuck(cfg, result);
      return result;
    } catch (const RestartError& e) {
      for (int r : world.dead_ranks()) all_dead.push_back(r);
      // run_program_impl rethrows after World::run joined every rank
      // thread, so the failed attempt's buffers are safe to harvest.
      if (const obs::Session* session = world.obs_session()) {
        std::vector<obs::Event> events = session->merged();
        prior_trace.insert(prior_trace.end(), events.begin(), events.end());
      }
      if (attempts > cfg.max_restarts) throw;
      // The next attempt re-enters the rank loops, which re-resolve (or
      // cache) the same registered histograms. Reset their samples in
      // place — without this, the aborted attempt's task timings pollute
      // the final attempt's task.seconds / ckpt histograms. Counters are
      // published by set() at end of run, so only histograms accumulate.
      if (obs::metrics_enabled()) obs::metrics().reset_histograms();
      // Consumed fault actions must not re-fire on the next attempt.
      const std::vector<bool> fired = world.fault_fired();
      mpi::FaultPlan next;
      for (size_t i = 0; i < remaining.actions.size(); ++i) {
        if (i >= fired.size() || !fired[i]) next.actions.push_back(remaining.actions[i]);
      }
      remaining = std::move(next);
      log::info("runtime: restarting after failure (attempt ", attempts + 1, "): ", e.what());
    }
  }
}

}  // namespace ilps::runtime
