#include "runtime/runner.h"

#include <cstdio>
#include <mutex>

#include "adlb/client.h"
#include "common/error.h"
#include "common/strings.h"
#include "common/timer.h"

namespace ilps::runtime {

std::string RunResult::output() const {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

bool RunResult::contains(const std::string& needle) const {
  for (const auto& line : lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

double RunResult::time_of(const std::string& needle) const {
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find(needle) != std::string::npos) {
      return i < line_times.size() ? line_times[i] : -1.0;
    }
  }
  return -1.0;
}

RunResult run_program(const Config& cfg, const std::string& program) {
  // The swift:main convention (see runner.h): load everywhere, run once.
  const bool has_main = program.find("proc swift:main") != std::string::npos;
  if (cfg.engines < 1) throw Error("runtime: at least one engine rank is required");
  if (cfg.workers < 1) throw Error("runtime: at least one worker rank is required");
  if (cfg.servers < 1) throw Error("runtime: at least one server rank is required");

  adlb::Config acfg = cfg.adlb();
  mpi::World world(cfg.total_ranks());

  RunResult result;
  std::mutex mu;
  std::string pending;  // partial line accumulator across emits
  Timer timer;

  auto sink = [&](int rank, const std::string& text) {
    (void)rank;
    std::lock_guard<std::mutex> lock(mu);
    if (cfg.echo_output) std::fwrite(text.data(), 1, text.size(), stdout);
    pending += text;
    size_t pos;
    while ((pos = pending.find('\n')) != std::string::npos) {
      result.lines.push_back(pending.substr(0, pos));
      result.line_times.push_back(timer.elapsed());
      pending.erase(0, pos + 1);
    }
  };
  world.run([&](mpi::Comm& comm) {
    if (adlb::is_server(comm.rank(), comm.size(), acfg)) {
      adlb::Server server(comm, acfg);
      server.serve();
      std::lock_guard<std::mutex> lock(mu);
      const adlb::ServerStats& s = server.stats();
      result.server_stats.puts += s.puts;
      result.server_stats.gets += s.gets;
      result.server_stats.matches += s.matches;
      result.server_stats.forwards += s.forwards;
      result.server_stats.hungry_notices += s.hungry_notices;
      result.server_stats.batches_sent += s.batches_sent;
      result.server_stats.units_rebalanced += s.units_rebalanced;
      result.server_stats.notifications += s.notifications;
      result.server_stats.data_ops += s.data_ops;
      result.server_stats.tokens += s.tokens;
      result.server_stats.leftover_data += s.leftover_data;
      return;
    }

    adlb::Client client(comm, acfg);
    turbine::ContextConfig ccfg;
    ccfg.policy = cfg.policy;
    ccfg.restricted_os = cfg.restricted_os;
    ccfg.output = sink;
    ccfg.setup_interp = cfg.setup_interp;
    ccfg.setup_bindings = cfg.setup_bindings;

    if (comm.rank() < cfg.engines) {
      turbine::Engine engine(client);
      turbine::Context ctx(client, &engine, ccfg);
      std::string to_run;
      if (has_main) {
        ctx.interp().eval(program);
        if (comm.rank() == 0) to_run = "swift:main";
      } else if (comm.rank() == 0) {
        to_run = program;
      }
      size_t unfired = ctx.run_engine(to_run);
      std::lock_guard<std::mutex> lock(mu);
      result.unfired_rules += unfired;
      const turbine::EngineStats& es = engine.stats();
      result.engine_stats.rules_created += es.rules_created;
      result.engine_stats.rules_fired += es.rules_fired;
      result.engine_stats.rules_fired_immediately += es.rules_fired_immediately;
      result.engine_stats.notifications += es.notifications;
      result.engine_stats.subscribes += es.subscribes;
      const turbine::WorkerStats& ws = ctx.stats();
      result.worker_stats.tasks += ws.tasks;
      result.worker_stats.python_evals += ws.python_evals;
      result.worker_stats.r_evals += ws.r_evals;
      result.worker_stats.app_execs += ws.app_execs;
      result.worker_stats.interpreter_resets += ws.interpreter_resets;
    } else {
      turbine::Context ctx(client, nullptr, ccfg);
      if (has_main) ctx.interp().eval(program);
      ctx.run_worker();
      std::lock_guard<std::mutex> lock(mu);
      const turbine::WorkerStats& ws = ctx.stats();
      result.worker_stats.tasks += ws.tasks;
      result.worker_stats.python_evals += ws.python_evals;
      result.worker_stats.r_evals += ws.r_evals;
      result.worker_stats.app_execs += ws.app_execs;
      result.worker_stats.interpreter_resets += ws.interpreter_resets;
    }
  });
  result.elapsed_seconds = timer.elapsed();
  result.traffic = world.stats();
  if (!pending.empty()) {
    result.lines.push_back(pending);
    result.line_times.push_back(result.elapsed_seconds);
    pending.clear();
  }
  return result;
}

}  // namespace ilps::runtime
