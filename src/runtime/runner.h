// The ILPS runtime: assembles a World with the Fig. 2 role layout
// (engines, ADLB servers, workers), runs a Turbine program, and collects
// output and statistics. At run time an ILPS program is a message-passing
// program, exactly as a Swift/T program is an MPI program.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "adlb/client.h"
#include "adlb/server.h"
#include "mpi/comm.h"
#include "obs/trace.h"
#include "turbine/context.h"

namespace ilps::runtime {

struct Config {
  int engines = 1;
  int workers = 2;
  int servers = 1;
  turbine::InterpPolicy policy = turbine::InterpPolicy::kRetain;
  bool restricted_os = false;
  // Hook run on every rank's interpreter before execution (register
  // packages, static-package loaders, extra commands, ...).
  std::function<void(tcl::Interp&)> setup_interp;
  // Like setup_interp but also receives the rank's blob registry (for
  // BindGen bindings whose pointer arguments are blob handles).
  std::function<void(tcl::Interp&, blob::Registry&)> setup_bindings;
  // If set, output lines stream here as well as into the result.
  bool echo_output = false;

  // Throw DeadlockError (with the engines' stuck-future report) when the
  // program terminates with rules still pending. Off lets callers inspect
  // RunResult::unfired_rules / RunResult::stuck themselves.
  bool deadlock_error = true;

  // ADLB policy knobs (see adlb::Config; ablated in bench_ablation).
  bool steal_half = true;
  bool priority_notifications = true;
  int data_cache_mb = -1;  // client datum cache budget; 0 disables, -1 = env

  // ---- fault tolerance (run_with_faults; see src/ckpt) ----
  // Scripted failures injected into the World (kill/hang a rank,
  // drop/delay a message). Consumed actions are not re-fired on restart.
  mpi::FaultPlan fault_plan;
  int max_task_retries = 2;      // requeue budget per leaf task
  int retry_backoff_ms = 2;      // requeue delay, doubled per attempt; 0 = off
  int heartbeat_timeout_ms = 0;  // hung-worker detection; 0 = off. Must
                                 // exceed the longest legitimate leaf task.
  int ckpt_interval = 0;         // checkpoint every K completed leaf tasks
                                 // (requires servers == 1); 0 = off
  std::string ckpt_dir;          // checkpoint directory
  int max_restarts = 3;          // restart-from-checkpoint budget

  int total_ranks() const { return engines + workers + servers; }
  adlb::Config adlb() const {
    adlb::Config cfg;
    cfg.nservers = servers;
    cfg.steal_half = steal_half;
    cfg.priority_notifications = priority_notifications;
    cfg.data_cache_mb = data_cache_mb;
    return cfg;
  }
};

// Recovery accounting for run_with_faults (per-event counters live in
// ServerStats: requeues, task_failures, heartbeat_deaths, checkpoints,
// replay_skips).
struct FtStats {
  int attempts = 1;             // program attempts (1 = no restart needed)
  std::vector<int> dead_ranks;  // ranks that died, across all attempts
};

struct RunResult {
  std::vector<std::string> lines;  // every output line, arrival order
  std::vector<double> line_times;  // arrival time of each line (s since start)
  size_t unfired_rules = 0;        // > 0 means the program deadlocked
  // Stuck-future report, merged across engines: each pending rule with
  // the unset datums (and their source names, via the compiler's symbol
  // map) it was waiting on. Populated whenever unfired_rules > 0.
  std::vector<turbine::StuckRule> stuck;
  turbine::EngineStats engine_stats;
  turbine::WorkerStats worker_stats;
  adlb::ServerStats server_stats;
  adlb::DataCacheStats cache_stats;  // summed across all client ranks
  adlb::DataPipelineStats pipeline_stats;  // summed across all client ranks
  // MiniTcl bytecode layer (tcl.compile_* metrics): unit reuses, compiles,
  // and raw-source tail bailouts, summed across all client ranks.
  tcl::Interp::CompileStats tcl_stats;
  uint64_t tcl_units_cached = 0;  // live action-cache entries at teardown
  mpi::TrafficStats traffic;
  FtStats ft;
  double elapsed_seconds = 0;

  // Merged per-rank event trace (src/obs), time-ordered. Empty unless
  // tracing was enabled (ILPS_TRACE=1 or obs::set_trace_enabled). Under
  // run_with_faults this spans every attempt, so e.g. a killed rank's
  // rank_dead instant survives the restart.
  std::vector<obs::Event> trace;

  // All output joined back together (convenience for tests).
  std::string output() const;
  bool contains(const std::string& needle) const;
  // Arrival time of the first line containing `needle` (-1 if absent).
  double time_of(const std::string& needle) const;
};

// Runs a Turbine (MiniTcl) program.
//
// Two program shapes, as in Swift/T:
//  - If the program defines `proc swift:main`, the whole program text is
//    evaluated on EVERY client rank (so procs exist wherever shipped task
//    fragments may run) and then `swift:main` is invoked on engine rank 0.
//    This is what the STC compiler emits.
//  - Otherwise the program runs on engine rank 0 only; task payloads must
//    be self-contained scripts.
// Throws on script or configuration errors.
RunResult run_program(const Config& cfg, const std::string& program);

// Fault-tolerant driver around run_program: injects cfg.fault_plan,
// requeues dead/hung workers' leaf tasks (bounded by max_task_retries),
// and on an unrecoverable failure (engine death, all workers dead)
// restarts the program from the latest checkpoint in cfg.ckpt_dir,
// skipping leaf tasks that already completed. Throws TaskError when a
// task exhausts its retries and RestartError when the restart budget
// runs out.
RunResult run_with_faults(const Config& cfg, const std::string& program);

// "engine" / "worker" / "server" per rank, following the role layout
// (labels the utilization table and the Chrome trace's thread names).
std::vector<std::string> role_names(const Config& cfg);

}  // namespace ilps::runtime
