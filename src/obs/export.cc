#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace ilps::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

namespace {

std::string num(double v) { return json_num(v); }

std::string role_of(int rank, const std::vector<std::string>& roles) {
  if (rank >= 0 && static_cast<size_t>(rank) < roles.size()) {
    return roles[static_cast<size_t>(rank)];
  }
  return "";
}

}  // namespace

std::vector<RankUsage> utilization(const std::vector<Event>& events,
                                   const std::vector<std::string>& roles) {
  std::vector<RankUsage> out;
  if (events.empty()) return out;
  double t0 = events.front().t, t1 = events.front().t;
  int max_rank = 0;
  for (const Event& e : events) {
    t0 = std::min(t0, e.t);
    t1 = std::max(t1, e.t);
    max_rank = std::max(max_rank, static_cast<int>(e.rank));
  }
  const double window = std::max(t1 - t0, 1e-9);

  out.resize(static_cast<size_t>(max_rank) + 1);
  // Busy time is the union of each rank's busy spans: nesting (a ckpt
  // write inside server.handle) must not double-count.
  std::vector<int> depth(out.size(), 0);
  std::vector<double> open_at(out.size(), 0);
  for (const Event& e : events) {
    if (e.rank < 0) continue;
    auto r = static_cast<size_t>(e.rank);
    RankUsage& u = out[r];
    u.rank = e.rank;
    ++u.events;
    if (!kind_is_busy(e.kind)) continue;
    if (e.ph == Phase::kBegin) {
      if (depth[r] == 0) open_at[r] = e.t;
      ++depth[r];
    } else if (e.ph == Phase::kEnd) {
      // A wrapped ring can lose a span's Begin; ignore unmatched Ends.
      if (depth[r] > 0 && --depth[r] == 0) u.busy_seconds += e.t - open_at[r];
      if (e.kind == EventKind::kTaskRun) ++u.tasks;
    }
  }
  for (size_t r = 0; r < out.size(); ++r) {
    RankUsage& u = out[r];
    if (u.rank < 0) u.rank = static_cast<int>(r);  // rank with no events
    if (depth[r] > 0) u.busy_seconds += t1 - open_at[r];  // span still open
    u.window_seconds = window;
    u.busy_fraction = u.busy_seconds / window;
    u.role = role_of(u.rank, roles);
  }
  return out;
}

std::string chrome_trace_json(const std::vector<Event>& events,
                              const std::vector<std::string>& roles) {
  // Timestamps are shifted so the trace starts at 0 us.
  double t0 = events.empty() ? 0 : events.front().t;
  for (const Event& e : events) t0 = std::min(t0, e.t);

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto add = [&](const std::string& record) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += record;
  };

  int max_rank = -1;
  for (const Event& e : events) max_rank = std::max(max_rank, static_cast<int>(e.rank));
  for (int r = 0; r <= max_rank; ++r) {
    std::string role = role_of(r, roles);
    std::string name = "rank " + std::to_string(r) + (role.empty() ? "" : " (" + role + ")");
    add("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(r) +
        ",\"args\":{\"name\":\"" + json_escape(name) + "\"}}");
  }

  for (const Event& e : events) {
    const char* ph = e.ph == Phase::kBegin ? "B" : e.ph == Phase::kEnd ? "E" : "i";
    std::string rec = "{\"name\":\"" + std::string(kind_name(e.kind)) + "\",\"cat\":\"" +
                      kind_category(e.kind) + "\",\"ph\":\"" + ph +
                      "\",\"ts\":" + num((e.t - t0) * 1e6) +
                      ",\"pid\":0,\"tid\":" + std::to_string(e.rank);
    if (e.ph == Phase::kInstant) rec += ",\"s\":\"t\"";
    if (e.ph != Phase::kEnd) {
      rec += ",\"args\":{\"a\":" + std::to_string(e.a) + ",\"b\":" + std::to_string(e.b);
      if (e.req != 0) rec += ",\"req\":" + std::to_string(e.req);
      rec += "}";
    }
    rec += "}";
    add(rec);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string metrics_json(const Metrics& m, const std::vector<RankUsage>& usage) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : m.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : m.gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + num(v);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : m.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " + std::to_string(h->count()) +
           ", \"sum\": " + num(h->sum()) + ", \"min\": " + num(h->min()) +
           ", \"max\": " + num(h->max()) + ", \"p50\": " + num(h->percentile(50)) +
           ", \"p90\": " + num(h->percentile(90)) + ", \"p99\": " + num(h->percentile(99)) +
           "}";
  }
  out += "\n  },\n  \"windows\": {";
  first = true;
  for (const auto& [name, w] : m.window_histograms()) {
    const WindowHistogram::Snapshot s = w->snapshot();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"window_s\": " + num(w->window_seconds()) +
           ", \"count\": " + std::to_string(s.count) + ", \"sum\": " + num(s.sum) +
           ", \"p50\": " + num(s.p50) + ", \"p90\": " + num(s.p90) +
           ", \"p99\": " + num(s.p99) + ", \"p999\": " + num(s.p999) + "}";
  }
  out += "\n  },\n  \"utilization\": [";
  first = true;
  for (const RankUsage& u : usage) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rank\": " + std::to_string(u.rank) + ", \"role\": \"" +
           json_escape(u.role) + "\", \"busy_s\": " + num(u.busy_seconds) +
           ", \"window_s\": " + num(u.window_seconds) +
           ", \"busy_fraction\": " + num(u.busy_fraction) +
           ", \"events\": " + std::to_string(u.events) +
           ", \"tasks\": " + std::to_string(u.tasks) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string utilization_table(const std::vector<RankUsage>& usage) {
  std::string out = "rank  role     busy_s    window_s  busy%   tasks  events\n";
  char buf[160];
  for (const RankUsage& u : usage) {
    std::snprintf(buf, sizeof buf, "%-5d %-8s %-9.4f %-9.4f %-6.1f  %-6llu %llu\n", u.rank,
                  u.role.empty() ? "?" : u.role.c_str(), u.busy_seconds, u.window_seconds,
                  100.0 * u.busy_fraction, static_cast<unsigned long long>(u.tasks),
                  static_cast<unsigned long long>(u.events));
    out += buf;
  }
  return out;
}

std::string write_reports(const std::vector<Event>& events,
                          const std::vector<std::string>& roles, const Metrics& m,
                          const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);  // best effort; the open below reports failure

  auto write_file = [](const fs::path& path, const std::string& content) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) throw OsError("obs: cannot write " + path.string());
    f.write(content.data(), static_cast<std::streamsize>(content.size()));
  };

  const auto usage = utilization(events, roles);
  const fs::path trace_path = fs::path(dir) / "trace.json";
  write_file(trace_path, chrome_trace_json(events, roles));
  write_file(fs::path(dir) / "metrics.json", metrics_json(m, usage));

  std::string table = utilization_table(usage);
  std::fprintf(stderr, "[ilps obs] wrote %s (+ metrics.json), %zu events\n%s",
               trace_path.string().c_str(), events.size(), table.c_str());
  return trace_path.string();
}

}  // namespace ilps::obs
