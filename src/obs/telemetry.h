// ilps::obs — streaming telemetry export for resident services. Batch
// runs export once at end of run (export.h); a service that never exits
// needs its metrics and completed request traces streamed while it runs.
// TelemetryFlusher owns a background thread that, every interval:
//
//   - appends one {"type":"metrics",...} snapshot line to
//     <dir>/telemetry.jsonl — counters, gauges, and rolling-window
//     histogram percentiles (p50/p90/p99/p999 over the window), plus an
//     optional embedded "service" object from the status provider
//     (serve::Service wires status_json() in);
//   - drains the bounded completed-request queue into
//     <dir>/requests.jsonl, one {"type":"request",...} line per request
//     carrying its stitched cross-rank event trace.
//
// Both files are line-oriented JSON so `tail -f` and stdlib-only tooling
// (tools/trace_report.py --request, ilps --serve-status) can consume them
// live. Gated by ILPS_TELEMETRY_DIR (+ optional ILPS_TELEMETRY_INTERVAL_MS,
// default 1000); when unset nothing starts and nothing is paid.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "obs/trace.h"

namespace ilps::obs {

class TelemetryFlusher {
 public:
  struct Config {
    std::string dir;       // output directory; empty disables
    int interval_ms = 1000;

    // ILPS_TELEMETRY_DIR / ILPS_TELEMETRY_INTERVAL_MS.
    static Config from_env();
    bool enabled() const { return !dir.empty() && interval_ms > 0; }
  };

  // One completed request, queued for streaming to requests.jsonl.
  struct RequestRecord {
    int64_t id = 0;
    bool failed = false;
    bool slow = false;  // exceeded the slow-request threshold
    double latency_seconds = 0;
    std::vector<Event> events;  // stitched capture (may be empty)
  };

  explicit TelemetryFlusher(Config cfg);
  ~TelemetryFlusher();  // stop()

  TelemetryFlusher(const TelemetryFlusher&) = delete;
  TelemetryFlusher& operator=(const TelemetryFlusher&) = delete;

  // Opens the JSONL files (truncating) and launches the flusher thread.
  // No-op when the config is disabled. Idempotent.
  void start();
  // Final snapshot + drain, then joins the thread. Idempotent.
  void stop();
  bool running() const;

  // Embeds the returned JSON object string as the "service" field of each
  // metrics snapshot line (serve::Service::status_json). Must be set
  // before start().
  void set_status_provider(std::function<std::string()> provider);

  // Queues a completed request for the next flush. The queue is bounded
  // (kMaxQueuedRequests); overflow drops the new record and counts it.
  void enqueue_request(RequestRecord rec);

  // Forces one flush now (tests; also used by stop()).
  void flush_now();

  uint64_t snapshots_written() const;
  uint64_t requests_written() const;
  uint64_t requests_dropped() const;

  static constexpr size_t kMaxQueuedRequests = 1024;

 private:
  void loop();
  std::string metrics_snapshot_line() const;
  static std::string request_line(const RequestRecord& rec);

  // Immutable after construction / set before start(): no lock needed.
  Config cfg_;
  std::function<std::string()> status_provider_;

  mutable ilps::Mutex mu_;
  ilps::CondVar cv_;
  std::deque<RequestRecord> queue_ ILPS_GUARDED_BY(mu_);
  bool running_ ILPS_GUARDED_BY(mu_) = false;
  bool stop_ ILPS_GUARDED_BY(mu_) = false;
  uint64_t snapshots_ ILPS_GUARDED_BY(mu_) = 0;
  uint64_t written_ ILPS_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ ILPS_GUARDED_BY(mu_) = 0;

  std::ofstream metrics_out_ ILPS_GUARDED_BY(mu_);
  std::ofstream requests_out_ ILPS_GUARDED_BY(mu_);
  // Written by start() (under mu_, before the thread exists) and joined
  // by stop() strictly after the loop observed stop_; joining must not
  // hold mu_, so the handle itself stays unguarded.
  std::thread thread_;
};

}  // namespace ilps::obs
